// Package stats provides the small statistics toolkit used by the benchmark
// harness: running mean/variance (Welford), min/max, and percentile
// summaries over duration samples. The paper reports single µs numbers per
// configuration; we additionally report medians and spread because the
// simulated testbed runs on a shared host.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Running accumulates streaming statistics with Welford's algorithm.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates one sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the sample count.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, 0 if empty.
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance, 0 for fewer than 2 samples.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest sample, 0 if empty.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample, 0 if empty.
func (r *Running) Max() float64 { return r.max }

// Sample is a bounded collection of duration measurements.
type Sample struct {
	xs []time.Duration
}

// NewSample returns an empty sample with capacity hint n.
func NewSample(n int) *Sample { return &Sample{xs: make([]time.Duration, 0, n)} }

// Add appends one measurement.
func (s *Sample) Add(d time.Duration) { s.xs = append(s.xs, d) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.xs) }

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy. Empty samples return 0.
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.xs) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.xs))
	copy(sorted, s.xs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Median returns the 50th percentile.
func (s *Sample) Median() time.Duration { return s.Percentile(50) }

// Min returns the smallest measurement, 0 if empty.
func (s *Sample) Min() time.Duration { return s.Percentile(0) }

// Max returns the largest measurement, 0 if empty.
func (s *Sample) Max() time.Duration { return s.Percentile(100) }

// Mean returns the arithmetic mean, 0 if empty.
func (s *Sample) Mean() time.Duration {
	if len(s.xs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, x := range s.xs {
		sum += x
	}
	return sum / time.Duration(len(s.xs))
}

// TrimmedMean returns the mean after discarding the top and bottom frac
// (e.g. 0.1 trims 10% from each side). It is the harness's default
// estimator: robust to scheduler noise spikes on the shared host.
func (s *Sample) TrimmedMean(frac float64) time.Duration {
	if len(s.xs) == 0 {
		return 0
	}
	if frac < 0 || frac >= 0.5 {
		return s.Mean()
	}
	sorted := make([]time.Duration, len(s.xs))
	copy(sorted, s.xs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	k := int(float64(len(sorted)) * frac)
	kept := sorted[k : len(sorted)-k]
	if len(kept) == 0 {
		return s.Median()
	}
	var sum time.Duration
	for _, x := range kept {
		sum += x
	}
	return sum / time.Duration(len(kept))
}

// Summary formats min/median/mean/p95/max in microseconds.
func (s *Sample) Summary() string {
	return fmt.Sprintf("min=%.1fµs med=%.1fµs mean=%.1fµs p95=%.1fµs max=%.1fµs (n=%d)",
		us(s.Min()), us(s.Median()), us(s.Mean()), us(s.Percentile(95)), us(s.Max()), s.N())
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// US converts a duration to float microseconds for table printing.
func US(d time.Duration) float64 { return us(d) }
