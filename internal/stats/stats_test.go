package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-9 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Population std of this classic set is 2; sample variance = 32/7.
	if math.Abs(r.Var()-32.0/7.0) > 1e-9 {
		t.Errorf("Var = %v, want %v", r.Var(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.Std() != 0 {
		t.Fatal("empty Running should report zeros")
	}
	r.Add(3)
	if r.Var() != 0 {
		t.Fatalf("single-sample Var = %v, want 0", r.Var())
	}
	if r.Min() != 3 || r.Max() != 3 {
		t.Fatal("single-sample min/max wrong")
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var r Running
		var sum float64
		for _, v := range raw {
			r.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		if math.Abs(r.Mean()-mean) > 1e-6*(1+math.Abs(mean)) {
			return false
		}
		var ss float64
		for _, v := range raw {
			d := float64(v) - mean
			ss += d * d
		}
		if len(raw) > 1 {
			want := ss / float64(len(raw)-1)
			if math.Abs(r.Var()-want) > 1e-4*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentiles(t *testing.T) {
	s := NewSample(10)
	for i := 1; i <= 10; i++ {
		s.Add(time.Duration(i) * time.Microsecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1 * time.Microsecond},
		{10, 1 * time.Microsecond},
		{50, 5 * time.Microsecond},
		{95, 10 * time.Microsecond},
		{100, 10 * time.Microsecond},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestEmptySample(t *testing.T) {
	s := NewSample(0)
	if s.Median() != 0 || s.Mean() != 0 || s.TrimmedMean(0.1) != 0 {
		t.Fatal("empty sample must report zeros")
	}
	if s.Summary() == "" {
		t.Fatal("Summary must not be empty")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	s := NewSample(3)
	s.Add(3 * time.Microsecond)
	s.Add(1 * time.Microsecond)
	s.Add(2 * time.Microsecond)
	_ = s.Median()
	if s.xs[0] != 3*time.Microsecond {
		t.Fatal("Percentile sorted the underlying sample in place")
	}
}

func TestTrimmedMeanRobustToOutlier(t *testing.T) {
	s := NewSample(21)
	for i := 0; i < 20; i++ {
		s.Add(10 * time.Microsecond)
	}
	s.Add(10 * time.Millisecond) // a wild scheduler spike
	tm := s.TrimmedMean(0.1)
	if tm > 12*time.Microsecond {
		t.Fatalf("TrimmedMean = %v, not robust to outlier", tm)
	}
	if m := s.Mean(); m < 100*time.Microsecond {
		t.Fatalf("sanity: plain Mean = %v should be polluted", m)
	}
}

func TestTrimmedMeanDegenerateFrac(t *testing.T) {
	s := NewSample(2)
	s.Add(time.Microsecond)
	s.Add(3 * time.Microsecond)
	if got := s.TrimmedMean(0.9); got != 2*time.Microsecond {
		t.Fatalf("TrimmedMean(0.9) = %v, want plain mean 2µs", got)
	}
	if got := s.TrimmedMean(-1); got != 2*time.Microsecond {
		t.Fatalf("TrimmedMean(-1) = %v, want plain mean 2µs", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(50) + 1
		s := NewSample(n)
		for i := 0; i < n; i++ {
			s.Add(time.Duration(rng.Intn(1000)) * time.Microsecond)
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev {
				t.Fatalf("percentile not monotone: P%v=%v < prev %v", p, v, prev)
			}
			if v < s.Min() || v > s.Max() {
				t.Fatalf("P%v=%v outside [min,max]", p, v)
			}
			prev = v
		}
	}
}

func TestUS(t *testing.T) {
	if US(1500*time.Nanosecond) != 1.5 {
		t.Fatalf("US = %v, want 1.5", US(1500*time.Nanosecond))
	}
}
