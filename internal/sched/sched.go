// Package sched is the Marcel analog: a two-level cooperative scheduler
// that multiplexes application threads and communication tasklets over a
// fixed set of simulated cores.
//
// Each simulated core is a dedicated worker goroutine. Application threads
// are goroutines that must hold a core token to run; while a thread holds
// the core its worker is parked, so the number of runnable goroutines never
// exceeds the number of simulated cores (plus the fabric timer). The worker
// loop priority order follows the paper (§3.1):
//
//  1. tasklets — "executed as soon as the scheduler reaches a point where
//     it is safe to let them run";
//  2. runnable application threads;
//  3. the idle hook — PIOMan polling: "as Marcel schedules PIOMan each
//     time a core is idle, leaving a core idle will boil down to a busy
//     waiting until PIOMan wakes up a thread".
//
// A timer goroutine periodically schedules a registered tasklet even when
// every core is busy, modeling Marcel's timer-interrupt trigger.
package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pioman/internal/sync2"
	"pioman/internal/topo"
)

// IdleHook is invoked by idle cores. It returns true if it performed work;
// returning false lets the worker back off briefly.
type IdleHook func(core topo.CoreID) bool

// Config parameterizes a Scheduler.
type Config struct {
	// Machine is the node topology; defaults to the paper's dual
	// quad-core Xeon when zero.
	Machine topo.Machine
	// TimerPeriod is the interval of the timer trigger; 0 disables it.
	TimerPeriod time.Duration
	// IdleSpin is how long an idle core busy-polls the hook before
	// yielding to the Go runtime; it bounds the CPU burned per idle pass.
	IdleSpin time.Duration
}

// Stats exposes scheduler activity counters (monotonic, atomic reads).
type Stats struct {
	TaskletsRun  uint64
	ThreadsRun   uint64
	IdlePolls    uint64
	TimerTicks   uint64
	ThreadsAlive int64
}

// Scheduler owns the simulated cores of one node.
type Scheduler struct {
	machine topo.Machine
	cfg     Config

	taskletMu sync2.SpinLock
	tasklets  []*Tasklet

	runq chan *Thread

	idleHook atomic.Pointer[IdleHook]
	timerT   atomic.Pointer[Tasklet]

	busyCores atomic.Int32

	stop    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup

	nTasklets  atomic.Uint64
	nThreads   atomic.Uint64
	nIdlePolls atomic.Uint64
	nTicks     atomic.Uint64
	alive      atomic.Int64
}

// New creates and starts a scheduler with one worker per core.
func New(cfg Config) *Scheduler {
	if cfg.Machine.NumCores() == 0 {
		cfg.Machine = topo.DualQuadXeon()
	}
	if err := cfg.Machine.Validate(); err != nil {
		panic(err)
	}
	if cfg.IdleSpin <= 0 {
		cfg.IdleSpin = 5 * time.Microsecond
	}
	s := &Scheduler{
		machine: cfg.Machine,
		cfg:     cfg,
		runq:    make(chan *Thread, 4096),
		stop:    make(chan struct{}),
	}
	for _, c := range s.machine.Cores() {
		s.wg.Add(1)
		go s.worker(c)
	}
	if cfg.TimerPeriod > 0 {
		s.wg.Add(1)
		go s.timerLoop(cfg.TimerPeriod)
	}
	return s
}

// Machine returns the node topology.
func (s *Scheduler) Machine() topo.Machine { return s.machine }

// NumCores returns the number of simulated cores.
func (s *Scheduler) NumCores() int { return s.machine.NumCores() }

// IdleCores returns the number of cores not currently occupied by an
// application thread or a tasklet — i.e. cores available for polling.
// PIOMan uses it to choose between active polling and the blocking-call
// fallback ("Pioman is able to choose the most appropriate method
// depending on the context", §3.1).
func (s *Scheduler) IdleCores() int {
	n := s.machine.NumCores() - int(s.busyCores.Load())
	if n < 0 {
		n = 0
	}
	return n
}

// SetIdleHook installs the function idle cores run; nil clears it.
func (s *Scheduler) SetIdleHook(h IdleHook) {
	if h == nil {
		s.idleHook.Store(nil)
		return
	}
	s.idleHook.Store(&h)
}

// SetTimerTasklet installs the tasklet scheduled on every timer tick.
func (s *Scheduler) SetTimerTasklet(t *Tasklet) { s.timerT.Store(t) }

// Schedule marks t for execution. It is safe to call from any goroutine,
// including tasklet bodies and idle hooks.
func (s *Scheduler) Schedule(t *Tasklet) {
	if s.stopped.Load() {
		return
	}
	if t.schedule() {
		s.enqueueTasklet(t)
	}
}

// ScheduleFunc schedules a one-shot anonymous tasklet.
func (s *Scheduler) ScheduleFunc(name string, fn func(core topo.CoreID)) {
	s.Schedule(NewTasklet(name, fn))
}

func (s *Scheduler) enqueueTasklet(t *Tasklet) {
	s.taskletMu.Lock()
	s.tasklets = append(s.tasklets, t)
	s.taskletMu.Unlock()
}

func (s *Scheduler) popTasklet() *Tasklet {
	s.taskletMu.Lock()
	defer s.taskletMu.Unlock()
	if len(s.tasklets) == 0 {
		return nil
	}
	t := s.tasklets[0]
	s.tasklets = s.tasklets[1:]
	return t
}

// worker is the per-core loop.
func (s *Scheduler) worker(core topo.CoreID) {
	// One reusable timer per worker for idlePhase's timed waits: a
	// time.After there would allocate a fresh timer every 100µs on
	// every idle core, a steady background churn the zero-allocation
	// hot path would drown in.
	idleTimer := time.NewTimer(time.Hour)
	if !idleTimer.Stop() {
		<-idleTimer.C
	}
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		default:
		}

		// 1. Tasklets first: highest priority.
		if t := s.popTasklet(); t != nil {
			s.busyCores.Add(1)
			requeue := t.execute(core)
			s.busyCores.Add(-1)
			if requeue {
				s.enqueueTasklet(t)
			}
			s.nTasklets.Add(1)
			continue
		}

		// 2. Runnable application threads.
		select {
		case th := <-s.runq:
			s.nThreads.Add(1)
			s.busyCores.Add(1)
			th.runOn(core)
			s.busyCores.Add(-1)
			continue
		default:
		}

		// 3. Idle: run the PIOMan hook (busy wait), else back off.
		worked := s.idlePhase(core, idleTimer)
		if !worked {
			// Nothing to do at all: yield so the host isn't saturated
			// when the engine is quiescent.
			runtime.Gosched()
		}
	}
}

// idlePhase busy-polls the idle hook for up to cfg.IdleSpin, returning
// early if a tasklet or thread shows up. Reports whether any hook call did
// work. idleTimer is the worker's reusable timer; idlePhase leaves it
// stopped and drained.
func (s *Scheduler) idlePhase(core topo.CoreID, idleTimer *time.Timer) bool {
	hp := s.idleHook.Load()
	if hp == nil {
		// No hook (sequential mode): wait for work without burning CPU.
		idleTimer.Reset(100 * time.Microsecond)
		defer func() {
			// The timer is owned by this goroutine, so a stop plus
			// non-blocking drain leaves it clean for the next Reset
			// whether or not it fired during the select.
			if !idleTimer.Stop() {
				select {
				case <-idleTimer.C:
				default:
				}
			}
		}()
		select {
		case th := <-s.runq:
			s.nThreads.Add(1)
			s.busyCores.Add(1)
			th.runOn(core)
			s.busyCores.Add(-1)
			return true
		case <-s.stop:
			return true
		case <-idleTimer.C:
			return true // timed poll of the queues counts as progress
		}
	}
	hook := *hp
	deadline := time.Now().Add(s.cfg.IdleSpin)
	worked := false
	for {
		s.nIdlePolls.Add(1)
		if hook(core) {
			worked = true
		}
		// Higher-priority work preempts the idle phase.
		s.taskletMu.Lock()
		hasTasklet := len(s.tasklets) > 0
		s.taskletMu.Unlock()
		if hasTasklet || len(s.runq) > 0 || s.stopped.Load() {
			return true
		}
		if time.Now().After(deadline) {
			return worked
		}
	}
}

// timerLoop schedules the timer tasklet at the configured period,
// modeling Marcel's timer-interrupt trigger for PIOMan.
func (s *Scheduler) timerLoop(period time.Duration) {
	defer s.wg.Done()
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.nTicks.Add(1)
			if t := s.timerT.Load(); t != nil {
				s.Schedule(t)
			}
		}
	}
}

// Stats returns a snapshot of activity counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		TaskletsRun:  s.nTasklets.Load(),
		ThreadsRun:   s.nThreads.Load(),
		IdlePolls:    s.nIdlePolls.Load(),
		TimerTicks:   s.nTicks.Load(),
		ThreadsAlive: s.alive.Load(),
	}
}

// Shutdown stops all workers. Outstanding threads must have completed;
// Shutdown panics if any are alive, because a thread blocked waiting for a
// core would deadlock silently otherwise.
func (s *Scheduler) Shutdown() {
	if n := s.alive.Load(); n > 0 {
		panic(fmt.Sprintf("sched: Shutdown with %d threads alive", n))
	}
	if s.stopped.Swap(true) {
		return
	}
	close(s.stop)
	s.wg.Wait()
}
