package sched

import (
	"time"

	"pioman/internal/ptime"
	"pioman/internal/sync2"
	"pioman/internal/topo"
)

// Thread is an application thread scheduled onto simulated cores. It is a
// goroutine that only runs application code while holding a core token, so
// core occupancy — the resource the paper's offloading exploits — is
// modeled faithfully: a computing thread really occupies one core, and a
// node with T threads and C > T cores really has C-T idle cores available
// to run communication tasklets.
//
// Threads are cooperative: they hold their core across Compute and release
// it at Yield/Block/completion, matching Marcel's user-level threads which
// the benchmarks drive through compute/communicate phases.
type Thread struct {
	sched   *Scheduler
	name    string
	grant   chan topo.CoreID
	release chan struct{}
	core    topo.CoreID
	onCore  bool
	done    sync2.Flag
}

// Spawn creates a thread running fn and makes it runnable. fn receives the
// thread handle to drive Compute/Yield/Block; the thread's first
// instruction executes once a core grants it.
func (s *Scheduler) Spawn(name string, fn func(*Thread)) *Thread {
	th := &Thread{
		sched:   s,
		name:    name,
		grant:   make(chan topo.CoreID),
		release: make(chan struct{}),
	}
	s.alive.Add(1)
	go func() {
		th.acquireCore()
		defer func() {
			th.releaseCore()
			s.alive.Add(-1)
			th.done.Set()
		}()
		fn(th)
	}()
	return th
}

// runOn hands core to the thread and parks the worker until the thread
// releases it. Called only by core workers.
func (th *Thread) runOn(core topo.CoreID) {
	th.grant <- core
	<-th.release
}

// acquireCore enqueues the thread and blocks until a core is granted.
func (th *Thread) acquireCore() {
	th.sched.runq <- th
	th.core = <-th.grant
	th.onCore = true
}

// releaseCore returns the core to its worker.
func (th *Thread) releaseCore() {
	if !th.onCore {
		return
	}
	th.onCore = false
	th.release <- struct{}{}
}

// Core returns the core currently granted to the thread.
func (th *Thread) Core() topo.CoreID {
	th.mustHoldCore("Core")
	return th.core
}

// Name returns the thread's diagnostic name.
func (th *Thread) Name() string { return th.name }

// Compute spins for d on the held core, modeling application computation.
func (th *Thread) Compute(d time.Duration) {
	th.mustHoldCore("Compute")
	ptime.Compute(d)
}

// Yield releases the core and immediately re-queues for one, giving
// tasklets and other threads a chance to run.
func (th *Thread) Yield() {
	th.mustHoldCore("Yield")
	th.releaseCore()
	th.acquireCore()
}

// Block releases the core, waits for the flag, then re-acquires a core.
// This is the Marcel path where "PIOMan unblocks the corresponding thread
// and asks Marcel to schedule it" (§3.2): the flag is typically a request
// completion set by whichever core detected the event.
func (th *Thread) Block(f *sync2.Flag) {
	th.mustHoldCore("Block")
	th.releaseCore()
	f.Wait()
	th.acquireCore()
}

// SpinThen runs fn repeatedly while holding the core until it returns
// true or the budget elapses; it reports whether fn succeeded. Wait-style
// operations use it to poll inline ("the message is sent inside the wait
// function", §3.2) before falling back to blocking.
func (th *Thread) SpinThen(budget time.Duration, fn func() bool) bool {
	th.mustHoldCore("SpinThen")
	deadline := time.Now().Add(budget)
	for {
		if fn() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
	}
}

// Join waits (from any goroutine, without holding a core) for the thread
// to finish.
func (th *Thread) Join() { th.done.Wait() }

// Done reports whether the thread has finished.
func (th *Thread) Done() bool { return th.done.IsSet() }

func (th *Thread) mustHoldCore(op string) {
	if !th.onCore {
		panic("sched: " + op + " called by thread " + th.name + " without a core")
	}
}
