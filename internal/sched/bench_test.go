package sched

import (
	"sync/atomic"
	"testing"

	"pioman/internal/topo"
)

func BenchmarkTaskletScheduleExecute(b *testing.B) {
	s := New(Config{Machine: topo.Machine{Sockets: 1, CoresPerSocket: 2}})
	defer s.Shutdown()
	var runs atomic.Int64
	tl := NewTasklet("bench", func(core topo.CoreID) { runs.Add(1) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(tl)
	}
	b.StopTimer()
	// Drain: wait until the tasklet queue settles.
	for {
		prev := runs.Load()
		if prev > 0 && prev == runs.Load() {
			break
		}
	}
}

func BenchmarkThreadSpawnJoin(b *testing.B) {
	s := New(Config{Machine: topo.Machine{Sockets: 1, CoresPerSocket: 4}})
	defer s.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Spawn("w", func(th *Thread) {}).Join()
	}
}

func BenchmarkThreadYield(b *testing.B) {
	s := New(Config{Machine: topo.Machine{Sockets: 1, CoresPerSocket: 2}})
	defer s.Shutdown()
	th := s.Spawn("y", func(th *Thread) {
		for i := 0; i < b.N; i++ {
			th.Yield()
		}
	})
	th.Join()
}
