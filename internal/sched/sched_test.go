package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pioman/internal/sync2"
	"pioman/internal/topo"
)

func testSched(t *testing.T, cores int) *Scheduler {
	t.Helper()
	s := New(Config{Machine: topo.Machine{Sockets: 1, CoresPerSocket: cores}})
	t.Cleanup(s.Shutdown)
	return s
}

func TestDefaultMachine(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown()
	if s.NumCores() != 8 {
		t.Fatalf("NumCores = %d, want 8 (dual quad Xeon)", s.NumCores())
	}
}

func TestTaskletRunsOnce(t *testing.T) {
	s := testSched(t, 2)
	var runs atomic.Int32
	done := make(chan struct{})
	tl := NewTasklet("t", func(core topo.CoreID) {
		runs.Add(1)
		close(done)
	})
	s.Schedule(tl)
	<-done
	time.Sleep(5 * time.Millisecond)
	if n := runs.Load(); n != 1 {
		t.Fatalf("tasklet ran %d times, want 1", n)
	}
}

func TestTaskletCoalescesWhilePending(t *testing.T) {
	s := testSched(t, 1)
	gate := make(chan struct{})
	var runs atomic.Int32
	// Occupy the only core so the tasklet stays pending.
	blocker := NewTasklet("blocker", func(core topo.CoreID) { <-gate })
	tl := NewTasklet("t", func(core topo.CoreID) { runs.Add(1) })
	s.Schedule(blocker)
	time.Sleep(2 * time.Millisecond) // blocker now running
	for i := 0; i < 10; i++ {
		s.Schedule(tl) // all coalesce into one pending execution
	}
	close(gate)
	time.Sleep(10 * time.Millisecond)
	if n := runs.Load(); n != 1 {
		t.Fatalf("tasklet ran %d times, want 1 (coalesced)", n)
	}
}

func TestTaskletRescheduleWhileRunningRunsAgain(t *testing.T) {
	s := testSched(t, 2)
	started := make(chan struct{})
	unblock := make(chan struct{})
	var runs atomic.Int32
	var tl *Tasklet
	tl = NewTasklet("t", func(core topo.CoreID) {
		if runs.Add(1) == 1 {
			close(started)
			<-unblock
		}
	})
	s.Schedule(tl)
	<-started
	s.Schedule(tl) // while running: must re-run exactly once more
	s.Schedule(tl) // coalesces with the previous reschedule
	close(unblock)
	deadline := time.Now().Add(time.Second)
	for runs.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	if n := runs.Load(); n != 2 {
		t.Fatalf("tasklet ran %d times, want 2", n)
	}
}

func TestTaskletNeverConcurrent(t *testing.T) {
	s := testSched(t, 4)
	var inside, maxInside atomic.Int32
	var runs atomic.Int32
	tl := NewTasklet("t", func(core topo.CoreID) {
		v := inside.Add(1)
		for {
			m := maxInside.Load()
			if v <= m || maxInside.CompareAndSwap(m, v) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		inside.Add(-1)
		runs.Add(1)
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Schedule(tl)
				time.Sleep(50 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().TaskletsRun > 0 && inside.Load() == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if m := maxInside.Load(); m > 1 {
		t.Fatalf("tasklet ran on %d cores concurrently", m)
	}
	if runs.Load() == 0 {
		t.Fatal("tasklet never ran")
	}
}

func TestNilTaskletFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTasklet("bad", nil)
}

func TestScheduleFunc(t *testing.T) {
	s := testSched(t, 2)
	done := make(chan topo.CoreID, 1)
	s.ScheduleFunc("once", func(core topo.CoreID) { done <- core })
	select {
	case c := <-done:
		if !s.Machine().ValidCore(c) {
			t.Fatalf("ran on invalid core %d", c)
		}
	case <-time.After(time.Second):
		t.Fatal("one-shot tasklet never ran")
	}
}

func TestThreadRunsAndJoins(t *testing.T) {
	s := testSched(t, 2)
	ran := false
	th := s.Spawn("worker", func(th *Thread) {
		th.Compute(10 * time.Microsecond)
		ran = true
	})
	th.Join()
	if !ran {
		t.Fatal("thread body did not run")
	}
	if !th.Done() {
		t.Fatal("Done() false after Join")
	}
}

func TestMoreThreadsThanCores(t *testing.T) {
	s := testSched(t, 2)
	const n = 10
	var done atomic.Int32
	ths := make([]*Thread, n)
	for i := 0; i < n; i++ {
		ths[i] = s.Spawn("w", func(th *Thread) {
			th.Compute(50 * time.Microsecond)
			th.Yield()
			th.Compute(50 * time.Microsecond)
			done.Add(1)
		})
	}
	for _, th := range ths {
		th.Join()
	}
	if done.Load() != n {
		t.Fatalf("completed %d/%d threads", done.Load(), n)
	}
}

func TestCoreOccupancyNeverExceedsCores(t *testing.T) {
	const cores = 3
	s := testSched(t, cores)
	var cur, max atomic.Int32
	const n = 12
	ths := make([]*Thread, n)
	for i := 0; i < n; i++ {
		ths[i] = s.Spawn("w", func(th *Thread) {
			for k := 0; k < 5; k++ {
				v := cur.Add(1)
				for {
					m := max.Load()
					if v <= m || max.CompareAndSwap(m, v) {
						break
					}
				}
				th.Compute(20 * time.Microsecond)
				cur.Add(-1)
				th.Yield()
			}
		})
	}
	for _, th := range ths {
		th.Join()
	}
	if m := max.Load(); m > cores {
		t.Fatalf("%d threads computed concurrently on %d cores", m, cores)
	}
}

func TestThreadBlockWakesOnFlag(t *testing.T) {
	s := testSched(t, 2)
	var f sync2.Flag
	order := make(chan string, 4)
	th := s.Spawn("blocker", func(th *Thread) {
		order <- "before"
		th.Block(&f)
		order <- "after"
	})
	time.Sleep(5 * time.Millisecond)
	select {
	case got := <-order:
		if got != "before" {
			t.Fatalf("got %q", got)
		}
	default:
		t.Fatal("thread never started")
	}
	select {
	case <-order:
		t.Fatal("thread passed Block before flag set")
	default:
	}
	f.Set()
	th.Join()
	if got := <-order; got != "after" {
		t.Fatalf("got %q, want after", got)
	}
}

func TestBlockReleasesCoreForOthers(t *testing.T) {
	// One core: a blocked thread must not starve another thread.
	s := testSched(t, 1)
	var f sync2.Flag
	ranOther := make(chan struct{})
	blocked := s.Spawn("blocked", func(th *Thread) {
		th.Block(&f)
	})
	s.Spawn("other", func(th *Thread) {
		close(ranOther)
	})
	select {
	case <-ranOther:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked thread held the only core")
	}
	f.Set()
	blocked.Join()
}

func TestSpinThen(t *testing.T) {
	s := testSched(t, 1)
	th := s.Spawn("spinner", func(th *Thread) {
		n := 0
		ok := th.SpinThen(50*time.Millisecond, func() bool {
			n++
			return n >= 3
		})
		if !ok {
			t.Error("SpinThen should have succeeded")
		}
		if !th.SpinThen(time.Microsecond, func() bool { return true }) {
			t.Error("immediately-true condition failed")
		}
		if th.SpinThen(100*time.Microsecond, func() bool { return false }) {
			t.Error("never-true condition succeeded")
		}
	})
	th.Join()
}

func TestComputeWithoutCorePanics(t *testing.T) {
	s := testSched(t, 1)
	ch := make(chan *Thread, 1)
	s.Spawn("w", func(t2 *Thread) { ch <- t2 }).Join()
	th := <-ch
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	th.Compute(time.Microsecond)
}

func TestIdleHookRunsOnIdleCores(t *testing.T) {
	s := testSched(t, 2)
	var polls atomic.Int64
	s.SetIdleHook(func(core topo.CoreID) bool {
		polls.Add(1)
		return false
	})
	deadline := time.Now().Add(time.Second)
	for polls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if polls.Load() == 0 {
		t.Fatal("idle hook never ran")
	}
	s.SetIdleHook(nil)
}

func TestIdleHookPreemptedByThread(t *testing.T) {
	s := testSched(t, 1)
	s.SetIdleHook(func(core topo.CoreID) bool { return true }) // always "working"
	done := make(chan struct{})
	s.Spawn("t", func(th *Thread) { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("greedy idle hook starved the application thread")
	}
	s.SetIdleHook(nil)
}

func TestTimerTaskletFires(t *testing.T) {
	s := New(Config{
		Machine:     topo.Machine{Sockets: 1, CoresPerSocket: 2},
		TimerPeriod: time.Millisecond,
	})
	defer s.Shutdown()
	var fires atomic.Int32
	s.SetTimerTasklet(NewTasklet("tick", func(core topo.CoreID) { fires.Add(1) }))
	deadline := time.Now().Add(2 * time.Second)
	for fires.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fires.Load() < 3 {
		t.Fatalf("timer tasklet fired %d times, want >= 3", fires.Load())
	}
	if s.Stats().TimerTicks < 3 {
		t.Fatalf("TimerTicks = %d", s.Stats().TimerTicks)
	}
}

func TestIdleCoresCounter(t *testing.T) {
	s := testSched(t, 4)
	// With no threads, all cores pass through idle; the instantaneous
	// count fluctuates but must be observable > 0 and <= 4.
	deadline := time.Now().Add(time.Second)
	sawIdle := false
	for time.Now().Before(deadline) {
		n := s.IdleCores()
		if n < 0 || n > 4 {
			t.Fatalf("IdleCores = %d out of range", n)
		}
		if n > 0 {
			sawIdle = true
			break
		}
	}
	if !sawIdle {
		t.Fatal("never observed an idle core on an empty scheduler")
	}
}

func TestShutdownWithLiveThreadPanics(t *testing.T) {
	s := New(Config{Machine: topo.Machine{Sockets: 1, CoresPerSocket: 1}})
	var f sync2.Flag
	th := s.Spawn("stuck", func(th *Thread) { th.Block(&f) })
	time.Sleep(2 * time.Millisecond)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on Shutdown with live threads")
			}
		}()
		s.Shutdown()
	}()
	f.Set()
	th.Join()
	s.Shutdown()
}

func TestStatsCount(t *testing.T) {
	s := testSched(t, 2)
	th := s.Spawn("w", func(th *Thread) { th.Compute(time.Microsecond) })
	th.Join()
	done := make(chan struct{})
	s.ScheduleFunc("t", func(core topo.CoreID) { close(done) })
	<-done
	st := s.Stats()
	if st.ThreadsRun == 0 {
		t.Error("ThreadsRun = 0")
	}
	if st.TaskletsRun == 0 {
		t.Error("TaskletsRun = 0")
	}
	if st.ThreadsAlive != 0 {
		t.Errorf("ThreadsAlive = %d, want 0", st.ThreadsAlive)
	}
}

func TestScheduleAfterShutdownIsNoop(t *testing.T) {
	s := New(Config{Machine: topo.Machine{Sockets: 1, CoresPerSocket: 1}})
	s.Shutdown()
	s.ScheduleFunc("late", func(core topo.CoreID) {})
	s.Shutdown() // double shutdown is fine
}
