package sched

import (
	"sync/atomic"

	"pioman/internal/topo"
)

// Tasklet is a deferred, very-high-priority work item, modeled after the
// Linux tasklets Marcel borrows (§3.1 of the paper, [7]). Guarantees:
//
//   - A tasklet runs on at most one core at a time, so its body may touch
//     shared engine state without further locking (the paper's per-event
//     mutual exclusion, §2.1).
//   - Schedule while idle enqueues it once; Schedule while pending is a
//     no-op; Schedule while running causes exactly one re-execution after
//     the current run finishes.
//
// Cores execute tasklets before application threads, so a scheduled
// tasklet runs "as soon as the scheduler reaches a point where it is safe
// to let them run".
type Tasklet struct {
	fn    func(core topo.CoreID)
	state atomic.Int32
	name  string
}

// Tasklet lifecycle states.
const (
	taskletIdle int32 = iota
	taskletPending
	taskletRunning
	taskletRerun // running, and re-scheduled during the run
)

// NewTasklet returns a tasklet executing fn. The core argument passed to fn
// identifies the executing core, so engine code can attribute costs and
// trace events.
func NewTasklet(name string, fn func(core topo.CoreID)) *Tasklet {
	if fn == nil {
		panic("sched: nil tasklet function")
	}
	return &Tasklet{fn: fn, name: name}
}

// Name returns the tasklet's diagnostic name.
func (t *Tasklet) Name() string { return t.name }

// schedule transitions the tasklet toward execution and reports whether the
// caller must enqueue it.
func (t *Tasklet) schedule() (enqueue bool) {
	for {
		switch s := t.state.Load(); s {
		case taskletIdle:
			if t.state.CompareAndSwap(taskletIdle, taskletPending) {
				return true
			}
		case taskletPending, taskletRerun:
			return false
		case taskletRunning:
			if t.state.CompareAndSwap(taskletRunning, taskletRerun) {
				return false
			}
		}
	}
}

// execute runs the tasklet body on core and reports whether it must be
// re-enqueued (a Schedule arrived during the run).
func (t *Tasklet) execute(core topo.CoreID) (requeue bool) {
	if !t.state.CompareAndSwap(taskletPending, taskletRunning) {
		// Only pending tasklets are ever enqueued; anything else is a
		// queue-corruption bug worth failing loudly on.
		panic("sched: executing tasklet that is not pending")
	}
	t.fn(core)
	for {
		switch s := t.state.Load(); s {
		case taskletRunning:
			if t.state.CompareAndSwap(taskletRunning, taskletIdle) {
				return false
			}
		case taskletRerun:
			if t.state.CompareAndSwap(taskletRerun, taskletPending) {
				return true
			}
		default:
			panic("sched: tasklet state corrupted during execution")
		}
	}
}
