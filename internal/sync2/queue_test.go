package sync2

import "testing"

func TestCompactQueueReclaimsDeadPrefix(t *testing.T) {
	// Drive the head-index FIFO pattern with the consumer permanently
	// one element behind, so the queue never fully drains and the
	// drain-time reset never fires. Compaction must keep the backing
	// array bounded by live depth, not total throughput.
	var q []int
	head := 0
	for i := 0; i < 100_000; i++ {
		q, head = CompactQueue(q, head)
		q = append(q, i)
		if len(q)-head > 1 { // pop all but the newest
			q[head] = 0
			head++
		}
	}
	if cap(q) > 1024 {
		t.Fatalf("backing array grew to cap %d under a depth-1 workload", cap(q))
	}
	if live := len(q) - head; live != 1 {
		t.Fatalf("workload invariant broken: %d live elements", live)
	}
}

func TestCompactQueuePreservesOrder(t *testing.T) {
	var q []int
	head := 0
	next := 0 // next value to pop
	for i := 0; i < 1000; i++ {
		q, head = CompactQueue(q, head)
		q = append(q, i)
		if i%3 != 0 { // pop two of every three pushes
			if got := q[head]; got != next {
				t.Fatalf("pop %d: got %d", next, got)
			}
			q[head] = 0
			head++
			next++
		}
	}
	for head < len(q) {
		if got := q[head]; got != next {
			t.Fatalf("drain pop %d: got %d", next, got)
		}
		head++
		next++
	}
}
