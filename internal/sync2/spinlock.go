// Package sync2 provides the light synchronization primitives the paper's
// event-driven design relies on: spinlocks ("as the communication
// processing runs for a very short period of time, the synchronization can
// be achieved by using light primitives such as spinlocks", §2.1), one-shot
// event flags used to wake waiting threads, and counting semaphores.
package sync2

import (
	"runtime"
	"sync/atomic"
)

// SpinLock is a test-and-test-and-set spinlock. Critical sections in the
// engine are a few hundred nanoseconds, so spinning beats parking. After a
// bounded number of failed acquisition attempts the lock yields to the Go
// scheduler to avoid livelock when the owner is descheduled.
type SpinLock struct {
	state atomic.Int32
}

// spinsBeforeYield bounds busy spinning before cooperating with the runtime.
const spinsBeforeYield = 128

// Lock acquires the lock, spinning until available.
func (l *SpinLock) Lock() {
	spins := 0
	for {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			return
		}
		spins++
		if spins >= spinsBeforeYield {
			spins = 0
			runtime.Gosched()
		}
	}
}

// TryLock attempts a single acquisition and reports success. The engine
// uses it for opportunistic polling: if another core is already making
// progress there is no point waiting for the lock.
func (l *SpinLock) TryLock() bool {
	return l.state.Load() == 0 && l.state.CompareAndSwap(0, 1)
}

// Unlock releases the lock. Unlocking an unlocked SpinLock panics, as with
// sync.Mutex.
func (l *SpinLock) Unlock() {
	if !l.state.CompareAndSwap(1, 0) {
		panic("sync2: unlock of unlocked SpinLock")
	}
}
