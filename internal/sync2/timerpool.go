package sync2

import (
	"sync"
	"time"
)

// timerPool recycles time.Timers for the blocking-receive paths: every
// timed wait used to allocate a fresh timer (two objects), a steady
// churn on exactly the paths the zero-allocation work removed churn
// from everywhere else.
var timerPool sync.Pool

// GetTimer returns a timer armed with d, drawn from the pool when one
// is available. Pair it with PutTimer.
func GetTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// PutTimer stops t, drains a pending fire, and pools it for reuse.
// fired reports whether the caller consumed a tick from t.C itself;
// the distinction matters because under the pre-Go-1.23 timer
// semantics go.mod currently pins, a fire can still be in flight when
// Stop returns false, and a non-blocking drain would miss it —
// poisoning the pooled timer with a stale tick that makes its next
// user time out instantly. When the caller did not consume the tick
// and Stop reports the timer already fired, the drain waits for it;
// the wait is bounded rather than open-ended because under Go ≥1.23
// semantics (activated by a future go.mod bump) Stop guarantees the
// tick will never arrive, and a bare receive would deadlock — the
// bound turns that into a bounded stall on an already-rare race path,
// and the drain itself becomes unnecessary there (Reset flushes). The
// caller must own t exclusively and not touch it afterwards.
func PutTimer(t *time.Timer, fired bool) {
	if !t.Stop() && !fired {
		guard := time.NewTimer(10 * time.Millisecond)
		select {
		case <-t.C:
		case <-guard.C:
		}
		guard.Stop()
	}
	timerPool.Put(t)
}
