package sync2

// Semaphore is a counting semaphore built on a buffered channel, for
// bounding concurrent occupancy (e.g. in applications built on the public
// API that want to cap in-flight requests).
type Semaphore struct {
	slots chan struct{}
}

// NewSemaphore returns a semaphore with n free slots. n must be positive.
func NewSemaphore(n int) *Semaphore {
	if n <= 0 {
		panic("sync2: semaphore size must be positive")
	}
	return &Semaphore{slots: make(chan struct{}, n)}
}

// Acquire takes a slot, blocking until one is free.
func (s *Semaphore) Acquire() { s.slots <- struct{}{} }

// TryAcquire takes a slot if one is immediately free.
func (s *Semaphore) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot. Releasing more than acquired panics.
func (s *Semaphore) Release() {
	select {
	case <-s.slots:
	default:
		panic("sync2: release of unacquired semaphore slot")
	}
}

// InUse reports the number of currently held slots.
func (s *Semaphore) InUse() int { return len(s.slots) }

// Cap reports the total number of slots.
func (s *Semaphore) Cap() int { return cap(s.slots) }
