package sync2

import (
	"sync"
	"testing"
)

func BenchmarkSpinLockUncontended(b *testing.B) {
	var l SpinLock
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkSpinLockContended(b *testing.B) {
	var l SpinLock
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			l.Unlock()
		}
	})
}

func BenchmarkMutexContendedReference(b *testing.B) {
	var l sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			l.Unlock()
		}
	})
}

func BenchmarkFlagSetAndCheck(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var f Flag
		f.Set()
		if !f.IsSet() {
			b.Fatal("unset")
		}
	}
}

func BenchmarkTryLock(b *testing.B) {
	var l SpinLock
	for i := 0; i < b.N; i++ {
		if l.TryLock() {
			l.Unlock()
		}
	}
}
