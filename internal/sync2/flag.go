package sync2

import (
	"sync/atomic"
	"time"
)

// Flag is a one-shot completion event. A request's completion is signaled
// exactly once by whichever core detects it; any number of goroutines may
// wait. Waiters first spin briefly (completions usually arrive within a few
// microseconds in the engine) and then fall back to a channel so that long
// waits do not burn a core.
type Flag struct {
	done    atomic.Bool
	settled atomic.Bool
	mu      SpinLock
	ch      chan struct{} // created by the first blocked waiter; guarded by mu
	fired   bool          // ch closed; guarded by mu
}

// channel returns the notification channel, creating it on first use —
// which only happens when a waiter actually blocks. If the flag is
// already set by then, the channel is closed immediately so the waiter
// falls straight through. Completions that nobody blocks on (the common
// case: waits finish in their spin phase) never allocate a channel,
// keeping Set allocation-free on the hot path.
func (f *Flag) channel() chan struct{} {
	f.mu.Lock()
	if f.ch == nil {
		f.ch = make(chan struct{})
	}
	if f.done.Load() && !f.fired {
		close(f.ch)
		f.fired = true
	}
	ch := f.ch
	f.mu.Unlock()
	return ch
}

// Set marks the flag done and wakes all waiters. Setting an already-set
// flag is a no-op, so multiple detectors may race safely. The done/fired
// split closes the channel exactly once no matter how Set interleaves
// with a blocking waiter's channel creation: whichever of the two runs
// second under mu observes both conditions and performs the close.
func (f *Flag) Set() {
	if f.done.Swap(true) {
		return
	}
	f.mu.Lock()
	if f.ch != nil && !f.fired {
		close(f.ch)
		f.fired = true
	}
	f.mu.Unlock()
	f.settled.Store(true)
}

// IsSet reports whether Set has been called.
func (f *Flag) IsSet() bool { return f.done.Load() }

// Settled reports that the winning Set call has fully finished — the
// wakeup channel is closed, no completer is still inside Set. A waiter
// that saw IsSet may race the tail of Set by a few instructions, so
// anything that recycles the memory holding a Flag (the engine's
// request freelists) must wait for Settled first; it follows IsSet
// within nanoseconds.
func (f *Flag) Settled() bool { return f.settled.Load() }

// Wait blocks until the flag is set.
func (f *Flag) Wait() {
	if f.done.Load() {
		return
	}
	<-f.channel()
}

// SpinWait busy-waits up to spin before blocking on the channel. It returns
// as soon as the flag is set. The spin phase keeps the sub-5µs completion
// path free of scheduler round trips.
func (f *Flag) SpinWait(spin time.Duration) {
	if f.done.Load() {
		return
	}
	deadline := time.Now().Add(spin)
	for time.Now().Before(deadline) {
		if f.done.Load() {
			return
		}
	}
	<-f.channel()
}
