package sync2

import (
	"sync/atomic"
	"time"
)

// Flag is a one-shot completion event. A request's completion is signaled
// exactly once by whichever core detects it; any number of goroutines may
// wait. Waiters first spin briefly (completions usually arrive within a few
// microseconds in the engine) and then fall back to a channel so that long
// waits do not burn a core.
type Flag struct {
	done atomic.Bool
	ch   chan struct{}
	init atomic.Bool
	mu   SpinLock
}

// channel lazily allocates the notification channel.
func (f *Flag) channel() chan struct{} {
	if f.init.Load() {
		return f.ch
	}
	f.mu.Lock()
	if !f.init.Load() {
		f.ch = make(chan struct{})
		f.init.Store(true)
	}
	ch := f.ch
	f.mu.Unlock()
	return ch
}

// Set marks the flag done and wakes all waiters. Setting an already-set
// flag is a no-op, so multiple detectors may race safely.
func (f *Flag) Set() {
	if f.done.Swap(true) {
		return
	}
	close(f.channel())
}

// IsSet reports whether Set has been called.
func (f *Flag) IsSet() bool { return f.done.Load() }

// Wait blocks until the flag is set.
func (f *Flag) Wait() {
	if f.done.Load() {
		return
	}
	<-f.channel()
}

// SpinWait busy-waits up to spin before blocking on the channel. It returns
// as soon as the flag is set. The spin phase keeps the sub-5µs completion
// path free of scheduler round trips.
func (f *Flag) SpinWait(spin time.Duration) {
	if f.done.Load() {
		return
	}
	deadline := time.Now().Add(spin)
	for time.Now().Before(deadline) {
		if f.done.Load() {
			return
		}
	}
	<-f.channel()
}
