package sync2

// CompactQueue reclaims the consumed prefix of a head-indexed FIFO —
// the queue shape the transports' inboxes and the optimizer's waiting
// lists share: push appends, pop nils q[head] and advances head, and
// the slice resets only when the queue fully drains. Under sustained
// backlog that reset never fires and the dead prefix would otherwise
// ride along through every append-reallocation, growing memory with
// total throughput instead of live depth. Call it before appending
// (under the queue's lock); it slides the live tail down once the dead
// prefix dominates, clearing the vacated slots so no pointer outlives
// its pop. Returns the (possibly rebased) slice and head.
func CompactQueue[T any](q []T, head int) ([]T, int) {
	if head == 0 || head < len(q)-head || head < 32 {
		return q, head
	}
	n := copy(q, q[head:])
	var zero T
	for i := n; i < len(q); i++ {
		q[i] = zero
	}
	return q[:n], 0
}

// PushRun appends a whole run to a head-indexed FIFO after reclaiming
// its consumed prefix, under the caller's lock — the producer half of
// the batched run discipline, shared by the transports' inboxes. It
// returns the (possibly rebased) slice and head.
func PushRun[T any](q []T, head int, run []T) ([]T, int) {
	q, head = CompactQueue(q, head)
	return append(q, run...), head
}

// PopRun pops up to len(into) entries off a head-indexed FIFO into the
// prefix of into, under the caller's lock — the batched counterpart of
// the per-entry pop, shared by the transports' inboxes so the run
// discipline (clear every vacated slot, reset the slice on full drain)
// lives in one place. It returns the (possibly reset) slice, the new
// head, and how many entries it wrote.
func PopRun[T any](q []T, head int, into []T) ([]T, int, int) {
	n := 0
	var zero T
	for n < len(into) && head < len(q) {
		into[n] = q[head]
		q[head] = zero // the consumers own them now; drop the aliases
		head++
		n++
	}
	if head == len(q) {
		q, head = q[:0], 0
	}
	return q, head, n
}
