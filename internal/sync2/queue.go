package sync2

// CompactQueue reclaims the consumed prefix of a head-indexed FIFO —
// the queue shape the transports' inboxes and the optimizer's waiting
// lists share: push appends, pop nils q[head] and advances head, and
// the slice resets only when the queue fully drains. Under sustained
// backlog that reset never fires and the dead prefix would otherwise
// ride along through every append-reallocation, growing memory with
// total throughput instead of live depth. Call it before appending
// (under the queue's lock); it slides the live tail down once the dead
// prefix dominates, clearing the vacated slots so no pointer outlives
// its pop. Returns the (possibly rebased) slice and head.
func CompactQueue[T any](q []T, head int) ([]T, int) {
	if head == 0 || head < len(q)-head || head < 32 {
		return q, head
	}
	n := copy(q, q[head:])
	var zero T
	for i := n; i < len(q); i++ {
		q[i] = zero
	}
	return q[:n], 0
}
