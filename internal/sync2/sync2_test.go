package sync2

import (
	"sync"
	"testing"
	"time"
)

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	const goroutines = 8
	const iters = 2000
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d (lost updates => no mutual exclusion)", counter, goroutines*iters)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestSpinLockUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var l SpinLock
	l.Unlock()
}

func TestFlagSetWait(t *testing.T) {
	var f Flag
	if f.IsSet() {
		t.Fatal("new flag reports set")
	}
	done := make(chan struct{})
	go func() {
		f.Wait()
		close(done)
	}()
	time.Sleep(time.Millisecond)
	f.Set()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait did not return after Set")
	}
	if !f.IsSet() {
		t.Fatal("flag not set after Set")
	}
	f.Wait() // must not block after set
}

func TestFlagDoubleSet(t *testing.T) {
	var f Flag
	f.Set()
	f.Set() // must not panic (close of closed channel)
}

func TestFlagConcurrentSetters(t *testing.T) {
	var f Flag
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Set()
		}()
	}
	wg.Wait()
	if !f.IsSet() {
		t.Fatal("flag not set")
	}
}

func TestFlagSpinWaitFastPath(t *testing.T) {
	var f Flag
	f.Set()
	start := time.Now()
	f.SpinWait(time.Second)
	if el := time.Since(start); el > 10*time.Millisecond {
		t.Fatalf("SpinWait on set flag took %v", el)
	}
}

func TestFlagSpinWaitFallsBackToBlock(t *testing.T) {
	var f Flag
	go func() {
		time.Sleep(5 * time.Millisecond)
		f.Set()
	}()
	f.SpinWait(100 * time.Microsecond) // spin expires, must block then wake
	if !f.IsSet() {
		t.Fatal("returned without flag set")
	}
}

func TestFlagManyWaiters(t *testing.T) {
	var f Flag
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				f.Wait()
			} else {
				f.SpinWait(time.Microsecond)
			}
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	f.Set()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiters did not all wake")
	}
}

func TestSemaphoreBounds(t *testing.T) {
	s := NewSemaphore(2)
	s.Acquire()
	s.Acquire()
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded beyond capacity")
	}
	if s.InUse() != 2 || s.Cap() != 2 {
		t.Fatalf("InUse=%d Cap=%d, want 2,2", s.InUse(), s.Cap())
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed with free slot")
	}
	s.Release()
	s.Release()
}

func TestSemaphoreReleaseUnacquiredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSemaphore(1).Release()
}

func TestSemaphoreZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSemaphore(0)
}

func TestSemaphoreConcurrentOccupancy(t *testing.T) {
	const capn = 3
	s := NewSemaphore(capn)
	var cur, max, mu = 0, 0, sync.Mutex{}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Acquire()
			mu.Lock()
			cur++
			if cur > max {
				max = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			s.Release()
		}()
	}
	wg.Wait()
	if max > capn {
		t.Fatalf("observed %d concurrent holders, cap %d", max, capn)
	}
}
