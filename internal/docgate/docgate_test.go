package docgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGodocCoverage is the repo's godoc gate: it fails on any exported
// identifier in a gated package (docgate.GatedDirsFromRoot) that lacks a
// doc comment. CI also runs this check as a standalone command via
// tools/docgate.
func TestGodocCoverage(t *testing.T) {
	for _, root := range GatedDirsFromRoot() {
		dir := filepath.Join("..", "..", root) // test runs in internal/docgate
		t.Run(root, func(t *testing.T) {
			missing, err := Missing(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range missing {
				t.Error(m)
			}
		})
	}
}

// TestMissingDetects pins the checker itself against a synthetic package
// with every kind of gap, so a silent parser regression cannot turn the
// gate into a no-op.
func TestMissingDetects(t *testing.T) {
	dir := t.TempDir()
	src := `package gapped

type Exported struct{}

func (e *Exported) Method() {}

func Function() {}

const Const = 1

var Var = 2

type unexported struct{}

func (u *unexported) Fine() {}

func private() {}
`
	if err := os.WriteFile(filepath.Join(dir, "gapped.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	missing, err := Missing(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{"package gapped", "type Exported", "method Exported.Method", "function Function", "const Const", "var Var"}
	for _, want := range wants {
		found := false
		for _, m := range missing {
			if strings.Contains(m, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("checker missed the undocumented %q:\n%s", want, strings.Join(missing, "\n"))
		}
	}
	if n := len(missing); n != len(wants) {
		t.Errorf("checker reported %d findings, want %d (unexported identifiers must not count):\n%s",
			n, len(wants), strings.Join(missing, "\n"))
	}

	documented := `// Package clean is fully documented.
package clean

// Exported is documented.
type Exported struct{}

// Method is documented.
func (e *Exported) Method() {}

// Grouped doc covers the block.
const (
	A = 1
	B = 2
)
`
	clean := t.TempDir()
	if err := os.WriteFile(filepath.Join(clean, "clean.go"), []byte(documented), 0o644); err != nil {
		t.Fatal(err)
	}
	missing, err = Missing(clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Errorf("false positives on a documented package:\n%s", strings.Join(missing, "\n"))
	}
}
