// Package docgate enforces the repo's godoc contract on selected
// packages: every exported identifier — package, type, function, method
// on an exported type, const and var — carries a doc comment. It is the
// small in-tree stand-in for a revive/golint exported-comment check
// (nothing may be go-installed into this build), run both as a test
// (internal/docgate's own suite gates internal/fabric, internal/nic and
// internal/mpi) and as a CI command (tools/docgate).
package docgate

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
)

// GatedDirsFromRoot lists, relative to the repository root, the packages
// whose exported identifiers must all carry doc comments — the fabric
// layer and the two layers that consume it, where the transport contract
// lives. Growing the gate to more packages is one line here (plus
// whatever doc comments that package still owes).
func GatedDirsFromRoot() []string {
	return []string{
		// internal/cluster is the control plane of the N-rank runtime
		// (registry, liveness, rank-death verdicts) — operator-facing
		// surface, documented like the transports it coordinates.
		"internal/cluster",
		"internal/fabric",
		"internal/fabric/bufpool",
		"internal/fabric/conformance",
		"internal/fabric/shmfab",
		"internal/fabric/simfab",
		"internal/fabric/tcpfab",
		"internal/fabric/udpfab",
		"internal/nic",
		"internal/mpi",
		// internal/wire carries exported fabric-facing surface too (the
		// simulator the sim backend adapts, including the batched
		// PollBatch drain), so it is held to the same standard.
		"internal/wire",
		// internal/telemetry is the observability contract every layer
		// registers into (docs/OBSERVABILITY.md); its exported surface
		// is what nmtop and external scrapers build on.
		"internal/telemetry",
	}
}

// finding is one undocumented exported identifier, kept structured until
// output so sorting is by true position, not lexical line-number order.
type finding struct {
	file string
	line int
	msg  string
}

// Missing parses the single Go package in dir (test files excluded) and
// returns one "file:line: message" finding per exported identifier that
// lacks a doc comment, sorted by file then line. A missing package
// comment is one finding, anchored to the package clause of the
// lexically first file. An empty slice means the package passes the gate.
func Missing(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("docgate: parse %s: %w", dir, err)
	}
	var found []finding
	for _, pkg := range pkgs {
		found = append(found, missingInPkg(fset, pkg)...)
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].file != found[j].file {
			return found[i].file < found[j].file
		}
		if found[i].line != found[j].line {
			return found[i].line < found[j].line
		}
		return found[i].msg < found[j].msg
	})
	out := make([]string, len(found))
	for i, f := range found {
		out[i] = fmt.Sprintf("%s:%d: %s", f.file, f.line, f.msg)
	}
	return out, nil
}

// missingInPkg walks one parsed package.
func missingInPkg(fset *token.FileSet, pkg *ast.Package) []finding {
	var out []finding
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, finding{
			file: p.Filename,
			line: p.Line,
			msg:  fmt.Sprintf("exported %s %s has no doc comment", what, name),
		})
	}
	pkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			pkgDoc = true
		}
	}
	if !pkgDoc {
		// Anchor to the lexically first file so the finding is stable run
		// to run (pkg.Files is a map).
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		if len(names) > 0 {
			report(pkg.Files[names[0]].Name.Pos(), "package", pkg.Name)
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if recv, exported := receiverName(d); recv != "" && !exported {
					continue // method on an unexported type: not API surface
				} else if recv != "" {
					report(d.Pos(), "method", recv+"."+d.Name.Name)
				} else {
					report(d.Pos(), "function", d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						// A doc comment on the grouped decl ("// Real-mode
						// protocol tags.") covers every spec in the block,
						// matching godoc's rendering.
						if d.Doc != nil || s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								what := "const"
								if d.Tok == token.VAR {
									what = "var"
								}
								report(n.Pos(), what, n.Name)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// receiverName returns a method's receiver type name and whether that
// type is exported; ("", false) for plain functions.
func receiverName(d *ast.FuncDecl) (string, bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name, x.IsExported()
		default:
			return "", false
		}
	}
}
