// Package core is the NewMadeleine analog: the communication engine that
// the paper extends with PIOMan. It implements the three-layer design of
// Fig. 3 — the application enqueues packs and returns to computing; the
// optimizer/scheduler picks packs when a rail is free (strategies: FIFO,
// aggregation, multirail); drivers submit to the wire — plus the two
// protocols the evaluation exercises:
//
//   - eager transfers (≤ the rail's rendezvous threshold): payload is
//     copied into a registered buffer and PIO/DMA'd; the copy is the
//     CPU-hungry step §2.2 offloads to idle cores;
//   - rendezvous transfers (> threshold): an RTS/CTS handshake followed by
//     a zero-copy DMA, whose reactivity §2.3 guarantees with background
//     progression.
//
// The engine runs in one of two modes: Sequential reproduces the original
// NewMadeleine baseline (all processing on the communicating thread, and
// progress only inside explicit waits); Multithreaded is the PIOMan-enabled
// version (registration-only sends, progress driven by idle cores, timer
// tasklets and blocking fallbacks through internal/piom).
package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"pioman/internal/nic"
	"pioman/internal/piom"
	"pioman/internal/sched"
	"pioman/internal/sync2"
	"pioman/internal/telemetry"
	"pioman/internal/trace"
	"pioman/internal/wire"
)

// Mode selects the engine's execution model.
type Mode int

// Engine modes.
const (
	// Sequential is the paper's baseline: the communicating thread does
	// all processing; nothing progresses between calls.
	Sequential Mode = iota
	// Multithreaded is the PIOMan-enabled engine: communication
	// operations run as events on whatever core is available.
	Multithreaded
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Sequential {
		return "sequential"
	}
	return "multithreaded"
}

// AnySource matches receives against any sender.
const AnySource = -1

// Config parameterizes an Engine.
type Config struct {
	// Mode selects baseline vs PIOMan-enabled behaviour.
	Mode Mode
	// OffloadEager, in Multithreaded mode, keeps eager submission out of
	// Isend (the §2.2 offload). Setting it false submits inline even in
	// Multithreaded mode — an ablation isolating rendezvous progression.
	OffloadEager bool
	// AdaptiveOffload implements the strategy the paper's conclusion
	// leaves as future work ("an adaptive strategy to choose whether to
	// offload communication or not"): Isend only defers the submission
	// when at least one core is idle to pick it up; with every core busy
	// it submits inline, since deferral would only postpone the work to
	// the wait. Only meaningful in Multithreaded mode with OffloadEager.
	AdaptiveOffload bool
	// Strategy picks the optimizer: "fifo" (default), "aggreg",
	// "multirail".
	Strategy string
	// AutoStripeWeights enables online stripe-weight tuning: the engine's
	// maintenance tick measures each rail's goodput (bytes moved per
	// microsecond, discounted by its loss ratio) from Stats deltas and
	// folds it into the live stripe weight as an EWMA, so a
	// degraded-but-alive rail sheds load mid-run instead of stalling
	// stripe tails. Off by default: benchmarks that sweep rails solo
	// (ForceDataRail phases) must not have their measured weights
	// re-tuned underneath them.
	AutoStripeWeights bool
	// MultirailMin is the smallest rendezvous payload the multirail
	// strategy splits across rails.
	MultirailMin int
	// MaxPendingRdvPerPeer caps how many rendezvous sends to one
	// destination may sit in the unacked replay window (RTS posted or
	// data in flight) at once. The self-healing sublayer retains every
	// unacked request — and its application buffer — until the
	// receiver's DATA-ack, so without a cap a sender bursting bulk
	// messages at a slow or dying peer accumulates replay state without
	// bound. Excess sends keep their sequence number and park in a
	// per-peer FIFO with no RTS on the wire; each DATA-ack admits the
	// next parked send. Isend never blocks. Zero selects
	// defaultMaxPendingRdv.
	MaxPendingRdvPerPeer int
	// WaitSpin bounds inline polling in Wait before blocking on the
	// completion flag. Zero selects the host-tuned default,
	// AutoWaitSpin(false); the mpi layer passes its NoIdlePolling flag
	// through so real-transport worlds spin less.
	WaitSpin time.Duration
	// Trace, if non-nil, records engine events.
	Trace *trace.Recorder
	// Metrics, if non-nil, registers the engine's counters, latency
	// histograms, and every rail driver's counters with the registry
	// under "node<rank>.*" names (docs/OBSERVABILITY.md catalogs them).
	// Leaving it nil keeps the engine exactly as unmetered as before:
	// recording sites guard on one nil check.
	Metrics *telemetry.Registry
	// MetricsPeers sizes the per-peer counter families
	// ("node<rank>.peer.<k>.*") — normally the world's node count. Zero
	// registers no per-peer series.
	MetricsPeers int
	// PeerDeadline bounds how long the engine keeps replaying toward a
	// silent peer before declaring the rank dead. With it set, every
	// inbound frame stamps the sender's last-heard clock, and a
	// rendezvous send whose replay timer finds the peer silent — nothing
	// heard on any rail since max(last frame, the request's posting) for
	// longer than the deadline — triggers MarkPeerDead: every pending
	// request targeting the rank completes with ErrPeerDead and new
	// posts to it fail fast. Zero (the default) disables engine-local
	// detection; requests to a crashed peer then replay forever unless a
	// cluster layer calls MarkPeerDead (docs/CLUSTER.md).
	PeerDeadline time.Duration
}

// Stats counts engine activity.
type Stats struct {
	SendsPosted    uint64
	RecvsPosted    uint64
	EagerSubmits   uint64
	OffloadSubmits uint64 // submissions executed off the posting thread
	RdvStarted     uint64
	Unexpected     uint64
	Aggregated     uint64
	ProgressPasses uint64
	// Self-healing counters (docs/FABRIC.md "Self-healing rendezvous"):
	// RdvReplays counts unacked rendezvous spans (or their RTS) re-posted
	// by the resend timer; RdvAcked counts rendezvous sends completed by
	// a receiver DATA-ack; RdvParked counts rendezvous sends that hit the
	// per-peer unacked window cap and waited for an ack before their RTS
	// went out; RailReadmits counts probation rails returned to the
	// stripe set by a successful health probe; StripeRetunes counts
	// online EWMA stripe-weight adjustments applied.
	RdvReplays    uint64
	RdvAcked      uint64
	RdvParked     uint64
	RailReadmits  uint64
	StripeRetunes uint64
	// Peer-death counters (docs/CLUSTER.md): PeerDead counts ranks this
	// engine declared dead (deadline detection or MarkPeerDead);
	// ReqsFailed counts requests completed with ErrPeerDead — pending
	// ones failed by the death sweep plus new posts refused fast.
	PeerDead   uint64
	ReqsFailed uint64
}

// Engine is one node's communication engine.
type Engine struct {
	node  int
	cfg   Config
	sch   *sched.Scheduler
	srv   *piom.Server
	rails []*nic.Driver
	strat strategy

	// qlock protects the request queues and matching state. Critical
	// sections are short (list manipulation only); long operations
	// (copies, submissions) run outside it.
	qlock      sync2.SpinLock
	posted     []*RecvReq
	unexpected []*unexMsg
	rdvSend    map[uint64]*SendReq
	// rdvRecv is keyed by (sender, msgID): msgIDs are only unique per
	// origin engine, so two senders' concurrent rendezvous to this node
	// routinely carry the same msgID — and multirail's failover resends
	// make stray DATA chunks a designed occurrence, so the composite key
	// is load-bearing, not defensive.
	rdvRecv map[rdvKey]*rdvRecvState
	// await holds rendezvous sends whose DATA has been posted but whose
	// receiver DATA-ack has not arrived yet — the sender half of the
	// acked-replay protocol. The application buffer doubles as the replay
	// buffer (the send is not complete, so the caller must not touch it),
	// which keeps replay zero-copy. Guarded by qlock.
	await map[uint64]*SendReq
	// rdvInFlight counts each peer's rendezvous sends inside the unacked
	// replay window (rdvSend ∪ await); rdvWait holds the overflow — sends
	// whose sequence number is assigned but whose RTS stays off the wire
	// until a DATA-ack frees a slot (Config.MaxPendingRdvPerPeer). FIFO,
	// guarded by qlock.
	rdvInFlight map[int]int
	rdvWait     map[int][]*SendReq
	// rdvDone remembers recently completed rendezvous receptions so a
	// replayed RTS or DATA chunk for one of them is re-acked instead of
	// re-executed — the receive-side idempotence of the replay protocol.
	// Bounded: a ring of doneRingCap keys backs the set, oldest evicted
	// first. Guarded by qlock.
	rdvDone  map[rdvKey]struct{}
	doneRing []rdvKey
	donePos  int
	doneFull bool
	// session identifies this engine incarnation; every RTS carries it so
	// a receiver can tell a restarted sender's fresh stream from a replay
	// of the old one (peerSession tracks the last session seen per peer).
	// peerSession is guarded by qlock.
	session     uint64
	peerSession map[int]uint64

	// Stream ordering: the wire interleaves small packets past bulk
	// transfers, so matchable packets (eager data and RTS) carry a
	// per-destination sequence number and are processed strictly in that
	// order at the receiver — out-of-order arrivals wait in stash. This
	// is the matching-order guarantee MX provides above its fragmenting
	// wire. All guarded by qlock.
	orderOut map[int]uint64                // next seq to assign, per dst
	orderIn  map[int]uint64                // last seq processed, per src
	stash    map[int]map[uint64]*stashedEv // out-of-order arrivals, per src

	// Event processing uses per-activity locks rather than one big engine
	// mutex (§2.1: "instead of locking the whole communication processing
	// with a mutex, it is possible to protect the processing of events
	// separately ... several threads can perform different operations at
	// the same time"): one core may drain arrivals while another performs
	// a submission.
	pollLock   sync2.SpinLock
	submitLock sync2.SpinLock

	// pollBuf is the engine's reusable receive batch: every progress pass
	// drains each rail through it with PollBatch, so a storm of small
	// packets costs one pollLock acquisition and one endpoint visit per
	// batch instead of per frame. Guarded by pollLock; sized once at
	// construction and never grown, which keeps the batched drain off the
	// allocator entirely.
	pollBuf []*wire.Packet

	// woken hands packets from BlockingWait's watcher to the batched
	// delivery path: the watcher never blocks on pollLock (a concurrent
	// poller would stall it for a whole drain otherwise) — it enqueues
	// the packet it woke on here and lets whichever pass next wins
	// pollLock deliver it. wokenLen keeps the hot path's emptiness check
	// off the lock.
	wokenMu    sync2.SpinLock
	woken      []wokenPkt
	wokenSpare []wokenPkt
	wokenLen   atomic.Int32

	// trainBuf is the reusable slice dequeueReady builds submission
	// trains in; every user holds submitLock, so one buffer serves the
	// engine and steady-state submission stays allocation-free.
	trainBuf []*pack
	// mtuOf is the per-destination MTU lookup handed to the strategy,
	// built once: allocating the closure per dequeue would put one heap
	// object on every polling pass.
	mtuOf func(dst int) int

	// biglock is the Sequential baseline's library-wide mutex: classical
	// thread-safe engines serialize every library call behind one lock
	// (§2: thread safety "except through a library-wide scope mutex"),
	// so concurrent threads of one node contend on it. Unused in
	// Multithreaded mode.
	biglock sync2.SpinLock

	ctrlHandler atomic.Pointer[func(*wire.Packet)]

	// railFilter, when non-empty, restricts rendezvous data placement to
	// the named rail (ForceDataRail) — a measurement hook, not a routing
	// policy.
	railFilter atomic.Pointer[string]

	// health tracks per-rail lifecycle state, indexed parallel to rails.
	// The slice is sized once at construction and its elements are only
	// ever addressed in place (they embed atomics).
	health []railHealth
	// probationCount mirrors how many rails are on probation, so hot
	// paths (dataRails, the maintenance gate) learn "all rails active"
	// from one atomic load instead of a scan.
	probationCount atomic.Int32
	// pendingRdv counts rendezvous sends the replay timer still owns
	// (posted but not yet DATA-acked); the maintenance gate skips the
	// timer scan entirely while it is zero.
	pendingRdv atomic.Int64
	// nextMaint is the unix-nanos time before which maybeMaint does
	// nothing; CAS-advanced so exactly one core pays each maintenance
	// scan. maintLock serializes the scan body; maintBuf and maintDone
	// are its reusable work lists (maintLock-owned).
	nextMaint atomic.Int64
	maintLock sync2.SpinLock
	maintBuf  []*SendReq
	maintDone []*SendReq

	// Peer-death state (Config.PeerDeadline, MarkPeerDead). deadPeers is
	// indexed by rank and sized from the default rail's world size;
	// deadCount mirrors how many are set, so the posting hot path learns
	// "everyone alive" from one atomic load. lastHeard (same indexing)
	// stamps the arrival time of the last frame from each peer and is
	// allocated only when PeerDeadline is set — without it the receive
	// path never reads the clock.
	deadPeers []atomic.Bool
	deadCount atomic.Int32
	lastHeard []atomic.Int64

	sendSeq atomic.Uint64
	msgID   atomic.Uint64

	nSends     atomic.Uint64
	nRecvs     atomic.Uint64
	nEager     atomic.Uint64
	nOffload   atomic.Uint64
	nRdv       atomic.Uint64
	nUnexp     atomic.Uint64
	nAggr      atomic.Uint64
	nProgress  atomic.Uint64
	nReplays   atomic.Uint64
	nAcks      atomic.Uint64
	nRdvParked atomic.Uint64
	nReadmits  atomic.Uint64
	nRetunes   atomic.Uint64
	nPeerDead  atomic.Uint64
	nReqFailed atomic.Uint64

	// tel holds the registered metric handles when Config.Metrics was
	// set; nil otherwise. Hot paths guard on this one pointer.
	tel *engineTelemetry
}

// New creates an engine for node on the given rails. rails[0] is the
// default inter-node rail; a rail whose driver reports Name()=="shm" is
// used for intra-node (self) traffic. The engine registers itself as a
// progress source on srv.
func New(node int, sch *sched.Scheduler, srv *piom.Server, rails []*nic.Driver, cfg Config) *Engine {
	if len(rails) == 0 {
		panic("core: engine needs at least one rail")
	}
	for _, r := range rails {
		if r.Self() != node {
			panic(fmt.Sprintf("core: rail %s endpoint %d does not match node %d", r.Name(), r.Self(), node))
		}
	}
	if cfg.WaitSpin <= 0 {
		cfg.WaitSpin = AutoWaitSpin(false)
	}
	if cfg.MultirailMin <= 0 {
		cfg.MultirailMin = 128 << 10
	}
	if cfg.MaxPendingRdvPerPeer <= 0 {
		cfg.MaxPendingRdvPerPeer = defaultMaxPendingRdv
	}
	e := &Engine{
		node:        node,
		cfg:         cfg,
		sch:         sch,
		srv:         srv,
		rails:       rails,
		rdvSend:     make(map[uint64]*SendReq),
		rdvInFlight: make(map[int]int),
		rdvWait:     make(map[int][]*SendReq),
		rdvRecv:     make(map[rdvKey]*rdvRecvState),
		await:       make(map[uint64]*SendReq),
		rdvDone:     make(map[rdvKey]struct{}),
		doneRing:    make([]rdvKey, doneRingCap),
		session:     newSessionID(),
		peerSession: make(map[int]uint64),
		health:      make([]railHealth, len(rails)),
		orderOut:    make(map[int]uint64),
		orderIn:     make(map[int]uint64),
		stash:       make(map[int]map[uint64]*stashedEv),
		pollBuf:     make([]*wire.Packet, pollBatchSize),
	}
	for i := range e.health {
		e.health[i].probeGap.Store(int64(probeGapInit))
		e.health[i].lastAt = time.Now().UnixNano()
	}
	if n := rails[0].Endpoint().Nodes(); n > 0 {
		e.deadPeers = make([]atomic.Bool, n)
		if cfg.PeerDeadline > 0 {
			e.lastHeard = make([]atomic.Int64, n)
			// A peer never heard from counts as silent since construction,
			// not since the epoch — a world that dies during rendezvous
			// setup still gets a full deadline before the verdict.
			now := time.Now().UnixNano()
			for i := range e.lastHeard {
				e.lastHeard[i].Store(now)
			}
		}
	}
	e.strat = newStrategy(cfg.Strategy)
	e.mtuOf = func(dst int) int { return e.railFor(dst).MTU() }
	if cfg.Metrics != nil {
		e.tel = newEngineTelemetry(cfg.Metrics, e, cfg.MetricsPeers)
		e.registerRails(cfg.Metrics)
	}
	if srv != nil {
		srv.Register(e)
	}
	return e
}

// AutoWaitSpin returns the Wait spin budget tuned to the host shape —
// the "real-mode latency tuning" knob. On machines with cores to burn
// (≥4 CPUs) a tight 300µs spin catches the common few-µs completion
// without a scheduler round trip. On small hosts, or whenever the
// caller runs with NoIdlePolling (real transports on machines where
// busy-polling starves the kernel or the peer process of the CPU that
// makes the awaited progress), waits yield early — 50µs — and lean on
// the blocking path instead. mpi.Config.WaitSpin overrides it.
func AutoWaitSpin(noIdlePolling bool) time.Duration {
	if noIdlePolling || runtime.NumCPU() < 4 {
		return 50 * time.Microsecond
	}
	return 300 * time.Microsecond
}

// tracing reports whether an event recorder is attached. Hot paths
// check it before building Recordf arguments: with tracing off the
// varargs boxing would be the only allocation left on the
// steady-state path.
func (e *Engine) tracing() bool { return e.cfg.Trace != nil }

// Node returns the engine's node id.
func (e *Engine) Node() int { return e.node }

// Mode returns the configured mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// Scheduler returns the node's scheduler.
func (e *Engine) Scheduler() *sched.Scheduler { return e.sch }

// SetCtrlHandler installs the callback for control packets (used by the
// MPI layer's collectives). The handler runs on the polling core.
func (e *Engine) SetCtrlHandler(h func(*wire.Packet)) {
	if h == nil {
		e.ctrlHandler.Store(nil)
		return
	}
	e.ctrlHandler.Store(&h)
}

// defaultRail returns the inter-node rail.
func (e *Engine) defaultRail() *nic.Driver { return e.rails[0] }

// Rails exposes the engine's rail drivers in registration order
// (rails[0] is the default inter-node rail). Callers must treat the
// slice as read-only; it exists so launchers and benchmarks can inspect
// per-rail stats and retune striping weights (Driver.SetStripeWeight)
// without the engine re-exporting every driver knob.
func (e *Engine) Rails() []*nic.Driver { return e.rails }

// ForceDataRail restricts rendezvous data placement to the named rail
// until reset with an empty name. It is a measurement hook: a bonded
// world can sweep each rail's solo bandwidth — and seed the striping
// weights from what it measured — without tearing the transports down
// between phases. A name matching no rail leaves placement unchanged.
func (e *Engine) ForceDataRail(name string) {
	if name == "" {
		e.railFilter.Store(nil)
		return
	}
	e.railFilter.Store(&name)
}

// railFor picks the rail for traffic to dst: self traffic prefers a
// shared-memory rail when one is configured.
func (e *Engine) railFor(dst int) *nic.Driver {
	if dst == e.node {
		for _, r := range e.rails {
			if r.Name() == "shm" {
				return r
			}
		}
	}
	return e.rails[0]
}

// Close shuts the engine's rail transports down. In-flight requests are
// not completed; callers quiesce application traffic first (the MPI
// layer's World.Close runs after every spawned thread joined). Sends
// after Close are dropped and counted by the drivers.
//
// Rails close in reverse registration order: secondary (bonded) rails
// first, the default rail last. The default rail carries the protocols'
// control traffic — the closer's final ack completes the peer's last
// request — so its Close drain must be the last thing holding the door.
func (e *Engine) Close() {
	for i := len(e.rails) - 1; i >= 0; i-- {
		e.rails[i].Close()
	}
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		SendsPosted:    e.nSends.Load(),
		RecvsPosted:    e.nRecvs.Load(),
		EagerSubmits:   e.nEager.Load(),
		OffloadSubmits: e.nOffload.Load(),
		RdvStarted:     e.nRdv.Load(),
		Unexpected:     e.nUnexp.Load(),
		Aggregated:     e.nAggr.Load(),
		ProgressPasses: e.nProgress.Load(),
		RdvReplays:     e.nReplays.Load(),
		RdvAcked:       e.nAcks.Load(),
		RdvParked:      e.nRdvParked.Load(),
		RailReadmits:   e.nReadmits.Load(),
		StripeRetunes:  e.nRetunes.Load(),
		PeerDead:       e.nPeerDead.Load(),
		ReqsFailed:     e.nReqFailed.Load(),
	}
}
