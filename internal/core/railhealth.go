package core

import (
	"sync/atomic"
	"time"

	"pioman/internal/nic"
	"pioman/internal/trace"
	"pioman/internal/wire"
)

// Rail lifecycle — probation, health probes, live re-admission — plus
// the online stripe-weight retune. A rail that fails a span submission
// is not abandoned for the life of the run (the pre-self-healing
// behavior): it moves to probation, where the maintenance tick probes it
// with a cheap ping frame at a backoff-spaced cadence; when a pong comes
// back with quiet loss counters the rail rejoins the stripe set live.
// Probation state machine per rail (docs/FABRIC.md):
//
//	active --span submission failed--> probation
//	probation --ping answered, counters quiet--> active
//	probation --probe unanswered--> probation (gap doubles, 50ms → 1s)

const (
	railActive    = 0
	railProbation = 1
	// probeGapInit/probeGapMax bound the probe cadence of a probation
	// rail: eager enough to readmit within ~100ms of recovery, backed
	// off enough that a rail dead for minutes costs one frame a second.
	probeGapInit = 50 * time.Millisecond
	probeGapMax  = time.Second
	// weightPeriod spaces online stripe-weight measurements; 50ms
	// windows are long enough for a goodput estimate to mean something.
	weightPeriod = 50 * time.Millisecond
	// weightAlpha is the EWMA blend: w' = (1-α)·w + α·measured.
	weightAlpha = 0.4
	// weightDeadband suppresses SetStripeWeight churn: retunes apply
	// only when the new weight moved more than 10% relative.
	weightDeadband = 0.10
	// rttAlpha is the EWMA blend for a rail's probe round-trip time.
	// RTT swings on a ping cadence are noisier than goodput windows, so
	// it smooths harder than weightAlpha.
	rttAlpha = 0.3
)

// railHealth is one rail's lifecycle state, held in the engine's health
// slice parallel to rails. Fields crossed by the polling path
// (demotion from stripeData, re-admission from handlePong) and the
// maintenance tick are atomics; the EWMA bookkeeping is touched only
// under maintLock.
type railHealth struct {
	state     atomic.Int32  // railActive or railProbation
	errsBase  atomic.Uint64 // SendErrs+LostFrames at the last probe
	errsSeen  atomic.Uint64 // SendErrs+LostFrames at the last maint scan
	probeGap  atomic.Int64  // current probe spacing, nanos
	nextProbe atomic.Int64  // unix nanos of the next due probe
	probeDst  atomic.Int32  // peer the probe pings (the failed span's dst)
	nextRTT   atomic.Int64  // unix nanos of the next RTT probe (active rails)
	rttNanos  atomic.Int64  // EWMA probe round-trip time, 0 = not yet measured

	// EWMA bookkeeping, maintLock-owned.
	lastBytes uint64
	lastSent  uint64
	lastLost  uint64
	lastAt    int64
}

// railIndex maps a rail driver back to its engine slot (rail counts are
// single digits; the scan is cheaper than a map).
func (e *Engine) railIndex(r *nic.Driver) int {
	for i, d := range e.rails {
		if d == r {
			return i
		}
	}
	return -1
}

// demoteRail moves a rail whose span submission failed to probation:
// dataRails stops striping onto it and the maintenance tick starts
// health-probing it toward dst. Idempotent under races — exactly one
// caller wins the state transition.
func (e *Engine) demoteRail(r *nic.Driver, dst int) {
	i := e.railIndex(r)
	if i < 0 {
		return
	}
	h := &e.health[i]
	if !h.state.CompareAndSwap(railActive, railProbation) {
		return
	}
	h.probeDst.Store(int32(dst))
	h.probeGap.Store(int64(probeGapInit))
	h.nextProbe.Store(time.Now().UnixNano())
	h.errsBase.Store(r.Stats().SendErrs + r.LostFrames())
	e.probationCount.Add(1)
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindRailProbation, -1, -1, 0, "rail %s -> probation", r.Name())
	}
}

// railMaint runs the rail-lifecycle half of the maintenance tick:
// asynchronous-loss demotions, due probation probes, then the online
// weight retune; caller holds maintLock.
//
// The demotion scan catches what submission-time detection cannot: a
// stream that dies moments *after* its span was accepted surfaces the
// loss asynchronously (docs/FABRIC.md on LostFrames vs SendErrs), so
// sendSpan's counters-quiet check passed. The tick sees the counters
// move between scans and moves the rail to probation then — the
// acked-replay timer re-stripes the lost transfer around it.
func (e *Engine) railMaint(now int64) {
	for i, r := range e.rails {
		h := &e.health[i]
		if h.state.Load() != railActive {
			continue
		}
		cur := r.Stats().SendErrs + r.LostFrames()
		if cur > h.errsSeen.Load() {
			h.errsSeen.Store(cur)
			// No failed destination in hand; probe toward any peer the
			// rail serves (rank 0, or 1 when we are rank 0).
			dst := 0
			if e.node == 0 {
				dst = 1
			}
			e.demoteRail(r, dst)
		}
	}
	if e.probationCount.Load() > 0 {
		for i := range e.rails {
			h := &e.health[i]
			if h.state.Load() != railProbation || now < h.nextProbe.Load() {
				continue
			}
			r := e.rails[i]
			dst := int(h.probeDst.Load())
			if e.PeerDead(dst) {
				// No point probing a corpse — and a blocking transport
				// (tcpfab's redial window) would stall the whole
				// maintenance pass dialing it.
				continue
			}
			// Rebaseline before each probe: a readmission requires the
			// loss counters quiet across the ping round trip itself. The
			// Seq carries the send stamp so the pong also yields an RTT
			// sample for the retune.
			h.errsBase.Store(r.Stats().SendErrs + r.LostFrames())
			r.SendPing(nic.Header{Src: e.node, Dst: dst, Tag: -1, Seq: uint64(now)})
			gap := h.probeGap.Load()
			h.nextProbe.Store(now + gap)
			if gap *= 2; gap > int64(probeGapMax) {
				gap = int64(probeGapMax)
			}
			h.probeGap.Store(gap)
		}
	}
	if e.cfg.AutoStripeWeights {
		e.rttProbes(now)
		e.retuneWeights(now)
	}
}

// rttProbes sends a timestamped health ping on each active striping rail
// once per weightPeriod; caller holds maintLock. The pong echoes the
// stamp (handlePong) and the EWMA round-trip time feeds the latency
// penalty in retuneWeights — queueing delay that a goodput window cannot
// see. Probes go to a fixed representative peer (rank 0, or 1 when we
// are rank 0), skipping it once it is declared dead.
func (e *Engine) rttProbes(now int64) {
	dst := 0
	if e.node == 0 {
		dst = 1
	}
	if e.PeerDead(dst) {
		return
	}
	for i, r := range e.rails {
		h := &e.health[i]
		if h.state.Load() != railActive || r.StripeWeight() <= 0 {
			continue
		}
		if now < h.nextRTT.Load() {
			continue
		}
		h.nextRTT.Store(now + int64(weightPeriod))
		r.SendPing(nic.Header{Src: e.node, Dst: dst, Tag: -1, Seq: uint64(now)})
	}
}

// handlePing answers a peer's rail health probe on the rail it arrived
// on — the round trip is the health evidence, so the reply must not be
// rerouted.
func (e *Engine) handlePing(rail *nic.Driver, p *wire.Packet) {
	rail.SendPong(nic.Header{Src: e.node, Dst: p.Src, Tag: -1, Seq: p.Seq})
}

// handlePong judges a probation rail's probe reply: the pong proves the
// rail carries frames both ways again, and quiet loss counters since the
// ping prove nothing else died meanwhile — together that readmits the
// rail to the stripe set, live. A pong with moved counters leaves the
// rail on probation; the next probe rebaselines and tries again.
func (e *Engine) handlePong(rail *nic.Driver, p *wire.Packet) {
	i := e.railIndex(rail)
	if i < 0 {
		return
	}
	h := &e.health[i]
	// Every ping carries its send stamp in Seq; the echo is an RTT
	// sample for the retune's latency penalty regardless of whether the
	// rail is on probation.
	if p.Seq != 0 {
		if rtt := time.Now().UnixNano() - int64(p.Seq); rtt > 0 {
			prev := h.rttNanos.Load()
			if prev == 0 {
				h.rttNanos.Store(rtt)
			} else {
				h.rttNanos.Store(int64((1-rttAlpha)*float64(prev) + rttAlpha*float64(rtt)))
			}
		}
	}
	if h.state.Load() != railProbation {
		return
	}
	cur := rail.Stats().SendErrs + rail.LostFrames()
	if cur != h.errsBase.Load() {
		return
	}
	if !h.state.CompareAndSwap(railProbation, railActive) {
		return
	}
	// Losses accrued while on probation (replay attempts, unanswered
	// pings) are spent history, not fresh evidence: rebase the demotion
	// scan so they cannot re-demote the rail on the next tick.
	h.errsSeen.Store(cur)
	h.probeGap.Store(int64(probeGapInit))
	e.probationCount.Add(-1)
	e.nReadmits.Add(1)
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindRailReadmit, -1, -1, 0, "rail %s readmitted", rail.Name())
	}
}

// retuneWeights folds each rail's measured goodput into its live stripe
// weight as an EWMA; caller holds maintLock. Goodput is bytes moved per
// microsecond over the window, discounted by the window's loss ratio and
// by the rail's probe RTT relative to the best rail's, so a
// degraded-but-alive rail (delivering, but slowly, lossily, or behind a
// deep queue) sheds stripe share continuously instead of stalling tails
// at full share. The RTT penalty is what catches latency a goodput
// window cannot see: a rail that still moves bytes but does so k× slower
// round-trip gets its measured goodput divided by k.
// Idle rails and rails whose weight is zero (deliberately out of the
// stripe set) are left alone.
func (e *Engine) retuneWeights(now int64) {
	// The penalty baseline is the fastest active striping rail; with one
	// rail (or no RTT samples yet) the penalty is a no-op.
	minRTT := int64(0)
	for i, r := range e.rails {
		h := &e.health[i]
		if h.state.Load() != railActive || r.StripeWeight() <= 0 {
			continue
		}
		if rtt := h.rttNanos.Load(); rtt > 0 && (minRTT == 0 || rtt < minRTT) {
			minRTT = rtt
		}
	}
	for i, r := range e.rails {
		h := &e.health[i]
		if h.state.Load() != railActive {
			// A probation rail carries no stripe traffic; freeze its weight
			// so it rejoins with the share it held when it failed instead
			// of one decayed by idle windows.
			continue
		}
		if now-h.lastAt < int64(weightPeriod) {
			continue
		}
		st := r.Stats()
		bytes := st.DataBytes + st.EagerBytes
		sent := st.DataSent + st.EagerSent
		lost := st.SendErrs + r.LostFrames()
		dBytes, dSent, dLost := bytes-h.lastBytes, sent-h.lastSent, lost-h.lastLost
		dt := now - h.lastAt
		h.lastBytes, h.lastSent, h.lastLost, h.lastAt = bytes, sent, lost, now
		if dt > 4*int64(weightPeriod) {
			// Stale window — the rail just came off probation (baselines
			// frozen) or the engine idled. The deltas span the gap, so a
			// goodput computed from them is garbage; rebaseline and measure
			// from the next window.
			continue
		}
		if dSent == 0 || dBytes == 0 {
			continue
		}
		w := r.StripeWeight()
		if w <= 0 {
			continue
		}
		lossRatio := float64(dLost) / float64(dSent)
		if lossRatio > 1 {
			lossRatio = 1
		}
		measured := float64(dBytes) / (float64(dt) / 1e3) * (1 - lossRatio)
		if rtt := h.rttNanos.Load(); rtt > 0 && minRTT > 0 && rtt > minRTT {
			measured *= float64(minRTT) / float64(rtt)
		}
		next := (1-weightAlpha)*w + weightAlpha*measured
		if diff := next - w; diff < w*weightDeadband && diff > -w*weightDeadband {
			continue
		}
		r.SetStripeWeight(next)
		e.nRetunes.Add(1)
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindData, -1, -1, 0, "rail %s weight %.0f -> %.0f", r.Name(), w, next)
		}
	}
}
