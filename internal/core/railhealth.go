package core

import (
	"sync/atomic"
	"time"

	"pioman/internal/nic"
	"pioman/internal/trace"
	"pioman/internal/wire"
)

// Rail lifecycle — probation, health probes, live re-admission — plus
// the online stripe-weight retune. A rail that fails a span submission
// is not abandoned for the life of the run (the pre-self-healing
// behavior): it moves to probation, where the maintenance tick probes it
// with a cheap ping frame at a backoff-spaced cadence; when a pong comes
// back with quiet loss counters the rail rejoins the stripe set live.
// Probation state machine per rail (docs/FABRIC.md):
//
//	active --span submission failed--> probation
//	probation --ping answered, counters quiet--> active
//	probation --probe unanswered--> probation (gap doubles, 50ms → 1s)

const (
	railActive    = 0
	railProbation = 1
	// probeGapInit/probeGapMax bound the probe cadence of a probation
	// rail: eager enough to readmit within ~100ms of recovery, backed
	// off enough that a rail dead for minutes costs one frame a second.
	probeGapInit = 50 * time.Millisecond
	probeGapMax  = time.Second
	// weightPeriod spaces online stripe-weight measurements; 50ms
	// windows are long enough for a goodput estimate to mean something.
	weightPeriod = 50 * time.Millisecond
	// weightAlpha is the EWMA blend: w' = (1-α)·w + α·measured.
	weightAlpha = 0.4
	// weightDeadband suppresses SetStripeWeight churn: retunes apply
	// only when the new weight moved more than 10% relative.
	weightDeadband = 0.10
)

// railHealth is one rail's lifecycle state, held in the engine's health
// slice parallel to rails. Fields crossed by the polling path
// (demotion from stripeData, re-admission from handlePong) and the
// maintenance tick are atomics; the EWMA bookkeeping is touched only
// under maintLock.
type railHealth struct {
	state     atomic.Int32  // railActive or railProbation
	errsBase  atomic.Uint64 // SendErrs+LostFrames at the last probe
	errsSeen  atomic.Uint64 // SendErrs+LostFrames at the last maint scan
	probeGap  atomic.Int64  // current probe spacing, nanos
	nextProbe atomic.Int64  // unix nanos of the next due probe
	probeDst  atomic.Int32  // peer the probe pings (the failed span's dst)

	// EWMA bookkeeping, maintLock-owned.
	lastBytes uint64
	lastSent  uint64
	lastLost  uint64
	lastAt    int64
}

// railIndex maps a rail driver back to its engine slot (rail counts are
// single digits; the scan is cheaper than a map).
func (e *Engine) railIndex(r *nic.Driver) int {
	for i, d := range e.rails {
		if d == r {
			return i
		}
	}
	return -1
}

// demoteRail moves a rail whose span submission failed to probation:
// dataRails stops striping onto it and the maintenance tick starts
// health-probing it toward dst. Idempotent under races — exactly one
// caller wins the state transition.
func (e *Engine) demoteRail(r *nic.Driver, dst int) {
	i := e.railIndex(r)
	if i < 0 {
		return
	}
	h := &e.health[i]
	if !h.state.CompareAndSwap(railActive, railProbation) {
		return
	}
	h.probeDst.Store(int32(dst))
	h.probeGap.Store(int64(probeGapInit))
	h.nextProbe.Store(time.Now().UnixNano())
	h.errsBase.Store(r.Stats().SendErrs + r.LostFrames())
	e.probationCount.Add(1)
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindRailProbation, -1, -1, 0, "rail %s -> probation", r.Name())
	}
}

// railMaint runs the rail-lifecycle half of the maintenance tick:
// asynchronous-loss demotions, due probation probes, then the online
// weight retune; caller holds maintLock.
//
// The demotion scan catches what submission-time detection cannot: a
// stream that dies moments *after* its span was accepted surfaces the
// loss asynchronously (docs/FABRIC.md on LostFrames vs SendErrs), so
// sendSpan's counters-quiet check passed. The tick sees the counters
// move between scans and moves the rail to probation then — the
// acked-replay timer re-stripes the lost transfer around it.
func (e *Engine) railMaint(now int64) {
	for i, r := range e.rails {
		h := &e.health[i]
		if h.state.Load() != railActive {
			continue
		}
		cur := r.Stats().SendErrs + r.LostFrames()
		if cur > h.errsSeen.Load() {
			h.errsSeen.Store(cur)
			// No failed destination in hand; probe toward any peer the
			// rail serves (rank 0, or 1 when we are rank 0).
			dst := 0
			if e.node == 0 {
				dst = 1
			}
			e.demoteRail(r, dst)
		}
	}
	if e.probationCount.Load() > 0 {
		for i := range e.rails {
			h := &e.health[i]
			if h.state.Load() != railProbation || now < h.nextProbe.Load() {
				continue
			}
			r := e.rails[i]
			// Rebaseline before each probe: a readmission requires the
			// loss counters quiet across the ping round trip itself.
			h.errsBase.Store(r.Stats().SendErrs + r.LostFrames())
			r.SendPing(nic.Header{Src: e.node, Dst: int(h.probeDst.Load()), Tag: -1})
			gap := h.probeGap.Load()
			h.nextProbe.Store(now + gap)
			if gap *= 2; gap > int64(probeGapMax) {
				gap = int64(probeGapMax)
			}
			h.probeGap.Store(gap)
		}
	}
	if e.cfg.AutoStripeWeights {
		e.retuneWeights(now)
	}
}

// handlePing answers a peer's rail health probe on the rail it arrived
// on — the round trip is the health evidence, so the reply must not be
// rerouted.
func (e *Engine) handlePing(rail *nic.Driver, p *wire.Packet) {
	rail.SendPong(nic.Header{Src: e.node, Dst: p.Src, Tag: -1, Seq: p.Seq})
}

// handlePong judges a probation rail's probe reply: the pong proves the
// rail carries frames both ways again, and quiet loss counters since the
// ping prove nothing else died meanwhile — together that readmits the
// rail to the stripe set, live. A pong with moved counters leaves the
// rail on probation; the next probe rebaselines and tries again.
func (e *Engine) handlePong(rail *nic.Driver, p *wire.Packet) {
	i := e.railIndex(rail)
	if i < 0 {
		return
	}
	h := &e.health[i]
	if h.state.Load() != railProbation {
		return
	}
	cur := rail.Stats().SendErrs + rail.LostFrames()
	if cur != h.errsBase.Load() {
		return
	}
	if !h.state.CompareAndSwap(railProbation, railActive) {
		return
	}
	// Losses accrued while on probation (replay attempts, unanswered
	// pings) are spent history, not fresh evidence: rebase the demotion
	// scan so they cannot re-demote the rail on the next tick.
	h.errsSeen.Store(cur)
	h.probeGap.Store(int64(probeGapInit))
	e.probationCount.Add(-1)
	e.nReadmits.Add(1)
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindRailReadmit, -1, -1, 0, "rail %s readmitted", rail.Name())
	}
}

// retuneWeights folds each rail's measured goodput into its live stripe
// weight as an EWMA; caller holds maintLock. Goodput is bytes moved per
// microsecond over the window, discounted by the window's loss ratio, so
// a degraded-but-alive rail (delivering, but slowly or lossily) sheds
// stripe share continuously instead of stalling tails at full share.
// Idle rails and rails whose weight is zero (deliberately out of the
// stripe set) are left alone.
func (e *Engine) retuneWeights(now int64) {
	for i, r := range e.rails {
		h := &e.health[i]
		if h.state.Load() != railActive {
			// A probation rail carries no stripe traffic; freeze its weight
			// so it rejoins with the share it held when it failed instead
			// of one decayed by idle windows.
			continue
		}
		if now-h.lastAt < int64(weightPeriod) {
			continue
		}
		st := r.Stats()
		bytes := st.DataBytes + st.EagerBytes
		sent := st.DataSent + st.EagerSent
		lost := st.SendErrs + r.LostFrames()
		dBytes, dSent, dLost := bytes-h.lastBytes, sent-h.lastSent, lost-h.lastLost
		dt := now - h.lastAt
		h.lastBytes, h.lastSent, h.lastLost, h.lastAt = bytes, sent, lost, now
		if dt > 4*int64(weightPeriod) {
			// Stale window — the rail just came off probation (baselines
			// frozen) or the engine idled. The deltas span the gap, so a
			// goodput computed from them is garbage; rebaseline and measure
			// from the next window.
			continue
		}
		if dSent == 0 || dBytes == 0 {
			continue
		}
		w := r.StripeWeight()
		if w <= 0 {
			continue
		}
		lossRatio := float64(dLost) / float64(dSent)
		if lossRatio > 1 {
			lossRatio = 1
		}
		measured := float64(dBytes) / (float64(dt) / 1e3) * (1 - lossRatio)
		next := (1-weightAlpha)*w + weightAlpha*measured
		if diff := next - w; diff < w*weightDeadband && diff > -w*weightDeadband {
			continue
		}
		r.SetStripeWeight(next)
		e.nRetunes.Add(1)
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindData, -1, -1, 0, "rail %s weight %.0f -> %.0f", r.Name(), w, next)
		}
	}
}
