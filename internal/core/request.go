package core

import (
	"runtime"
	"sync"
	"time"

	"pioman/internal/piom"
	"pioman/internal/ptime"
	"pioman/internal/sched"
	"pioman/internal/topo"
	"pioman/internal/trace"
)

// Request freelists. Isend/Irecv draw their request structs here so the
// steady-state communication path allocates nothing per operation; a
// request flows back via its Release method once the owner is done with
// it. Release is an optimization, not an obligation: requests that are
// never released are reclaimed by the GC exactly as before, so only
// callers that own the full lifecycle (the mpi layer's blocking
// wrappers, benchmark loops) need bother.
var (
	sendReqPool = sync.Pool{New: func() any { return new(SendReq) }}
	recvReqPool = sync.Pool{New: func() any { return new(RecvReq) }}
)

// recycleWait spins until the request's completion flag has settled: a
// waiter can observe completion while the completing core is still
// inside the flag's wakeup (a few instructions behind), and recycling
// the struct under it would hand those instructions another request's
// memory. The window is nanoseconds; Gosched keeps the spin polite.
func recycleWait(req *piom.Request) {
	for !req.Flag().Settled() {
		runtime.Gosched()
	}
}

// SendReq is an asynchronous send request. An eager send completes when
// its payload has been submitted to the NIC (copied out of the
// application buffer). A rendezvous send completes when the receiver's
// DATA-ack arrives — the self-healing protocol's end-to-end
// acknowledgment — so the application buffer, which doubles as the
// zero-copy replay buffer, stays untouchable until the peer provably
// holds the whole payload.
type SendReq struct {
	req   piom.Request
	eng   *Engine
	dst   int
	tag   int
	seq   uint64
	msgID uint64 // rendezvous only
	data  []byte
	rdv   bool
	// submitted flags that an eager pack left the strategy queue; guarded
	// by the engine's qlock.
	submitted bool
	// ctsSeen is set when the rendezvous acknowledgement arrived; guarded
	// by qlock.
	ctsSeen bool
	// Acked-replay timer state, guarded by qlock: the resend deadline
	// and its capped exponential backoff. replaying marks a request the
	// maintenance tick is re-sending right now; an ack that lands
	// mid-resend must not complete (and let the application recycle) the
	// request under the resend, so it parks the completion in
	// ackDeferred and replayDue runs it afterwards.
	nextResend  time.Time
	backoff     time.Duration
	replaying   bool
	ackDeferred bool
	// failed, guarded by qlock, carries the error a deferred completion
	// must surface: when the death sweep finds the request mid-replay it
	// cannot complete it under the resend, so the error parks here and
	// replayDue's retire pass completes with it.
	failed error
	// postedAt stamps when the rendezvous send was posted; only set when
	// Config.PeerDeadline is active, where it anchors the silence
	// measurement (silence counts from max(lastHeard, postedAt)).
	postedAt time.Time
	// rtsAt stamps when the RTS was posted, for the metered engine's
	// handshake-latency histogram. Only set when metrics are attached,
	// and only on the rendezvous path — the eager hot path never reads
	// the clock for it.
	rtsAt time.Time
}

// bumpBackoff advances the resend deadline with capped exponential
// backoff; caller holds qlock.
func (r *SendReq) bumpBackoff(now time.Time) {
	r.backoff *= 2
	if r.backoff > replayRTOMax {
		r.backoff = replayRTOMax
	}
	r.nextResend = now.Add(r.backoff)
}

// Dst returns the destination node.
func (r *SendReq) Dst() int { return r.dst }

// Tag returns the communication tag.
func (r *SendReq) Tag() int { return r.tag }

// Len returns the payload length.
func (r *SendReq) Len() int { return len(r.data) }

// Rendezvous reports whether the send uses the rendezvous protocol.
func (r *SendReq) Rendezvous() bool { return r.rdv }

// Completed reports whether the send has finished.
func (r *SendReq) Completed() bool { return r.req.Completed() }

// Err returns the error the send completed with — ErrPeerDead when the
// destination rank was declared dead — or nil. Valid after completion.
func (r *SendReq) Err() error { return r.req.Err() }

// Req exposes the underlying event-server request.
func (r *SendReq) Req() *piom.Request { return &r.req }

// Release returns a completed request to the engine's freelist. The
// caller must be the request's sole owner and must not touch r again:
// the next Isend anywhere in the process may reuse the struct.
// Releasing an incomplete request panics — the engine still holds it.
func (r *SendReq) Release() {
	if !r.req.Completed() {
		panic("core: Release of an incomplete SendReq")
	}
	recycleWait(&r.req)
	*r = SendReq{}
	sendReqPool.Put(r)
}

// RecvReq is an asynchronous receive request.
type RecvReq struct {
	req piom.Request
	eng *Engine
	src int // AnySource or a node id
	tag int
	buf []byte
	// Guarded by qlock until completion:
	n         int
	from      int
	gotTag    int
	truncated bool
}

// Completed reports whether the receive has finished.
func (r *RecvReq) Completed() bool { return r.req.Completed() }

// Err returns the error the receive completed with — ErrPeerDead when
// the named source rank was declared dead — or nil. Valid after
// completion.
func (r *RecvReq) Err() error { return r.req.Err() }

// Req exposes the underlying event-server request.
func (r *RecvReq) Req() *piom.Request { return &r.req }

// Len returns the received byte count (valid after completion).
func (r *RecvReq) Len() int { return r.n }

// From returns the sender's node id (valid after completion).
func (r *RecvReq) From() int { return r.from }

// MatchedTag returns the tag of the matched message (valid after
// completion); useful when the receive was posted with AnyTag.
func (r *RecvReq) MatchedTag() int { return r.gotTag }

// Truncated reports whether the message exceeded the posted buffer (valid
// after completion).
func (r *RecvReq) Truncated() bool { return r.truncated }

// Release returns a completed request to the engine's freelist. The
// caller must have read every result it needs (Len, From, MatchedTag,
// Truncated) and must not touch r again: the next Irecv anywhere in the
// process may reuse the struct. Releasing an incomplete request panics.
func (r *RecvReq) Release() {
	if !r.req.Completed() {
		panic("core: Release of an incomplete RecvReq")
	}
	recycleWait(&r.req)
	*r = RecvReq{}
	recvReqPool.Put(r)
}

// Isend posts an asynchronous send of data to dst under tag.
//
// In Multithreaded mode with offloading, this only registers the request
// and generates a progress event — "the asynchronous send actually only
// registers the request in a work list and generates an event" (§2.1) —
// so it returns in well under a microsecond regardless of size. In
// Sequential mode (or with offloading disabled) the eager submission cost
// is paid here, on the calling thread, as classical engines do.
//
// The caller must not modify data until the request completes.
func (e *Engine) Isend(dst, tag int, data []byte) *SendReq {
	if e.cfg.Mode == Sequential {
		// Library-wide mutex of the baseline: entering the library
		// contends with any other thread's call, including long
		// wait-driven progress passes.
		e.biglock.Lock()
		defer e.biglock.Unlock()
	}
	if e.postFailsFast(dst) {
		return e.failSend(dst, tag, data)
	}
	rail := e.railFor(dst)
	r := sendReqPool.Get().(*SendReq)
	r.eng, r.dst, r.tag, r.data = e, dst, tag, data
	r.rdv = len(data) > rail.EagerMax()
	e.sendSeq.Add(1)
	e.nSends.Add(1)
	e.tel.notePeerSent(dst)

	if r.rdv {
		r.msgID = e.msgID.Add(1)
		if e.tel != nil {
			r.rtsAt = time.Now()
		}
		if e.cfg.PeerDeadline > 0 {
			r.postedAt = time.Now()
		}
		// Arm the acked-replay timer: the request stays owned by the
		// engine (rdvSend, then await) until the receiver's DATA-ack,
		// and the resend deadline re-posts whatever got lost meanwhile.
		r.backoff = replayRTOInit
		r.nextResend = time.Now().Add(replayRTOInit)
		e.pendingRdv.Add(1)
		e.qlock.Lock()
		r.seq = e.orderOut[dst] + 1
		e.orderOut[dst] = r.seq
		// The unacked replay window to this peer is bounded: past the cap
		// the send keeps its place in the stream but parks, RTS withheld,
		// until a DATA-ack admits it. Isend still never blocks, and the
		// replay timer never scans parked requests — they have nothing on
		// the wire to replay.
		if e.rdvInFlight[dst] >= e.cfg.MaxPendingRdvPerPeer {
			e.rdvWait[dst] = append(e.rdvWait[dst], r)
			e.qlock.Unlock()
			e.nRdvParked.Add(1)
			if e.tracing() {
				e.cfg.Trace.Recordf(trace.KindRegister, -1, tag, len(data), "isend dst=%d seq=%d parked", dst, r.seq)
			}
			e.nRdv.Add(1)
			return r
		}
		e.rdvInFlight[dst]++
		e.rdvSend[r.msgID] = r
		e.qlock.Unlock()
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindRegister, -1, tag, len(data), "isend dst=%d seq=%d", dst, r.seq)
		}
		e.nRdv.Add(1)
		// The RTS is cheap; posting it immediately starts the handshake
		// with no loss of asynchrony (the expensive part is reacting to
		// the CTS, which background progression handles). It carries the
		// engine's session id so a receiver can tell a restarted
		// sender's fresh stream from a replay of the old one.
		rail.SendRTS(railHeader(e.node, dst, tag, r.seq, r.msgID), len(data), e.session)
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindRTS, -1, tag, len(data), "msgid=%d", r.msgID)
		}
		e.kick()
		return r
	}

	e.qlock.Lock()
	r.seq = e.orderOut[dst] + 1
	e.orderOut[dst] = r.seq
	e.strat.Enqueue(getPack(r))
	e.qlock.Unlock()
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindRegister, -1, tag, len(data), "isend dst=%d seq=%d", dst, r.seq)
	}

	if e.cfg.Mode == Multithreaded {
		if e.cfg.OffloadEager {
			if e.cfg.AdaptiveOffload && e.sch != nil && e.sch.IdleCores() == 0 {
				// Adaptive policy (the paper's future-work strategy):
				// nobody is idle to run the offloaded submission, so
				// deferring would only delay it to the wait — submit
				// inline instead.
				e.submitInline(r)
				return r
			}
			// Registration only: an idle core picks up the submission.
			if e.tracing() {
				e.cfg.Trace.Recordf(trace.KindEventCreate, -1, tag, len(data), "offload pending")
			}
			e.kick()
			return r
		}
		// Offload disabled (ablation): the communicating thread submits
		// inline, like classical thread-safe engines (§2.2: "the packet
		// is actually submitted to the network by the application thread
		// itself"), spinning until the NIC accepted it.
		e.submitInline(r)
		return r
	}
	// Sequential baseline: the pack stays in the waiting list until the
	// library is re-entered. The original NewMadeleine's scheduler "is
	// only activated when a NIC becomes idle" — nothing progresses while
	// the application computes, which is exactly why Fig. 5 measures
	// sum(communication, computation) for it.
	return r
}

// Irecv posts an asynchronous receive into buf, matching sender src (or
// AnySource) and tag. If a matching unexpected message already arrived it
// completes immediately, paying the pool-to-application copy here (§2.2's
// second copy).
func (e *Engine) Irecv(src, tag int, buf []byte) *RecvReq {
	if e.cfg.Mode == Sequential {
		e.biglock.Lock()
		defer e.biglock.Unlock()
	}
	if src != AnySource && e.postFailsFast(src) {
		return e.failRecv(src, tag, buf)
	}
	r := recvReqPool.Get().(*RecvReq)
	r.eng, r.src, r.tag, r.buf = e, src, tag, buf
	e.nRecvs.Add(1)
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindRegister, -1, tag, len(buf), "irecv src=%d", src)
	}

	e.qlock.Lock()
	u := e.takeUnexpected(src, tag)
	if u == nil {
		e.posted = append(e.posted, r)
		e.qlock.Unlock()
		e.kick()
		return r
	}
	e.qlock.Unlock()
	e.deliverUnexpected(r, u)
	return r
}

// kick pokes the event server so a pending operation is noticed promptly
// even if every core is mid-quantum.
func (e *Engine) kick() {
	if e.cfg.Mode == Multithreaded && e.srv != nil {
		e.srv.Schedule()
	}
}

// Wait blocks the calling thread until req completes, driving progress
// per the engine mode.
//
// The Sequential engine polls inline under the library-wide mutex — that
// is the only progress it ever makes. The Multithreaded engine spins
// briefly on the event server (completions usually arrive from another
// core within a few µs), then genuinely blocks: the thread releases its
// core — so the freed core's worker starts polling — and Marcel
// reschedules it when whichever core detects the event sets the
// completion flag (§3.2: "Pioman unblocks the corresponding thread and
// asks Marcel to schedule it"). Blocking without releasing the core would
// deadlock a fully-loaded node: every core would sit in a blocked thread
// with nobody left to poll.
func (e *Engine) Wait(req *piom.Request, th *sched.Thread) {
	if req.Completed() {
		return
	}
	core := th.Core()
	if e.cfg.Mode == Sequential || e.srv == nil {
		// Each progress step holds the library-wide mutex, as the
		// baseline's thread-safety model dictates; the lock is released
		// between single-event steps so other threads' library calls
		// interleave at event granularity. The thread periodically yields
		// its core so sibling threads are not starved on oversubscribed
		// nodes.
		yieldAt := time.Now().Add(sequentialYieldQuantum)
		for !req.Completed() {
			e.biglock.Lock()
			e.progressOne(core)
			e.biglock.Unlock()
			if time.Now().After(yieldAt) {
				th.Yield()
				core = th.Core()
				yieldAt = time.Now().Add(sequentialYieldQuantum)
			}
		}
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindWakeup, int(core), -1, 0, "inline")
		}
		return
	}
	deadline := time.Now().Add(e.cfg.WaitSpin)
	for !req.Completed() {
		e.pollUncounted(core)
		if req.Completed() {
			break
		}
		if time.Now().After(deadline) {
			th.Block(req.Flag())
			break
		}
	}
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindWakeup, int(core), -1, 0, "event")
	}
}

// sequentialYieldQuantum bounds how long a sequential wait monopolizes a
// core before letting other runnable threads in.
const sequentialYieldQuantum = 100 * time.Microsecond

// pollUncounted runs one event-server poll. Under virtual-time CPU
// charging (ptime.SetVirtual) the poll is wrapped Uncounted: progress
// work a waiting thread happens to pick up stands in for work an idle
// core would have done in parallel, so billing it to the waiter would
// serialize in virtual time what the Multithreaded engine overlaps in
// real time. The Sequential baseline never comes through here — its
// inline progress is the cost the engine pays by design, and it stays
// fully counted.
func (e *Engine) pollUncounted(core topo.CoreID) {
	if ptime.VirtualEnabled() {
		ptime.Uncounted(func() { e.srv.Poll(core) })
		return
	}
	e.srv.Poll(core)
}

// WaitSend waits for a send request on the calling thread.
func (e *Engine) WaitSend(r *SendReq, th *sched.Thread) { e.Wait(&r.req, th) }

// WaitRecv waits for a receive request on the calling thread.
func (e *Engine) WaitRecv(r *RecvReq, th *sched.Thread) { e.Wait(&r.req, th) }

// WaitAll waits for a set of requests.
func (e *Engine) WaitAll(th *sched.Thread, reqs ...*piom.Request) {
	for _, r := range reqs {
		e.Wait(r, th)
	}
}

// Await blocks a plain goroutine (one not scheduled on a simulated core)
// until req completes. It never drives progress; use it only in
// Multithreaded mode where background progression is guaranteed.
func (e *Engine) Await(req *piom.Request, spin time.Duration) {
	req.Flag().SpinWait(spin)
}
