package core

import (
	"errors"
	"time"

	"pioman/internal/trace"
)

// Rank-death detection and bounded-failure request semantics
// (docs/CLUSTER.md). Before this layer existed a crashed peer was a
// silent hang: the acked-replay timer re-sent RTS/DATA forever at the
// 400ms backoff cap and Wait never returned. Now death is a detected,
// reported, survivable event:
//
//   - detection is send-driven: with Config.PeerDeadline set, the replay
//     timer's overdue scan checks how long the peer has been silent —
//     nothing heard on any rail since max(last inbound frame, the
//     request's posting) — and past the deadline declares the rank dead.
//     Silence across every rail while replays go unanswered is the
//     rail-health consensus of the registry-less mode; a cluster layer
//     with a real failure detector (missed heartbeats at the registry)
//     short-circuits it by calling MarkPeerDead directly;
//   - the death sweep completes every pending request targeting the rank
//     with ErrPeerDead — rendezvous sends in the replay window, parked
//     sends, posted receives naming the rank, in-flight rendezvous
//     receptions — and new posts to it fail fast;
//   - survivors keep communicating: only state keyed to the dead rank is
//     touched, AnySource receives stay posted, and the mpi layer shrinks
//     its collectives to the survivor set.
//
// The no-failure fast path pays one atomic load per post (deadCount) and,
// only when PeerDeadline is set, one clock stamp per inbound frame.

// ErrPeerDead is the completion error of every request targeting a rank
// that was declared dead — by deadline detection or by the cluster
// layer's MarkPeerDead. Waits on such requests return normally; the
// request's Err reports the reason.
var ErrPeerDead = errors.New("core: peer rank is dead")

// PeerDead reports whether rank has been declared dead on this engine.
func (e *Engine) PeerDead(rank int) bool {
	return rank >= 0 && rank < len(e.deadPeers) && e.deadPeers[rank].Load()
}

// postFailsFast reports whether a new post targeting rank must fail
// immediately. The deadCount gate keeps the all-alive hot path to one
// atomic load.
func (e *Engine) postFailsFast(rank int) bool {
	return e.deadCount.Load() != 0 && e.PeerDead(rank)
}

// noteHeard stamps the last-heard clock for src; called from the packet
// handler only when deadline tracking allocated the clocks.
func (e *Engine) noteHeard(src int) {
	if src >= 0 && src < len(e.lastHeard) {
		e.lastHeard[src].Store(time.Now().UnixNano())
	}
}

// silentPast reports whether dst has been silent longer than the
// deadline, measured from whichever is later: the last frame heard from
// it, or the stalled request's own posting. The posting stamp is what
// keeps an alive-but-quiet peer (heard from long ago, nothing owed
// since) from being declared dead the moment a new request stalls
// briefly: silence only counts from when this request started asking.
func (e *Engine) silentPast(dst int, postedAt time.Time, nowNanos, deadline int64) bool {
	if dst == e.node || dst < 0 || dst >= len(e.lastHeard) {
		return false
	}
	ref := e.lastHeard[dst].Load()
	if p := postedAt.UnixNano(); !postedAt.IsZero() && p > ref {
		ref = p
	}
	return nowNanos-ref > deadline
}

// MarkPeerDead declares rank dead: every pending request targeting it
// completes with ErrPeerDead, new posts to it fail fast, and the rank's
// protocol state (replay window, parked sends, in-flight receptions,
// out-of-order stash) is torn down. Idempotent — one caller wins; safe
// from any goroutine (the cluster layer's liveness callback calls it
// concurrently with the progress loop).
//
// Survivor state is untouched: receives posted with AnySource stay
// posted, completed unexpected eager data from the dead rank stays
// deliverable (the payload already arrived), and traffic to every other
// rank proceeds.
func (e *Engine) MarkPeerDead(rank int) {
	if rank == e.node || rank < 0 || rank >= len(e.deadPeers) {
		return
	}
	if !e.deadPeers[rank].CompareAndSwap(false, true) {
		return
	}
	e.deadCount.Add(1)
	e.nPeerDead.Add(1)
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindComplete, -1, -1, 0, "peer %d declared dead", rank)
	}

	var sends []*SendReq
	var recvs []*RecvReq
	var orphans []*stashedEv
	failed := 0
	e.qlock.Lock()
	// Rendezvous sends in the replay window (RTS posted or DATA in
	// flight). A request the maintenance tick is re-sending right now is
	// not completed under the resend: the failure parks on it exactly
	// like a racing ack would, and replayDue completes it afterwards.
	for id, s := range e.rdvSend {
		if s.dst != rank {
			continue
		}
		delete(e.rdvSend, id)
		e.rdvInFlight[rank]--
		e.pendingRdv.Add(-1)
		failed++
		if s.replaying {
			s.failed, s.ackDeferred = ErrPeerDead, true
		} else {
			sends = append(sends, s)
		}
	}
	for id, s := range e.await {
		if s.dst != rank {
			continue
		}
		delete(e.await, id)
		e.rdvInFlight[rank]--
		e.pendingRdv.Add(-1)
		failed++
		if s.replaying {
			s.failed, s.ackDeferred = ErrPeerDead, true
		} else {
			sends = append(sends, s)
		}
	}
	// Parked sends never have anything on the wire, so they are never
	// mid-replay; fail them directly.
	for _, s := range e.rdvWait[rank] {
		e.pendingRdv.Add(-1)
		failed++
		sends = append(sends, s)
	}
	delete(e.rdvWait, rank)
	delete(e.rdvInFlight, rank)
	// Posted receives naming the dead rank; AnySource survives (another
	// rank can still match it).
	keep := e.posted[:0]
	for _, r := range e.posted {
		if r.src == rank {
			failed++
			recvs = append(recvs, r)
		} else {
			keep = append(keep, r)
		}
	}
	for i := len(keep); i < len(e.posted); i++ {
		e.posted[i] = nil
	}
	e.posted = keep
	// In-flight rendezvous receptions from the rank: the remaining chunks
	// will never arrive.
	for k, st := range e.rdvRecv {
		if k.src == rank {
			delete(e.rdvRecv, k)
			failed++
			recvs = append(recvs, st.req)
		}
	}
	// Unexpected RTS announcements from the rank are dropped — a future
	// receive matching one would CTS into the void and hang. Buffered
	// eager payloads stay: they are complete and deliverable.
	uk := e.unexpected[:0]
	for _, u := range e.unexpected {
		if u.isRTS && u.src == rank {
			continue
		}
		uk = append(uk, u)
	}
	for i := len(uk); i < len(e.unexpected); i++ {
		e.unexpected[i] = nil
	}
	e.unexpected = uk
	// Out-of-order arrivals stashed behind a gap the dead rank will never
	// fill; their packets go back to the fabric pools outside the lock.
	for _, ev := range e.stash[rank] {
		orphans = append(orphans, ev)
	}
	delete(e.stash, rank)
	e.qlock.Unlock()

	e.nReqFailed.Add(uint64(failed))
	for _, s := range sends {
		s.req.CompleteErr(ErrPeerDead)
	}
	for _, r := range recvs {
		r.req.CompleteErr(ErrPeerDead)
	}
	for _, ev := range orphans {
		e.finishEv(ev)
	}
}

// MarkPeerAlive clears a rank's dead flag — the respawn path: a launcher
// that restarted the rank's process (nmrun -respawn) re-announces it once
// the new incarnation registered. Requests failed by the death sweep stay
// failed; new posts to the rank proceed, and the transport session-id
// machinery adopts the fresh incarnation's streams.
func (e *Engine) MarkPeerAlive(rank int) {
	if rank < 0 || rank >= len(e.deadPeers) {
		return
	}
	if e.deadPeers[rank].CompareAndSwap(true, false) {
		e.deadCount.Add(-1)
		if rank < len(e.lastHeard) {
			// Restart the silence clock: the new incarnation owes nothing
			// yet.
			e.lastHeard[rank].Store(time.Now().UnixNano())
		}
	}
}

// failSend refuses a post toward a dead rank: the returned request is
// already completed with ErrPeerDead, so every Wait path returns
// immediately and Release works as usual.
func (e *Engine) failSend(dst, tag int, data []byte) *SendReq {
	r := sendReqPool.Get().(*SendReq)
	r.eng, r.dst, r.tag, r.data = e, dst, tag, data
	e.nSends.Add(1)
	e.nReqFailed.Add(1)
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindRegister, -1, tag, len(data), "isend dst=%d refused: peer dead", dst)
	}
	r.req.CompleteErr(ErrPeerDead)
	return r
}

// failRecv refuses a receive naming a dead rank, mirroring failSend.
func (e *Engine) failRecv(src, tag int, buf []byte) *RecvReq {
	r := recvReqPool.Get().(*RecvReq)
	r.eng, r.src, r.tag, r.buf = e, src, tag, buf
	r.from = src
	e.nRecvs.Add(1)
	e.nReqFailed.Add(1)
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindRegister, -1, tag, len(buf), "irecv src=%d refused: peer dead", src)
	}
	r.req.CompleteErr(ErrPeerDead)
	return r
}
