package core

import (
	"time"

	"pioman/internal/piom"
	"pioman/internal/sched"
)

// AnyTag matches receives and probes against any tag.
const AnyTag = -1 << 30

// ProbeInfo describes a matched but not yet received message.
type ProbeInfo struct {
	Src int
	Tag int
	Len int
	// Rendezvous reports whether the pending message is a rendezvous
	// announcement (its payload has not crossed the wire yet).
	Rendezvous bool
}

// Iprobe checks, without receiving, whether a message matching (src, tag)
// is pending in the unexpected pool. src may be AnySource and tag AnyTag.
// Like MPI_Iprobe it does not guarantee absence — a message may be in
// flight — but a true result is stable: the message stays queued until a
// matching Irecv consumes it.
func (e *Engine) Iprobe(src, tag int) (ProbeInfo, bool) {
	if e.cfg.Mode == Sequential {
		e.biglock.Lock()
		defer e.biglock.Unlock()
		// Probing is a library call, so the baseline also makes one
		// bounded progress step here.
		e.progressOne(-1)
	}
	e.qlock.Lock()
	defer e.qlock.Unlock()
	for _, u := range e.unexpected {
		if (src == AnySource || u.src == src) && (tag == AnyTag || u.tag == tag) {
			info := ProbeInfo{Src: u.src, Tag: u.tag, Rendezvous: u.isRTS}
			if u.isRTS {
				info.Len = u.msgLen
			} else {
				info.Len = len(u.data)
			}
			return info, true
		}
	}
	return ProbeInfo{}, false
}

// pollStep makes one progress step appropriate to the engine mode and
// periodically yields the thread's core so that polling loops never starve
// sibling threads on a fully-loaded node. It returns the refreshed yield
// deadline.
func (e *Engine) pollStep(th *sched.Thread, yieldAt time.Time) time.Time {
	if e.cfg.Mode == Sequential || e.srv == nil {
		e.biglock.Lock()
		e.progressOne(th.Core())
		e.biglock.Unlock()
	} else {
		e.pollUncounted(th.Core())
	}
	if time.Now().After(yieldAt) {
		th.Yield()
		return time.Now().Add(sequentialYieldQuantum)
	}
	return yieldAt
}

// Probe blocks the calling thread until a matching message is pending and
// returns its description.
func (e *Engine) Probe(src, tag int, th *sched.Thread) ProbeInfo {
	yieldAt := time.Now().Add(sequentialYieldQuantum)
	for {
		if info, ok := e.Iprobe(src, tag); ok {
			return info
		}
		yieldAt = e.pollStep(th, yieldAt)
	}
}

// WaitAny blocks until at least one of reqs completes and returns the
// index of a completed request. It panics on an empty set.
func (e *Engine) WaitAny(th *sched.Thread, reqs ...*piom.Request) int {
	if len(reqs) == 0 {
		panic("core: WaitAny on empty request set")
	}
	yieldAt := time.Now().Add(sequentialYieldQuantum)
	for {
		for i, r := range reqs {
			if r.Completed() {
				return i
			}
		}
		yieldAt = e.pollStep(th, yieldAt)
	}
}

// WaitAllTimeout waits for every request or gives up after d; it reports
// whether all completed. Useful for failure-injection tests and watchdogs.
func (e *Engine) WaitAllTimeout(th *sched.Thread, d time.Duration, reqs ...*piom.Request) bool {
	deadline := time.Now().Add(d)
	yieldAt := time.Now().Add(sequentialYieldQuantum)
	for _, r := range reqs {
		for !r.Completed() {
			if time.Now().After(deadline) {
				return false
			}
			yieldAt = e.pollStep(th, yieldAt)
		}
	}
	return true
}
