package core

import (
	"testing"
	"time"

	"pioman/internal/sched"
)

func TestIprobeSeesUnexpected(t *testing.T) {
	c := newCluster(t, 2)
	c.run(0, func(th *sched.Thread) {
		s := c.Nodes[0].Eng.Isend(1, 8, payload(512, 1))
		c.Nodes[0].Eng.WaitSend(s, th)
	})
	// Wait for the receiver's pool to hold it.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if _, ok := c.Nodes[1].Eng.Iprobe(0, 8); ok {
			break
		}
	}
	info, ok := c.Nodes[1].Eng.Iprobe(0, 8)
	if !ok {
		t.Fatal("Iprobe never saw the message")
	}
	if info.Src != 0 || info.Tag != 8 || info.Len != 512 || info.Rendezvous {
		t.Fatalf("info = %+v", info)
	}
	// Probe is non-destructive: the receive must still match.
	buf := make([]byte, 512)
	c.run(1, func(th *sched.Thread) {
		r := c.Nodes[1].Eng.Irecv(0, 8, buf)
		c.Nodes[1].Eng.WaitRecv(r, th)
	})
	if _, ok := c.Nodes[1].Eng.Iprobe(0, 8); ok {
		t.Fatal("message still probed after reception")
	}
}

func TestIprobeWildcards(t *testing.T) {
	c := newCluster(t, 2)
	c.run(0, func(th *sched.Thread) {
		s := c.Nodes[0].Eng.Isend(1, 42, payload(64, 0))
		c.Nodes[0].Eng.WaitSend(s, th)
	})
	deadline := time.Now().Add(time.Second)
	var ok bool
	var info ProbeInfo
	for time.Now().Before(deadline) {
		if info, ok = c.Nodes[1].Eng.Iprobe(AnySource, AnyTag); ok {
			break
		}
	}
	if !ok || info.Tag != 42 || info.Src != 0 {
		t.Fatalf("wildcard probe: ok=%v info=%+v", ok, info)
	}
	if _, ok := c.Nodes[1].Eng.Iprobe(0, 999); ok {
		t.Fatal("probe matched a wrong tag")
	}
	// Drain to keep the cluster clean.
	c.run(1, func(th *sched.Thread) {
		r := c.Nodes[1].Eng.Irecv(0, 42, make([]byte, 64))
		c.Nodes[1].Eng.WaitRecv(r, th)
	})
}

func TestProbeRendezvousAnnouncement(t *testing.T) {
	c := newCluster(t, 2)
	const size = 128 << 10
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.run(0, func(th *sched.Thread) {
			s := c.Nodes[0].Eng.Isend(1, 5, payload(size, 2))
			c.Nodes[0].Eng.WaitSend(s, th)
		})
	}()
	var got ProbeInfo
	c.run(1, func(th *sched.Thread) {
		got = c.Nodes[1].Eng.Probe(0, 5, th)
	})
	if !got.Rendezvous || got.Len != size {
		t.Fatalf("probe of rendezvous: %+v", got)
	}
	buf := make([]byte, size)
	c.run(1, func(th *sched.Thread) {
		r := c.Nodes[1].Eng.Irecv(0, 5, buf)
		c.Nodes[1].Eng.WaitRecv(r, th)
	})
	<-done
}

func TestAnyTagRecv(t *testing.T) {
	c := newCluster(t, 2)
	c.run(0, func(th *sched.Thread) {
		s := c.Nodes[0].Eng.Isend(1, 77, []byte("anytag"))
		c.Nodes[0].Eng.WaitSend(s, th)
	})
	buf := make([]byte, 8)
	var r *RecvReq
	c.run(1, func(th *sched.Thread) {
		r = c.Nodes[1].Eng.Irecv(0, AnyTag, buf)
		c.Nodes[1].Eng.WaitRecv(r, th)
	})
	if r.MatchedTag() != 77 {
		t.Fatalf("MatchedTag = %d, want 77", r.MatchedTag())
	}
	if string(buf[:r.Len()]) != "anytag" {
		t.Fatalf("payload %q", buf[:r.Len()])
	}
}

func TestAnyTagPostedBeforeArrival(t *testing.T) {
	c := newCluster(t, 2)
	buf := make([]byte, 8)
	recvDone := make(chan *RecvReq, 1)
	go func() {
		var got *RecvReq
		c.run(1, func(th *sched.Thread) {
			r := c.Nodes[1].Eng.Irecv(AnySource, AnyTag, buf)
			c.Nodes[1].Eng.WaitRecv(r, th)
			got = r
		})
		recvDone <- got
	}()
	time.Sleep(2 * time.Millisecond)
	c.run(0, func(th *sched.Thread) {
		s := c.Nodes[0].Eng.Isend(1, 13, []byte("wild"))
		c.Nodes[0].Eng.WaitSend(s, th)
	})
	select {
	case r := <-recvDone:
		if r.MatchedTag() != 13 || r.From() != 0 {
			t.Fatalf("matched tag=%d from=%d", r.MatchedTag(), r.From())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("wildcard receive never completed")
	}
}

func TestWaitAny(t *testing.T) {
	c := newCluster(t, 2)
	bufA := make([]byte, 8)
	bufB := make([]byte, 8)
	var idx int
	var ra, rb *RecvReq
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.run(1, func(th *sched.Thread) {
			ra = c.Nodes[1].Eng.Irecv(0, 1, bufA)
			rb = c.Nodes[1].Eng.Irecv(0, 2, bufB)
			idx = c.Nodes[1].Eng.WaitAny(th, ra.Req(), rb.Req())
		})
	}()
	time.Sleep(2 * time.Millisecond)
	c.run(0, func(th *sched.Thread) {
		s := c.Nodes[0].Eng.Isend(1, 2, []byte("second"))
		c.Nodes[0].Eng.WaitSend(s, th)
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitAny never returned")
	}
	if idx != 1 {
		t.Fatalf("WaitAny index = %d, want 1 (tag 2)", idx)
	}
	// Clean up the outstanding tag-1 receive.
	c.run(0, func(th *sched.Thread) {
		s := c.Nodes[0].Eng.Isend(1, 1, []byte("first"))
		c.Nodes[0].Eng.WaitSend(s, th)
	})
	c.run(1, func(th *sched.Thread) {
		c.Nodes[1].Eng.WaitRecv(ra, th)
	})
}

func TestWaitAnyEmptyPanics(t *testing.T) {
	c := newCluster(t, 1)
	c.run(0, func(th *sched.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		c.Nodes[0].Eng.WaitAny(th)
	})
}

func TestWaitAllTimeout(t *testing.T) {
	c := newCluster(t, 2)
	buf := make([]byte, 8)
	c.run(1, func(th *sched.Thread) {
		r := c.Nodes[1].Eng.Irecv(0, 1, buf)
		// Nothing is coming: must report false at the deadline.
		if c.Nodes[1].Eng.WaitAllTimeout(th, 5*time.Millisecond, r.Req()) {
			t.Error("WaitAllTimeout reported completion of a request nobody satisfied")
		}
		_ = r
	})
	// Satisfy it so shutdown is clean.
	c.run(0, func(th *sched.Thread) {
		s := c.Nodes[0].Eng.Isend(1, 1, []byte("x"))
		c.Nodes[0].Eng.WaitSend(s, th)
	})
	c.run(1, func(th *sched.Thread) {
		r2 := c.Nodes[1].Eng.Irecv(0, 99, nil)
		_ = r2
		th.Compute(time.Microsecond)
	})
}

func TestSequentialProbe(t *testing.T) {
	c := newCluster(t, 2, withMode(Sequential))
	sendDone := make(chan struct{})
	go func() {
		defer close(sendDone)
		c.run(0, func(th *sched.Thread) {
			s := c.Nodes[0].Eng.Isend(1, 3, []byte("seqprobe"))
			c.Nodes[0].Eng.WaitSend(s, th)
		})
	}()
	var info ProbeInfo
	c.run(1, func(th *sched.Thread) {
		info = c.Nodes[1].Eng.Probe(0, 3, th)
	})
	<-sendDone
	if info.Len != len("seqprobe") {
		t.Fatalf("probe len = %d", info.Len)
	}
	buf := make([]byte, 16)
	c.run(1, func(th *sched.Thread) {
		r := c.Nodes[1].Eng.Irecv(0, 3, buf)
		c.Nodes[1].Eng.WaitRecv(r, th)
	})
}
