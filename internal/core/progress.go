package core

import (
	"sync"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/fabric/bufpool"
	"pioman/internal/nic"
	"pioman/internal/topo"
	"pioman/internal/trace"
	"pioman/internal/wire"
)

// unexMsg is a message that arrived before its receive was posted: either
// buffered eager data (copied into the unexpected pool) or a pending
// rendezvous RTS awaiting a matching Irecv.
type unexMsg struct {
	isRTS  bool
	src    int
	tag    int
	seq    uint64
	msgID  uint64
	data   []byte // eager: staging copy, borrowed from the fabric buffer pool
	msgLen int    // RTS: announced message length
	rail   *nic.Driver
}

// rdvRecvState tracks an in-flight rendezvous reception — the receive
// half of the multirail completion barrier. Chunks may arrive out of
// order and over different rails, and the sender's rail-failure fallback
// may re-stripe a span whose loss was only suspected (loss counters are
// an upper bound), so progress is tracked as covered byte intervals, not
// a bare countdown: overlapping or duplicate chunks contribute only
// their newly covered bytes, and the request completes exactly when the
// intervals cover the whole message.
type rdvRecvState struct {
	req    *RecvReq
	src    int
	msgLen int
	// covered holds the received byte ranges, disjoint and sorted. The
	// common single-chunk case never grows it past one entry.
	covered []chunkSpan
	// got is the total byte count covered.
	got int
}

// chunkSpan is one contiguous byte range [off, end) of a rendezvous
// payload — a unit of multirail striping and reassembly.
type chunkSpan struct {
	off, end int
}

// rdvKey identifies one in-flight rendezvous reception. The sender is
// part of the key because msgIDs are allocated per origin engine: rank 1
// and rank 2 both number their first rendezvous msgID 1.
type rdvKey struct {
	src   int
	msgID uint64
}

// addSpan merges [off, end) into the covered set and returns how many of
// its bytes were new. Chunk counts are small (payload/MTU per rail), so
// linear insertion is cheap.
func (st *rdvRecvState) addSpan(off, end int) int {
	if end > st.msgLen {
		end = st.msgLen
	}
	if end <= off {
		return 0
	}
	// Find the insertion window: every span overlapping or adjacent to
	// [off, end) collapses into one.
	i := 0
	for i < len(st.covered) && st.covered[i].end < off {
		i++
	}
	j := i
	merged := chunkSpan{off: off, end: end}
	for j < len(st.covered) && st.covered[j].off <= end {
		if st.covered[j].off < merged.off {
			merged.off = st.covered[j].off
		}
		if st.covered[j].end > merged.end {
			merged.end = st.covered[j].end
		}
		j++
	}
	newBytes := merged.end - merged.off
	for k := i; k < j; k++ {
		newBytes -= st.covered[k].end - st.covered[k].off
	}
	if i == j {
		// Disjoint: open a slot at i.
		st.covered = append(st.covered, chunkSpan{})
		copy(st.covered[i+1:], st.covered[i:])
	} else {
		// Collapsed [i, j) into one entry; close the gap.
		st.covered = append(st.covered[:i+1], st.covered[j:]...)
	}
	st.covered[i] = merged
	st.got += newBytes
	return newBytes
}

// railHeader builds the protocol header for a packet.
func railHeader(src, dst, tag int, seq, msgID uint64) nic.Header {
	return nic.Header{Src: src, Dst: dst, Tag: tag, Seq: seq, MsgID: msgID}
}

// stashedEv is a matchable arrival (eager payload or RTS) held back until
// its predecessors in the sender's stream have been processed. Events
// recycle through a freelist (getStash/putStash); pkt, when set, is the
// inbound packet whose buffers the event borrows — it is handed back to
// the fabric packet pool once the event has been fully processed, which
// is the engine's half of the inbound-buffer ownership rule
// (docs/FABRIC.md): the fabric owns arrival buffers, the engine returns
// them after copying payloads to their final destination.
type stashedEv struct {
	isRTS   bool
	src     int
	tag     int
	seq     uint64
	msgID   uint64
	payload []byte
	msgLen  int
	rail    *nic.Driver
	pkt     *wire.Packet
}

// stashPool recycles matchable-event structs.
var stashPool = sync.Pool{New: func() any { return new(stashedEv) }}

// getStash draws a zeroed event from the freelist.
func getStash() *stashedEv { return stashPool.Get().(*stashedEv) }

// finishEv retires a fully processed event: the inbound packet (when the
// event owned one) goes back to the fabric pools, the event struct to
// the freelist. The caller must have copied the payload out first.
func (e *Engine) finishEv(ev *stashedEv) {
	fabric.ReleasePacket(ev.pkt)
	*ev = stashedEv{}
	stashPool.Put(ev)
}

// pollBatchSize caps one batched drain: large enough that a message
// storm amortizes the per-visit costs (one pollLock acquisition, one
// endpoint lock round trip, one ring scan) across dozens of frames,
// small enough that one Progress pass — and in Sequential mode one hold
// of the library-wide lock — stays bounded.
const pollBatchSize = 64

// wokenPkt is one packet BlockingWait pulled off a rail's blocking
// receive, queued for delivery by the next holder of pollLock.
type wokenPkt struct {
	rail *nic.Driver
	pkt  *wire.Packet
}

// enqueueWoken queues a blocking-receive arrival for the batched
// delivery path and is the only woken-queue producer. The length
// mirror is written under the lock, so it exactly matches the queue at
// every lock boundary.
func (e *Engine) enqueueWoken(rail *nic.Driver, p *wire.Packet) {
	e.wokenMu.Lock()
	e.woken = append(e.woken, wokenPkt{rail: rail, pkt: p})
	e.wokenLen.Store(int32(len(e.woken)))
	e.wokenMu.Unlock()
}

// drainWoken delivers every queued blocking-receive arrival; caller
// holds pollLock, which serializes drains. The queue swaps against a
// spare — both sides of the swap under one lock hold, so the two
// slices can never alias the same array — and the steady state
// recycles the two small arrays. The unlocked atomic length check
// keeps the common empty case to one load on the polling hot path; a
// racing producer it misses is picked up by that producer's own
// trailing Progress pass.
func (e *Engine) drainWoken(core topo.CoreID) bool {
	if e.wokenLen.Load() == 0 {
		return false
	}
	e.wokenMu.Lock()
	batch := e.woken
	e.woken = e.wokenSpare[:0]
	e.wokenSpare = batch[:0]
	e.wokenLen.Store(0)
	e.wokenMu.Unlock()
	// batch's array is now the spare: producers only ever append to
	// e.woken, and the next swap is serialized behind pollLock, so this
	// iteration owns the array until it returns.
	worked := false
	for i, w := range batch {
		batch[i] = wokenPkt{}
		e.handlePacket(w.rail, core, w.pkt)
		worked = true
	}
	return worked
}

// drainOnce runs one batched drain of one rail and handles every frame
// it returned; caller holds pollLock. Batch entries are cleared as they
// are handled: handlePacket may release the packet to the fabric pools,
// and a surviving alias in the buffer would resurrect a recycled
// struct.
func (e *Engine) drainOnce(rail *nic.Driver, core topo.CoreID) int {
	n := rail.PollBatch(e.pollBuf)
	for i := 0; i < n; i++ {
		p := e.pollBuf[i]
		e.pollBuf[i] = nil
		e.handlePacket(rail, core, p)
	}
	return n
}

// drainRail runs batched drains of one rail until it runs dry (full
// batches keep draining); caller holds pollLock.
func (e *Engine) drainRail(rail *nic.Driver, core topo.CoreID) bool {
	worked := false
	for {
		n := e.drainOnce(rail, core)
		if n > 0 {
			worked = true
		}
		if n < len(e.pollBuf) {
			return worked
		}
	}
}

// Progress is the engine's piom.Source implementation: one pass drains
// arrived packets on every rail and submits pending eager packs. The two
// activities take separate locks, so one core can drain arrivals while
// another performs a (possibly long) submission copy; contending cores
// bail out immediately, which keeps polling cheap under contention.
// Arrivals drain in batches through the engine's reusable buffer — one
// pollLock acquisition and one endpoint visit cover a whole run of
// packets, which is what keeps the per-event cost of a message storm
// near zero.
func (e *Engine) Progress(core topo.CoreID) bool {
	n := e.nProgress.Add(1)
	t0, sampled := e.tel.dwellStart(n)
	worked := false
	if e.pollLock.TryLock() {
		worked = e.drainWoken(core)
		for _, rail := range e.rails {
			if e.drainRail(rail, core) {
				worked = true
			}
		}
		e.pollLock.Unlock()
	}
	// Background submission only happens when the engine mode calls for
	// it: always in the Sequential baseline (progress is wait-driven, and
	// Progress only ever runs from library calls there) and in
	// Multithreaded mode with offloading on. With offloading disabled the
	// posting thread is the only submitter, so idle cores must not steal
	// the submission (that is precisely the ablation's point).
	if e.cfg.Mode == Sequential || e.cfg.OffloadEager {
		if e.submitPending(core, false) {
			worked = true
		}
	}
	// Self-healing maintenance rides the progress loop: replay timers,
	// probation probes, weight retunes. Gated to near-zero cost when
	// nothing is pending.
	e.maybeMaint(n)
	if sampled {
		e.tel.dwell.ObserveDuration(time.Since(t0))
	}
	return worked
}

// progressOne makes one bounded step of progress: at most one batched
// drain per rail and one submission train. The Sequential baseline's
// wait loop calls it under the library-wide mutex, so the bound is what
// keeps lock hold times at the granularity of a single step — a batch
// is capped at pollBatchSize frames, the batched analog of the classical
// big-locked engine's one-event-per-hold discipline.
func (e *Engine) progressOne(core topo.CoreID) bool {
	n := e.nProgress.Add(1)
	t0, sampled := e.tel.dwellStart(n)
	worked := false
	if e.pollLock.TryLock() {
		worked = e.drainWoken(core)
		for _, rail := range e.rails {
			if e.drainOnce(rail, core) > 0 {
				worked = true
			}
		}
		e.pollLock.Unlock()
	}
	if e.submitLock.TryLock() {
		if train := e.dequeueReady(); len(train) > 0 {
			e.submitTrain(core, train, false)
			worked = true
		}
		e.submitLock.Unlock()
	}
	e.maybeMaint(n)
	if sampled {
		e.tel.dwell.ObserveDuration(time.Since(t0))
	}
	return worked
}

// BlockingWait implements the blocking-call fallback (§3.2): it parks on
// the default rail until a packet lands, delivers it, then runs one full
// progress pass for any follow-up work (e.g. answering an RTS).
//
// Endpoints only block on their own sockets, so in a bonded world a
// chunk can land on a secondary rail while the watcher sleeps on the
// default one. A full progress pass up front drains every rail's
// arrivals first, which bounds secondary-rail latency by the watcher
// cadence instead of by the next default-rail packet — the rail-selection
// gap that made bonded rendezvous hang before multirail went real.
//
// The woken packet rides the same batched delivery path as every polled
// arrival: it enters the woken queue and the trailing Progress pass
// delivers it under pollLock. Historically this path took a *blocking*
// pollLock.Lock — the one asymmetric acquisition in the engine — so a
// concurrent poller mid-drain could stall the watcher thread for a whole
// pass; now the watcher never waits on a lock. If a concurrent poller
// holds pollLock when the trailing pass runs, the packet stays queued —
// and the guard below keeps the watcher from parking on the rail while
// it waits: BlockingWait returns immediately, so its caller loops
// straight back into progress passes until whoever owns the lock (or a
// later pass here) delivers it.
func (e *Engine) BlockingWait(timeout time.Duration) bool {
	if e.Progress(-1) {
		return true
	}
	if e.wokenLen.Load() != 0 {
		// A woken packet from a lost pollLock race is still undelivered
		// — possibly the very arrival a blocking receive is waiting on.
		// Parking on the rail now would strand it for a whole timeout;
		// report work pending instead so the watcher retries promptly.
		e.Progress(-1)
		return true
	}
	rail := e.defaultRail()
	var parkStart time.Time
	if e.tel != nil {
		parkStart = time.Now()
	}
	p := rail.BlockingPoll(timeout)
	if e.tel != nil {
		// Timeouts count too: an always-full park histogram bucket at the
		// timeout value is the signature of a watcher waiting on a rail
		// nobody sends on.
		e.tel.park.ObserveDuration(time.Since(parkStart))
	}
	if p == nil {
		return false
	}
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindBlockingCall, -1, p.Tag, len(p.Payload), "woke on %v", p.Kind)
	}
	e.enqueueWoken(rail, p)
	e.Progress(-1)
	return true
}

// submitPending grabs the submission lock and submits queued eager packs.
// fromApp marks submissions executed on the posting thread (the baseline
// path) as opposed to offloaded ones.
func (e *Engine) submitPending(core topo.CoreID, fromApp bool) bool {
	if !e.submitLock.TryLock() {
		return false
	}
	defer e.submitLock.Unlock()
	return e.submitLocked(core, fromApp)
}

// submitInline makes the calling (application) thread drive submission
// until r has left the waiting list — the no-offload path: a classical
// engine's non-blocking send returns only once the packet has been handed
// to the NIC, spinning if the NIC is still busy.
func (e *Engine) submitInline(r *SendReq) {
	for {
		e.qlock.Lock()
		done := r.submitted
		e.qlock.Unlock()
		if done {
			return
		}
		e.submitPending(-1, true)
	}
}

// dequeueReady pops the next train whose destination rail can accept a
// submission; it returns nil either when the queue is empty or when the
// head's rail is still busy (the pack keeps waiting, per the feed-on-idle
// design of Fig. 3). The train is built in the engine's reusable train
// buffer — valid until the next dequeue, which every caller serializes
// behind submitLock — so steady-state submission allocates nothing.
func (e *Engine) dequeueReady() []*pack {
	e.qlock.Lock()
	defer e.qlock.Unlock()
	head := e.strat.Head()
	if head == nil || !e.railFor(head.req.dst).CanSubmit(head.req.dst) {
		return nil
	}
	train := e.strat.Dequeue(e.mtuOf, e.trainBuf)
	if train != nil {
		e.trainBuf = train
	}
	return train
}

// submitLocked drains the ready part of the strategy queue; caller holds
// submitLock.
func (e *Engine) submitLocked(core topo.CoreID, fromApp bool) bool {
	worked := false
	for {
		train := e.dequeueReady()
		if len(train) == 0 {
			return worked
		}
		e.submitTrain(core, train, fromApp)
		worked = true
	}
}

// submitTrain puts one train on the wire and completes its requests.
// Eager sends complete at submission: the payload has been copied out of
// the application buffer (or PIO'd), so the buffer is reusable. The
// completion loop runs last and the request is never touched after its
// Complete: the application may Release it back to the freelist the
// moment its wait returns.
func (e *Engine) submitTrain(core topo.CoreID, train []*pack, fromApp bool) {
	r0 := train[0].req
	rail := e.railFor(r0.dst)
	if !fromApp {
		e.nOffload.Add(uint64(len(train)))
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindOffload, int(core), r0.tag, r0.Len(), "dst=%d train=%d", r0.dst, len(train))
		}
	}
	if len(train) == 1 {
		rail.SendEager(railHeader(e.node, r0.dst, r0.tag, r0.seq, 0), r0.data)
		e.nEager.Add(1)
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindSubmit, int(core), r0.tag, r0.Len(), "dst=%d seq=%d", r0.dst, r0.seq)
		}
	} else {
		payload := encodeAggr(train)
		rail.SendAggr(railHeader(e.node, r0.dst, -1, r0.seq, 0), payload)
		e.nEager.Add(uint64(len(train)))
		e.nAggr.Add(uint64(len(train)))
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindSubmit, int(core), -1, len(payload), "dst=%d aggregated=%d", r0.dst, len(train))
		}
	}
	e.qlock.Lock()
	for _, p := range train {
		p.req.submitted = true
	}
	e.qlock.Unlock()
	for _, p := range train {
		p.req.req.Complete()
		putPack(p)
	}
}

// handlePacket processes one arrived packet; caller holds pollLock,
// which serializes all packet handling and preserves per-(src,tag) FIFO.
//
// Packet ownership ends here: eager and RTS frames ride a stashedEv and
// are released once the event is processed (possibly later, out of the
// stash); CTS and DATA frames are released as soon as their handler
// returns; control frames pass to the installed handler, which becomes
// their owner; an aggregated frame is left to the GC, because its
// sub-events alias the shared payload and any of them may sit in the
// stash indefinitely.
func (e *Engine) handlePacket(rail *nic.Driver, core topo.CoreID, p *wire.Packet) {
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindWireRecv, int(core), p.Tag, len(p.Payload), "%v from %d", p.Kind, p.Src)
	}
	e.tel.notePeerRecv(p.Src)
	if e.lastHeard != nil {
		// Deadline tracking is on (Config.PeerDeadline): every inbound
		// frame is proof of life, whatever its kind.
		e.noteHeard(p.Src)
	}
	switch p.Kind {
	case wire.PktEager:
		ev := getStash()
		ev.src, ev.tag, ev.seq = p.Src, p.Tag, p.Seq
		ev.payload, ev.rail, ev.pkt = p.Payload, rail, p
		e.handleMatchable(core, ev)
	case wire.PktAggr:
		subs := decodeAggr(p.Payload)
		if subs == nil {
			panic("core: corrupted aggregated train")
		}
		for _, s := range subs {
			ev := getStash()
			ev.src, ev.tag, ev.seq = p.Src, s.tag, s.seq
			ev.payload, ev.rail = s.data, rail
			e.handleMatchable(core, ev)
		}
	case wire.PktRTS:
		if p.Offset == 1 {
			// A replayed RTS (the sender's resend timer fired): it
			// travels outside the stream ordering, because the original
			// may already hold — or have consumed — the sequence number.
			e.handleReplayRTS(rail, core, p)
			fabric.ReleasePacket(p)
			return
		}
		e.noteSession(p.Src, nic.DecodeRTSSession(p.Payload), p.Seq)
		ev := getStash()
		ev.isRTS = true
		ev.src, ev.tag, ev.seq, ev.msgID = p.Src, p.Tag, p.Seq, p.MsgID
		ev.msgLen, ev.rail = nic.DecodeLen(p.Payload), rail
		e.handleMatchable(core, ev)
		// The announced length was decoded above; nothing aliases the
		// RTS frame anymore.
		fabric.ReleasePacket(p)
	case wire.PktCTS:
		e.handleCTS(core, p)
		fabric.ReleasePacket(p)
	case wire.PktData:
		e.handleData(rail, core, p)
		fabric.ReleasePacket(p)
	case wire.PktDataAck:
		e.handleDataAck(core, p)
		fabric.ReleasePacket(p)
	case wire.PktPing:
		e.handlePing(rail, p)
		fabric.ReleasePacket(p)
	case wire.PktPong:
		e.handlePong(rail, p)
		fabric.ReleasePacket(p)
	case wire.PktCtrl:
		if h := e.ctrlHandler.Load(); h != nil {
			(*h)(p)
		}
	default:
		panic("core: unknown packet kind " + p.Kind.String())
	}
}

// handleMatchable enforces per-sender stream order: the event is processed
// only when every lower-sequence event from the same sender has been; a
// gap (small packet overtook a bulk one on the wire) parks it in the stash
// until the gap fills. Processed events are retired through finishEv,
// which recycles the event and its inbound packet buffers.
func (e *Engine) handleMatchable(core topo.CoreID, ev *stashedEv) {
	src := ev.src
	e.qlock.Lock()
	next := e.orderIn[src] + 1
	if ev.seq != next {
		if ev.seq < next {
			e.qlock.Unlock()
			if ev.isRTS {
				// A replayed RTS already advanced the stream past this
				// sequence (the replay machinery races slow originals by
				// design); the late original carries nothing new.
				e.finishEv(ev)
				return
			}
			panic("core: duplicate sequence number in sender stream")
		}
		m := e.stash[src]
		if m == nil {
			m = make(map[uint64]*stashedEv)
			e.stash[src] = m
		}
		if m[ev.seq] != nil {
			// The slot is taken: a replay overtook its stashed original
			// (or vice versa). Keep the first, drop the newcomer.
			e.qlock.Unlock()
			e.finishEv(ev)
			return
		}
		m[ev.seq] = ev
		e.qlock.Unlock()
		return
	}
	e.orderIn[src] = next
	e.qlock.Unlock()
	e.processMatchable(core, ev)
	e.finishEv(ev)
	// Drain any stashed successors the gap was blocking.
	for {
		e.qlock.Lock()
		next = e.orderIn[src] + 1
		buffered := e.stash[src][next]
		if buffered != nil {
			delete(e.stash[src], next)
			e.orderIn[src] = next
		}
		e.qlock.Unlock()
		if buffered == nil {
			return
		}
		e.processMatchable(core, buffered)
		e.finishEv(buffered)
	}
}

// processMatchable dispatches an in-order matchable event.
func (e *Engine) processMatchable(core topo.CoreID, ev *stashedEv) {
	if ev.isRTS {
		e.handleRTS(ev.rail, core, ev)
		return
	}
	e.handleEager(ev.rail, core, ev.src, ev.tag, ev.seq, ev.payload)
}

// handleEager delivers one eager payload: straight into the posted buffer
// when expected (the NIC DMA'd it there — no CPU charge beyond the
// physical copy), or into the unexpected pool otherwise (a real copy,
// charged to the polling core, §2.2). Unexpected staging borrows from
// the fabric buffer pool and is returned after the pool-to-application
// copy, so even the unexpected path recycles its buffers.
func (e *Engine) handleEager(rail *nic.Driver, core topo.CoreID, src, tag int, seq uint64, payload []byte) {
	e.qlock.Lock()
	r := e.matchPostedLocked(src, tag)
	e.qlock.Unlock()
	if r != nil {
		e.deliverEager(core, r, src, tag, payload)
		return
	}
	// Unexpected: pay the pool copy, then re-check — a receive may have
	// been posted while we copied.
	pooled := bufpool.Get(len(payload))
	copy(pooled, payload)
	rail.ChargeMatchCopy(len(payload))
	e.nUnexp.Add(1)
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindUnexpected, int(core), tag, len(payload), "src=%d", src)
	}
	e.qlock.Lock()
	if r := e.matchPostedLocked(src, tag); r != nil {
		e.qlock.Unlock()
		// Second copy, pool to application buffer.
		rail.ChargeMatchCopy(len(pooled))
		e.deliverEager(core, r, src, tag, pooled)
		bufpool.Put(pooled)
		return
	}
	e.unexpected = append(e.unexpected, &unexMsg{
		src: src, tag: tag, seq: seq, data: pooled, rail: rail,
	})
	e.qlock.Unlock()
}

// deliverEager finishes an expected eager reception. Complete runs last;
// the request is not touched afterwards (the application may already be
// releasing it to the freelist).
func (e *Engine) deliverEager(core topo.CoreID, r *RecvReq, src, tag int, payload []byte) {
	n := copy(r.buf, payload)
	r.n, r.from, r.truncated = n, src, len(payload) > len(r.buf)
	r.gotTag = tag
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindMatch, int(core), r.tag, n, "src=%d", src)
		e.cfg.Trace.Recordf(trace.KindComplete, int(core), r.tag, n, "recv")
	}
	r.req.Complete()
}

// handleRTS reacts to a rendezvous request: if a matching receive is
// posted, answer CTS immediately (reactivity is the whole point, §2.3);
// otherwise queue it as unexpected.
func (e *Engine) handleRTS(rail *nic.Driver, core topo.CoreID, ev *stashedEv) {
	e.qlock.Lock()
	r := e.matchPostedLocked(ev.src, ev.tag)
	if r == nil {
		e.unexpected = append(e.unexpected, &unexMsg{
			isRTS: true, src: ev.src, tag: ev.tag, seq: ev.seq,
			msgID: ev.msgID, msgLen: ev.msgLen, rail: rail,
		})
		e.qlock.Unlock()
		e.nUnexp.Add(1)
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindUnexpected, int(core), ev.tag, ev.msgLen, "rts msgid=%d", ev.msgID)
		}
		return
	}
	r.gotTag = ev.tag
	e.rdvRecv[rdvKey{src: ev.src, msgID: ev.msgID}] = &rdvRecvState{req: r, src: ev.src, msgLen: ev.msgLen}
	e.qlock.Unlock()
	rail.SendCTS(railHeader(e.node, ev.src, ev.tag, ev.seq, ev.msgID))
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindCTS, int(core), ev.tag, ev.msgLen, "msgid=%d", ev.msgID)
	}
}

// handleCTS reacts to a rendezvous acknowledgement: the receiver is
// ready, post the zero-copy data transfer. The send does not complete
// here — it moves to the await set and completes when the receiver's
// DATA-ack arrives (handleDataAck), so the application buffer stays
// valid for replay if a rail dies after submission.
func (e *Engine) handleCTS(core topo.CoreID, p *wire.Packet) {
	e.qlock.Lock()
	s := e.rdvSend[p.MsgID]
	if s != nil {
		delete(e.rdvSend, p.MsgID)
		s.ctsSeen = true
		// Fresh deadline for the data phase; the RTS phase may have
		// backed the request's timer off.
		s.backoff = replayRTOInit
		s.nextResend = time.Now().Add(replayRTOInit)
		e.await[p.MsgID] = s
	}
	e.qlock.Unlock()
	if s == nil {
		return // duplicate CTS; the data phase (or its replay) owns the request
	}
	// Handshake latency stamps: rendezvous CTSes are rare (one per bulk
	// message), so reading the clock here is off the eager hot path by
	// construction.
	var ctsAt time.Time
	if e.tel != nil && !s.rtsAt.IsZero() {
		ctsAt = time.Now()
		e.tel.rtsToCts.ObserveDuration(ctsAt.Sub(s.rtsAt))
	}
	e.sendRdvData(core, s)
	if !ctsAt.IsZero() {
		e.tel.ctsToData.ObserveDuration(time.Since(ctsAt))
	}
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindData, int(core), s.tag, s.Len(), "rdv data posted msgid=%d", s.msgID)
	}
}

// sendRdvData posts the DATA transfer, striped across rails when the
// multirail strategy applies.
func (e *Engine) sendRdvData(core topo.CoreID, s *SendReq) {
	h := railHeader(e.node, s.dst, s.tag, s.seq, s.msgID)
	rails := e.dataRails(s.dst, s.Len())
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindData, int(core), s.tag, s.Len(), "msgid=%d rails=%d", s.msgID, len(rails))
	}
	if len(rails) == 1 {
		ok := true
		if e.strat.Name() == "multirail" {
			// Even a collapsed stripe set (one weighted rail left, or a
			// ForceDataRail phase) keeps multirail's MTU discipline: a
			// single frame above the rail MTU is exactly what a real
			// transport's ceiling would refuse.
			ok = e.sendSpan(rails[0], h, s.data, chunkSpan{off: 0, end: s.Len()})
		} else if lim := rails[0].MaxFrame(); lim > 0 && s.Len() > lim {
			// The transport refuses single frames this large outright
			// (udpfab's one-datagram frame ceiling): chunk at the rail
			// MTU. The receive side reassembles chunks by offset under
			// every strategy, so only the submission shape changes.
			ok = e.sendSpan(rails[0], h, s.data, chunkSpan{off: 0, end: s.Len()})
		} else {
			// Other strategies model the classical single-DMA submission;
			// the simulator's wire does its own fragmenting.
			rails[0].SendData(h, 0, s.data)
		}
		if !ok {
			// No survivor to re-stripe onto; probation + the acked-replay
			// timer carry the transfer once the rail (or another) heals.
			e.demoteRail(rails[0], h.Dst)
		}
		return
	}
	e.stripeData(h, s.data, rails)
}

// stripeData is the multirail data placement: the payload splits into
// one contiguous span per rail, sized proportionally to the rails' live
// stripe weights, and each span goes out as MTU-bounded DATA chunks on
// its rail. A rail whose loss counters (SendErrs, LostFrames) moved
// while its span was submitted is declared failed, and its span is
// re-striped onto the surviving rails — the failure fallback that keeps
// a bonded rendezvous completing when one rail dies mid-transfer. With
// no survivor left the loss simply stays visible in the counters, like
// any dead-transport send.
func (e *Engine) stripeData(h nic.Header, data []byte, rails []*nic.Driver) {
	weights := make([]float64, len(rails))
	total := 0.0
	for i, r := range rails {
		weights[i] = r.StripeWeight()
		total += weights[i]
	}
	if total <= 0 {
		// No proportions exist — either dataRails fell back to rails
		// that declare no weight (hand-rolled Params), or every weight
		// was retuned to zero between selection and here (SetStripeWeight
		// is a live knob). Split equally rather than collapsing to one
		// rail: an equal split is what unweighted multirail always meant.
		for i := range weights {
			weights[i] = 1
		}
		total = float64(len(rails))
	}
	spans := make([]chunkSpan, len(rails))
	off := 0
	for i := range rails {
		end := off + int(float64(len(data))*(weights[i]/total))
		if i == len(rails)-1 || end > len(data) {
			end = len(data)
		}
		spans[i] = chunkSpan{off: off, end: end}
		off = end
	}
	alive := make([]bool, len(rails))
	var failed []chunkSpan
	for i, r := range rails {
		alive[i] = e.sendSpan(r, h, data, spans[i])
		if !alive[i] {
			failed = append(failed, spans[i])
			e.demoteRail(r, h.Dst)
		}
	}
	// Each retry either lands the span or retires another rail, so the
	// loop is bounded by len(rails) failures.
	for len(failed) > 0 {
		best := -1
		for i, r := range rails {
			if alive[i] && (best < 0 || r.StripeWeight() > rails[best].StripeWeight()) {
				best = i
			}
		}
		if best < 0 {
			// Every rail failed its span. The loss stays visible in the
			// counters, every failed rail is on probation, and the
			// acked-replay timer re-stripes once one heals.
			return
		}
		sp := failed[len(failed)-1]
		failed = failed[:len(failed)-1]
		if !e.sendSpan(rails[best], h, data, sp) {
			alive[best] = false
			e.demoteRail(rails[best], h.Dst)
			failed = append(failed, sp)
		}
	}
}

// sendSpan submits one contiguous span as MTU-bounded DATA chunks on r
// and reports whether the rail's loss counters stayed quiet across the
// submission. Detection is necessarily synchronous-best-effort: a real
// stream can still fail after the frames were accepted, which the
// counters surface asynchronously (docs/FABRIC.md).
func (e *Engine) sendSpan(r *nic.Driver, h nic.Header, data []byte, sp chunkSpan) bool {
	if sp.end <= sp.off {
		return true
	}
	before := r.Stats().SendErrs + r.LostFrames()
	mtu := r.MTU()
	for off := sp.off; off < sp.end; off += mtu {
		end := min(off+mtu, sp.end)
		r.SendData(h, off, data[off:end])
	}
	return r.Stats().SendErrs+r.LostFrames() == before
}

// dataRails selects the rails carrying a rendezvous payload to dst:
// normally the destination's single rail; under the multirail strategy,
// every rail declaring a positive stripe weight once the payload reaches
// MultirailMin. Weight-gating is what keeps rails that only serve a
// subset of peers — the simulated intra-node SHM channel — out of
// cross-node striping, while a real shared-memory rail (nic.ShmParams),
// whose rings span every rank of the world, participates.
func (e *Engine) dataRails(dst, size int) []*nic.Driver {
	if f := e.railFilter.Load(); f != nil {
		for _, r := range e.rails {
			if r.Name() == *f {
				return []*nic.Driver{r}
			}
		}
	}
	if e.strat.Name() != "multirail" || size < e.cfg.MultirailMin || dst == e.node {
		return []*nic.Driver{e.railFor(dst)}
	}
	var out []*nic.Driver
	onProbation := e.probationCount.Load() > 0
	for i, r := range e.rails {
		if onProbation && e.health[i].state.Load() != railActive {
			continue
		}
		if r.StripeWeight() > 0 {
			out = append(out, r)
		}
	}
	if len(out) == 0 && onProbation {
		// Every weighted rail is on probation: stripe across them anyway
		// rather than across nothing — a possibly-dead rail plus the
		// replay timer beats a guaranteed drop.
		for _, r := range e.rails {
			if r.StripeWeight() > 0 {
				out = append(out, r)
			}
		}
	}
	if len(out) == 0 {
		// No rail declares a weight at all — hand-rolled Params predating
		// StripeWeight. Keep the historic behavior (equal-split striping
		// across the inter-node rails; stripeData treats an all-zero set
		// as equal weights) instead of silently collapsing the multirail
		// experiment onto a single rail.
		for _, r := range e.rails {
			if r.Name() != "shm" {
				out = append(out, r)
			}
		}
	}
	if len(out) == 0 {
		out = append(out, e.railFor(dst))
	}
	return out
}

// handleData consumes a rendezvous payload chunk: it lands directly in the
// application buffer (zero copy). On the final chunk the receiver acks
// the whole transfer back on the chunk's arrival rail — the signal that
// lets the sender retire its replay state — then Complete runs last; the
// request is not touched afterwards.
//
// A chunk whose msgID has no handshake state is a designed occurrence,
// not corruption: the failure fallback re-stripes spans whose loss was
// only suspected (loss counters are an upper bound), and the acked-replay
// timer re-sends whole transfers whose ack was lost. A chunk of a
// transfer the done-ring remembers completing is re-acked (the sender is
// replaying because the first ack was lost); anything else is dropped.
func (e *Engine) handleData(rail *nic.Driver, core topo.CoreID, p *wire.Packet) {
	key := rdvKey{src: p.Src, msgID: p.MsgID}
	e.qlock.Lock()
	st := e.rdvRecv[key]
	if st == nil {
		_, done := e.rdvDone[key]
		e.qlock.Unlock()
		if done {
			rail.SendDataAck(railHeader(e.node, p.Src, p.Tag, p.Seq, p.MsgID))
			return
		}
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindWireRecv, int(core), p.Tag, len(p.Payload), "late data msgid=%d", p.MsgID)
		}
		return
	}
	e.qlock.Unlock()
	// Chunks of one msgID are handled under pollLock, so mutating the
	// state outside qlock is safe. Duplicate and overlapping chunks
	// (failover re-stripes, replay re-sends) contribute only their newly
	// covered bytes via the interval set — the idempotence that makes
	// replays safe to fire on suspicion.
	copy(st.req.buf[min(p.Offset, len(st.req.buf)):], p.Payload)
	st.addSpan(p.Offset, p.Offset+len(p.Payload))
	if st.got < st.msgLen {
		return
	}
	e.qlock.Lock()
	delete(e.rdvRecv, key)
	e.rdvDoneAdd(key)
	e.qlock.Unlock()
	rail.SendDataAck(railHeader(e.node, p.Src, p.Tag, p.Seq, p.MsgID))
	r := st.req
	n := st.msgLen
	if n > len(r.buf) {
		r.truncated = true
		n = len(r.buf)
	}
	r.n, r.from = n, st.src
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindComplete, int(core), r.tag, n, "rdv recv msgid=%d", p.MsgID)
	}
	r.req.Complete()
}

// matchPostedLocked removes and returns the oldest posted receive matching
// (src, tag); caller holds qlock. A posted receive may wildcard the source
// (AnySource) and/or the tag (AnyTag).
func (e *Engine) matchPostedLocked(src, tag int) *RecvReq {
	for i, r := range e.posted {
		if (r.tag == tag || r.tag == AnyTag) && (r.src == AnySource || r.src == src) {
			e.posted = append(e.posted[:i], e.posted[i+1:]...)
			return r
		}
	}
	return nil
}

// takeUnexpected removes and returns the oldest unexpected message
// matching (src, tag); caller holds qlock. src may be AnySource and tag
// AnyTag.
func (e *Engine) takeUnexpected(src, tag int) *unexMsg {
	for i, u := range e.unexpected {
		if (tag == AnyTag || u.tag == tag) && (src == AnySource || u.src == src) {
			e.unexpected = append(e.unexpected[:i], e.unexpected[i+1:]...)
			return u
		}
	}
	return nil
}

// deliverUnexpected completes an Irecv against a buffered unexpected
// message: eager data pays the pool-to-application copy on the calling
// core and the staging buffer goes back to the fabric buffer pool; a
// pending RTS is answered with a CTS. Complete runs last; the request is
// not touched afterwards.
func (e *Engine) deliverUnexpected(r *RecvReq, u *unexMsg) {
	if u.isRTS {
		e.qlock.Lock()
		r.gotTag = u.tag
		e.rdvRecv[rdvKey{src: u.src, msgID: u.msgID}] = &rdvRecvState{req: r, src: u.src, msgLen: u.msgLen}
		e.qlock.Unlock()
		u.rail.SendCTS(railHeader(e.node, u.src, u.tag, u.seq, u.msgID))
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindCTS, -1, u.tag, u.msgLen, "late msgid=%d", u.msgID)
		}
		e.kick()
		return
	}
	u.rail.ChargeMatchCopy(len(u.data))
	n := copy(r.buf, u.data)
	r.n, r.from, r.truncated = n, u.src, len(u.data) > len(r.buf)
	r.gotTag = u.tag
	bufpool.Put(u.data)
	u.data = nil
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindMatch, -1, r.tag, n, "unexpected src=%d", u.src)
	}
	r.req.Complete()
}
