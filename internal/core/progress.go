package core

import (
	"sync"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/fabric/bufpool"
	"pioman/internal/nic"
	"pioman/internal/topo"
	"pioman/internal/trace"
	"pioman/internal/wire"
)

// unexMsg is a message that arrived before its receive was posted: either
// buffered eager data (copied into the unexpected pool) or a pending
// rendezvous RTS awaiting a matching Irecv.
type unexMsg struct {
	isRTS  bool
	src    int
	tag    int
	seq    uint64
	msgID  uint64
	data   []byte // eager: staging copy, borrowed from the fabric buffer pool
	msgLen int    // RTS: announced message length
	rail   *nic.Driver
}

// rdvRecvState tracks an in-flight rendezvous reception: data chunks
// (possibly split over several rails) count down remaining.
type rdvRecvState struct {
	req       *RecvReq
	src       int
	msgLen    int
	remaining int
}

// railHeader builds the protocol header for a packet.
func railHeader(src, dst, tag int, seq, msgID uint64) nic.Header {
	return nic.Header{Src: src, Dst: dst, Tag: tag, Seq: seq, MsgID: msgID}
}

// stashedEv is a matchable arrival (eager payload or RTS) held back until
// its predecessors in the sender's stream have been processed. Events
// recycle through a freelist (getStash/putStash); pkt, when set, is the
// inbound packet whose buffers the event borrows — it is handed back to
// the fabric packet pool once the event has been fully processed, which
// is the engine's half of the inbound-buffer ownership rule
// (docs/FABRIC.md): the fabric owns arrival buffers, the engine returns
// them after copying payloads to their final destination.
type stashedEv struct {
	isRTS   bool
	src     int
	tag     int
	seq     uint64
	msgID   uint64
	payload []byte
	msgLen  int
	rail    *nic.Driver
	pkt     *wire.Packet
}

// stashPool recycles matchable-event structs.
var stashPool = sync.Pool{New: func() any { return new(stashedEv) }}

// getStash draws a zeroed event from the freelist.
func getStash() *stashedEv { return stashPool.Get().(*stashedEv) }

// finishEv retires a fully processed event: the inbound packet (when the
// event owned one) goes back to the fabric pools, the event struct to
// the freelist. The caller must have copied the payload out first.
func (e *Engine) finishEv(ev *stashedEv) {
	fabric.ReleasePacket(ev.pkt)
	*ev = stashedEv{}
	stashPool.Put(ev)
}

// Progress is the engine's piom.Source implementation: one pass drains
// arrived packets on every rail and submits pending eager packs. The two
// activities take separate locks, so one core can drain arrivals while
// another performs a (possibly long) submission copy; contending cores
// bail out immediately, which keeps polling cheap under contention.
func (e *Engine) Progress(core topo.CoreID) bool {
	e.nProgress.Add(1)
	worked := false
	if e.pollLock.TryLock() {
		for _, rail := range e.rails {
			for {
				p := rail.Poll()
				if p == nil {
					break
				}
				e.handlePacket(rail, core, p)
				worked = true
			}
		}
		e.pollLock.Unlock()
	}
	// Background submission only happens when the engine mode calls for
	// it: always in the Sequential baseline (progress is wait-driven, and
	// Progress only ever runs from library calls there) and in
	// Multithreaded mode with offloading on. With offloading disabled the
	// posting thread is the only submitter, so idle cores must not steal
	// the submission (that is precisely the ablation's point).
	if e.cfg.Mode == Sequential || e.cfg.OffloadEager {
		if e.submitPending(core, false) {
			worked = true
		}
	}
	return worked
}

// progressOne makes one bounded step of progress: at most one packet per
// rail and one submission train. The Sequential baseline's wait loop calls
// it under the library-wide mutex so that lock hold times stay at the
// granularity of a single event, as in classical big-locked MPI progress
// engines.
func (e *Engine) progressOne(core topo.CoreID) bool {
	e.nProgress.Add(1)
	worked := false
	if e.pollLock.TryLock() {
		for _, rail := range e.rails {
			if p := rail.Poll(); p != nil {
				e.handlePacket(rail, core, p)
				worked = true
			}
		}
		e.pollLock.Unlock()
	}
	if e.submitLock.TryLock() {
		if train := e.dequeueReady(); len(train) > 0 {
			e.submitTrain(core, train, false)
			worked = true
		}
		e.submitLock.Unlock()
	}
	return worked
}

// BlockingWait implements the blocking-call fallback (§3.2): it parks on
// the default rail until a packet lands, processes it, then runs one full
// progress pass for any follow-up work (e.g. answering an RTS).
func (e *Engine) BlockingWait(timeout time.Duration) bool {
	rail := e.defaultRail()
	p := rail.BlockingPoll(timeout)
	if p == nil {
		return false
	}
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindBlockingCall, -1, p.Tag, len(p.Payload), "woke on %v", p.Kind)
	}
	e.pollLock.Lock()
	e.handlePacket(rail, -1, p)
	e.pollLock.Unlock()
	e.Progress(-1)
	return true
}

// submitPending grabs the submission lock and submits queued eager packs.
// fromApp marks submissions executed on the posting thread (the baseline
// path) as opposed to offloaded ones.
func (e *Engine) submitPending(core topo.CoreID, fromApp bool) bool {
	if !e.submitLock.TryLock() {
		return false
	}
	defer e.submitLock.Unlock()
	return e.submitLocked(core, fromApp)
}

// submitInline makes the calling (application) thread drive submission
// until r has left the waiting list — the no-offload path: a classical
// engine's non-blocking send returns only once the packet has been handed
// to the NIC, spinning if the NIC is still busy.
func (e *Engine) submitInline(r *SendReq) {
	for {
		e.qlock.Lock()
		done := r.submitted
		e.qlock.Unlock()
		if done {
			return
		}
		e.submitPending(-1, true)
	}
}

// dequeueReady pops the next train whose destination rail can accept a
// submission; it returns nil either when the queue is empty or when the
// head's rail is still busy (the pack keeps waiting, per the feed-on-idle
// design of Fig. 3). The train is built in the engine's reusable train
// buffer — valid until the next dequeue, which every caller serializes
// behind submitLock — so steady-state submission allocates nothing.
func (e *Engine) dequeueReady() []*pack {
	e.qlock.Lock()
	defer e.qlock.Unlock()
	head := e.strat.Head()
	if head == nil || !e.railFor(head.req.dst).CanSubmit(head.req.dst) {
		return nil
	}
	train := e.strat.Dequeue(e.mtuOf, e.trainBuf)
	if train != nil {
		e.trainBuf = train
	}
	return train
}

// submitLocked drains the ready part of the strategy queue; caller holds
// submitLock.
func (e *Engine) submitLocked(core topo.CoreID, fromApp bool) bool {
	worked := false
	for {
		train := e.dequeueReady()
		if len(train) == 0 {
			return worked
		}
		e.submitTrain(core, train, fromApp)
		worked = true
	}
}

// submitTrain puts one train on the wire and completes its requests.
// Eager sends complete at submission: the payload has been copied out of
// the application buffer (or PIO'd), so the buffer is reusable. The
// completion loop runs last and the request is never touched after its
// Complete: the application may Release it back to the freelist the
// moment its wait returns.
func (e *Engine) submitTrain(core topo.CoreID, train []*pack, fromApp bool) {
	r0 := train[0].req
	rail := e.railFor(r0.dst)
	if !fromApp {
		e.nOffload.Add(uint64(len(train)))
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindOffload, int(core), r0.tag, r0.Len(), "dst=%d train=%d", r0.dst, len(train))
		}
	}
	if len(train) == 1 {
		rail.SendEager(railHeader(e.node, r0.dst, r0.tag, r0.seq, 0), r0.data)
		e.nEager.Add(1)
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindSubmit, int(core), r0.tag, r0.Len(), "dst=%d seq=%d", r0.dst, r0.seq)
		}
	} else {
		payload := encodeAggr(train)
		rail.SendAggr(railHeader(e.node, r0.dst, -1, r0.seq, 0), payload)
		e.nEager.Add(uint64(len(train)))
		e.nAggr.Add(uint64(len(train)))
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindSubmit, int(core), -1, len(payload), "dst=%d aggregated=%d", r0.dst, len(train))
		}
	}
	e.qlock.Lock()
	for _, p := range train {
		p.req.submitted = true
	}
	e.qlock.Unlock()
	for _, p := range train {
		p.req.req.Complete()
		putPack(p)
	}
}

// handlePacket processes one arrived packet; caller holds pollLock,
// which serializes all packet handling and preserves per-(src,tag) FIFO.
//
// Packet ownership ends here: eager and RTS frames ride a stashedEv and
// are released once the event is processed (possibly later, out of the
// stash); CTS and DATA frames are released as soon as their handler
// returns; control frames pass to the installed handler, which becomes
// their owner; an aggregated frame is left to the GC, because its
// sub-events alias the shared payload and any of them may sit in the
// stash indefinitely.
func (e *Engine) handlePacket(rail *nic.Driver, core topo.CoreID, p *wire.Packet) {
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindWireRecv, int(core), p.Tag, len(p.Payload), "%v from %d", p.Kind, p.Src)
	}
	switch p.Kind {
	case wire.PktEager:
		ev := getStash()
		ev.src, ev.tag, ev.seq = p.Src, p.Tag, p.Seq
		ev.payload, ev.rail, ev.pkt = p.Payload, rail, p
		e.handleMatchable(core, ev)
	case wire.PktAggr:
		subs := decodeAggr(p.Payload)
		if subs == nil {
			panic("core: corrupted aggregated train")
		}
		for _, s := range subs {
			ev := getStash()
			ev.src, ev.tag, ev.seq = p.Src, s.tag, s.seq
			ev.payload, ev.rail = s.data, rail
			e.handleMatchable(core, ev)
		}
	case wire.PktRTS:
		ev := getStash()
		ev.isRTS = true
		ev.src, ev.tag, ev.seq, ev.msgID = p.Src, p.Tag, p.Seq, p.MsgID
		ev.msgLen, ev.rail = nic.DecodeLen(p.Payload), rail
		e.handleMatchable(core, ev)
		// The announced length was decoded above; nothing aliases the
		// RTS frame anymore.
		fabric.ReleasePacket(p)
	case wire.PktCTS:
		e.handleCTS(core, p)
		fabric.ReleasePacket(p)
	case wire.PktData:
		e.handleData(core, p)
		fabric.ReleasePacket(p)
	case wire.PktCtrl:
		if h := e.ctrlHandler.Load(); h != nil {
			(*h)(p)
		}
	default:
		panic("core: unknown packet kind " + p.Kind.String())
	}
}

// handleMatchable enforces per-sender stream order: the event is processed
// only when every lower-sequence event from the same sender has been; a
// gap (small packet overtook a bulk one on the wire) parks it in the stash
// until the gap fills. Processed events are retired through finishEv,
// which recycles the event and its inbound packet buffers.
func (e *Engine) handleMatchable(core topo.CoreID, ev *stashedEv) {
	src := ev.src
	e.qlock.Lock()
	next := e.orderIn[src] + 1
	if ev.seq != next {
		if ev.seq < next {
			e.qlock.Unlock()
			panic("core: duplicate sequence number in sender stream")
		}
		m := e.stash[src]
		if m == nil {
			m = make(map[uint64]*stashedEv)
			e.stash[src] = m
		}
		m[ev.seq] = ev
		e.qlock.Unlock()
		return
	}
	e.orderIn[src] = next
	e.qlock.Unlock()
	e.processMatchable(core, ev)
	e.finishEv(ev)
	// Drain any stashed successors the gap was blocking.
	for {
		e.qlock.Lock()
		next = e.orderIn[src] + 1
		buffered := e.stash[src][next]
		if buffered != nil {
			delete(e.stash[src], next)
			e.orderIn[src] = next
		}
		e.qlock.Unlock()
		if buffered == nil {
			return
		}
		e.processMatchable(core, buffered)
		e.finishEv(buffered)
	}
}

// processMatchable dispatches an in-order matchable event.
func (e *Engine) processMatchable(core topo.CoreID, ev *stashedEv) {
	if ev.isRTS {
		e.handleRTS(ev.rail, core, ev)
		return
	}
	e.handleEager(ev.rail, core, ev.src, ev.tag, ev.seq, ev.payload)
}

// handleEager delivers one eager payload: straight into the posted buffer
// when expected (the NIC DMA'd it there — no CPU charge beyond the
// physical copy), or into the unexpected pool otherwise (a real copy,
// charged to the polling core, §2.2). Unexpected staging borrows from
// the fabric buffer pool and is returned after the pool-to-application
// copy, so even the unexpected path recycles its buffers.
func (e *Engine) handleEager(rail *nic.Driver, core topo.CoreID, src, tag int, seq uint64, payload []byte) {
	e.qlock.Lock()
	r := e.matchPostedLocked(src, tag)
	e.qlock.Unlock()
	if r != nil {
		e.deliverEager(core, r, src, tag, payload)
		return
	}
	// Unexpected: pay the pool copy, then re-check — a receive may have
	// been posted while we copied.
	pooled := bufpool.Get(len(payload))
	copy(pooled, payload)
	rail.ChargeMatchCopy(len(payload))
	e.nUnexp.Add(1)
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindUnexpected, int(core), tag, len(payload), "src=%d", src)
	}
	e.qlock.Lock()
	if r := e.matchPostedLocked(src, tag); r != nil {
		e.qlock.Unlock()
		// Second copy, pool to application buffer.
		rail.ChargeMatchCopy(len(pooled))
		e.deliverEager(core, r, src, tag, pooled)
		bufpool.Put(pooled)
		return
	}
	e.unexpected = append(e.unexpected, &unexMsg{
		src: src, tag: tag, seq: seq, data: pooled, rail: rail,
	})
	e.qlock.Unlock()
}

// deliverEager finishes an expected eager reception. Complete runs last;
// the request is not touched afterwards (the application may already be
// releasing it to the freelist).
func (e *Engine) deliverEager(core topo.CoreID, r *RecvReq, src, tag int, payload []byte) {
	n := copy(r.buf, payload)
	r.n, r.from, r.truncated = n, src, len(payload) > len(r.buf)
	r.gotTag = tag
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindMatch, int(core), r.tag, n, "src=%d", src)
		e.cfg.Trace.Recordf(trace.KindComplete, int(core), r.tag, n, "recv")
	}
	r.req.Complete()
}

// handleRTS reacts to a rendezvous request: if a matching receive is
// posted, answer CTS immediately (reactivity is the whole point, §2.3);
// otherwise queue it as unexpected.
func (e *Engine) handleRTS(rail *nic.Driver, core topo.CoreID, ev *stashedEv) {
	e.qlock.Lock()
	r := e.matchPostedLocked(ev.src, ev.tag)
	if r == nil {
		e.unexpected = append(e.unexpected, &unexMsg{
			isRTS: true, src: ev.src, tag: ev.tag, seq: ev.seq,
			msgID: ev.msgID, msgLen: ev.msgLen, rail: rail,
		})
		e.qlock.Unlock()
		e.nUnexp.Add(1)
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindUnexpected, int(core), ev.tag, ev.msgLen, "rts msgid=%d", ev.msgID)
		}
		return
	}
	r.gotTag = ev.tag
	e.rdvRecv[ev.msgID] = &rdvRecvState{req: r, src: ev.src, msgLen: ev.msgLen, remaining: ev.msgLen}
	e.qlock.Unlock()
	rail.SendCTS(railHeader(e.node, ev.src, ev.tag, ev.seq, ev.msgID))
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindCTS, int(core), ev.tag, ev.msgLen, "msgid=%d", ev.msgID)
	}
}

// handleCTS reacts to a rendezvous acknowledgement: the receiver is ready,
// post the zero-copy data transfer. Complete runs last; the request is
// not touched afterwards.
func (e *Engine) handleCTS(core topo.CoreID, p *wire.Packet) {
	e.qlock.Lock()
	s := e.rdvSend[p.MsgID]
	delete(e.rdvSend, p.MsgID)
	if s != nil {
		s.ctsSeen = true
	}
	e.qlock.Unlock()
	if s == nil {
		return // duplicate CTS; already handled
	}
	e.sendRdvData(core, s)
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindComplete, int(core), s.tag, s.Len(), "rdv send msgid=%d", s.msgID)
	}
	s.req.Complete()
}

// sendRdvData posts the DATA transfer, split across rails when the
// multirail strategy applies.
func (e *Engine) sendRdvData(core topo.CoreID, s *SendReq) {
	h := railHeader(e.node, s.dst, s.tag, s.seq, s.msgID)
	rails := e.dataRails(s.dst, s.Len())
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindData, int(core), s.tag, s.Len(), "msgid=%d rails=%d", s.msgID, len(rails))
	}
	if len(rails) == 1 {
		rails[0].SendData(h, 0, s.data)
		return
	}
	chunk := (s.Len() + len(rails) - 1) / len(rails)
	off := 0
	for _, r := range rails {
		end := off + chunk
		if end > s.Len() {
			end = s.Len()
		}
		if end <= off {
			break
		}
		r.SendData(h, off, s.data[off:end])
		off = end
	}
}

// dataRails selects the rails carrying a rendezvous payload to dst.
func (e *Engine) dataRails(dst, size int) []*nic.Driver {
	if e.strat.Name() != "multirail" || size < e.cfg.MultirailMin || dst == e.node {
		return []*nic.Driver{e.railFor(dst)}
	}
	var out []*nic.Driver
	for _, r := range e.rails {
		if r.Name() == "shm" {
			continue
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		out = append(out, e.railFor(dst))
	}
	return out
}

// handleData consumes a rendezvous payload chunk: it lands directly in the
// application buffer (zero copy). On the final chunk Complete runs last;
// the request is not touched afterwards.
func (e *Engine) handleData(core topo.CoreID, p *wire.Packet) {
	e.qlock.Lock()
	st := e.rdvRecv[p.MsgID]
	if st == nil {
		e.qlock.Unlock()
		panic("core: rendezvous data without handshake state")
	}
	e.qlock.Unlock()
	// Chunks of one msgID are handled under pollLock, so mutating the
	// state outside qlock is safe.
	copy(st.req.buf[min(p.Offset, len(st.req.buf)):], p.Payload)
	st.remaining -= len(p.Payload)
	if st.remaining > 0 {
		return
	}
	e.qlock.Lock()
	delete(e.rdvRecv, p.MsgID)
	e.qlock.Unlock()
	r := st.req
	n := st.msgLen
	if n > len(r.buf) {
		r.truncated = true
		n = len(r.buf)
	}
	r.n, r.from = n, st.src
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindComplete, int(core), r.tag, n, "rdv recv msgid=%d", p.MsgID)
	}
	r.req.Complete()
}

// matchPostedLocked removes and returns the oldest posted receive matching
// (src, tag); caller holds qlock. A posted receive may wildcard the source
// (AnySource) and/or the tag (AnyTag).
func (e *Engine) matchPostedLocked(src, tag int) *RecvReq {
	for i, r := range e.posted {
		if (r.tag == tag || r.tag == AnyTag) && (r.src == AnySource || r.src == src) {
			e.posted = append(e.posted[:i], e.posted[i+1:]...)
			return r
		}
	}
	return nil
}

// takeUnexpected removes and returns the oldest unexpected message
// matching (src, tag); caller holds qlock. src may be AnySource and tag
// AnyTag.
func (e *Engine) takeUnexpected(src, tag int) *unexMsg {
	for i, u := range e.unexpected {
		if (tag == AnyTag || u.tag == tag) && (src == AnySource || u.src == src) {
			e.unexpected = append(e.unexpected[:i], e.unexpected[i+1:]...)
			return u
		}
	}
	return nil
}

// deliverUnexpected completes an Irecv against a buffered unexpected
// message: eager data pays the pool-to-application copy on the calling
// core and the staging buffer goes back to the fabric buffer pool; a
// pending RTS is answered with a CTS. Complete runs last; the request is
// not touched afterwards.
func (e *Engine) deliverUnexpected(r *RecvReq, u *unexMsg) {
	if u.isRTS {
		e.qlock.Lock()
		r.gotTag = u.tag
		e.rdvRecv[u.msgID] = &rdvRecvState{req: r, src: u.src, msgLen: u.msgLen, remaining: u.msgLen}
		e.qlock.Unlock()
		u.rail.SendCTS(railHeader(e.node, u.src, u.tag, u.seq, u.msgID))
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindCTS, -1, u.tag, u.msgLen, "late msgid=%d", u.msgID)
		}
		e.kick()
		return
	}
	u.rail.ChargeMatchCopy(len(u.data))
	n := copy(r.buf, u.data)
	r.n, r.from, r.truncated = n, u.src, len(u.data) > len(r.buf)
	r.gotTag = u.tag
	bufpool.Put(u.data)
	u.data = nil
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindMatch, -1, r.tag, n, "unexpected src=%d", u.src)
	}
	r.req.Complete()
}
