package core

import (
	"testing"

	"pioman/internal/sched"
)

// BenchmarkIsendWaitEager measures a full eager send/receive round through
// the multithreaded engine on negligible-cost rails: pure engine overhead.
func BenchmarkIsendWaitEager(b *testing.B) {
	c := newCluster(b, 2)
	data := make([]byte, 4096)
	done := make(chan struct{})
	go c.run(1, func(th *sched.Thread) {
		buf := make([]byte, 4096)
		for i := 0; i < b.N; i++ {
			r := c.Nodes[1].Eng.Irecv(0, 1, buf)
			c.Nodes[1].Eng.WaitRecv(r, th)
			r.Release()
		}
		close(done)
	})
	c.run(0, func(th *sched.Thread) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := c.Nodes[0].Eng.Isend(1, 1, data)
			c.Nodes[0].Eng.WaitSend(s, th)
			s.Release()
		}
	})
	<-done
}

// BenchmarkRendezvousRound measures a rendezvous round (RTS/CTS/DATA) at
// 64K through the multithreaded engine.
func BenchmarkRendezvousRound(b *testing.B) {
	c := newCluster(b, 2)
	data := make([]byte, 64<<10)
	done := make(chan struct{})
	go c.run(1, func(th *sched.Thread) {
		buf := make([]byte, 64<<10)
		for i := 0; i < b.N; i++ {
			r := c.Nodes[1].Eng.Irecv(0, 1, buf)
			c.Nodes[1].Eng.WaitRecv(r, th)
			r.Release()
		}
		close(done)
	})
	c.run(0, func(th *sched.Thread) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := c.Nodes[0].Eng.Isend(1, 1, data)
			c.Nodes[0].Eng.WaitSend(s, th)
			s.Release()
		}
	})
	<-done
}

// BenchmarkProgressIdle measures one empty progress pass — the cost an
// idle core pays per polling iteration.
func BenchmarkProgressIdle(b *testing.B) {
	c := newCluster(b, 2)
	eng := c.Nodes[0].Eng
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Progress(0)
	}
}

// BenchmarkAggrEncodeDecode measures the aggregation train codec.
func BenchmarkAggrEncodeDecode(b *testing.B) {
	var train []*pack
	for i := 0; i < 8; i++ {
		train = append(train, &pack{req: &SendReq{tag: i, seq: uint64(i + 1), data: make([]byte, 256)}})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if decodeAggr(encodeAggr(train)) == nil {
			b.Fatal("decode failed")
		}
	}
}
