package core

import (
	"sync/atomic"
	"time"

	"pioman/internal/nic"
	"pioman/internal/topo"
	"pioman/internal/trace"
	"pioman/internal/wire"
)

// Acked rendezvous replay — the engine-level reliability sublayer.
//
// A rendezvous send no longer completes when its DATA was posted: the
// sender keeps the request (and with it the application buffer, which
// doubles as the replay buffer — zero copies, zero extra allocations)
// until the receiver's DATA-ack arrives. A maintenance tick piggybacked
// on the progress loop re-posts whatever went unacknowledged past its
// deadline, with per-request exponential backoff: an unanswered RTS is
// re-sent as a replay-RTS, an unacked DATA transfer is re-striped from
// the retained buffer. The receive side makes both idempotent — interval
// reassembly absorbs duplicate chunks, a bounded done-ring re-acks
// transfers that already completed, and the RTS path recognizes
// duplicates at every stage of the handshake. Together these turn
// "a rail died after the span was submitted" from a silent hang into a
// bounded-delay retry, on every backend (docs/FABRIC.md).

const (
	// replayRTOInit is the first resend deadline for a freshly posted
	// RTS or DATA transfer: comfortably above any healthy handshake
	// round trip (µs on the simulator, well under 25ms on loopback
	// transports), so the no-loss path never replays.
	replayRTOInit = 25 * time.Millisecond
	// replayRTOMax caps the exponential backoff between resends of one
	// request, mirroring udpfab's 250ms retransmit cap at engine scale.
	replayRTOMax = 400 * time.Millisecond
	// maintPeriod is the minimum spacing between maintenance scans; the
	// CAS gate in maybeMaint makes one core pay each scan.
	maintPeriod = 5 * time.Millisecond
	// maintPassMask gates the maintenance clock read to 1 pass in 16, so
	// a spin-polling core is not serialized on time.Now.
	maintPassMask = 15
	// doneRingCap bounds the completed-rendezvous memory used for
	// re-acking duplicates. 512 entries outlive any plausible replay
	// window (replayRTOMax × a handful of backoffs) at full message rate.
	doneRingCap = 512
	// defaultMaxPendingRdv is the per-peer unacked rendezvous window when
	// Config.MaxPendingRdvPerPeer is zero: enough to keep a pipeline of
	// large transfers striped across every rail, small enough that the
	// replay timer's scan and the retained replay buffers stay bounded
	// when an application bursts thousands of Isends at one peer.
	defaultMaxPendingRdv = 128
)

// sessionSalt makes session ids unique across the engines of one
// process, which share a clock.
var sessionSalt atomic.Uint64

// newSessionID mints a nonzero engine-incarnation id. Uniqueness needs
// to hold only against this engine's own predecessors (a restarted peer
// must look different), so wall-clock nanos salted per-process suffice.
func newSessionID() uint64 {
	return uint64(time.Now().UnixNano())<<8 | (sessionSalt.Add(1) & 0xff) | 1
}

// maybeMaint runs the self-healing maintenance scan when it is due: the
// rendezvous resend timer, probation-rail health probes, and the online
// stripe-weight retune. n is the progress-pass count; the pass mask plus
// three atomic loads keep the common idle case (nothing pending, every
// rail active, auto-weights off) at a handful of instructions per pass.
func (e *Engine) maybeMaint(n uint64) {
	if n&maintPassMask != 0 {
		return
	}
	if e.pendingRdv.Load() == 0 && e.probationCount.Load() == 0 && !e.cfg.AutoStripeWeights {
		return
	}
	now := time.Now().UnixNano()
	next := e.nextMaint.Load()
	if now < next || !e.nextMaint.CompareAndSwap(next, now+int64(maintPeriod)) {
		return
	}
	if !e.maintLock.TryLock() {
		return
	}
	defer e.maintLock.Unlock()
	if e.pendingRdv.Load() > 0 {
		e.replayDue(now)
	}
	e.railMaint(now)
}

// replayDue re-posts every rendezvous send whose resend deadline passed:
// rdvSend entries (RTS posted, no CTS yet) get a replay-RTS; await
// entries (DATA posted, no ack yet) get their transfer re-striped from
// the retained application buffer. Deadlines and backoff are advanced
// under qlock; the sends happen outside it. While a request is being
// replayed its `replaying` flag parks any concurrently arriving ack
// (handleDataAck defers the completion to us), so the request cannot be
// completed — and recycled by the application — under the resend.
func (e *Engine) replayDue(nowNanos int64) {
	now := time.Unix(0, nowNanos)
	deadline := int64(e.cfg.PeerDeadline)
	var suspects []int
	buf := e.maintBuf[:0]
	nrts := 0
	e.qlock.Lock()
	for _, s := range e.rdvSend {
		if now.After(s.nextResend) {
			s.bumpBackoff(now)
			s.replaying = true
			buf = append(buf, s)
			if deadline > 0 && e.silentPast(s.dst, s.postedAt, nowNanos, deadline) {
				suspects = appendRank(suspects, s.dst)
			}
		}
	}
	nrts = len(buf)
	for _, s := range e.await {
		if now.After(s.nextResend) {
			s.bumpBackoff(now)
			s.replaying = true
			buf = append(buf, s)
			if deadline > 0 && e.silentPast(s.dst, s.postedAt, nowNanos, deadline) {
				suspects = appendRank(suspects, s.dst)
			}
		}
	}
	e.qlock.Unlock()
	// Death verdicts first: MarkPeerDead tears the rank's replay state
	// down and parks each mid-replay request's error completion on it
	// (exactly as a racing ack would), which the retire pass below then
	// runs. Replays toward a rank just declared dead are skipped — there
	// is nobody to answer them.
	for _, rank := range suspects {
		e.MarkPeerDead(rank)
	}
	for i, s := range buf {
		if len(suspects) > 0 && e.PeerDead(s.dst) {
			continue
		}
		e.nReplays.Add(1)
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindRTS, -1, s.tag, s.Len(), "replay msgid=%d", s.msgID)
		}
		if i < nrts {
			// No CTS yet: the RTS (or its CTS) was lost, or the receiver
			// restarted. Replay-RTS frames bypass the receiver's stream
			// ordering (the original may already have been processed).
			e.railFor(s.dst).SendRTSReplay(railHeader(e.node, s.dst, s.tag, s.seq, s.msgID), s.Len(), e.session)
		} else {
			// CTS seen, ack missing: re-stripe the data from the retained
			// buffer. dataRails skips probation rails, so the resend
			// lands on whatever is healthy now.
			e.sendRdvData(-1, s)
		}
	}
	// Retire the replaying flags and run any completions an ack parked
	// while we were resending.
	done := e.maintDone[:0]
	e.qlock.Lock()
	for i, s := range buf {
		buf[i] = nil
		s.replaying = false
		if s.ackDeferred {
			s.ackDeferred = false
			done = append(done, s)
		}
	}
	e.qlock.Unlock()
	e.maintBuf = buf
	for i, s := range done {
		done[i] = nil
		if err := s.failed; err != nil {
			s.req.CompleteErr(err)
		} else {
			s.req.Complete()
		}
	}
	e.maintDone = done
}

// appendRank adds rank to the suspect list unless already present; the
// list is a handful of entries at most.
func appendRank(list []int, rank int) []int {
	for _, r := range list {
		if r == rank {
			return list
		}
	}
	return append(list, rank)
}

// handleDataAck completes a rendezvous send: the receiver has the whole
// payload. Completion runs last and the request is never touched after
// it — except when the replay timer holds the request mid-resend, in
// which case the completion is parked on the request and replayDue runs
// it once the resend is off the wire.
func (e *Engine) handleDataAck(core topo.CoreID, p *wire.Packet) {
	e.qlock.Lock()
	s := e.await[p.MsgID]
	if s == nil {
		// Duplicate ack (the receiver re-acks replayed chunks of a
		// completed transfer); the first one already completed the send.
		e.qlock.Unlock()
		return
	}
	delete(e.await, p.MsgID)
	deferred := s.replaying
	if deferred {
		s.ackDeferred = true
	}
	// The ack freed a slot in this peer's unacked window: admit the
	// oldest parked send. Its replay timer restarts now — the deadline
	// stamped at Isend may be long past, and the RTS is only now going
	// on the wire.
	var next *SendReq
	e.rdvInFlight[s.dst]--
	if w := e.rdvWait[s.dst]; len(w) > 0 {
		next = w[0]
		w[0] = nil
		if len(w) == 1 {
			delete(e.rdvWait, s.dst)
		} else {
			e.rdvWait[s.dst] = w[1:]
		}
		e.rdvInFlight[s.dst]++
		next.backoff = replayRTOInit
		next.nextResend = time.Now().Add(replayRTOInit)
		e.rdvSend[next.msgID] = next
	}
	e.qlock.Unlock()
	if next != nil {
		e.railFor(next.dst).SendRTS(railHeader(e.node, next.dst, next.tag, next.seq, next.msgID), next.Len(), e.session)
		if e.tracing() {
			e.cfg.Trace.Recordf(trace.KindRTS, -1, next.tag, next.Len(), "msgid=%d unparked", next.msgID)
		}
		e.kick()
	}
	e.pendingRdv.Add(-1)
	e.nAcks.Add(1)
	if e.tracing() {
		e.cfg.Trace.Recordf(trace.KindComplete, int(core), s.tag, s.Len(), "rdv send acked msgid=%d", s.msgID)
	}
	if !deferred {
		s.req.Complete()
	}
}

// handleReplayRTS processes a resent rendezvous request. Replays arrive
// outside the sender-stream ordering (the original RTS consumed — or
// still holds — the sequence number), so the handler walks the receive
// state to find which stage the handshake reached and re-emits exactly
// the response the sender is missing:
//
//	transfer completed (done-ring)      → re-ack
//	reception in flight (rdvRecv)       → re-CTS (the CTS was lost)
//	RTS buffered unexpected             → drop (Irecv will answer it)
//	original RTS stashed out-of-order   → drop (the gap will deliver it)
//	sequence not yet reached            → process as the original RTS
//	sequence long past, no state        → re-ack (aged out of the ring)
func (e *Engine) handleReplayRTS(rail *nic.Driver, core topo.CoreID, p *wire.Packet) {
	e.noteSession(p.Src, nic.DecodeRTSSession(p.Payload), p.Seq)
	key := rdvKey{src: p.Src, msgID: p.MsgID}
	h := railHeader(e.node, p.Src, p.Tag, p.Seq, p.MsgID)
	e.qlock.Lock()
	if _, done := e.rdvDone[key]; done {
		e.qlock.Unlock()
		rail.SendDataAck(h)
		return
	}
	if e.rdvRecv[key] != nil {
		e.qlock.Unlock()
		rail.SendCTS(h)
		return
	}
	for _, u := range e.unexpected {
		if u.isRTS && u.src == p.Src && u.msgID == p.MsgID {
			e.qlock.Unlock()
			return
		}
	}
	next := e.orderIn[p.Src] + 1
	if p.Seq >= next {
		if e.stash[p.Src][p.Seq] != nil {
			e.qlock.Unlock()
			return
		}
		e.qlock.Unlock()
		// The original RTS never arrived: feed the replay through the
		// ordered matchable path as if it were the original.
		ev := getStash()
		ev.isRTS = true
		ev.src, ev.tag, ev.seq, ev.msgID = p.Src, p.Tag, p.Seq, p.MsgID
		ev.msgLen, ev.rail = nic.DecodeLen(p.Payload), rail
		e.handleMatchable(core, ev)
		return
	}
	e.qlock.Unlock()
	// The sequence was processed and no trace of the rendezvous remains:
	// it completed long enough ago to age out of the done-ring. Re-ack so
	// the sender stops replaying.
	rail.SendDataAck(h)
}

// rdvDoneAdd remembers a completed rendezvous reception in the bounded
// done-ring, evicting the oldest entry once full; caller holds qlock.
func (e *Engine) rdvDoneAdd(key rdvKey) {
	if e.doneFull {
		delete(e.rdvDone, e.doneRing[e.donePos])
	}
	e.doneRing[e.donePos] = key
	e.rdvDone[key] = struct{}{}
	e.donePos++
	if e.donePos == len(e.doneRing) {
		e.donePos = 0
		e.doneFull = true
	}
}

// noteSession records the sender's engine-incarnation id. A changed id
// means the peer restarted mid-conversation: the dead incarnation's
// per-source stream state is discarded and the sequence counter adopts
// the new stream at seq (the replay carrying it), so the fresh engine's
// rendezvous proceed instead of colliding with ghosts. Receives that
// were matched against the dead incarnation's handshakes re-enter the
// posted list — the restarted sender will replay, and the replay matches
// them anew.
func (e *Engine) noteSession(src int, sess uint64, seq uint64) {
	if sess == 0 || src == e.node {
		return
	}
	var orphans []*stashedEv
	e.qlock.Lock()
	old := e.peerSession[src]
	if old == sess {
		e.qlock.Unlock()
		return
	}
	e.peerSession[src] = sess
	if old != 0 {
		for k, st := range e.rdvRecv {
			if k.src == src {
				delete(e.rdvRecv, k)
				e.posted = append(e.posted, st.req)
			}
		}
		for k := range e.rdvDone {
			if k.src == src {
				// Ring entries go stale; eviction tolerates missing keys.
				delete(e.rdvDone, k)
			}
		}
		for _, ev := range e.stash[src] {
			orphans = append(orphans, ev)
		}
		delete(e.stash, src)
		e.orderIn[src] = seq - 1
	}
	e.qlock.Unlock()
	for _, ev := range orphans {
		e.finishEv(ev)
	}
}
