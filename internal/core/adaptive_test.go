package core

import (
	"testing"
	"time"

	"pioman/internal/nic"
	"pioman/internal/sched"
)

// withAdaptive enables the future-work adaptive offload policy.
func withAdaptive() clusterOpt {
	return func(p *clusterParams) { p.adaptive = true }
}

func TestAdaptiveOffloadDefersWhenCoresIdle(t *testing.T) {
	slow := fastRail()
	slow.Cost.CopyBytesPerUS = 10 // 16K -> 1.6ms of copy
	c := newCluster(t, 2, withAdaptive(), withCores(4),
		withRails(func(int) []nic.Params { return []nic.Params{slow} }))
	data := payload(16<<10, 2)
	done := make(chan struct{})
	go c.run(1, func(th *sched.Thread) {
		buf := make([]byte, 16<<10)
		r := c.Nodes[1].Eng.Irecv(0, 1, buf)
		c.Nodes[1].Eng.WaitRecv(r, th)
		close(done)
	})
	c.run(0, func(th *sched.Thread) {
		// Three idle cores: the adaptive policy must defer, so Isend
		// returns immediately.
		start := time.Now()
		s := c.Nodes[0].Eng.Isend(1, 1, data)
		if el := time.Since(start); el > 500*time.Microsecond {
			t.Errorf("adaptive Isend with idle cores took %v, want deferral", el)
		}
		c.Nodes[0].Eng.WaitSend(s, th)
	})
	<-done
}

func TestAdaptiveOffloadSubmitsInlineWhenSaturated(t *testing.T) {
	slow := fastRail()
	slow.Cost.CopyBytesPerUS = 10 // 16K -> 1.6ms of copy
	c := newCluster(t, 2, withAdaptive(), withCores(1),
		withRails(func(int) []nic.Params { return []nic.Params{slow} }))
	data := payload(16<<10, 2)
	c.run(0, func(th *sched.Thread) {
		// The only core is this thread: the adaptive policy must submit
		// inline, paying the full copy cost in Isend.
		start := time.Now()
		s := c.Nodes[0].Eng.Isend(1, 1, data)
		if el := time.Since(start); el < 1500*time.Microsecond {
			t.Errorf("adaptive Isend with no idle core returned in %v, want inline copy", el)
		}
		if !s.Completed() {
			t.Error("inline-submitted send incomplete")
		}
	})
}
