package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pioman/internal/nic"
	"pioman/internal/piom"
	"pioman/internal/sched"
	"pioman/internal/topo"
	"pioman/internal/wire"
)

// testNode bundles one simulated node.
type testNode struct {
	Sch *sched.Scheduler
	Srv *piom.Server
	Eng *Engine
}

// testCluster wires n nodes over fast links (near-zero modeled costs) so
// logic tests run quickly.
type testCluster struct {
	Nodes []*testNode
}

type clusterOpt func(*clusterParams)

type clusterParams struct {
	cores    int
	mode     Mode
	strategy string
	offload  bool
	adaptive bool
	railsFn  func(node int) []nic.Params
	fabrics  map[string]*wire.Fabric
	blocking bool
	maxRdv   int
}

func withMode(m Mode) clusterOpt       { return func(p *clusterParams) { p.mode = m } }
func withCores(c int) clusterOpt       { return func(p *clusterParams) { p.cores = c } }
func withStrategy(s string) clusterOpt { return func(p *clusterParams) { p.strategy = s } }
func withNoOffload() clusterOpt        { return func(p *clusterParams) { p.offload = false } }
func withBlockingFallback() clusterOpt { return func(p *clusterParams) { p.blocking = true } }
func withMaxPendingRdv(n int) clusterOpt {
	return func(p *clusterParams) { p.maxRdv = n }
}
func withRails(fn func(node int) []nic.Params) clusterOpt {
	return func(p *clusterParams) { p.railsFn = fn }
}

// fastRail is an MX-shaped rail with negligible timing.
func fastRail() nic.Params {
	p := nic.MXParams()
	p.Link = wire.LinkParams{Latency: 0, BytesPerUS: 1e12}
	p.Cost.CopyBytesPerUS = 1e12
	p.Cost.PIOBytesPerUS = 1e12
	p.Cost.SubmitOverhead = 0
	p.Cost.DMASetup = 0
	return p
}

func newCluster(t testing.TB, n int, opts ...clusterOpt) *testCluster {
	t.Helper()
	params := &clusterParams{
		cores:   4,
		mode:    Multithreaded,
		offload: true,
		railsFn: func(int) []nic.Params { return []nic.Params{fastRail()} },
	}
	for _, o := range opts {
		o(params)
	}
	// One fabric per distinct rail name, shared by all nodes.
	params.fabrics = map[string]*wire.Fabric{}
	for _, rp := range params.railsFn(0) {
		params.fabrics[rp.Name] = wire.NewFabric(n, rp.Link)
	}
	c := &testCluster{}
	for node := 0; node < n; node++ {
		sch := sched.New(sched.Config{
			Machine: topo.Machine{Sockets: 1, CoresPerSocket: params.cores},
		})
		var srv *piom.Server
		if params.mode == Multithreaded {
			srv = piom.NewServer(sch, piom.Config{
				EnableIdleHook: true,
				EnableBlocking: params.blocking,
			})
		}
		var rails []*nic.Driver
		for _, rp := range params.railsFn(node) {
			rails = append(rails, nic.NewSim(rp, params.fabrics[rp.Name], node))
		}
		eng := New(node, sch, srv, rails, Config{
			Mode:                 params.mode,
			OffloadEager:         params.offload,
			AdaptiveOffload:      params.adaptive,
			Strategy:             params.strategy,
			MaxPendingRdvPerPeer: params.maxRdv,
		})
		if srv != nil {
			srv.Start()
		}
		c.Nodes = append(c.Nodes, &testNode{Sch: sch, Srv: srv, Eng: eng})
	}
	t.Cleanup(func() {
		for _, nd := range c.Nodes {
			if nd.Srv != nil {
				nd.Srv.Stop()
			}
			nd.Sch.Shutdown()
		}
	})
	return c
}

// run executes fn as a scheduled thread on node's scheduler and waits.
func (c *testCluster) run(node int, fn func(*sched.Thread)) {
	c.Nodes[node].Sch.Spawn("test", fn).Join()
}

// payload builds a deterministic test pattern.
func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestEagerRoundtripBothModes(t *testing.T) {
	for _, mode := range []Mode{Sequential, Multithreaded} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newCluster(t, 2, withMode(mode))
			data := payload(4096, 1)
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				c.run(0, func(th *sched.Thread) {
					s := c.Nodes[0].Eng.Isend(1, 42, data)
					c.Nodes[0].Eng.WaitSend(s, th)
				})
			}()
			buf := make([]byte, 4096)
			var r *RecvReq
			go func() {
				defer wg.Done()
				c.run(1, func(th *sched.Thread) {
					r = c.Nodes[1].Eng.Irecv(0, 42, buf)
					c.Nodes[1].Eng.WaitRecv(r, th)
				})
			}()
			wg.Wait()
			if !bytes.Equal(buf, data) {
				t.Fatal("payload corrupted")
			}
			if r.Len() != 4096 || r.From() != 0 || r.Truncated() {
				t.Fatalf("recv metadata: len=%d from=%d trunc=%v", r.Len(), r.From(), r.Truncated())
			}
		})
	}
}

func TestRendezvousRoundtripBothModes(t *testing.T) {
	for _, mode := range []Mode{Sequential, Multithreaded} {
		t.Run(mode.String(), func(t *testing.T) {
			c := newCluster(t, 2, withMode(mode))
			const size = 256 << 10 // far above the 32K threshold
			data := payload(size, 9)
			buf := make([]byte, size)
			var s *SendReq
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				c.run(0, func(th *sched.Thread) {
					s = c.Nodes[0].Eng.Isend(1, 7, data)
					c.Nodes[0].Eng.WaitSend(s, th)
				})
			}()
			go func() {
				defer wg.Done()
				c.run(1, func(th *sched.Thread) {
					r := c.Nodes[1].Eng.Irecv(0, 7, buf)
					c.Nodes[1].Eng.WaitRecv(r, th)
				})
			}()
			wg.Wait()
			if !s.Rendezvous() {
				t.Fatal("large send did not use rendezvous")
			}
			if !bytes.Equal(buf, data) {
				t.Fatal("rendezvous payload corrupted")
			}
		})
	}
}

func TestUnexpectedMessageThenIrecv(t *testing.T) {
	c := newCluster(t, 2, withMode(Multithreaded))
	data := payload(2048, 3)
	c.run(0, func(th *sched.Thread) {
		s := c.Nodes[0].Eng.Isend(1, 5, data)
		c.Nodes[0].Eng.WaitSend(s, th)
	})
	// Give the receiver's idle cores time to buffer it as unexpected.
	deadline := time.Now().Add(time.Second)
	for c.Nodes[1].Eng.Stats().Unexpected == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Nodes[1].Eng.Stats().Unexpected == 0 {
		t.Fatal("message never landed in the unexpected pool")
	}
	buf := make([]byte, 2048)
	c.run(1, func(th *sched.Thread) {
		r := c.Nodes[1].Eng.Irecv(0, 5, buf)
		if !r.Completed() {
			c.Nodes[1].Eng.WaitRecv(r, th)
		}
	})
	if !bytes.Equal(buf, data) {
		t.Fatal("unexpected-path payload corrupted")
	}
}

func TestUnexpectedRTSThenIrecv(t *testing.T) {
	c := newCluster(t, 2, withMode(Multithreaded))
	const size = 128 << 10
	data := payload(size, 4)
	sendDone := make(chan struct{})
	go func() {
		defer close(sendDone)
		c.run(0, func(th *sched.Thread) {
			s := c.Nodes[0].Eng.Isend(1, 5, data)
			c.Nodes[0].Eng.WaitSend(s, th)
		})
	}()
	// Wait for the RTS to be queued unexpected on node 1.
	deadline := time.Now().Add(time.Second)
	for c.Nodes[1].Eng.Stats().Unexpected == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	buf := make([]byte, size)
	c.run(1, func(th *sched.Thread) {
		r := c.Nodes[1].Eng.Irecv(0, 5, buf)
		c.Nodes[1].Eng.WaitRecv(r, th)
	})
	<-sendDone
	if !bytes.Equal(buf, data) {
		t.Fatal("late-posted rendezvous corrupted")
	}
}

func TestAnySourceMatching(t *testing.T) {
	c := newCluster(t, 3, withMode(Multithreaded))
	c.run(2, func(th *sched.Thread) {
		s := c.Nodes[2].Eng.Isend(1, 9, []byte("from two"))
		c.Nodes[2].Eng.WaitSend(s, th)
	})
	buf := make([]byte, 16)
	var r *RecvReq
	c.run(1, func(th *sched.Thread) {
		r = c.Nodes[1].Eng.Irecv(AnySource, 9, buf)
		c.Nodes[1].Eng.WaitRecv(r, th)
	})
	if r.From() != 2 {
		t.Fatalf("From = %d, want 2", r.From())
	}
	if string(buf[:r.Len()]) != "from two" {
		t.Fatalf("payload %q", buf[:r.Len()])
	}
}

func TestTruncationEager(t *testing.T) {
	c := newCluster(t, 2)
	c.run(0, func(th *sched.Thread) {
		s := c.Nodes[0].Eng.Isend(1, 1, payload(100, 0))
		c.Nodes[0].Eng.WaitSend(s, th)
	})
	buf := make([]byte, 40)
	var r *RecvReq
	c.run(1, func(th *sched.Thread) {
		r = c.Nodes[1].Eng.Irecv(0, 1, buf)
		c.Nodes[1].Eng.WaitRecv(r, th)
	})
	if !r.Truncated() || r.Len() != 40 {
		t.Fatalf("truncated=%v len=%d, want true,40", r.Truncated(), r.Len())
	}
}

func TestTagSelectivity(t *testing.T) {
	c := newCluster(t, 2)
	c.run(0, func(th *sched.Thread) {
		a := c.Nodes[0].Eng.Isend(1, 1, []byte("tag one"))
		b := c.Nodes[0].Eng.Isend(1, 2, []byte("tag two"))
		c.Nodes[0].Eng.WaitAll(th, a.Req(), b.Req())
	})
	buf2 := make([]byte, 16)
	buf1 := make([]byte, 16)
	var r1, r2 *RecvReq
	c.run(1, func(th *sched.Thread) {
		// Post tag 2 first: matching must be by tag, not arrival order.
		r2 = c.Nodes[1].Eng.Irecv(0, 2, buf2)
		c.Nodes[1].Eng.WaitRecv(r2, th)
		r1 = c.Nodes[1].Eng.Irecv(0, 1, buf1)
		c.Nodes[1].Eng.WaitRecv(r1, th)
	})
	if string(buf2[:r2.Len()]) != "tag two" || string(buf1[:r1.Len()]) != "tag one" {
		t.Fatalf("tag mixup: %q / %q", buf1[:r1.Len()], buf2[:r2.Len()])
	}
}

func TestPerSourceTagFIFO(t *testing.T) {
	c := newCluster(t, 2)
	const n = 50
	go c.run(0, func(th *sched.Thread) {
		for i := 0; i < n; i++ {
			s := c.Nodes[0].Eng.Isend(1, 3, []byte{byte(i)})
			c.Nodes[0].Eng.WaitSend(s, th)
		}
	})
	c.run(1, func(th *sched.Thread) {
		for i := 0; i < n; i++ {
			buf := make([]byte, 1)
			r := c.Nodes[1].Eng.Irecv(0, 3, buf)
			c.Nodes[1].Eng.WaitRecv(r, th)
			if buf[0] != byte(i) {
				t.Errorf("message %d out of order: got %d", i, buf[0])
				return
			}
		}
	})
}

func TestOffloadedIsendReturnsFast(t *testing.T) {
	// With a real copy cost, an offloaded Isend must return much faster
	// than the submission itself takes.
	slow := fastRail()
	slow.Cost.CopyBytesPerUS = 10 // 100 µs per KB: 16K -> 1.6ms of copy
	c := newCluster(t, 2, withRails(func(int) []nic.Params { return []nic.Params{slow} }))
	data := payload(16<<10, 2)
	var isendTime time.Duration
	done := make(chan struct{})
	go c.run(1, func(th *sched.Thread) {
		buf := make([]byte, 16<<10)
		for i := 0; i < 3; i++ {
			r := c.Nodes[1].Eng.Irecv(0, 1, buf)
			c.Nodes[1].Eng.WaitRecv(r, th)
		}
		close(done)
	})
	c.run(0, func(th *sched.Thread) {
		// The inline path would pay ~1.6ms of copy deterministically on
		// every call; registration is sub-µs. Taking the fastest of a few
		// attempts filters host-level scheduling stalls without masking a
		// systematic inline submission.
		isendTime = time.Hour
		for attempt := 0; attempt < 3; attempt++ {
			start := time.Now()
			s := c.Nodes[0].Eng.Isend(1, 1, data)
			if el := time.Since(start); el < isendTime {
				isendTime = el
			}
			c.Nodes[0].Eng.WaitSend(s, th)
		}
	})
	<-done
	if isendTime > 500*time.Microsecond {
		t.Fatalf("offloaded Isend took %v on its best attempt, want registration-only (<500µs)", isendTime)
	}
	if c.Nodes[0].Eng.Stats().OffloadSubmits == 0 {
		t.Fatal("no offloaded submissions recorded")
	}
}

func TestSequentialDefersSubmissionToWait(t *testing.T) {
	slow := fastRail()
	slow.Cost.CopyBytesPerUS = 10 // 16K -> 1.6ms
	c := newCluster(t, 2, withMode(Sequential),
		withRails(func(int) []nic.Params { return []nic.Params{slow} }))
	data := payload(16<<10, 2)
	c.run(0, func(th *sched.Thread) {
		start := time.Now()
		s := c.Nodes[0].Eng.Isend(1, 1, data)
		el := time.Since(start)
		// Original NewMadeleine: isend only enqueues the pack.
		if el > 500*time.Microsecond {
			t.Errorf("sequential Isend took %v, want enqueue-only", el)
		}
		if s.Completed() {
			t.Error("send completed before any library re-entry")
		}
		// The submission cost lands inside the wait.
		start = time.Now()
		c.Nodes[0].Eng.WaitSend(s, th)
		if el := time.Since(start); el < 1500*time.Microsecond {
			t.Errorf("sequential WaitSend took %v, want >= ~1.6ms (inline copy)", el)
		}
	})
}

func TestMultithreadedNoOffloadSubmitsInline(t *testing.T) {
	slow := fastRail()
	slow.Cost.CopyBytesPerUS = 10 // 16K -> 1.6ms
	c := newCluster(t, 2, withMode(Multithreaded), withNoOffload(),
		withRails(func(int) []nic.Params { return []nic.Params{slow} }))
	data := payload(16<<10, 2)
	c.run(0, func(th *sched.Thread) {
		start := time.Now()
		s := c.Nodes[0].Eng.Isend(1, 1, data)
		if el := time.Since(start); el < 1500*time.Microsecond {
			t.Errorf("no-offload Isend returned in %v, want inline copy cost", el)
		}
		if !s.Completed() {
			t.Error("inline-submitted send incomplete")
		}
	})
}

func TestAggregationStrategy(t *testing.T) {
	c := newCluster(t, 2, withStrategy("aggreg"))
	const n = 20
	var reqs []*SendReq
	c.run(0, func(th *sched.Thread) {
		for i := 0; i < n; i++ {
			reqs = append(reqs, c.Nodes[0].Eng.Isend(1, 100+i, payload(64, byte(i))))
		}
		for _, s := range reqs {
			c.Nodes[0].Eng.WaitSend(s, th)
		}
	})
	c.run(1, func(th *sched.Thread) {
		for i := 0; i < n; i++ {
			buf := make([]byte, 64)
			r := c.Nodes[1].Eng.Irecv(0, 100+i, buf)
			c.Nodes[1].Eng.WaitRecv(r, th)
			if !bytes.Equal(buf, payload(64, byte(i))) {
				t.Errorf("message %d corrupted", i)
			}
		}
	})
	if c.Nodes[0].Eng.Stats().Aggregated == 0 {
		t.Error("aggregation strategy never aggregated")
	}
}

func TestMultirailSplitsLargeData(t *testing.T) {
	rails := func(int) []nic.Params {
		a := fastRail()
		b := fastRail()
		b.Name = "tcp2"
		return []nic.Params{a, b}
	}
	c := newCluster(t, 2, withStrategy("multirail"), withRails(rails))
	const size = 512 << 10
	data := payload(size, 6)
	buf := make([]byte, size)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.run(0, func(th *sched.Thread) {
			s := c.Nodes[0].Eng.Isend(1, 1, data)
			c.Nodes[0].Eng.WaitSend(s, th)
		})
	}()
	go func() {
		defer wg.Done()
		c.run(1, func(th *sched.Thread) {
			r := c.Nodes[1].Eng.Irecv(0, 1, buf)
			c.Nodes[1].Eng.WaitRecv(r, th)
		})
	}()
	wg.Wait()
	if !bytes.Equal(buf, data) {
		t.Fatal("multirail payload corrupted")
	}
	// Both rails must have carried data chunks.
	for i, rail := range c.Nodes[0].Eng.rails {
		if rail.Stats().DataSent == 0 {
			t.Errorf("rail %d carried no data chunks", i)
		}
	}
}

// TestMultirailIsNotFifoAlias pins the bugfix for the strategy table:
// "multirail" used to resolve to a renamed fifoStrategy, silently running
// every multirail experiment on FIFO placement. It must resolve to the
// dedicated implementation, and names the table does not know must stay
// a hard error rather than degrade to some default.
func TestMultirailIsNotFifoAlias(t *testing.T) {
	s := newStrategy("multirail")
	if _, ok := s.(*multirailStrategy); !ok {
		t.Fatalf("newStrategy(\"multirail\") = %T, want *multirailStrategy", s)
	}
	if _, ok := newStrategy("fifo").(*fifoStrategy); !ok {
		t.Fatal("newStrategy(\"fifo\") is not the fifo implementation")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown strategy name did not panic")
		}
	}()
	newStrategy("multi-rail") // a plausible typo must fail loudly
}

// TestMultirailWeightProportion: striping must follow the rails' declared
// bandwidth weights, not split evenly — that is the entire point of
// bonding a fast and a slow rail.
func TestMultirailWeightProportion(t *testing.T) {
	rails := func(int) []nic.Params {
		a := fastRail()
		a.StripeWeight = 3000
		b := fastRail()
		b.Name = "tcp2"
		b.StripeWeight = 1000
		return []nic.Params{a, b}
	}
	c := newCluster(t, 2, withStrategy("multirail"), withRails(rails))
	const size = 512 << 10
	data := payload(size, 9)
	buf := make([]byte, size)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.run(0, func(th *sched.Thread) {
			s := c.Nodes[0].Eng.Isend(1, 1, data)
			c.Nodes[0].Eng.WaitSend(s, th)
		})
	}()
	go func() {
		defer wg.Done()
		c.run(1, func(th *sched.Thread) {
			r := c.Nodes[1].Eng.Irecv(0, 1, buf)
			c.Nodes[1].Eng.WaitRecv(r, th)
		})
	}()
	wg.Wait()
	if !bytes.Equal(buf, data) {
		t.Fatal("weighted multirail payload corrupted")
	}
	a := c.Nodes[0].Eng.rails[0].Stats().DataBytes
	b := c.Nodes[0].Eng.rails[1].Stats().DataBytes
	if a+b != size {
		t.Fatalf("rails carried %d bytes total, want %d", a+b, size)
	}
	// 3:1 weights with MTU-granular chunking: the heavy rail must carry
	// roughly three quarters of the payload.
	if ratio := float64(a) / float64(size); ratio < 0.70 || ratio > 0.80 {
		t.Fatalf("heavy rail carried %.0f%% of the payload, want ~75%%", 100*ratio)
	}
}

// TestMultirailChunksRespectMTU: each striped span must go out as
// MTU-bounded DATA packets, not one arbitrarily large frame — real
// transports refuse frames above their ceiling.
func TestMultirailChunksRespectMTU(t *testing.T) {
	rails := func(int) []nic.Params {
		a := fastRail()
		b := fastRail()
		b.Name = "tcp2"
		return []nic.Params{a, b}
	}
	c := newCluster(t, 2, withStrategy("multirail"), withRails(rails))
	const size = 512 << 10 // 256 KiB per rail at equal weights, MTU 32 KiB
	data := payload(size, 4)
	buf := make([]byte, size)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.run(0, func(th *sched.Thread) {
			s := c.Nodes[0].Eng.Isend(1, 1, data)
			c.Nodes[0].Eng.WaitSend(s, th)
		})
	}()
	go func() {
		defer wg.Done()
		c.run(1, func(th *sched.Thread) {
			r := c.Nodes[1].Eng.Irecv(0, 1, buf)
			c.Nodes[1].Eng.WaitRecv(r, th)
		})
	}()
	wg.Wait()
	if !bytes.Equal(buf, data) {
		t.Fatal("multirail payload corrupted")
	}
	for i, rail := range c.Nodes[0].Eng.rails {
		st := rail.Stats()
		if st.DataSent == 0 {
			t.Errorf("rail %d carried no data chunks", i)
			continue
		}
		mtu := rail.MTU()
		if min := uint64(st.DataBytes) / st.DataSent; min > uint64(mtu) {
			t.Errorf("rail %d averaged %d B per DATA packet, above its %d B MTU", i, min, mtu)
		}
		want := (st.DataBytes + uint64(mtu) - 1) / uint64(mtu)
		if st.DataSent != want {
			t.Errorf("rail %d sent %d DATA packets for %d bytes, want %d MTU-sized chunks",
				i, st.DataSent, st.DataBytes, want)
		}
	}
}

// TestMultirailExcludesZeroWeightRails: a rail with no stripe weight —
// the simulated intra-node SHM channel — must never carry cross-node
// rendezvous chunks, even under the multirail strategy.
func TestMultirailExcludesZeroWeightRails(t *testing.T) {
	rails := func(int) []nic.Params { return []nic.Params{fastRail(), nic.SHMParams()} }
	c := newCluster(t, 2, withStrategy("multirail"), withRails(rails))
	const size = 512 << 10
	data := payload(size, 3)
	buf := make([]byte, size)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.run(0, func(th *sched.Thread) {
			s := c.Nodes[0].Eng.Isend(1, 1, data)
			c.Nodes[0].Eng.WaitSend(s, th)
		})
	}()
	go func() {
		defer wg.Done()
		c.run(1, func(th *sched.Thread) {
			r := c.Nodes[1].Eng.Irecv(0, 1, buf)
			c.Nodes[1].Eng.WaitRecv(r, th)
		})
	}()
	wg.Wait()
	if !bytes.Equal(buf, data) {
		t.Fatal("multirail payload corrupted")
	}
	if got := c.Nodes[0].Eng.rails[1].Stats().DataSent; got != 0 {
		t.Fatalf("zero-weight shm rail carried %d cross-node data chunks", got)
	}
}

// TestConcurrentRendezvousFromTwoSenders pins the rendezvous matching
// key: msgIDs are allocated per origin engine, so ranks 1 and 2 both
// number their first rendezvous msgID 1 — the receiver must key its
// handshake state by (sender, msgID), or one transfer overwrites the
// other's state (permanent hang) and DATA chunks cross buffers.
func TestConcurrentRendezvousFromTwoSenders(t *testing.T) {
	c := newCluster(t, 3)
	const size = 96 << 10 // rendezvous on the fast rail (EagerMax 32 KiB)
	msg1, msg2 := payload(size, 0x11), payload(size, 0x22)
	buf1, buf2 := make([]byte, size), make([]byte, size)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		c.run(0, func(th *sched.Thread) {
			r1 := c.Nodes[0].Eng.Irecv(1, 1, buf1)
			r2 := c.Nodes[0].Eng.Irecv(2, 2, buf2)
			c.Nodes[0].Eng.WaitRecv(r1, th)
			c.Nodes[0].Eng.WaitRecv(r2, th)
		})
	}()
	for sender := 1; sender <= 2; sender++ {
		sender := sender
		go func() {
			defer wg.Done()
			c.run(sender, func(th *sched.Thread) {
				data := msg1
				if sender == 2 {
					data = msg2
				}
				s := c.Nodes[sender].Eng.Isend(0, sender, data)
				c.Nodes[sender].Eng.WaitSend(s, th)
			})
		}()
	}
	wg.Wait()
	if !bytes.Equal(buf1, msg1) {
		t.Error("rank 1's rendezvous corrupted by rank 2's identical msgID")
	}
	if !bytes.Equal(buf2, msg2) {
		t.Error("rank 2's rendezvous corrupted by rank 1's identical msgID")
	}
}

// TestRdvSpanReassembly exercises the receive-side completion barrier
// directly: chunks arriving in any order, overlapping (a fallback resend
// of a span that actually arrived), or duplicated must complete the
// message exactly once, when every byte is covered.
func TestRdvSpanReassembly(t *testing.T) {
	st := &rdvRecvState{msgLen: 100}
	if n := st.addSpan(60, 80); n != 20 {
		t.Fatalf("first span covered %d bytes, want 20", n)
	}
	if n := st.addSpan(0, 30); n != 30 {
		t.Fatalf("disjoint span covered %d, want 30", n)
	}
	if n := st.addSpan(60, 80); n != 0 {
		t.Fatalf("duplicate span covered %d, want 0", n)
	}
	if n := st.addSpan(20, 70); n != 30 {
		t.Fatalf("overlapping bridge covered %d, want 30", n)
	}
	if st.got != 80 {
		t.Fatalf("covered %d bytes, want 80", st.got)
	}
	if n := st.addSpan(80, 120); n != 20 {
		t.Fatalf("tail span covered %d, want 20 (clamped to msgLen)", n)
	}
	if st.got != st.msgLen {
		t.Fatalf("full coverage reports %d/%d", st.got, st.msgLen)
	}
	if len(st.covered) != 1 {
		t.Fatalf("fully merged state holds %d spans, want 1", len(st.covered))
	}
}

func TestSelfSendViaShm(t *testing.T) {
	rails := func(int) []nic.Params { return []nic.Params{fastRail(), nic.SHMParams()} }
	c := newCluster(t, 2, withRails(rails))
	data := payload(1024, 8)
	buf := make([]byte, 1024)
	c.run(0, func(th *sched.Thread) {
		r := c.Nodes[0].Eng.Irecv(0, 2, buf)
		s := c.Nodes[0].Eng.Isend(0, 2, data)
		c.Nodes[0].Eng.WaitSend(s, th)
		c.Nodes[0].Eng.WaitRecv(r, th)
	})
	if !bytes.Equal(buf, data) {
		t.Fatal("self-send corrupted")
	}
	// The shm rail (index 1) must have carried it.
	if c.Nodes[0].Eng.rails[1].Stats().EagerSent == 0 {
		t.Fatal("self traffic did not use the shm rail")
	}
}

func TestCtrlHandler(t *testing.T) {
	c := newCluster(t, 2)
	got := make(chan byte, 1)
	c.Nodes[1].Eng.SetCtrlHandler(func(p *wire.Packet) {
		got <- p.Payload[0]
	})
	c.Nodes[0].Eng.defaultRail().SendCtrl(nic.Header{Src: 0, Dst: 1, Tag: -1}, []byte{55})
	select {
	case b := <-got:
		if b != 55 {
			t.Fatalf("ctrl payload = %d", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ctrl packet never handled")
	}
}

func TestBlockingFallbackDeliversWhileCoresBusy(t *testing.T) {
	c := newCluster(t, 2, withCores(1), withBlockingFallback())
	// Hog node 1's only core with computation; progression must come from
	// the blocking watcher.
	stop := make(chan struct{})
	hogDone := make(chan struct{})
	go func() {
		// Signal only after run (Spawn+Join) fully returns, so the
		// scheduler's thread accounting has settled before Cleanup.
		defer close(hogDone)
		c.run(1, func(th *sched.Thread) {
			for {
				select {
				case <-stop:
					return
				default:
					th.Compute(100 * time.Microsecond)
				}
			}
		})
	}()
	time.Sleep(2 * time.Millisecond)
	c.run(0, func(th *sched.Thread) {
		s := c.Nodes[0].Eng.Isend(1, 4, []byte("bg"))
		c.Nodes[0].Eng.WaitSend(s, th)
	})
	deadline := time.Now().Add(2 * time.Second)
	for c.Nodes[1].Eng.Stats().Unexpected == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-hogDone
	if c.Nodes[1].Eng.Stats().Unexpected == 0 {
		t.Fatal("blocking fallback never processed the arrival")
	}
}

func TestConcurrentSendersManyThreads(t *testing.T) {
	c := newCluster(t, 2, withCores(4))
	const threads = 6
	const msgs = 20
	var wg sync.WaitGroup
	for ti := 0; ti < threads; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			c.run(0, func(th *sched.Thread) {
				for m := 0; m < msgs; m++ {
					s := c.Nodes[0].Eng.Isend(1, 1000+ti, payload(256, byte(m)))
					c.Nodes[0].Eng.WaitSend(s, th)
				}
			})
		}(ti)
	}
	var recvWg sync.WaitGroup
	for ti := 0; ti < threads; ti++ {
		recvWg.Add(1)
		go func(ti int) {
			defer recvWg.Done()
			c.run(1, func(th *sched.Thread) {
				for m := 0; m < msgs; m++ {
					buf := make([]byte, 256)
					r := c.Nodes[1].Eng.Irecv(0, 1000+ti, buf)
					c.Nodes[1].Eng.WaitRecv(r, th)
					if !bytes.Equal(buf, payload(256, byte(m))) {
						t.Errorf("thread %d msg %d corrupted", ti, m)
						return
					}
				}
			})
		}(ti)
	}
	wg.Wait()
	recvWg.Wait()
}

// TestRandomTrafficFuzz sends randomized sizes crossing every protocol
// boundary (PIO, eager, rendezvous) in both modes and checks exactly-once,
// in-order, uncorrupted delivery.
func TestRandomTrafficFuzz(t *testing.T) {
	for _, mode := range []Mode{Sequential, Multithreaded} {
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			c := newCluster(t, 2, withMode(mode))
			const n = 40
			sizes := make([]int, n)
			for i := range sizes {
				switch rng.Intn(4) {
				case 0:
					sizes[i] = rng.Intn(128) + 1 // PIO
				case 1:
					sizes[i] = rng.Intn(4<<10) + 129 // eager small
				case 2:
					sizes[i] = rng.Intn(28<<10) + 4<<10 // eager large
				case 3:
					sizes[i] = 32<<10 + 1 + rng.Intn(64<<10) // rendezvous
				}
			}
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				c.run(0, func(th *sched.Thread) {
					for i, sz := range sizes {
						s := c.Nodes[0].Eng.Isend(1, 7, payload(sz, byte(i)))
						c.Nodes[0].Eng.WaitSend(s, th)
					}
				})
			}()
			go func() {
				defer wg.Done()
				c.run(1, func(th *sched.Thread) {
					for i, sz := range sizes {
						buf := make([]byte, sz)
						r := c.Nodes[1].Eng.Irecv(0, 7, buf)
						c.Nodes[1].Eng.WaitRecv(r, th)
						if r.Len() != sz {
							t.Errorf("msg %d: len %d != %d", i, r.Len(), sz)
							return
						}
						if !bytes.Equal(buf, payload(sz, byte(i))) {
							t.Errorf("msg %d (size %d) corrupted", i, sz)
							return
						}
					}
				})
			}()
			wg.Wait()
		})
	}
}

func TestEngineValidation(t *testing.T) {
	sch := sched.New(sched.Config{Machine: topo.Machine{Sockets: 1, CoresPerSocket: 1}})
	defer sch.Shutdown()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New with no rails did not panic")
			}
		}()
		New(0, sch, nil, nil, Config{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New with mismatched rail endpoint did not panic")
			}
		}()
		fab := wire.NewFabric(2, wire.MYRI10G())
		New(0, sch, nil, []*nic.Driver{nic.NewSim(nic.MXParams(), fab, 1)}, Config{})
	}()
}

func TestUnknownStrategyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newStrategy("bogus")
}

func TestModeString(t *testing.T) {
	if Sequential.String() != "sequential" || Multithreaded.String() != "multithreaded" {
		t.Fatal("Mode.String broken")
	}
}

// TestWaitSendIdempotent ensures double waits and waits on completed
// requests return immediately.
func TestWaitSendIdempotent(t *testing.T) {
	c := newCluster(t, 2)
	done := make(chan struct{})
	go c.run(1, func(th *sched.Thread) {
		buf := make([]byte, 8)
		r := c.Nodes[1].Eng.Irecv(0, 1, buf)
		c.Nodes[1].Eng.WaitRecv(r, th)
		c.Nodes[1].Eng.WaitRecv(r, th)
		close(done)
	})
	c.run(0, func(th *sched.Thread) {
		s := c.Nodes[0].Eng.Isend(1, 1, []byte("idem"))
		c.Nodes[0].Eng.WaitSend(s, th)
		c.Nodes[0].Eng.WaitSend(s, th)
	})
	<-done
}

func TestStatsAccounting(t *testing.T) {
	c := newCluster(t, 2)
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		c.run(1, func(th *sched.Thread) {
			buf := make([]byte, 64<<10)
			r := c.Nodes[1].Eng.Irecv(0, 1, buf)
			c.Nodes[1].Eng.WaitRecv(r, th)
		})
	}()
	c.run(0, func(th *sched.Thread) {
		s := c.Nodes[0].Eng.Isend(1, 1, payload(64<<10, 0)) // rdv
		s2 := c.Nodes[0].Eng.Isend(1, 2, payload(64, 0))    // eager
		c.Nodes[0].Eng.WaitSend(s2, th)
		c.Nodes[0].Eng.WaitSend(s, th)
	})
	<-recvDone
	st := c.Nodes[0].Eng.Stats()
	if st.SendsPosted != 2 {
		t.Errorf("SendsPosted = %d, want 2", st.SendsPosted)
	}
	if st.RdvStarted != 1 {
		t.Errorf("RdvStarted = %d, want 1", st.RdvStarted)
	}
	if st.EagerSubmits == 0 {
		t.Error("EagerSubmits = 0")
	}
}

func TestAggrCodecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(8) + 1
		var train []*pack
		for i := 0; i < n; i++ {
			train = append(train, &pack{req: &SendReq{
				tag:  rng.Intn(100) - 50,
				seq:  rng.Uint64(),
				data: payload(rng.Intn(512), byte(i)),
			}})
		}
		subs := decodeAggr(encodeAggr(train))
		if len(subs) != n {
			t.Fatalf("trial %d: decoded %d subs, want %d", trial, len(subs), n)
		}
		for i, s := range subs {
			want := train[i].req
			if s.tag != want.tag || s.seq != want.seq || !bytes.Equal(s.data, want.data) {
				t.Fatalf("trial %d sub %d mismatch", trial, i)
			}
		}
	}
}

func TestDecodeAggrCorruption(t *testing.T) {
	if decodeAggr([]byte{1, 2, 3}) != nil {
		t.Error("short buffer decoded")
	}
	// Valid header claiming more data than present.
	train := []*pack{{req: &SendReq{tag: 1, data: []byte("abcd")}}}
	enc := encodeAggr(train)
	if decodeAggr(enc[:len(enc)-2]) != nil {
		t.Error("truncated train decoded")
	}
	if got := decodeAggr(nil); got != nil {
		t.Error("nil payload decoded to non-nil")
	}
}

func TestStrategyNames(t *testing.T) {
	for name, want := range map[string]string{
		"":          "fifo",
		"fifo":      "fifo",
		"aggreg":    "aggreg",
		"multirail": "multirail",
	} {
		if got := newStrategy(name).Name(); got != want {
			t.Errorf("newStrategy(%q).Name() = %q, want %q", name, got, want)
		}
	}
}

func TestFifoDequeueOrder(t *testing.T) {
	s := newStrategy("fifo")
	for i := 0; i < 5; i++ {
		s.Enqueue(&pack{req: &SendReq{dst: 1, seq: uint64(i)}})
	}
	for i := 0; i < 5; i++ {
		tr := s.Dequeue(func(int) int { return 1 << 20 }, nil)
		if len(tr) != 1 || tr[0].req.seq != uint64(i) {
			t.Fatalf("dequeue %d: got %+v", i, tr)
		}
	}
	if s.Pending() || s.Dequeue(func(int) int { return 1 }, nil) != nil {
		t.Fatal("drained queue still pending")
	}
}

func TestAggrDequeueRespectsMTUAndDst(t *testing.T) {
	s := newStrategy("aggreg")
	// Three packs to dst 1 of 100B each, then one to dst 2.
	for i := 0; i < 3; i++ {
		s.Enqueue(&pack{req: &SendReq{dst: 1, seq: uint64(i), data: make([]byte, 100)}})
	}
	s.Enqueue(&pack{req: &SendReq{dst: 2, seq: 99, data: make([]byte, 100)}})
	// Every entry costs 24B header + 100B payload; MTU fits exactly three.
	tr := s.Dequeue(func(int) int { return 3 * (24 + 100) }, nil)
	if len(tr) != 3 {
		t.Fatalf("train len = %d, want 3 same-dst packs", len(tr))
	}
	tr2 := s.Dequeue(func(int) int { return 1 << 20 }, nil)
	if len(tr2) != 1 || tr2[0].req.dst != 2 {
		t.Fatalf("second train %+v, want the dst-2 pack", tr2)
	}
}

func TestAggrStopsAtDifferentDst(t *testing.T) {
	s := newStrategy("aggreg")
	s.Enqueue(&pack{req: &SendReq{dst: 1, data: make([]byte, 10)}})
	s.Enqueue(&pack{req: &SendReq{dst: 2, data: make([]byte, 10)}})
	s.Enqueue(&pack{req: &SendReq{dst: 1, data: make([]byte, 10)}})
	tr := s.Dequeue(func(int) int { return 1 << 20 }, nil)
	if len(tr) != 1 || tr[0].req.dst != 1 {
		t.Fatalf("first train %+v", tr)
	}
	tr = s.Dequeue(func(int) int { return 1 << 20 }, nil)
	if len(tr) != 1 || tr[0].req.dst != 2 {
		t.Fatalf("second train %+v", tr)
	}
}

func TestManyTagsInterleaved(t *testing.T) {
	c := newCluster(t, 2)
	const tags = 8
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.run(0, func(th *sched.Thread) {
			var reqs []*SendReq
			for tg := 0; tg < tags; tg++ {
				reqs = append(reqs, c.Nodes[0].Eng.Isend(1, tg, []byte(fmt.Sprintf("tag-%02d", tg))))
			}
			for _, s := range reqs {
				c.Nodes[0].Eng.WaitSend(s, th)
			}
		})
	}()
	go func() {
		defer wg.Done()
		c.run(1, func(th *sched.Thread) {
			// Post receives in reverse tag order.
			bufs := make([][]byte, tags)
			reqs := make([]*RecvReq, tags)
			for tg := tags - 1; tg >= 0; tg-- {
				bufs[tg] = make([]byte, 16)
				reqs[tg] = c.Nodes[1].Eng.Irecv(0, tg, bufs[tg])
			}
			for tg := 0; tg < tags; tg++ {
				c.Nodes[1].Eng.WaitRecv(reqs[tg], th)
				want := fmt.Sprintf("tag-%02d", tg)
				if string(bufs[tg][:reqs[tg].Len()]) != want {
					t.Errorf("tag %d: got %q", tg, bufs[tg][:reqs[tg].Len()])
				}
			}
		})
	}()
	wg.Wait()
}
