package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"pioman/internal/sync2"
)

// pack is one eager send waiting in the optimizer's queue (the "waiting
// packs" layer of Fig. 3). Packs are engine-internal — allocated in
// Isend, consumed in submitTrain — so they recycle through a freelist:
// one fewer allocation per eager send on the steady-state path.
type pack struct {
	req *SendReq
}

// packPool recycles packs; see getPack/putPack.
var packPool = sync.Pool{New: func() any { return new(pack) }}

// getPack draws a pack for r from the freelist.
func getPack(r *SendReq) *pack {
	p := packPool.Get().(*pack)
	p.req = r
	return p
}

// putPack hands a consumed pack back. The caller must have dropped the
// pack from every queue and train first.
func putPack(p *pack) {
	p.req = nil
	packPool.Put(p)
}

// strategy is the optimizer of Fig. 3: it owns the queue of waiting packs
// and decides what to put on the wire next. Implementations are called
// under the engine's qlock and must therefore be allocation-light and
// non-blocking.
type strategy interface {
	Name() string
	// Enqueue adds a ready eager pack.
	Enqueue(p *pack)
	// Head returns the next pack to leave the queue without removing it,
	// or nil when empty. The engine peeks it to check whether the
	// destination rail can accept a submission before dequeuing.
	Head() *pack
	// Dequeue appends the next train to submit — one or more packs for
	// the same destination — to into (reset to length zero first) and
	// returns it, or nil when the queue is empty. The caller owns the
	// returned slice until the next Dequeue, so a reused train buffer
	// makes steady-state submission allocation-free. mtuOf reports the
	// payload budget of the rail serving a destination.
	Dequeue(mtuOf func(dst int) int, into []*pack) []*pack
	// Pending reports whether packs are queued.
	Pending() bool
}

// newStrategy resolves a strategy name ("" defaults to fifo). Every name
// maps to a dedicated implementation and anything else is a hard error:
// a misspelled strategy must fail loudly at engine construction, not run
// the whole experiment on a silently substituted policy.
func newStrategy(name string) strategy {
	switch name {
	case "", "fifo":
		return &fifoStrategy{}
	case "aggreg", "aggregation":
		return &aggrStrategy{}
	case "multirail":
		return &multirailStrategy{}
	default:
		panic(fmt.Sprintf("core: unknown strategy %q", name))
	}
}

// fifoStrategy submits packs one at a time in post order. The head
// index (rather than re-slicing q[1:]) keeps the backing array's
// capacity across enqueue/dequeue cycles, so a steady request stream
// recycles one array instead of reallocating per send.
type fifoStrategy struct {
	q    []*pack
	head int
}

// Name identifies the strategy.
func (s *fifoStrategy) Name() string { return "fifo" }

func (s *fifoStrategy) Enqueue(p *pack) {
	s.q, s.head = sync2.CompactQueue(s.q, s.head)
	s.q = append(s.q, p)
}

func (s *fifoStrategy) Head() *pack {
	if s.head == len(s.q) {
		return nil
	}
	return s.q[s.head]
}

func (s *fifoStrategy) Dequeue(mtuOf func(int) int, into []*pack) []*pack {
	if s.head == len(s.q) {
		return nil
	}
	p := s.q[s.head]
	s.q[s.head] = nil // the train owns it now; drop the queue's alias
	s.head++
	if s.head == len(s.q) {
		s.q, s.head = s.q[:0], 0
	}
	return append(into[:0], p)
}

func (s *fifoStrategy) Pending() bool { return s.head < len(s.q) }

// multirailStrategy is the bonded-rails optimizer: eager packs queue in
// plain post order (small messages do not benefit from splitting — the
// per-rail handshakes would dominate), while its distinguishing policy
// lives on the engine's rendezvous data path, keyed off Name(): payloads
// at or above Config.MultirailMin are striped across every rail with a
// positive stripe weight, proportionally to those weights, in MTU-sized
// chunks (Engine.sendRdvData / stripeData). It is a distinct type rather
// than a renamed fifoStrategy so tests can pin that selecting "multirail"
// actually engages multirail placement.
type multirailStrategy struct {
	fifoStrategy
}

// Name identifies the strategy; the engine's data-placement path keys off
// this value.
func (s *multirailStrategy) Name() string { return "multirail" }

// aggrStrategy coalesces consecutive same-destination packs into one wire
// packet up to the rail MTU — the data-aggregation optimization of [2].
// Taking only a contiguous same-destination run preserves global post
// order, so per-(src,tag) FIFO matching is unaffected.
type aggrStrategy struct {
	q    []*pack
	head int
}

func (s *aggrStrategy) Name() string { return "aggreg" }

func (s *aggrStrategy) Enqueue(p *pack) {
	s.q, s.head = sync2.CompactQueue(s.q, s.head)
	s.q = append(s.q, p)
}

func (s *aggrStrategy) Head() *pack {
	if s.head == len(s.q) {
		return nil
	}
	return s.q[s.head]
}

func (s *aggrStrategy) Dequeue(mtuOf func(int) int, into []*pack) []*pack {
	if s.head == len(s.q) {
		return nil
	}
	hd := s.q[s.head]
	dst := hd.req.dst
	budget := mtuOf(dst) - aggrEntryOverhead - len(hd.req.data)
	train := append(into[:0], hd)
	s.q[s.head] = nil
	i := s.head + 1
	for i < len(s.q) {
		p := s.q[i]
		need := aggrEntryOverhead + len(p.req.data)
		if p.req.dst != dst || need > budget {
			break
		}
		train = append(train, p)
		s.q[i] = nil
		budget -= need
		i++
	}
	s.head = i
	if s.head == len(s.q) {
		s.q, s.head = s.q[:0], 0
	}
	return train
}

func (s *aggrStrategy) Pending() bool { return s.head < len(s.q) }

// Aggregated train wire format: repeated entries of
// [tag int64][seq uint64][len uint64][payload].
const aggrEntryOverhead = 24

// aggrSub is one decoded entry of an aggregated train.
type aggrSub struct {
	tag  int
	seq  uint64
	data []byte
}

// encodeAggr serializes a train into one payload.
func encodeAggr(train []*pack) []byte {
	total := 0
	for _, p := range train {
		total += aggrEntryOverhead + len(p.req.data)
	}
	out := make([]byte, 0, total)
	var hdr [aggrEntryOverhead]byte
	for _, p := range train {
		binary.LittleEndian.PutUint64(hdr[0:], uint64(int64(p.req.tag)))
		binary.LittleEndian.PutUint64(hdr[8:], p.req.seq)
		binary.LittleEndian.PutUint64(hdr[16:], uint64(len(p.req.data)))
		out = append(out, hdr[:]...)
		out = append(out, p.req.data...)
	}
	return out
}

// decodeAggr parses an aggregated payload; it returns nil on corruption.
func decodeAggr(payload []byte) []aggrSub {
	var subs []aggrSub
	for len(payload) > 0 {
		if len(payload) < aggrEntryOverhead {
			return nil
		}
		tag := int(int64(binary.LittleEndian.Uint64(payload[0:])))
		seq := binary.LittleEndian.Uint64(payload[8:])
		n := int(binary.LittleEndian.Uint64(payload[16:]))
		payload = payload[aggrEntryOverhead:]
		if n < 0 || n > len(payload) {
			return nil
		}
		subs = append(subs, aggrSub{tag: tag, seq: seq, data: payload[:n]})
		payload = payload[n:]
	}
	return subs
}
