package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"pioman/internal/nic"
	"pioman/internal/sched"
	"pioman/internal/wire"
)

// TestWireOvertakeIsReordered forces the wire-level reordering the
// fragmenting link model allows — a small RTS overtaking a bulk eager
// message — and checks that the receiver's stream-order stash restores
// matching order: the eager message posted first must complete first.
func TestWireOvertakeIsReordered(t *testing.T) {
	slow := fastRail()
	// 10 B/µs: a 16K eager occupies the link for ~1.6ms; the RTS sent
	// right after it interleaves and arrives ~1.6ms earlier.
	slow.Link = wire.LinkParams{Latency: 0, BytesPerUS: 10, FragBytes: 1024}
	c := newCluster(t, 2, withRails(func(int) []nic.Params { return []nic.Params{slow} }))

	const eagerSize = 16 << 10
	const rdvSize = 40 << 10
	eagerData := payload(eagerSize, 1)
	rdvData := payload(rdvSize, 2)
	bufEager := make([]byte, eagerSize)
	bufRdv := make([]byte, rdvSize)

	var completedFirst int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.run(0, func(th *sched.Thread) {
			s1 := c.Nodes[0].Eng.Isend(1, 1, eagerData) // bulk, slow
			s2 := c.Nodes[0].Eng.Isend(1, 2, rdvData)   // rendezvous: RTS overtakes
			c.Nodes[0].Eng.WaitSend(s1, th)
			c.Nodes[0].Eng.WaitSend(s2, th)
		})
	}()
	go func() {
		defer wg.Done()
		c.run(1, func(th *sched.Thread) {
			r1 := c.Nodes[1].Eng.Irecv(0, 1, bufEager)
			r2 := c.Nodes[1].Eng.Irecv(0, 2, bufRdv)
			idx := c.Nodes[1].Eng.WaitAny(th, r1.Req(), r2.Req())
			mu.Lock()
			completedFirst = idx
			mu.Unlock()
			c.Nodes[1].Eng.WaitRecv(r1, th)
			c.Nodes[1].Eng.WaitRecv(r2, th)
		})
	}()
	wg.Wait()
	if completedFirst != 0 {
		t.Errorf("rendezvous (posted second) completed before the earlier eager message")
	}
	if !bytes.Equal(bufEager, eagerData) || !bytes.Equal(bufRdv, rdvData) {
		t.Error("payload corrupted under reordering")
	}
}

// TestUnexpectedFlood buries the receiver under unexpected messages before
// any receive is posted, then drains them and checks exactly-once in-order
// delivery.
func TestUnexpectedFlood(t *testing.T) {
	c := newCluster(t, 2)
	const n = 200
	c.run(0, func(th *sched.Thread) {
		for i := 0; i < n; i++ {
			s := c.Nodes[0].Eng.Isend(1, 1000+i%10, []byte{byte(i), byte(i >> 8)})
			c.Nodes[0].Eng.WaitSend(s, th)
		}
	})
	// Let the flood land in the unexpected pool.
	deadline := time.Now().Add(2 * time.Second)
	for c.Nodes[1].Eng.Stats().Unexpected < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.Nodes[1].Eng.Stats().Unexpected; got < n {
		t.Fatalf("only %d/%d messages buffered", got, n)
	}
	// Drain: per tag, messages must come back in send order.
	c.run(1, func(th *sched.Thread) {
		seen := map[int]int{} // tag -> last index received
		for i := 0; i < n; i++ {
			tag := 1000 + i%10
			buf := make([]byte, 2)
			r := c.Nodes[1].Eng.Irecv(0, tag, buf)
			if !r.Completed() {
				c.Nodes[1].Eng.WaitRecv(r, th)
			}
			idx := int(buf[0]) | int(buf[1])<<8
			if last, ok := seen[tag]; ok && idx <= last {
				t.Errorf("tag %d: got index %d after %d (FIFO violated)", tag, idx, last)
				return
			}
			seen[tag] = idx
		}
	})
}

// TestDelayedPollsSequential starves the receiver (no polling at all) for
// a while, then verifies everything is recovered by a late wait — the
// "delayed polls" failure mode of the baseline engine.
func TestDelayedPollsSequential(t *testing.T) {
	c := newCluster(t, 2, withMode(Sequential))
	const n = 20
	sendDone := make(chan struct{})
	go func() {
		defer close(sendDone)
		c.run(0, func(th *sched.Thread) {
			for i := 0; i < n; i++ {
				s := c.Nodes[0].Eng.Isend(1, 4, payload(1024, byte(i)))
				c.Nodes[0].Eng.WaitSend(s, th)
			}
		})
	}()
	<-sendDone
	time.Sleep(5 * time.Millisecond) // receiver completely absent
	c.run(1, func(th *sched.Thread) {
		for i := 0; i < n; i++ {
			buf := make([]byte, 1024)
			r := c.Nodes[1].Eng.Irecv(0, 4, buf)
			c.Nodes[1].Eng.WaitRecv(r, th)
			if !bytes.Equal(buf, payload(1024, byte(i))) {
				t.Errorf("message %d corrupted after delayed polls", i)
				return
			}
		}
	})
}

// TestManyConcurrentRendezvous stresses handshake state under concurrent
// large transfers in both directions.
func TestManyConcurrentRendezvous(t *testing.T) {
	c := newCluster(t, 2, withCores(4))
	const per = 6
	const size = 48 << 10
	var wg sync.WaitGroup
	for node := 0; node < 2; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			c.run(node, func(th *sched.Thread) {
				peer := 1 - node
				var sends []*SendReq
				var recvs []*RecvReq
				bufs := make([][]byte, per)
				for i := 0; i < per; i++ {
					bufs[i] = make([]byte, size)
					recvs = append(recvs, c.Nodes[node].Eng.Irecv(peer, 3000+i, bufs[i]))
					sends = append(sends, c.Nodes[node].Eng.Isend(peer, 3000+i, payload(size, byte(node*16+i))))
				}
				for _, s := range sends {
					c.Nodes[node].Eng.WaitSend(s, th)
				}
				for i, r := range recvs {
					c.Nodes[node].Eng.WaitRecv(r, th)
					if !bytes.Equal(bufs[i], payload(size, byte((1-node)*16+i))) {
						t.Errorf("node %d transfer %d corrupted", node, i)
						return
					}
				}
			})
		}(node)
	}
	wg.Wait()
}

// TestBoundedRendezvousWindow pins the per-peer unacked replay window:
// with a cap of 4, three times that many concurrent Isends to one peer
// must all complete — the overflow parks with no RTS on the wire and
// each DATA-ack admits the next parked send — and the sender's
// RdvParked counter must show the cap actually engaged.
func TestBoundedRendezvousWindow(t *testing.T) {
	const window = 4
	const n = 3 * window
	const size = 40 << 10
	c := newCluster(t, 2, withMaxPendingRdv(window))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.run(0, func(th *sched.Thread) {
			var sends []*SendReq
			for i := 0; i < n; i++ {
				sends = append(sends, c.Nodes[0].Eng.Isend(1, 7000+i, payload(size, byte(i))))
			}
			for _, s := range sends {
				c.Nodes[0].Eng.WaitSend(s, th)
			}
		})
	}()
	bufs := make([][]byte, n)
	go func() {
		defer wg.Done()
		c.run(1, func(th *sched.Thread) {
			var recvs []*RecvReq
			for i := 0; i < n; i++ {
				bufs[i] = make([]byte, size)
				recvs = append(recvs, c.Nodes[1].Eng.Irecv(0, 7000+i, bufs[i]))
			}
			for _, r := range recvs {
				c.Nodes[1].Eng.WaitRecv(r, th)
			}
		})
	}()
	wg.Wait()
	for i := range bufs {
		if !bytes.Equal(bufs[i], payload(size, byte(i))) {
			t.Errorf("transfer %d corrupted through the bounded window", i)
		}
	}
	parked := c.Nodes[0].Eng.Stats().RdvParked
	if parked == 0 {
		t.Error("no send ever parked: the cap never engaged, the test pins nothing")
	}
	if parked > n-window {
		t.Errorf("%d sends parked, but only %d could ever exceed the window", parked, n-window)
	}
}

// TestMixedSizesInterleavedTags covers the matrix of protocol paths in one
// session: PIO, eager, aggregable bursts and rendezvous, with interleaved
// tags and both directions active.
func TestMixedSizesInterleavedTags(t *testing.T) {
	for _, strat := range []string{"fifo", "aggreg"} {
		t.Run(strat, func(t *testing.T) {
			c := newCluster(t, 2, withStrategy(strat))
			sizes := []int{16, 300, 4096, 33 << 10, 64, 50 << 10, 1 << 10}
			var wg sync.WaitGroup
			for node := 0; node < 2; node++ {
				wg.Add(1)
				go func(node int) {
					defer wg.Done()
					c.run(node, func(th *sched.Thread) {
						peer := 1 - node
						var sends []*SendReq
						var recvs []*RecvReq
						bufs := make([][]byte, len(sizes))
						for i, sz := range sizes {
							bufs[i] = make([]byte, sz)
							recvs = append(recvs, c.Nodes[node].Eng.Irecv(peer, i, bufs[i]))
						}
						for i, sz := range sizes {
							sends = append(sends, c.Nodes[node].Eng.Isend(peer, i, payload(sz, byte(i))))
						}
						for _, s := range sends {
							c.Nodes[node].Eng.WaitSend(s, th)
						}
						for i, r := range recvs {
							c.Nodes[node].Eng.WaitRecv(r, th)
							if !bytes.Equal(bufs[i], payload(sizes[i], byte(i))) {
								t.Errorf("node %d tag %d (size %d) corrupted", node, i, sizes[i])
								return
							}
						}
					})
				}(node)
			}
			wg.Wait()
		})
	}
}

// TestPropertyEagerNeverExceedsThreshold asserts that no eager submission
// ever exceeds the rail threshold regardless of message mix (the invariant
// behind protocol selection).
func TestPropertyEagerNeverExceedsThreshold(t *testing.T) {
	c := newCluster(t, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.run(1, func(th *sched.Thread) {
			for i := 0; i < 12; i++ {
				sz := 1 << (i + 4) // 16B .. 128K
				buf := make([]byte, sz)
				r := c.Nodes[1].Eng.Irecv(0, i, buf)
				c.Nodes[1].Eng.WaitRecv(r, th)
			}
		})
	}()
	c.run(0, func(th *sched.Thread) {
		for i := 0; i < 12; i++ {
			sz := 1 << (i + 4)
			s := c.Nodes[0].Eng.Isend(1, i, payload(sz, byte(i)))
			if want := sz > c.Nodes[0].Eng.defaultRail().EagerMax(); s.Rendezvous() != want {
				t.Errorf("size %d: rendezvous=%v, want %v", sz, s.Rendezvous(), want)
			}
			c.Nodes[0].Eng.WaitSend(s, th)
		}
	})
	wg.Wait()
}
