package core

import (
	"fmt"
	"time"

	"pioman/internal/telemetry"
)

// engineTelemetry holds the engine's registered metric handles. It exists
// only when Config.Metrics was set; every hot-path recording site guards
// on the one nil check of e.tel, so unmetered engines pay a predictable
// branch and nothing else.
//
// What gets a clock and what doesn't is the load-bearing decision here
// (the acceptance bar is a 64B shm message rate within 3% of unmetered):
//
//   - per-peer counters are bare atomic adds — always cheap;
//   - progress-loop dwell calls time.Now only on sampled passes
//     (1 in dwellSampleMask+1), so a spin-polling core is not serialized
//     on the clock;
//   - rendezvous handshake latency and blocking parks stamp the clock
//     unconditionally, because those events are inherently rare and
//     already cost microseconds.
type engineTelemetry struct {
	// dwell is the duration distribution of sampled progress passes —
	// the "how long does one turn of the crank take" signal behind the
	// paper's reactivity argument.
	dwell *telemetry.Histogram
	// park is the time BlockingWait actually spent parked in the rail's
	// blocking receive before a packet (or timeout) woke it.
	park *telemetry.Histogram
	// rtsToCts is the sender-observed rendezvous handshake latency: RTS
	// posted to CTS handled. It is the reactivity metric of §2.3 — a slow
	// peer progress loop shows up here before it shows up in bandwidth.
	rtsToCts *telemetry.Histogram
	// ctsToData is the time from CTS handled to the DATA transfer fully
	// posted on the sender — the submission half of a rendezvous.
	ctsToData *telemetry.Histogram
	// peerSent counts messages posted toward each peer rank; peerRecv
	// counts protocol frames handled from each. Indexed by rank, sized by
	// Config.MetricsPeers; out-of-range ranks (a world grown past the
	// registered size) are silently uncounted rather than a bounds panic.
	peerSent []telemetry.Counter
	peerRecv []telemetry.Counter
}

// dwellSampleMask samples progress-pass dwell 1 in 64: frequent enough
// that a second of polling yields thousands of samples, sparse enough
// that the two time.Now calls never show on the message-rate bench.
const dwellSampleMask = 63

// newEngineTelemetry registers the engine's counters and histograms with
// reg under "node<rank>.engine.*" and per-peer names under
// "node<rank>.peer.<rank>.*".
func newEngineTelemetry(reg *telemetry.Registry, e *Engine, peers int) *engineTelemetry {
	p := fmt.Sprintf("node%d.engine", e.node)
	reg.RegisterCounter(p+".sends_posted", "send requests posted", e.nSends.Load)
	reg.RegisterCounter(p+".recvs_posted", "receive requests posted", e.nRecvs.Load)
	reg.RegisterCounter(p+".eager_submits", "eager messages submitted", e.nEager.Load)
	reg.RegisterCounter(p+".offload_submits", "submissions executed off the posting thread", e.nOffload.Load)
	reg.RegisterCounter(p+".rdv_started", "rendezvous handshakes started", e.nRdv.Load)
	reg.RegisterCounter(p+".unexpected", "messages buffered as unexpected", e.nUnexp.Load)
	reg.RegisterCounter(p+".aggregated", "messages sent inside aggregated trains", e.nAggr.Load)
	reg.RegisterCounter(p+".progress_passes", "progress passes executed", e.nProgress.Load)
	reg.RegisterCounter(p+".rdv_replays", "unacked rendezvous RTS/data re-posted by the replay timer", e.nReplays.Load)
	reg.RegisterCounter(p+".rdv_acked", "rendezvous sends completed by a receiver data-ack", e.nAcks.Load)
	reg.RegisterCounter(p+".rail_readmits", "probation rails readmitted to the stripe set", e.nReadmits.Load)
	reg.RegisterCounter(p+".stripe_retunes", "online EWMA stripe-weight adjustments applied", e.nRetunes.Load)
	reg.RegisterCounter(p+".peer_dead", "peer ranks declared dead (deadline detection or cluster verdict)", e.nPeerDead.Load)
	reg.RegisterCounter(p+".reqs_failed", "requests completed with ErrPeerDead", e.nReqFailed.Load)
	t := &engineTelemetry{
		dwell:     reg.Histogram(p+".progress_dwell_ns", "sampled progress-pass duration (ns, 1-in-64 passes)"),
		park:      reg.Histogram(p+".park_ns", "time parked in the blocking-receive fallback (ns)"),
		rtsToCts:  reg.Histogram(p+".rdv_rts_to_cts_ns", "rendezvous RTS-posted to CTS-handled latency (ns)"),
		ctsToData: reg.Histogram(p+".rdv_cts_to_data_ns", "rendezvous CTS-handled to DATA-posted latency (ns)"),
	}
	if peers > 0 {
		t.peerSent = make([]telemetry.Counter, peers)
		t.peerRecv = make([]telemetry.Counter, peers)
		for k := 0; k < peers; k++ {
			pp := fmt.Sprintf("node%d.peer.%d", e.node, k)
			reg.RegisterCounter(pp+".sent_msgs", "messages posted toward this peer", t.peerSent[k].Load)
			reg.RegisterCounter(pp+".recv_frames", "protocol frames handled from this peer", t.peerRecv[k].Load)
		}
	}
	return t
}

// registerRails registers every rail driver under
// "node<rank>.rail.<name>.*". Two rails sharing a name (hand-rolled
// bonded configs) get an index suffix on the later one instead of the
// duplicate-name panic the registry would otherwise raise.
func (e *Engine) registerRails(reg *telemetry.Registry) {
	seen := make(map[string]bool, len(e.rails))
	for i, r := range e.rails {
		name := r.Name()
		if seen[name] {
			name = fmt.Sprintf("%s_%d", name, i)
		}
		seen[name] = true
		prefix := fmt.Sprintf("node%d.rail.%s", e.node, name)
		r.RegisterMetrics(reg, prefix)
		// The lifecycle gauge is engine-owned (the driver has no notion
		// of probation): 0 = active, 1 = probation.
		h := &e.health[i]
		reg.RegisterGauge(prefix+".health_state", "rail lifecycle state (0 active, 1 probation)", func() uint64 {
			return uint64(h.state.Load())
		})
		reg.RegisterGauge(prefix+".rtt_ns", "EWMA health-probe round-trip time (ns, 0 until measured)", func() uint64 {
			return uint64(h.rttNanos.Load())
		})
	}
}

// notePeerSent counts one message posted toward dst.
func (t *engineTelemetry) notePeerSent(dst int) {
	if t != nil && dst >= 0 && dst < len(t.peerSent) {
		t.peerSent[dst].Inc()
	}
}

// notePeerRecv counts one protocol frame handled from src.
func (t *engineTelemetry) notePeerRecv(src int) {
	if t != nil && src >= 0 && src < len(t.peerRecv) {
		t.peerRecv[src].Inc()
	}
}

// dwellStart reports whether this pass (the n-th) is dwell-sampled and,
// when it is, the stamp to subtract at the end of the pass.
func (t *engineTelemetry) dwellStart(n uint64) (time.Time, bool) {
	if t == nil || n&dwellSampleMask != 0 {
		return time.Time{}, false
	}
	return time.Now(), true
}
