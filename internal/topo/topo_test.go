package topo

import (
	"testing"
	"testing/quick"
)

func TestDualQuadXeon(t *testing.T) {
	m := DualQuadXeon()
	if m.NumCores() != 8 {
		t.Fatalf("NumCores = %d, want 8", m.NumCores())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Machine{{0, 4}, {2, 0}, {-1, 4}, {2, -2}}
	for _, m := range bad {
		if m.Validate() == nil {
			t.Errorf("Validate(%v) = nil, want error", m)
		}
	}
}

func TestSocketAssignment(t *testing.T) {
	m := DualQuadXeon()
	for c := 0; c < 4; c++ {
		if m.Socket(CoreID(c)) != 0 {
			t.Errorf("core %d on socket %d, want 0", c, m.Socket(CoreID(c)))
		}
	}
	for c := 4; c < 8; c++ {
		if m.Socket(CoreID(c)) != 1 {
			t.Errorf("core %d on socket %d, want 1", c, m.Socket(CoreID(c)))
		}
	}
}

func TestSocketOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DualQuadXeon().Socket(8)
}

func TestDistance(t *testing.T) {
	m := DualQuadXeon()
	cases := []struct {
		a, b CoreID
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 1}, {0, 4, 2}, {3, 7, 2}, {4, 5, 1},
	}
	for _, c := range cases {
		if got := m.Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSiblings(t *testing.T) {
	m := DualQuadXeon()
	sib := m.Siblings(1)
	want := []CoreID{0, 2, 3}
	if len(sib) != len(want) {
		t.Fatalf("Siblings(1) = %v, want %v", sib, want)
	}
	for i := range want {
		if sib[i] != want[i] {
			t.Fatalf("Siblings(1) = %v, want %v", sib, want)
		}
	}
}

func TestCoresEnumeration(t *testing.T) {
	m := Machine{Sockets: 3, CoresPerSocket: 2}
	cores := m.Cores()
	if len(cores) != 6 {
		t.Fatalf("len(Cores) = %d, want 6", len(cores))
	}
	for i, c := range cores {
		if int(c) != i {
			t.Fatalf("Cores()[%d] = %d", i, c)
		}
	}
}

func TestByDistanceOrder(t *testing.T) {
	m := DualQuadXeon()
	order := m.ByDistance(5)
	if len(order) != 7 {
		t.Fatalf("len = %d, want 7", len(order))
	}
	// First 3 must share socket 1, remaining 4 must be socket 0.
	for _, c := range order[:3] {
		if m.Socket(c) != 1 {
			t.Errorf("near core %d on socket %d, want 1", c, m.Socket(c))
		}
	}
	for _, c := range order[3:] {
		if m.Socket(c) != 0 {
			t.Errorf("far core %d on socket %d, want 0", c, m.Socket(c))
		}
	}
}

// Properties over arbitrary (small) machines.
func TestTopologyProperties(t *testing.T) {
	f := func(s, c uint8) bool {
		m := Machine{Sockets: int(s%4) + 1, CoresPerSocket: int(c%8) + 1}
		// Distance is symmetric and bounded.
		for _, a := range m.Cores() {
			for _, b := range m.Cores() {
				d1, d2 := m.Distance(a, b), m.Distance(b, a)
				if d1 != d2 || d1 < 0 || d1 > 2 {
					return false
				}
				if (a == b) != (d1 == 0) {
					return false
				}
			}
		}
		// ByDistance covers every other core exactly once.
		for _, a := range m.Cores() {
			seen := map[CoreID]bool{a: true}
			for _, o := range m.ByDistance(a) {
				if seen[o] {
					return false
				}
				seen[o] = true
			}
			if len(seen) != m.NumCores() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
