// Package topo models the hardware topology of a cluster node: sockets and
// cores, like the dual quad-core Xeon machines of the paper's testbed. The
// Marcel analog (internal/sched) uses the topology to enumerate cores, and
// the engine uses socket distance to prefer offloading submissions to cores
// close to the communicating thread (cache-affinity, §2.2's "cache effects"
// caveat).
package topo

import "fmt"

// CoreID identifies one core within a node, in [0, Machine.NumCores()).
type CoreID int

// Machine describes the topology of a single node.
type Machine struct {
	// Sockets is the number of CPU packages.
	Sockets int
	// CoresPerSocket is the number of cores in each package.
	CoresPerSocket int
}

// DualQuadXeon is the paper's testbed node: two quad-core 2.33 GHz Xeons.
func DualQuadXeon() Machine { return Machine{Sockets: 2, CoresPerSocket: 4} }

// Validate reports an error if the topology is degenerate.
func (m Machine) Validate() error {
	if m.Sockets <= 0 || m.CoresPerSocket <= 0 {
		return fmt.Errorf("topo: invalid machine %dx%d", m.Sockets, m.CoresPerSocket)
	}
	return nil
}

// NumCores returns the total number of cores.
func (m Machine) NumCores() int { return m.Sockets * m.CoresPerSocket }

// Socket returns the socket that owns core c.
func (m Machine) Socket(c CoreID) int {
	if !m.ValidCore(c) {
		panic(fmt.Sprintf("topo: core %d out of range on %v", c, m))
	}
	return int(c) / m.CoresPerSocket
}

// ValidCore reports whether c exists on the machine.
func (m Machine) ValidCore(c CoreID) bool {
	return c >= 0 && int(c) < m.NumCores()
}

// Distance returns a topological distance between two cores: 0 for the same
// core, 1 for cores sharing a socket, 2 across sockets. The offload
// placement policy prefers low distance to keep the submitted buffer warm
// in a shared cache.
func (m Machine) Distance(a, b CoreID) int {
	switch {
	case a == b:
		return 0
	case m.Socket(a) == m.Socket(b):
		return 1
	default:
		return 2
	}
}

// Siblings returns every core sharing a socket with c, excluding c itself.
func (m Machine) Siblings(c CoreID) []CoreID {
	s := m.Socket(c)
	out := make([]CoreID, 0, m.CoresPerSocket-1)
	for i := s * m.CoresPerSocket; i < (s+1)*m.CoresPerSocket; i++ {
		if CoreID(i) != c {
			out = append(out, CoreID(i))
		}
	}
	return out
}

// Cores enumerates every core ID.
func (m Machine) Cores() []CoreID {
	out := make([]CoreID, m.NumCores())
	for i := range out {
		out[i] = CoreID(i)
	}
	return out
}

// ByDistance returns all cores other than c sorted by increasing distance
// from c (socket-mates first). Within a distance class, IDs ascend.
func (m Machine) ByDistance(c CoreID) []CoreID {
	out := make([]CoreID, 0, m.NumCores()-1)
	out = append(out, m.Siblings(c)...)
	for _, o := range m.Cores() {
		if m.Socket(o) != m.Socket(c) {
			out = append(out, o)
		}
	}
	return out
}

// String implements fmt.Stringer.
func (m Machine) String() string {
	return fmt.Sprintf("%d sockets x %d cores", m.Sockets, m.CoresPerSocket)
}
