// Package cluster is the control plane of the N-rank runtime: a tiny TCP
// rendezvous/registry service plus the client every rank embeds. Ranks
// register their (rank, fabric, addr) tuple, block until all N arrived,
// fetch the full peer map, then heartbeat; the registry tracks per-rank
// liveness against a missed-heartbeat deadline, numbers every membership
// change with an epoch, and bans ranks that flap (repeated join/leave
// churn past a threshold). The client threads the registry's death
// verdicts down into the engine (core.Engine.MarkPeerDead), which is what
// turns a crashed peer from an eternal replay loop into requests that
// complete with core.ErrPeerDead (docs/CLUSTER.md).
//
// The wire protocol is deliberately primitive — one newline-delimited
// JSON request per connection, one JSON reply — because the registry is
// off the data path entirely: it only ever carries joins and heartbeats.
package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Protocol defaults; Config overrides them.
const (
	// DefaultHeartbeatInterval is how often each rank beats.
	DefaultHeartbeatInterval = 100 * time.Millisecond
	// DefaultMissedHeartbeats is how many intervals of silence cost a
	// rank its liveness: deadline = interval × missed.
	DefaultMissedHeartbeats = 3
	// DefaultFlapLimit is how many joins one rank may perform before the
	// registry bans it — a rank that keeps crashing and rejoining churns
	// every survivor's membership view for no benefit.
	DefaultFlapLimit = 4
	// DefaultJoinTimeout bounds how long a join waits for the world to
	// form before giving up.
	DefaultJoinTimeout = 30 * time.Second
)

// request is one client→registry message.
type request struct {
	Op     string `json:"op"` // "join", "heartbeat", "leave"
	Rank   int    `json:"rank"`
	Nranks int    `json:"nranks,omitempty"`
	Fabric string `json:"fabric,omitempty"`
	Addr   string `json:"addr,omitempty"`
}

// response is one registry→client reply.
type response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
	Peers []Peer `json:"peers,omitempty"`
	Dead  []int  `json:"dead,omitempty"`
}

// Peer is one registered rank's contact tuple, as returned by Join.
type Peer struct {
	// Rank is the peer's rank in the world.
	Rank int `json:"rank"`
	// Fabric names the transport the address belongs to (e.g. "tcp").
	Fabric string `json:"fabric"`
	// Addr is the peer's dialable endpoint address.
	Addr string `json:"addr"`
}

// Config parameterizes a Registry.
type Config struct {
	// Nranks is the world size: joins block until this many distinct
	// ranks have registered.
	Nranks int
	// Listen is the TCP address to serve on; empty means "127.0.0.1:0".
	Listen string
	// HeartbeatInterval is the expected beat cadence (zero selects
	// DefaultHeartbeatInterval); the liveness deadline derives from it.
	HeartbeatInterval time.Duration
	// MissedHeartbeats is how many silent intervals kill a rank (zero
	// selects DefaultMissedHeartbeats).
	MissedHeartbeats int
	// FlapLimit bans a rank after this many joins (zero selects
	// DefaultFlapLimit; negative disables banning).
	FlapLimit int
}

// member is one rank's registration state.
type member struct {
	peer     Peer
	lastBeat time.Time
	joins    int
}

// Registry is the rendezvous/liveness service. One per world; ranks
// reach it over TCP via Join/the Client.
type Registry struct {
	cfg Config
	ln  net.Listener

	mu      sync.Mutex
	members map[int]*member
	dead    map[int]bool
	banned  map[int]bool
	formed  chan struct{} // closed once all Nranks joined
	epoch   atomic.Uint64
	deaths  atomic.Uint64

	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewRegistry starts a registry for a world of cfg.Nranks ranks. Close
// releases the listener and the liveness sweeper.
func NewRegistry(cfg Config) (*Registry, error) {
	if cfg.Nranks <= 0 {
		return nil, fmt.Errorf("cluster: registry needs a positive world size, got %d", cfg.Nranks)
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.MissedHeartbeats <= 0 {
		cfg.MissedHeartbeats = DefaultMissedHeartbeats
	}
	if cfg.FlapLimit == 0 {
		cfg.FlapLimit = DefaultFlapLimit
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("cluster: registry listen: %w", err)
	}
	r := &Registry{
		cfg:     cfg,
		ln:      ln,
		members: make(map[int]*member),
		dead:    make(map[int]bool),
		banned:  make(map[int]bool),
		formed:  make(chan struct{}),
	}
	r.wg.Add(2)
	go r.serve()
	go r.sweep()
	return r, nil
}

// Addr returns the registry's dialable address.
func (r *Registry) Addr() string { return r.ln.Addr().String() }

// Epoch returns the current membership epoch: 0 until the world formed,
// bumped on every membership change afterwards (formation, death,
// revival, ban).
func (r *Registry) Epoch() uint64 { return r.epoch.Load() }

// Deaths returns how many rank deaths the liveness sweeper (or explicit
// leaves) declared.
func (r *Registry) Deaths() uint64 { return r.deaths.Load() }

// Snapshot returns the current epoch, the count of registered live
// ranks, and the sorted dead set — the registry-side view nmtop and the
// tests assert against.
func (r *Registry) Snapshot() (epoch uint64, alive int, dead []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for rank := range r.dead {
		dead = append(dead, rank)
	}
	sort.Ints(dead)
	return r.epoch.Load(), len(r.members) - len(dead), dead
}

// Close stops the registry: the listener closes (joins in flight fail)
// and the sweeper exits.
func (r *Registry) Close() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	r.ln.Close()
	r.wg.Wait()
}

// serve accepts one short-lived connection per request.
func (r *Registry) serve() {
	defer r.wg.Done()
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return
		}
		go r.handle(c)
	}
}

// handle decodes one request, dispatches it, writes one reply.
func (r *Registry) handle(c net.Conn) {
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	var req request
	if err := json.NewDecoder(c).Decode(&req); err != nil {
		return
	}
	var resp response
	switch req.Op {
	case "join":
		resp = r.join(req)
	case "heartbeat":
		resp = r.heartbeat(req)
	case "leave":
		resp = r.leave(req)
	default:
		resp = response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
	c.SetWriteDeadline(time.Now().Add(10 * time.Second))
	json.NewEncoder(c).Encode(resp)
}

// bumpEpoch numbers a membership change; caller holds mu (or is the
// formation path, which holds it too).
func (r *Registry) bumpEpoch() { r.epoch.Add(1) }

// join registers (or re-registers) a rank and blocks until the world has
// formed, then replies with the full peer map. A rejoin past the flap
// limit is banned: the rank stays dead and every further join is
// refused.
func (r *Registry) join(req request) response {
	if req.Rank < 0 || req.Rank >= r.cfg.Nranks {
		return response{Error: fmt.Sprintf("rank %d out of range [0,%d)", req.Rank, r.cfg.Nranks)}
	}
	if req.Nranks != 0 && req.Nranks != r.cfg.Nranks {
		return response{Error: fmt.Sprintf("world size mismatch: registry has %d, rank asked %d", r.cfg.Nranks, req.Nranks)}
	}
	r.mu.Lock()
	if r.banned[req.Rank] {
		r.mu.Unlock()
		return response{Error: fmt.Sprintf("rank %d is banned (join/leave churn exceeded %d joins)", req.Rank, r.cfg.FlapLimit)}
	}
	m := r.members[req.Rank]
	if m == nil {
		m = &member{joins: 1}
		r.members[req.Rank] = m
	} else {
		// Rejoin: a respawned (or flapping) incarnation of a known rank.
		m.joins++
		if r.cfg.FlapLimit > 0 && m.joins > r.cfg.FlapLimit {
			r.banned[req.Rank] = true
			if !r.dead[req.Rank] {
				r.dead[req.Rank] = true
				r.deaths.Add(1)
			}
			r.bumpEpoch()
			r.mu.Unlock()
			return response{Error: fmt.Sprintf("rank %d is banned (join/leave churn exceeded %d joins)", req.Rank, r.cfg.FlapLimit)}
		}
		if r.dead[req.Rank] {
			// Revival: the respawned rank rejoins the membership.
			delete(r.dead, req.Rank)
			r.bumpEpoch()
		}
	}
	m.peer = Peer{Rank: req.Rank, Fabric: req.Fabric, Addr: req.Addr}
	m.lastBeat = time.Now()
	formed := r.formed
	if len(r.members) == r.cfg.Nranks {
		select {
		case <-formed:
			// Already formed (a rejoin).
		default:
			close(formed)
			r.bumpEpoch()
		}
	}
	r.mu.Unlock()

	select {
	case <-formed:
	case <-time.After(DefaultJoinTimeout):
		return response{Error: fmt.Sprintf("world did not form within %v", DefaultJoinTimeout)}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	peers := make([]Peer, 0, len(r.members))
	for _, mm := range r.members {
		peers = append(peers, mm.peer)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].Rank < peers[j].Rank })
	return response{OK: true, Epoch: r.epoch.Load(), Peers: peers}
}

// heartbeat refreshes a rank's liveness and replies with the epoch and
// the current dead set — the piggybacked failure notification every
// client diffs against its last view.
func (r *Registry) heartbeat(req request) response {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.members[req.Rank]
	if m == nil {
		return response{Error: fmt.Sprintf("rank %d never joined", req.Rank)}
	}
	if !r.dead[req.Rank] {
		m.lastBeat = time.Now()
	}
	dead := make([]int, 0, len(r.dead))
	for rank := range r.dead {
		dead = append(dead, rank)
	}
	sort.Ints(dead)
	return response{OK: true, Epoch: r.epoch.Load(), Dead: dead}
}

// leave is the graceful exit: the rank is marked dead immediately (no
// deadline wait) so survivors learn on their next beat.
func (r *Registry) leave(req request) response {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[req.Rank] == nil {
		return response{Error: fmt.Sprintf("rank %d never joined", req.Rank)}
	}
	if !r.dead[req.Rank] {
		r.dead[req.Rank] = true
		r.deaths.Add(1)
		r.bumpEpoch()
	}
	return response{OK: true}
}

// sweep is the liveness detector: a rank whose last beat is older than
// interval×missed is declared dead and the epoch advances. It only
// judges ranks after the world formed — before that, joins are still
// trickling in and nobody owes heartbeats yet.
func (r *Registry) sweep() {
	defer r.wg.Done()
	deadline := r.cfg.HeartbeatInterval * time.Duration(r.cfg.MissedHeartbeats)
	tick := time.NewTicker(r.cfg.HeartbeatInterval / 2)
	defer tick.Stop()
	for !r.closed.Load() {
		<-tick.C
		select {
		case <-r.formed:
		default:
			continue
		}
		now := time.Now()
		r.mu.Lock()
		for rank, m := range r.members {
			if r.dead[rank] || now.Sub(m.lastBeat) <= deadline {
				continue
			}
			r.dead[rank] = true
			r.deaths.Add(1)
			r.bumpEpoch()
		}
		r.mu.Unlock()
	}
}
