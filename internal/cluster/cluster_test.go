package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// TestJoinFormsWorld has three ranks join concurrently and checks every
// one gets the same sorted three-entry peer map at a nonzero epoch.
func TestJoinFormsWorld(t *testing.T) {
	reg, err := NewRegistry(Config{Nranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	var wg sync.WaitGroup
	results := make([][]Peer, 3)
	clients := make([]*Client, 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, peers, epoch, err := Join(reg.Addr(), r, 3, "tcp", fmt.Sprintf("127.0.0.1:%d", 9000+r), 5*time.Second)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			if epoch == 0 {
				t.Errorf("rank %d: formed world reported epoch 0", r)
			}
			clients[r], results[r] = c, peers
		}(r)
	}
	wg.Wait()
	for r := 0; r < 3; r++ {
		if clients[r] != nil {
			defer clients[r].Close()
		}
		peers := results[r]
		if len(peers) != 3 {
			t.Fatalf("rank %d got %d peers, want 3", r, len(peers))
		}
		for i, p := range peers {
			want := fmt.Sprintf("127.0.0.1:%d", 9000+i)
			if p.Rank != i || p.Fabric != "tcp" || p.Addr != want {
				t.Fatalf("rank %d peer[%d] = %+v, want rank %d tcp %s", r, i, p, i, want)
			}
		}
	}
}

// TestLivenessDetectsSilentRank forms a two-rank world, heartbeats only
// rank 0, and checks the sweeper declares rank 1 dead — and that rank
// 0's client surfaces the death through its onDeath callback.
func TestLivenessDetectsSilentRank(t *testing.T) {
	reg, err := NewRegistry(Config{
		Nranks:            2,
		HeartbeatInterval: 20 * time.Millisecond,
		MissedHeartbeats:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	var wg sync.WaitGroup
	clients := make([]*Client, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, _, _, err := Join(reg.Addr(), r, 2, "tcp", "x", 5*time.Second)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			clients[r] = c
		}(r)
	}
	wg.Wait()
	if clients[0] == nil || clients[1] == nil {
		t.Fatal("join failed")
	}

	var deadMu sync.Mutex
	var deaths []int
	clients[0].Start(20*time.Millisecond, func(rank int) {
		deadMu.Lock()
		deaths = append(deaths, rank)
		deadMu.Unlock()
	}, nil)
	defer clients[0].Close()
	// Rank 1 never starts heartbeating: after 3 missed intervals the
	// sweeper must declare it dead.
	defer clients[1].Close()

	waitFor(t, 2*time.Second, "rank 1 declared dead", func() bool {
		_, _, dead := reg.Snapshot()
		return len(dead) == 1 && dead[0] == 1
	})
	waitFor(t, 2*time.Second, "rank 0 observing the death", func() bool {
		deadMu.Lock()
		defer deadMu.Unlock()
		return len(deaths) == 1 && deaths[0] == 1
	})
	if reg.Deaths() != 1 {
		t.Fatalf("registry counted %d deaths, want 1", reg.Deaths())
	}
}

// TestLeaveAndRejoinRevives checks a graceful leave marks the rank dead
// immediately, a rejoin revives it (epoch advances both times), and the
// surviving client sees death then revival.
func TestLeaveAndRejoinRevives(t *testing.T) {
	reg, err := NewRegistry(Config{
		Nranks:            2,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	var wg sync.WaitGroup
	clients := make([]*Client, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, _, _, err := Join(reg.Addr(), r, 2, "tcp", "x", 5*time.Second)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
			clients[r] = c
		}(r)
	}
	wg.Wait()
	if clients[0] == nil || clients[1] == nil {
		t.Fatal("join failed")
	}

	var mu sync.Mutex
	var died, revived []int
	clients[0].Start(20*time.Millisecond, func(rank int) {
		mu.Lock()
		died = append(died, rank)
		mu.Unlock()
	}, func(rank int) {
		mu.Lock()
		revived = append(revived, rank)
		mu.Unlock()
	})
	defer clients[0].Close()

	epochBefore := reg.Epoch()
	clients[1].Close() // graceful leave
	waitFor(t, 2*time.Second, "rank 0 observing the leave", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(died) == 1 && died[0] == 1
	})
	if reg.Epoch() <= epochBefore {
		t.Fatalf("leave did not advance the epoch (%d -> %d)", epochBefore, reg.Epoch())
	}

	// Respawned incarnation rejoins; world is already formed so the join
	// returns immediately with the peer map, and rank 0 sees the revival.
	c2, peers, _, err := Join(reg.Addr(), 1, 2, "tcp", "y", 5*time.Second)
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	defer c2.Close()
	if len(peers) != 2 || peers[1].Addr != "y" {
		t.Fatalf("rejoin peer map %+v, want rank 1 at addr y", peers)
	}
	waitFor(t, 2*time.Second, "rank 0 observing the revival", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(revived) == 1 && revived[0] == 1
	})
}

// TestFlapBan checks a rank that joins and leaves past the flap limit is
// banned: the join is refused and the rank stays dead.
func TestFlapBan(t *testing.T) {
	reg, err := NewRegistry(Config{
		Nranks:            2,
		HeartbeatInterval: 20 * time.Millisecond,
		FlapLimit:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	var wg sync.WaitGroup
	clients := make([]*Client, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, _, _, err := Join(reg.Addr(), r, 2, "tcp", "x", 5*time.Second)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
			clients[r] = c
		}(r)
	}
	wg.Wait()
	if clients[0] == nil || clients[1] == nil {
		t.Fatal("join failed")
	}
	defer clients[0].Close()
	clients[1].Close()

	// Two more churn cycles exhaust the limit of 3 joins; the fourth
	// join must be refused.
	for i := 0; i < 2; i++ {
		c, _, _, err := Join(reg.Addr(), 1, 2, "tcp", "x", 5*time.Second)
		if err != nil {
			t.Fatalf("churn join %d: %v", i, err)
		}
		c.Close()
	}
	if _, _, _, err := Join(reg.Addr(), 1, 2, "tcp", "x", 5*time.Second); err == nil {
		t.Fatal("join past the flap limit succeeded, want ban")
	}
	_, _, dead := reg.Snapshot()
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("banned rank not in dead set: %v", dead)
	}
}

// TestRegistryLossDeclaresHostRank checks that when the registry itself
// disappears, a client configured with a host rank declares that rank
// dead after the loss tolerance.
func TestRegistryLossDeclaresHostRank(t *testing.T) {
	reg, err := NewRegistry(Config{
		Nranks:            2,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	clients := make([]*Client, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, _, _, err := Join(reg.Addr(), r, 2, "tcp", "x", 5*time.Second)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
			clients[r] = c
		}(r)
	}
	wg.Wait()
	if clients[0] == nil || clients[1] == nil {
		t.Fatal("join failed")
	}
	defer clients[0].Close()

	var mu sync.Mutex
	var died []int
	clients[1].SetHostRank(0)
	clients[1].Start(10*time.Millisecond, func(rank int) {
		mu.Lock()
		died = append(died, rank)
		mu.Unlock()
	}, nil)
	defer clients[1].Close()

	reg.Close() // the registry host (rank 0's process) crashes

	waitFor(t, 3*time.Second, "host rank declared dead on registry loss", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(died) == 1 && died[0] == 0
	})
}
