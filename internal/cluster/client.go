package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// registryLossTolerance is how many consecutive failed heartbeat
// exchanges a client tolerates before concluding the registry host
// itself died. The registry usually rides inside rank 0's process
// (nmrun's embedded mode), so losing it is indistinguishable from —
// and treated as — that rank's death.
const registryLossTolerance = 5

// Client is one rank's connection to the registry: it joins, then
// heartbeats in the background, diffing the registry's dead set and
// invoking the owner's callbacks on changes.
type Client struct {
	registry string
	rank     int
	peers    []Peer

	epoch atomic.Uint64

	mu       sync.Mutex
	lastDead map[int]bool

	hostRank int // rank co-located with the registry; <0 means standalone

	stop    chan struct{}
	stopped sync.WaitGroup
	once    sync.Once
	started atomic.Bool
}

// Join registers (rank, fabricName, selfAddr) with the registry at
// registryAddr and blocks until all nranks ranks have arrived (or
// timeout elapses; zero selects DefaultJoinTimeout). It returns the
// client, the full sorted peer map, and the membership epoch the world
// formed at.
func Join(registryAddr string, rank, nranks int, fabricName, selfAddr string, timeout time.Duration) (*Client, []Peer, uint64, error) {
	if timeout <= 0 {
		timeout = DefaultJoinTimeout
	}
	// The registry may not be up yet — under nmrun it lives inside rank
	// 0's process, which races every other rank's launch — so a refused
	// dial retries until the join timeout. Only the dial retries: once a
	// connection carried the request, the registry has counted the join,
	// and replaying it would read as flap churn.
	req := request{Op: "join", Rank: rank, Nranks: nranks, Fabric: fabricName, Addr: selfAddr}
	dialDeadline := time.Now().Add(timeout)
	var conn net.Conn
	for {
		c, err := net.DialTimeout("tcp", registryAddr, time.Second)
		if err == nil {
			conn = c
			break
		}
		if time.Now().After(dialDeadline) {
			return nil, nil, 0, fmt.Errorf("cluster: rank %d join: %w", rank, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The exchange deadline outlives the registry's own formation wait by
	// a grace margin; a tie means the registry's "did not form" verdict
	// arrives just as the client gives up, losing the diagnosis.
	resp, err := exchange(conn, req, timeout+5*time.Second)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("cluster: rank %d join: %w", rank, err)
	}
	if !resp.OK {
		return nil, nil, 0, fmt.Errorf("cluster: rank %d join refused: %s", rank, resp.Error)
	}
	c := &Client{
		registry: registryAddr,
		rank:     rank,
		peers:    resp.Peers,
		lastDead: make(map[int]bool),
		hostRank: -1,
		stop:     make(chan struct{}),
	}
	c.epoch.Store(resp.Epoch)
	return c, resp.Peers, resp.Epoch, nil
}

// Epoch returns the latest membership epoch the client has observed.
func (c *Client) Epoch() uint64 { return c.epoch.Load() }

// Peers returns the peer map captured at world formation.
func (c *Client) Peers() []Peer { return c.peers }

// SetHostRank names the rank whose process hosts the registry. When the
// registry stops answering heartbeats for registryLossTolerance rounds,
// that rank is reported dead through onDeath — an embedded registry dies
// exactly when its host rank does. Pass a negative rank for a standalone
// registry (loss is then logged as unreachable, nobody is declared dead).
func (c *Client) SetHostRank(rank int) { c.hostRank = rank }

// Start launches the background heartbeat loop. onDeath(rank) fires once
// per rank newly present in the registry's dead set; onAlive(rank) fires
// when a previously-dead rank rejoined (respawn). Either callback may be
// nil. Callbacks run on the heartbeat goroutine — keep them short (the
// engine's MarkPeerDead/MarkPeerAlive are fine).
func (c *Client) Start(interval time.Duration, onDeath, onAlive func(rank int)) {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	if interval <= 0 {
		interval = DefaultHeartbeatInterval
	}
	c.stopped.Add(1)
	go c.beat(interval, onDeath, onAlive)
}

// beat is the heartbeat loop: one RPC per interval, diff the dead set,
// fire callbacks, and escalate registry loss to host-rank death.
func (c *Client) beat(interval time.Duration, onDeath, onAlive func(rank int)) {
	defer c.stopped.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	misses := 0
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		resp, err := rpc(c.registry, request{Op: "heartbeat", Rank: c.rank}, interval*2)
		if err != nil || !resp.OK {
			misses++
			if misses == registryLossTolerance && c.hostRank >= 0 && c.hostRank != c.rank && onDeath != nil {
				// The registry rode inside hostRank's process; its silence
				// is that rank's death as far as this rank can observe.
				c.noteDead(c.hostRank, onDeath)
			}
			continue
		}
		misses = 0
		c.epoch.Store(resp.Epoch)
		c.diff(resp.Dead, onDeath, onAlive)
	}
}

// diff reconciles the registry's dead set against the last view,
// invoking callbacks only on transitions.
func (c *Client) diff(dead []int, onDeath, onAlive func(rank int)) {
	c.mu.Lock()
	now := make(map[int]bool, len(dead))
	var died, revived []int
	for _, rank := range dead {
		now[rank] = true
		if !c.lastDead[rank] {
			died = append(died, rank)
		}
	}
	for rank := range c.lastDead {
		if !now[rank] {
			revived = append(revived, rank)
		}
	}
	c.lastDead = now
	c.mu.Unlock()
	sort.Ints(died)
	sort.Ints(revived)
	for _, rank := range died {
		if rank != c.rank && onDeath != nil {
			onDeath(rank)
		}
	}
	for _, rank := range revived {
		if rank != c.rank && onAlive != nil {
			onAlive(rank)
		}
	}
}

// noteDead records rank into the dead view (so a later registry
// recovery does not re-fire) and invokes the callback once.
func (c *Client) noteDead(rank int, onDeath func(rank int)) {
	c.mu.Lock()
	already := c.lastDead[rank]
	c.lastDead[rank] = true
	c.mu.Unlock()
	if !already {
		onDeath(rank)
	}
}

// Close stops the heartbeat loop and sends a best-effort leave so
// survivors learn of this rank's exit on their next beat rather than
// after the liveness deadline.
func (c *Client) Close() {
	c.once.Do(func() {
		close(c.stop)
		c.stopped.Wait()
		rpc(c.registry, request{Op: "leave", Rank: c.rank}, 2*time.Second)
	})
}

// rpc performs one request/response exchange on a fresh connection.
func rpc(addr string, req request, timeout time.Duration) (response, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return response{}, err
	}
	return exchange(c, req, timeout)
}

// exchange sends req and reads the reply on c, closing it either way.
func exchange(c net.Conn, req request, timeout time.Duration) (response, error) {
	defer c.Close()
	var resp response
	c.SetDeadline(time.Now().Add(timeout))
	if err := json.NewEncoder(c).Encode(req); err != nil {
		return resp, err
	}
	if err := json.NewDecoder(c).Decode(&resp); err != nil {
		return resp, err
	}
	return resp, nil
}
