package fabric_test

import (
	"fmt"
	"testing"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/fabric/shmfab"
	"pioman/internal/fabric/simfab"
	"pioman/internal/fabric/tcpfab"
	"pioman/internal/fabric/udpfab"
	"pioman/internal/wire"
)

// Raw-endpoint round-trip latency — simulated wire, real localhost TCP,
// real shared-memory rings, real loopback UDP — at the paper's three
// regimes: latency-bound (64 B), eager (4 KiB) and rendezvous-class
// (64 KiB) messages. This is the number BENCH_*.json tracks so the real
// transports' progress is measurable PR over PR — and where the shm rail's
// win over loopback TCP for co-located ranks shows up.

var benchSizes = []int{64, 4 << 10, 64 << 10}

// benchSizesUDP caps at 32 KiB: udpfab's one-datagram frame ceiling
// (~64 KiB minus headers) refuses the 64 KiB cell.
var benchSizesUDP = []int{64, 4 << 10, 32 << 10}

// echoPeer bounces every packet on ep back to its source.
func echoPeer(ep fabric.Endpoint, quit <-chan struct{}) {
	for {
		select {
		case <-quit:
			return
		default:
		}
		p := ep.BlockingRecv(50 * time.Millisecond)
		if p == nil {
			continue
		}
		ep.Send(&wire.Packet{
			Kind: wire.PktEager, Src: ep.Self(), Dst: p.Src,
			Seq: p.Seq, Payload: p.Payload,
		})
	}
}

// benchRTT measures ping-pong round trips between endpoints 0 and 1.
func benchRTT(b *testing.B, f fabric.Fabric, size int) {
	ep0, err := f.Endpoint(0)
	if err != nil {
		b.Fatal(err)
	}
	ep1, err := f.Endpoint(1)
	if err != nil {
		b.Fatal(err)
	}
	quit := make(chan struct{})
	go echoPeer(ep1, quit)
	defer close(quit)
	payload := make([]byte, size)
	b.SetBytes(int64(2 * size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ep0.Send(&wire.Packet{
			Kind: wire.PktEager, Src: 0, Dst: 1, Seq: uint64(i), Payload: payload,
		}); err != nil {
			b.Fatal(err)
		}
		// Block rather than spin-poll: on a single-CPU host a busy
		// loop starves the echo goroutine until the 10ms preemption
		// tick and the bench measures the Go scheduler instead.
		for ep0.BlockingRecv(time.Second) == nil {
		}
	}
	// The deferred fabric Close runs before the harness stops the clock;
	// keep its bounded drain out of the measurement.
	b.StopTimer()
}

func BenchmarkRTTSimfab(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			f := simfab.New(wire.NewFabric(2, wire.MYRI10G()))
			defer f.Close()
			benchRTT(b, f, size)
		})
	}
}

func BenchmarkRTTTcpfab(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			f, err := tcpfab.NewLocal(2)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			benchRTT(b, f, size)
		})
	}
}

func BenchmarkRTTShmfab(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			f, err := shmfab.NewLocal(2, b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			benchRTT(b, f, size)
		})
	}
}

func BenchmarkRTTUdpfab(b *testing.B) {
	for _, size := range benchSizesUDP {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			f, err := udpfab.NewLocal(2)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			benchRTT(b, f, size)
		})
	}
}
