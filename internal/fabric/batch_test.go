package fabric_test

import (
	"testing"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/wire"
)

// pollOnlyEndpoint is the minimal Poll-only backend shape: a queue
// behind Poll, with PollBatch delegating to the default adapter — the
// exact wiring fabric.BatchFromPoll documents for backends without a
// native batched inbox.
type pollOnlyEndpoint struct {
	queue []*wire.Packet
}

func (e *pollOnlyEndpoint) Self() int  { return 1 }
func (e *pollOnlyEndpoint) Nodes() int { return 2 }
func (e *pollOnlyEndpoint) Send(p *wire.Packet) error {
	e.queue = append(e.queue, p)
	return nil
}
func (e *pollOnlyEndpoint) Poll() *wire.Packet {
	if len(e.queue) == 0 {
		return nil
	}
	p := e.queue[0]
	e.queue = e.queue[1:]
	return p
}
func (e *pollOnlyEndpoint) PollBatch(into []*wire.Packet) int {
	return fabric.BatchFromPoll(e, into)
}
func (e *pollOnlyEndpoint) BlockingRecv(time.Duration) *wire.Packet { return e.Poll() }
func (e *pollOnlyEndpoint) Pending() bool                           { return len(e.queue) > 0 }
func (e *pollOnlyEndpoint) Backlog(int) time.Duration               { return 0 }
func (e *pollOnlyEndpoint) NextSeq() uint64                         { return 0 }
func (e *pollOnlyEndpoint) Close() error                            { return nil }

// TestBatchFromPoll pins the default PollBatch adapter: it must drain
// exactly what a loop of Poll would, in the same order, stopping at
// the buffer's capacity or the first empty Poll, and leave entries
// past the returned count untouched.
func TestBatchFromPoll(t *testing.T) {
	ep := &pollOnlyEndpoint{}
	var _ fabric.Endpoint = ep // the delegation satisfies the full contract
	for i := 1; i <= 5; i++ {
		ep.Send(&wire.Packet{Kind: wire.PktEager, Src: 0, Dst: 1, Seq: uint64(i)})
	}
	sentinel := &wire.Packet{Seq: 999}
	into := []*wire.Packet{nil, nil, nil, sentinel}
	if n := ep.PollBatch(into[:3]); n != 3 {
		t.Fatalf("PollBatch(cap 3) = %d, want 3", n)
	}
	for i, want := range []uint64{1, 2, 3} {
		if into[i].Seq != want {
			t.Errorf("batch[%d].Seq = %d, want %d (order must match a Poll loop)", i, into[i].Seq, want)
		}
	}
	if into[3] != sentinel {
		t.Error("adapter wrote past the provided buffer")
	}
	if n := ep.PollBatch(into); n != 2 {
		t.Fatalf("PollBatch on the 2-packet remainder = %d, want 2", n)
	}
	if into[0].Seq != 4 || into[1].Seq != 5 {
		t.Errorf("remainder out of order: %d, %d", into[0].Seq, into[1].Seq)
	}
	if n := ep.PollBatch(into); n != 0 {
		t.Errorf("PollBatch on an empty endpoint = %d, want 0", n)
	}
	if n := ep.PollBatch(nil); n != 0 {
		t.Errorf("PollBatch into an empty buffer = %d, want 0", n)
	}
}
