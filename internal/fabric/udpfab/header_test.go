package udpfab

import (
	"bytes"
	"net/netip"
	"testing"

	"pioman/internal/fabric"
	"pioman/internal/telemetry"
	"pioman/internal/wire"
)

// mkData builds one sealed data datagram the filter must accept.
func mkData(t testing.TB, src int, session, seq, base uint64, payload []byte) []byte {
	t.Helper()
	p := &wire.Packet{
		Kind: wire.PktEager, Src: src, Dst: 0, Seq: seq,
		WireLen: len(payload), Payload: payload,
	}
	buf := make([]byte, dgHeaderBytes, dgHeaderBytes+fabric.EncodedSize(p))
	buf = fabric.AppendPacket(buf, p)
	h := dgHeader{dtype: dgData, src: src, session: session, seq: seq, base: base,
		flen: len(buf) - dgHeaderBytes}
	putHeader(buf, &h)
	sealDatagram(buf)
	return buf
}

// mkAck builds one sealed pure-ack datagram.
func mkAck(t testing.TB, src int, session, ackSession, cum, sack uint64) []byte {
	t.Helper()
	b := make([]byte, dgHeaderBytes)
	h := dgHeader{dtype: dgAck, src: src, session: session,
		ackSession: ackSession, cumAck: cum, sack: sack}
	putHeader(b, &h)
	sealDatagram(b)
	return b
}

func TestHeaderRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xA5}, 100)
	b := mkData(t, 3, 0xDEADBEEF, 42, 40, payload)
	var h dgHeader
	if !parseDatagram(b, 0, 4, &h) {
		t.Fatal("valid data datagram rejected")
	}
	if h.dtype != dgData || h.src != 3 || h.session != 0xDEADBEEF ||
		h.seq != 42 || h.base != 40 || h.flen != len(b)-dgHeaderBytes {
		t.Fatalf("header fields mutated in round trip: %+v", h)
	}
	a := mkAck(t, 2, 7, 0xFEED, 9, 0b1011)
	if !parseDatagram(a, 0, 4, &h) {
		t.Fatal("valid ack datagram rejected")
	}
	if h.dtype != dgAck || h.src != 2 || h.ackSession != 0xFEED ||
		h.cumAck != 9 || h.sack != 0b1011 || h.flen != 0 {
		t.Fatalf("ack fields mutated in round trip: %+v", h)
	}
}

// flipBit returns a copy of b with one bit flipped and the checksum
// left stale — the transit-corruption shape.
func flipBit(b []byte, i int) []byte {
	cp := append([]byte(nil), b...)
	cp[i/8] ^= 1 << (i % 8)
	return cp
}

// reseal returns b with one mutation applied and the checksum restamped,
// so the case under test fails its targeted validation rather than the
// checksum.
func reseal(b []byte, mutate func([]byte)) []byte {
	cp := append([]byte(nil), b...)
	mutate(cp)
	sealDatagram(cp)
	return cp
}

// TestPacketFilterRejects pins the packet filter: every malformed shape
// a socket can hand us — truncated, corrupt, wrong version, oversize,
// alien — is rejected before any allocation, never parsed and never
// panicking.
func TestPacketFilterRejects(t *testing.T) {
	valid := mkData(t, 1, 99, 5, 5, bytes.Repeat([]byte{3}, 64))
	oversize := make([]byte, maxDatagramBytes+1)
	copy(oversize, valid)
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"below header size", valid[:dgHeaderBytes-1]},
		{"truncated mid frame", valid[:len(valid)-3]},
		{"oversize", oversize},
		{"alien magic", reseal(valid, func(b []byte) { b[0] ^= 0xFF })},
		{"wrong version", reseal(valid, func(b []byte) { b[4] = dgVersion + 1 })},
		{"unknown type", reseal(valid, func(b []byte) { b[5] = 3 })},
		{"src is self", reseal(valid, func(b []byte) { b[6], b[7] = 0, 0 })},
		{"src outside cluster", reseal(valid, func(b []byte) { b[6], b[7] = 9, 0 })},
		{"ack carrying frame bytes", reseal(valid, func(b []byte) { b[5] = dgAck })},
		{"frame length lies", reseal(valid, func(b []byte) { b[56]++ })},
		{"corrupt payload bit", flipBit(valid, (dgHeaderBytes+10)*8+3)},
		{"corrupt header bit", flipBit(valid, 20*8+4)}, // seq field, checksum stale
		{"header-only data", reseal(mkAck(t, 1, 99, 0, 0, 0), func(b []byte) { b[5] = dgData })},
	}
	var h dgHeader
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if parseDatagram(tc.b, 0, 2, &h) {
				t.Fatalf("filter accepted a %s datagram", tc.name)
			}
		})
	}
	if !parseDatagram(valid, 0, 2, &h) {
		t.Fatal("control: the unmutated datagram must pass")
	}
}

// TestPacketFilterZeroAlloc pins the filter's cost model: validating a
// datagram — accepted or rejected — allocates nothing.
func TestPacketFilterZeroAlloc(t *testing.T) {
	valid := mkData(t, 1, 99, 5, 5, bytes.Repeat([]byte{3}, 512))
	corrupt := append([]byte(nil), valid...)
	corrupt[dgHeaderBytes+7] ^= 1
	truncated := valid[:dgHeaderBytes+9]
	var h dgHeader
	allocs := testing.AllocsPerRun(1000, func() {
		if !parseDatagram(valid, 0, 2, &h) {
			t.Fatal("valid datagram rejected")
		}
		if parseDatagram(corrupt, 0, 2, &h) || parseDatagram(truncated, 0, 2, &h) {
			t.Fatal("malformed datagram accepted")
		}
	})
	if allocs != 0 {
		t.Fatalf("packet filter allocates %.1f times per datagram, want 0", allocs)
	}
}

// TestRejectedDatagramsCounted drives malformed datagrams through the
// endpoint's full receive path and asserts each one costs exactly a
// rejected_datagrams tick: no delivery, no panic, no state change.
func TestRejectedDatagramsCounted(t *testing.T) {
	e, err := New(Config{Self: 0, Nodes: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	reg := telemetry.NewRegistry()
	e.RegisterMetrics(reg, "node0.rail.udp")
	valid := mkData(t, 1, 99, 1, 1, bytes.Repeat([]byte{7}, 32))
	from := netip.MustParseAddrPort("127.0.0.1:9")

	bad := [][]byte{
		valid[:40],
		reseal(valid, func(b []byte) { b[4] = dgVersion + 1 }),
		func() []byte {
			cp := append([]byte(nil), valid...)
			cp[dgHeaderBytes+3] ^= 0x40 // corrupt checksum
			return cp
		}(),
		// Valid preamble sealed over a garbage codec frame: the filter
		// passes, the decoder must still reject without delivering.
		func() []byte {
			cp := make([]byte, dgHeaderBytes+fabric.HeaderScratchBytes)
			h := dgHeader{dtype: dgData, src: 1, session: 99, seq: 2, base: 1,
				flen: fabric.HeaderScratchBytes}
			putHeader(cp, &h)
			sealDatagram(cp)
			return cp
		}(),
	}
	for i, b := range bad {
		e.handleDatagram(b, from)
		if got := reg.Snapshot().Value("node0.rail.udp.rejected_datagrams"); got != uint64(i+1) {
			t.Fatalf("bad datagram %d: rejected_datagrams = %d, want %d", i, got, i+1)
		}
	}
	if p := e.Poll(); p != nil {
		t.Fatalf("a rejected datagram was delivered: %+v", p)
	}
	// The endpoint is still healthy: the valid datagram delivers.
	e.handleDatagram(valid, from)
	if p := e.Poll(); p == nil || len(p.Payload) != 32 || p.Src != 1 {
		t.Fatalf("valid datagram after rejections: %+v", p)
	}
	if got := reg.Snapshot().Value("node0.rail.udp.rejected_datagrams"); got != uint64(len(bad)) {
		t.Fatalf("valid delivery moved the reject counter to %d", got)
	}
}

// FuzzParseDatagram hammers the packet filter with arbitrary bytes: it
// must never panic, and anything it accepts must satisfy the wire
// format's own invariants.
func FuzzParseDatagram(f *testing.F) {
	f.Add([]byte(nil))
	valid := mkData(f, 1, 99, 5, 5, bytes.Repeat([]byte{3}, 64))
	f.Add(valid)
	f.Add(valid[:dgHeaderBytes])
	f.Add(valid[:len(valid)-1])
	f.Add(mkAck(f, 1, 99, 42, 7, 0xF0F0))
	f.Add(reseal(valid, func(b []byte) { b[5] = dgAck }))
	f.Add(bytes.Repeat([]byte{0x55}, 200))
	f.Fuzz(func(t *testing.T, b []byte) {
		var h dgHeader
		if !parseDatagram(b, 0, 4, &h) {
			return
		}
		if h.dtype != dgData && h.dtype != dgAck {
			t.Fatalf("filter accepted unknown type %d", h.dtype)
		}
		if h.src == 0 || h.src >= 4 {
			t.Fatalf("filter accepted src %d for self=0 nodes=4", h.src)
		}
		if h.flen != len(b)-dgHeaderBytes {
			t.Fatalf("filter accepted inconsistent flen %d for %d-byte datagram", h.flen, len(b))
		}
		if h.dtype == dgAck && h.flen != 0 {
			t.Fatal("filter accepted an ack with frame bytes")
		}
		if dgChecksum(b) != uint32(leU32(b[60:])) {
			t.Fatal("filter accepted a datagram whose checksum does not verify")
		}
	})
}

// leU32 is a tiny local decode so the fuzz invariant check does not
// depend on the code under test.
func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
