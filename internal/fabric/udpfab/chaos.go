package udpfab

import (
	"math/rand"
	"net/netip"
	"sync"
	"time"
)

// ChaosParams injects disorder into an endpoint's transmit path, at the
// datagram level — beneath the reliability sublayer, which must absorb
// every injected failure before the fabric contract is visible above:
// drops and corruptions are recovered by the retransmit timer,
// duplicates by the receive-side dedup filter, reordering and latency
// by delivery-on-arrival plus the consumers' own sequence reordering.
// This is the knob the chaos soak suite and the WAN-profile pingpong
// benches turn. All randomness is drawn from one explicit seeded source
// per endpoint, so a failing run is replayable from its logged seed.
//
// Contrast conformance.Chaos, which wraps any fabric at the frame level
// and therefore must respect the wrapped backend's delivery contract;
// this one may be as hostile as a real network because udpfab was built
// to survive it.
type ChaosParams struct {
	// Seed drives the endpoint's random source (deterministic given the
	// same transmit schedule).
	Seed int64
	// Drop is the probability a datagram is silently discarded.
	Drop float64
	// Duplicate is the probability a datagram is transmitted twice.
	Duplicate float64
	// Reorder is the probability a datagram is held back by
	// ReorderDelay, letting later datagrams overtake it.
	Reorder float64
	// Corrupt is the probability one bit of the datagram is flipped in
	// transit (the receiver's checksum turns this into a drop).
	Corrupt float64
	// Delay is added latency applied to every datagram.
	Delay time.Duration
	// ReorderDelay is the extra hold applied to reordered datagrams
	// (default 2ms).
	ReorderDelay time.Duration
}

// chaosState applies one endpoint's ChaosParams under a mutex-guarded
// seeded source.
type chaosState struct {
	mu  sync.Mutex
	rng *rand.Rand
	p   ChaosParams
}

func newChaosState(p ChaosParams) *chaosState {
	return &chaosState{rng: rand.New(rand.NewSource(p.Seed)), p: p}
}

// transmit applies the configured disorder to one sealed datagram and
// forwards what survives to the socket. Deferred and duplicated
// transmissions copy the datagram: the caller's buffer is pooled and
// will be patched (retransmissions) or recycled (acks) after return.
func (c *chaosState) transmit(e *Endpoint, b []byte, addr netip.AddrPort) {
	c.mu.Lock()
	drop := c.p.Drop > 0 && c.rng.Float64() < c.p.Drop
	dup := c.p.Duplicate > 0 && c.rng.Float64() < c.p.Duplicate
	corrupt := c.p.Corrupt > 0 && c.rng.Float64() < c.p.Corrupt
	reorder := c.p.Reorder > 0 && c.rng.Float64() < c.p.Reorder
	var flip int
	if corrupt {
		flip = c.rng.Intn(len(b) * 8)
	}
	c.mu.Unlock()
	if drop {
		return
	}
	delay := c.p.Delay
	if reorder {
		rd := c.p.ReorderDelay
		if rd <= 0 {
			rd = 2 * time.Millisecond
		}
		delay += rd
	}
	if delay <= 0 && !corrupt && !dup {
		e.conn.WriteToUDPAddrPort(b, addr)
		return
	}
	emit := func(mutate bool) {
		cp := make([]byte, len(b))
		copy(cp, b)
		if mutate {
			cp[flip/8] ^= 1 << (flip % 8)
		}
		if delay <= 0 {
			e.conn.WriteToUDPAddrPort(cp, addr)
			return
		}
		// A write after Close fails harmlessly: the datagram is "lost in
		// transit", which is the one thing every consumer of this fabric
		// already survives.
		time.AfterFunc(delay, func() { e.conn.WriteToUDPAddrPort(cp, addr) })
	}
	emit(corrupt)
	if dup {
		emit(false)
	}
}
