package udpfab

import (
	"fmt"

	"pioman/internal/fabric"
)

// Local is an in-process UDP fabric: n endpoints bound to loopback
// ephemeral ports with each other's addresses pre-taught — the udpfab
// analog of tcpfab.NewLocal, for tests and single-process benches.
// Every datagram still crosses the kernel's UDP stack.
type Local struct {
	eps []*Endpoint
}

// NewLocal builds an n-node loopback fabric.
func NewLocal(n int) (*Local, error) { return NewLocalChaos(n, nil) }

// NewLocalChaos builds an n-node loopback fabric with datagram-level
// chaos injection on every endpoint's transmit path. Each endpoint gets
// its own random source derived from chaos.Seed and its rank, so a
// multi-endpoint run is replayable from the one logged seed. A nil
// chaos is NewLocal.
func NewLocalChaos(n int, chaos *ChaosParams) (*Local, error) {
	if n <= 0 {
		return nil, fmt.Errorf("udpfab: local fabric needs at least one node")
	}
	l := &Local{eps: make([]*Endpoint, n)}
	for i := range l.eps {
		cfg := Config{Self: i, Nodes: n, Listen: "127.0.0.1:0"}
		if chaos != nil {
			cp := *chaos
			cp.Seed = chaos.Seed*1000003 + int64(i)
			cfg.Chaos = &cp
		}
		ep, err := New(cfg)
		if err != nil {
			l.Close()
			return nil, err
		}
		l.eps[i] = ep
	}
	for i, ep := range l.eps {
		for j, other := range l.eps {
			if i != j {
				ep.SetPeerAddr(j, other.Addr().String())
			}
		}
	}
	return l, nil
}

// Nodes implements fabric.Fabric.
func (l *Local) Nodes() int { return len(l.eps) }

// Endpoint implements fabric.Fabric.
func (l *Local) Endpoint(rank int) (fabric.Endpoint, error) {
	if rank < 0 || rank >= len(l.eps) {
		return nil, fmt.Errorf("udpfab: rank %d outside local fabric of %d", rank, len(l.eps))
	}
	return l.eps[rank], nil
}

// Close implements fabric.Fabric.
func (l *Local) Close() error {
	for _, ep := range l.eps {
		if ep != nil {
			ep.Close()
		}
	}
	return nil
}
