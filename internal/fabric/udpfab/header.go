package udpfab

import (
	"encoding/binary"
	"hash/crc32"

	"pioman/internal/fabric"
)

// Datagram wire format, little-endian throughout. Every datagram — data
// or pure ack — starts with the same 64-byte header, so one validation
// pass (parseDatagram, the udpx-style packet filter) gates everything
// that arrives on the socket before a single byte is allocated:
//
//	u32  magic ("PIOU")
//	u8   header version
//	u8   datagram type (1 data, 2 ack)
//	u16  source rank
//	u64  session      (sender incarnation; random, nonzero)
//	u64  seq          (data stream sequence, from 1; 0 on pure acks)
//	u64  base         (sender's lowest possibly-unacked seq)
//	u64  ack session  (the peer incarnation being acked; 0 = no ack info)
//	u64  cumulative ack
//	u64  selective ack bits (cum+1 .. cum+64)
//	u32  frame length (codec frame bytes that follow; 0 on pure acks)
//	u32  crc32 (IEEE) over the whole datagram with this field zeroed
//	...  one fabric codec frame (data datagrams only)
//
// The checksum covers header and payload both: a flipped bit anywhere
// rejects the datagram whole, and the reliability sublayer's retransmit
// timer recovers the frame — corruption degrades to loss.
const (
	dgMagic   = 0x50494F55 // "PIOU"
	dgVersion = 1

	// Datagram types.
	dgData = 1
	dgAck  = 2

	// dgHeaderBytes is the fixed preamble every datagram carries.
	dgHeaderBytes = 64

	// maxDatagramBytes is the largest UDP payload a single IPv4 datagram
	// can carry (65535 minus IP and UDP headers) — the hard ceiling the
	// fabric's own frame bound derives from.
	maxDatagramBytes = 65507

	// maxFrameBytes bounds the codec frame inside one datagram.
	maxFrameBytes = maxDatagramBytes - dgHeaderBytes

	// maxPayloadBytes is the largest packet payload one Send can carry:
	// the datagram ceiling minus this header and the codec's framing.
	maxPayloadBytes = maxFrameBytes - fabric.HeaderScratchBytes
)

// crcTable is the shared IEEE table; crc32.Update against it allocates
// nothing.
var crcTable = crc32.MakeTable(crc32.IEEE)

// dgHeader is one parsed datagram preamble. Plain value type: parsing
// fills a caller-provided struct so the validation path stays
// allocation-free.
type dgHeader struct {
	dtype      byte
	src        int
	session    uint64
	seq        uint64
	base       uint64
	ackSession uint64
	cumAck     uint64
	sack       uint64
	flen       int
}

// putHeader writes h into b's first dgHeaderBytes, leaving the checksum
// field zero for sealDatagram.
func putHeader(b []byte, h *dgHeader) {
	binary.LittleEndian.PutUint32(b[0:], dgMagic)
	b[4] = dgVersion
	b[5] = h.dtype
	binary.LittleEndian.PutUint16(b[6:], uint16(h.src))
	binary.LittleEndian.PutUint64(b[8:], h.session)
	binary.LittleEndian.PutUint64(b[16:], h.seq)
	binary.LittleEndian.PutUint64(b[24:], h.base)
	binary.LittleEndian.PutUint64(b[32:], h.ackSession)
	binary.LittleEndian.PutUint64(b[40:], h.cumAck)
	binary.LittleEndian.PutUint64(b[48:], h.sack)
	binary.LittleEndian.PutUint32(b[56:], uint32(h.flen))
	binary.LittleEndian.PutUint32(b[60:], 0)
}

// dgChecksum computes the datagram checksum of b: crc32 over everything
// with the checksum field treated as zero (skipped, which is equivalent
// and avoids mutating b).
func dgChecksum(b []byte) uint32 {
	crc := crc32.Update(0, crcTable, b[:60])
	return crc32.Update(crc, crcTable, b[dgHeaderBytes:])
}

// sealDatagram stamps b's checksum field. Call after putHeader and after
// the frame bytes are in place; retransmissions re-seal after patching
// the piggybacked ack fields.
func sealDatagram(b []byte) {
	binary.LittleEndian.PutUint32(b[60:], 0)
	binary.LittleEndian.PutUint32(b[60:], dgChecksum(b))
}

// parseDatagram is the packet filter: it validates one received datagram
// against the wire format — length bounds, magic, version, type, rank
// range, frame-length consistency, checksum — and fills h on success.
// Everything runs before any allocation or frame decode, so truncated,
// corrupt, oversized or alien datagrams cost the endpoint one bounded
// scan and a rejected_datagrams tick, never a panic or a delivery. The
// checksum runs last: it is the only check that touches every byte, and
// most garbage fails the cheap fixed-offset checks first.
func parseDatagram(b []byte, self, nodes int, h *dgHeader) bool {
	if len(b) < dgHeaderBytes || len(b) > maxDatagramBytes {
		return false
	}
	if binary.LittleEndian.Uint32(b) != dgMagic {
		return false
	}
	if b[4] != dgVersion {
		return false
	}
	dt := b[5]
	if dt != dgData && dt != dgAck {
		return false
	}
	src := int(binary.LittleEndian.Uint16(b[6:]))
	if src >= nodes || src == self {
		return false
	}
	flen := int(binary.LittleEndian.Uint32(b[56:]))
	if flen != len(b)-dgHeaderBytes {
		return false
	}
	if dt == dgAck && flen != 0 {
		return false
	}
	// A data frame is at least the codec's length prefix plus header.
	if dt == dgData && flen < fabric.HeaderScratchBytes {
		return false
	}
	if binary.LittleEndian.Uint32(b[60:]) != dgChecksum(b) {
		return false
	}
	h.dtype = dt
	h.src = src
	h.session = binary.LittleEndian.Uint64(b[8:])
	h.seq = binary.LittleEndian.Uint64(b[16:])
	h.base = binary.LittleEndian.Uint64(b[24:])
	h.ackSession = binary.LittleEndian.Uint64(b[32:])
	h.cumAck = binary.LittleEndian.Uint64(b[40:])
	h.sack = binary.LittleEndian.Uint64(b[48:])
	h.flen = flen
	return true
}
