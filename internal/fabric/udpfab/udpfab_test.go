package udpfab_test

import (
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/fabric"
	"pioman/internal/fabric/conformance"
	"pioman/internal/fabric/udpfab"
	"pioman/internal/mpi"
	"pioman/internal/nic"
	"pioman/internal/telemetry"
	"pioman/internal/topo"
)

func openLocal(t *testing.T, nodes int) fabric.Fabric {
	t.Helper()
	l, err := udpfab.NewLocal(nodes)
	if err != nil {
		t.Fatalf("NewLocal(%d): %v", nodes, err)
	}
	return l
}

func TestEndpointConformance(t *testing.T) {
	conformance.RunEndpoint(t, openLocal)
}

// TestManyPeersConformance runs the C10K shape gate at 48 spokes: one
// UDP socket and a fixed two goroutines (read loop + tick loop) per
// endpoint regardless of peer count, so the budget is linear in the
// number of in-process endpoints, not in connections. Not strict-FIFO:
// datagram delivery is on arrival.
func TestManyPeersConformance(t *testing.T) {
	const peers = 48
	conformance.RunManyPeers(t, openLocal, peers, false, 2*(peers+1)+32)
}

// udpWorld builds a 2-node engine world whose inter-node rail runs over
// real loopback UDP datagrams, reliability sublayer and all.
func udpWorld(t *testing.T) *mpi.World {
	t.Helper()
	l, err := udpfab.NewLocal(2)
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	rail := nic.UdpParams()
	return mpi.NewWorld(mpi.Config{
		Nodes:          2,
		Machine:        topo.Machine{Sockets: 1, CoresPerSocket: 2},
		Mode:           core.Multithreaded,
		OffloadEager:   true,
		EnableBlocking: true,
		MX:             rail,
		Fabrics:        map[string]fabric.Fabric{rail.Name: l},
	})
}

func TestWorldConformance(t *testing.T) {
	conformance.RunWorld(t, udpWorld)
}

// TestBatchOrderingConformance runs the batched-receive ordering case.
// Not strict-FIFO: datagrams legally reorder in flight and delivery is
// on arrival (receivers reorder by sequence number — the portable
// contract).
func TestBatchOrderingConformance(t *testing.T) {
	conformance.RunBatchOrdering(t, openLocal, false)
}

// TestRailFailoverConformance runs the two-rail loss-injection cases:
// total frame loss on the secondary rail, then partial (50%) loss, and
// rendezvous transfers must still complete over the surviving UDP rail.
func TestRailFailoverConformance(t *testing.T) {
	conformance.RunRailFailover(t, openLocal)
}

// TestSelfHealingConformance runs the acked-replay regression: the UDP
// rail is killed (above its reliability sublayer, so the sublayer cannot
// save it) right after the rendezvous was submitted, and the transfer
// must complete via engine-level replay once the rail revives.
func TestSelfHealingConformance(t *testing.T) {
	conformance.RunSelfHealing(t, openLocal)
}

// TestPeerDeathConformance runs the bounded-failure contract: one rank
// of a three-rank UDP world dies mid-rendezvous, pending requests
// toward it must complete with core.ErrPeerDead within the PeerDeadline
// and the survivors keep communicating.
func TestPeerDeathConformance(t *testing.T) {
	conformance.RunPeerDeath(t, openLocal)
}

// TestSelfHealSoakConformance runs the rail death-and-recovery soak:
// mid-run kill and revival of the secondary UDP rail, probation,
// probe-driven re-admission, and post-recovery traffic on the healed
// rail, with online stripe weights enabled throughout.
func TestSelfHealSoakConformance(t *testing.T) {
	conformance.RunSelfHealSoak(t, openLocal)
}

// TestTelemetrySnapshotConformance runs the observability case: a bonded
// world with a metrics registry attached, the lossy rail's failure
// visible in a registry snapshot under its documented name.
func TestTelemetrySnapshotConformance(t *testing.T) {
	conformance.RunTelemetrySnapshot(t, openLocal)
}

// TestChaosSoakConformance drives the engine-level soak workload over a
// loopback UDP fabric whose transmit path injects datagram-level drop,
// duplication, reordering and corruption beneath the reliability
// sublayer. Every message must still arrive exactly once and intact,
// and the recovery work must be visible in the rail's telemetry: the
// whole point of carrying a retransmit window is that this test cannot
// pass by luck at these injection rates.
func TestChaosSoakConformance(t *testing.T) {
	seed := conformance.ChaosSeed(t)
	reg := telemetry.NewRegistry()
	conformance.RunChaosSoak(t, func(t *testing.T) *mpi.World {
		l, err := udpfab.NewLocalChaos(2, &udpfab.ChaosParams{
			Seed:         seed,
			Drop:         0.02,
			Duplicate:    0.02,
			Reorder:      0.15,
			Corrupt:      0.01,
			ReorderDelay: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewLocalChaos: %v", err)
		}
		rail := nic.UdpParams()
		return mpi.NewWorld(mpi.Config{
			Nodes:          2,
			Machine:        topo.Machine{Sockets: 1, CoresPerSocket: 2},
			Mode:           core.Multithreaded,
			OffloadEager:   true,
			EnableBlocking: true,
			MX:             rail,
			Fabrics:        map[string]fabric.Fabric{rail.Name: l},
			Metrics:        reg,
		})
	})
	snap := reg.Snapshot()
	retrans := snap.Value("node0.rail.udp.retransmits") + snap.Value("node1.rail.udp.retransmits")
	dups := snap.Value("node0.rail.udp.dup_dropped") + snap.Value("node1.rail.udp.dup_dropped")
	t.Logf("soak recovery: %d retransmits, %d duplicates suppressed", retrans, dups)
	if retrans == 0 {
		t.Error("soak under 2% datagram loss drove zero retransmits: the reliability sublayer was not exercised")
	}
}
