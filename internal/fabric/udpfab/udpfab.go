// Package udpfab is a real transport backend for the fabric layer over
// unreliable UDP datagrams: the one in-tree fabric whose wire genuinely
// loses, duplicates and reorders, with a reliability sublayer that earns
// the fabric contract (reliable, complete, exactly-once) back on top of
// it — the shape of the paper's NIC drivers over lossy interconnects.
//
// Each endpoint owns one UDP socket. A packet accepted by Send is
// serialized into a single datagram — the 64-byte reliability header of
// header.go followed by one fabric codec frame — assigned a per-peer
// sequence number, and tracked in a bounded retransmit window until the
// peer acknowledges it. Acks are cumulative plus a 64-bit selective
// mask, piggybacked on every outbound data datagram and flushed as pure
// acks by a timer otherwise. A retransmit timer resends unacknowledged
// datagrams with per-frame exponential backoff up to a cap, starting
// from a per-peer adaptive timeout (Jacobson SRTT/RTTVAR measured from
// ack round trips, falling back to a fixed base until samples exist);
// the receive
// side suppresses the duplicates this necessarily creates and rejects
// truncated, corrupt or alien datagrams in a zero-allocation packet
// filter before any decode. Sender incarnations carry a random session
// id, so a restarted peer's stale state can never corrupt a fresh
// stream.
//
// Delivery is exactly-once and complete while the process pair lives;
// per-pair arrival order is NOT guaranteed (datagrams reorder, and
// delivery is on arrival, not in sequence order) — exactly the portable
// fabric contract, whose consumers reorder by packet sequence number.
// Frames still unacknowledged when Close's bounded drain gives up are
// counted in LostFrames, like tcpfab's abandoned stream buffers.
package udpfab

import (
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/fabric/bufpool"
	"pioman/internal/sync2"
	"pioman/internal/telemetry"
	"pioman/internal/wire"
)

const (
	// defaultWindow bounds how many datagrams per peer may be in flight
	// (sent, unacknowledged) at once; sends beyond it queue. The live
	// bound is per-peer AIMD below this ceiling: halved on fresh loss
	// evidence, grown back one frame per cleanly acked window.
	defaultWindow = 512

	// cwndFloorFrames floors the AIMD decrease: even under persistent
	// loss the window keeps this many probe frames in flight, so an ack
	// from a recovering peer always has something to acknowledge. A
	// configured window smaller than the floor is its own floor (tiny
	// test windows stay exact).
	cwndFloorFrames = 16

	// defaultRTO is the first retransmit timeout of a fresh datagram
	// toward a peer with no round-trip samples yet; defaultRTOMax caps
	// the exponential backoff between resends of the same datagram,
	// which is what bounds a retransmit storm against a dead or
	// partitioned peer. Once acks provide samples, the initial timeout
	// adapts per peer (SRTT/RTTVAR, see rtoLocked) between minAdaptiveRTO
	// and the cap.
	defaultRTO    = 20 * time.Millisecond
	defaultRTOMax = 250 * time.Millisecond

	// minAdaptiveRTO floors the measured retransmit timeout: on a
	// loopback-fast path SRTT+4·RTTVAR computes to microseconds, where a
	// timeout under the tick granularity would resend everything the
	// timer ever inspects.
	minAdaptiveRTO = 5 * time.Millisecond

	// tickPeriod is the retransmit/ack timer cadence: the granularity of
	// resend deadlines and the worst-case delay of a pure-ack flush.
	tickPeriod = 5 * time.Millisecond

	// ackEvery forces a pure ack after this many unacknowledged data
	// arrivals, so a one-directional bulk flow is acked faster than the
	// timer cadence and the sender's window keeps sliding.
	ackEvery = 16

	// closeDrainTimeout bounds how long Close waits for retransmission
	// to flush accepted frames toward a peer that stopped acking;
	// drainStallTimeout gives up earlier when no ack progress at all is
	// being made (the peer is gone, not slow).
	closeDrainTimeout = 5 * time.Second
	drainStallTimeout = 500 * time.Millisecond

	// readBufBytes sizes the receive buffer: one maximum datagram.
	readBufBytes = 64 << 10
)

// Config describes one process's attachment to a UDP fabric.
type Config struct {
	// Self is this endpoint's rank.
	Self int
	// Nodes is the cluster size.
	Nodes int
	// Listen is the UDP address to bind (e.g. "127.0.0.1:0", ":9777").
	// Empty binds an ephemeral port on all interfaces; the socket both
	// sends and receives, so every endpoint binds one.
	Listen string
	// Peers maps rank to address for peers this process may have to
	// contact first. Peers that always speak first can be omitted: their
	// address is learned from their first valid datagram.
	Peers map[int]string
	// Window bounds in-flight (unacknowledged) datagrams per peer; zero
	// selects the default. Sends beyond it queue without blocking and
	// tick the window_stalls counter.
	Window int
	// RTO is the retransmit timeout used toward a peer before any ack
	// round trip has been measured; RTOMax caps the per-frame
	// exponential backoff. Once acks provide samples the timeout adapts
	// per peer — Jacobson SRTT/RTTVAR, floored at minAdaptiveRTO and
	// capped at RTOMax — so a low-RTT link recovers losses faster than
	// the fixed base and a high-RTT link stops retransmitting frames
	// whose acks are merely still in flight. Zero selects the defaults.
	RTO    time.Duration
	RTOMax time.Duration
	// Chaos, when non-nil, injects seeded datagram-level disorder (drop,
	// duplication, reordering, corruption, latency) into this endpoint's
	// transmit path, beneath the reliability sublayer — every injected
	// failure is absorbed by retransmission and duplicate suppression
	// before the fabric contract is visible above.
	Chaos *ChaosParams
}

// outFrame is one sent-but-unacknowledged datagram: the sealed bytes
// (pooled), its resend deadline and its current backoff.
type outFrame struct {
	seq        uint64
	buf        []byte
	nextResend time.Time
	backoff    time.Duration
}

// peerState is everything the endpoint tracks about one peer: the send
// window toward it and the receive/dedup state of its inbound stream.
// All fields are guarded by Endpoint.mu.
type peerState struct {
	rank    int
	addr    netip.AddrPort
	hasAddr bool

	// Transmit side: nextSeq numbers outbound datagrams from 1; txBase
	// is the lowest seq the peer has not cumulatively acked (what the
	// header's base field declares); flight holds the bounded window;
	// pending queues sends beyond it in FIFO order.
	nextSeq uint64
	txBase  uint64
	flight  map[uint64]*outFrame
	pending []*outFrame

	// AIMD congestion control under the configured window: cwnd is the
	// live in-flight bound (starts at and never exceeds Endpoint.window),
	// cutSeq fences loss events — only a retransmitted frame first sent
	// after the last cut halves the window again, so one loss burst costs
	// one halving no matter how many frames it hit — and acked counts
	// cleanly retired frames toward the next additive +1 (one full
	// window acked without a cut grows cwnd by one frame).
	cwnd   int
	cutSeq uint64
	acked  int

	// Round-trip estimation (Jacobson): srtt/rttvar drive the adaptive
	// retransmit timeout of fresh frames (rtoLocked); srtt == 0 means no
	// sample yet. rttSeq is the one in-flight frame currently being
	// timed (0 = none) and rttSentAt its first-transmission stamp.
	// Timing runs from the FIRST transmission even if the frame is later
	// retransmitted — the opposite of Karn's discard rule — because with
	// a base timeout below the true RTT every timed frame is
	// retransmitted before its ack returns and discarding would starve
	// measurement forever. Measuring from the first transmission can
	// only overestimate the round trip (the ack, whichever copy
	// triggered it, cannot arrive in less than one true RTT), which errs
	// on the side of fewer retransmissions and converges once the
	// timeout clears the real RTT.
	srtt      time.Duration
	rttvar    time.Duration
	rttSeq    uint64
	rttSentAt time.Time

	// Receive side, keyed by the sender incarnation: rxCum is the
	// highest contiguously received seq of session rxSess, rxAhead the
	// out-of-order seqs beyond it (already delivered — membership is the
	// duplicate filter), ackOwed the data arrivals since the last ack
	// went out.
	rxSess  uint64
	rxCum   uint64
	rxAhead map[uint64]struct{}
	ackOwed int
}

// Endpoint is one process's port on a UDP fabric.
type Endpoint struct {
	self, nodes int
	window      int
	rto, rtoMax time.Duration

	conn    *net.UDPConn
	session uint64

	mu        sync.Mutex
	peers     []*peerState // indexed by rank, created on first contact
	peerAddrs map[int]string

	seq   atomic.Uint64
	lost  atomic.Uint64
	state atomic.Int32  // 0 open, 1 closed
	done  chan struct{} // closed on Close; wakes receivers, stops the timer
	inbox inbox
	wg    sync.WaitGroup

	chaos *chaosState

	// Reliability-sublayer health counters, registered under the rail
	// prefix via RegisterMetrics (fabric.MetricSource).
	retransmits  telemetry.Counter
	acksSent     telemetry.Counter
	acksRecv     telemetry.Counter
	dupDropped   telemetry.Counter
	rejected     telemetry.Counter
	windowStalls telemetry.Counter
	badAcks      telemetry.Counter
}

// inbox is the arrival queue: FIFO, one notify edge for blocking
// receivers — the same shape as tcpfab's (the head index keeps the
// backing array's capacity across push/pop cycles).
type inbox struct {
	mu     sync.Mutex
	pkts   []*wire.Packet
	head   int
	notify chan struct{}
}

func (ib *inbox) push(p *wire.Packet) {
	ib.mu.Lock()
	ib.pkts, ib.head = sync2.CompactQueue(ib.pkts, ib.head)
	ib.pkts = append(ib.pkts, p)
	ib.mu.Unlock()
	select {
	case ib.notify <- struct{}{}:
	default:
	}
}

func (ib *inbox) pop() *wire.Packet {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.head == len(ib.pkts) {
		return nil
	}
	p := ib.pkts[ib.head]
	ib.pkts[ib.head] = nil
	ib.head++
	if ib.head == len(ib.pkts) {
		ib.pkts, ib.head = ib.pkts[:0], 0
	}
	return p
}

func (ib *inbox) popRun(into []*wire.Packet) int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	var n int
	ib.pkts, ib.head, n = sync2.PopRun(ib.pkts, ib.head, into)
	return n
}

func (ib *inbox) empty() bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.head == len(ib.pkts)
}

// New opens an endpoint per cfg, binds its socket and starts its reader
// and retransmit timer. The actual bound address (useful with port 0)
// is Addr().
func New(cfg Config) (*Endpoint, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("udpfab: cluster needs at least one node")
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Nodes {
		return nil, fmt.Errorf("udpfab: rank %d outside cluster of %d", cfg.Self, cfg.Nodes)
	}
	listen := cfg.Listen
	if listen == "" {
		listen = ":0"
	}
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("udpfab: listen %s: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udpfab: listen %s: %w", listen, err)
	}
	e := &Endpoint{
		self:      cfg.Self,
		nodes:     cfg.Nodes,
		window:    cfg.Window,
		rto:       cfg.RTO,
		rtoMax:    cfg.RTOMax,
		conn:      conn,
		peers:     make([]*peerState, cfg.Nodes),
		peerAddrs: make(map[int]string, len(cfg.Peers)),
		done:      make(chan struct{}),
		inbox:     inbox{notify: make(chan struct{}, 1)},
	}
	if e.window <= 0 {
		e.window = defaultWindow
	}
	if e.rto <= 0 {
		e.rto = defaultRTO
	}
	if e.rtoMax < e.rto {
		e.rtoMax = defaultRTOMax
	}
	if e.rtoMax < e.rto {
		e.rtoMax = e.rto
	}
	for e.session == 0 {
		e.session = rand.Uint64()
	}
	for r, a := range cfg.Peers {
		e.peerAddrs[r] = a
	}
	if cfg.Chaos != nil {
		e.chaos = newChaosState(*cfg.Chaos)
	}
	e.wg.Add(2)
	go e.readLoop()
	go e.tickLoop()
	return e, nil
}

// Addr returns the socket's actual local address.
func (e *Endpoint) Addr() net.Addr { return e.conn.LocalAddr() }

// SetPeerAddr records rank's address (e.g. learned out of band after
// both sides bound ephemeral ports). A peer's address is also learned —
// and refreshed — from every valid datagram it sends, so a peer that
// restarts on a new port re-routes the window automatically.
func (e *Endpoint) SetPeerAddr(rank int, addr string) {
	e.mu.Lock()
	e.peerAddrs[rank] = addr
	if ps := e.peers[rank]; ps != nil {
		// Re-resolve immediately: the caller knows better than a stale
		// learned address (the receiver-restart path), and frames already
		// in flight must keep retransmitting toward the new address
		// without waiting for a fresh Send to trigger resolution.
		ps.hasAddr = false
		_ = e.resolveLocked(ps)
	}
	e.mu.Unlock()
}

// Self implements fabric.Endpoint.
func (e *Endpoint) Self() int { return e.self }

// Nodes implements fabric.Endpoint.
func (e *Endpoint) Nodes() int { return e.nodes }

// NextSeq implements fabric.Endpoint. (These engine-level sequence
// numbers are unrelated to the reliability sublayer's per-peer datagram
// sequences.)
func (e *Endpoint) NextSeq() uint64 { return e.seq.Add(1) }

// Backlog implements fabric.Endpoint: the sublayer runs its own window,
// the submission gate is always open.
func (e *Endpoint) Backlog(int) time.Duration { return 0 }

// SendCaptures implements fabric.SendCapturer: Send serializes
// cross-rank packets into their datagram and copies self-deliveries
// before returning.
func (e *Endpoint) SendCaptures() bool { return true }

// MaxPayload implements fabric.PayloadLimiter: one packet must fit one
// datagram after the reliability header and codec framing.
func (e *Endpoint) MaxPayload() int { return maxPayloadBytes }

// LostFrames implements fabric.LossCounter: frames accepted by Send and
// abandoned unacknowledged by Close's bounded drain.
func (e *Endpoint) LostFrames() uint64 { return e.lost.Load() }

// Pending implements fabric.Endpoint: only datagrams already delivered
// into the inbox count, the weaker real-transport semantics.
func (e *Endpoint) Pending() bool { return !e.inbox.empty() }

// Poll implements fabric.Endpoint.
func (e *Endpoint) Poll() *wire.Packet { return e.inbox.pop() }

// PollBatch implements fabric.Endpoint natively: one inbox lock round
// trip hands out a FIFO run of delivered packets.
func (e *Endpoint) PollBatch(into []*wire.Packet) int { return e.inbox.popRun(into) }

// BlockingRecv implements fabric.Endpoint: a pooled timer armed once for
// the whole wait, re-polling on notify edges.
func (e *Endpoint) BlockingRecv(timeout time.Duration) *wire.Packet {
	if p := e.inbox.pop(); p != nil {
		return p
	}
	t := sync2.GetTimer(timeout)
	fired := false
	defer func() { sync2.PutTimer(t, fired) }()
	for {
		if p := e.inbox.pop(); p != nil {
			return p
		}
		if e.closed() {
			return nil
		}
		select {
		case <-e.inbox.notify:
		case <-e.done:
		case <-t.C:
			fired = true
			return e.inbox.pop()
		}
	}
}

// Send implements fabric.Endpoint: the packet is serialized into one
// sealed datagram before return (payload captured), entered into the
// peer's retransmit window — or its overflow queue when the window is
// full, so Send never blocks — and transmitted. Delivery is then the
// retransmit machinery's business until the peer acks.
func (e *Endpoint) Send(p *wire.Packet) error {
	if e.closed() {
		return fabric.ErrClosed
	}
	if p.Dst < 0 || p.Dst >= e.nodes {
		return fmt.Errorf("udpfab: send to rank %d outside cluster of %d", p.Dst, e.nodes)
	}
	if p.WireLen <= 0 {
		p.WireLen = len(p.Payload)
	}
	if len(p.Payload) > maxPayloadBytes {
		return fmt.Errorf("udpfab: %d-byte payload exceeds datagram frame limit %d", len(p.Payload), maxPayloadBytes)
	}
	if p.Dst == e.self {
		e.inbox.push(fabric.CapturePacket(p))
		return nil
	}
	// Serialize outside the lock: the window bookkeeping is the only
	// contended part.
	size := dgHeaderBytes + fabric.EncodedSize(p)
	buf := bufpool.Get(size)[:dgHeaderBytes]
	buf = fabric.AppendPacket(buf, p)
	f := &outFrame{buf: buf}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed() {
		// Racing Close: the drain snapshot may already have run.
		bufpool.Put(buf)
		return fabric.ErrClosed
	}
	ps := e.peer(p.Dst)
	if !ps.hasAddr {
		if err := e.resolveLocked(ps); err != nil {
			bufpool.Put(buf)
			return err
		}
	}
	f.seq = ps.nextSeq
	ps.nextSeq++
	f.backoff = e.rtoLocked(ps)
	if len(ps.flight) < ps.cwnd {
		ps.flight[f.seq] = f
		e.transmitLocked(ps, f)
		e.armRTTSampleLocked(ps, f)
	} else {
		e.windowStalls.Add(1)
		ps.pending = append(ps.pending, f)
	}
	return nil
}

// peer returns rank's state, creating it on first contact. Caller holds
// e.mu.
func (e *Endpoint) peer(rank int) *peerState {
	ps := e.peers[rank]
	if ps == nil {
		ps = &peerState{
			rank:    rank,
			nextSeq: 1,
			txBase:  1,
			cwnd:    e.window,
			flight:  make(map[uint64]*outFrame),
			rxAhead: make(map[uint64]struct{}),
		}
		e.peers[rank] = ps
	}
	return ps
}

// resolveLocked resolves ps's configured address. Caller holds e.mu.
func (e *Endpoint) resolveLocked(ps *peerState) error {
	addr, ok := e.peerAddrs[ps.rank]
	if !ok {
		return fmt.Errorf("udpfab: no address for rank %d and no datagram received from it", ps.rank)
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udpfab: resolve rank %d at %s: %w", ps.rank, addr, err)
	}
	// Unmap IPv4-in-IPv6 (net.ResolveUDPAddr yields ::ffff:a.b.c.d for
	// v4 literals, which an IPv4-bound socket refuses to write to).
	ap := ua.AddrPort()
	ps.addr, ps.hasAddr = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), true
	return nil
}

// transmitLocked seals and sends one window frame, patching the
// piggybacked ack fields to the current receive state — retransmissions
// therefore carry fresh acks for free. Caller holds e.mu.
func (e *Endpoint) transmitLocked(ps *peerState, f *outFrame) {
	h := dgHeader{
		dtype:      dgData,
		src:        e.self,
		session:    e.session,
		seq:        f.seq,
		base:       ps.txBase,
		ackSession: ps.rxSess,
		cumAck:     ps.rxCum,
		sack:       e.sackBitsLocked(ps),
		flen:       len(f.buf) - dgHeaderBytes,
	}
	putHeader(f.buf, &h)
	sealDatagram(f.buf)
	ps.ackOwed = 0
	f.nextResend = time.Now().Add(f.backoff)
	e.transmit(f.buf, ps.addr)
}

// sendAckLocked emits one pure-ack datagram for ps's inbound stream.
// Caller holds e.mu.
func (e *Endpoint) sendAckLocked(ps *peerState) {
	if ps.rxSess == 0 {
		return // nothing ever received: nothing to ack
	}
	var b [dgHeaderBytes]byte
	h := dgHeader{
		dtype:      dgAck,
		src:        e.self,
		session:    e.session,
		base:       ps.txBase,
		ackSession: ps.rxSess,
		cumAck:     ps.rxCum,
		sack:       e.sackBitsLocked(ps),
	}
	putHeader(b[:], &h)
	sealDatagram(b[:])
	ps.ackOwed = 0
	e.acksSent.Add(1)
	e.transmit(b[:], ps.addr)
}

// sackBitsLocked builds the selective-ack mask: bit i set means seq
// rxCum+1+i has been received out of order. Caller holds e.mu.
func (e *Endpoint) sackBitsLocked(ps *peerState) uint64 {
	var bits uint64
	for s := range ps.rxAhead {
		if d := s - ps.rxCum; d >= 1 && d <= 64 {
			bits |= 1 << (d - 1)
		}
	}
	return bits
}

// transmit writes one sealed datagram, through the chaos layer when one
// is configured.
func (e *Endpoint) transmit(b []byte, addr netip.AddrPort) {
	if e.chaos != nil {
		e.chaos.transmit(e, b, addr)
		return
	}
	e.conn.WriteToUDPAddrPort(b, addr)
}

// readLoop receives datagrams until the socket closes. One reused
// buffer: every accepted frame is decoded straight into pooled storage
// by handleDatagram.
func (e *Endpoint) readLoop() {
	defer e.wg.Done()
	buf := make([]byte, readBufBytes)
	for {
		n, from, err := e.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return
		}
		e.handleDatagram(buf[:n], from)
	}
}

// handleDatagram validates, acks and delivers one received datagram —
// the whole receive path of the reliability sublayer. Rejected
// datagrams (truncated, corrupt, alien) cost one counter tick and
// nothing else.
func (e *Endpoint) handleDatagram(b []byte, from netip.AddrPort) {
	var h dgHeader
	if !parseDatagram(b, e.self, e.nodes, &h) {
		e.rejected.Add(1)
		return
	}
	var deliver *wire.Packet
	e.mu.Lock()
	ps := e.peer(h.src)
	// The latest valid datagram wins the route: a peer that rebinds
	// keeps working without reconfiguration, and the checksum gate makes
	// blind spoofing of the route at least require a valid session's
	// traffic to copy.
	ps.addr, ps.hasAddr = netip.AddrPortFrom(from.Addr().Unmap(), from.Port()), true

	if h.ackSession == e.session {
		e.acksRecv.Add(1)
		if h.cumAck >= ps.nextSeq {
			// Acknowledges a sequence this incarnation never sent:
			// corrupt peer state or a replayed datagram. Ignore it —
			// trusting it would tear frames out of the window that were
			// never delivered.
			e.badAcks.Add(1)
		} else {
			e.applyAckLocked(ps, h.cumAck, h.sack)
		}
	}

	if h.dtype == dgData {
		if h.session != ps.rxSess {
			// New sender incarnation: adopt its stream where it says it
			// begins. Stale dedup state from the previous incarnation
			// would otherwise silently eat the new stream's sequences.
			ps.rxSess = h.session
			ps.rxCum = 0
			if h.base > 0 {
				ps.rxCum = h.base - 1
			}
			clear(ps.rxAhead)
		} else if h.base > 0 && h.base-1 > ps.rxCum {
			// The sender will never retransmit below base: everything
			// under it is cumulatively acknowledged state we may drop —
			// this is what un-sticks a receiver that restarted mid-window
			// behind the same rank (its cum restarts at 0).
			ps.rxCum = h.base - 1
			for s := range ps.rxAhead {
				if s <= ps.rxCum {
					delete(ps.rxAhead, s)
				}
			}
		}
		ps.ackOwed++
		_, ahead := ps.rxAhead[h.seq]
		if h.seq <= ps.rxCum || ahead {
			// Already delivered: a retransmission whose original (or
			// whose ack) was lost, or a chaos duplicate. Re-acking is the
			// cure, so the owed ack above still counts.
			e.dupDropped.Add(1)
		} else {
			p, err := fabric.DecodePacketPooled(b[dgHeaderBytes:])
			if err != nil {
				// The checksum passed but the inner frame is malformed:
				// not a transit error, a misbehaving sender. Reject.
				e.rejected.Add(1)
			} else {
				p.Src = h.src // the validated header identity wins
				if h.seq == ps.rxCum+1 {
					ps.rxCum++
					for {
						if _, ok := ps.rxAhead[ps.rxCum+1]; !ok {
							break
						}
						delete(ps.rxAhead, ps.rxCum+1)
						ps.rxCum++
					}
				} else {
					ps.rxAhead[h.seq] = struct{}{}
				}
				deliver = p
			}
		}
		if ps.ackOwed >= ackEvery {
			e.sendAckLocked(ps)
		}
	}
	e.mu.Unlock()
	if deliver != nil {
		e.inbox.push(deliver)
	}
}

// rtoLocked returns the retransmit timeout a fresh frame toward ps
// starts with: the configured base before any round trip has been
// measured, afterwards the Jacobson estimate SRTT + 4·RTTVAR clamped
// between minAdaptiveRTO and the backoff cap. Caller holds e.mu.
func (e *Endpoint) rtoLocked(ps *peerState) time.Duration {
	if ps.srtt == 0 {
		return e.rto
	}
	rto := ps.srtt + 4*ps.rttvar
	if rto < minAdaptiveRTO {
		rto = minAdaptiveRTO
	}
	if rto > e.rtoMax {
		rto = e.rtoMax
	}
	return rto
}

// armRTTSampleLocked starts timing f's round trip if no frame toward ps
// is being timed already — one outstanding sample per peer keeps the
// bookkeeping O(1). Caller holds e.mu; f was just transmitted for the
// first time.
func (e *Endpoint) armRTTSampleLocked(ps *peerState, f *outFrame) {
	if ps.rttSeq == 0 {
		ps.rttSeq = f.seq
		ps.rttSentAt = time.Now()
	}
}

// observeRTTLocked folds one measured round trip into ps's estimator:
// RTTVAR += (|rtt−SRTT| − RTTVAR)/4, SRTT += (rtt−SRTT)/8, the
// Jacobson/Karels gains. Caller holds e.mu.
func (e *Endpoint) observeRTTLocked(ps *peerState, rtt time.Duration) {
	if ps.srtt == 0 {
		ps.srtt, ps.rttvar = rtt, rtt/2
		return
	}
	d := rtt - ps.srtt
	if d < 0 {
		d = -d
	}
	ps.rttvar += (d - ps.rttvar) / 4
	ps.srtt += (rtt - ps.srtt) / 8
}

// PeerRTO reports the retransmit timeout a fresh frame toward rank
// would start with right now — the configured base until ack round
// trips have been measured, the adaptive estimate afterwards. An
// observability hook (and the white-box surface of the adaptive-RTO
// regression tests); the transport does not need callers to look.
func (e *Endpoint) PeerRTO(rank int) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if rank < 0 || rank >= e.nodes || e.peers[rank] == nil {
		return e.rto
	}
	return e.rtoLocked(e.peers[rank])
}

// cwndFloor is the AIMD decrease floor: min(cwndFloorFrames, the
// configured window), so a deliberately tiny window is never inflated
// by the floor.
func (e *Endpoint) cwndFloor() int {
	if e.window < cwndFloorFrames {
		return e.window
	}
	return cwndFloorFrames
}

// PeerWindow reports the live AIMD send window toward rank — the
// configured bound until loss cut it, the regrown value as clean acks
// earn frames back. An observability hook and the white-box surface of
// the loss-burst recovery tests.
func (e *Endpoint) PeerWindow(rank int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if rank < 0 || rank >= e.nodes || e.peers[rank] == nil {
		return e.window
	}
	return e.peers[rank].cwnd
}

// applyAckLocked retires acknowledged frames from ps's window and
// promotes queued sends into the space. Caller holds e.mu and has
// validated cum against nextSeq.
func (e *Endpoint) applyAckLocked(ps *peerState, cum, sack uint64) {
	if ps.rttSeq != 0 {
		covered := cum >= ps.rttSeq
		if !covered && ps.rttSeq-cum <= 64 {
			covered = sack&(1<<(ps.rttSeq-cum-1)) != 0
		}
		if covered {
			e.observeRTTLocked(ps, time.Since(ps.rttSentAt))
			ps.rttSeq = 0
		}
	}
	retired := 0
	for s := ps.txBase; s <= cum; s++ {
		if f := ps.flight[s]; f != nil {
			delete(ps.flight, s)
			bufpool.Put(f.buf)
			retired++
		}
	}
	if cum+1 > ps.txBase {
		ps.txBase = cum + 1
	}
	for i := uint64(0); i < 64; i++ {
		if sack&(1<<i) == 0 {
			continue
		}
		if f := ps.flight[cum+1+i]; f != nil {
			delete(ps.flight, cum+1+i)
			bufpool.Put(f.buf)
			retired++
		}
	}
	// Additive increase: a full window retired without fresh loss (the
	// cut resets the count) earns one frame back, up to the configured
	// ceiling.
	if ps.acked += retired; ps.acked >= ps.cwnd {
		if ps.cwnd < e.window {
			ps.cwnd++
		}
		ps.acked = 0
	}
	for len(ps.flight) < ps.cwnd && len(ps.pending) > 0 {
		f := ps.pending[0]
		ps.pending[0] = nil
		ps.pending = ps.pending[1:]
		// The frame's starting timeout was fixed at Send; refresh it with
		// whatever the estimator has learned while it sat queued.
		f.backoff = e.rtoLocked(ps)
		ps.flight[f.seq] = f
		e.transmitLocked(ps, f)
		e.armRTTSampleLocked(ps, f)
	}
}

// tickLoop drives retransmission and ack flushing until Close.
func (e *Endpoint) tickLoop() {
	defer e.wg.Done()
	t := time.NewTicker(tickPeriod)
	defer t.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
		}
		e.tick()
	}
}

// tick resends every flight frame past its deadline (doubling its
// backoff up to the cap) and flushes owed acks.
func (e *Endpoint) tick() {
	now := time.Now()
	e.mu.Lock()
	for _, ps := range e.peers {
		if ps == nil || !ps.hasAddr {
			continue
		}
		for _, f := range ps.flight {
			if now.After(f.nextResend) {
				if f.seq >= ps.cutSeq {
					// Fresh loss evidence — the frame was first sent after
					// the last cut. Multiplicative decrease, one halving
					// per loss burst: everything already in flight is
					// fenced behind the new cutSeq.
					ps.cutSeq = ps.nextSeq
					ps.acked = 0
					if ps.cwnd /= 2; ps.cwnd < e.cwndFloor() {
						ps.cwnd = e.cwndFloor()
					}
				}
				f.backoff *= 2
				if f.backoff > e.rtoMax {
					f.backoff = e.rtoMax
				}
				e.retransmits.Add(1)
				e.transmitLocked(ps, f)
			}
		}
		if ps.ackOwed > 0 {
			e.sendAckLocked(ps)
		}
	}
	e.mu.Unlock()
}

// RegisterMetrics implements fabric.MetricSource: the reliability
// sublayer's health counters join reg under prefix (the rail driver
// passes "node<rank>.rail.<name>"), next to the portable driver
// counters.
func (e *Endpoint) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.RegisterCounter(prefix+".retransmits", "data datagrams resent by the retransmit timer", e.retransmits.Load)
	reg.RegisterCounter(prefix+".acks_sent", "pure ack datagrams sent", e.acksSent.Load)
	reg.RegisterCounter(prefix+".acks_recv", "ack-bearing datagrams processed", e.acksRecv.Load)
	reg.RegisterCounter(prefix+".dup_dropped", "duplicate data datagrams suppressed", e.dupDropped.Load)
	reg.RegisterCounter(prefix+".rejected_datagrams", "datagrams rejected by header validation", e.rejected.Load)
	reg.RegisterCounter(prefix+".window_stalls", "sends queued behind a full retransmit window", e.windowStalls.Load)
	reg.RegisterCounter(prefix+".bad_acks", "acks ignored as stale or acknowledging unsent sequences", e.badAcks.Load)
	reg.RegisterGauge(prefix+".window_size", "live AIMD send window (frames, smallest across contacted peers)", func() uint64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		w := e.window
		for _, ps := range e.peers {
			if ps != nil && ps.cwnd < w {
				w = ps.cwnd
			}
		}
		return uint64(w)
	})
}

func (e *Endpoint) closed() bool { return e.state.Load() != 0 }

// Close implements fabric.Endpoint: refuse new sends, let the
// retransmit machinery drain accepted frames toward still-acking peers
// (bounded overall, and cut short when no ack progress is being made at
// all), count what could not be delivered in LostFrames, then stop the
// timer, close the socket and wake every blocked receiver. Packets
// already received remain pollable. Idempotent.
func (e *Endpoint) Close() error {
	if !e.state.CompareAndSwap(0, 1) {
		return nil
	}
	deadline := time.Now().Add(closeDrainTimeout)
	lastProgress := time.Now()
	lastCount := -1
	for {
		e.mu.Lock()
		n := 0
		for _, ps := range e.peers {
			if ps != nil {
				n += len(ps.flight) + len(ps.pending)
			}
		}
		e.mu.Unlock()
		if n == 0 {
			break
		}
		now := time.Now()
		if n != lastCount {
			lastCount, lastProgress = n, now
		}
		if now.After(deadline) || now.Sub(lastProgress) > drainStallTimeout {
			break
		}
		time.Sleep(tickPeriod)
	}
	e.mu.Lock()
	for _, ps := range e.peers {
		if ps == nil {
			continue
		}
		// Flush the ack still owed for recent arrivals before the socket
		// goes away: a closer whose own drain finishes instantly would
		// otherwise strand the peer's last in-flight frames unacked,
		// stalling that peer's drain and counting delivered frames as
		// lost.
		if ps.ackOwed > 0 && ps.hasAddr {
			e.sendAckLocked(ps)
		}
		for s, f := range ps.flight {
			delete(ps.flight, s)
			e.lost.Add(1)
			bufpool.Put(f.buf)
		}
		for i, f := range ps.pending {
			ps.pending[i] = nil
			e.lost.Add(1)
			bufpool.Put(f.buf)
		}
		ps.pending = nil
	}
	e.mu.Unlock()
	close(e.done)
	e.conn.Close()
	e.wg.Wait()
	return nil
}
