package udpfab

import (
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"pioman/internal/telemetry"
	"pioman/internal/wire"
)

// silentPeer is a raw UDP socket posing as rank 1: it reads whatever the
// endpoint under test transmits and acknowledges nothing unless the test
// crafts a reply by hand — the harness for window and ack edge cases.
type silentPeer struct {
	t    *testing.T
	conn *net.UDPConn
}

func newSilentPeer(t *testing.T) *silentPeer {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &silentPeer{t: t, conn: conn}
}

func (s *silentPeer) addr() string { return s.conn.LocalAddr().String() }

// read returns the next datagram the endpoint transmitted, with the
// sender's address, or nil on timeout.
func (s *silentPeer) read(timeout time.Duration) ([]byte, *net.UDPAddr) {
	s.t.Helper()
	s.conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, readBufBytes)
	n, from, err := s.conn.ReadFromUDP(buf)
	if err != nil {
		return nil, nil
	}
	return buf[:n], from
}

// counters registers the endpoint's sublayer metrics and returns a
// getter over live snapshots, so every assertion reads the same series a
// bonded world would expose under node<r>.rail.udp.*.
func counters(e *Endpoint) func(name string) uint64 {
	reg := telemetry.NewRegistry()
	e.RegisterMetrics(reg, "node0.rail.udp")
	return func(name string) uint64 {
		return reg.Snapshot().Value("node0.rail.udp." + name)
	}
}

func sendSmall(t *testing.T, e *Endpoint, dst int, seq uint64) {
	t.Helper()
	if err := e.Send(&wire.Packet{
		Kind: wire.PktEager, Src: e.Self(), Dst: dst, Seq: seq,
		Payload: bytes.Repeat([]byte{byte(seq)}, 16),
	}); err != nil {
		t.Fatalf("send %d: %v", seq, err)
	}
}

// TestWindowFullSendBackpressure pins the bounded-window contract: sends
// beyond the in-flight window return promptly (Send never blocks),
// queue in FIFO overflow, and each tick the window_stalls counter — and
// frames the drain could not deliver are all accounted lost on Close.
func TestWindowFullSendBackpressure(t *testing.T) {
	peer := newSilentPeer(t)
	e, err := New(Config{
		Self: 0, Nodes: 2, Listen: "127.0.0.1:0",
		Peers:  map[int]string{1: peer.addr()},
		Window: 4, RTO: 30 * time.Millisecond, RTOMax: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := counters(e)
	const total = 10
	start := time.Now()
	for i := 1; i <= total; i++ {
		sendSmall(t, e, 1, uint64(i))
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("sends against a full window took %v: Send blocked", d)
	}
	if got := get("window_stalls"); got != total-4 {
		t.Fatalf("window_stalls = %d, want %d (window 4, %d sends)", got, total-4, total)
	}
	// Only the window's worth of distinct sequences ever hits the wire —
	// the overflow queue must not leak past the in-flight bound while no
	// acks arrive.
	seqs := make(map[uint64]bool)
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		b, _ := peer.read(50 * time.Millisecond)
		if b == nil {
			continue
		}
		var h dgHeader
		if parseDatagram(b, 1, 2, &h) && h.dtype == dgData {
			seqs[h.seq] = true
		}
	}
	if len(seqs) != 4 {
		t.Fatalf("%d distinct sequences on the wire, want exactly the window of 4", len(seqs))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if lost := e.LostFrames(); lost != total {
		t.Fatalf("LostFrames = %d after draining against a dead peer, want %d", lost, total)
	}
}

// TestAckOfUnsentSeqIgnored pins ack validation: an ack acknowledging a
// sequence this incarnation never sent (replay, corrupt peer) must be
// ignored and counted in bad_acks — trusting it would tear undelivered
// frames out of the window. A valid ack afterwards still retires the
// frame.
func TestAckOfUnsentSeqIgnored(t *testing.T) {
	peer := newSilentPeer(t)
	e, err := New(Config{
		Self: 0, Nodes: 2, Listen: "127.0.0.1:0",
		Peers: map[int]string{1: peer.addr()},
		RTO:   20 * time.Millisecond, RTOMax: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	get := counters(e)
	sendSmall(t, e, 1, 1)
	b, _ := peer.read(time.Second)
	if b == nil {
		t.Fatal("endpoint transmitted nothing")
	}
	session := binary.LittleEndian.Uint64(b[8:16])

	// cumAck 99 acknowledges sequences never sent (nextSeq is 2).
	bogus := mkAck(t, 1, 7777, session, 99, 0)
	if _, err := peer.conn.WriteToUDP(bogus, e.Addr().(*net.UDPAddr)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return get("bad_acks") == 1 })
	if get("acks_recv") != 1 {
		t.Fatalf("acks_recv = %d, want 1", get("acks_recv"))
	}
	// The frame must still be in flight: retransmission continues.
	base := get("retransmits")
	waitFor(t, 2*time.Second, func() bool { return get("retransmits") > base })

	// A genuine cumulative ack retires it and the window drains clean.
	good := mkAck(t, 1, 7777, session, 1, 0)
	if _, err := peer.conn.WriteToUDP(good, e.Addr().(*net.UDPAddr)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return get("acks_recv") >= 2 })
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if lost := e.LostFrames(); lost != 0 {
		t.Fatalf("LostFrames = %d after a valid ack, want 0", lost)
	}
	if get("bad_acks") != 1 {
		t.Fatalf("bad_acks = %d at exit, want exactly the one bogus ack", get("bad_acks"))
	}
}

// TestRetransmitStormBoundedByBackoffCap pins the backoff policy: a
// frame toward a dead peer is resent on an exponential schedule capped
// at RTOMax, so the observed retransmit count over a fixed horizon is
// bounded well below the tick rate.
func TestRetransmitStormBoundedByBackoffCap(t *testing.T) {
	peer := newSilentPeer(t)
	e, err := New(Config{
		Self: 0, Nodes: 2, Listen: "127.0.0.1:0",
		Peers: map[int]string{1: peer.addr()},
		RTO:   10 * time.Millisecond, RTOMax: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := counters(e)
	sendSmall(t, e, 1, 1)
	const horizon = 600 * time.Millisecond
	time.Sleep(horizon)
	got := get("retransmits")
	// Schedule: 10+20+40+40+... — at most ~17 resends fit in 600ms, vs
	// ~120 if every 5ms tick resent. Generous slack for a loaded box.
	if got > 25 {
		t.Fatalf("%d retransmits in %v: backoff cap not bounding the storm", got, horizon)
	}
	if got < 3 {
		t.Fatalf("%d retransmits in %v: the timer is not retransmitting", got, horizon)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.LostFrames() != 1 {
		t.Fatalf("LostFrames = %d, want the one undeliverable frame", e.LostFrames())
	}
}

// TestReceiverRestartMidWindow pins the restart story end to end: a
// receiver dies with the sender's window half in flight, a fresh
// incarnation comes up on a new port, SetPeerAddr re-routes the window,
// and retransmission delivers the outstanding frames to the new receiver
// exactly once — nothing lost, nothing duplicated, counters visible.
func TestReceiverRestartMidWindow(t *testing.T) {
	a, err := New(Config{Self: 0, Nodes: 2, Listen: "127.0.0.1:0",
		RTO: 20 * time.Millisecond, RTOMax: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	getA := counters(a)
	b1, err := New(Config{Self: 1, Nodes: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeerAddr(1, b1.Addr().String())
	b1.SetPeerAddr(0, a.Addr().String())

	// Phase 1: frames 1..5 delivered and acked through the first
	// incarnation.
	for i := 1; i <= 5; i++ {
		sendSmall(t, a, 1, uint64(i))
	}
	for i := 0; i < 5; i++ {
		if p := b1.BlockingRecv(5 * time.Second); p == nil {
			t.Fatalf("first incarnation lost frame %d", i+1)
		}
	}

	// Phase 2: the receiver dies; frames 6..8 pile up in the window and
	// start retransmitting into the void.
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i <= 8; i++ {
		sendSmall(t, a, 1, uint64(i))
	}
	base := getA("retransmits")
	waitFor(t, 3*time.Second, func() bool { return getA("retransmits") > base })

	// Phase 3: a fresh incarnation on a fresh port; SetPeerAddr is the
	// out-of-band restart signal and the in-flight window must re-route.
	b2, err := New(Config{Self: 1, Nodes: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	b2.SetPeerAddr(0, a.Addr().String())
	a.SetPeerAddr(1, b2.Addr().String())

	// Drain until the retransmit machinery goes quiet (the 300ms lull is
	// past the backoff cap, so an unacked frame would have reappeared).
	// Frames 6..8 must arrive; frames 1..5 may legally reappear once —
	// only if the first incarnation died before its acks flushed, in
	// which case the transport never saw them delivered — but nothing is
	// ever handed to the new incarnation twice.
	got := make(map[uint64]int)
	for {
		p := b2.BlockingRecv(300 * time.Millisecond)
		if p == nil {
			if got[6] > 0 && got[7] > 0 && got[8] > 0 {
				break
			}
			t.Fatalf("restarted receiver stalled holding %v", got)
		}
		if p.Seq < 1 || p.Seq > 8 {
			t.Fatalf("restarted receiver got unknown frame %d", p.Seq)
		}
		got[p.Seq]++
	}
	for s, n := range got {
		if n != 1 {
			t.Fatalf("frame %d delivered %d times to one incarnation", s, n)
		}
	}
	// The sender's window drains against the new incarnation: Close has
	// nothing left to abandon.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if lost := a.LostFrames(); lost != 0 {
		t.Fatalf("LostFrames = %d after restart recovery, want 0", lost)
	}
}

// flightSize reports frames still unacknowledged (in flight or queued)
// toward rank.
func flightSize(e *Endpoint, rank int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ps := e.peers[rank]; ps != nil {
		return len(ps.flight) + len(ps.pending)
	}
	return 0
}

// drainAll discards everything rank receives until its endpoint closes —
// the RTO tests only care about the sender's estimator.
func drainAll(e *Endpoint) {
	go func() {
		for e.BlockingRecv(time.Second) != nil {
		}
	}()
}

// TestAdaptiveRTOLowRTT pins the fast half of the adaptive timeout: on a
// loopback-fast path, measured ack round trips must pull the retransmit
// timeout well below the fixed 20ms base — down to the adaptive floor —
// so a lost datagram is recovered in milliseconds instead of sitting out
// the base timeout.
func TestAdaptiveRTOLowRTT(t *testing.T) {
	a, err := New(Config{Self: 0, Nodes: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Self: 1, Nodes: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeerAddr(1, b.Addr().String())
	b.SetPeerAddr(0, a.Addr().String())
	drainAll(b)

	if got := a.PeerRTO(1); got != defaultRTO {
		t.Fatalf("PeerRTO before any traffic = %v, want the %v base", got, defaultRTO)
	}
	// Bursts of ackEvery frames force prompt acks; each ack completes the
	// one outstanding round-trip sample and the next burst arms a fresh
	// one. Loopback samples are microseconds, so a handful suffice.
	deadline := time.Now().Add(10 * time.Second)
	for a.PeerRTO(1) >= 10*time.Millisecond {
		if time.Now().After(deadline) {
			t.Fatalf("PeerRTO stuck at %v: loopback round trips never adapted it below 10ms", a.PeerRTO(1))
		}
		for i := 0; i < ackEvery; i++ {
			sendSmall(t, a, 1, uint64(i))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := a.PeerRTO(1); got < minAdaptiveRTO {
		t.Fatalf("PeerRTO = %v, below the %v adaptive floor", got, minAdaptiveRTO)
	}
}

// TestAdaptiveRTOHighRTTNoSpuriousRetransmit pins the slow half: with
// ~50ms of injected symmetric latency the true round trip exceeds the
// 20ms base timeout, so a fixed-RTO sender would retransmit every frame
// whose ack is merely still in flight. After warmup traffic has fed the
// estimator, a settled stream must complete with zero further
// retransmits.
func TestAdaptiveRTOHighRTTNoSpuriousRetransmit(t *testing.T) {
	delay := &ChaosParams{Delay: 25 * time.Millisecond}
	a, err := New(Config{Self: 0, Nodes: 2, Listen: "127.0.0.1:0", Chaos: delay})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Self: 1, Nodes: 2, Listen: "127.0.0.1:0", Chaos: delay})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeerAddr(1, b.Addr().String())
	b.SetPeerAddr(0, a.Addr().String())
	drainAll(b)
	get := counters(a)

	// Warmup: the first frames necessarily retransmit (20ms base vs ~50ms
	// true RTT) until a sample lands; wait for the estimator to clear the
	// round trip.
	sendSmall(t, a, 1, 1)
	waitFor(t, 10*time.Second, func() bool { return a.PeerRTO(1) > 50*time.Millisecond })
	waitFor(t, 10*time.Second, func() bool { return flightSize(a, 1) == 0 })

	base := get("retransmits")
	const n = 20
	for i := 2; i <= n+1; i++ {
		sendSmall(t, a, 1, uint64(i))
	}
	waitFor(t, 10*time.Second, func() bool { return flightSize(a, 1) == 0 })
	if got := get("retransmits"); got != base {
		t.Fatalf("%d spurious retransmits on a settled high-RTT stream (timeout %v)", got-base, a.PeerRTO(1))
	}
}

// TestAIMDWindowLossBurstRecovery pins the congestion response of the
// retransmit window: a loss burst (the peer goes silent) halves the
// live window once per burst — repeat retransmits of the same fenced
// frames cost nothing more — down to the 16-frame floor, and clean ack
// rounds grow it back one frame per fully retired window, with the
// trajectory visible in the window_size gauge.
func TestAIMDWindowLossBurstRecovery(t *testing.T) {
	peer := newSilentPeer(t)
	e, err := New(Config{
		Self: 0, Nodes: 2, Listen: "127.0.0.1:0",
		Peers:  map[int]string{1: peer.addr()},
		Window: 64, RTO: 30 * time.Millisecond, RTOMax: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	get := counters(e)
	if w := e.PeerWindow(1); w != 64 {
		t.Fatalf("fresh peer window = %d, want the configured 64", w)
	}
	if g := get("window_size"); g != 64 {
		t.Fatalf("window_size gauge = %d before any loss, want 64", g)
	}

	// Burst 1: frame 1 goes unacked; its first retransmit is fresh loss
	// evidence and halves the window exactly once no matter how many
	// times the frame is resent afterwards.
	sendSmall(t, e, 1, 1)
	b, _ := peer.read(time.Second)
	if b == nil {
		t.Fatal("endpoint transmitted nothing")
	}
	session := binary.LittleEndian.Uint64(b[8:16])
	waitFor(t, 2*time.Second, func() bool { return e.PeerWindow(1) == 32 })
	base := get("retransmits")
	waitFor(t, 2*time.Second, func() bool { return get("retransmits") > base+1 })
	if w := e.PeerWindow(1); w != 32 {
		t.Fatalf("repeat retransmits of one burst re-halved the window: %d, want 32", w)
	}

	// Bursts 2 and 3: each frame first sent after a cut that then goes
	// unacked is a new loss event — 32 halves to 16, and the floor holds
	// from there.
	sendSmall(t, e, 1, 2)
	waitFor(t, 2*time.Second, func() bool { return e.PeerWindow(1) == 16 })
	sendSmall(t, e, 1, 3)
	base = get("retransmits")
	waitFor(t, 2*time.Second, func() bool { return get("retransmits") > base+2 })
	if w := e.PeerWindow(1); w != 16 {
		t.Fatalf("window fell through the floor: %d, want 16", w)
	}

	// Recovery: the peer acks the burst, then a full clean window of
	// retired frames earns one frame of additive growth.
	ack := mkAck(t, 1, 7777, session, 3, 0)
	if _, err := peer.conn.WriteToUDP(ack, e.Addr().(*net.UDPAddr)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return flightSize(e, 1) == 0 })
	for s := uint64(4); s < 20; s++ {
		sendSmall(t, e, 1, s)
	}
	ack = mkAck(t, 1, 7777, session, 19, 0)
	if _, err := peer.conn.WriteToUDP(ack, e.Addr().(*net.UDPAddr)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return e.PeerWindow(1) == 17 })
	if g := get("window_size"); g != 17 {
		t.Fatalf("window_size gauge = %d after regrowth, want 17", g)
	}
}

// waitFor polls cond at the tick cadence until it holds or the deadline
// fails the test.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(tickPeriod)
	}
}
