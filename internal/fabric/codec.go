package fabric

import (
	"encoding/binary"
	"fmt"
	"io"

	"pioman/internal/wire"
)

// Wire format of one framed packet, little-endian throughout:
//
//	u32  frame length (bytes that follow, i.e. header + payload)
//	u8   codec version
//	u8   packet kind
//	u8   flags (bit0: payload present — distinguishes nil from 0-byte)
//	u8   reserved
//	i32  src
//	i32  dst
//	i64  tag      (collective tags are negative)
//	u64  seq
//	u64  msg id
//	i64  offset   (rendezvous chunk position)
//	i64  wire len (modeled size; kept so both backends charge alike)
//	u32  payload length
//	...  payload bytes
//
// The frame length prefix lets a stream transport (tcpfab) delimit packets
// without touching the header, and the version byte leaves room to evolve
// the header without breaking mixed-version clusters mid-upgrade.
const (
	codecVersion = 1

	flagPayload = 1 << 0

	// headerBytes is the fixed-size portion after the length prefix.
	headerBytes = 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4

	// MaxFrameBytes bounds one frame (128 MiB): a decoder reading a
	// corrupt or hostile length prefix must not attempt an unbounded
	// allocation.
	MaxFrameBytes = 128 << 20

	// MaxPayloadBytes is the largest payload one frame can carry.
	// Transports should refuse bigger payloads in Send, where the caller
	// still gets a synchronous error.
	MaxPayloadBytes = MaxFrameBytes - headerBytes
)

// EncodedSize returns the full frame size of p, length prefix included.
func EncodedSize(p *wire.Packet) int {
	return 4 + headerBytes + len(p.Payload)
}

// AppendPacket appends p's frame to dst and returns the extended slice.
// It panics on a payload too large for one frame: every encode path must
// refuse such packets on the sender, because past 4 GiB the u32 length
// prefix wraps and desyncs the whole stream, and even below that the
// receiver's MaxFrameBytes guard would kill the connection. WritePacket
// performs the same check up front and reports it as an error.
func AppendPacket(dst []byte, p *wire.Packet) []byte {
	if len(p.Payload) > MaxPayloadBytes {
		panic(fmt.Sprintf("fabric: %d-byte payload exceeds frame limit %d", len(p.Payload), MaxPayloadBytes))
	}
	var flags byte
	if p.Payload != nil {
		flags = flagPayload
	}
	wireLen := p.WireLen
	if wireLen == 0 {
		wireLen = len(p.Payload)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(headerBytes+len(p.Payload)))
	dst = append(dst, codecVersion, byte(p.Kind), flags, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(p.Src)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(p.Dst)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(p.Tag)))
	dst = binary.LittleEndian.AppendUint64(dst, p.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, p.MsgID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(p.Offset)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(wireLen)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Payload)))
	return append(dst, p.Payload...)
}

// EncodePacket returns p as one self-delimiting frame.
func EncodePacket(p *wire.Packet) []byte {
	return AppendPacket(make([]byte, 0, EncodedSize(p)), p)
}

// DecodePacket parses one complete frame produced by EncodePacket.
func DecodePacket(b []byte) (*wire.Packet, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("fabric: frame truncated at length prefix (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("fabric: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	if uint32(len(b)-4) != n {
		return nil, fmt.Errorf("fabric: frame length %d does not match %d trailing bytes", n, len(b)-4)
	}
	return decodeBody(b[4:])
}

// decodeBody parses a frame body (everything after the length prefix).
func decodeBody(b []byte) (*wire.Packet, error) {
	if len(b) < headerBytes {
		return nil, fmt.Errorf("fabric: frame body of %d bytes below header size %d", len(b), headerBytes)
	}
	if v := b[0]; v != codecVersion {
		return nil, fmt.Errorf("fabric: unknown codec version %d", v)
	}
	p := &wire.Packet{
		Kind:    wire.PacketKind(b[1]),
		Src:     int(int32(binary.LittleEndian.Uint32(b[4:]))),
		Dst:     int(int32(binary.LittleEndian.Uint32(b[8:]))),
		Tag:     int(int64(binary.LittleEndian.Uint64(b[12:]))),
		Seq:     binary.LittleEndian.Uint64(b[20:]),
		MsgID:   binary.LittleEndian.Uint64(b[28:]),
		Offset:  int(int64(binary.LittleEndian.Uint64(b[36:]))),
		WireLen: int(int64(binary.LittleEndian.Uint64(b[44:]))),
	}
	flags := b[2]
	plen := binary.LittleEndian.Uint32(b[52:])
	if uint32(len(b)-headerBytes) != plen {
		return nil, fmt.Errorf("fabric: payload length %d does not match %d trailing bytes", plen, len(b)-headerBytes)
	}
	if flags&flagPayload != 0 {
		p.Payload = make([]byte, plen)
		copy(p.Payload, b[headerBytes:])
	} else if plen != 0 {
		return nil, fmt.Errorf("fabric: nil-payload frame carries %d payload bytes", plen)
	}
	return p, nil
}

// WritePacket writes p as one frame to w. Oversized payloads are refused
// as an error before reaching AppendPacket's panic: a stream writer wants
// a rejected send, not a crashed process.
func WritePacket(w io.Writer, p *wire.Packet) error {
	if len(p.Payload) > MaxPayloadBytes {
		return fmt.Errorf("fabric: %d-byte payload exceeds frame limit %d", len(p.Payload), MaxPayloadBytes)
	}
	_, err := w.Write(EncodePacket(p))
	return err
}

// ReadPacket reads exactly one frame from r. io.EOF at a frame boundary is
// returned as io.EOF; a partial frame yields io.ErrUnexpectedEOF.
func ReadPacket(r io.Reader) (*wire.Packet, error) {
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(pre[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("fabric: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return decodeBody(body)
}
