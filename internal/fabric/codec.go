package fabric

import (
	"encoding/binary"
	"fmt"
	"io"

	"pioman/internal/fabric/bufpool"
	"pioman/internal/wire"
)

// Wire format of one framed packet, little-endian throughout:
//
//	u32  frame length (bytes that follow, i.e. header + payload)
//	u8   codec version
//	u8   packet kind
//	u8   flags (bit0: payload present — distinguishes nil from 0-byte)
//	u8   reserved
//	i32  src
//	i32  dst
//	i64  tag      (collective tags are negative)
//	u64  seq
//	u64  msg id
//	i64  offset   (rendezvous chunk position)
//	i64  wire len (modeled size; kept so both backends charge alike)
//	u32  payload length
//	...  payload bytes
//
// The frame length prefix lets a stream transport (tcpfab) delimit packets
// without touching the header, and the version byte leaves room to evolve
// the header without breaking mixed-version clusters mid-upgrade.
const (
	codecVersion = 1

	flagPayload = 1 << 0

	// headerBytes is the fixed-size portion after the length prefix.
	headerBytes = 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4

	// MaxFrameBytes bounds one frame (128 MiB): a decoder reading a
	// corrupt or hostile length prefix must not attempt an unbounded
	// allocation.
	MaxFrameBytes = 128 << 20

	// MaxPayloadBytes is the largest payload one frame can carry.
	// Transports should refuse bigger payloads in Send, where the caller
	// still gets a synchronous error.
	MaxPayloadBytes = MaxFrameBytes - headerBytes

	// HeaderScratchBytes is the scratch a ReadPacketPooled caller
	// provides: length prefix plus fixed header. One buffer per read
	// loop keeps the steady-state read path allocation-free.
	HeaderScratchBytes = 4 + headerBytes
)

// EncodedSize returns the full frame size of p, length prefix included.
func EncodedSize(p *wire.Packet) int {
	return 4 + headerBytes + len(p.Payload)
}

// AppendPacket appends p's frame to dst and returns the extended slice.
// It panics on a payload too large for one frame: every encode path must
// refuse such packets on the sender, because past 4 GiB the u32 length
// prefix wraps and desyncs the whole stream, and even below that the
// receiver's MaxFrameBytes guard would kill the connection. WritePacket
// performs the same check up front and reports it as an error.
func AppendPacket(dst []byte, p *wire.Packet) []byte {
	if len(p.Payload) > MaxPayloadBytes {
		panic(fmt.Sprintf("fabric: %d-byte payload exceeds frame limit %d", len(p.Payload), MaxPayloadBytes))
	}
	var flags byte
	if p.Payload != nil {
		flags = flagPayload
	}
	wireLen := p.WireLen
	if wireLen == 0 {
		wireLen = len(p.Payload)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(headerBytes+len(p.Payload)))
	dst = append(dst, codecVersion, byte(p.Kind), flags, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(p.Src)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(p.Dst)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(p.Tag)))
	dst = binary.LittleEndian.AppendUint64(dst, p.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, p.MsgID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(p.Offset)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(wireLen)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Payload)))
	return append(dst, p.Payload...)
}

// EncodePacket returns p as one self-delimiting frame.
func EncodePacket(p *wire.Packet) []byte {
	return AppendPacket(make([]byte, 0, EncodedSize(p)), p)
}

// checkFrame validates a complete frame's length prefix against the
// frame bound and the actual byte count — the shared gate of
// DecodePacket and DecodePacketPooled, so the two documented-identical
// entry points cannot drift in what they accept.
func checkFrame(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("fabric: frame truncated at length prefix (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n > MaxFrameBytes {
		return fmt.Errorf("fabric: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	if uint32(len(b)-4) != n {
		return fmt.Errorf("fabric: frame length %d does not match %d trailing bytes", n, len(b)-4)
	}
	return nil
}

// DecodePacket parses one complete frame produced by EncodePacket.
func DecodePacket(b []byte) (*wire.Packet, error) {
	if err := checkFrame(b); err != nil {
		return nil, err
	}
	p := &wire.Packet{}
	if err := decodeBody(b[4:], p, func(n int) []byte { return make([]byte, n) }); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodePacketPooled is DecodePacket drawing from the recycling pools:
// the packet struct comes from the packet freelist and the payload from
// the fabric buffer pool (Packet.Pooled is set accordingly). The caller
// chain must hand the result to ReleasePacket once done — transports use
// this on their receive paths, and the engine releases after copying the
// payload out, which is what keeps the steady-state eager path free of
// per-packet allocation.
func DecodePacketPooled(b []byte) (*wire.Packet, error) {
	if err := checkFrame(b); err != nil {
		return nil, err
	}
	p := GetPacket()
	if err := decodeBody(b[4:], p, bufpool.Get); err != nil {
		ReleasePacket(p)
		return nil, err
	}
	p.Pooled = p.Payload != nil
	return p, nil
}

// parseHeader fills p's header fields from hdr (exactly the fixed-size
// portion after the length prefix) and returns the declared payload
// length and whether a payload is present (the nil-vs-empty flag).
func parseHeader(hdr []byte, p *wire.Packet) (plen uint32, withPayload bool, err error) {
	if v := hdr[0]; v != codecVersion {
		return 0, false, fmt.Errorf("fabric: unknown codec version %d", v)
	}
	p.Kind = wire.PacketKind(hdr[1])
	p.Src = int(int32(binary.LittleEndian.Uint32(hdr[4:])))
	p.Dst = int(int32(binary.LittleEndian.Uint32(hdr[8:])))
	p.Tag = int(int64(binary.LittleEndian.Uint64(hdr[12:])))
	p.Seq = binary.LittleEndian.Uint64(hdr[20:])
	p.MsgID = binary.LittleEndian.Uint64(hdr[28:])
	p.Offset = int(int64(binary.LittleEndian.Uint64(hdr[36:])))
	p.WireLen = int(int64(binary.LittleEndian.Uint64(hdr[44:])))
	plen = binary.LittleEndian.Uint32(hdr[52:])
	withPayload = hdr[2]&flagPayload != 0
	if !withPayload && plen != 0 {
		return 0, false, fmt.Errorf("fabric: nil-payload frame carries %d payload bytes", plen)
	}
	return plen, withPayload, nil
}

// decodeBody parses a frame body (everything after the length prefix)
// into dst, whose payload buffer is provided by alloc(n). A nil return
// from parseHeader leaves dst half-filled; callers discard it on error.
func decodeBody(b []byte, dst *wire.Packet, alloc func(int) []byte) error {
	if len(b) < headerBytes {
		return fmt.Errorf("fabric: frame body of %d bytes below header size %d", len(b), headerBytes)
	}
	plen, withPayload, err := parseHeader(b[:headerBytes], dst)
	if err != nil {
		return err
	}
	if uint32(len(b)-headerBytes) != plen {
		return fmt.Errorf("fabric: payload length %d does not match %d trailing bytes", plen, len(b)-headerBytes)
	}
	if withPayload {
		dst.Payload = alloc(int(plen))
		copy(dst.Payload, b[headerBytes:])
	}
	return nil
}

// DecodeHeaderPooled parses the length prefix plus fixed header at the
// start of b — at least HeaderScratchBytes — into a packet from the
// freelist whose payload buffer is allocated from the fabric buffer pool
// but left unfilled. It is the entry point for event-driven stream
// decoders that cannot block in io.ReadFull: the caller consumes
// HeaderScratchBytes from its staging window, fills p.Payload from the
// stream as bytes arrive, and owns the packet (ReleasePacket on error or
// after delivery). frameLen is the full frame size including the
// prefix, so the caller knows where the next frame starts. Validation
// matches ReadPacketPooled exactly.
func DecodeHeaderPooled(b []byte) (p *wire.Packet, frameLen int, err error) {
	if len(b) < HeaderScratchBytes {
		return nil, 0, fmt.Errorf("fabric: header scratch of %d bytes, need %d", len(b), HeaderScratchBytes)
	}
	n := binary.LittleEndian.Uint32(b)
	if n > MaxFrameBytes {
		return nil, 0, fmt.Errorf("fabric: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	if n < headerBytes {
		return nil, 0, fmt.Errorf("fabric: frame body of %d bytes below header size %d", n, headerBytes)
	}
	p = GetPacket()
	plen, withPayload, err := parseHeader(b[4:4+headerBytes], p)
	if err != nil {
		ReleasePacket(p)
		return nil, 0, err
	}
	if n-headerBytes != plen {
		ReleasePacket(p)
		return nil, 0, fmt.Errorf("fabric: payload length %d does not match %d trailing bytes", plen, n-headerBytes)
	}
	if withPayload {
		p.Payload = bufpool.Get(int(plen))
		p.Pooled = true
	}
	return p, 4 + int(n), nil
}

// WritePacket writes p as one frame to w. Oversized payloads are refused
// as an error before reaching AppendPacket's panic: a stream writer wants
// a rejected send, not a crashed process.
func WritePacket(w io.Writer, p *wire.Packet) error {
	if len(p.Payload) > MaxPayloadBytes {
		return fmt.Errorf("fabric: %d-byte payload exceeds frame limit %d", len(p.Payload), MaxPayloadBytes)
	}
	_, err := w.Write(EncodePacket(p))
	return err
}

// ReadPacket reads exactly one frame from r. io.EOF at a frame boundary is
// returned as io.EOF; a partial frame yields io.ErrUnexpectedEOF.
func ReadPacket(r io.Reader) (*wire.Packet, error) {
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(pre[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("fabric: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	p := &wire.Packet{}
	if err := decodeBody(body, p, func(n int) []byte { return make([]byte, n) }); err != nil {
		return nil, err
	}
	return p, nil
}

// ReadPacketPooled reads exactly one frame from r like ReadPacket, but
// with the zero-allocation layout the stream transports' read loops
// want: the fixed-size header lands in hdr — caller-owned scratch of at
// least HeaderScratchBytes, reused across calls — and the payload is
// read directly into a buffer from the fabric buffer pool, so a frame
// crosses from the stream into the engine with exactly one copy no
// matter how large it is (no intermediate whole-frame buffer). The
// packet struct comes from the packet freelist; the consumer returns
// everything via ReleasePacket. EOF semantics match ReadPacket.
func ReadPacketPooled(r io.Reader, hdr []byte) (*wire.Packet, error) {
	if len(hdr) < HeaderScratchBytes {
		hdr = make([]byte, HeaderScratchBytes)
	}
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("fabric: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	if n < headerBytes {
		return nil, fmt.Errorf("fabric: frame body of %d bytes below header size %d", n, headerBytes)
	}
	if _, err := io.ReadFull(r, hdr[4:4+headerBytes]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	p := GetPacket()
	plen, withPayload, err := parseHeader(hdr[4:4+headerBytes], p)
	if err != nil {
		ReleasePacket(p)
		return nil, err
	}
	if n-headerBytes != plen {
		ReleasePacket(p)
		return nil, fmt.Errorf("fabric: payload length %d does not match %d trailing bytes", plen, n-headerBytes)
	}
	if withPayload {
		p.Payload = bufpool.Get(int(plen))
		p.Pooled = true
		if _, err := io.ReadFull(r, p.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			ReleasePacket(p)
			return nil, err
		}
	}
	return p, nil
}
