// Package fabric abstracts where the engine's packets travel. The paper's
// NewMadeleine drives real NICs through per-rail drivers (MX, SHM, TCP);
// this layer gives the reproduction the same pluggability: internal/nic
// submits to a fabric.Endpoint without knowing whether the bytes cross the
// in-process wire simulator (fabric/simfab, the cost-model testbed) or a
// real operating-system transport (fabric/tcpfab, TCP sockets between OS
// processes).
//
// The contract both backends must satisfy is pinned down by the shared
// conformance suite in fabric/conformance, which every backend's tests run.
package fabric

import (
	"errors"
	"time"

	"pioman/internal/telemetry"
	"pioman/internal/wire"
)

// ErrClosed is returned by Send on a closed endpoint.
var ErrClosed = errors.New("fabric: endpoint closed")

// Endpoint is one node's attachment to a fabric: the submission and
// reception port a nic.Driver drives.
//
// Delivery semantics required of every implementation:
//
//   - Delivery is reliable and complete: every sent packet arrives at its
//     destination exactly once (no loss, no duplication, no corruption).
//   - Per-pair order is NOT guaranteed: the simulator's fragmenting wire
//     interleaves small packets past bulk transfers. Receivers that need
//     ordered streams reorder by sequence number, as internal/core does.
//     (tcpfab happens to deliver per-sender FIFO; code must not rely on
//     more than the portable contract.)
//   - Payload bytes and every header field of wire.Packet arrive intact.
//   - Send never blocks on the receiver making progress (backends buffer).
//   - After Close, Send returns ErrClosed and blocked receivers wake with
//     a nil packet once drained.
type Endpoint interface {
	// Self returns this endpoint's node id.
	Self() int
	// Nodes returns the number of nodes the fabric spans.
	Nodes() int
	// Send injects p toward p.Dst. It returns promptly; delivery is
	// asynchronous. A zero p.WireLen is defaulted to len(p.Payload).
	Send(p *wire.Packet) error
	// Poll returns the next packet visible at this endpoint, or nil.
	Poll() *wire.Packet
	// PollBatch drains up to len(into) visible packets into the prefix of
	// into in one call and returns how many it wrote — the amortized
	// receive path: one call (one inbox lock round trip, one ring scan)
	// per *batch* instead of per frame. Semantics match a loop of Poll
	// exactly: the returned run is the same packets in the same order
	// Poll would have produced, so wherever a backend delivers per-sender
	// FIFO through Poll, PollBatch preserves it, and interleaving a Poll
	// between PollBatch calls is legal. Zero means nothing visible (or an
	// empty into). Ownership of each returned packet passes to the caller
	// under the same inbound-buffer rule as Poll (see docs/FABRIC.md);
	// entries of into past the returned count are untouched. Backends
	// without a native batch drain delegate to BatchFromPoll.
	PollBatch(into []*wire.Packet) int
	// BlockingRecv waits up to timeout for a packet, sleeping rather than
	// spinning. Nil means timeout or endpoint closed (after draining).
	BlockingRecv(timeout time.Duration) *wire.Packet
	// Pending reports whether any packet is known to be queued for this
	// endpoint. The simulator also counts packets still in flight on the
	// modeled wire; a real transport only sees what it has already read
	// off its sockets, so a false return does not rule out bytes in a
	// kernel buffer. Pollers must therefore treat false as "nothing
	// visible right now", not "nothing outstanding", and rely on
	// Poll/BlockingRecv — whose wakeups real transports do drive from
	// socket arrival — to observe late packets.
	Pending() bool
	// Backlog reports how far into the future the transmit path toward
	// dst is occupied — zero when idle. Real transports with their own
	// flow control report zero; the simulator reports the modeled link
	// horizon, which is what gates the optimizer's feed-on-idle policy.
	Backlog(dst int) time.Duration
	// NextSeq allocates a sequence number unique on this endpoint's
	// outgoing streams.
	NextSeq() uint64
	// Close shuts the endpoint down: blocked receivers wake, subsequent
	// Sends fail with ErrClosed. Close is idempotent.
	Close() error
}

// BatchFromPoll is the default PollBatch adapter: it drains ep one Poll
// at a time until into is full or nothing more is visible. Backends with
// no batched inbox implement PollBatch as a one-line delegation to it
// and still satisfy the contract — the amortization is simply absent,
// not faked. The in-tree backends all batch natively; a wrapper that
// decorates Poll (a tracing shim, say) should delegate its PollBatch
// here so the decoration applies to every drained packet, rather than
// inheriting the inner endpoint's batch and bypassing Poll entirely.
func BatchFromPoll(ep Endpoint, into []*wire.Packet) int {
	n := 0
	for n < len(into) {
		p := ep.Poll()
		if p == nil {
			break
		}
		into[n] = p
		n++
	}
	return n
}

// LossCounter is an optional Endpoint capability: transports that can
// lose frames after Send accepted them (a stream that fails under queued
// writes, a bounded Close drain) expose the running count here. Together
// with nic.Stats.SendErrs — the synchronous rejections — it is the full
// loss signal the engine's multirail failover watches when deciding to
// re-stripe a rendezvous onto a surviving rail. Counts are an upper
// bound: a frame counted lost may still have reached the peer.
type LossCounter interface {
	// LostFrames returns the number of frames accepted and later lost.
	LostFrames() uint64
}

// PayloadLimiter is an optional Endpoint capability: transports that
// frame payloads with a hard size ceiling (everything built on this
// package's codec) report it here, so a world can reject a rail whose
// configured MTU could never fit a frame at construction time instead of
// failing mid-rendezvous.
type PayloadLimiter interface {
	// MaxPayload returns the largest payload one Send can carry.
	MaxPayload() int
}

// MetricSource is an optional Endpoint capability: transports whose
// internals keep health counters beyond the portable contract — udpfab's
// retransmit/ack/duplicate/reject accounting is the motivating case —
// register them here. The nic driver forwards its own RegisterMetrics
// call to the endpoint, so a rail's transport-level series appear under
// the same "node<rank>.rail.<name>" prefix as the driver's portable
// counters, with no per-backend wiring above the fabric layer.
type MetricSource interface {
	// RegisterMetrics registers the transport's internal counters with
	// reg under dot-separated names below prefix.
	RegisterMetrics(reg *telemetry.Registry, prefix string)
}

// Fabric hands out the endpoints of a communication domain. In-process
// backends (simfab, tcpfab.Local) serve every rank; a distributed backend
// serves only the local process's rank and errors for remote ones.
type Fabric interface {
	// Nodes returns the number of nodes the fabric spans.
	Nodes() int
	// Endpoint returns rank's attachment point.
	Endpoint(rank int) (Endpoint, error)
	// Close releases every endpoint and the underlying transport.
	Close() error
}
