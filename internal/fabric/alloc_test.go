package fabric_test

import (
	"bytes"
	"testing"

	"pioman/internal/fabric"
	"pioman/internal/fabric/shmfab"
	"pioman/internal/nic"
	"pioman/internal/telemetry"
	"pioman/internal/testenv"
	"pioman/internal/wire"
)

// Allocation-regression tests for the zero-allocation hot path: the
// steady-state eager path — encode, carry, decode, release — must stay
// at ≤2 allocations per operation, and in practice at zero once the
// pools are warm. A regression here silently re-taxes every packet the
// engine moves, which is exactly the engine overhead the paper's design
// exists to avoid, so the budget is asserted in-tree.

// maxSteadyStateAllocs is the budget the hot paths must stay within.
const maxSteadyStateAllocs = 2

// skipUnderRace skips alloc-count assertions under the race detector,
// whose instrumentation allocates on its own schedule.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if testenv.RaceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
}

// TestCodecRoundTripAllocs pins the codec itself: appending a frame into
// a reused buffer and decoding it through the pools, releasing the
// result, allocates nothing in steady state.
func TestCodecRoundTripAllocs(t *testing.T) {
	skipUnderRace(t)
	payload := make([]byte, 4<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	p := &wire.Packet{
		Kind: wire.PktEager, Src: 0, Dst: 1, Tag: 7, Seq: 1,
		Payload: payload,
	}
	enc := make([]byte, 0, fabric.EncodedSize(p))
	var decodeErr error
	roundTrip := func() {
		enc = fabric.AppendPacket(enc[:0], p)
		q, err := fabric.DecodePacketPooled(enc)
		if err != nil {
			decodeErr = err
			return
		}
		fabric.ReleasePacket(q)
	}
	roundTrip() // warm the pools outside the measured window
	allocs := testing.AllocsPerRun(200, roundTrip)
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	if allocs > maxSteadyStateAllocs {
		t.Errorf("codec 4KiB encode/decode round trip allocates %.1f/op, budget %d", allocs, maxSteadyStateAllocs)
	}
}

// TestPollBatchDrainAllocs pins the batched receive path: flooding a
// burst of small frames across real shared-memory rings and draining
// them through PollBatch into a reused batch buffer — the engine's
// steady-state receive shape — must stay within the same budget as the
// per-frame path. The batch buffer is allocated once and never grown by
// the drain; a regression here re-taxes exactly the message-storm
// traffic batching exists to cheapen.
func TestPollBatchDrainAllocs(t *testing.T) {
	skipUnderRace(t)
	f, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep0, err := f.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := f.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i*5 + 3)
	}
	const burst = 16
	batch := make([]*wire.Packet, burst)
	var seq uint64
	var fail string
	burstDrain := func() {
		for i := 0; i < burst; i++ {
			seq++
			out := fabric.GetPacket()
			out.Kind, out.Src, out.Dst, out.Seq, out.Payload = wire.PktEager, 0, 1, seq, payload
			if err := ep0.Send(out); err != nil {
				fail = "send: " + err.Error()
				return
			}
			fabric.ReleasePacket(out) // shmfab captures sends
		}
		got := 0
		for got < burst {
			n := ep1.PollBatch(batch[:burst-got])
			for _, p := range batch[:n] {
				if !bytes.Equal(p.Payload, payload) {
					fail = "payload corrupted in batched drain"
					return
				}
				fabric.ReleasePacket(p)
			}
			got += n
		}
	}
	for i := 0; i < 10; i++ { // warm rings, scratch buffers and pools
		burstDrain()
	}
	allocs := testing.AllocsPerRun(200, burstDrain)
	if fail != "" {
		t.Fatal(fail)
	}
	// The budget is per burst of 16 frames, not per frame: the batched
	// path must amortize, not just match, the per-frame ceiling.
	if allocs > maxSteadyStateAllocs {
		t.Errorf("16-frame PollBatch burst drain allocates %.1f/op, budget %d", allocs, maxSteadyStateAllocs)
	}
}

// TestEagerRoundTripAllocs pins the full transport hot path: a 4 KiB
// eager packet crossing real shared-memory rings and coming back —
// serialize, ring slots, pooled decode, echo, release — within the
// steady-state allocation budget. This is the per-message engine
// overhead every eager exchange pays, asserted end to end at the
// fabric layer.
func TestEagerRoundTripAllocs(t *testing.T) {
	skipUnderRace(t)
	f, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep0, err := f.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := f.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4<<10)
	for i := range payload {
		payload[i] = byte(i*7 + 13)
	}
	var seq uint64
	var fail string
	roundTrip := func() {
		seq++
		out := fabric.GetPacket()
		out.Kind, out.Src, out.Dst, out.Seq, out.Payload = wire.PktEager, 0, 1, seq, payload
		if err := ep0.Send(out); err != nil {
			fail = "send: " + err.Error()
			return
		}
		fabric.ReleasePacket(out) // shmfab captures sends
		var in *wire.Packet
		for in == nil {
			in = ep1.Poll()
		}
		if !bytes.Equal(in.Payload, payload) {
			fail = "ping payload corrupted"
			return
		}
		// Echo it straight back out of the pooled inbound buffer.
		back := fabric.GetPacket()
		back.Kind, back.Src, back.Dst, back.Seq, back.Payload = wire.PktEager, 1, 0, seq, in.Payload
		if err := ep1.Send(back); err != nil {
			fail = "echo: " + err.Error()
			return
		}
		fabric.ReleasePacket(back)
		fabric.ReleasePacket(in)
		var pong *wire.Packet
		for pong == nil {
			pong = ep0.Poll()
		}
		if !bytes.Equal(pong.Payload, payload) {
			fail = "pong payload corrupted"
			return
		}
		fabric.ReleasePacket(pong)
	}
	for i := 0; i < 10; i++ { // warm rings, scratch buffers and pools
		roundTrip()
	}
	allocs := testing.AllocsPerRun(200, roundTrip)
	if fail != "" {
		t.Fatal(fail)
	}
	if allocs > maxSteadyStateAllocs {
		t.Errorf("4KiB eager round trip allocates %.1f/op, budget %d", allocs, maxSteadyStateAllocs)
	}
}

// TestMeteredDriverDrainAllocs pins the telemetry-on receive path at the
// driver layer: the same burst-and-drain shape as TestPollBatchDrainAllocs
// but through nic.Driver with a telemetry registry attached — every
// counter registered and the batch-occupancy histogram observing each
// drain. Metric recording is atomic adds on pre-registered handles, so
// the budget is unchanged from the unmetered path; a regression here
// means observability started taxing the hot path it exists to watch.
func TestMeteredDriverDrainAllocs(t *testing.T) {
	skipUnderRace(t)
	f, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep0, err := f.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := f.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	send := nic.New(nic.ShmParams(), ep0)
	recv := nic.New(nic.ShmParams(), ep1)
	reg := telemetry.NewRegistry()
	send.RegisterMetrics(reg, "node0.rail.shm")
	recv.RegisterMetrics(reg, "node1.rail.shm")

	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i*3 + 1)
	}
	const burst = 16
	batch := make([]*wire.Packet, burst)
	var seq uint64
	burstDrain := func() {
		for i := 0; i < burst; i++ {
			seq++
			send.SendEager(nic.Header{Src: 0, Dst: 1, Tag: 7, Seq: seq}, payload)
		}
		got := 0
		for got < burst {
			n := recv.PollBatch(batch[:burst-got])
			for _, p := range batch[:n] {
				fabric.ReleasePacket(p)
			}
			got += n
		}
	}
	for i := 0; i < 10; i++ { // warm rings, scratch buffers and pools
		burstDrain()
	}
	allocs := testing.AllocsPerRun(200, burstDrain)
	if allocs > maxSteadyStateAllocs {
		t.Errorf("metered 16-frame driver drain allocates %.1f/op, budget %d", allocs, maxSteadyStateAllocs)
	}
	snap := reg.Snapshot()
	if occ := snap.Get("node1.rail.shm.batch_occupancy"); occ == nil || occ.Hist.Count == 0 {
		t.Fatal("occupancy histogram recorded nothing — metering detached, assertion vacuous")
	}
	if sent := snap.Value("node0.rail.shm.eager_sent"); sent == 0 {
		t.Fatal("eager_sent counter recorded nothing")
	}
}
