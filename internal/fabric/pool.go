package fabric

import (
	"sync"

	"pioman/internal/fabric/bufpool"
	"pioman/internal/wire"
)

// The packet freelist pairs with bufpool to make the steady-state
// receive path allocation-free: transports decode inbound frames into
// pooled *wire.Packet structs (GetPacket) carrying pooled payload
// buffers (bufpool.Get, flagged by Packet.Pooled), and the engine hands
// both back through ReleasePacket once the payload has been copied into
// its final destination. The ownership rule is written down in
// docs/FABRIC.md ("Inbound buffer ownership") and docs/PERF.md.

// pktPool recycles packet structs. Every packet in the pool is zeroed,
// so GetPacket hands out clean state without paying a per-Get wipe.
var pktPool = sync.Pool{New: func() any { return new(wire.Packet) }}

// GetPacket returns a zeroed packet from the packet freelist. Producers
// that fully relinquish their packets — transports decoding inbound
// frames, drivers whose endpoint captures sends (see SendCapturer) —
// draw from here so the structs circulate instead of churning the GC.
func GetPacket() *wire.Packet {
	return pktPool.Get().(*wire.Packet)
}

// ReleasePacket returns p to the packet freelist and, when p.Pooled is
// set, its payload buffer to the fabric buffer pool. The caller must be
// the packet's final owner and must drop every alias of p and p.Payload
// first: after release the same memory may carry an unrelated stream's
// frame. Releasing nil is a no-op. Packets that are never released are
// reclaimed by the GC as before — release is an optimization with an
// aliasing obligation, not a correctness requirement for consumers that
// keep payloads around (tests, tracing tools).
func ReleasePacket(p *wire.Packet) {
	if p == nil {
		return
	}
	if p.Pooled {
		bufpool.Put(p.Payload)
	}
	*p = wire.Packet{}
	pktPool.Put(p)
}

// CapturePacket returns a pooled deep copy of p: a packet-freelist
// struct whose payload (when present) lives in a fabric buffer-pool
// borrow, flagged Pooled so the consumer's ReleasePacket recycles it.
// Transports use it on their self-delivery paths, where Send must stop
// aliasing the caller's packet and payload before inboxing (the
// capture-before-return rule of docs/FABRIC.md) — one shared helper so
// the capture discipline cannot drift between backends.
func CapturePacket(p *wire.Packet) *wire.Packet {
	q := GetPacket()
	*q = *p
	q.Pooled = false
	if p.Payload != nil {
		q.Payload = bufpool.Get(len(p.Payload))
		copy(q.Payload, p.Payload)
		q.Pooled = true
	}
	return q
}

// SendCapturer is an optional Endpoint capability: SendCaptures reports
// that Send fully captures every packet before returning — serializing
// or copying it, retaining neither the *wire.Packet nor its Payload
// slice. Submitters may then recycle the packet struct the moment Send
// returns (the nic driver returns outbound packets to the packet
// freelist). The wire-simulator backend deliberately does not implement
// it: the modeled wire delivers the very packet object the sender
// injected, so its receiver is the one who may release it.
type SendCapturer interface {
	// SendCaptures reports whether Send captures packets fully before
	// returning.
	SendCaptures() bool
}
