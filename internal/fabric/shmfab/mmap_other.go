//go:build !unix

package shmfab

import (
	"errors"
	"os"
)

// errNoMmap reports that this platform has no shared-mapping support wired
// up; shmfab is a unix transport.
var errNoMmap = errors.New("shmfab: shared file mappings are only supported on unix platforms")

// mmapFile is the non-unix stub: shmfab cannot run here.
func mmapFile(*os.File, int) ([]byte, error) { return nil, errNoMmap }

// munmapFile is the non-unix stub.
func munmapFile([]byte) error { return errNoMmap }
