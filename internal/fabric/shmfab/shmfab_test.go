package shmfab_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/fabric"
	"pioman/internal/fabric/conformance"
	"pioman/internal/fabric/shmfab"
	"pioman/internal/mpi"
	"pioman/internal/nic"
	"pioman/internal/topo"
	"pioman/internal/wire"
)

func TestEndpointConformance(t *testing.T) {
	conformance.RunEndpoint(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := shmfab.NewLocal(nodes, t.TempDir())
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	})
}

// shmWorld builds a 2-node engine world whose rail runs over real mmap'd
// shared-memory rings.
func shmWorld(t *testing.T) *mpi.World {
	t.Helper()
	l, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	rail := nic.ShmParams()
	return mpi.NewWorld(mpi.Config{
		Nodes:          2,
		Machine:        topo.Machine{Sockets: 1, CoresPerSocket: 2},
		Mode:           core.Multithreaded,
		OffloadEager:   true,
		EnableBlocking: true,
		MX:             rail,
		Fabrics:        map[string]fabric.Fabric{rail.Name: l},
	})
}

func TestWorldConformance(t *testing.T) {
	conformance.RunWorld(t, shmWorld)
}

// TestChaosSoakConformance drives the engine-level soak workload over
// real shared-memory rings wrapped in a seeded Chaos injecting frame
// reordering and latency — the disorder the portable contract permits.
// (Drop/duplicate/corrupt would violate the delivery contract the rings
// guarantee; udpfab's soak injects those below its reliability
// sublayer instead.)
func TestChaosSoakConformance(t *testing.T) {
	seed := conformance.ChaosSeed(t)
	conformance.RunChaosSoak(t, func(t *testing.T) *mpi.World {
		l, err := shmfab.NewLocal(2, t.TempDir())
		if err != nil {
			t.Fatalf("NewLocal: %v", err)
		}
		chaotic := conformance.NewChaos(l, conformance.ChaosConfig{
			Seed:         seed,
			Reorder:      0.15,
			ReorderDelay: time.Millisecond,
			Latency:      200 * time.Microsecond,
		})
		rail := nic.ShmParams()
		return mpi.NewWorld(mpi.Config{
			Nodes:          2,
			Machine:        topo.Machine{Sockets: 1, CoresPerSocket: 2},
			Mode:           core.Multithreaded,
			OffloadEager:   true,
			EnableBlocking: true,
			MX:             rail,
			Fabrics:        map[string]fabric.Fabric{rail.Name: chaotic},
		})
	})
}

// TestBatchOrderingConformance runs the batched-receive ordering case:
// two concurrent senders, a PollBatch-only receiver, per-sender FIFO and
// no loss or duplication across batch boundaries.
func TestBatchOrderingConformance(t *testing.T) {
	conformance.RunBatchOrdering(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := shmfab.NewLocal(nodes, t.TempDir())
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	}, true) // SPSC rings: strict per-sender FIFO
}

// TestRailFailoverConformance runs the two-rail loss-injection case: the
// secondary rail accepts and drops every frame, and rendezvous transfers
// must still complete over the surviving shared-memory rail.
func TestRailFailoverConformance(t *testing.T) {
	conformance.RunRailFailover(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := shmfab.NewLocal(nodes, t.TempDir())
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	})
}

// TestSelfHealingConformance runs the acked-replay regression: the
// shared-memory rail is killed right after the rendezvous was submitted,
// and the transfer must complete via engine-level replay once it
// revives.
func TestSelfHealingConformance(t *testing.T) {
	conformance.RunSelfHealing(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := shmfab.NewLocal(nodes, t.TempDir())
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	})
}

// TestPeerDeathConformance runs the bounded-failure contract: one rank
// of a three-rank shared-memory world dies mid-rendezvous, pending
// requests toward it must complete with core.ErrPeerDead within the
// PeerDeadline and the survivors keep communicating.
func TestPeerDeathConformance(t *testing.T) {
	conformance.RunPeerDeath(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := shmfab.NewLocal(nodes, t.TempDir())
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	})
}

// TestTelemetrySnapshotConformance runs the observability case: a bonded
// world with a metrics registry attached, the lossy rail's failure
// visible in a registry snapshot under its documented name.
func TestTelemetrySnapshotConformance(t *testing.T) {
	conformance.RunTelemetrySnapshot(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := shmfab.NewLocal(nodes, t.TempDir())
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	})
}

// TestWorldShmRailReplacesSimulated pins the wiring the ROADMAP asked
// for: an in-process world keeps its simulated MX inter-node rail while
// the "shm" rail key swaps the simulated intra-node channel for real
// shmfab rings. Self-directed traffic prefers the shm rail (the engine's
// rail selection), so this exchange crosses genuine mmap'd memory.
func TestWorldShmRailReplacesSimulated(t *testing.T) {
	l, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := mpi.DefaultMultithreaded(2)
	cfg.Machine = topo.Machine{Sockets: 1, CoresPerSocket: 2}
	cfg.SHM = nic.ShmParams()
	cfg.Fabrics = map[string]fabric.Fabric{"shm": l}
	w := mpi.NewWorld(cfg)
	defer w.Close()
	msg := bytes.Repeat([]byte{0x5A}, 8<<10)
	w.RunAll(func(p *mpi.Proc) {
		// Self traffic rides the shm rail; cross-rank the simulated MX.
		self := p.Rank()
		r := p.Irecv(self, 42, make([]byte, len(msg)))
		p.Send(self, 42, msg)
		p.WaitRecv(r)
		peer := 1 - self
		if self == 0 {
			p.Send(peer, 7, msg)
		} else {
			buf := make([]byte, len(msg))
			if n, _ := p.Recv(peer, 7, buf); n != len(msg) || !bytes.Equal(buf, msg) {
				t.Errorf("cross-rank message corrupted (n=%d)", n)
			}
		}
	})
}

// TestStrictFIFO pins the stronger ordering shmfab provides beyond the
// portable contract: one sender's ring delivers in exact send order.
func TestStrictFIFO(t *testing.T) {
	l, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src, _ := l.Endpoint(0)
	dst, _ := l.Endpoint(1)
	const n = 500
	for i := 1; i <= n; i++ {
		size := 8
		if i%9 == 0 {
			size = 32 << 10 // spans multiple slots
		}
		if err := src.Send(&wire.Packet{
			Kind: wire.PktEager, Src: 0, Dst: 1, Seq: uint64(i),
			Payload: bytes.Repeat([]byte{byte(i)}, size),
		}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 1; i <= n; i++ {
		p := dst.BlockingRecv(30 * time.Second)
		if p == nil {
			t.Fatalf("ring dried up at packet %d", i)
		}
		if p.Seq != uint64(i) {
			t.Fatalf("packet %d arrived as %d: ring reordered", i, p.Seq)
		}
	}
}

// TestCreationRace drives both sides of every ring pair into creating the
// same files at once, in both orders — the mmap analog of tcpfab's
// simultaneous connect. Whoever loses the O_EXCL race must attach to the
// winner's file and the pair must still deliver in both directions.
func TestCreationRace(t *testing.T) {
	const rounds = 25
	for round := 0; round < rounds; round++ {
		dir := t.TempDir()
		var eps [2]*shmfab.Endpoint
		var errs [2]error
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		for rank := 0; rank < 2; rank++ {
			go func(rank int) {
				defer wg.Done()
				<-start
				eps[rank], errs[rank] = shmfab.New(shmfab.Config{Self: rank, Nodes: 2, Dir: dir})
			}(rank)
		}
		close(start)
		wg.Wait()
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("round %d: rank %d lost the creation race fatally: %v", round, rank, err)
			}
		}
		for rank, ep := range eps {
			if err := ep.Send(&wire.Packet{
				Kind: wire.PktEager, Src: rank, Dst: 1 - rank, Seq: uint64(round + 1),
				Payload: []byte{byte(rank)},
			}); err != nil {
				t.Fatalf("round %d: send from %d: %v", round, rank, err)
			}
		}
		for rank, ep := range eps {
			p := ep.BlockingRecv(30 * time.Second)
			if p == nil {
				t.Fatalf("round %d: rank %d lost a packet to the creation race", round, rank)
			}
			if want := byte(1 - rank); len(p.Payload) != 1 || p.Payload[0] != want {
				t.Fatalf("round %d: rank %d received %v, want [%d]", round, rank, p.Payload, want)
			}
		}
		eps[0].Close()
		eps[1].Close()
	}
}

// TestSendNeverBlocksOnStalledReceiver pins the Endpoint contract that
// Send buffers rather than blocking on the receiver making progress: a
// sender must be able to queue far more than the ring holds (1 MiB per
// direction by default) while the receiver polls nothing at all.
func TestSendNeverBlocksOnStalledReceiver(t *testing.T) {
	l, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src, _ := l.Endpoint(0)
	dst, _ := l.Endpoint(1)
	const n = 256
	payload := bytes.Repeat([]byte{0xAB}, 64<<10) // 16 MiB total, 16× the ring
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := src.Send(&wire.Packet{
				Kind: wire.PktData, Src: 0, Dst: 1, Seq: uint64(i + 1), Payload: payload,
			}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Send blocked against a receiver that was not draining")
	}
	for i := 0; i < n; i++ {
		if p := dst.BlockingRecv(30 * time.Second); p == nil {
			t.Fatalf("drain stalled at packet %d/%d", i, n)
		}
	}
}

// TestFrameLargerThanRing: a single frame bigger than the whole ring must
// stream through as the consumer drains — fixed slots bound the window,
// not the message size.
func TestFrameLargerThanRing(t *testing.T) {
	l, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src, _ := l.Endpoint(0)
	dst, _ := l.Endpoint(1)
	payload := make([]byte, 4<<20) // 4 MiB, 4× the default ring window
	for i := range payload {
		payload[i] = byte(i*3 + 1)
	}
	if err := src.Send(&wire.Packet{Kind: wire.PktData, Src: 0, Dst: 1, Seq: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	p := dst.BlockingRecv(30 * time.Second)
	if p == nil {
		t.Fatal("oversized frame never arrived")
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatal("oversized frame corrupted in transit")
	}
}

// TestSendCapturesPayloadBeforeReturn: the engine may complete an eager
// request — telling the application its buffer is reusable — the moment
// Send returns, so Send must capture the payload bytes before returning.
func TestSendCapturesPayloadBeforeReturn(t *testing.T) {
	l, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src, _ := l.Endpoint(0)
	dst, _ := l.Endpoint(1)
	const n = 100
	buf := make([]byte, 32<<10)
	for i := 0; i < n; i++ {
		for j := range buf {
			buf[j] = byte(i)
		}
		if err := src.Send(&wire.Packet{
			Kind: wire.PktEager, Src: 0, Dst: 1, Seq: uint64(i + 1), Payload: buf,
		}); err != nil {
			t.Fatal(err)
		}
		for j := range buf { // legal reuse the moment Send returned
			buf[j] = 0xFF
		}
	}
	for i := 0; i < n; i++ {
		p := dst.BlockingRecv(30 * time.Second)
		if p == nil {
			t.Fatalf("packet %d lost", i)
		}
		want := byte(p.Seq - 1)
		for j, b := range p.Payload {
			if b != want {
				t.Fatalf("packet seq %d byte %d corrupted to %#x by post-Send buffer reuse", p.Seq, j, b)
			}
		}
	}
}

// TestSelfSendCapturesPayload: the capture-before-return rule holds on
// the self-delivery path too — it skips the ring serialization, so it
// must copy explicitly (the engine routes rank-local traffic here when
// the shm rail serves an in-process world).
func TestSelfSendCapturesPayload(t *testing.T) {
	l, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ep, _ := l.Endpoint(0)
	buf := []byte("before")
	if err := ep.Send(&wire.Packet{Kind: wire.PktEager, Src: 0, Dst: 0, Payload: buf}); err != nil {
		t.Fatal(err)
	}
	copy(buf, "after!") // legal reuse the moment Send returned
	p := ep.BlockingRecv(30 * time.Second)
	if p == nil {
		t.Fatal("self-send lost")
	}
	if string(p.Payload) != "before" {
		t.Fatalf("self-delivered payload aliased the caller's buffer: %q", p.Payload)
	}
}

// TestCloseDrainsQueuedSends: a packet accepted by Send before Close must
// still reach the peer — Close drains the pump queues into the rings
// before unmapping, and the receiver's own mapping outlives the sender.
func TestCloseDrainsQueuedSends(t *testing.T) {
	for round := 0; round < 20; round++ {
		dir := t.TempDir()
		ep0, err := shmfab.New(shmfab.Config{Self: 0, Nodes: 2, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		ep1, err := shmfab.New(shmfab.Config{Self: 1, Nodes: 2, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		const n = 50
		for i := 1; i <= n; i++ {
			if err := ep1.Send(&wire.Packet{
				Kind: wire.PktEager, Src: 1, Dst: 0, Seq: uint64(i),
				Payload: bytes.Repeat([]byte{byte(i)}, 4<<10),
			}); err != nil {
				t.Fatalf("round %d: send %d: %v", round, i, err)
			}
		}
		ep1.Close() // immediately: frames may still sit in the pump queue
		for i := 1; i <= n; i++ {
			if p := ep0.BlockingRecv(30 * time.Second); p == nil {
				t.Fatalf("round %d: packet %d/%d discarded by Close instead of drained", round, i, n)
			}
		}
		if lost := ep1.LostFrames(); lost != 0 {
			t.Fatalf("round %d: %d frames counted lost on a clean drain", round, lost)
		}
		ep0.Close()
	}
}

// TestSendRefusesOversizedPayload: a payload the codec cannot frame is a
// synchronous Send error, and the refusal leaves the ring healthy.
func TestSendRefusesOversizedPayload(t *testing.T) {
	l, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src, _ := l.Endpoint(0)
	dst, _ := l.Endpoint(1)
	if err := src.Send(&wire.Packet{
		Kind: wire.PktData, Src: 0, Dst: 1, Payload: make([]byte, fabric.MaxPayloadBytes+1),
	}); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if err := src.Send(&wire.Packet{Kind: wire.PktEager, Src: 0, Dst: 1, Payload: []byte("ok")}); err != nil {
		t.Fatalf("send after refusal: %v", err)
	}
	if p := dst.BlockingRecv(30 * time.Second); p == nil || string(p.Payload) != "ok" {
		t.Fatalf("ring damaged by refused send: %+v", p)
	}
}

// TestSourceAuthenticity: packets are stamped with the ring's producer
// identity, so a frame cannot impersonate another rank.
func TestSourceAuthenticity(t *testing.T) {
	l, err := shmfab.NewLocal(3, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src, _ := l.Endpoint(2)
	dst, _ := l.Endpoint(0)
	src.Send(&wire.Packet{Kind: wire.PktEager, Src: 1 /* lie */, Dst: 0, Payload: []byte("x")})
	p := dst.BlockingRecv(30 * time.Second)
	if p == nil {
		t.Fatal("packet lost")
	}
	if p.Src != 2 {
		t.Fatalf("packet claims src %d, ring identity is 2", p.Src)
	}
}

// TestGeometryMismatchRejected: the two sides of a ring must agree on its
// geometry; an endpoint configured differently fails to attach instead of
// silently corrupting the stream.
func TestGeometryMismatchRejected(t *testing.T) {
	// Attacher smaller than creator: caught by header validation.
	dir := t.TempDir()
	ep0, err := shmfab.New(shmfab.Config{Self: 0, Nodes: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer ep0.Close()
	if _, err := shmfab.New(shmfab.Config{Self: 1, Nodes: 2, Dir: dir, Slots: 16, SlotBytes: 1024}); err == nil {
		t.Fatal("endpoint with mismatched ring geometry attached anyway")
	}

	// Attacher larger than creator: the file never reaches the expected
	// size, which must be diagnosed as a geometry mismatch promptly —
	// not misreported as a dead creator after the full attach timeout.
	dir2 := t.TempDir()
	small, err := shmfab.New(shmfab.Config{Self: 0, Nodes: 2, Dir: dir2, Slots: 16, SlotBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	start := time.Now()
	_, err = shmfab.New(shmfab.Config{Self: 1, Nodes: 2, Dir: dir2}) // defaults: larger
	if err == nil {
		t.Fatal("endpoint with larger ring geometry attached anyway")
	}
	if !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("larger-attacher mismatch misdiagnosed: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("geometry mismatch took %v to diagnose (burned the attach timeout)", d)
	}
}

// TestDuplicateRankRejected: a second attachment claiming an
// already-held rank would put two producers on SPSC rings (silent stream
// desync); it must fail loudly at construction instead.
func TestDuplicateRankRejected(t *testing.T) {
	dir := t.TempDir()
	ep0, err := shmfab.New(shmfab.Config{Self: 0, Nodes: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer ep0.Close()
	if _, err := shmfab.New(shmfab.Config{Self: 0, Nodes: 2, Dir: dir}); err == nil {
		t.Fatal("second endpoint attached as an already-claimed rank")
	}
	// A different rank still attaches fine.
	ep1, err := shmfab.New(shmfab.Config{Self: 1, Nodes: 2, Dir: dir})
	if err != nil {
		t.Fatalf("legitimate rank refused after a duplicate was rejected: %v", err)
	}
	ep1.Close()
}

// TestAbandonedInitTimesOut: a ring file left behind by a creator that
// died before initializing it (size zero, no magic) must fail attachment
// with a clear error, not hang forever.
func TestAbandonedInitTimesOut(t *testing.T) {
	dir := t.TempDir()
	// Fake a dead creator: rank 1's inbound ring exists but is empty.
	if err := os.WriteFile(filepath.Join(dir, "ring-0-to-1"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := shmfab.New(shmfab.Config{Self: 1, Nodes: 2, Dir: dir, AttachTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("attached to an abandoned ring file")
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("attachment hung %v before failing", d)
	}
}
