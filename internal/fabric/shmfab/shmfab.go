// Package shmfab is the shared-memory transport backend for the fabric
// layer: ranks on the same host exchange packets through mmap'd files,
// one fixed-slot single-producer/single-consumer ring per directed pair
// of ranks. It replaces the *simulated* SHM rail (nic.SHMParams over the
// wire simulator) with real inter-process shared memory — the paper's
// intra-node channel of §4.3 — when ranks genuinely share a host.
//
// Topology is a full mesh over a shared directory: rank i sends to rank j
// through the ring file "ring-i-to-j". Every endpoint creates or attaches
// all of its rings, in both roles, at construction; the creation race
// (both sides of a pair arriving at once, in either order) is resolved by
// an O_EXCL create whose winner initializes the file and publishes a
// magic word last, while the loser waits for that magic and validates the
// geometry. A directory must serve exactly one run: reusing one across
// runs would splice a new process into a half-consumed ring, so launchers
// (cmd/pingpong -shm, Local) use a fresh directory per run.
//
// Frames are the fabric codec's length-prefixed packets, chunked across
// consecutive slots as a byte stream, so a frame may be both far larger
// than a slot and larger than the whole ring — the producer streams it
// through as the consumer drains. Like tcpfab, Send never blocks on the
// receiver: it serializes the frame before returning (the engine may
// reuse the payload buffer the moment Send returns) and either writes the
// slots directly when the ring has room or hands the bytes to a per-ring
// pump goroutine with an unbounded overflow buffer. Ring waits busy-wait
// with adaptive backoff — a short yield-spin phase that escalates into
// sleeping — and the spin phase is disabled by Config.NoBusyPoll, the
// transport-level counterpart of mpi.Config.NoIdlePolling for hosts
// without cores to burn.
//
// Delivery within one ring is strict per-sender FIFO; across senders no
// order is promised — exactly the portable fabric.Endpoint contract, see
// docs/FABRIC.md. The conformance suite (fabric/conformance) runs against
// this backend in shmfab_test.go.
package shmfab

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/sync2"
	"pioman/internal/wire"
)

const (
	// defaultSlots is the per-ring slot count when Config leaves it zero.
	defaultSlots = 128
	// defaultSlotBytes is the per-slot data capacity when Config leaves
	// it zero. 128 slots × 8 KiB gives each direction a 1 MiB window,
	// several eager messages deep, before the pump path engages.
	defaultSlotBytes = 8 << 10
	// defaultAttachTimeout bounds how long an endpoint waits for a peer
	// mid-creation before declaring the ring file abandoned.
	defaultAttachTimeout = 10 * time.Second
	// closeDrainTimeout bounds how long Close lets pumps flush queued
	// frames into a ring whose consumer has stopped draining.
	closeDrainTimeout = 5 * time.Second
	// maxRecycledBuf caps the serialization buffer capacity kept for
	// reuse between sends, so one burst does not pin its peak forever.
	maxRecycledBuf = 256 << 10
)

// Config describes one process's attachment to a shared-memory fabric.
type Config struct {
	// Self is this endpoint's rank.
	Self int
	// Nodes is the cluster size.
	Nodes int
	// Dir is the shared directory holding the ring files. Every rank of
	// one run must use the same directory, and the directory must be
	// fresh for the run (stale rings from a previous run would be
	// spliced into this one mid-state).
	Dir string
	// Slots is the per-ring slot count (default 128). All ranks must
	// agree; attachment fails otherwise.
	Slots int
	// SlotBytes is the per-slot data capacity (default 8 KiB, rounded up
	// to a multiple of 8). All ranks must agree.
	SlotBytes int
	// NoBusyPoll disables the yield-spin phase of ring waits: waiters go
	// straight to sleeping backoff. Set it when the engine runs with
	// mpi.Config.NoIdlePolling — on a host without spare cores, spinning
	// on a ring only starves the peer of the CPU it needs to make the
	// awaited progress.
	NoBusyPoll bool
	// AttachTimeout bounds waiting for a peer that won the creation race
	// but has not finished initializing a ring (default 10s).
	AttachTimeout time.Duration
}

// Endpoint is one process's port on a shared-memory fabric. It implements
// fabric.Endpoint.
type Endpoint struct {
	self, nodes int
	cfg         Config

	out []*outRing // producer side, indexed by destination rank; nil at self
	in  []*inRing  // consumer side, indexed by source rank; nil at self

	seq  atomic.Uint64
	lost atomic.Uint64 // frames accepted by Send, then abandoned at Close

	state         atomic.Int32 // 0 open, 1 closed
	drainDeadline atomic.Int64 // unix nanos; set by Close before pumps drain
	inbox         inbox
	wwg           sync.WaitGroup // pump goroutines

	// recvMu serializes the consumer role: ring cursors and frame
	// reassembly are single-consumer state, and Close unmaps under this
	// lock so no scanner can touch freed memory.
	recvMu sync.Mutex
	rr     int // round-robin scan start, for fairness across senders
	// decRun is the reusable run buffer decodeFrames batches one ring's
	// decoded packets in before publishing them to the inbox under a
	// single lock; guarded by recvMu like the rest of the consumer state.
	decRun []*wire.Packet
}

// outRing owns the producer half of one ring: Send serializes frames
// under mu — directly into the ring when it has room, otherwise into an
// unbounded overflow buffer drained by a pump goroutine. The pumping flag
// keeps the single-producer invariant: the direct path writes slots only
// while the pump is parked with an empty buffer.
type outRing struct {
	r    *ring
	mu   sync.Mutex
	cond *sync.Cond

	buf     []byte // serialized frames awaiting the pump
	nframes int    // frames in buf, for loss accounting
	scratch []byte // recycled serialization buffer for the direct path
	pumping bool   // pump holds bytes it has not finished writing
	closing bool   // endpoint closing: drain, then stop
}

// inRing owns the consumer half of one ring plus the byte-stream decoder
// that reassembles frames spanning slots.
type inRing struct {
	r    *ring
	dec  []byte // bytes drained from slots, not yet a complete frame
	dead bool   // decoder hit a corrupt frame; ring abandoned
}

// inbox is the arrival queue shared by ring deliveries and self-sends.
// The head index (rather than re-slicing pkts[1:]) keeps the backing
// array's full capacity across push/pop cycles, so steady-state traffic
// recycles one array instead of reallocating per packet.
type inbox struct {
	mu   sync.Mutex
	pkts []*wire.Packet
	head int
}

func (ib *inbox) push(p *wire.Packet) {
	ib.mu.Lock()
	ib.pkts, ib.head = sync2.CompactQueue(ib.pkts, ib.head)
	ib.pkts = append(ib.pkts, p)
	ib.mu.Unlock()
}

// pushRun appends a whole decoded run under one lock acquisition — the
// producer half of the batched receive path: a scan pass that decoded k
// frames from one ring visit costs the inbox one lock round trip, not k.
func (ib *inbox) pushRun(run []*wire.Packet) {
	if len(run) == 0 {
		return
	}
	ib.mu.Lock()
	ib.pkts, ib.head = sync2.PushRun(ib.pkts, ib.head, run)
	ib.mu.Unlock()
}

func (ib *inbox) pop() *wire.Packet {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.head == len(ib.pkts) {
		return nil
	}
	p := ib.pkts[ib.head]
	ib.pkts[ib.head] = nil // the consumer owns it now; drop the queue's alias
	ib.head++
	if ib.head == len(ib.pkts) {
		ib.pkts, ib.head = ib.pkts[:0], 0
	}
	return p
}

// popRun pops up to len(into) queued packets in FIFO order under one
// lock acquisition — the consumer half of the batched receive path.
func (ib *inbox) popRun(into []*wire.Packet) int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	var n int
	ib.pkts, ib.head, n = sync2.PopRun(ib.pkts, ib.head, into)
	return n
}

func (ib *inbox) empty() bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.head == len(ib.pkts)
}

// ringPath names the ring file carrying src's traffic toward dst.
func ringPath(dir string, src, dst int) string {
	return filepath.Join(dir, fmt.Sprintf("ring-%d-to-%d", src, dst))
}

// claimRank marks rank as attached in dir, failing loudly when something
// already holds that rank so two producers can never share a ring.
func claimRank(dir string, rank int) error {
	path := filepath.Join(dir, fmt.Sprintf("rank-%d.claim", rank))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return fmt.Errorf("shmfab: rank %d is already attached to %s — duplicate rank flag, or a stale directory from an earlier run (each run needs a fresh directory)", rank, dir)
		}
		return fmt.Errorf("shmfab: claim rank %d: %w", rank, err)
	}
	fmt.Fprintf(f, "%d\n", os.Getpid()) // who holds it, for debugging
	f.Close()
	return nil
}

// New opens rank cfg.Self's endpoint on the shared directory, creating or
// attaching every ring it produces into and consumes from. It returns
// once all rings are mapped; a peer need not have started yet — whoever
// arrives first creates the pair's files.
func New(cfg Config) (*Endpoint, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("shmfab: cluster needs at least one node")
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Nodes {
		return nil, fmt.Errorf("shmfab: rank %d outside cluster of %d", cfg.Self, cfg.Nodes)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("shmfab: Config.Dir is required")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = defaultSlots
	}
	if cfg.SlotBytes <= 0 {
		cfg.SlotBytes = defaultSlotBytes
	}
	cfg.SlotBytes = (cfg.SlotBytes + 7) &^ 7 // keep slot seq fields 8-aligned
	if cfg.AttachTimeout <= 0 {
		cfg.AttachTimeout = defaultAttachTimeout
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("shmfab: ring directory: %w", err)
	}
	// Claim the rank before touching any ring: a second process attaching
	// as the same rank would put two producers on SPSC rings, desyncing
	// the byte stream into silent loss. The claim is an O_EXCL file, the
	// same guard shape as the ring-creation race, and it is deliberately
	// never removed — a directory serves exactly one run, so a stale
	// claim means a stale directory.
	if err := claimRank(cfg.Dir, cfg.Self); err != nil {
		return nil, err
	}
	e := &Endpoint{
		self:  cfg.Self,
		nodes: cfg.Nodes,
		cfg:   cfg,
		out:   make([]*outRing, cfg.Nodes),
		in:    make([]*inRing, cfg.Nodes),
	}
	deadline := time.Now().Add(cfg.AttachTimeout)
	for peer := 0; peer < cfg.Nodes; peer++ {
		if peer == cfg.Self {
			continue
		}
		or, err := openRing(ringPath(cfg.Dir, cfg.Self, peer), cfg.Slots, cfg.SlotBytes, deadline)
		if err != nil {
			e.abortNew()
			return nil, err
		}
		o := &outRing{r: or}
		o.cond = sync.NewCond(&o.mu)
		e.out[peer] = o
		ir, err := openRing(ringPath(cfg.Dir, peer, cfg.Self), cfg.Slots, cfg.SlotBytes, deadline)
		if err != nil {
			e.abortNew()
			return nil, err
		}
		e.in[peer] = &inRing{r: ir}
	}
	for peer := 0; peer < cfg.Nodes; peer++ {
		if o := e.out[peer]; o != nil {
			e.wwg.Add(1)
			go e.pumpLoop(o)
		}
	}
	return e, nil
}

// Self implements fabric.Endpoint.
func (e *Endpoint) Self() int { return e.self }

// Nodes implements fabric.Endpoint.
func (e *Endpoint) Nodes() int { return e.nodes }

// NextSeq implements fabric.Endpoint. Sequence numbers only need to be
// unique per origin endpoint: receivers order per-sender streams.
func (e *Endpoint) NextSeq() uint64 { return e.seq.Add(1) }

// Backlog implements fabric.Endpoint: ring occupancy is the transport's
// own flow control, the submission gate is always open.
func (e *Endpoint) Backlog(int) time.Duration { return 0 }

// SendCaptures implements fabric.SendCapturer: Send serializes cross-rank
// packets and copies self-deliveries before returning, so the caller may
// recycle the packet struct immediately.
func (e *Endpoint) SendCaptures() bool { return true }

// LostFrames counts frames Send accepted that were later abandoned by
// Close's bounded drain against a ring whose consumer stopped draining.
// These cannot surface as Send errors — they fail after Send returned —
// so a nonzero count here is the loss signal to watch. The count is an
// upper bound: aborting a partially written batch counts every frame the
// batch held.
func (e *Endpoint) LostFrames() uint64 { return e.lost.Load() }

// MaxPayload implements fabric.PayloadLimiter: the codec's frame ceiling
// bounds what one Send can carry.
func (e *Endpoint) MaxPayload() int { return fabric.MaxPayloadBytes }

func (e *Endpoint) closed() bool { return e.state.Load() != 0 }

// Send implements fabric.Endpoint. The frame is serialized before Send
// returns — the engine may reuse the payload buffer immediately — and is
// written straight into the ring when it has room, deferred to the pump
// otherwise. Send never waits on the consumer.
func (e *Endpoint) Send(p *wire.Packet) error {
	if e.closed() {
		return fabric.ErrClosed
	}
	if p.Dst < 0 || p.Dst >= e.nodes {
		return fmt.Errorf("shmfab: send to rank %d outside cluster of %d", p.Dst, e.nodes)
	}
	if p.WireLen <= 0 {
		p.WireLen = len(p.Payload)
	}
	// Refuse synchronously what the codec cannot frame; self-delivery
	// skips the codec but is held to the same limit so a payload does not
	// pass rank-local testing only to fail on its first cross-rank trip.
	if len(p.Payload) > fabric.MaxPayloadBytes {
		return fmt.Errorf("shmfab: %d-byte payload exceeds frame limit %d", len(p.Payload), fabric.MaxPayloadBytes)
	}
	if p.Dst == e.self {
		// Self-delivery skips the ring but not the capture rule: the
		// engine may reuse the payload buffer the moment Send returns, so
		// the packet must stop aliasing it before entering the inbox.
		// The copy lives in pooled storage like any decoded arrival, so
		// the consumer's ReleasePacket recycles it the same way.
		e.inbox.push(fabric.CapturePacket(p))
		return nil
	}
	o := e.out[p.Dst]
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closing {
		return fabric.ErrClosed
	}
	// Direct path: with the pump parked and nothing queued ahead of us,
	// write the slots here and skip the handoff latency — but only when
	// the whole frame fits right now, because this path must not wait.
	if !o.pumping && len(o.buf) == 0 {
		enc := fabric.AppendPacket(o.scratch[:0], p)
		if o.r.freeSlots() >= slotsFor(len(enc), o.r.slotBytes) {
			for off := 0; off < len(enc); off += o.r.slotBytes {
				end := off + o.r.slotBytes
				if end > len(enc) {
					end = len(enc)
				}
				o.r.writeSlot(enc[off:end])
			}
			if cap(enc) <= maxRecycledBuf {
				o.scratch = enc[:0]
			}
			return nil
		}
		// No room: the bytes are already serialized, queue them as the
		// pump's next batch.
		if cap(enc) > cap(o.buf) {
			o.buf = enc
			o.scratch = nil
		} else {
			o.buf = append(o.buf, enc...)
		}
		o.nframes++
		o.cond.Signal()
		return nil
	}
	o.buf = fabric.AppendPacket(o.buf, p)
	o.nframes++
	o.cond.Signal()
	return nil
}

// slotsFor returns how many slots a frame of n bytes occupies.
func slotsFor(n, slotBytes int) int {
	return (n + slotBytes - 1) / slotBytes
}

// pumpLoop drains o's overflow buffer into the ring until Close has both
// requested shutdown and the buffer is empty (or the drain deadline has
// passed). While the pump holds bytes, the direct path stays disabled, so
// the ring keeps a single producer and frames keep their send order.
func (e *Endpoint) pumpLoop(o *outRing) {
	defer e.wwg.Done()
	for {
		o.mu.Lock()
		for len(o.buf) == 0 && !o.closing {
			o.pumping = false
			o.cond.Wait()
		}
		if len(o.buf) == 0 {
			o.pumping = false
			o.mu.Unlock()
			return // closing and drained
		}
		batch, n := o.buf, o.nframes
		o.buf, o.nframes = nil, 0
		o.pumping = true
		o.mu.Unlock()
		if !e.pumpBatch(o, batch) {
			// Drain deadline passed with the consumer stuck: this batch
			// (possibly partially written) is abandoned, plus whatever
			// raced into the buffer behind it.
			e.lost.Add(uint64(n))
			o.mu.Lock()
			e.lost.Add(uint64(o.nframes))
			o.buf, o.nframes = nil, 0
			o.pumping = false
			o.mu.Unlock()
			return
		}
	}
}

// pumpBatch streams one serialized batch into the ring, waiting for the
// consumer with adaptive backoff. It reports false when the endpoint is
// closing and the drain deadline has passed before the batch fit.
func (e *Endpoint) pumpBatch(o *outRing, batch []byte) bool {
	b := backoff{noBusy: e.cfg.NoBusyPoll}
	for off := 0; off < len(batch); {
		// The backoff re-arms once per stall, not per slot: while the
		// consumer keeps pace the slot loop runs straight through with no
		// backoff bookkeeping at all.
		if o.r.freeSlots() == 0 {
			for o.r.freeSlots() == 0 {
				if dl := e.drainDeadline.Load(); dl != 0 && time.Now().UnixNano() > dl {
					return false
				}
				b.pause()
			}
			b.reset()
		}
		end := off + o.r.slotBytes
		if end > len(batch) {
			end = len(batch)
		}
		o.r.writeSlot(batch[off:end])
		off = end
	}
	return true
}

// Poll implements fabric.Endpoint: it drains whatever slots the senders
// have published, reassembles complete frames into the inbox, and returns
// the oldest packet, or nil when nothing has fully arrived.
func (e *Endpoint) Poll() *wire.Packet {
	if p := e.inbox.pop(); p != nil {
		return p
	}
	e.recvMu.Lock()
	if !e.closed() { // after Close the rings are unmapped; inbox only
		e.scanRings()
		e.inbox.pushRun(e.decRun)
		e.clearDecRun()
	}
	e.recvMu.Unlock()
	return e.inbox.pop()
}

// PollBatch implements fabric.Endpoint natively: one inbox visit hands
// out a FIFO run of already-decoded packets, and only an empty inbox
// pays a ring scan — which consumes every published slot across all
// rings in a single pass, reassembling however many frames they held, so
// a 64-byte message storm costs one scan and one lock round trip per
// batch instead of per frame. The scan's run feeds the caller's buffer
// directly — only what overflows it transits the inbox — so the common
// storm batch never double-handles a packet pointer. Per-sender order is
// preserved: each ring decodes in stream order, the direct prefix and
// the inbox overflow keep that order, and the next drain empties the
// inbox before scanning again.
func (e *Endpoint) PollBatch(into []*wire.Packet) int {
	if n := e.inbox.popRun(into); n > 0 {
		return n
	}
	n := 0
	e.recvMu.Lock()
	if !e.closed() { // after Close the rings are unmapped; inbox only
		e.scanRings()
		n = copy(into, e.decRun)
		e.inbox.pushRun(e.decRun[n:])
		e.clearDecRun()
	}
	e.recvMu.Unlock()
	return n
}

// scanRings consumes every published slot from every inbound ring in one
// pass, round-robin for cross-sender fairness, decoding complete frames
// into e.decRun; the caller publishes the run (to the inbox, or straight
// into a PollBatch buffer) and clears it. Caller holds recvMu.
//
// The common small-frame case decodes in place: with no partial frame
// pending, the stream position is at a frame boundary and the next
// slot's data starts with a length prefix, so frames wholly inside the
// slot decode straight out of the mapping (one copy, slot to pooled
// payload) and the slot is released only afterwards. Only a frame that
// spans slots — pump batches, payloads past the slot size — falls back
// to accumulating the byte stream in ir.dec and re-delimiting there.
func (e *Endpoint) scanRings() {
	for i := 0; i < e.nodes; i++ {
		peer := (e.rr + i) % e.nodes
		ir := e.in[peer]
		if ir == nil || ir.dead {
			continue
		}
		buffered := false
		for ir.r.readable() {
			if len(ir.dec) == 0 {
				data := ir.r.peekSlot()
				used, ok := e.decodeStream(data, peer)
				if !ok {
					e.abandonRing(ir)
					break
				}
				if used < len(data) {
					// A frame's tail is still streaming through the
					// ring; switch to reassembly until it completes.
					ir.dec = append(ir.dec[:0], data[used:]...)
				}
				ir.r.releaseSlot()
				continue
			}
			ir.dec = ir.r.readSlot(ir.dec)
			buffered = true
		}
		if buffered && !ir.dead {
			e.decodeBuffered(ir, peer)
		}
	}
	e.rr = (e.rr + 1) % e.nodes
}

// decodeStream decodes every complete frame at the head of buf into the
// scan pass's run, stamping each packet with the ring's producer
// identity — a frame cannot impersonate another rank, the ring it
// arrived on wins over its header. It returns how many bytes it
// consumed, and false when the stream is corrupt. Caller holds recvMu.
func (e *Endpoint) decodeStream(buf []byte, peer int) (int, bool) {
	used := 0
	for len(buf)-used >= 4 {
		b := buf[used:]
		n := int(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
		if n > fabric.MaxFrameBytes {
			return used, false
		}
		if len(b) < 4+n {
			break // frame still streaming through the ring
		}
		p, err := fabric.DecodePacketPooled(b[:4+n])
		if err != nil {
			return used, false
		}
		p.Src = peer
		e.decRun = append(e.decRun, p)
		used += 4 + n
	}
	return used, true
}

// decodeBuffered re-delimits ir's accumulated byte stream, keeping the
// trailing partial frame for the next scan. Caller holds recvMu.
func (e *Endpoint) decodeBuffered(ir *inRing, peer int) {
	used, ok := e.decodeStream(ir.dec, peer)
	if !ok {
		e.abandonRing(ir)
		return
	}
	rest := ir.dec[used:]
	// Compact so the backing array does not grow with history, and stop
	// recycling an array a giant frame once ballooned — keeping it would
	// pin peak-frame memory per peer for the endpoint's lifetime.
	if cap(ir.dec) > maxRecycledBuf && len(rest) <= maxRecycledBuf {
		ir.dec = append([]byte(nil), rest...)
	} else {
		ir.dec = append(ir.dec[:0], rest...)
	}
}

// abandonRing marks a corrupt ring dead — the ring is abandoned, the
// endpoint (and frames already decoded this pass) stay live. Caller
// holds recvMu.
func (e *Endpoint) abandonRing(ir *inRing) {
	ir.dead = true
	ir.dec = nil
}

// maxDecRunEntries caps the scan run array capacity kept for reuse: a
// storm scan can decode thousands of frames in one pass, and keeping
// that peak would pin it per endpoint forever — the same shed-after-
// burst discipline ir.dec applies to its byte stream.
const maxDecRunEntries = 1024

// clearDecRun resets the scan run buffer with its packet aliases
// dropped — ownership moved to the inbox, and a retained pointer would
// resurrect a recycled packet. Caller holds recvMu.
func (e *Endpoint) clearDecRun() {
	if cap(e.decRun) > maxDecRunEntries {
		e.decRun = nil
		return
	}
	for i := range e.decRun {
		e.decRun[i] = nil
	}
	e.decRun = e.decRun[:0]
}

// Pending implements fabric.Endpoint. A packet counts once its slots are
// published in a ring or it sits decoded in the inbox; bytes a sender has
// serialized but not yet pushed through a full ring are invisible — the
// weaker Pending semantics the fabric.Endpoint contract documents for
// real transports.
func (e *Endpoint) Pending() bool {
	if !e.inbox.empty() {
		return true
	}
	if e.closed() {
		return false
	}
	e.recvMu.Lock()
	defer e.recvMu.Unlock()
	if e.closed() {
		return false
	}
	for _, ir := range e.in {
		if ir != nil && !ir.dead && (len(ir.dec) > 0 || ir.r.readable()) {
			return true
		}
	}
	return false
}

// BlockingRecv implements fabric.Endpoint: it waits up to timeout for a
// packet with adaptive backoff — briefly yield-spinning (skipped under
// NoBusyPoll), then sleeping at escalating intervals — so an idle waiter
// costs little CPU while a loaded one wakes fast.
func (e *Endpoint) BlockingRecv(timeout time.Duration) *wire.Packet {
	deadline := time.Now().Add(timeout)
	b := backoff{noBusy: e.cfg.NoBusyPoll}
	for {
		if p := e.Poll(); p != nil {
			return p
		}
		if e.closed() {
			return nil
		}
		if time.Now().After(deadline) {
			return nil
		}
		b.pause()
	}
}

// Close implements fabric.Endpoint: refuse new sends, let the pumps drain
// queued frames into the rings (bounded by closeDrainTimeout against a
// consumer that stopped draining, with the shortfall counted in
// LostFrames), then unmap everything and wake blocked receivers. Packets
// already decoded into the inbox remain pollable; slots never consumed
// are dropped, like bytes on a closed socket. Idempotent.
func (e *Endpoint) Close() error {
	if !e.state.CompareAndSwap(0, 1) {
		return nil
	}
	e.drainDeadline.Store(time.Now().Add(closeDrainTimeout).UnixNano())
	for _, o := range e.out {
		if o == nil {
			continue
		}
		o.mu.Lock()
		o.closing = true
		o.cond.Broadcast()
		o.mu.Unlock()
	}
	e.wwg.Wait()
	// recvMu fences racing scanners; the per-ring locks fence a direct
	// Send that won its closing check before we set the flag.
	e.recvMu.Lock()
	for _, o := range e.out {
		if o == nil {
			continue
		}
		o.mu.Lock()
		o.mu.Unlock() //nolint:staticcheck // lock/unlock is the fence
	}
	e.unmapAll()
	e.recvMu.Unlock()
	return nil
}

// abortNew unwinds a failed construction: mappings are released and the
// rank claim is withdrawn so a corrected retry (say, after a geometry
// mismatch) is not misreported as a duplicate rank.
func (e *Endpoint) abortNew() {
	e.unmapAll()
	os.Remove(filepath.Join(e.cfg.Dir, fmt.Sprintf("rank-%d.claim", e.self)))
}

// unmapAll releases every ring mapping (construction-failure and Close
// paths).
func (e *Endpoint) unmapAll() {
	for _, o := range e.out {
		if o != nil && o.r != nil {
			o.r.close()
			o.r = nil
		}
	}
	for i, ir := range e.in {
		if ir != nil {
			ir.r.close()
			e.in[i] = nil
		}
	}
}

// backoff is the adaptive wait used whenever a ring is full (producer
// side) or empty (consumer side): a bounded yield-spin phase for the
// common case where the peer is actively moving, then sleeps that double
// up to a cap so a stalled peer costs little CPU. noBusy skips the spin
// phase entirely — the NoIdlePolling-compatible mode.
type backoff struct {
	noBusy bool
	spins  int
	sleep  time.Duration
}

const (
	backoffSpins    = 128
	backoffMinSleep = time.Microsecond
	backoffMaxSleep = 500 * time.Microsecond
)

// pause waits one adaptive step.
func (b *backoff) pause() {
	if !b.noBusy && b.spins < backoffSpins {
		b.spins++
		runtime.Gosched()
		return
	}
	if b.sleep == 0 {
		b.sleep = backoffMinSleep
	}
	time.Sleep(b.sleep)
	if b.sleep < backoffMaxSleep {
		b.sleep *= 2
	}
}

// reset re-arms the spin phase after progress was made.
func (b *backoff) reset() {
	b.spins, b.sleep = 0, 0
}
