package shmfab

import (
	"fmt"
	"os"
	"sync"

	"pioman/internal/fabric"
)

// Local is a fabric.Fabric spanning n in-process endpoints that still talk
// through real mmap'd ring files — the single-binary analog of a
// multi-process shared-memory deployment, for tests, benches and
// in-process worlds. Endpoints are created lazily on first request, so
// attachment order (and therefore the ring-file creation race) follows
// whatever order the caller asks for ranks in; distributed deployments
// build one Endpoint per process with New instead.
type Local struct {
	nodes  int
	dir    string
	ownDir bool // created by NewLocal: removed on Close

	mu     sync.Mutex
	eps    []*Endpoint
	closed bool
}

// NewLocal prepares an n-rank fabric over dir. An empty dir allocates a
// fresh temporary directory that Close removes; a caller-supplied dir
// must be fresh for this run and is left in place.
func NewLocal(n int, dir string) (*Local, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shmfab: local fabric needs at least one rank")
	}
	own := false
	if dir == "" {
		d, err := os.MkdirTemp("", "shmfab-*")
		if err != nil {
			return nil, fmt.Errorf("shmfab: ring directory: %w", err)
		}
		dir, own = d, true
	}
	return &Local{nodes: n, dir: dir, ownDir: own, eps: make([]*Endpoint, n)}, nil
}

// Dir returns the ring directory the fabric runs over.
func (l *Local) Dir() string { return l.dir }

// Nodes implements fabric.Fabric.
func (l *Local) Nodes() int { return l.nodes }

// Endpoint implements fabric.Fabric, creating rank's endpoint on first
// request and returning the same instance thereafter (each ring must keep
// a single producer and a single consumer).
func (l *Local) Endpoint(rank int) (fabric.Endpoint, error) {
	if rank < 0 || rank >= l.nodes {
		return nil, fmt.Errorf("shmfab: rank %d outside local fabric of %d", rank, l.nodes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, fabric.ErrClosed
	}
	if l.eps[rank] == nil {
		ep, err := New(Config{Self: rank, Nodes: l.nodes, Dir: l.dir})
		if err != nil {
			return nil, err
		}
		l.eps[rank] = ep
	}
	return l.eps[rank], nil
}

// Close implements fabric.Fabric: every created endpoint is closed, and a
// directory NewLocal allocated itself is removed.
func (l *Local) Close() error {
	l.mu.Lock()
	l.closed = true
	eps := l.eps
	l.mu.Unlock()
	for _, e := range eps {
		if e != nil {
			e.Close()
		}
	}
	if l.ownDir {
		os.RemoveAll(l.dir)
	}
	return nil
}
