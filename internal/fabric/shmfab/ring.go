package shmfab

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"
	"unsafe"
)

// On-disk ring layout, all fields little-endian via the host's native
// atomics (both sides of a ring run on the same host, so there is no
// cross-endian concern):
//
//	off   0  u64  magic — written last by the creator; attachers spin on it
//	off   8  u32  layout version
//	off  12  u32  slot count
//	off  16  u32  slot data capacity (bytes)
//	off  64  u64  prodSeq — slots published by the producer (own cache line)
//	off 128  u64  consSeq — slots released by the consumer (own cache line)
//	off 192  slot[0], slot[1], ...
//
//	slot: u64 seq (published last, = absolute slot index + 1)
//	      u32 data length
//	      u32 reserved
//	      [slotBytes] data
//
// The ring is strictly single-producer/single-consumer. A slot is
// publish-handshaked by its seq field: the producer fills data and length
// with plain stores, then atomically stores seq = absIndex+1; the consumer
// atomically loads seq, and equality with its own cursor+1 guarantees the
// plain fields are visible (the atomic pair orders them). The header
// counters let each side see the other's progress: the producer writes a
// slot only while prodSeq-consSeq < slots, the consumer releases a slot by
// advancing consSeq after copying the data out. Frames larger than one
// slot simply span consecutive slots as a byte stream; the fabric codec's
// length prefix re-delimits them on the consumer side.
const (
	ringMagic   = 0x50494F4D53484D31 // "PIOMSHM1"
	ringVersion = 1

	offMagic     = 0
	offVersion   = 8
	offSlots     = 12
	offSlotBytes = 16
	offProdSeq   = 64
	offConsSeq   = 128
	ringHdrBytes = 192

	slotHdrBytes = 16 // u64 seq + u32 length + u32 reserved
)

// ring is one mapping of one SPSC ring file. A ring value is used in
// exactly one role — producer (the rank the file's name lists as source)
// or consumer — and each role keeps its cursor in ordinary memory; only
// the shared header counters and per-slot seq fields cross the mapping.
type ring struct {
	f   *os.File
	mem []byte

	slots     int
	slotBytes int

	// prod is the producer's cursor: absolute index of the next slot to
	// write. Mirrors the shared prodSeq header field, which exists so a
	// restarted producer can resume and so tooling can observe progress.
	prod uint64
	// cons is the consumer's cursor: absolute index of the next slot to
	// read. Mirrors the shared consSeq header field.
	cons uint64
}

// ringFileSize returns the file size for a ring of the given geometry.
func ringFileSize(slots, slotBytes int) int {
	return ringHdrBytes + slots*(slotHdrBytes+slotBytes)
}

// u64at returns an atomically addressable view of an 8-aligned header or
// slot field. The mapping is page-aligned and every offset used is a
// multiple of 8, which sync/atomic requires.
func u64at(b []byte, off int) *uint64 {
	return (*uint64)(unsafe.Pointer(&b[off]))
}

// u32at returns a plain view of a 4-aligned field.
func u32at(b []byte, off int) *uint32 {
	return (*uint32)(unsafe.Pointer(&b[off]))
}

// slotOff returns the byte offset of slot i's header.
func (r *ring) slotOff(i uint64) int {
	return ringHdrBytes + int(i%uint64(r.slots))*(slotHdrBytes+r.slotBytes)
}

// openRing creates or attaches the ring file at path. Exactly one caller
// wins an O_EXCL create and initializes the mapping, publishing the magic
// word last; every other caller — a concurrent creator that lost the race,
// or an attacher arriving before the creator finished — waits, bounded by
// deadline, for the file to reach full size and the magic to appear, then
// validates the geometry against its own configuration.
func openRing(path string, slots, slotBytes int, deadline time.Time) (*ring, error) {
	size := ringFileSize(slots, slotBytes)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err == nil {
		return initRing(f, path, slots, slotBytes, size)
	}
	if !os.IsExist(err) {
		return nil, fmt.Errorf("shmfab: create ring %s: %w", path, err)
	}
	f, err = os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("shmfab: open ring %s: %w", path, err)
	}
	// The creator truncates to full size before initializing; wait for it.
	for {
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("shmfab: stat ring %s: %w", path, err)
		}
		if st.Size() >= int64(size) {
			break
		}
		// A smaller-but-initialized file is not a slow creator — it is a
		// finished creator with different geometry. Diagnose that now
		// rather than burning the whole attach timeout on the wrong
		// theory.
		if st.Size() >= ringHdrBytes {
			if hdr, herr := mmapFile(f, ringHdrBytes); herr == nil {
				done := atomic.LoadUint64(u64at(hdr, offMagic)) == ringMagic
				s, sb := int(*u32at(hdr, offSlots)), int(*u32at(hdr, offSlotBytes))
				munmapFile(hdr)
				if done {
					f.Close()
					return nil, fmt.Errorf("shmfab: ring %s has geometry %d×%dB, this endpoint is configured for %d×%dB — both sides must agree",
						path, s, sb, slots, slotBytes)
				}
			}
		}
		if time.Now().After(deadline) {
			f.Close()
			return nil, fmt.Errorf("shmfab: ring %s stuck at %d of %d bytes: creator died mid-init?", path, st.Size(), size)
		}
		time.Sleep(200 * time.Microsecond)
	}
	mem, err := mmapFile(f, size)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shmfab: map ring %s: %w", path, err)
	}
	r := &ring{f: f, mem: mem, slots: slots, slotBytes: slotBytes}
	for atomic.LoadUint64(u64at(mem, offMagic)) != ringMagic {
		if time.Now().After(deadline) {
			r.close()
			return nil, fmt.Errorf("shmfab: ring %s never published its magic: creator died mid-init?", path)
		}
		time.Sleep(200 * time.Microsecond)
	}
	if v := *u32at(mem, offVersion); v != ringVersion {
		r.close()
		return nil, fmt.Errorf("shmfab: ring %s is layout version %d, want %d", path, v, ringVersion)
	}
	if s, sb := int(*u32at(mem, offSlots)), int(*u32at(mem, offSlotBytes)); s != slots || sb != slotBytes {
		r.close()
		return nil, fmt.Errorf("shmfab: ring %s has geometry %d×%dB, this endpoint is configured for %d×%dB — both sides must agree",
			path, s, sb, slots, slotBytes)
	}
	r.prod = atomic.LoadUint64(u64at(mem, offProdSeq))
	r.cons = atomic.LoadUint64(u64at(mem, offConsSeq))
	return r, nil
}

// initRing finishes a won O_EXCL create: size the file, map it, write the
// geometry, and only then publish the magic that releases waiting openers.
func initRing(f *os.File, path string, slots, slotBytes, size int) (*ring, error) {
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, fmt.Errorf("shmfab: size ring %s: %w", path, err)
	}
	mem, err := mmapFile(f, size)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shmfab: map ring %s: %w", path, err)
	}
	*u32at(mem, offVersion) = ringVersion
	*u32at(mem, offSlots) = uint32(slots)
	*u32at(mem, offSlotBytes) = uint32(slotBytes)
	atomic.StoreUint64(u64at(mem, offProdSeq), 0)
	atomic.StoreUint64(u64at(mem, offConsSeq), 0)
	atomic.StoreUint64(u64at(mem, offMagic), ringMagic)
	return &ring{f: f, mem: mem, slots: slots, slotBytes: slotBytes}, nil
}

// freeSlots reports how many slots the producer may write right now.
func (r *ring) freeSlots() int {
	return r.slots - int(r.prod-atomic.LoadUint64(u64at(r.mem, offConsSeq)))
}

// writeSlot publishes one slot carrying data (producer side). The caller
// has checked freeSlots; len(data) must be within the slot capacity.
func (r *ring) writeSlot(data []byte) {
	off := r.slotOff(r.prod)
	copy(r.mem[off+slotHdrBytes:off+slotHdrBytes+len(data)], data)
	*u32at(r.mem, off+8) = uint32(len(data))
	atomic.StoreUint64(u64at(r.mem, off), r.prod+1)
	r.prod++
	atomic.StoreUint64(u64at(r.mem, offProdSeq), r.prod)
}

// readable reports whether the consumer's next slot has been published.
func (r *ring) readable() bool {
	off := r.slotOff(r.cons)
	return atomic.LoadUint64(u64at(r.mem, off)) == r.cons+1
}

// readSlot appends the consumer's next slot's data to dst and releases the
// slot back to the producer. The caller has checked readable.
func (r *ring) readSlot(dst []byte) []byte {
	dst = append(dst, r.peekSlot()...)
	r.releaseSlot()
	return dst
}

// peekSlot returns the consumer's next slot's data in place — a view
// into the mapping, valid only until releaseSlot hands the slot back to
// the producer. The caller has checked readable. Together with
// releaseSlot it is the zero-copy half of the consumer API: a decoder
// that can finish with the bytes before releasing (shmfab's in-place
// frame decode) skips the append readSlot would pay.
func (r *ring) peekSlot() []byte {
	off := r.slotOff(r.cons)
	n := int(*u32at(r.mem, off+8))
	if n > r.slotBytes {
		n = r.slotBytes // corrupt length: clamp rather than overrun
	}
	return r.mem[off+slotHdrBytes : off+slotHdrBytes+n]
}

// releaseSlot returns the consumer's current slot to the producer. No
// view from peekSlot may be read afterwards: the producer is free to
// overwrite the memory the moment consSeq advances.
func (r *ring) releaseSlot() {
	r.cons++
	atomic.StoreUint64(u64at(r.mem, offConsSeq), r.cons)
}

// close unmaps and closes the ring file. The file itself stays in the
// directory: the peer process may still hold its own mapping, so cleanup
// of the directory is its owner's job (see Local).
func (r *ring) close() {
	if r.mem != nil {
		munmapFile(r.mem)
		r.mem = nil
	}
	r.f.Close()
}
