package simfab_test

import (
	"testing"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/fabric/conformance"
	"pioman/internal/fabric/simfab"
	"pioman/internal/mpi"
	"pioman/internal/topo"
	"pioman/internal/wire"
)

func TestEndpointConformance(t *testing.T) {
	conformance.RunEndpoint(t, func(t *testing.T, nodes int) fabric.Fabric {
		return simfab.New(wire.NewFabric(nodes, wire.MYRI10G()))
	})
}

// TestManyPeersConformance runs the C10K shape gate over the simulated
// wire: delivery is synchronous (no servicing goroutines at all), so
// the budget only covers test-transient runtime goroutines. Not
// strict-FIFO: the simulator's fragmenting wire may interleave.
func TestManyPeersConformance(t *testing.T) {
	conformance.RunManyPeers(t, func(t *testing.T, nodes int) fabric.Fabric {
		return simfab.New(wire.NewFabric(nodes, wire.MYRI10G()))
	}, 64, false, 32)
}

func TestWorldConformance(t *testing.T) {
	conformance.RunWorld(t, func(t *testing.T) *mpi.World {
		// The default world path: simulated MX rail built implicitly
		// from the link model — the exact configuration every
		// pre-fabric simulation result was measured on.
		cfg := mpi.DefaultMultithreaded(2)
		cfg.Machine = topo.Machine{Sockets: 1, CoresPerSocket: 2}
		return mpi.NewWorld(cfg)
	})
}

// TestChaosSoakConformance drives the engine-level soak workload over
// the simulated wire wrapped in a seeded Chaos injecting frame
// reordering and latency on top of the simulator's own fragment
// interleaving. (Drop/duplicate/corrupt would violate the delivery
// contract the simulator guarantees; udpfab's soak injects those below
// its reliability sublayer instead.)
func TestChaosSoakConformance(t *testing.T) {
	seed := conformance.ChaosSeed(t)
	conformance.RunChaosSoak(t, func(t *testing.T) *mpi.World {
		cfg := mpi.DefaultMultithreaded(2)
		cfg.Machine = topo.Machine{Sockets: 1, CoresPerSocket: 2}
		cfg.Fabrics = map[string]fabric.Fabric{
			cfg.MX.Name: conformance.NewChaos(
				simfab.New(wire.NewFabric(2, cfg.MX.Link)),
				conformance.ChaosConfig{
					Seed:         seed,
					Reorder:      0.15,
					ReorderDelay: time.Millisecond,
					Latency:      200 * time.Microsecond,
				}),
		}
		return mpi.NewWorld(cfg)
	})
}

// TestBatchOrderingConformance runs the batched-receive ordering case:
// two concurrent senders, a PollBatch-only receiver, exactly-once
// delivery across batch boundaries. Not strict-FIFO: the simulated
// wire's fragment interleaving legally reorders same-size small packets
// (receivers reorder by sequence number — the portable contract).
func TestBatchOrderingConformance(t *testing.T) {
	conformance.RunBatchOrdering(t, func(t *testing.T, nodes int) fabric.Fabric {
		return simfab.New(wire.NewFabric(nodes, wire.MYRI10G()))
	}, false)
}

// TestRailFailoverConformance runs the two-rail loss-injection case: the
// secondary rail drops every frame, and rendezvous transfers must still
// complete over the surviving simulated rail.
func TestRailFailoverConformance(t *testing.T) {
	conformance.RunRailFailover(t, func(t *testing.T, nodes int) fabric.Fabric {
		return simfab.New(wire.NewFabric(nodes, wire.MYRI10G()))
	})
}

// TestSelfHealingConformance runs the acked-replay regression: the
// simulated rail is killed right after the rendezvous was submitted, and
// the transfer must complete via engine-level replay once it revives.
func TestSelfHealingConformance(t *testing.T) {
	conformance.RunSelfHealing(t, func(t *testing.T, nodes int) fabric.Fabric {
		return simfab.New(wire.NewFabric(nodes, wire.MYRI10G()))
	})
}

// TestPeerDeathConformance runs the bounded-failure contract: one rank
// of a three-rank simulated world dies mid-rendezvous, pending requests
// toward it must complete with core.ErrPeerDead within the PeerDeadline
// and the survivors keep communicating.
func TestPeerDeathConformance(t *testing.T) {
	conformance.RunPeerDeath(t, func(t *testing.T, nodes int) fabric.Fabric {
		return simfab.New(wire.NewFabric(nodes, wire.MYRI10G()))
	})
}

// TestRTTRetuneConformance runs the latency-penalty regression: a bonded
// world where railB delivers everything but 2ms late, invisible to
// sender-side goodput windows, and the health-probe RTT must drive the
// online retune to shed the slow rail's stripe share.
func TestRTTRetuneConformance(t *testing.T) {
	conformance.RunRTTRetune(t, func(t *testing.T, nodes int) fabric.Fabric {
		return simfab.New(wire.NewFabric(nodes, wire.MYRI10G()))
	})
}

// TestSelfHealSoakConformance runs the rail death-and-recovery soak:
// mid-run kill and revival of the secondary simulated rail, probation,
// probe-driven re-admission, and post-recovery traffic on the healed
// rail, with online stripe weights enabled throughout.
func TestSelfHealSoakConformance(t *testing.T) {
	conformance.RunSelfHealSoak(t, func(t *testing.T, nodes int) fabric.Fabric {
		return simfab.New(wire.NewFabric(nodes, wire.MYRI10G()))
	})
}

// TestTelemetrySnapshotConformance runs the observability case: a bonded
// world with a metrics registry attached, the lossy rail's failure
// visible in a registry snapshot under its documented name.
func TestTelemetrySnapshotConformance(t *testing.T) {
	conformance.RunTelemetrySnapshot(t, func(t *testing.T, nodes int) fabric.Fabric {
		return simfab.New(wire.NewFabric(nodes, wire.MYRI10G()))
	})
}

// TestWorldConformanceExplicitFabric pins the Fabrics override path: a
// simfab instance supplied through the config must behave identically to
// the implicit one.
func TestWorldConformanceExplicitFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestWorldConformance")
	}
	conformance.RunWorld(t, func(t *testing.T) *mpi.World {
		cfg := mpi.DefaultMultithreaded(2)
		cfg.Machine = topo.Machine{Sockets: 1, CoresPerSocket: 2}
		cfg.Fabrics = map[string]fabric.Fabric{
			cfg.MX.Name: simfab.New(wire.NewFabric(2, cfg.MX.Link)),
		}
		return mpi.NewWorld(cfg)
	})
}
