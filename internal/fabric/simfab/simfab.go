// Package simfab adapts the in-process wire simulator (internal/wire) to
// the fabric interface. It is a thin shim: all cost-model semantics —
// link serialization horizons, fragment interleaving, modeled latency —
// stay in internal/wire, so every simulation result obtained before the
// fabric layer existed is unchanged.
package simfab

import (
	"fmt"
	"sync/atomic"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/wire"
)

// Fabric wraps a *wire.Fabric as a fabric.Fabric.
type Fabric struct {
	w *wire.Fabric
}

// New wraps w. The caller may keep using w directly; endpoints observe
// all traffic injected either way.
func New(w *wire.Fabric) *Fabric {
	if w == nil {
		panic("simfab: nil wire fabric")
	}
	return &Fabric{w: w}
}

// Wire returns the underlying simulator.
func (f *Fabric) Wire() *wire.Fabric { return f.w }

// Nodes implements fabric.Fabric.
func (f *Fabric) Nodes() int { return f.w.Nodes() }

// Endpoint implements fabric.Fabric.
func (f *Fabric) Endpoint(rank int) (fabric.Endpoint, error) {
	if rank < 0 || rank >= f.w.Nodes() {
		return nil, fmt.Errorf("simfab: rank %d outside fabric of %d nodes", rank, f.w.Nodes())
	}
	return &Endpoint{w: f.w, self: rank}, nil
}

// MustEndpoint returns rank's endpoint, panicking on a bad rank (used by
// construction paths that validate ranks themselves).
func (f *Fabric) MustEndpoint(rank int) *Endpoint {
	ep, err := f.Endpoint(rank)
	if err != nil {
		panic(err)
	}
	return ep.(*Endpoint)
}

// Close implements fabric.Fabric: it closes the simulator, waking every
// endpoint's blocked receivers.
func (f *Fabric) Close() error {
	f.w.Close()
	return nil
}

// Endpoint is one simulated node's port on the wire simulator.
type Endpoint struct {
	w      *wire.Fabric
	self   int
	closed atomic.Bool
}

// NewEndpoint attaches directly to w as node self.
func NewEndpoint(w *wire.Fabric, self int) *Endpoint {
	return New(w).MustEndpoint(self)
}

// Self implements fabric.Endpoint.
func (e *Endpoint) Self() int { return e.self }

// Nodes implements fabric.Endpoint.
func (e *Endpoint) Nodes() int { return e.w.Nodes() }

// Send implements fabric.Endpoint. The simulator retains p itself: the
// modeled wire queues the very packet object and delivers it to the
// destination's Poll, so this backend deliberately does not implement
// fabric.SendCapturer — the sender must not touch or recycle p after
// Send, and the *receiver* is the packet's final owner (the engine
// returns handled packets to the fabric packet pool, which is how
// outbound structs circulate even over the simulator).
func (e *Endpoint) Send(p *wire.Packet) error {
	if e.closed.Load() {
		return fabric.ErrClosed
	}
	e.w.Send(p)
	return nil
}

// Poll implements fabric.Endpoint.
func (e *Endpoint) Poll() *wire.Packet { return e.w.Poll(e.self) }

// PollBatch implements fabric.Endpoint natively: the simulator's inbox
// hands out a run of arrived packets under one lock acquisition.
func (e *Endpoint) PollBatch(into []*wire.Packet) int { return e.w.PollBatch(e.self, into) }

// BlockingRecv implements fabric.Endpoint.
func (e *Endpoint) BlockingRecv(timeout time.Duration) *wire.Packet {
	return e.w.BlockingRecv(e.self, timeout)
}

// Pending implements fabric.Endpoint.
func (e *Endpoint) Pending() bool {
	_, ok := e.w.PendingAt(e.self)
	return ok
}

// Backlog implements fabric.Endpoint: the modeled serialization horizon of
// the outgoing link toward dst.
func (e *Endpoint) Backlog(dst int) time.Duration {
	return e.w.LinkBacklog(e.self, dst)
}

// NextSeq implements fabric.Endpoint.
func (e *Endpoint) NextSeq() uint64 { return e.w.NextSeq() }

// Close implements fabric.Endpoint. The simulated links are shared state,
// so closing any endpoint closes the whole simulated fabric — exactly the
// collective-shutdown semantics mpi.World.Close wants; per-node teardown
// is a real-transport concern (see fabric/tcpfab).
func (e *Endpoint) Close() error {
	e.closed.Store(true)
	e.w.Close()
	return nil
}
