// Package tcpfab is a real transport backend for the fabric layer: packets
// travel between operating-system processes as length-prefixed frames
// (fabric's codec) over TCP connections, one per peer per direction.
//
// Topology is a full mesh of ranks. Every endpoint listens; a connection
// toward a peer is dialed lazily on first send when the peer's address is
// known, and an accepted connection is adopted as the send path when no
// dialed one exists yet — so an asymmetric setup (only one side knows an
// address, as in pingpong's -listen/-connect pair) still yields two-way
// traffic. Each endpoint writes to a peer on exactly one stream, which
// gives the per-sender FIFO delivery the engine's sequence-ordering layer
// assumes, with no cross-size reordering at all.
//
// Connections are NOT serviced by per-stream goroutines. A bounded pool
// of event-driven pollers (sized from runtime.NumCPU, configurable via
// Config.Pollers) multiplexes every connection through one epoll
// instance per poller: the paper's central claim — many communication
// flows progressed by a small, controlled set of threads — applied to
// the socket layer itself. An endpoint serving N peers costs O(pool)
// goroutines, not O(N). On the send side, frames queued for one stream
// while the poller was busy are coalesced and flushed as a single run —
// one write syscall when the kernel buffer has room — the send-side dual
// of PollBatch. Connections idle past Config.IdleTimeout in both
// directions are reaped (fds released, peer sees clean EOF); the next
// Send redials transparently through the existing retry path.
//
// Simultaneous connect (both sides of a cold pair dial at once) can leave
// a pair with two live streams: each side may adopt the other's dialed
// connection as its send path before its own dial completes. Once a
// handshake has been written on a dialed stream the peer may legitimately
// answer on it, so the loser of the race is never closed — it stays open
// and read, it just carries no outbound traffic from this side. Closing
// it instead would RST frames the peer already wrote into it.
//
// The implementation is Linux-only (raw epoll via the syscall package),
// matching the deployment and CI targets.
package tcpfab

import (
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/sync2"
	"pioman/internal/telemetry"
	"pioman/internal/wire"
)

// handshake frame: magic, codec-compatible version, sender rank, cluster
// size. Exchanged once, dialer to acceptor, before any packet frames.
const (
	hsMagic   = 0x50494F4D // "PIOM"
	hsVersion = 1
	hsBytes   = 4 + 4 + 4 + 4

	dialTimeout      = 10 * time.Second
	handshakeTimeout = 10 * time.Second

	// Dial retry tuning: a transient peer restart (process replaced, its
	// listener rebound moments later) looks exactly like a dead address
	// for a short window. Retrying the dial with capped exponential
	// backoff inside dialRetryWindow rides that window out, so one peer
	// bouncing does not permanently strand the other side's rendezvous
	// state; only an address that stays dead for the whole window counts
	// as a failed dial.
	dialRetryWindow  = 3 * time.Second
	dialBackoffFirst = 10 * time.Millisecond
	dialBackoffMax   = 400 * time.Millisecond

	// closeDrainTimeout bounds how long Close lets the pollers flush
	// queued frames toward a peer that has stopped reading.
	closeDrainTimeout = 5 * time.Second

	// maxRecycledBuf caps the outbound buffer capacity a stream keeps
	// for reuse between batches (a few MTU-sized frames' worth).
	maxRecycledBuf = 256 << 10

	// readBufBytes sizes each stream's inbound staging window, drawn
	// from the fabric buffer pool. Small frames assemble inside it — one
	// socket read yields a whole decoded run — and a frame larger than
	// it switches the stream into direct-read mode, filling the pooled
	// payload in place.
	readBufBytes = 64 << 10

	// maxPollers caps the default pool size: event loops are IO-bound,
	// so more of them than this buys nothing even on wide hosts.
	maxPollers = 8
)

// Config describes one process's attachment to a TCP fabric.
type Config struct {
	// Self is this endpoint's rank.
	Self int
	// Nodes is the cluster size.
	Nodes int
	// Listen is the address to accept peers on (e.g. "127.0.0.1:0",
	// ":9777"). Empty disables accepting: only dialed peers are
	// reachable.
	Listen string
	// Peers maps rank to dial address for the peers this process may
	// have to contact first. Peers that always speak first (they dial
	// us) can be omitted; their accepted connection becomes the send
	// path.
	Peers map[int]string
	// Pollers sets the event-loop pool size. 0 means
	// min(runtime.NumCPU(), 8); pollers start lazily, so unused slots
	// cost nothing.
	Pollers int
	// IdleTimeout reaps connections quiet in both directions for this
	// long: their fds are released, the peer sees a clean EOF, and the
	// next Send redials transparently. 0 disables reaping.
	IdleTimeout time.Duration
}

// Endpoint is one process's port on a TCP fabric.
type Endpoint struct {
	self, nodes int

	ln net.Listener

	mu      sync.Mutex
	peers   map[int]string
	out     map[int]*conn         // send path per peer
	dialing map[int]chan struct{} // in-flight dial per peer; closed when done
	open    map[net.Conn]struct{} // handshake-phase accepted conns, for teardown
	conns   map[*conn]struct{}    // every registered stream, for close-drain
	stash   map[int]stash         // undelivered frames of a failed stream, per peer

	pool        *pollerPool
	idleTimeout time.Duration

	seq   atomic.Uint64
	lost  atomic.Uint64 // frames accepted by Send, then lost with a stream
	state atomic.Int32  // 0 open, 1 closed
	done  chan struct{} // closed on Close; wakes every blocked receiver
	inbox inbox
	wg    sync.WaitGroup

	// Poller/connection accounting, surfaced via RegisterMetrics.
	nPollers      atomic.Int64
	nConns        atomic.Int64
	coalesced     atomic.Uint64 // frames flushed as part of a multi-frame (or single) run
	flushSyscalls atomic.Uint64 // write(2) calls issued by the flush path
	reaped        atomic.Uint64 // connections torn down by the idle reaper
}

// stash holds serialized frames bound for a peer whose stream failed
// before they were written. The frame end offsets let a later failure
// split the run at a write boundary again. A stash primes the next
// stream adopted toward its peer, so the frames go out ahead of any new
// traffic; only an endpoint that closes with the stash unconsumed
// abandons it (counted in LostFrames by Close).
type stash struct {
	buf  []byte
	ends []int // end offset of each frame in buf, ascending
	n    int   // frame count (== len(ends))
}

// appendFrames concatenates src's frames after dst's, rebasing the end
// offsets onto the combined buffer.
func appendFrames(dst *stash, src stash) {
	if src.n == 0 {
		return
	}
	base := len(dst.buf)
	dst.buf = append(dst.buf, src.buf...)
	for _, end := range src.ends {
		dst.ends = append(dst.ends, base+end)
	}
	dst.n += src.n
}

// inbox is the arrival queue: FIFO, one notify edge for blocking
// receivers. The head index (rather than re-slicing pkts[1:]) keeps the
// backing array's full capacity across push/pop cycles, so a steady
// stream of packets recycles one array instead of reallocating — part
// of the allocation-free receive path.
type inbox struct {
	mu     sync.Mutex
	pkts   []*wire.Packet
	head   int
	notify chan struct{}
}

func (ib *inbox) push(p *wire.Packet) {
	ib.mu.Lock()
	ib.pkts, ib.head = sync2.CompactQueue(ib.pkts, ib.head)
	ib.pkts = append(ib.pkts, p)
	ib.mu.Unlock()
	select {
	case ib.notify <- struct{}{}:
	default:
	}
}

// pushRun appends a whole decoded run under one lock acquisition and
// fires a single notify edge for it — the producer half of the batched
// receive path: a poller that decoded k frames from one socket visit
// costs the inbox one lock round trip and wakes blocked receivers once,
// not k times.
func (ib *inbox) pushRun(run []*wire.Packet) {
	if len(run) == 0 {
		return
	}
	ib.mu.Lock()
	ib.pkts, ib.head = sync2.PushRun(ib.pkts, ib.head, run)
	ib.mu.Unlock()
	select {
	case ib.notify <- struct{}{}:
	default:
	}
}

// popRun pops up to len(into) queued packets in FIFO order under one
// lock acquisition — the consumer half of the batched receive path.
func (ib *inbox) popRun(into []*wire.Packet) int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	var n int
	ib.pkts, ib.head, n = sync2.PopRun(ib.pkts, ib.head, into)
	return n
}

func (ib *inbox) pop() *wire.Packet {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.head == len(ib.pkts) {
		return nil
	}
	p := ib.pkts[ib.head]
	ib.pkts[ib.head] = nil // the consumer owns it now; drop the queue's alias
	ib.head++
	if ib.head == len(ib.pkts) {
		ib.pkts, ib.head = ib.pkts[:0], 0
	}
	return p
}

func (ib *inbox) empty() bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.head == len(ib.pkts)
}

// New opens an endpoint per cfg. If cfg.Listen is set the returned
// endpoint is already accepting; its actual address (useful with port 0)
// is Addr().
func New(cfg Config) (*Endpoint, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("tcpfab: cluster needs at least one node")
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Nodes {
		return nil, fmt.Errorf("tcpfab: rank %d outside cluster of %d", cfg.Self, cfg.Nodes)
	}
	np := cfg.Pollers
	if np <= 0 {
		np = runtime.NumCPU()
		if np > maxPollers {
			np = maxPollers
		}
	}
	if np < 1 {
		np = 1
	}
	e := &Endpoint{
		self:        cfg.Self,
		nodes:       cfg.Nodes,
		peers:       make(map[int]string, len(cfg.Peers)),
		out:         make(map[int]*conn),
		dialing:     make(map[int]chan struct{}),
		open:        make(map[net.Conn]struct{}),
		conns:       make(map[*conn]struct{}),
		stash:       make(map[int]stash),
		idleTimeout: cfg.IdleTimeout,
		done:        make(chan struct{}),
		inbox:       inbox{notify: make(chan struct{}, 1)},
	}
	e.pool = newPollerPool(e, np)
	for r, a := range cfg.Peers {
		e.peers[r] = a
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("tcpfab: listen %s: %w", cfg.Listen, err)
		}
		e.ln = ln
		e.wg.Add(1)
		go e.acceptLoop()
	}
	return e, nil
}

// Addr returns the actual listen address, or nil when not listening.
func (e *Endpoint) Addr() net.Addr {
	if e.ln == nil {
		return nil
	}
	return e.ln.Addr()
}

// SetPeerAddr records rank's dial address (e.g. learned out of band after
// both sides bound ephemeral ports).
func (e *Endpoint) SetPeerAddr(rank int, addr string) {
	e.mu.Lock()
	e.peers[rank] = addr
	e.mu.Unlock()
}

// Self implements fabric.Endpoint.
func (e *Endpoint) Self() int { return e.self }

// Nodes implements fabric.Endpoint.
func (e *Endpoint) Nodes() int { return e.nodes }

// NextSeq implements fabric.Endpoint. Sequence numbers only need to be
// unique per origin endpoint: receivers order per-sender streams.
func (e *Endpoint) NextSeq() uint64 { return e.seq.Add(1) }

// Backlog implements fabric.Endpoint: TCP runs its own flow control, the
// submission gate is always open.
func (e *Endpoint) Backlog(int) time.Duration { return 0 }

// SendCaptures implements fabric.SendCapturer: Send serializes cross-rank
// packets (enqueue) and copies self-deliveries before returning, so the
// caller may recycle the packet struct immediately.
func (e *Endpoint) SendCaptures() bool { return true }

// Pending implements fabric.Endpoint. Only packets already decoded into
// the inbox count: bytes still in a socket buffer or mid-decode in a
// poller are invisible here — the weaker Pending semantics the
// fabric.Endpoint contract documents for real transports. The pollers
// push such packets and fire the notify edge on their own, so a
// BlockingRecv waiter wakes regardless of what Pending reported.
func (e *Endpoint) Pending() bool { return !e.inbox.empty() }

// Poll implements fabric.Endpoint.
func (e *Endpoint) Poll() *wire.Packet { return e.inbox.pop() }

// PollBatch implements fabric.Endpoint natively: the inbox hands out a
// FIFO run of decoded packets under one lock acquisition. Per-sender
// order is preserved — each peer's frames enter the inbox in stream
// order and the run pops in queue order.
func (e *Endpoint) PollBatch(into []*wire.Packet) int { return e.inbox.popRun(into) }

// BlockingRecv implements fabric.Endpoint. The deadline timer is drawn
// from a pool and armed once for the whole wait, so a blocking receive
// allocates nothing — spurious notify wakeups just re-poll while the
// timer keeps running toward the deadline.
func (e *Endpoint) BlockingRecv(timeout time.Duration) *wire.Packet {
	if p := e.inbox.pop(); p != nil {
		return p
	}
	t := sync2.GetTimer(timeout)
	fired := false
	defer func() { sync2.PutTimer(t, fired) }()
	for {
		if p := e.inbox.pop(); p != nil {
			return p
		}
		if e.closed() {
			return nil
		}
		select {
		case <-e.inbox.notify:
		case <-e.done:
		case <-t.C:
			fired = true
			return e.inbox.pop()
		}
	}
}

// Dial eagerly establishes the connection toward rank, which Send would
// otherwise create lazily. Use it to fail fast on a bad address instead
// of discovering it one dropped packet at a time.
func (e *Endpoint) Dial(rank int) error {
	if e.closed() {
		return fabric.ErrClosed
	}
	if rank == e.self {
		return nil
	}
	_, err := e.connTo(rank)
	return err
}

// Send implements fabric.Endpoint.
func (e *Endpoint) Send(p *wire.Packet) error {
	if e.closed() {
		return fabric.ErrClosed
	}
	if p.Dst < 0 || p.Dst >= e.nodes {
		return fmt.Errorf("tcpfab: send to rank %d outside cluster of %d", p.Dst, e.nodes)
	}
	if p.WireLen <= 0 {
		p.WireLen = len(p.Payload)
	}
	// Refuse here, synchronously, what the codec cannot frame: detected
	// any later, the poller could only treat it as a stream failure and
	// kill a healthy connection. Self-delivery skips the codec but is
	// held to the same limit, so a payload does not pass rank-local
	// testing only to fail on its first cross-rank trip.
	if len(p.Payload) > fabric.MaxPayloadBytes {
		return fmt.Errorf("tcpfab: %d-byte payload exceeds frame limit %d", len(p.Payload), fabric.MaxPayloadBytes)
	}
	if p.Dst == e.self {
		// Self-delivery skips the codec but not the capture rule: the
		// engine may reuse the payload buffer the moment Send returns, so
		// the packet must stop aliasing it before entering the inbox —
		// cross-rank sends capture by serializing in enqueue. The copy
		// lives in pooled storage like any decoded arrival, so the
		// consumer's ReleasePacket recycles it the same way.
		e.inbox.push(fabric.CapturePacket(p))
		return nil
	}
	for {
		c, err := e.connTo(p.Dst)
		if err != nil {
			return err
		}
		if c.enqueue(p) {
			return nil
		}
		// The stream died (or was reaped) between lookup and enqueue and
		// its poller has unregistered it; redial and try again. A peer
		// that is truly gone ends the loop with a dial error.
	}
}

// connTo returns the send path toward rank, dialing it if needed. The
// dial itself runs outside the endpoint lock with a per-peer in-flight
// marker: concurrent senders to the same cold peer wait for that one
// dial, while senders to connected peers (and accept/Close) are never
// head-of-line blocked behind a slow or dead address.
func (e *Endpoint) connTo(rank int) (*conn, error) {
	for {
		e.mu.Lock()
		// Close sets state before taking mu, so a sender that raced
		// past Send's entry check cannot dial and register a connection
		// after Close has torn down.
		if e.closed() {
			e.mu.Unlock()
			return nil, fabric.ErrClosed
		}
		if c := e.out[rank]; c != nil {
			e.mu.Unlock()
			return c, nil
		}
		if ch := e.dialing[rank]; ch != nil {
			e.mu.Unlock()
			<-ch
			continue // dial finished (either way) — re-evaluate
		}
		addr, ok := e.peers[rank]
		if !ok {
			e.mu.Unlock()
			return nil, fmt.Errorf("tcpfab: no address for rank %d and no accepted connection from it", rank)
		}
		ch := make(chan struct{})
		e.dialing[rank] = ch
		e.mu.Unlock()

		nc, err := e.dialWithBackoff(addr)

		e.mu.Lock()
		delete(e.dialing, rank)
		close(ch)
		if err != nil {
			e.mu.Unlock()
			return nil, fmt.Errorf("tcpfab: dial rank %d at %s: %w", rank, addr, err)
		}
		if e.closed() {
			e.mu.Unlock()
			nc.Close()
			return nil, fabric.ErrClosed
		}
		cn, pl, rerr := e.registerConnLocked(nc, rank)
		if rerr != nil {
			e.mu.Unlock()
			return nil, fmt.Errorf("tcpfab: register dialed conn for rank %d: %w", rank, rerr)
		}
		// Whether or not an accepted connection won the send-path slot
		// while we dialed (simultaneous connect), the dialed stream
		// stays open and read: our handshake is out, so the peer may
		// have adopted this stream as ITS send path and written frames
		// to it already — closing it here would RST those frames away.
		// A stream that lost the race on both ends just idles.
		sendPath := e.out[rank]
		e.mu.Unlock()
		if err := pl.register(cn); err != nil {
			e.unregisterUnpolled(cn)
			return nil, fmt.Errorf("tcpfab: register dialed conn for rank %d: %w", rank, err)
		}
		return sendPath, nil
	}
}

// dialWithBackoff dials addr and writes the stream handshake, retrying
// failed attempts with capped exponential backoff until dialRetryWindow
// elapses — the connection-resilience half of a peer restart (the other
// half is the poller unregistering the dead conn so Send redials). Close
// aborts the wait immediately; the last attempt's error is returned.
func (e *Endpoint) dialWithBackoff(addr string) (net.Conn, error) {
	backoff := dialBackoffFirst
	deadline := time.Now().Add(dialRetryWindow)
	for {
		c, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err == nil {
			err = writeHandshake(c, e.self, e.nodes)
			if err == nil {
				return c, nil
			}
			c.Close()
		}
		if e.closed() || time.Now().After(deadline) {
			return nil, err
		}
		select {
		case <-e.done:
			return nil, err
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}

// dupFD extracts the socket fd from a handshaken net.Conn for raw epoll
// use. The *os.File dup owns the fd from here on — the net.Conn is
// closed (its runtime-netpoller registration with it) and the dup is put
// back into non-blocking mode, which File() had cleared.
func dupFD(nc net.Conn) (*os.File, int, error) {
	tc, ok := nc.(*net.TCPConn)
	if !ok {
		nc.Close()
		return nil, 0, fmt.Errorf("tcpfab: %T is not a *net.TCPConn", nc)
	}
	f, err := tc.File()
	nc.Close()
	if err != nil {
		return nil, 0, fmt.Errorf("tcpfab: dup socket fd: %w", err)
	}
	fd := int(f.Fd())
	if err := syscall.SetNonblock(fd, true); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("tcpfab: set nonblock: %w", err)
	}
	return f, fd, nil
}

// registerConnLocked converts a handshaken stream into a poller-owned
// conn: dup the fd out of the net.Conn, pick a poller (starting it on
// first use), adopt the stream as rank's send path when none exists —
// loading any banked stash ahead of new traffic — and enter it in the
// endpoint tables. Caller holds e.mu and has ruled out Close having
// started; the caller must then hand the conn to pl.register outside
// the lock.
func (e *Endpoint) registerConnLocked(nc net.Conn, rank int) (*conn, *poller, error) {
	f, fd, err := dupFD(nc)
	if err != nil {
		return nil, nil, err
	}
	pl := e.pool.assignLocked()
	if err := pl.start(); err != nil {
		f.Close()
		return nil, nil, err
	}
	c := newConn(e, pl, f, fd, rank)
	if e.out[rank] == nil {
		if s, ok := e.stash[rank]; ok {
			delete(e.stash, rank)
			c.qbuf, c.qends, c.qn = s.buf, s.ends, s.n
			c.armed = true // add() performs the initial flush
			c.pendingFrames.Add(int64(s.n))
		}
		e.out[rank] = c
	}
	e.conns[c] = struct{}{}
	e.nConns.Add(1)
	return c, pl, nil
}

// unregisterUnpolled backs out a conn whose poller registration failed
// (endpoint raced Close): the stream never reached a poller, so this is
// the one teardown path that runs off the poller goroutine.
func (e *Endpoint) unregisterUnpolled(c *conn) {
	tail := c.killQueue()
	e.mu.Lock()
	if e.out[c.rank] == c {
		delete(e.out, c.rank)
	}
	delete(e.conns, c)
	if tail.n > 0 {
		if e.closed() {
			e.lost.Add(uint64(tail.n))
		} else {
			var merged stash
			appendFrames(&merged, e.stash[c.rank])
			appendFrames(&merged, tail)
			e.stash[c.rank] = merged
		}
	}
	e.mu.Unlock()
	c.f.Close()
	e.nConns.Add(-1)
}

// acceptLoop admits peers. The handshake runs in the per-connection
// goroutine — with the conn already tracked for teardown — so a peer that
// connects and stalls can never wedge Close. The goroutine ends at
// registration: from then on a shared poller services the stream.
func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.state.Load() != 0 {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.open[c] = struct{}{}
		e.wg.Add(1)
		e.mu.Unlock()
		go e.serveConn(c)
	}
}

// serveConn validates an accepted stream, adopts it as the send path to
// its peer when none exists, and hands it to a poller.
func (e *Endpoint) serveConn(nc net.Conn) {
	defer e.wg.Done()
	rank, nodes, err := readHandshake(nc)
	if err != nil || nodes != e.nodes || rank < 0 || rank >= e.nodes || rank == e.self {
		e.mu.Lock()
		delete(e.open, nc)
		e.mu.Unlock()
		nc.Close()
		return
	}
	e.mu.Lock()
	delete(e.open, nc)
	if e.closed() {
		e.mu.Unlock()
		nc.Close()
		return
	}
	c, pl, rerr := e.registerConnLocked(nc, rank)
	e.mu.Unlock()
	if rerr != nil {
		return
	}
	if err := pl.register(c); err != nil {
		e.unregisterUnpolled(c)
	}
}

// LostFrames counts frames Send accepted that were later abandoned: the
// already-written prefix of a failed flush batch (those bytes may or
// may not have reached the peer — re-sending could duplicate, so they
// can only be written off), plus any failure stash still unconsumed
// when Close runs. Frames a stream failure left guaranteed-undelivered
// are NOT counted here while the endpoint is open: they are stashed and
// re-sent on the redialed stream, so a transient failure with a
// successful redial is loss-free. The transport cannot return any of
// this as Send errors — it fails after Send has returned — so a nonzero
// count here is the loss signal operators should watch. Writes racing a
// stream failure may be counted even if their bytes made it out: the
// count is an upper bound on loss, never an undercount.
func (e *Endpoint) LostFrames() uint64 { return e.lost.Load() }

// KillConn forcibly fails the established stream toward rank, if one
// exists, and reports whether it did. It simulates an abrupt connection
// failure (peer crash, cable pull) for tests: the owning poller
// shutdown(2)s the socket and discovers the dead stream through its
// normal event path, so the salvage, stash, and redial machinery runs
// its production course.
func (e *Endpoint) KillConn(rank int) bool {
	e.mu.Lock()
	c := e.out[rank]
	e.mu.Unlock()
	if c == nil {
		return false
	}
	c.pl.kill(c)
	return true
}

// MaxPayload implements fabric.PayloadLimiter: the codec's frame ceiling
// bounds what one Send can carry.
func (e *Endpoint) MaxPayload() int { return fabric.MaxPayloadBytes }

// Pollers reports how many event-loop goroutines are currently running.
// Pollers start lazily and exit on Close, so this is also the endpoint's
// goroutine footprint for connection servicing.
func (e *Endpoint) Pollers() int { return int(e.nPollers.Load()) }

// OpenConns reports how many registered streams the endpoint currently
// holds (send paths plus simultaneous-connect losers kept for reading).
func (e *Endpoint) OpenConns() int { return int(e.nConns.Load()) }

// RegisterMetrics implements fabric.MetricSource: the poller pool's
// scalability counters join reg under prefix (the rail driver passes
// "node<rank>.rail.<name>"), next to the portable driver counters.
func (e *Endpoint) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.RegisterGauge(prefix+".pollers", "event-loop goroutines currently running", func() uint64 { return uint64(e.nPollers.Load()) })
	reg.RegisterGauge(prefix+".conns", "registered TCP streams currently open", func() uint64 { return uint64(e.nConns.Load()) })
	reg.RegisterCounter(prefix+".coalesced_frames", "frames flushed to the kernel via coalesced batch writes", e.coalesced.Load)
	reg.RegisterCounter(prefix+".flush_syscalls", "write(2) calls issued by the send flush path", e.flushSyscalls.Load)
	reg.RegisterCounter(prefix+".reaped_idle", "connections reaped by the idle timeout", e.reaped.Load)
}

func (e *Endpoint) closed() bool { return e.state.Load() != 0 }

// Close implements fabric.Endpoint: stop accepting, ask every stream to
// finish its queue and poll the flush progress (the pollers keep
// writing) so frames sent before Close still reach their peers (bounded
// by closeDrainTimeout against a peer that stopped reading), then stop
// the pollers — which tear down their streams — wake blocked receivers,
// and wait for every goroutine. Packets already received remain
// pollable. Idempotent.
func (e *Endpoint) Close() error {
	if !e.state.CompareAndSwap(0, 1) {
		return nil
	}
	if e.ln != nil {
		e.ln.Close()
	}
	e.mu.Lock()
	for c := range e.open {
		c.Close() // handshake-phase streams carry no frames yet
	}
	conns := make([]*conn, 0, len(e.conns))
	for c := range e.conns {
		conns = append(conns, c)
	}
	e.mu.Unlock()
	for _, c := range conns {
		c.markClosing()
	}
	deadline := time.Now().Add(closeDrainTimeout)
	for {
		left := int64(0)
		for _, c := range conns {
			left += c.pendingFrames.Load()
		}
		if left == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	e.pool.stop()
	close(e.done)
	e.wg.Wait()
	// Stashes that never met a successful redial are abandoned now: no
	// poller is left to bank more, so the count is final.
	e.mu.Lock()
	for r, s := range e.stash {
		e.lost.Add(uint64(s.n))
		delete(e.stash, r)
	}
	e.mu.Unlock()
	return nil
}

// writeHandshake sends the one-time stream preamble.
func writeHandshake(c net.Conn, self, nodes int) error {
	var b [hsBytes]byte
	put := func(off int, v uint32) {
		b[off] = byte(v)
		b[off+1] = byte(v >> 8)
		b[off+2] = byte(v >> 16)
		b[off+3] = byte(v >> 24)
	}
	put(0, hsMagic)
	put(4, hsVersion)
	put(8, uint32(self))
	put(12, uint32(nodes))
	_, err := c.Write(b[:])
	return err
}

// readHandshake validates a stream preamble and returns the peer identity.
func readHandshake(c net.Conn) (rank, nodes int, err error) {
	var b [hsBytes]byte
	c.SetReadDeadline(time.Now().Add(handshakeTimeout))
	defer c.SetReadDeadline(time.Time{})
	if _, err = io.ReadFull(c, b[:]); err != nil {
		return 0, 0, err
	}
	get := func(off int) uint32 {
		return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
	}
	if get(0) != hsMagic {
		return 0, 0, fmt.Errorf("tcpfab: bad handshake magic %#x", get(0))
	}
	if get(4) != hsVersion {
		return 0, 0, fmt.Errorf("tcpfab: handshake version %d, want %d", get(4), hsVersion)
	}
	return int(int32(get(8))), int(int32(get(12))), nil
}
