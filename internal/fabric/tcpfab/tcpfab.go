// Package tcpfab is a real transport backend for the fabric layer: packets
// travel between operating-system processes as length-prefixed frames
// (fabric's codec) over TCP connections, one per peer per direction.
//
// Topology is a full mesh of ranks. Every endpoint listens; a connection
// toward a peer is dialed lazily on first send when the peer's address is
// known, and an accepted connection is adopted as the send path when no
// dialed one exists yet — so an asymmetric setup (only one side knows an
// address, as in pingpong's -listen/-connect pair) still yields two-way
// traffic. Each direction of a pair owns its own TCP stream, which gives
// the per-sender FIFO delivery the engine's sequence-ordering layer
// assumes, with no cross-size reordering at all.
package tcpfab

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/wire"
)

// handshake frame: magic, codec-compatible version, sender rank, cluster
// size. Exchanged once, dialer to acceptor, before any packet frames.
const (
	hsMagic   = 0x50494F4D // "PIOM"
	hsVersion = 1
	hsBytes   = 4 + 4 + 4 + 4

	dialTimeout      = 10 * time.Second
	handshakeTimeout = 10 * time.Second
)

// Config describes one process's attachment to a TCP fabric.
type Config struct {
	// Self is this endpoint's rank.
	Self int
	// Nodes is the cluster size.
	Nodes int
	// Listen is the address to accept peers on (e.g. "127.0.0.1:0",
	// ":9777"). Empty disables accepting: only dialed peers are
	// reachable.
	Listen string
	// Peers maps rank to dial address for the peers this process may
	// have to contact first. Peers that always speak first (they dial
	// us) can be omitted; their accepted connection becomes the send
	// path.
	Peers map[int]string
}

// Endpoint is one process's port on a TCP fabric.
type Endpoint struct {
	self, nodes int

	ln net.Listener

	mu      sync.Mutex
	peers   map[int]string
	out     map[int]*peerConn     // send path per peer
	dialing map[int]chan struct{} // in-flight dial per peer; closed when done
	open    map[net.Conn]struct{} // every live conn, for teardown

	seq    atomic.Uint64
	state  atomic.Int32  // 0 open, 1 closed
	done   chan struct{} // closed on Close; wakes every blocked receiver
	inbox  inbox
	wg     sync.WaitGroup
}

// peerConn serializes frame writes onto one TCP stream.
type peerConn struct {
	mu sync.Mutex
	c  net.Conn
	bw *bufio.Writer
}

// writePacket frames p onto the stream.
func (pc *peerConn) writePacket(p *wire.Packet) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if err := fabric.WritePacket(pc.bw, p); err != nil {
		return err
	}
	return pc.bw.Flush()
}

// inbox is the arrival queue: FIFO, one notify edge for blocking
// receivers.
type inbox struct {
	mu     sync.Mutex
	pkts   []*wire.Packet
	notify chan struct{}
}

func (ib *inbox) push(p *wire.Packet) {
	ib.mu.Lock()
	ib.pkts = append(ib.pkts, p)
	ib.mu.Unlock()
	select {
	case ib.notify <- struct{}{}:
	default:
	}
}

func (ib *inbox) pop() *wire.Packet {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if len(ib.pkts) == 0 {
		return nil
	}
	p := ib.pkts[0]
	ib.pkts = ib.pkts[1:]
	return p
}

func (ib *inbox) empty() bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return len(ib.pkts) == 0
}

// New opens an endpoint per cfg. If cfg.Listen is set the returned
// endpoint is already accepting; its actual address (useful with port 0)
// is Addr().
func New(cfg Config) (*Endpoint, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("tcpfab: cluster needs at least one node")
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Nodes {
		return nil, fmt.Errorf("tcpfab: rank %d outside cluster of %d", cfg.Self, cfg.Nodes)
	}
	e := &Endpoint{
		self:    cfg.Self,
		nodes:   cfg.Nodes,
		peers:   make(map[int]string, len(cfg.Peers)),
		out:     make(map[int]*peerConn),
		dialing: make(map[int]chan struct{}),
		open:    make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
		inbox:   inbox{notify: make(chan struct{}, 1)},
	}
	for r, a := range cfg.Peers {
		e.peers[r] = a
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("tcpfab: listen %s: %w", cfg.Listen, err)
		}
		e.ln = ln
		e.wg.Add(1)
		go e.acceptLoop()
	}
	return e, nil
}

// Addr returns the actual listen address, or nil when not listening.
func (e *Endpoint) Addr() net.Addr {
	if e.ln == nil {
		return nil
	}
	return e.ln.Addr()
}

// SetPeerAddr records rank's dial address (e.g. learned out of band after
// both sides bound ephemeral ports).
func (e *Endpoint) SetPeerAddr(rank int, addr string) {
	e.mu.Lock()
	e.peers[rank] = addr
	e.mu.Unlock()
}

// Self implements fabric.Endpoint.
func (e *Endpoint) Self() int { return e.self }

// Nodes implements fabric.Endpoint.
func (e *Endpoint) Nodes() int { return e.nodes }

// NextSeq implements fabric.Endpoint. Sequence numbers only need to be
// unique per origin endpoint: receivers order per-sender streams.
func (e *Endpoint) NextSeq() uint64 { return e.seq.Add(1) }

// Backlog implements fabric.Endpoint: TCP runs its own flow control, the
// submission gate is always open.
func (e *Endpoint) Backlog(int) time.Duration { return 0 }

// Pending implements fabric.Endpoint.
func (e *Endpoint) Pending() bool { return !e.inbox.empty() }

// Poll implements fabric.Endpoint.
func (e *Endpoint) Poll() *wire.Packet { return e.inbox.pop() }

// BlockingRecv implements fabric.Endpoint.
func (e *Endpoint) BlockingRecv(timeout time.Duration) *wire.Packet {
	deadline := time.Now().Add(timeout)
	for {
		if p := e.inbox.pop(); p != nil {
			return p
		}
		if e.closed() {
			return nil
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil
		}
		t := time.NewTimer(wait)
		select {
		case <-e.inbox.notify:
		case <-e.done:
		case <-t.C:
		}
		t.Stop()
	}
}

// Dial eagerly establishes the connection toward rank, which Send would
// otherwise create lazily. Use it to fail fast on a bad address instead
// of discovering it one dropped packet at a time.
func (e *Endpoint) Dial(rank int) error {
	if e.closed() {
		return fabric.ErrClosed
	}
	if rank == e.self {
		return nil
	}
	_, err := e.connTo(rank)
	return err
}

// Send implements fabric.Endpoint.
func (e *Endpoint) Send(p *wire.Packet) error {
	if e.closed() {
		return fabric.ErrClosed
	}
	if p.Dst < 0 || p.Dst >= e.nodes {
		return fmt.Errorf("tcpfab: send to rank %d outside cluster of %d", p.Dst, e.nodes)
	}
	if p.WireLen <= 0 {
		p.WireLen = len(p.Payload)
	}
	if p.Dst == e.self {
		e.inbox.push(p)
		return nil
	}
	pc, err := e.connTo(p.Dst)
	if err != nil {
		return err
	}
	if err := pc.writePacket(p); err != nil {
		e.dropConn(p.Dst, pc)
		return fmt.Errorf("tcpfab: send to rank %d: %w", p.Dst, err)
	}
	return nil
}

// connTo returns the send path toward rank, dialing it if needed. The
// dial itself runs outside the endpoint lock with a per-peer in-flight
// marker: concurrent senders to the same cold peer wait for that one
// dial, while senders to connected peers (and accept/Close) are never
// head-of-line blocked behind a slow or dead address.
func (e *Endpoint) connTo(rank int) (*peerConn, error) {
	for {
		e.mu.Lock()
		// Close sets state before taking mu, so a sender that raced
		// past Send's entry check cannot dial and register a connection
		// (and its reader goroutine) after Close has torn down.
		if e.closed() {
			e.mu.Unlock()
			return nil, fabric.ErrClosed
		}
		if pc := e.out[rank]; pc != nil {
			e.mu.Unlock()
			return pc, nil
		}
		if ch := e.dialing[rank]; ch != nil {
			e.mu.Unlock()
			<-ch
			continue // dial finished (either way) — re-evaluate
		}
		addr, ok := e.peers[rank]
		if !ok {
			e.mu.Unlock()
			return nil, fmt.Errorf("tcpfab: no address for rank %d and no accepted connection from it", rank)
		}
		ch := make(chan struct{})
		e.dialing[rank] = ch
		e.mu.Unlock()

		c, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err == nil {
			if herr := writeHandshake(c, e.self, e.nodes); herr != nil {
				c.Close()
				err = herr
			}
		}

		e.mu.Lock()
		delete(e.dialing, rank)
		close(ch)
		if err != nil {
			e.mu.Unlock()
			return nil, fmt.Errorf("tcpfab: dial rank %d at %s: %w", rank, addr, err)
		}
		if e.closed() {
			e.mu.Unlock()
			c.Close()
			return nil, fabric.ErrClosed
		}
		if pc := e.out[rank]; pc != nil {
			// An accepted connection was adopted while we dialed; use
			// it and drop ours.
			e.mu.Unlock()
			c.Close()
			return pc, nil
		}
		pc := &peerConn{c: c, bw: bufio.NewWriter(c)}
		e.out[rank] = pc
		e.open[c] = struct{}{}
		// The dialed stream is bidirectional: the peer may answer on it
		// instead of dialing back (it adopted it), so always read it.
		e.wg.Add(1)
		go e.readLoop(c, rank)
		e.mu.Unlock()
		return pc, nil
	}
}

// dropConn removes a failed send path so the next send redials.
func (e *Endpoint) dropConn(rank int, pc *peerConn) {
	e.mu.Lock()
	if e.out[rank] == pc {
		delete(e.out, rank)
	}
	delete(e.open, pc.c)
	e.mu.Unlock()
	pc.c.Close()
}

// acceptLoop admits peers. The handshake runs in the per-connection
// goroutine — with the conn already tracked for teardown — so a peer that
// connects and stalls can never wedge Close.
func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.state.Load() != 0 {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.open[c] = struct{}{}
		e.wg.Add(1)
		e.mu.Unlock()
		go e.serveConn(c)
	}
}

// serveConn validates an accepted stream, adopts it as the send path to
// its peer when none exists, and streams its frames into the inbox.
func (e *Endpoint) serveConn(c net.Conn) {
	defer e.wg.Done()
	rank, nodes, err := readHandshake(c)
	if err != nil || nodes != e.nodes || rank < 0 || rank >= e.nodes || rank == e.self {
		e.forgetConn(c, -1)
		return
	}
	e.mu.Lock()
	if e.out[rank] == nil {
		e.out[rank] = &peerConn{c: c, bw: bufio.NewWriter(c)}
	}
	e.mu.Unlock()
	e.wg.Add(1)
	e.readLoop(c, rank)
}

// readLoop decodes frames from one peer stream into the inbox until the
// stream fails or the endpoint closes.
func (e *Endpoint) readLoop(c net.Conn, rank int) {
	defer e.wg.Done()
	br := bufio.NewReader(c)
	for {
		p, err := fabric.ReadPacket(br)
		if err != nil {
			e.forgetConn(c, rank)
			return
		}
		// A peer cannot speak for another rank: the stream's handshake
		// identity wins over the frame header.
		p.Src = rank
		e.inbox.push(p)
	}
}

// forgetConn closes c and unregisters it from the teardown set and, when
// it was rank's send path, from the routing table.
func (e *Endpoint) forgetConn(c net.Conn, rank int) {
	e.mu.Lock()
	delete(e.open, c)
	if rank >= 0 {
		if pc := e.out[rank]; pc != nil && pc.c == c {
			delete(e.out, rank)
		}
	}
	e.mu.Unlock()
	c.Close()
}

func (e *Endpoint) closed() bool { return e.state.Load() != 0 }

// Close implements fabric.Endpoint: stop accepting, tear down every
// stream, wake blocked receivers, and wait for the reader goroutines.
// Packets already received remain pollable. Idempotent.
func (e *Endpoint) Close() error {
	if !e.state.CompareAndSwap(0, 1) {
		return nil
	}
	if e.ln != nil {
		e.ln.Close()
	}
	e.mu.Lock()
	conns := make([]net.Conn, 0, len(e.open))
	for c := range e.open {
		conns = append(conns, c)
	}
	e.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	close(e.done)
	e.wg.Wait()
	return nil
}

// writeHandshake sends the one-time stream preamble.
func writeHandshake(c net.Conn, self, nodes int) error {
	var b [hsBytes]byte
	put := func(off int, v uint32) {
		b[off] = byte(v)
		b[off+1] = byte(v >> 8)
		b[off+2] = byte(v >> 16)
		b[off+3] = byte(v >> 24)
	}
	put(0, hsMagic)
	put(4, hsVersion)
	put(8, uint32(self))
	put(12, uint32(nodes))
	_, err := c.Write(b[:])
	return err
}

// readHandshake validates a stream preamble and returns the peer identity.
func readHandshake(c net.Conn) (rank, nodes int, err error) {
	var b [hsBytes]byte
	c.SetReadDeadline(time.Now().Add(handshakeTimeout))
	defer c.SetReadDeadline(time.Time{})
	if _, err = io.ReadFull(c, b[:]); err != nil {
		return 0, 0, err
	}
	get := func(off int) uint32 {
		return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
	}
	if get(0) != hsMagic {
		return 0, 0, fmt.Errorf("tcpfab: bad handshake magic %#x", get(0))
	}
	if get(4) != hsVersion {
		return 0, 0, fmt.Errorf("tcpfab: handshake version %d, want %d", get(4), hsVersion)
	}
	return int(int32(get(8))), int(int32(get(12))), nil
}
