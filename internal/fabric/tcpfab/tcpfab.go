// Package tcpfab is a real transport backend for the fabric layer: packets
// travel between operating-system processes as length-prefixed frames
// (fabric's codec) over TCP connections, one per peer per direction.
//
// Topology is a full mesh of ranks. Every endpoint listens; a connection
// toward a peer is dialed lazily on first send when the peer's address is
// known, and an accepted connection is adopted as the send path when no
// dialed one exists yet — so an asymmetric setup (only one side knows an
// address, as in pingpong's -listen/-connect pair) still yields two-way
// traffic. Each endpoint writes to a peer on exactly one stream, which
// gives the per-sender FIFO delivery the engine's sequence-ordering layer
// assumes, with no cross-size reordering at all.
//
// Simultaneous connect (both sides of a cold pair dial at once) can leave
// a pair with two live streams: each side may adopt the other's dialed
// connection as its send path before its own dial completes. Once a
// handshake has been written on a dialed stream the peer may legitimately
// answer on it, so the loser of the race is never closed — it stays open
// and read, it just carries no outbound traffic from this side. Closing
// it instead would RST frames the peer already wrote into it.
package tcpfab

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/sync2"
	"pioman/internal/wire"
)

// handshake frame: magic, codec-compatible version, sender rank, cluster
// size. Exchanged once, dialer to acceptor, before any packet frames.
const (
	hsMagic   = 0x50494F4D // "PIOM"
	hsVersion = 1
	hsBytes   = 4 + 4 + 4 + 4

	dialTimeout      = 10 * time.Second
	handshakeTimeout = 10 * time.Second

	// Dial retry tuning: a transient peer restart (process replaced, its
	// listener rebound moments later) looks exactly like a dead address
	// for a short window. Retrying the dial with capped exponential
	// backoff inside dialRetryWindow rides that window out, so one peer
	// bouncing does not permanently strand the other side's rendezvous
	// state; only an address that stays dead for the whole window counts
	// as a failed dial.
	dialRetryWindow  = 3 * time.Second
	dialBackoffFirst = 10 * time.Millisecond
	dialBackoffMax   = 400 * time.Millisecond

	// closeDrainTimeout bounds how long Close lets writers flush queued
	// frames toward a peer that has stopped reading.
	closeDrainTimeout = 5 * time.Second

	// maxRecycledBuf caps the outbound buffer capacity a writer keeps
	// for reuse between batches (a few MTU-sized frames' worth).
	maxRecycledBuf = 256 << 10

	// readBufBytes sizes each stream's buffered reader. The old default
	// 4096-byte bufio buffer made every frame above it cross two copies
	// (socket→bufio, bufio→payload); 64 KiB batches small frames
	// efficiently, and payloads larger than it bypass the buffer
	// entirely — ReadPacketPooled's io.ReadFull drains the buffered
	// prefix, then bufio delegates the large remainder straight into
	// the pooled payload buffer.
	readBufBytes = 64 << 10
)

// Config describes one process's attachment to a TCP fabric.
type Config struct {
	// Self is this endpoint's rank.
	Self int
	// Nodes is the cluster size.
	Nodes int
	// Listen is the address to accept peers on (e.g. "127.0.0.1:0",
	// ":9777"). Empty disables accepting: only dialed peers are
	// reachable.
	Listen string
	// Peers maps rank to dial address for the peers this process may
	// have to contact first. Peers that always speak first (they dial
	// us) can be omitted; their accepted connection becomes the send
	// path.
	Peers map[int]string
}

// Endpoint is one process's port on a TCP fabric.
type Endpoint struct {
	self, nodes int

	ln net.Listener

	mu      sync.Mutex
	peers   map[int]string
	out     map[int]*peerConn     // send path per peer
	dialing map[int]chan struct{} // in-flight dial per peer; closed when done
	open    map[net.Conn]struct{} // every live conn, for teardown
	stash   map[int]stash         // undelivered frames of a failed stream, per peer

	seq   atomic.Uint64
	lost  atomic.Uint64 // frames accepted by Send, then lost with a stream
	state atomic.Int32  // 0 open, 1 closed
	done  chan struct{} // closed on Close; wakes every blocked receiver
	inbox inbox
	wg    sync.WaitGroup
	// wwg tracks writer goroutines separately: Close waits for their
	// queues to drain before it may close the connections under them.
	wwg sync.WaitGroup
}

// peerConn owns the outbound half of one peer stream: Send serializes
// frames into an unbounded buffer, a dedicated writer goroutine drains
// it onto the socket. The buffering is what lets Send keep the Endpoint
// contract ("Send never blocks on the receiver making progress") even
// when the kernel send buffer has filled against a receiver that isn't
// draining — the synchronous-write alternative distributed-deadlocks two
// ranks that flood eager traffic at each other before polling.
type peerConn struct {
	c net.Conn

	mu      sync.Mutex
	cond    *sync.Cond
	buf     []byte // serialized frames awaiting the writer
	ends    []int  // end offset of each frame in buf, ascending
	nframes int    // frames in buf, for loss accounting
	dead    bool   // stop now, surrender the buffer: the conn failed
	closing bool   // stop once the buffer is drained: endpoint closing
}

// stash holds serialized frames bound for a peer whose stream failed
// before they were written. The frame end offsets let a later failure
// split the run at a write boundary again. A stash primes the next
// stream adopted toward its peer, so the frames go out ahead of any new
// traffic; only an endpoint that closes with the stash unconsumed
// abandons it (counted in LostFrames by Close).
type stash struct {
	buf  []byte
	ends []int // end offset of each frame in buf, ascending
	n    int   // frame count (== len(ends))
}

// appendFrames concatenates src's frames after dst's, rebasing the end
// offsets onto the combined buffer.
func appendFrames(dst *stash, src stash) {
	if src.n == 0 {
		return
	}
	base := len(dst.buf)
	dst.buf = append(dst.buf, src.buf...)
	for _, end := range src.ends {
		dst.ends = append(dst.ends, base+end)
	}
	dst.n += src.n
}

func newPeerConn(c net.Conn) *peerConn {
	pc := &peerConn{c: c}
	pc.cond = sync.NewCond(&pc.mu)
	return pc
}

// enqueue frames p for the writer goroutine. It reports false when the
// stream no longer accepts frames, in which case the caller must redial.
//
// Serialization happens here, before Send returns, not in the writer:
// the engine may complete the request — telling the application its
// buffer is reusable — the moment Send returns, so the payload bytes
// must be captured first. The caller has bounds-checked the payload, so
// AppendPacket cannot panic.
func (pc *peerConn) enqueue(p *wire.Packet) bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.dead || pc.closing {
		return false
	}
	pc.buf = fabric.AppendPacket(pc.buf, p)
	pc.ends = append(pc.ends, len(pc.buf))
	pc.nframes++
	pc.cond.Signal()
	return true
}

// kill marks the stream dead and wakes the writer so it exits,
// surrendering anything still buffered to the caller. None of the
// returned frames ever reached the socket, so the caller may stash them
// for the stream's replacement; repeat kills return an empty remainder.
func (pc *peerConn) kill() stash {
	pc.mu.Lock()
	pc.dead = true
	s := stash{pc.buf, pc.ends, pc.nframes}
	pc.buf, pc.ends, pc.nframes = nil, nil, 0
	pc.cond.Signal()
	pc.mu.Unlock()
	return s
}

// drain asks the writer to finish the queue and then exit. A frame the
// engine sent before Close must still reach the kernel buffer: with the
// old synchronous Send it already had, and the shutdown sequencing of
// both ranks' protocols (the closer's last ack completes the peer's
// final request) depends on it.
func (pc *peerConn) drain() {
	pc.mu.Lock()
	pc.closing = true
	pc.cond.Signal()
	pc.mu.Unlock()
}

// inbox is the arrival queue: FIFO, one notify edge for blocking
// receivers. The head index (rather than re-slicing pkts[1:]) keeps the
// backing array's full capacity across push/pop cycles, so a steady
// stream of packets recycles one array instead of reallocating — part
// of the allocation-free receive path.
type inbox struct {
	mu     sync.Mutex
	pkts   []*wire.Packet
	head   int
	notify chan struct{}
}

func (ib *inbox) push(p *wire.Packet) {
	ib.mu.Lock()
	ib.pkts, ib.head = sync2.CompactQueue(ib.pkts, ib.head)
	ib.pkts = append(ib.pkts, p)
	ib.mu.Unlock()
	select {
	case ib.notify <- struct{}{}:
	default:
	}
}

// pushRun appends a whole decoded run under one lock acquisition and
// fires a single notify edge for it — the producer half of the batched
// receive path: a read loop that decoded k frames from one socket visit
// costs the inbox one lock round trip and wakes blocked receivers once,
// not k times.
func (ib *inbox) pushRun(run []*wire.Packet) {
	if len(run) == 0 {
		return
	}
	ib.mu.Lock()
	ib.pkts, ib.head = sync2.PushRun(ib.pkts, ib.head, run)
	ib.mu.Unlock()
	select {
	case ib.notify <- struct{}{}:
	default:
	}
}

// popRun pops up to len(into) queued packets in FIFO order under one
// lock acquisition — the consumer half of the batched receive path.
func (ib *inbox) popRun(into []*wire.Packet) int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	var n int
	ib.pkts, ib.head, n = sync2.PopRun(ib.pkts, ib.head, into)
	return n
}

func (ib *inbox) pop() *wire.Packet {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.head == len(ib.pkts) {
		return nil
	}
	p := ib.pkts[ib.head]
	ib.pkts[ib.head] = nil // the consumer owns it now; drop the queue's alias
	ib.head++
	if ib.head == len(ib.pkts) {
		ib.pkts, ib.head = ib.pkts[:0], 0
	}
	return p
}

func (ib *inbox) empty() bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.head == len(ib.pkts)
}

// New opens an endpoint per cfg. If cfg.Listen is set the returned
// endpoint is already accepting; its actual address (useful with port 0)
// is Addr().
func New(cfg Config) (*Endpoint, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("tcpfab: cluster needs at least one node")
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Nodes {
		return nil, fmt.Errorf("tcpfab: rank %d outside cluster of %d", cfg.Self, cfg.Nodes)
	}
	e := &Endpoint{
		self:    cfg.Self,
		nodes:   cfg.Nodes,
		peers:   make(map[int]string, len(cfg.Peers)),
		out:     make(map[int]*peerConn),
		dialing: make(map[int]chan struct{}),
		open:    make(map[net.Conn]struct{}),
		stash:   make(map[int]stash),
		done:    make(chan struct{}),
		inbox:   inbox{notify: make(chan struct{}, 1)},
	}
	for r, a := range cfg.Peers {
		e.peers[r] = a
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("tcpfab: listen %s: %w", cfg.Listen, err)
		}
		e.ln = ln
		e.wg.Add(1)
		go e.acceptLoop()
	}
	return e, nil
}

// Addr returns the actual listen address, or nil when not listening.
func (e *Endpoint) Addr() net.Addr {
	if e.ln == nil {
		return nil
	}
	return e.ln.Addr()
}

// SetPeerAddr records rank's dial address (e.g. learned out of band after
// both sides bound ephemeral ports).
func (e *Endpoint) SetPeerAddr(rank int, addr string) {
	e.mu.Lock()
	e.peers[rank] = addr
	e.mu.Unlock()
}

// Self implements fabric.Endpoint.
func (e *Endpoint) Self() int { return e.self }

// Nodes implements fabric.Endpoint.
func (e *Endpoint) Nodes() int { return e.nodes }

// NextSeq implements fabric.Endpoint. Sequence numbers only need to be
// unique per origin endpoint: receivers order per-sender streams.
func (e *Endpoint) NextSeq() uint64 { return e.seq.Add(1) }

// Backlog implements fabric.Endpoint: TCP runs its own flow control, the
// submission gate is always open.
func (e *Endpoint) Backlog(int) time.Duration { return 0 }

// SendCaptures implements fabric.SendCapturer: Send serializes cross-rank
// packets (enqueue) and copies self-deliveries before returning, so the
// caller may recycle the packet struct immediately.
func (e *Endpoint) SendCaptures() bool { return true }

// Pending implements fabric.Endpoint. Only packets already decoded into
// the inbox count: bytes still in a socket buffer or mid-read in a
// readLoop are invisible here — the weaker Pending semantics the
// fabric.Endpoint contract documents for real transports. The reader
// goroutines push such packets and fire the notify edge on their own, so
// a BlockingRecv waiter wakes regardless of what Pending reported.
func (e *Endpoint) Pending() bool { return !e.inbox.empty() }

// Poll implements fabric.Endpoint.
func (e *Endpoint) Poll() *wire.Packet { return e.inbox.pop() }

// PollBatch implements fabric.Endpoint natively: the inbox hands out a
// FIFO run of decoded packets under one lock acquisition. Per-sender
// order is preserved — each peer's frames enter the inbox in stream
// order and the run pops in queue order.
func (e *Endpoint) PollBatch(into []*wire.Packet) int { return e.inbox.popRun(into) }

// BlockingRecv implements fabric.Endpoint. The deadline timer is drawn
// from a pool and armed once for the whole wait, so a blocking receive
// allocates nothing — spurious notify wakeups just re-poll while the
// timer keeps running toward the deadline.
func (e *Endpoint) BlockingRecv(timeout time.Duration) *wire.Packet {
	if p := e.inbox.pop(); p != nil {
		return p
	}
	t := sync2.GetTimer(timeout)
	fired := false
	defer func() { sync2.PutTimer(t, fired) }()
	for {
		if p := e.inbox.pop(); p != nil {
			return p
		}
		if e.closed() {
			return nil
		}
		select {
		case <-e.inbox.notify:
		case <-e.done:
		case <-t.C:
			fired = true
			return e.inbox.pop()
		}
	}
}

// Dial eagerly establishes the connection toward rank, which Send would
// otherwise create lazily. Use it to fail fast on a bad address instead
// of discovering it one dropped packet at a time.
func (e *Endpoint) Dial(rank int) error {
	if e.closed() {
		return fabric.ErrClosed
	}
	if rank == e.self {
		return nil
	}
	_, err := e.connTo(rank)
	return err
}

// Send implements fabric.Endpoint.
func (e *Endpoint) Send(p *wire.Packet) error {
	if e.closed() {
		return fabric.ErrClosed
	}
	if p.Dst < 0 || p.Dst >= e.nodes {
		return fmt.Errorf("tcpfab: send to rank %d outside cluster of %d", p.Dst, e.nodes)
	}
	if p.WireLen <= 0 {
		p.WireLen = len(p.Payload)
	}
	// Refuse here, synchronously, what the codec cannot frame: detected
	// any later, the writer could only treat it as a stream failure and
	// kill a healthy connection. Self-delivery skips the codec but is
	// held to the same limit, so a payload does not pass rank-local
	// testing only to fail on its first cross-rank trip.
	if len(p.Payload) > fabric.MaxPayloadBytes {
		return fmt.Errorf("tcpfab: %d-byte payload exceeds frame limit %d", len(p.Payload), fabric.MaxPayloadBytes)
	}
	if p.Dst == e.self {
		// Self-delivery skips the codec but not the capture rule: the
		// engine may reuse the payload buffer the moment Send returns, so
		// the packet must stop aliasing it before entering the inbox —
		// cross-rank sends capture by serializing in enqueue. The copy
		// lives in pooled storage like any decoded arrival, so the
		// consumer's ReleasePacket recycles it the same way.
		e.inbox.push(fabric.CapturePacket(p))
		return nil
	}
	for {
		pc, err := e.connTo(p.Dst)
		if err != nil {
			return err
		}
		if pc.enqueue(p) {
			return nil
		}
		// The stream died between lookup and enqueue and its writer
		// has unregistered it; redial and try again. A peer that is
		// truly gone ends the loop with a dial error.
	}
}

// connTo returns the send path toward rank, dialing it if needed. The
// dial itself runs outside the endpoint lock with a per-peer in-flight
// marker: concurrent senders to the same cold peer wait for that one
// dial, while senders to connected peers (and accept/Close) are never
// head-of-line blocked behind a slow or dead address.
func (e *Endpoint) connTo(rank int) (*peerConn, error) {
	for {
		e.mu.Lock()
		// Close sets state before taking mu, so a sender that raced
		// past Send's entry check cannot dial and register a connection
		// (and its reader goroutine) after Close has torn down.
		if e.closed() {
			e.mu.Unlock()
			return nil, fabric.ErrClosed
		}
		if pc := e.out[rank]; pc != nil {
			e.mu.Unlock()
			return pc, nil
		}
		if ch := e.dialing[rank]; ch != nil {
			e.mu.Unlock()
			<-ch
			continue // dial finished (either way) — re-evaluate
		}
		addr, ok := e.peers[rank]
		if !ok {
			e.mu.Unlock()
			return nil, fmt.Errorf("tcpfab: no address for rank %d and no accepted connection from it", rank)
		}
		ch := make(chan struct{})
		e.dialing[rank] = ch
		e.mu.Unlock()

		c, err := e.dialWithBackoff(addr)

		e.mu.Lock()
		delete(e.dialing, rank)
		close(ch)
		if err != nil {
			e.mu.Unlock()
			return nil, fmt.Errorf("tcpfab: dial rank %d at %s: %w", rank, addr, err)
		}
		if e.closed() {
			e.mu.Unlock()
			c.Close()
			return nil, fabric.ErrClosed
		}
		e.open[c] = struct{}{}
		pc := e.out[rank]
		if pc == nil {
			pc = e.adoptConn(rank, c)
		}
		// Whether or not an accepted connection won the send-path slot
		// while we dialed (simultaneous connect), the dialed stream
		// stays open and read: our handshake is out, so the peer may
		// have adopted this stream as ITS send path and written frames
		// to it already — closing it here would RST those frames away.
		// A stream that lost the race on both ends just idles.
		e.wg.Add(1)
		go e.readLoop(c, rank)
		e.mu.Unlock()
		return pc, nil
	}
}

// dialWithBackoff dials addr and writes the stream handshake, retrying
// failed attempts with capped exponential backoff until dialRetryWindow
// elapses — the connection-resilience half of a peer restart (the other
// half is the writer unregistering the dead conn so Send redials). Close
// aborts the wait immediately; the last attempt's error is returned.
func (e *Endpoint) dialWithBackoff(addr string) (net.Conn, error) {
	backoff := dialBackoffFirst
	deadline := time.Now().Add(dialRetryWindow)
	for {
		c, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err == nil {
			err = writeHandshake(c, e.self, e.nodes)
			if err == nil {
				return c, nil
			}
			c.Close()
		}
		if e.closed() || time.Now().After(deadline) {
			return nil, err
		}
		select {
		case <-e.done:
			return nil, err
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}

// adoptConn registers c as the send path toward rank and starts its
// writer goroutine. A stash banked by a previous stream's failure is
// loaded into the fresh writer queue first, so the undelivered run goes
// out ahead of any traffic enqueued on the new stream. Caller holds
// e.mu and has ruled out Close having started (closed() false under
// this same lock hold).
func (e *Endpoint) adoptConn(rank int, c net.Conn) *peerConn {
	pc := newPeerConn(c)
	if s, ok := e.stash[rank]; ok {
		delete(e.stash, rank)
		pc.buf, pc.ends, pc.nframes = s.buf, s.ends, s.n
	}
	e.out[rank] = pc
	e.wwg.Add(1)
	go e.writeLoop(pc, rank)
	return pc
}

// writeLoop drains rank's outbound buffer onto the socket until the
// stream dies. On a write error it splits the batch at the kernel-write
// boundary: frames fully handed to the kernel may have reached the peer
// — re-sending them could deliver duplicates, which the receiver's
// ordering layer treats as protocol corruption — so they are counted in
// LostFrames (the documented upper bound on loss). The partially
// written frame and everything behind it are guaranteed undelivered
// (the peer discards an incomplete frame along with the stream), so
// they are stashed for the stream's replacement instead of dropped.
func (e *Endpoint) writeLoop(pc *peerConn, rank int) {
	defer e.wwg.Done()
	for {
		pc.mu.Lock()
		for len(pc.buf) == 0 && !pc.dead && !pc.closing {
			pc.cond.Wait()
		}
		if pc.dead || (pc.closing && len(pc.buf) == 0) {
			pc.mu.Unlock()
			return
		}
		batch, ends, n := pc.buf, pc.ends, pc.nframes
		pc.buf, pc.ends, pc.nframes = nil, nil, 0
		pc.mu.Unlock()
		nw, err := pc.c.Write(batch)
		if err != nil {
			i := 0
			for i < n && ends[i] <= nw {
				i++
			}
			var sal stash
			if i < n {
				start := 0
				if i > 0 {
					start = ends[i-1]
				}
				sal.buf = batch[start:]
				sal.ends = make([]int, n-i)
				for j := i; j < n; j++ {
					sal.ends[j-i] = ends[j] - start
				}
				sal.n = n - i
			}
			e.lost.Add(uint64(i))
			e.failConn(rank, pc, sal)
			return
		}
		// Hand the written buffer back for reuse unless new frames
		// already started a fresh one. Burst-sized arrays go to the GC
		// instead: recycling them would pin every connection at its
		// historical peak backlog.
		if cap(batch) <= maxRecycledBuf {
			pc.mu.Lock()
			if pc.buf == nil {
				pc.buf, pc.ends = batch[:0], ends[:0]
			}
			pc.mu.Unlock()
		}
	}
}

// failConn tears down rank's failed send path and preserves, in FIFO
// order, every frame guaranteed undelivered: the salvaged unwritten
// tail of the failed write (oldest), then any stash a concurrent
// failure path already banked, then whatever was still enqueued on the
// writer. The stash primes the next stream adopted toward rank —
// adoptConn loads it ahead of new traffic — and a background redial is
// kicked off at once so the frames do not sit waiting for the next
// Send to trigger reconnection.
func (e *Endpoint) failConn(rank int, pc *peerConn, sal stash) {
	tail := pc.kill()
	redial := false
	e.mu.Lock()
	if e.out[rank] == pc {
		delete(e.out, rank)
	}
	delete(e.open, pc.c)
	if sal.n+tail.n > 0 {
		var merged stash
		appendFrames(&merged, sal)
		appendFrames(&merged, e.stash[rank])
		appendFrames(&merged, tail)
		e.stash[rank] = merged
		if !e.closed() {
			redial = true
			// Register with wg under e.mu: Close's teardown also runs
			// under e.mu after flipping state, so this Add is ordered
			// before Close can reach its Wait.
			e.wg.Add(1)
		}
	}
	e.mu.Unlock()
	pc.c.Close()
	if redial {
		go func() {
			defer e.wg.Done()
			// On success adoptConn consumes the stash; on failure it
			// stays banked for the next Send's redial to carry.
			e.connTo(rank)
		}()
	}
}

// acceptLoop admits peers. The handshake runs in the per-connection
// goroutine — with the conn already tracked for teardown — so a peer that
// connects and stalls can never wedge Close.
func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.state.Load() != 0 {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.open[c] = struct{}{}
		e.wg.Add(1)
		e.mu.Unlock()
		go e.serveConn(c)
	}
}

// serveConn validates an accepted stream, adopts it as the send path to
// its peer when none exists, and streams its frames into the inbox.
func (e *Endpoint) serveConn(c net.Conn) {
	defer e.wg.Done()
	rank, nodes, err := readHandshake(c)
	if err != nil || nodes != e.nodes || rank < 0 || rank >= e.nodes || rank == e.self {
		e.forgetConn(c, -1)
		return
	}
	e.mu.Lock()
	if e.closed() {
		e.mu.Unlock()
		e.forgetConn(c, -1)
		return
	}
	if e.out[rank] == nil {
		e.adoptConn(rank, c)
	}
	e.mu.Unlock()
	e.wg.Add(1)
	e.readLoop(c, rank)
}

// readLoop decodes frames from one peer stream into the inbox until the
// stream fails or the endpoint closes. Frames are decoded through the
// recycling pools — packet structs from the packet freelist, payloads
// read in one copy into fabric buffer-pool storage — and ownership
// passes to whoever polls them out of the inbox (the engine releases
// them after copying payloads into application buffers).
//
// Delivery is batched per socket visit: the first read blocks, then
// every further frame already complete in the bufio buffer is decoded in
// the same pass (the length prefix is peeked, so a partial frame is
// never entered and the loop cannot block mid-run), and the whole run
// enters the inbox under one lock with one notify edge. Under a
// small-message storm the kernel delivers many frames per wakeup, so
// this is what turns per-frame inbox traffic into per-batch traffic.
func (e *Endpoint) readLoop(c net.Conn, rank int) {
	defer e.wg.Done()
	br := bufio.NewReaderSize(c, readBufBytes)
	hdr := make([]byte, fabric.HeaderScratchBytes)
	var run []*wire.Packet
	for {
		p, err := fabric.ReadPacketPooled(br, hdr)
		if err != nil {
			e.forgetConn(c, rank)
			return
		}
		// A peer cannot speak for another rank: the stream's handshake
		// identity wins over the frame header.
		p.Src = rank
		run = append(run[:0], p)
		for bufferedFrame(br) {
			p, err = fabric.ReadPacketPooled(br, hdr)
			if err != nil {
				e.inbox.pushRun(run) // complete frames stay deliverable
				e.forgetConn(c, rank)
				return
			}
			p.Src = rank
			run = append(run, p)
		}
		e.inbox.pushRun(run)
		// Drop the run's packet aliases: ownership moved to the inbox,
		// and a retained pointer would resurrect a recycled packet.
		for i := range run {
			run[i] = nil
		}
	}
}

// bufferedFrame reports whether br holds at least one complete frame —
// length prefix and body — so decoding one more cannot block. A prefix
// announcing a frame larger than the buffer returns false and leaves the
// bytes for the next blocking read (which also owns surfacing oversized-
// frame errors).
func bufferedFrame(br *bufio.Reader) bool {
	if br.Buffered() < 4 {
		return false
	}
	pre, err := br.Peek(4)
	if err != nil {
		return false
	}
	n := int(uint32(pre[0]) | uint32(pre[1])<<8 | uint32(pre[2])<<16 | uint32(pre[3])<<24)
	return n >= 0 && br.Buffered() >= 4+n
}

// forgetConn closes c and unregisters it from the teardown set and, when
// it was rank's send path, from the routing table (stopping its writer
// via failConn, which stashes the never-written queue for the redialed
// stream instead of dropping it).
func (e *Endpoint) forgetConn(c net.Conn, rank int) {
	e.mu.Lock()
	var pc *peerConn
	if rank >= 0 {
		if cur := e.out[rank]; cur != nil && cur.c == c {
			pc = cur
		}
	}
	if pc == nil {
		delete(e.open, c)
		e.mu.Unlock()
		c.Close()
		return
	}
	e.mu.Unlock()
	e.failConn(rank, pc, stash{})
}

// LostFrames counts frames Send accepted that were later abandoned: the
// already-written prefix of a failed write batch (those bytes may or
// may not have reached the peer — re-sending could duplicate, so they
// can only be written off), plus any failure stash still unconsumed
// when Close runs. Frames a stream failure left guaranteed-undelivered
// are NOT counted here while the endpoint is open: they are stashed and
// re-sent on the redialed stream, so a transient failure with a
// successful redial is loss-free. The transport cannot return any of
// this as Send errors — it fails after Send has returned — so a nonzero
// count here is the loss signal operators should watch. Writes racing a
// stream failure may be counted even if their bytes made it out: the
// count is an upper bound on loss, never an undercount.
func (e *Endpoint) LostFrames() uint64 { return e.lost.Load() }

// KillConn forcibly closes the established stream toward rank, if one
// exists, and reports whether it did. It simulates an abrupt connection
// failure (peer crash, cable pull) for tests: both the reader and the
// writer discover the closed socket asynchronously, exactly as they
// would a real failure, so the salvage, stash, and redial machinery
// runs its production path.
func (e *Endpoint) KillConn(rank int) bool {
	e.mu.Lock()
	pc := e.out[rank]
	e.mu.Unlock()
	if pc == nil {
		return false
	}
	pc.c.Close()
	return true
}

// MaxPayload implements fabric.PayloadLimiter: the codec's frame ceiling
// bounds what one Send can carry.
func (e *Endpoint) MaxPayload() int { return fabric.MaxPayloadBytes }

func (e *Endpoint) closed() bool { return e.state.Load() != 0 }

// Close implements fabric.Endpoint: stop accepting, drain the writer
// queues so frames sent before Close still reach their peers (bounded by
// closeDrainTimeout against a peer that stopped reading), then tear down
// every stream, wake blocked receivers, and wait for the reader
// goroutines. Packets already received remain pollable. Idempotent.
func (e *Endpoint) Close() error {
	if !e.state.CompareAndSwap(0, 1) {
		return nil
	}
	if e.ln != nil {
		e.ln.Close()
	}
	e.mu.Lock()
	conns := make([]net.Conn, 0, len(e.open))
	for c := range e.open {
		conns = append(conns, c)
	}
	pcs := make([]*peerConn, 0, len(e.out))
	for _, pc := range e.out {
		pcs = append(pcs, pc)
	}
	e.mu.Unlock()
	deadline := time.Now().Add(closeDrainTimeout)
	for _, c := range conns {
		c.SetWriteDeadline(deadline)
	}
	for _, pc := range pcs {
		pc.drain()
	}
	e.wwg.Wait()
	for _, c := range conns {
		c.Close()
	}
	close(e.done)
	e.wg.Wait()
	// Stashes that never met a successful redial are abandoned now: no
	// reader or writer goroutine is left to bank more, so the count is
	// final.
	e.mu.Lock()
	for r, s := range e.stash {
		e.lost.Add(uint64(s.n))
		delete(e.stash, r)
	}
	e.mu.Unlock()
	return nil
}

// writeHandshake sends the one-time stream preamble.
func writeHandshake(c net.Conn, self, nodes int) error {
	var b [hsBytes]byte
	put := func(off int, v uint32) {
		b[off] = byte(v)
		b[off+1] = byte(v >> 8)
		b[off+2] = byte(v >> 16)
		b[off+3] = byte(v >> 24)
	}
	put(0, hsMagic)
	put(4, hsVersion)
	put(8, uint32(self))
	put(12, uint32(nodes))
	_, err := c.Write(b[:])
	return err
}

// readHandshake validates a stream preamble and returns the peer identity.
func readHandshake(c net.Conn) (rank, nodes int, err error) {
	var b [hsBytes]byte
	c.SetReadDeadline(time.Now().Add(handshakeTimeout))
	defer c.SetReadDeadline(time.Time{})
	if _, err = io.ReadFull(c, b[:]); err != nil {
		return 0, 0, err
	}
	get := func(off int) uint32 {
		return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
	}
	if get(0) != hsMagic {
		return 0, 0, fmt.Errorf("tcpfab: bad handshake magic %#x", get(0))
	}
	if get(4) != hsVersion {
		return 0, 0, fmt.Errorf("tcpfab: handshake version %d, want %d", get(4), hsVersion)
	}
	return int(int32(get(8))), int(int32(get(12))), nil
}
