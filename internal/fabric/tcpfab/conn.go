package tcpfab

import (
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/wire"
)

// conn is one poller-owned TCP stream. It splits cleanly into two halves:
//
//   - The producer half (qmu-guarded) is what Send touches: an unbounded
//     buffer of serialized frames plus the dead/closing lifecycle bits.
//     Serialization happens at enqueue, before Send returns, preserving
//     the capture contract (the engine may reuse the payload buffer the
//     moment Send returns).
//   - The write-IO half (iomu-guarded) is the detached batch being
//     flushed to the socket (wbuf at offset woff) plus the write-side
//     lifecycle bits. The owning poller holds iomu across every flush,
//     and a producer whose Send transitioned the queue from empty may
//     grab it opportunistically to write its own frame inline — one
//     syscall on the caller's goroutine instead of a scheduler round
//     trip through the poller.
//   - The read half is touched only by the owning poller goroutine: the
//     inbound staging window and large-frame direct-read state. No lock
//     guards it — single ownership is the synchronization.
//
// The armed flag is the handoff between the producer and IO halves: a
// producer that enqueues onto an unarmed queue flushes inline or kicks
// the poller exactly once; whoever flushes disarms only after observing
// an empty queue under qmu, so a frame can never be enqueued without
// either a kick in flight or a flusher already committed to another
// pass.
type conn struct {
	e    *Endpoint
	pl   *poller
	f    *os.File // dup of the handshaken socket; the poller closes it
	fd   int
	rank int

	// Producer half, qmu-guarded.
	qmu     sync.Mutex
	qbuf    []byte
	qends   []int // end offset of each frame in qbuf, ascending
	qn      int
	lastEnq int64 // unix nanos of the previous enqueue (inline-flush gate)
	armed   bool  // a flusher knows about queued data; no kick needed
	dead    bool  // stream failed or reaped: enqueue must redial
	closing bool  // endpoint closing: drain, then accept nothing new

	// pendingFrames counts frames accepted into the queue but not yet
	// fully handed to the kernel — what Close's drain loop polls.
	pendingFrames atomic.Int64

	// Write-IO half, iomu-guarded.
	iomu   sync.Mutex
	ioErr  bool // a write failed; the poller must fail the stream
	ioDead bool // teardown ran: the fd is no longer writable
	wbuf   []byte
	wends  []int
	wn     int
	woff   int // bytes of wbuf already written to the kernel

	// Poller half: epoll registration state.
	added bool // EPOLL_CTL_ADD done
	gone  bool // torn down; every later visit is a no-op
	wantW bool // EPOLLOUT armed

	// Poller half: read side. rbuf[ro:rn] is the staged window; pend is
	// a large frame whose payload is being read directly into its pooled
	// buffer, pendFill bytes so far.
	rbuf     []byte
	ro, rn   int
	pend     *wire.Packet
	pendFill int

	// Idle stamps (unix nanos) for reaping; atomic because inline
	// flushes stamp lastOut from producer goroutines.
	lastIn, lastOut atomic.Int64
}

func newConn(e *Endpoint, pl *poller, f *os.File, fd, rank int) *conn {
	return &conn{e: e, pl: pl, f: f, fd: fd, rank: rank}
}

// enqueue serializes p onto the stream's outbound queue and reports
// false when the stream no longer accepts frames (the caller redials).
// The payload has been bounds-checked by Send, so AppendPacket cannot
// panic.
func (c *conn) enqueue(p *wire.Packet) bool {
	now := time.Now().UnixNano()
	c.qmu.Lock()
	if c.dead || c.closing {
		c.qmu.Unlock()
		return false
	}
	c.qbuf = fabric.AppendPacket(c.qbuf, p)
	c.qends = append(c.qends, len(c.qbuf))
	c.qn++
	c.pendingFrames.Add(1)
	gap := now - c.lastEnq
	c.lastEnq = now
	kick := !c.armed
	c.armed = true
	c.qmu.Unlock()
	if kick && (gap < inlineGapNanos || !c.tryInlineFlush()) {
		c.pl.kick(c)
	}
	return true
}

// inlineGapNanos separates conversational sends from streaming ones: a
// Send arriving this soon after the previous frame is part of a burst,
// and a burst is worth a poller round trip because the poller coalesces
// the whole backlog into one write syscall. A slower cadence means
// latency matters more than batching, so the producer writes inline.
// The gate must sit above the cost of an inline flush itself (~3µs with
// a loopback write syscall) or a streaming sender could never fall back
// to batching, and below the tightest request-response cadence (~9µs
// round trips) or ping-pong latency would pay the poller detour.
const inlineGapNanos = 5000

// tryInlineFlush is the producer fast path: the Send that transitioned
// the queue from empty writes its own frame to the socket right here
// when the write side is uncontended, skipping the kick → wake → poller
// flush round trip entirely. Reports true only when the queue fully
// drained and disarmed; any other outcome (contention, residue left,
// kernel buffer full, write error) falls back to the poller, which owns
// EPOLLOUT arming and stream failure.
func (c *conn) tryInlineFlush() bool {
	if !c.iomu.TryLock() {
		return false
	}
	if c.ioDead || c.ioErr {
		c.iomu.Unlock()
		return false
	}
	st := c.flushOnce(time.Now().UnixNano())
	if st == flushFailed {
		c.ioErr = true
	}
	c.iomu.Unlock()
	return st == flushDone
}

// flushStatus reports how far one flushOnce pass got.
type flushStatus int

const (
	flushDone    flushStatus = iota // queue drained and disarmed
	flushMore                       // one batch written; more frames remain queued
	flushBlocked                    // kernel buffer full: EPOLLOUT needed
	flushFailed                     // write error: the stream must be failed
)

// flushOnce writes the residue of a previously detached batch, then at
// most one freshly detached run — the whole run leaves in a single
// write syscall when the kernel buffer has room. Caller holds iomu;
// both the owning poller and producer inline flushes arrive here, so
// every byte of write-side IO stays under one lock no matter which
// goroutine performs it.
func (c *conn) flushOnce(now int64) flushStatus {
	detached := false
	for {
		if c.woff == len(c.wbuf) {
			if c.wn > 0 {
				// A whole detached batch fully reached the kernel.
				c.e.coalesced.Add(uint64(c.wn))
				c.pendingFrames.Add(-int64(c.wn))
				c.qmu.Lock()
				if c.qbuf == nil && cap(c.wbuf) <= maxRecycledBuf {
					c.qbuf, c.qends = c.wbuf[:0], c.wends[:0]
				}
				c.qmu.Unlock()
				c.wbuf, c.wends, c.wn, c.woff = nil, nil, 0, 0
			}
			c.qmu.Lock()
			if c.qn == 0 {
				c.armed = false
				c.qmu.Unlock()
				return flushDone
			}
			if detached {
				c.qmu.Unlock()
				return flushMore
			}
			c.wbuf, c.wends, c.wn = c.qbuf, c.qends, c.qn
			c.qbuf, c.qends, c.qn = nil, nil, 0
			c.woff = 0
			c.qmu.Unlock()
			detached = true
		}
		n, err := syscall.Write(c.fd, c.wbuf[c.woff:])
		c.e.flushSyscalls.Add(1)
		if n > 0 {
			c.woff += n
			c.lastOut.Store(now)
		}
		switch err {
		case nil:
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return flushBlocked
		default:
			return flushFailed
		}
	}
}

// killQueue marks the stream dead and surrenders everything still
// queued. None of the returned frames ever reached the socket, so the
// caller may stash them for the stream's replacement; repeat kills
// return an empty remainder.
func (c *conn) killQueue() stash {
	c.qmu.Lock()
	c.dead = true
	s := stash{c.qbuf, c.qends, c.qn}
	c.qbuf, c.qends, c.qn = nil, nil, 0
	c.armed = false
	c.pendingFrames.Store(0)
	c.qmu.Unlock()
	return s
}

// markClosing asks the stream to finish its queue and then accept no
// more: a frame the engine sent before Close must still reach the
// kernel buffer, exactly as with the old synchronous Send — the
// shutdown sequencing of both ranks' protocols depends on it.
func (c *conn) markClosing() {
	c.qmu.Lock()
	c.closing = true
	c.qmu.Unlock()
}
