package tcpfab_test

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/fabric"
	"pioman/internal/fabric/conformance"
	"pioman/internal/fabric/tcpfab"
	"pioman/internal/mpi"
	"pioman/internal/nic"
	"pioman/internal/topo"
	"pioman/internal/wire"
)

func TestEndpointConformance(t *testing.T) {
	conformance.RunEndpoint(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := tcpfab.NewLocal(nodes)
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	})
}

// TestManyPeersConformance is the C10K shape gate: a 64-spoke hub
// exchange over real localhost sockets, strict per-sender FIFO, with
// goroutine growth bounded by the poller pool rather than the peer
// count. The budget admits one accept loop per in-process endpoint plus
// up to two pollers per spoke (simultaneous connect can leave a pair
// with two live streams) — the old goroutine-per-stream design measured
// ~7×peers here and fails it.
func TestManyPeersConformance(t *testing.T) {
	const peers = 64
	conformance.RunManyPeers(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := tcpfab.NewLocal(nodes)
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	}, peers, true, 3*peers+48)
}

// realWorld builds a 2-node engine world whose inter-node rail runs over
// real localhost sockets.
func realWorld(t *testing.T) *mpi.World {
	t.Helper()
	l, err := tcpfab.NewLocal(2)
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	rail := nic.RealParams()
	return mpi.NewWorld(mpi.Config{
		Nodes:          2,
		Machine:        topo.Machine{Sockets: 1, CoresPerSocket: 2},
		Mode:           core.Multithreaded,
		OffloadEager:   true,
		EnableBlocking: true,
		MX:             rail,
		Fabrics:        map[string]fabric.Fabric{rail.Name: l},
	})
}

func TestWorldConformance(t *testing.T) {
	conformance.RunWorld(t, realWorld)
}

// TestChaosSoakConformance drives the engine-level soak workload over
// localhost sockets wrapped in a seeded Chaos injecting the disorder a
// reliable stream transport legitimately exhibits at the frame level:
// reordering across the wrapper's delivery queues plus added latency.
// (Drop/duplicate/corrupt would violate the delivery contract tcpfab
// itself guarantees; udpfab's soak injects those below its reliability
// sublayer instead.)
func TestChaosSoakConformance(t *testing.T) {
	seed := conformance.ChaosSeed(t)
	conformance.RunChaosSoak(t, func(t *testing.T) *mpi.World {
		l, err := tcpfab.NewLocal(2)
		if err != nil {
			t.Fatalf("NewLocal: %v", err)
		}
		chaotic := conformance.NewChaos(l, conformance.ChaosConfig{
			Seed:         seed,
			Reorder:      0.15,
			ReorderDelay: time.Millisecond,
			Latency:      200 * time.Microsecond,
		})
		rail := nic.RealParams()
		return mpi.NewWorld(mpi.Config{
			Nodes:          2,
			Machine:        topo.Machine{Sockets: 1, CoresPerSocket: 2},
			Mode:           core.Multithreaded,
			OffloadEager:   true,
			EnableBlocking: true,
			MX:             rail,
			Fabrics:        map[string]fabric.Fabric{rail.Name: chaotic},
		})
	})
}

// TestBatchOrderingConformance runs the batched-receive ordering case:
// two concurrent senders, a PollBatch-only receiver, per-sender FIFO and
// no loss or duplication across batch boundaries.
func TestBatchOrderingConformance(t *testing.T) {
	conformance.RunBatchOrdering(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := tcpfab.NewLocal(nodes)
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	}, true) // one stream per peer: strict per-sender FIFO
}

// TestRailFailoverConformance runs the two-rail loss-injection case: the
// secondary rail accepts and drops every frame, and rendezvous transfers
// must still complete over the surviving real-socket rail.
func TestRailFailoverConformance(t *testing.T) {
	conformance.RunRailFailover(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := tcpfab.NewLocal(nodes)
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	})
}

// TestSelfHealingConformance runs the acked-replay regression: the
// socket rail is killed right after the rendezvous was submitted (loss
// surfacing only asynchronously), and the transfer must complete via
// engine-level replay once the rail revives.
func TestSelfHealingConformance(t *testing.T) {
	conformance.RunSelfHealing(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := tcpfab.NewLocal(nodes)
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	})
}

// TestPeerDeathConformance runs the bounded-failure contract: one rank
// of a three-rank loopback-TCP world dies mid-rendezvous, pending
// requests toward it must complete with core.ErrPeerDead within the
// PeerDeadline and the survivors keep communicating.
func TestPeerDeathConformance(t *testing.T) {
	conformance.RunPeerDeath(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := tcpfab.NewLocal(nodes)
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	})
}

// TestSelfHealSoakConformance runs the rail death-and-recovery soak:
// mid-run kill and revival of the secondary socket rail, probation,
// probe-driven re-admission, and post-recovery traffic on the healed
// rail, with online stripe weights enabled throughout.
func TestSelfHealSoakConformance(t *testing.T) {
	conformance.RunSelfHealSoak(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := tcpfab.NewLocal(nodes)
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	})
}

// TestTelemetrySnapshotConformance runs the observability case: a bonded
// world with a metrics registry attached, the lossy rail's failure
// visible in a registry snapshot under its documented name.
func TestTelemetrySnapshotConformance(t *testing.T) {
	conformance.RunTelemetrySnapshot(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := tcpfab.NewLocal(nodes)
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	})
}

// TestStrictFIFO pins the stronger ordering tcpfab provides beyond the
// portable contract: one sender's stream arrives in exact send order.
func TestStrictFIFO(t *testing.T) {
	l, err := tcpfab.NewLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src, _ := l.Endpoint(0)
	dst, _ := l.Endpoint(1)
	const n = 500
	for i := 1; i <= n; i++ {
		size := 8
		if i%9 == 0 {
			size = 32 << 10
		}
		if err := src.Send(&wire.Packet{
			Kind: wire.PktEager, Src: 0, Dst: 1, Seq: uint64(i),
			Payload: bytes.Repeat([]byte{byte(i)}, size),
		}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 1; i <= n; i++ {
		p := dst.BlockingRecv(30 * time.Second)
		if p == nil {
			t.Fatalf("stream dried up at packet %d", i)
		}
		if p.Seq != uint64(i) {
			t.Fatalf("packet %d arrived as %d: TCP stream reordered", i, p.Seq)
		}
	}
}

// TestAsymmetricTopology exercises the pingpong deployment shape: rank 0
// listens, rank 1 knows rank 0's address, rank 0 learns rank 1 only from
// its accepted connection — and must still be able to send back.
func TestAsymmetricTopology(t *testing.T) {
	ep0, err := tcpfab.New(tcpfab.Config{Self: 0, Nodes: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ep0.Close()
	ep1, err := tcpfab.New(tcpfab.Config{
		Self: 1, Nodes: 2,
		Peers: map[int]string{0: ep0.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep1.Close()

	// Rank 0 cannot reach rank 1 yet: no address, no connection.
	if err := ep0.Send(&wire.Packet{Kind: wire.PktCtrl, Src: 0, Dst: 1}); err == nil {
		t.Fatal("send to unknown unconnected peer did not error")
	}
	// Rank 1 speaks first; its connection becomes rank 0's return path.
	if err := ep1.Send(&wire.Packet{Kind: wire.PktCtrl, Src: 1, Dst: 0, Payload: []byte("hi")}); err != nil {
		t.Fatalf("dial-side send: %v", err)
	}
	if p := ep0.BlockingRecv(30 * time.Second); p == nil || string(p.Payload) != "hi" {
		t.Fatalf("listen side received %+v", p)
	}
	if err := ep0.Send(&wire.Packet{Kind: wire.PktCtrl, Src: 0, Dst: 1, Payload: []byte("yo")}); err != nil {
		t.Fatalf("reply over adopted connection: %v", err)
	}
	if p := ep1.BlockingRecv(30 * time.Second); p == nil || string(p.Payload) != "yo" {
		t.Fatalf("dial side received %+v", p)
	}
}

// TestSimultaneousConnect drives both sides of a cold pair into dialing
// each other at once — the race where each endpoint can adopt the peer's
// dialed stream as its send path while its own dial is still in flight.
// Whatever streams the race leaves standing, no packet may be lost:
// frames written to an adopted stream must never be RST away by the
// other side discarding its "redundant" dialed connection.
func TestSimultaneousConnect(t *testing.T) {
	const rounds = 40
	const burst = 20
	for round := 0; round < rounds; round++ {
		ep0, err := tcpfab.New(tcpfab.Config{Self: 0, Nodes: 2, Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		ep1, err := tcpfab.New(tcpfab.Config{Self: 1, Nodes: 2, Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		ep0.SetPeerAddr(1, ep1.Addr().String())
		ep1.SetPeerAddr(0, ep0.Addr().String())

		start := make(chan struct{})
		var wg sync.WaitGroup
		send := func(ep fabric.Endpoint, src, dst int) {
			defer wg.Done()
			<-start
			for i := 0; i < burst; i++ {
				if err := ep.Send(&wire.Packet{
					Kind: wire.PktEager, Src: src, Dst: dst, Seq: uint64(i + 1),
					Payload: []byte{byte(i)},
				}); err != nil {
					t.Errorf("round %d: send %d->%d: %v", round, src, dst, err)
					return
				}
			}
		}
		wg.Add(2)
		go send(ep0, 0, 1)
		go send(ep1, 1, 0)
		close(start)
		wg.Wait()

		for name, ep := range map[string]*tcpfab.Endpoint{"rank 0": ep0, "rank 1": ep1} {
			for i := 0; i < burst; i++ {
				if p := ep.BlockingRecv(30 * time.Second); p == nil {
					t.Fatalf("round %d: %s lost a packet to the simultaneous-connect race (%d/%d arrived)",
						round, name, i, burst)
				}
			}
		}
		ep0.Close()
		ep1.Close()
	}
}

// TestReconnectAfterPeerRestart is the connection-resilience regression
// case: the listening peer dies and comes back on the same address a
// moment later. The sender's first sends race the failure — frames
// queued on the dying stream are lost and counted — but once the stream
// failure unregisters the conn, Send must redial, riding out the restart
// gap with backoff, and traffic must flow to the restarted peer. Before
// reconnect-with-backoff existed, the redial hit "connection refused"
// during the gap and the peer stayed unreachable forever.
func TestReconnectAfterPeerRestart(t *testing.T) {
	ep0, err := tcpfab.New(tcpfab.Config{Self: 0, Nodes: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := ep0.Addr().String()
	ep1, err := tcpfab.New(tcpfab.Config{Self: 1, Nodes: 2, Peers: map[int]string{0: addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer ep1.Close()

	if err := ep1.Send(&wire.Packet{Kind: wire.PktCtrl, Src: 1, Dst: 0, Seq: 1, Payload: []byte("pre")}); err != nil {
		t.Fatalf("send before restart: %v", err)
	}
	if p := ep0.BlockingRecv(30 * time.Second); p == nil || string(p.Payload) != "pre" {
		t.Fatalf("packet before restart: %+v", p)
	}

	// Kill the peer, and restart it on the same address only after a
	// delay, so ep1's redials land in the refused window first.
	ep0.Close()
	restarted := make(chan *tcpfab.Endpoint, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		// The listener just closed, but give the OS a beat to release
		// the port if it needs one.
		for i := 0; ; i++ {
			ep, err := tcpfab.New(tcpfab.Config{Self: 0, Nodes: 2, Listen: addr})
			if err == nil {
				restarted <- ep
				return
			}
			if i > 100 {
				t.Errorf("could not rebind %s: %v", addr, err)
				restarted <- nil
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	// Keep sending through the outage. Early frames may be lost with the
	// dead stream (that loss is the documented LostFrames signal); a later
	// send must reconnect and deliver.
	deadline := time.Now().Add(30 * time.Second)
	for seq := uint64(2); ; seq++ {
		if time.Now().After(deadline) {
			t.Fatal("sender never reconnected to the restarted peer")
		}
		err := ep1.Send(&wire.Packet{Kind: wire.PktCtrl, Src: 1, Dst: 0, Seq: seq, Payload: []byte("post")})
		if err != nil {
			// The whole backoff window expired against the gap — legal if
			// the restart took longer than the window; try again.
			continue
		}
		break
	}
	ep2 := <-restarted
	if ep2 == nil {
		t.FailNow()
	}
	defer ep2.Close()
	// At least one post-restart send must arrive (keep nudging: a frame
	// accepted onto the dying stream may have been dropped with it).
	got := make(chan *wire.Packet, 1)
	go func() { got <- ep2.BlockingRecv(30 * time.Second) }()
	seq := uint64(1000)
	for {
		select {
		case p := <-got:
			if p == nil || string(p.Payload) != "post" {
				t.Fatalf("restarted peer received %+v", p)
			}
			return
		case <-time.After(100 * time.Millisecond):
			seq++
			ep1.Send(&wire.Packet{Kind: wire.PktCtrl, Src: 1, Dst: 0, Seq: seq, Payload: []byte("post")})
		}
	}
}

// TestKillConnZeroLoss is the dead-stream requeue regression: frames
// sitting in a failed stream's writer queue used to be discarded and
// counted in LostFrames even when the immediate redial succeeded. The
// guaranteed-undelivered run must instead be stashed and re-sent on the
// redialed stream ahead of new traffic — so killing the established
// connection between two quiescent endpoints and continuing to send
// must deliver every frame, in order, with zero engine-visible loss.
func TestKillConnZeroLoss(t *testing.T) {
	ep0, err := tcpfab.New(tcpfab.Config{Self: 0, Nodes: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ep0.Close()
	ep1, err := tcpfab.New(tcpfab.Config{
		Self: 1, Nodes: 2, Listen: "127.0.0.1:0",
		Peers: map[int]string{0: ep0.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep1.Close()

	send := func(seq uint64) {
		t.Helper()
		if err := ep1.Send(&wire.Packet{Kind: wire.PktCtrl, Src: 1, Dst: 0, Seq: seq, Payload: []byte("keep")}); err != nil {
			t.Fatalf("send %d: %v", seq, err)
		}
	}
	recv := func(want uint64) {
		t.Helper()
		p := ep0.BlockingRecv(30 * time.Second)
		if p == nil {
			t.Fatalf("timed out waiting for frame %d", want)
		}
		if p.Seq != want || string(p.Payload) != "keep" {
			t.Fatalf("frame %d: got seq %d payload %q", want, p.Seq, p.Payload)
		}
	}

	// Warm up and flush: every pre-kill frame is received before the
	// kill, so the failure hits an idle writer. (Bytes racing a real
	// stream failure are legitimately written off as possibly-delivered;
	// this test pins the queued-but-never-written case.)
	const pre, post = 8, 64
	for seq := uint64(1); seq <= pre; seq++ {
		send(seq)
	}
	for seq := uint64(1); seq <= pre; seq++ {
		recv(seq)
	}

	if !ep1.KillConn(0) {
		t.Fatal("no established stream to kill")
	}
	// Keep sending immediately: these frames land either on the dying
	// stream's queue (stashed, then replayed on the redialed stream) or
	// on the redialed stream directly. Every one must arrive, in order.
	for seq := uint64(pre + 1); seq <= pre+post; seq++ {
		send(seq)
	}
	for seq := uint64(pre + 1); seq <= pre+post; seq++ {
		recv(seq)
	}
	if n := ep1.LostFrames(); n != 0 {
		t.Fatalf("LostFrames = %d after kill with successful redial, want 0", n)
	}
}

// TestSendNeverBlocksOnStalledReceiver pins the Endpoint contract that
// Send buffers rather than blocking on the receiver making progress: a
// sender must be able to queue far more than the kernel socket buffers
// hold while the receiver polls nothing at all. (With a synchronous
// socket write under the hood, two ranks flooding eager traffic at each
// other before polling would distributed-deadlock.)
func TestSendNeverBlocksOnStalledReceiver(t *testing.T) {
	l, err := tcpfab.NewLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src, _ := l.Endpoint(0)
	dst, _ := l.Endpoint(1)
	const n = 1024
	payload := bytes.Repeat([]byte{0xAB}, 64<<10) // 64 MiB total, beyond any default socket buffer
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := src.Send(&wire.Packet{
				Kind: wire.PktData, Src: 0, Dst: 1, Seq: uint64(i + 1), Payload: payload,
			}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Send blocked against a receiver that was not draining")
	}
	for i := 0; i < n; i++ {
		if p := dst.BlockingRecv(30 * time.Second); p == nil {
			t.Fatalf("drain stalled at packet %d/%d", i, n)
		}
	}
}

// TestSendCapturesPayloadBeforeReturn: the engine may complete an eager
// request — telling the application its buffer is reusable — the moment
// Send returns, so Send must capture the payload bytes before returning.
// An app that scribbles over the buffer right after Send must not
// corrupt what arrives.
func TestSendCapturesPayloadBeforeReturn(t *testing.T) {
	l, err := tcpfab.NewLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src, _ := l.Endpoint(0)
	dst, _ := l.Endpoint(1)
	const n = 100
	buf := make([]byte, 32<<10)
	for i := 0; i < n; i++ {
		for j := range buf {
			buf[j] = byte(i)
		}
		if err := src.Send(&wire.Packet{
			Kind: wire.PktEager, Src: 0, Dst: 1, Seq: uint64(i + 1), Payload: buf,
		}); err != nil {
			t.Fatal(err)
		}
		for j := range buf { // legal reuse the moment Send returned
			buf[j] = 0xFF
		}
	}
	for i := 0; i < n; i++ {
		p := dst.BlockingRecv(30 * time.Second)
		if p == nil {
			t.Fatalf("packet %d lost", i)
		}
		want := byte(p.Seq - 1)
		for j, b := range p.Payload {
			if b != want {
				t.Fatalf("packet seq %d byte %d corrupted to %#x by post-Send buffer reuse", p.Seq, j, b)
			}
		}
	}
}

// TestSelfSendCapturesPayload: the capture-before-return rule holds on
// the self-delivery path too — it skips the codec serialization, so it
// must copy explicitly.
func TestSelfSendCapturesPayload(t *testing.T) {
	l, err := tcpfab.NewLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ep, _ := l.Endpoint(0)
	buf := []byte("before")
	if err := ep.Send(&wire.Packet{Kind: wire.PktEager, Src: 0, Dst: 0, Payload: buf}); err != nil {
		t.Fatal(err)
	}
	copy(buf, "after!") // legal reuse the moment Send returned
	p := ep.BlockingRecv(30 * time.Second)
	if p == nil {
		t.Fatal("self-send lost")
	}
	if string(p.Payload) != "before" {
		t.Fatalf("self-delivered payload aliased the caller's buffer: %q", p.Payload)
	}
}

// TestSendRefusesOversizedPayload: a payload the codec cannot frame is a
// synchronous Send error, and the refusal leaves the connection healthy.
func TestSendRefusesOversizedPayload(t *testing.T) {
	l, err := tcpfab.NewLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src, _ := l.Endpoint(0)
	dst, _ := l.Endpoint(1)
	if err := src.Send(&wire.Packet{
		Kind: wire.PktData, Src: 0, Dst: 1, Payload: make([]byte, fabric.MaxPayloadBytes+1),
	}); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if err := src.Send(&wire.Packet{Kind: wire.PktEager, Src: 0, Dst: 1, Payload: []byte("ok")}); err != nil {
		t.Fatalf("send after refusal: %v", err)
	}
	if p := dst.BlockingRecv(30 * time.Second); p == nil || string(p.Payload) != "ok" {
		t.Fatalf("connection damaged by refused send: %+v", p)
	}
}

// TestCloseDrainsQueuedSends: a packet accepted by Send before Close must
// still reach the peer — Close drains the writer queues into the sockets
// before tearing the streams down. Both ranks' shutdown protocols depend
// on this: the closing side's last ack completes the peer's final
// request, and discarding it strands the peer in a wait forever.
func TestCloseDrainsQueuedSends(t *testing.T) {
	for round := 0; round < 20; round++ {
		ep0, err := tcpfab.New(tcpfab.Config{Self: 0, Nodes: 2, Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		ep1, err := tcpfab.New(tcpfab.Config{
			Self: 1, Nodes: 2,
			Peers: map[int]string{0: ep0.Addr().String()},
		})
		if err != nil {
			t.Fatal(err)
		}
		const n = 50
		for i := 1; i <= n; i++ {
			if err := ep1.Send(&wire.Packet{
				Kind: wire.PktEager, Src: 1, Dst: 0, Seq: uint64(i),
				Payload: bytes.Repeat([]byte{byte(i)}, 4<<10),
			}); err != nil {
				t.Fatalf("round %d: send %d: %v", round, i, err)
			}
		}
		ep1.Close() // immediately: the queue may not have hit the socket yet
		for i := 1; i <= n; i++ {
			if p := ep0.BlockingRecv(30 * time.Second); p == nil {
				t.Fatalf("round %d: packet %d/%d discarded by Close instead of drained", round, i, n)
			}
		}
		ep0.Close()
	}
}

// TestSourceAuthenticity: the receiving endpoint stamps packets with the
// stream's handshake identity, so a frame cannot impersonate another rank.
func TestSourceAuthenticity(t *testing.T) {
	l, err := tcpfab.NewLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src, _ := l.Endpoint(2)
	dst, _ := l.Endpoint(0)
	src.Send(&wire.Packet{Kind: wire.PktEager, Src: 1 /* lie */, Dst: 0, Payload: []byte("x")})
	p := dst.BlockingRecv(30 * time.Second)
	if p == nil {
		t.Fatal("packet lost")
	}
	if p.Src != 2 {
		t.Fatalf("packet claims src %d, stream identity is 2", p.Src)
	}
}

// TestRejectsBadHandshake: garbage connections are dropped without
// disturbing the endpoint.
func TestRejectsBadHandshake(t *testing.T) {
	ep, err := tcpfab.New(tcpfab.Config{Self: 0, Nodes: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	c, err := net.Dial("tcp", ep.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("GET / HTTP/1.1\r\n\r\n padding padding"))
	// The endpoint must drop the stream: read returns EOF reasonably soon.
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Error("endpoint kept a garbage connection open and spoke on it")
	}
	c.Close()
	if ep.Pending() {
		t.Error("garbage connection injected packets")
	}
}
