package tcpfab_test

import (
	"bytes"
	"net"
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/fabric"
	"pioman/internal/fabric/conformance"
	"pioman/internal/fabric/tcpfab"
	"pioman/internal/mpi"
	"pioman/internal/nic"
	"pioman/internal/topo"
	"pioman/internal/wire"
)

func TestEndpointConformance(t *testing.T) {
	conformance.RunEndpoint(t, func(t *testing.T, nodes int) fabric.Fabric {
		l, err := tcpfab.NewLocal(nodes)
		if err != nil {
			t.Fatalf("NewLocal(%d): %v", nodes, err)
		}
		return l
	})
}

// realWorld builds a 2-node engine world whose inter-node rail runs over
// real localhost sockets.
func realWorld(t *testing.T) *mpi.World {
	t.Helper()
	l, err := tcpfab.NewLocal(2)
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	rail := nic.RealParams()
	return mpi.NewWorld(mpi.Config{
		Nodes:          2,
		Machine:        topo.Machine{Sockets: 1, CoresPerSocket: 2},
		Mode:           core.Multithreaded,
		OffloadEager:   true,
		EnableBlocking: true,
		MX:             rail,
		Fabrics:        map[string]fabric.Fabric{rail.Name: l},
	})
}

func TestWorldConformance(t *testing.T) {
	conformance.RunWorld(t, realWorld)
}

// TestStrictFIFO pins the stronger ordering tcpfab provides beyond the
// portable contract: one sender's stream arrives in exact send order.
func TestStrictFIFO(t *testing.T) {
	l, err := tcpfab.NewLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src, _ := l.Endpoint(0)
	dst, _ := l.Endpoint(1)
	const n = 500
	for i := 1; i <= n; i++ {
		size := 8
		if i%9 == 0 {
			size = 32 << 10
		}
		if err := src.Send(&wire.Packet{
			Kind: wire.PktEager, Src: 0, Dst: 1, Seq: uint64(i),
			Payload: bytes.Repeat([]byte{byte(i)}, size),
		}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 1; i <= n; i++ {
		p := dst.BlockingRecv(30 * time.Second)
		if p == nil {
			t.Fatalf("stream dried up at packet %d", i)
		}
		if p.Seq != uint64(i) {
			t.Fatalf("packet %d arrived as %d: TCP stream reordered", i, p.Seq)
		}
	}
}

// TestAsymmetricTopology exercises the pingpong deployment shape: rank 0
// listens, rank 1 knows rank 0's address, rank 0 learns rank 1 only from
// its accepted connection — and must still be able to send back.
func TestAsymmetricTopology(t *testing.T) {
	ep0, err := tcpfab.New(tcpfab.Config{Self: 0, Nodes: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ep0.Close()
	ep1, err := tcpfab.New(tcpfab.Config{
		Self: 1, Nodes: 2,
		Peers: map[int]string{0: ep0.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep1.Close()

	// Rank 0 cannot reach rank 1 yet: no address, no connection.
	if err := ep0.Send(&wire.Packet{Kind: wire.PktCtrl, Src: 0, Dst: 1}); err == nil {
		t.Fatal("send to unknown unconnected peer did not error")
	}
	// Rank 1 speaks first; its connection becomes rank 0's return path.
	if err := ep1.Send(&wire.Packet{Kind: wire.PktCtrl, Src: 1, Dst: 0, Payload: []byte("hi")}); err != nil {
		t.Fatalf("dial-side send: %v", err)
	}
	if p := ep0.BlockingRecv(30 * time.Second); p == nil || string(p.Payload) != "hi" {
		t.Fatalf("listen side received %+v", p)
	}
	if err := ep0.Send(&wire.Packet{Kind: wire.PktCtrl, Src: 0, Dst: 1, Payload: []byte("yo")}); err != nil {
		t.Fatalf("reply over adopted connection: %v", err)
	}
	if p := ep1.BlockingRecv(30 * time.Second); p == nil || string(p.Payload) != "yo" {
		t.Fatalf("dial side received %+v", p)
	}
}

// TestSourceAuthenticity: the receiving endpoint stamps packets with the
// stream's handshake identity, so a frame cannot impersonate another rank.
func TestSourceAuthenticity(t *testing.T) {
	l, err := tcpfab.NewLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	src, _ := l.Endpoint(2)
	dst, _ := l.Endpoint(0)
	src.Send(&wire.Packet{Kind: wire.PktEager, Src: 1 /* lie */, Dst: 0, Payload: []byte("x")})
	p := dst.BlockingRecv(30 * time.Second)
	if p == nil {
		t.Fatal("packet lost")
	}
	if p.Src != 2 {
		t.Fatalf("packet claims src %d, stream identity is 2", p.Src)
	}
}

// TestRejectsBadHandshake: garbage connections are dropped without
// disturbing the endpoint.
func TestRejectsBadHandshake(t *testing.T) {
	ep, err := tcpfab.New(tcpfab.Config{Self: 0, Nodes: 2, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	c, err := net.Dial("tcp", ep.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("GET / HTTP/1.1\r\n\r\n padding padding"))
	// The endpoint must drop the stream: read returns EOF reasonably soon.
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Error("endpoint kept a garbage connection open and spoke on it")
	}
	c.Close()
	if ep.Pending() {
		t.Error("garbage connection injected packets")
	}
}
