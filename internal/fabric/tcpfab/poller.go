package tcpfab

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/fabric/bufpool"
	"pioman/internal/wire"
)

// readBudgetBytes bounds how much one connection may pull off its
// socket per poller visit, so a firehose peer cannot starve the other
// connections on the same poller. Level-triggered epoll re-reports the
// remaining data on the next wait.
const readBudgetBytes = 256 << 10

// spinPasses is how many consecutive empty non-blocking poll passes a
// poller tolerates before it falls back to a blocking epoll_wait. The
// legacy syscall package has no netpoller integration: a goroutine
// blocked in EpollWait pins its P until sysmon retakes it, which turns
// every wakeup during a ping-pong exchange into a scheduler stall of
// tens of microseconds. Spinning through the hot phase (with a Gosched
// per empty pass so producers and receivers run interleaved) keeps the
// poller reactive at syscall latency; once traffic truly pauses, the
// poller parks in the kernel and costs nothing.
const spinPasses = 96

// spinPollerMax disables spinning entirely once the process carries
// more live pollers than this. Spinning buys single-digit-µs latency
// for the handful of streams a real rank converses over; with hundreds
// of in-process endpoints (the storm bench, many-peer tests) spinning
// pollers would stuff the scheduler run queue with empty poll passes
// and collapse throughput, so everyone falls back to blocking waits,
// which scale to any count.
const spinPollerMax = 8

// livePollers counts running poller goroutines process-wide (see
// spinPollerMax).
var livePollers atomic.Int32

// wakeByte is the pipe token for wakeLocked. Package-level so the
// slice header passed to syscall.Write never escapes per call.
var wakeByte = []byte{1}

// pollerPool is the bounded set of event-loop goroutines that multiplex
// every connection of one Endpoint. Pollers start lazily: an endpoint
// that never carries a connection costs zero goroutines, and a 2-rank
// run costs exactly one.
type pollerPool struct {
	pollers []*poller
	next    int // round-robin cursor, guarded by the Endpoint mutex
}

func newPollerPool(e *Endpoint, n int) *pollerPool {
	p := &pollerPool{pollers: make([]*poller, n)}
	for i := range p.pollers {
		p.pollers[i] = &poller{e: e, epfd: -1}
	}
	return p
}

// assignLocked picks the poller for a new connection (round robin).
// Caller holds the Endpoint mutex.
func (p *pollerPool) assignLocked() *poller {
	pl := p.pollers[p.next%len(p.pollers)]
	p.next++
	return pl
}

// stop asks every running poller to tear down its connections and
// exit. Pollers that never started just flip their shutdown flag so a
// late register fails cleanly.
func (p *pollerPool) stop() {
	for _, pl := range p.pollers {
		pl.mu.Lock()
		pl.shutdown = true
		if pl.running && !pl.woken {
			pl.woken = true
			syscall.Write(pl.wakeW, wakeByte)
		}
		pl.mu.Unlock()
	}
}

// poller owns one epoll instance and the connections registered on it.
// All socket IO and all fd lifecycle for those connections happens on
// the poller goroutine — producers communicate only through the mu-
// guarded mailboxes below plus the wake pipe.
type poller struct {
	e     *Endpoint
	epfd  int
	wakeR int
	wakeW int

	mu       sync.Mutex
	running  bool
	shutdown bool
	woken    bool    // a wake byte is already in the pipe
	spinning bool    // poller is in non-blocking passes; mailboxes need no wake byte
	pending  []*conn // awaiting EPOLL_CTL_ADD
	kicked   []*conn // have newly queued frames to flush
	kills    []*conn // KillConn targets: shutdown(2) the socket

	// Poller-goroutine state (no lock).
	conns    map[int]*conn // fd -> conn, added only
	resume   []*conn       // flush fairness carry-over to the next loop pass
	now      int64         // unix nanos, refreshed once per loop pass
	lastReap int64
}

// start creates the epoll instance, wake pipe, and loop goroutine on
// first use. Caller holds the Endpoint mutex (so the wg.Add is ordered
// before any Close-side Wait).
func (pl *poller) start() error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.running {
		return nil
	}
	if pl.shutdown {
		return fabric.ErrClosed
	}
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return fmt.Errorf("tcpfab: epoll_create1: %w", err)
	}
	var fds [2]int
	if err := syscall.Pipe2(fds[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return fmt.Errorf("tcpfab: wake pipe: %w", err)
	}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(fds[0])}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, fds[0], &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(fds[0])
		syscall.Close(fds[1])
		return fmt.Errorf("tcpfab: arm wake pipe: %w", err)
	}
	pl.epfd, pl.wakeR, pl.wakeW = epfd, fds[0], fds[1]
	pl.conns = make(map[int]*conn)
	pl.running = true
	pl.spinning = true // the loop starts in its non-blocking phase
	livePollers.Add(1)
	pl.e.nPollers.Add(1)
	pl.e.wg.Add(1)
	go pl.loop()
	return nil
}

// register hands a freshly handshaken connection to the poller. The
// EPOLL_CTL_ADD happens on the poller goroutine so fd ownership never
// leaves it.
func (pl *poller) register(c *conn) error {
	pl.mu.Lock()
	if pl.shutdown || !pl.running {
		pl.mu.Unlock()
		return fabric.ErrClosed
	}
	pl.pending = append(pl.pending, c)
	pl.wakeLocked()
	pl.mu.Unlock()
	return nil
}

// kick tells the poller that c has newly queued frames. Callers arrive
// here at most once per armed-flag transition, so the mailbox cannot
// grow faster than the poller drains it.
func (pl *poller) kick(c *conn) {
	pl.mu.Lock()
	if !pl.shutdown && pl.running {
		pl.kicked = append(pl.kicked, c)
		pl.wakeLocked()
	}
	pl.mu.Unlock()
}

// kill requests a forced failure of c (test hook / chaos injection).
// The poller owns the fd, so it performs the shutdown(2) itself —
// killing from another goroutine would race fd reuse.
func (pl *poller) kill(c *conn) {
	pl.mu.Lock()
	if !pl.shutdown && pl.running {
		pl.kills = append(pl.kills, c)
		pl.wakeLocked()
	}
	pl.mu.Unlock()
}

func (pl *poller) wakeLocked() {
	if pl.woken || pl.spinning {
		// A spinning poller drains its mailboxes every pass without a
		// wake byte; the spin→block transition rechecks them under mu,
		// so skipping the pipe write here cannot lose the request.
		return
	}
	pl.woken = true
	syscall.Write(pl.wakeW, wakeByte)
}

// loop is the event loop: wait, absorb mailboxes, flush writers, drain
// readers, reap idlers. While traffic is hot the wait is non-blocking
// (see spinPasses); only after a quiet stretch does the poller park in
// a blocking epoll_wait.
func (pl *poller) loop() {
	e := pl.e
	defer e.wg.Done()
	events := make([]syscall.EpollEvent, 128)
	var drain [64]byte
	var run []*wire.Packet
	idle := 0
	for {
		spin := idle < spinPasses && livePollers.Load() <= spinPollerMax
		msec := 0
		if !spin && len(pl.resume) == 0 {
			msec = -1
			if e.idleTimeout > 0 {
				msec = int(e.idleTimeout / (4 * time.Millisecond))
				if msec < 1 {
					msec = 1
				} else if msec > 1000 {
					msec = 1000
				}
			}
			// Spin→block transition: producers that saw us spinning
			// skipped the wake byte, so recheck the mailboxes under the
			// same lock before sleeping. Anything that lands after the
			// flag flips writes the pipe and wakes us.
			pl.mu.Lock()
			pl.spinning = false
			if len(pl.pending)+len(pl.kicked)+len(pl.kills) > 0 || pl.shutdown {
				pl.spinning = true
				msec = 0
			}
			pl.mu.Unlock()
		}
		n, err := syscall.EpollWait(pl.epfd, events, msec)
		if err != nil && err != syscall.EINTR {
			// Only possible with a broken epfd; treat as shutdown.
			pl.mu.Lock()
			pl.shutdown = true
			pl.mu.Unlock()
		}
		pl.now = time.Now().UnixNano()

		pl.mu.Lock()
		if !pl.spinning {
			pl.spinning = true
		}
		pending := pl.pending
		kicked := pl.kicked
		kills := pl.kills
		pl.pending, pl.kicked, pl.kills = nil, nil, nil
		shutdown := pl.shutdown
		if pl.woken {
			for {
				k, rerr := syscall.Read(pl.wakeR, drain[:])
				if rerr != nil || k < len(drain) {
					break
				}
			}
			pl.woken = false
		}
		pl.mu.Unlock()

		if shutdown {
			pl.teardownAll(pending)
			return
		}
		worked := n > 0 || len(pending)+len(kicked)+len(kills)+len(pl.resume) > 0
		for _, c := range pending {
			pl.add(c)
		}
		for _, c := range kills {
			if !c.gone {
				syscall.Shutdown(c.fd, syscall.SHUT_RDWR)
			}
		}
		resume := pl.resume
		pl.resume = nil
		for _, c := range resume {
			if !c.gone {
				pl.flush(c)
			}
		}
		for _, c := range kicked {
			if c.added && !c.gone {
				pl.flush(c)
			}
		}
		for i := 0; i < n; i++ {
			fd := int(events[i].Fd)
			if fd == pl.wakeR {
				continue
			}
			c := pl.conns[fd]
			if c == nil || c.gone {
				continue
			}
			evs := events[i].Events
			if evs&syscall.EPOLLOUT != 0 {
				pl.flush(c)
			}
			if c.gone {
				continue
			}
			if evs&(syscall.EPOLLIN|syscall.EPOLLERR|syscall.EPOLLHUP) != 0 {
				run = pl.read(c, run)
			}
		}
		if e.idleTimeout > 0 && pl.now-pl.lastReap >= int64(e.idleTimeout)/2 {
			pl.lastReap = pl.now
			pl.reap()
		}
		if worked {
			idle = 0
		} else {
			idle++
		}
		if spin {
			// After a delivering pass, the notified receivers sit in the
			// scheduler's runnext slot — yielding hands them the CPU now
			// instead of making them wait out another empty poll pass.
			// On an empty pass the yield is what makes spinning fair.
			runtime.Gosched()
		}
	}
}

// add performs the deferred EPOLL_CTL_ADD and, if frames queued while
// the connection waited in the mailbox, the initial flush.
func (pl *poller) add(c *conn) {
	if c.gone {
		return
	}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(c.fd)}
	if err := syscall.EpollCtl(pl.epfd, syscall.EPOLL_CTL_ADD, c.fd, &ev); err != nil {
		// Treat exactly like a stream failure: queued frames move to
		// the stash and the next Send redials.
		c.added = false
		pl.fail(c)
		return
	}
	c.added = true
	pl.conns[c.fd] = c
	c.lastIn.Store(pl.now)
	c.lastOut.Store(pl.now)
	c.qmu.Lock()
	armed := c.armed
	c.qmu.Unlock()
	if armed {
		pl.flush(c)
	}
}

// flush drives c's outbound frames to the socket via flushOnce (shared
// with producer inline flushes) and applies the poller-only outcomes:
// EPOLLOUT arming, resume-list fairness parking (so one connection with
// a deep queue cannot monopolize the pass), and stream failure.
func (pl *poller) flush(c *conn) {
	c.iomu.Lock()
	if c.ioErr || c.ioDead {
		c.iomu.Unlock()
		pl.fail(c)
		return
	}
	st := c.flushOnce(pl.now)
	if st == flushFailed {
		c.ioErr = true
	}
	c.iomu.Unlock()
	switch st {
	case flushDone:
		pl.wantWrite(c, false)
	case flushMore:
		pl.resume = append(pl.resume, c)
	case flushBlocked:
		pl.wantWrite(c, true)
	case flushFailed:
		pl.fail(c)
	}
}

// wantWrite arms or disarms EPOLLOUT for c.
func (pl *poller) wantWrite(c *conn, on bool) {
	if c.gone || !c.added || c.wantW == on {
		return
	}
	c.wantW = on
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(c.fd)}
	if on {
		ev.Events |= syscall.EPOLLOUT
	}
	syscall.EpollCtl(pl.epfd, syscall.EPOLL_CTL_MOD, c.fd, &ev)
}

// read drains the socket into decoded packets. Small frames assemble
// from the staging window; a frame larger than the window switches the
// connection into direct-read mode, filling the pooled payload in
// place with zero extra copies. run is a reusable delivery batch.
func (pl *poller) read(c *conn, run []*wire.Packet) []*wire.Packet {
	e := pl.e
	run = run[:0]
	deliver := func() {
		if len(run) > 0 {
			e.inbox.pushRun(run)
			for i := range run {
				run[i] = nil
			}
			run = run[:0]
		}
	}
	budget := readBudgetBytes
	for budget > 0 {
		if c.pend != nil {
			n, err := syscall.Read(c.fd, c.pend.Payload[c.pendFill:])
			if n > 0 {
				c.pendFill += n
				budget -= n
				c.lastIn.Store(pl.now)
				if c.pendFill == len(c.pend.Payload) {
					p := c.pend
					c.pend, c.pendFill = nil, 0
					p.Src = c.rank
					run = append(run, p)
				}
				continue
			}
			if err == syscall.EINTR {
				continue
			}
			if err == syscall.EAGAIN {
				break
			}
			deliver()
			pl.fail(c)
			return run
		}
		if c.rbuf == nil {
			c.rbuf = bufpool.Get(readBufBytes)
		}
		if c.ro > 0 {
			copy(c.rbuf, c.rbuf[c.ro:c.rn])
			c.rn -= c.ro
			c.ro = 0
		}
		n, err := syscall.Read(c.fd, c.rbuf[c.rn:])
		if n > 0 {
			c.rn += n
			budget -= n
			c.lastIn.Store(pl.now)
			if !pl.decode(c, &run) {
				deliver()
				pl.fail(c)
				return run
			}
			continue
		}
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN {
			break
		}
		// EOF or a hard error: the peer is gone.
		deliver()
		pl.fail(c)
		return run
	}
	deliver()
	return run
}

// decode lifts complete frames out of the staging window; reports false
// on a malformed frame (stream failure).
func (pl *poller) decode(c *conn, run *[]*wire.Packet) bool {
	for {
		avail := c.rn - c.ro
		if avail < fabric.HeaderScratchBytes {
			// The smallest legal frame is exactly HeaderScratchBytes, so
			// nothing complete can be staged yet.
			return true
		}
		p, _, err := fabric.DecodeHeaderPooled(c.rbuf[c.ro:c.rn])
		if err != nil {
			return false
		}
		have := avail - fabric.HeaderScratchBytes
		if have > len(p.Payload) {
			have = len(p.Payload)
		}
		copy(p.Payload[:have], c.rbuf[c.ro+fabric.HeaderScratchBytes:])
		if have == len(p.Payload) {
			p.Src = c.rank
			*run = append(*run, p)
			c.ro += fabric.HeaderScratchBytes + have
			continue
		}
		// Tail of a large frame: read the rest straight into the pooled
		// payload. The staging window is fully consumed by construction.
		c.pend, c.pendFill = p, have
		c.ro, c.rn = 0, 0
		return true
	}
}

// fail handles a stream death. Frames whose bytes fully reached the
// kernel before the error may or may not have arrived — they count as
// lost (LostFrames is an upper bound). The straddler and everything
// behind it never left, so they are salvaged for replay on the redialed
// stream, exactly like the old writeLoop split.
func (pl *poller) fail(c *conn) {
	if c.gone {
		return
	}
	// Salvage under iomu: a producer inline flush may be advancing woff
	// right now, and marking ioDead in the same critical section
	// guarantees no byte of the salvaged residue can still reach the
	// socket afterwards (which would duplicate it on replay).
	c.iomu.Lock()
	c.ioDead = true
	lostN := 0
	for lostN < c.wn && c.wends[lostN] <= c.woff {
		lostN++
	}
	var sal stash
	if lostN < c.wn {
		start := 0
		if lostN > 0 {
			start = c.wends[lostN-1]
		}
		sal.buf = c.wbuf[start:]
		sal.ends = make([]int, 0, c.wn-lostN)
		for j := lostN; j < c.wn; j++ {
			sal.ends = append(sal.ends, c.wends[j]-start)
		}
		sal.n = c.wn - lostN
	}
	c.wbuf, c.wends, c.wn, c.woff = nil, nil, 0, 0
	c.iomu.Unlock()
	if lostN > 0 {
		c.e.lost.Add(uint64(lostN))
	}
	pl.teardown(c, sal)
}

// teardown removes c from the poller and the endpoint, banks the
// salvage + surrendered queue in the stash, and redials in the
// background when frames are waiting (unless the endpoint is closing).
func (pl *poller) teardown(c *conn, sal stash) {
	if c.gone {
		return
	}
	c.gone = true
	if c.added {
		syscall.EpollCtl(pl.epfd, syscall.EPOLL_CTL_DEL, c.fd, nil)
		delete(pl.conns, c.fd)
	}
	if c.pend != nil {
		fabric.ReleasePacket(c.pend)
		c.pend = nil
	}
	if c.rbuf != nil {
		bufpool.Put(c.rbuf)
		c.rbuf = nil
	}
	// ioDead under iomu fences out producer inline flushes for good
	// before the fd is released below (fail already set it when there
	// was residue to salvage).
	c.iomu.Lock()
	c.ioDead = true
	c.wbuf, c.wends, c.wn, c.woff = nil, nil, 0, 0
	c.iomu.Unlock()
	tail := c.killQueue()
	e := c.e
	redial := false
	e.mu.Lock()
	if e.out[c.rank] == c {
		delete(e.out, c.rank)
	}
	delete(e.conns, c)
	if sal.n+tail.n > 0 {
		if e.closed() {
			// Close's stash sweep may already have run; count the
			// stranded frames as lost directly.
			e.lost.Add(uint64(sal.n + tail.n))
		} else {
			var merged stash
			appendFrames(&merged, sal)
			appendFrames(&merged, e.stash[c.rank])
			appendFrames(&merged, tail)
			e.stash[c.rank] = merged
			redial = true
			e.wg.Add(1)
		}
	}
	e.mu.Unlock()
	c.f.Close()
	e.nConns.Add(-1)
	if redial {
		go func() {
			defer e.wg.Done()
			e.connTo(c.rank)
		}()
	}
}

// reap tears down connections idle in both directions beyond the
// configured timeout. Only a fully quiescent stream qualifies — empty
// queue, no residue, no partial inbound frame — so reaping never loses
// data; the peer sees a clean EOF and the next Send redials.
func (pl *poller) reap() {
	cut := pl.now - int64(pl.e.idleTimeout)
	var victims []*conn
	for _, c := range pl.conns {
		if c.gone || c.lastIn.Load() > cut || c.lastOut.Load() > cut {
			continue
		}
		if c.pend != nil || c.rn != c.ro {
			continue
		}
		// The write residue lives under iomu now that producers may
		// flush inline; a contended lock means the stream is anything
		// but idle.
		if !c.iomu.TryLock() {
			continue
		}
		quiet := c.woff == len(c.wbuf) && !c.ioErr
		c.iomu.Unlock()
		if quiet {
			victims = append(victims, c)
		}
	}
	for _, c := range victims {
		// Marking dead under qmu closes the race with a concurrent
		// enqueue: either the frame got in (qn > 0, skip the reap) or
		// the producer sees dead and redials. The stamps are rechecked
		// for an inline flush that completed (disarming again) between
		// the scan above and this lock.
		c.qmu.Lock()
		idle := !c.armed && c.qn == 0 && !c.dead && !c.closing &&
			c.lastIn.Load() <= cut && c.lastOut.Load() <= cut
		if idle {
			c.dead = true
		}
		c.qmu.Unlock()
		if !idle {
			continue
		}
		pl.e.reaped.Add(1)
		pl.teardown(c, stash{})
	}
}

// teardownAll fails every connection the poller still owns (including
// ones parked in the pending mailbox) and releases the epoll + wake
// fds. Runs once, as the poller's last act.
func (pl *poller) teardownAll(pending []*conn) {
	all := make([]*conn, 0, len(pl.conns)+len(pending))
	for _, c := range pl.conns {
		all = append(all, c)
	}
	all = append(all, pending...)
	for _, c := range all {
		pl.fail(c)
	}
	syscall.Close(pl.epfd)
	syscall.Close(pl.wakeR)
	syscall.Close(pl.wakeW)
	livePollers.Add(-1)
	pl.mu.Lock()
	pl.running = false
	pl.mu.Unlock()
	pl.e.nPollers.Add(-1)
}
