package tcpfab

import (
	"fmt"

	"pioman/internal/fabric"
)

// Local is a fabric.Fabric spanning n in-process endpoints that still talk
// through real localhost TCP sockets — the tcoin-style "many real nodes on
// ephemeral ports inside one go test" setup. It exists for tests, benches
// and in-process worlds; distributed deployments build one Endpoint per
// process with New instead.
type Local struct {
	eps []*Endpoint
}

// NewLocal binds n endpoints on ephemeral localhost ports and teaches each
// every peer's actual address.
func NewLocal(n int) (*Local, error) {
	l := &Local{eps: make([]*Endpoint, n)}
	for i := range l.eps {
		ep, err := New(Config{Self: i, Nodes: n, Listen: "127.0.0.1:0"})
		if err != nil {
			l.Close()
			return nil, err
		}
		l.eps[i] = ep
	}
	for i, e := range l.eps {
		for j, f := range l.eps {
			if i != j {
				e.SetPeerAddr(j, f.Addr().String())
			}
		}
	}
	return l, nil
}

// Nodes implements fabric.Fabric.
func (l *Local) Nodes() int { return len(l.eps) }

// Endpoint implements fabric.Fabric.
func (l *Local) Endpoint(rank int) (fabric.Endpoint, error) {
	if rank < 0 || rank >= len(l.eps) {
		return nil, fmt.Errorf("tcpfab: rank %d outside local fabric of %d", rank, len(l.eps))
	}
	return l.eps[rank], nil
}

// Close implements fabric.Fabric.
func (l *Local) Close() error {
	for _, e := range l.eps {
		if e != nil {
			e.Close()
		}
	}
	return nil
}
