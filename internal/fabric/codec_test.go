package fabric

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"

	"pioman/internal/wire"
)

var allKinds = []wire.PacketKind{
	wire.PktEager, wire.PktRTS, wire.PktCTS, wire.PktData, wire.PktCtrl, wire.PktAggr,
}

// edgePayloads covers the boundary shapes the satellite task calls out:
// nil, zero-byte, single byte, one-under/over the MX MTU, and a large
// rendezvous chunk.
func edgePayloads() [][]byte {
	mtu := 32 << 10
	mk := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i * 131)
		}
		return b
	}
	return [][]byte{
		nil,
		{},
		mk(1),
		mk(mtu - 1),
		mk(mtu),
		mk(mtu + 1),
		mk(256 << 10),
	}
}

// samePacket compares every exported field byte-exactly, keeping the
// nil-vs-empty payload distinction.
func samePacket(t *testing.T, want, got *wire.Packet) {
	t.Helper()
	if got.Kind != want.Kind || got.Src != want.Src || got.Dst != want.Dst ||
		got.Tag != want.Tag || got.Seq != want.Seq || got.MsgID != want.MsgID ||
		got.Offset != want.Offset {
		t.Fatalf("header mismatch:\nwant %+v\ngot  %+v", want, got)
	}
	wantWire := want.WireLen
	if wantWire == 0 {
		wantWire = len(want.Payload)
	}
	if got.WireLen != wantWire {
		t.Fatalf("wire len %d, want %d", got.WireLen, wantWire)
	}
	if (got.Payload == nil) != (want.Payload == nil) {
		t.Fatalf("payload nil-ness changed: want nil=%v got nil=%v", want.Payload == nil, got.Payload == nil)
	}
	if !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("payload corrupted: %d bytes want %d", len(got.Payload), len(want.Payload))
	}
}

func TestCodecRoundTripAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		for pi, payload := range edgePayloads() {
			p := &wire.Packet{
				Kind: kind, Src: 0, Dst: 3, Tag: -1016, Seq: 7, MsgID: 42,
				Offset: len(payload) / 2, Payload: payload,
				WireLen: len(payload) + 32,
			}
			got, err := DecodePacket(EncodePacket(p))
			if err != nil {
				t.Fatalf("kind %v payload #%d: %v", kind, pi, err)
			}
			samePacket(t, p, got)
		}
	}
}

func TestCodecRoundTripExtremes(t *testing.T) {
	p := &wire.Packet{
		Kind:   wire.PktData,
		Src:    math.MaxInt32,
		Dst:    -1, // AnySource-style sentinel must survive
		Tag:    math.MinInt32,
		Seq:    math.MaxUint64,
		MsgID:  math.MaxUint64 - 1,
		Offset: math.MaxInt32, // max rendezvous chunk offset
	}
	got, err := DecodePacket(EncodePacket(p))
	if err != nil {
		t.Fatal(err)
	}
	samePacket(t, p, got)
}

// TestCodecRoundTripProperty fuzzes random packets through the codec and
// through the stream reader/writer, the property being byte-exact
// round-trips for any field combination.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var stream bytes.Buffer
	var sent []*wire.Packet
	for i := 0; i < 500; i++ {
		var payload []byte
		if rng.Intn(4) > 0 {
			payload = make([]byte, rng.Intn(1<<14))
			rng.Read(payload)
		}
		p := &wire.Packet{
			Kind:    allKinds[rng.Intn(len(allKinds))],
			Src:     rng.Intn(64),
			Dst:     rng.Intn(64),
			Tag:     rng.Intn(1<<20) - (1 << 19),
			Seq:     rng.Uint64(),
			MsgID:   rng.Uint64(),
			Offset:  rng.Intn(1 << 30),
			Payload: payload,
			WireLen: len(payload) + 32,
		}
		got, err := DecodePacket(EncodePacket(p))
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		samePacket(t, p, got)
		if err := WritePacket(&stream, p); err != nil {
			t.Fatal(err)
		}
		sent = append(sent, p)
	}
	// The concatenated stream must parse back packet-for-packet: this is
	// exactly what tcpfab's reader does on a socket.
	for i, want := range sent {
		got, err := ReadPacket(&stream)
		if err != nil {
			t.Fatalf("stream packet %d: %v", i, err)
		}
		samePacket(t, want, got)
	}
	if _, err := ReadPacket(&stream); err != io.EOF {
		t.Fatalf("exhausted stream: want io.EOF, got %v", err)
	}
}

// TestCodecRefusesOversizedPayloads: every encode entry point must stop
// an over-limit payload on the sender — WritePacket as an error, the raw
// encoders as a panic — because an encoded oversize frame either kills
// the receiving connection or (past 4 GiB) wraps the length prefix and
// desyncs the stream.
func TestCodecRefusesOversizedPayloads(t *testing.T) {
	p := &wire.Packet{Kind: wire.PktData, Payload: make([]byte, MaxFrameBytes-headerBytes+1)}
	if err := WritePacket(io.Discard, p); err == nil {
		t.Error("WritePacket accepted an over-limit payload")
	}
	defer func() {
		if recover() == nil {
			t.Error("AppendPacket encoded an over-limit payload without panicking")
		}
	}()
	EncodePacket(p)
}

func TestCodecRejectsCorruptFrames(t *testing.T) {
	good := EncodePacket(&wire.Packet{Kind: wire.PktEager, Payload: []byte("abc")})
	cases := map[string][]byte{
		"empty":            {},
		"short prefix":     good[:3],
		"truncated header": good[:10],
		"truncated body":   good[:len(good)-1],
		"trailing junk":    append(append([]byte{}, good...), 0xFF),
		"bad version":      func() []byte { b := append([]byte{}, good...); b[4] = 99; return b }(),
		"huge length":      {0xFF, 0xFF, 0xFF, 0xFF},
	}
	for name, b := range cases {
		if _, err := DecodePacket(b); err == nil {
			t.Errorf("%s: corrupt frame decoded without error", name)
		}
	}
	// Stream reader: a partial frame is an unexpected EOF, not a hang or
	// a zero packet.
	if _, err := ReadPacket(bytes.NewReader(good[:len(good)-2])); err != io.ErrUnexpectedEOF {
		t.Errorf("partial stream frame: want ErrUnexpectedEOF, got %v", err)
	}
	if _, err := ReadPacket(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0})); err == nil {
		t.Errorf("oversized stream frame accepted")
	}
}
