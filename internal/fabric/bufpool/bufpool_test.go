package bufpool

import (
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, 0}, {1, 0}, {512, 0},
		{513, 1}, {1024, 1},
		{1025, 2},
		{4 << 10, 3},
		{(4 << 10) + 1, 4},
		{1 << 20, 11},
		{MaxPooled, numClasses - 1},
		{MaxPooled + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetLenAndClassCap(t *testing.T) {
	for _, n := range []int{0, 1, 100, 512, 513, 4096, 5000, 1 << 20} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) has len %d", n, len(b))
		}
		if want := classSize(classFor(n)); cap(b) != want {
			t.Fatalf("Get(%d) has cap %d, want class cap %d", n, cap(b), want)
		}
	}
}

func TestOversizedFallsBack(t *testing.T) {
	n := MaxPooled + 1
	b := Get(n)
	if len(b) != n {
		t.Fatalf("oversized Get has len %d", len(b))
	}
	Put(b) // must be silently dropped, not pooled under a wrong class
}

func TestRecycleRoundTrip(t *testing.T) {
	b := Get(4096)
	for i := range b {
		b[i] = 0xAB
	}
	Put(b)
	// The next same-class Get may or may not return the same memory
	// (sync.Pool gives no guarantee), but it must be class-capacity and
	// independent of the old length.
	c := Get(100)
	if cap(c) != classSize(classFor(100)) {
		t.Fatalf("recycled Get has cap %d", cap(c))
	}
}

func TestForeignCapacityDropped(t *testing.T) {
	// A slice whose capacity is not exactly a class size must never be
	// pooled: a later Get would hand out a buffer violating the class
	// capacity invariant.
	Put(make([]byte, 300, 300))
	b := Get(300)
	if cap(b) != classSize(0) {
		t.Fatalf("foreign capacity leaked into the pool: cap %d", cap(b))
	}
}

// TestGetPutAllocFree pins the reason the pool stores raw pointers: a
// steady-state Get/Put cycle performs zero allocations.
func TestGetPutAllocFree(t *testing.T) {
	// Warm the class so the measured loop never hits the pool's miss
	// path (which legitimately allocates the buffer itself).
	Put(Get(4096))
	allocs := testing.AllocsPerRun(100, func() {
		b := Get(4096)
		Put(b)
	})
	if allocs > 0 {
		t.Errorf("Get/Put cycle allocates %.1f times per op, want 0", allocs)
	}
}

// TestCountersTrackTraffic checks the pool's telemetry counters move the
// right way for hit, miss, put and drop paths. Absolute values are
// deltas, since other tests (and parallel packages) share the global
// pool.
func TestCountersTrackTraffic(t *testing.T) {
	before := Snapshot()
	Put(Get(4096)) // warm: one get (hit or miss) + one put
	Put(Get(4096)) // now guaranteed hit + put
	Put(make([]byte, 300, 300))
	Get(MaxPooled + 1)
	after := Snapshot()
	if after.Hits <= before.Hits {
		t.Errorf("hits did not advance: %d -> %d", before.Hits, after.Hits)
	}
	if after.Puts < before.Puts+2 {
		t.Errorf("puts advanced %d, want >= 2", after.Puts-before.Puts)
	}
	if after.Drops != before.Drops+1 {
		t.Errorf("drops advanced %d, want 1", after.Drops-before.Drops)
	}
	if after.Misses < before.Misses+1 {
		t.Errorf("misses advanced %d, want >= 1 (oversized get)", after.Misses-before.Misses)
	}
}

func BenchmarkGetPut4K(b *testing.B) {
	Put(Get(4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Put(Get(4096))
	}
}
