// Package bufpool is the fabric layer's size-classed buffer arena: the
// recycling pool behind the zero-allocation receive path. Transports
// decode inbound frames into buffers borrowed from this pool
// (fabric.DecodePacketPooled / fabric.ReadPacketPooled), the engine
// copies the payload into the application buffer, and the buffer comes
// back through Put — so the steady-state eager path allocates nothing
// per packet, which is what keeps the communication engine's overhead
// from eating the overlap wins the paper measures.
//
// Buffers are held in power-of-two size classes from 512 B to 4 MiB,
// one sync.Pool per class, so a burst of mixed-size traffic cannot pin
// peak memory: the runtime trims each class under GC pressure exactly
// as it does any sync.Pool. Requests above the largest class fall back
// to plain allocation and Put quietly drops them (and any slice whose
// capacity is not exactly a class size), so a stray foreign buffer can
// never poison a class with the wrong capacity.
//
// Ownership discipline is the caller's: a buffer handed to Put must not
// be read, written, or aliased afterwards — the next Get may hand it to
// an unrelated connection. docs/PERF.md spells out the hand-off rules
// the fabric and engine follow.
package bufpool

import (
	"math/bits"
	"sync"
	"unsafe"

	"pioman/internal/telemetry"
)

const (
	// minClassBits is the smallest class, 1<<9 = 512 bytes: below the
	// typical eager header+payload frame but big enough that tiny
	// control payloads don't fragment the classes.
	minClassBits = 9
	// maxClassBits is the largest class, 1<<22 = 4 MiB: comfortably
	// above the rails' MTUs and eager thresholds; rendezvous payloads
	// beyond it are one-off bulk transfers the GC handles fine.
	maxClassBits = 22
	numClasses   = maxClassBits - minClassBits + 1
)

// MaxPooled is the largest request the pool serves from a class;
// larger buffers are plainly allocated and never recycled.
const MaxPooled = 1 << maxClassBits

// Pool traffic counters. The pool is process-global and hammered from
// every rail's receive goroutine at once, so these are sharded: an Inc
// costs one cache-local atomic add and never serializes rails on a
// shared line. They are always on — the cost is identical whether or not
// a registry reads them, which keeps bench comparisons honest.
var (
	hits   telemetry.ShardedCounter // Get served from a class pool
	misses telemetry.ShardedCounter // Get fell back to make (cold class or oversized)
	puts   telemetry.ShardedCounter // Put recycled a buffer into its class
	drops  telemetry.ShardedCounter // Put dropped a foreign or oversized buffer
)

// Stats is a point-in-time capture of the pool counters.
type Stats struct {
	Hits   uint64 // Gets served from a class pool
	Misses uint64 // Gets that allocated (cold class or > MaxPooled)
	Puts   uint64 // buffers recycled into a class
	Drops  uint64 // buffers rejected by Put
}

// Snapshot returns the current pool counters.
func Snapshot() Stats {
	return Stats{Hits: hits.Load(), Misses: misses.Load(), Puts: puts.Load(), Drops: drops.Load()}
}

// RegisterMetrics registers the pool's counters with reg under
// "process.bufpool.*". The pool is process-global, so the names carry no
// node prefix; in-process multi-node worlds share one pool and one set
// of series.
func RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCounter("process.bufpool.hits", "buffer gets served from a size-class pool", hits.Load)
	reg.RegisterCounter("process.bufpool.misses", "buffer gets that fell back to allocation", misses.Load)
	reg.RegisterCounter("process.bufpool.puts", "buffers recycled into a size class", puts.Load)
	reg.RegisterCounter("process.bufpool.drops", "buffers rejected by Put (foreign or oversized)", drops.Load)
}

// pools[i] holds buffers of exactly 1<<(minClassBits+i) bytes capacity.
// Each entry stores an unsafe.Pointer to the buffer's first byte rather
// than a boxed []byte: a pointer fits an interface word, so Get and Put
// themselves allocate nothing — boxing a slice header would cost the
// very per-packet allocation the pool exists to remove.
var pools [numClasses]sync.Pool

// classFor returns the class index serving a request of n bytes, or -1
// when n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	if n > MaxPooled {
		return -1
	}
	return bits.Len(uint(n-1)) - minClassBits
}

// classSize returns the buffer capacity of class c.
func classSize(c int) int { return 1 << (minClassBits + c) }

// Get returns a buffer of length n, drawn from the class pool when
// n ≤ MaxPooled (its capacity is then the class size) and plainly
// allocated otherwise. The contents are unspecified: callers overwrite
// the buffer before reading it, as every decode path does.
func Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		misses.Inc()
		return make([]byte, n)
	}
	if p, _ := pools[c].Get().(unsafe.Pointer); p != nil {
		hits.Inc()
		return unsafe.Slice((*byte)(p), classSize(c))[:n]
	}
	misses.Inc()
	return make([]byte, n, classSize(c))
}

// Put hands b back to its class pool. Buffers whose capacity is not
// exactly a class size — foreign slices, or oversized one-offs from the
// plain-allocation fallback — are dropped for the GC, never pooled, so
// the class invariant (every pooled buffer has its class's capacity)
// holds unconditionally. The caller must drop every alias of b first:
// the next Get may hand the same memory to an unrelated stream.
func Put(b []byte) {
	c := classFor(cap(b))
	if c < 0 || cap(b) != classSize(c) {
		drops.Inc()
		return
	}
	puts.Inc()
	b = b[:1] // non-empty reslice so &b[0] addresses the backing array
	pools[c].Put(unsafe.Pointer(&b[0]))
}
