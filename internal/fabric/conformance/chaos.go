package conformance

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/fabric"
	"pioman/internal/mpi"
	"pioman/internal/wire"
)

// ChaosConfig selects the disorder a Chaos wrapper injects into the
// frames its endpoints accept. Every probabilistic decision is drawn
// from one rand.Source per endpoint, derived from Seed and the rank, so
// a failing run is replayable bit-for-bit by re-running with the logged
// seed — provided the send schedule itself is deterministic (a single
// sending goroutine, or a workload whose per-endpoint send order does
// not race).
//
// Chaos operates at the frame level, above the wrapped backend, so the
// injected failures are visible to whatever consumes the fabric
// directly. Wrapping an engine world therefore only tolerates the
// knobs the engine contract survives: Reorder and Latency (receivers
// reorder by sequence number; delay is just a slow wire). Drop breaks
// the reliable-delivery contract the engine assumes (a transfer
// hangs), Duplicate trips the engine's duplicate-sequence panic, and
// Corrupt hands the consumer a mutated payload — those three are for
// raw-endpoint tests, for rails the multirail failover strategy is
// expected to abandon, and for transports with their own reliability
// sublayer tested below the frame level (see udpfab.ChaosParams).
type ChaosConfig struct {
	// Seed drives every endpoint's random source.
	Seed int64
	// Drop is the probability a frame is silently discarded after Send
	// accepts it. Drops count into LostFrames — the asynchronous-loss
	// shape (accepted, then gone) the failover strategy watches.
	Drop float64
	// Duplicate is the probability a frame is delivered twice.
	Duplicate float64
	// Corrupt is the probability one payload bit is flipped in transit.
	// Frames with empty payloads pass through unmutated.
	Corrupt float64
	// Reorder is the probability a frame is held back by ReorderDelay,
	// letting frames sent after it overtake it.
	Reorder float64
	// ReorderDelay is the hold applied to reordered frames (default
	// 2ms).
	ReorderDelay time.Duration
	// Latency is added delay applied to every delivered frame.
	Latency time.Duration
	// KillAfter, when positive, kills the endpoint after it has accepted
	// that many frames: every later frame is silently discarded, exactly
	// like a stream that dies *between* span submission and delivery —
	// the today-hangs window the engine's acked-replay protocol exists
	// for. Unlike Drop, the kill is deterministic (no random draw), so
	// the scenario replays without a seed.
	KillAfter int
	// KillDuration revives a killed endpoint after that long (measured
	// from its first discarded frame); zero keeps it dead forever. A
	// revived endpoint delivers again — the rail-recovery half of the
	// probation/re-admission lifecycle.
	KillDuration time.Duration
	// KillLossDelay postpones counting a kill-discarded frame into
	// LostFrames. With a delay longer than a span submission, the
	// sender's synchronous counters-quiet check passes and the loss
	// surfaces only asynchronously — the shape that defeats submission-
	// time failover and leaves only end-to-end acknowledgment. Zero
	// counts immediately.
	KillLossDelay time.Duration
	// KillRanks restricts the kill to the listed ranks' endpoints; nil
	// kills every endpoint (each on its own accepted-frame count).
	KillRanks []int
	// RecordTrace keeps a per-endpoint log of every Send decision,
	// retrievable with Trace — the pin for seeded-determinism tests.
	RecordTrace bool
}

// Chaos wraps a fabric so its endpoints inject seeded, replayable
// disorder — drops, duplicates, bit corruption, reordering, latency —
// into every frame they accept. It is the promotion of the original
// drop-everything Lossy harness into a composable fault model: Lossy
// is now just the Drop=1 special case. Reception is untouched, so a
// wrapped rail stays pollable.
type Chaos struct {
	inner fabric.Fabric
	cfg   ChaosConfig

	mu  sync.Mutex
	eps map[int]*chaosEndpoint
}

// NewChaos wraps inner with the given fault model.
func NewChaos(inner fabric.Fabric, cfg ChaosConfig) *Chaos {
	return &Chaos{inner: inner, cfg: cfg, eps: make(map[int]*chaosEndpoint)}
}

// Lossy is the drop-everything special case of Chaos, kept under its
// original name: every frame its endpoints accept is dropped and
// counted in LostFrames — the loss-injection harness of the
// rail-failure case.
type Lossy = Chaos

// NewLossy wraps inner so every accepted frame is dropped and counted;
// see Lossy.
func NewLossy(inner fabric.Fabric) *Lossy {
	return NewChaos(inner, ChaosConfig{Drop: 1})
}

// Nodes implements fabric.Fabric.
func (c *Chaos) Nodes() int { return c.inner.Nodes() }

// Close implements fabric.Fabric.
func (c *Chaos) Close() error { return c.inner.Close() }

// Endpoint implements fabric.Fabric, handing out one stable wrapper per
// rank so loss counts and decision traces accumulate per endpoint as on
// a real transport.
func (c *Chaos) Endpoint(rank int) (fabric.Endpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ep := c.eps[rank]; ep != nil {
		return ep, nil
	}
	inner, err := c.inner.Endpoint(rank)
	if err != nil {
		return nil, err
	}
	captures := false
	if sc, ok := inner.(fabric.SendCapturer); ok {
		captures = sc.SendCaptures()
	}
	killable := c.cfg.KillAfter > 0 && len(c.cfg.KillRanks) == 0
	for _, r := range c.cfg.KillRanks {
		if r == rank {
			killable = c.cfg.KillAfter > 0
		}
	}
	ep := &chaosEndpoint{
		Endpoint:      inner,
		cfg:           &c.cfg,
		innerCaptures: captures,
		killable:      killable,
		rng:           rand.New(rand.NewSource(c.cfg.Seed + int64(rank)*1_000_003)),
	}
	c.eps[rank] = ep
	return ep, nil
}

// Trace returns a copy of rank's recorded Send decisions, in Send
// order. Empty unless RecordTrace was set (or the rank never sent).
func (c *Chaos) Trace(rank int) []string {
	c.mu.Lock()
	ep := c.eps[rank]
	c.mu.Unlock()
	if ep == nil {
		return nil
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	out := make([]string, len(ep.trace))
	copy(out, ep.trace)
	return out
}

// chaosEndpoint decorates Send with the fault model; everything else is
// the inner endpoint's.
type chaosEndpoint struct {
	fabric.Endpoint
	cfg           *ChaosConfig
	innerCaptures bool
	killable      bool

	mu    sync.Mutex
	rng   *rand.Rand
	trace []string

	lost atomic.Uint64
	// Kill lifecycle: accepted counts frames toward KillAfter; killedAt
	// stamps (unix nanos) when the first frame was discarded, which
	// starts the KillDuration revival clock.
	accepted atomic.Uint64
	killedAt atomic.Int64
}

// dead reports whether this frame lands in the kill window: past the
// accepted-frame budget and, when KillDuration is set, before the
// revival deadline.
func (ce *chaosEndpoint) dead() bool {
	if !ce.killable || ce.accepted.Add(1) <= uint64(ce.cfg.KillAfter) {
		return false
	}
	kt := ce.killedAt.Load()
	if kt == 0 {
		now := time.Now().UnixNano()
		if !ce.killedAt.CompareAndSwap(0, now) {
			kt = ce.killedAt.Load()
		} else {
			kt = now
		}
	}
	if d := ce.cfg.KillDuration; d > 0 && time.Now().UnixNano() >= kt+int64(d) {
		return false // revived
	}
	return true
}

// Send implements fabric.Endpoint: the fault model decides the frame's
// fate with draws from the endpoint's seeded source, then a private
// copy of the packet is delivered (or not) on the decided schedule.
// The caller's packet is never retained, so SendCaptures is true
// regardless of the wrapped backend.
func (ce *chaosEndpoint) Send(p *wire.Packet) error {
	cfg := ce.cfg
	if ce.dead() {
		// The endpoint is in its kill window: the frame vanishes, and the
		// loss surfaces in LostFrames only after KillLossDelay — invisible
		// to a sender checking counters right after submission.
		if d := cfg.KillLossDelay; d > 0 {
			time.AfterFunc(d, func() { ce.lost.Add(1) })
		} else {
			ce.lost.Add(1)
		}
		return nil
	}
	ce.mu.Lock()
	drop := cfg.Drop > 0 && ce.rng.Float64() < cfg.Drop
	dup := cfg.Duplicate > 0 && ce.rng.Float64() < cfg.Duplicate
	corrupt := cfg.Corrupt > 0 && len(p.Payload) > 0 && ce.rng.Float64() < cfg.Corrupt
	reorder := cfg.Reorder > 0 && ce.rng.Float64() < cfg.Reorder
	flip := 0
	if corrupt {
		flip = ce.rng.Intn(len(p.Payload) * 8)
	}
	if cfg.RecordTrace {
		ce.trace = append(ce.trace, fmt.Sprintf(
			"dst=%d seq=%d len=%d drop=%t dup=%t corrupt=%t reorder=%t",
			p.Dst, p.Seq, len(p.Payload), drop, dup, corrupt, reorder))
	}
	ce.mu.Unlock()

	if drop {
		ce.lost.Add(1)
		return nil
	}
	delay := cfg.Latency
	if reorder {
		rd := cfg.ReorderDelay
		if rd <= 0 {
			rd = 2 * time.Millisecond
		}
		delay += rd
	}
	ce.forward(p, delay, corrupt, flip)
	if dup {
		ce.forward(p, delay, false, 0)
	}
	return nil
}

// forward delivers a private copy of p after delay, flipping one
// payload bit when corrupt. A deferred delivery that fails (the world
// closed underneath the timer) is a late loss and is counted as one.
func (ce *chaosEndpoint) forward(p *wire.Packet, delay time.Duration, corrupt bool, flip int) {
	q := fabric.CapturePacket(p)
	if corrupt {
		q.Payload[flip/8] ^= 1 << (flip % 8)
	}
	if delay <= 0 {
		if err := ce.deliver(q); err != nil {
			ce.lost.Add(1)
		}
		return
	}
	time.AfterFunc(delay, func() {
		if err := ce.deliver(q); err != nil {
			ce.lost.Add(1)
		}
	})
}

// deliver hands a copy the wrapper owns to the inner endpoint,
// recycling it when the inner Send captures.
func (ce *chaosEndpoint) deliver(q *wire.Packet) error {
	err := ce.Endpoint.Send(q)
	if err == nil && ce.innerCaptures {
		fabric.ReleasePacket(q)
		return nil
	}
	return err
}

// SendCaptures implements fabric.SendCapturer: Send fully consumes the
// packet (by copying or dropping it), so callers may recycle it
// immediately.
func (ce *chaosEndpoint) SendCaptures() bool { return true }

// MaxPayload implements fabric.PayloadLimiter: the fault model must not
// hide the wrapped transport's frame ceiling, or the engine would submit
// frames the inner endpoint refuses (udpfab's one-datagram limit). An
// inner endpoint declaring no limit gets the codec's universal ceiling.
func (ce *chaosEndpoint) MaxPayload() int {
	if lim, ok := ce.Endpoint.(fabric.PayloadLimiter); ok {
		return lim.MaxPayload()
	}
	return fabric.MaxPayloadBytes
}

// PollBatch implements fabric.Endpoint by delegating to BatchFromPoll:
// the wrapper must not inherit the inner endpoint's native batch, or a
// future Poll decoration would be bypassed (see fabric.BatchFromPoll).
func (ce *chaosEndpoint) PollBatch(into []*wire.Packet) int {
	return fabric.BatchFromPoll(ce, into)
}

// LostFrames implements fabric.LossCounter: frames dropped by the fault
// model plus deferred deliveries that failed late.
func (ce *chaosEndpoint) LostFrames() uint64 { return ce.lost.Load() }

// ChaosSeed returns the seed a chaos run should use: the value of
// PIOMAN_CHAOS_SEED when set (the replay workflow), otherwise the
// current nanosecond clock. Either way the seed is logged, so every
// failure report carries what is needed to reproduce it.
func ChaosSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("PIOMAN_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PIOMAN_CHAOS_SEED %q: %v", s, err)
		}
		t.Logf("chaos seed %d (from PIOMAN_CHAOS_SEED)", v)
		return v
	}
	v := time.Now().UnixNano()
	t.Logf("chaos seed %d (set PIOMAN_CHAOS_SEED=%d to replay)", v, v)
	return v
}

// RunChaosSoak runs the disorder-soak case against worlds from open: a
// windowed storm of eager messages plus concurrent rendezvous transfers
// in both directions at once, asserting every message arrives exactly
// once and intact. The open callback decides what disorder the world
// runs under — reliable backends wrap their fabric in a Chaos with
// Reorder and Latency (the contract-preserving knobs), udpfab builds
// its loopback fabric over datagram-level drop/duplicate/corrupt
// injection its reliability sublayer must absorb. The workload itself
// is deliberately identical across backends so a soak failure isolates
// the backend, not the traffic shape.
func RunChaosSoak(t *testing.T, open OpenWorld) {
	t.Run("ChaosSoak", func(t *testing.T) {
		w := open(t)
		defer closeWorld(t, w)
		const (
			eagerMsgs = 160
			rdvMsgs   = 4
			eagerSize = 512
			rdvSize   = 160 << 10
		)
		w.RunAll(func(p *mpi.Proc) {
			peer := 1 - p.Rank()
			// Both ranks fire their full schedule before waiting on
			// anything, so eager frames, RTS/CTS handshakes and striped
			// rendezvous data all cross the disordered wire at once.
			sends := make([]*core.SendReq, 0, eagerMsgs+rdvMsgs)
			for i := 0; i < eagerMsgs; i++ {
				sends = append(sends, p.Isend(peer, 1000+i, patternedAt(eagerSize+i%9, byte(i))))
			}
			for i := 0; i < rdvMsgs; i++ {
				sends = append(sends, p.Isend(peer, 5000+i, patternedAt(rdvSize+i, byte(0x80+i))))
			}
			recvs := make([]*core.RecvReq, 0, eagerMsgs+rdvMsgs)
			bufs := make([][]byte, 0, eagerMsgs+rdvMsgs)
			for i := 0; i < eagerMsgs; i++ {
				buf := make([]byte, eagerSize+i%9)
				bufs = append(bufs, buf)
				recvs = append(recvs, p.Irecv(peer, 1000+i, buf))
			}
			for i := 0; i < rdvMsgs; i++ {
				buf := make([]byte, rdvSize+i)
				bufs = append(bufs, buf)
				recvs = append(recvs, p.Irecv(peer, 5000+i, buf))
			}
			for _, r := range sends {
				p.WaitSend(r)
			}
			for i, r := range recvs {
				p.WaitRecv(r)
				var want []byte
				if i < eagerMsgs {
					want = patternedAt(eagerSize+i%9, byte(i))
				} else {
					want = patternedAt(rdvSize+(i-eagerMsgs), byte(0x80+(i-eagerMsgs)))
				}
				if !bytes.Equal(bufs[i], want) {
					t.Errorf("rank %d message %d arrived corrupted under chaos", p.Rank(), i)
				}
			}
		})
	})
}
