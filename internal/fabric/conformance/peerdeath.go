package conformance

import (
	"errors"
	"os"
	"runtime"
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/mpi"
	"pioman/internal/telemetry"
	"pioman/internal/topo"
)

// RunPeerDeath runs the bounded-failure contract against the backend: a
// three-rank world (one distributed World per rank, sharing one fabric,
// so a rank can genuinely die while the others keep running) where rank
// 2's endpoint is killed mid-rendezvous. The engine's PeerDeadline
// detection must complete every pending request toward the dead rank
// with core.ErrPeerDead — no eternal replay, no hung Wait — new posts
// toward it must fail fast, the survivors must still round-trip, and
// the teardown must leak neither goroutines nor file descriptors
// (docs/CLUSTER.md).
func RunPeerDeath(t *testing.T, open OpenFabric) {
	t.Run("PeerDeath", func(t *testing.T) {
		goroutinesBefore := settleGoroutines(0, 0)
		fdsBefore := openFDCount()
		f := open(t, 3)
		const peerDeadline = 300 * time.Millisecond
		reg := telemetry.NewRegistry()
		worlds := make([]*mpi.World, 3)
		for rank := 0; rank < 3; rank++ {
			worlds[rank] = mpi.NewDistributed(mpi.Config{
				Mode:           core.Multithreaded,
				OffloadEager:   true,
				EnableBlocking: true,
				NoIdlePolling:  true,
				Machine:        topo.Machine{Sockets: 1, CoresPerSocket: 2},
				PeerDeadline:   peerDeadline,
				Metrics:        reg,
			}, failoverParams("rail"), mustEp(t, f, rank))
		}
		closed := make([]bool, 3)
		defer func() {
			for rank, w := range worlds {
				if !closed[rank] {
					closeWorld(t, w)
				}
			}
		}()

		// Phase 1: rank 0 opens a rendezvous toward rank 2 and posts a
		// receive from it, then returns with both requests pending — the
		// handshake is parked at the replayed RTS.
		msg := patterned(256 << 10)
		recvBuf := make([]byte, 64)
		var sendReq *core.SendReq
		var recvReq *core.RecvReq
		worlds[0].Node(0).Run(func(p *mpi.Proc) {
			sendReq = p.Isend(2, 7, msg)
			if !sendReq.Rendezvous() {
				t.Errorf("256 KiB send did not pick the rendezvous protocol")
			}
			recvReq = p.Irecv(2, 8, recvBuf)
		})

		// Kill rank 2: its endpoint closes mid-handshake, exactly like a
		// crashed process. Nothing will ever answer the RTS again.
		closeWorld(t, worlds[2])
		closed[2] = true
		killedAt := time.Now()

		// Phase 2: both pending requests must error-complete once rank
		// 2's silence outlives PeerDeadline, and a fresh post toward the
		// dead rank must fail fast instead of joining the replay queue.
		// The bound is deadline-plus-one-transport-stall, not a small
		// multiple of the deadline: a transport whose Send blocks while
		// it rides out a redial window (tcpfab's 3s dial retry) stalls
		// the maintenance pass that long before the verdict can land.
		const deadGrace = 8 * time.Second
		worlds[0].Node(0).Run(func(p *mpi.Proc) {
			if !p.Node.Eng.WaitAllTimeout(p.Th, deadGrace, sendReq.Req(), recvReq.Req()) {
				t.Fatalf("requests toward the dead rank still pending %v after the kill (PeerDeadline %v)",
					time.Since(killedAt), peerDeadline)
			}
			elapsed := time.Since(killedAt)
			if err := sendReq.Err(); !errors.Is(err, core.ErrPeerDead) {
				t.Errorf("pending rendezvous send completed with %v, want core.ErrPeerDead", err)
			}
			if err := recvReq.Err(); !errors.Is(err, core.ErrPeerDead) {
				t.Errorf("pending receive completed with %v, want core.ErrPeerDead", err)
			}
			t.Logf("pending requests errored %v after the kill (deadline %v)", elapsed, peerDeadline)
			if !p.Node.Eng.PeerDead(2) {
				t.Error("engine does not report rank 2 dead after the deadline")
			}
			late := p.Isend(2, 9, []byte("too late"))
			if err := late.Err(); !errors.Is(err, core.ErrPeerDead) {
				t.Errorf("post toward a dead rank returned %v, want fail-fast core.ErrPeerDead", err)
			}
			late.Release()
		})

		// Phase 3: the survivors still talk. Rank 1 echoes one eager
		// message back to rank 0 — the death of rank 2 must not have
		// poisoned the 0↔1 path.
		echoDone := make(chan struct{})
		go func() {
			defer close(echoDone)
			worlds[1].Node(1).Run(func(p *mpi.Proc) {
				buf := make([]byte, 4<<10)
				r := p.Irecv(0, 11, buf)
				if !p.Node.Eng.WaitAllTimeout(p.Th, recvDeadline, r.Req()) {
					t.Error("survivor rank 1 never received from rank 0 after the death")
					return
				}
				n := r.Len()
				r.Release()
				p.Send(0, 12, buf[:n])
			})
		}()
		worlds[0].Node(0).Run(func(p *mpi.Proc) {
			out := patterned(4 << 10)
			if err := p.SendErr(1, 11, out); err != nil {
				t.Errorf("survivor send 0->1 failed: %v", err)
			}
			back := make([]byte, len(out))
			r := p.Irecv(1, 12, back)
			if !p.Node.Eng.WaitAllTimeout(p.Th, recvDeadline, r.Req()) {
				t.Error("survivor round-trip never completed after the death")
			}
			r.Release()
		})
		<-echoDone

		snap := reg.Snapshot()
		if pd := snap.Value("node0.engine.peer_dead"); pd != 1 {
			t.Errorf("node0.engine.peer_dead = %d, want 1", pd)
		}
		if rf := snap.Value("node0.engine.reqs_failed"); rf < 3 {
			t.Errorf("node0.engine.reqs_failed = %d, want >= 3 (pending send, pending recv, fail-fast post)", rf)
		}
		if pd := snap.Value("node1.engine.peer_dead"); pd != 0 {
			t.Errorf("node1.engine.peer_dead = %d: the survivor path had no pending traffic toward rank 2", pd)
		}

		// Teardown gate: close everything and require the process to
		// settle back to its starting goroutine and fd budget — a dead
		// peer must not strand replay timers, watchers, or sockets.
		for rank, w := range worlds {
			if !closed[rank] {
				closeWorld(t, w)
				closed[rank] = true
			}
		}
		f.Close()
		if after := settleGoroutines(goroutinesBefore+2, 5*time.Second); after > goroutinesBefore+2 {
			t.Errorf("goroutines leaked: %d before, %d after teardown", goroutinesBefore, after)
		}
		if fdsBefore >= 0 {
			if fdsAfter := settleFDs(fdsBefore, 5*time.Second); fdsAfter > fdsBefore {
				t.Errorf("file descriptors leaked: %d before, %d after teardown", fdsBefore, fdsAfter)
			}
		}
	})
}

// openFDCount returns the process's open descriptor count, or -1 where
// /proc is unavailable (the fd gate is then skipped).
func openFDCount() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// settleFDs polls the descriptor count until it drops to target or the
// timeout passes, mirroring settleGoroutines: close(2) on sockets is
// asynchronous with respect to the poller goroutines that held them.
func settleFDs(target int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		n := openFDCount()
		if n <= target || time.Now().After(deadline) {
			return n
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}
