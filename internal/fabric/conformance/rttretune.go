package conformance

import (
	"bytes"
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/fabric"
	"pioman/internal/mpi"
	"pioman/internal/nic"
	"pioman/internal/telemetry"
	"pioman/internal/topo"
)

// RunRTTRetune runs the latency-penalty regression against the backend:
// a bonded two-rail world where railB delivers every frame — no loss, no
// kill — but 2ms late each way via the Chaos latency knob. Sender-side
// goodput windows cannot see that (frames are accepted immediately; the
// delay is on delivery), so before the RTT-aware retune the two rails
// kept equal stripe share and every striped rendezvous tailed on the
// slow rail. The health-probe RTT must surface the asymmetry and the
// online retune must shed railB's share to under half of railA's.
func RunRTTRetune(t *testing.T, open OpenFabric) {
	t.Run("RTTRetune", func(t *testing.T) {
		good := open(t, 2)
		slow := NewChaos(open(t, 2), ChaosConfig{
			Seed:    ChaosSeed(t),
			Latency: 2 * time.Millisecond,
		})
		reg := telemetry.NewRegistry()
		w := mpi.NewWorld(mpi.Config{
			Nodes:             2,
			Machine:           topo.Machine{Sockets: 1, CoresPerSocket: 2},
			Mode:              core.Multithreaded,
			OffloadEager:      true,
			EnableBlocking:    true,
			Strategy:          "multirail",
			MultirailMin:      64 << 10,
			AutoStripeWeights: true,
			MX:                failoverParams("railA"),
			ExtraRails:        []nic.Params{failoverParams("railB")},
			Fabrics:           map[string]fabric.Fabric{"railA": good, "railB": slow},
			Metrics:           reg,
		})
		defer closeWorld(t, w)
		msg := patterned(192 << 10)
		shed := func() bool {
			snap := reg.Snapshot()
			wa, wb := snap.Value("node0.rail.railA.stripe_weight"), snap.Value("node0.rail.railB.stripe_weight")
			return wa > 0 && wb < wa/2
		}
		w.RunAll(func(p *mpi.Proc) {
			if p.Rank() == 1 {
				buf := make([]byte, len(msg))
				for {
					n, _ := p.Recv(0, 5, buf)
					if n == 1 {
						return
					}
					if n != len(msg) || !bytes.Equal(buf[:n], msg) {
						t.Errorf("retune payload corrupted (n=%d)", n)
					}
					p.Send(0, 6, []byte{1})
				}
			}
			// Sender: striped rendezvous rounds until the retune has
			// demonstrably shed the slow rail's share (plus a few extra
			// rounds to prove traffic still flows), or the deadline calls
			// the regression failed.
			deadline := time.Now().Add(recvDeadline)
			shedAt := -1
			var ack [1]byte
			for round := 0; shedAt < 0 || round < shedAt+4; round++ {
				if time.Now().After(deadline) {
					t.Error("slow rail kept its stripe share: RTT penalty never shed railB below half of railA")
					break
				}
				r := p.Isend(1, 5, msg)
				if !p.Node.Eng.WaitAllTimeout(p.Th, recvDeadline, r.Req()) {
					t.Errorf("retune round %d: rendezvous send wedged", round)
					break
				}
				p.Recv(1, 6, ack[:])
				if shedAt < 0 && shed() {
					shedAt = round
				}
				p.Compute(2 * time.Millisecond)
			}
			p.Send(1, 5, []byte{0}) // stop
		})
		snap := reg.Snapshot()
		rttA, rttB := snap.Value("node0.rail.railA.rtt_ns"), snap.Value("node0.rail.railB.rtt_ns")
		if rttA == 0 || rttB == 0 {
			t.Errorf("health-probe RTT never measured: railA %dns, railB %dns", rttA, rttB)
		} else if rttB < 2*rttA {
			t.Errorf("latency asymmetry not visible in probe RTT: railA %dns, railB %dns", rttA, rttB)
		}
		wa, wb := snap.Value("node0.rail.railA.stripe_weight"), snap.Value("node0.rail.railB.stripe_weight")
		if wa == 0 || wb >= wa/2 {
			t.Errorf("slow rail kept its share: railA weight %d, railB weight %d", wa, wb)
		}
		if rt := snap.Value("node0.engine.stripe_retunes"); rt == 0 {
			t.Error("node0.engine.stripe_retunes is 0: online weights never adjusted")
		}
	})
}
