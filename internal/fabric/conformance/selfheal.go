package conformance

import (
	"bytes"
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/fabric"
	"pioman/internal/mpi"
	"pioman/internal/nic"
	"pioman/internal/telemetry"
	"pioman/internal/topo"
)

// Self-healing suites: the today-hangs case (a rail dies *between* span
// submission and delivery, so submission-time failure detection sees
// nothing) and the rail death-and-recovery soak. Both drive the engine's
// acked rendezvous replay and the probation → re-admission lifecycle
// end to end over the backend under test.

// RunSelfHealing runs the killed-rail replay case against the backend: a
// two-rank world over a single rail whose sender-side endpoint is killed
// by the Chaos wrapper right after the RTS — every DATA frame of the
// rendezvous vanishes in flight, with the loss surfacing only after the
// submission window (KillLossDelay), so neither the synchronous
// counters-quiet check nor multirail failover can see it. Without acked
// replay the transfer hangs forever; with it, the resend timer re-posts
// the data once the endpoint revives and the receiver's DATA-ack
// completes the send. The engine's replay counter must show the timer
// actually fired.
func RunSelfHealing(t *testing.T, open OpenFabric) {
	t.Run("RailKilledAfterSubmission", func(t *testing.T) {
		// KillAfter 1: rank 0's first frame (the RTS) passes, then the
		// endpoint dies for KillDuration — squarely the window between
		// span submission and delivery. The kill is deterministic; no
		// seed is involved.
		chaotic := NewChaos(open(t, 2), ChaosConfig{
			KillAfter:     1,
			KillDuration:  200 * time.Millisecond,
			KillLossDelay: 2 * time.Millisecond,
			KillRanks:     []int{0},
		})
		reg := telemetry.NewRegistry()
		w := mpi.NewWorld(mpi.Config{
			Nodes:          2,
			Machine:        topo.Machine{Sockets: 1, CoresPerSocket: 2},
			Mode:           core.Multithreaded,
			OffloadEager:   true,
			EnableBlocking: true,
			MX:             failoverParams("railA"),
			Fabrics:        map[string]fabric.Fabric{"railA": chaotic},
			Metrics:        reg,
		})
		defer closeWorld(t, w)
		msg := patterned(256 << 10)
		w.RunAll(func(p *mpi.Proc) {
			if p.Rank() == 0 {
				r := p.Isend(1, 5, msg)
				if !r.Rendezvous() {
					t.Errorf("256 KiB send did not pick the rendezvous protocol")
				}
				if !p.Node.Eng.WaitAllTimeout(p.Th, recvDeadline, r.Req()) {
					t.Errorf("rendezvous send never completed: acked replay did not recover the killed rail")
				}
			} else {
				buf := make([]byte, len(msg))
				r := p.Irecv(0, 5, buf)
				if !p.Node.Eng.WaitAllTimeout(p.Th, recvDeadline, r.Req()) {
					t.Errorf("rendezvous receive never completed: acked replay did not recover the killed rail")
					return
				}
				if !bytes.Equal(buf, msg) {
					t.Errorf("replayed rendezvous arrived corrupted")
				}
			}
		})
		snap := reg.Snapshot()
		if replays := snap.Value("node0.engine.rdv_replays"); replays == 0 {
			t.Error("transfer completed but node0.engine.rdv_replays is 0: replay timer never fired")
		}
		if acked := snap.Value("node0.engine.rdv_acked"); acked == 0 {
			t.Error("node0.engine.rdv_acked is 0: rendezvous completed without a receiver data-ack")
		}
	})
}

// RunSelfHealSoak runs the rail death-and-recovery soak against the
// backend: a bonded two-rail world where the secondary rail's sender
// endpoint is killed mid-run and later revives, under a stream of
// striped rendezvous with online stripe weights enabled. The world must
// (1) keep completing transfers through the dead window via acked
// replay, (2) demote the killed rail to probation when its loss
// surfaces, (3) readmit it after a successful health probe, and
// (4) demonstrably put traffic back on it — all asserted from telemetry
// snapshot deltas, the way an operator would see it.
func RunSelfHealSoak(t *testing.T, open OpenFabric) {
	t.Run("SelfHealSoak", func(t *testing.T) {
		good := open(t, 2)
		// KillAfter 6: the first couple of striped spans land on railB,
		// then it goes dark for 250ms with each loss surfacing 2ms after
		// the frame was accepted — past the span's counters-quiet check.
		chaotic := NewChaos(open(t, 2), ChaosConfig{
			Seed:          ChaosSeed(t),
			KillAfter:     6,
			KillDuration:  250 * time.Millisecond,
			KillLossDelay: 2 * time.Millisecond,
			KillRanks:     []int{0},
		})
		reg := telemetry.NewRegistry()
		w := mpi.NewWorld(mpi.Config{
			Nodes:             2,
			Machine:           topo.Machine{Sockets: 1, CoresPerSocket: 2},
			Mode:              core.Multithreaded,
			OffloadEager:      true,
			EnableBlocking:    true,
			Strategy:          "multirail",
			MultirailMin:      64 << 10,
			AutoStripeWeights: true,
			MX:                failoverParams("railA"),
			ExtraRails:        []nic.Params{failoverParams("railB")},
			Fabrics:           map[string]fabric.Fabric{"railA": good, "railB": chaotic},
			Metrics:           reg,
		})
		defer closeWorld(t, w)
		msg := patterned(192 << 10)
		// railB's data_sent/lost_frames the moment the engine reported the
		// readmission; the post-recovery delta is judged against these.
		var readmitSent, readmitLost uint64
		w.RunAll(func(p *mpi.Proc) {
			if p.Rank() == 1 {
				// Receiver: payload rounds until the sender's 1-byte stop
				// message (same tag, told apart by length).
				buf := make([]byte, len(msg))
				for {
					n, _ := p.Recv(0, 5, buf)
					if n == 1 {
						return
					}
					if n != len(msg) || !bytes.Equal(buf[:n], msg) {
						t.Errorf("soak payload corrupted (n=%d)", n)
					}
					p.Send(0, 6, []byte{1})
				}
			}
			// Sender: stream rendezvous rounds until the killed rail is
			// readmitted, then a handful more so the recovered rail
			// demonstrably carries fresh traffic.
			deadline := time.Now().Add(recvDeadline)
			readmitAt := -1
			var ack [1]byte
			for round := 0; readmitAt < 0 || round < readmitAt+8; round++ {
				if time.Now().After(deadline) {
					t.Error("killed rail was never readmitted within the soak deadline")
					break
				}
				r := p.Isend(1, 5, msg)
				if !p.Node.Eng.WaitAllTimeout(p.Th, recvDeadline, r.Req()) {
					t.Errorf("soak round %d: rendezvous send wedged", round)
					break
				}
				p.Recv(1, 6, ack[:])
				if readmitAt < 0 && p.Node.Eng.Stats().RailReadmits > 0 {
					readmitAt = round
					snap := reg.Snapshot()
					readmitSent = snap.Value("node0.rail.railB.data_sent")
					readmitLost = snap.Value("node0.rail.railB.lost_frames")
				}
				p.Compute(2 * time.Millisecond)
			}
			p.Send(1, 5, []byte{0}) // stop
		})
		snap := reg.Snapshot()
		if re := snap.Value("node0.engine.rail_readmits"); re == 0 {
			t.Fatal("node0.engine.rail_readmits is 0 after the soak")
		}
		sentAfter := snap.Value("node0.rail.railB.data_sent")
		lostAfter := snap.Value("node0.rail.railB.lost_frames")
		if sentAfter <= readmitSent {
			t.Errorf("readmitted rail carried no traffic: railB data_sent %d -> %d", readmitSent, sentAfter)
		} else if sentAfter-readmitSent <= lostAfter-readmitLost {
			t.Errorf("readmitted rail only lost traffic: sent +%d, lost +%d",
				sentAfter-readmitSent, lostAfter-readmitLost)
		}
		if rt := snap.Value("node0.engine.stripe_retunes"); rt == 0 {
			t.Error("node0.engine.stripe_retunes is 0: online weights never adjusted during the soak")
		}
		if hs := snap.Value("node0.rail.railB.health_state"); hs != 0 {
			t.Error("railB still reports probation in the final snapshot")
		}
	})
}
