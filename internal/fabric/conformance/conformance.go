// Package conformance is the shared contract test for fabric backends.
// Every backend (simfab, tcpfab, and whatever comes next — shm rings,
// multirail bundles) runs the same two suites:
//
//   - RunEndpoint exercises the raw fabric.Endpoint contract: reliable
//     complete delivery, field fidelity, blocking reception, shutdown.
//   - RunWorld drives the full engine stack (Marcel + PIOMan +
//     NewMadeleine via internal/mpi) over the backend and pins down the
//     protocol-level behaviours the paper's engine guarantees: eager and
//     rendezvous exchanges, RTS/CTS correlation under concurrency,
//     posted-order matching, any-source receives, clean shutdown.
//
// A backend that passes both suites is a drop-in rail transport.
package conformance

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/fabric"
	"pioman/internal/mpi"
	"pioman/internal/nic"
	"pioman/internal/telemetry"
	"pioman/internal/topo"
	"pioman/internal/wire"
)

// OpenFabric builds a fresh n-node fabric for one subtest. Cleanup is the
// caller's: register t.Cleanup inside if the backend needs teardown beyond
// Fabric.Close (the suite always calls Close).
type OpenFabric func(t *testing.T, nodes int) fabric.Fabric

// recvDeadline bounds every wait in the suite: generous enough for a
// loaded -race CI box, far below any test timeout.
const recvDeadline = 30 * time.Second

// RunEndpoint runs the endpoint-level contract suite against open.
func RunEndpoint(t *testing.T, open OpenFabric) {
	t.Run("Identity", func(t *testing.T) {
		f := open(t, 3)
		defer f.Close()
		if f.Nodes() != 3 {
			t.Fatalf("Nodes() = %d, want 3", f.Nodes())
		}
		for rank := 0; rank < 3; rank++ {
			ep, err := f.Endpoint(rank)
			if err != nil {
				t.Fatalf("Endpoint(%d): %v", rank, err)
			}
			if ep.Self() != rank || ep.Nodes() != 3 {
				t.Fatalf("endpoint %d reports self=%d nodes=%d", rank, ep.Self(), ep.Nodes())
			}
		}
		if _, err := f.Endpoint(3); err == nil {
			t.Error("Endpoint(out of range) did not error")
		}
		if _, err := f.Endpoint(-1); err == nil {
			t.Error("Endpoint(-1) did not error")
		}
	})

	t.Run("DeliverAllKinds", func(t *testing.T) {
		f := open(t, 2)
		defer f.Close()
		src, dst := mustEp(t, f, 0), mustEp(t, f, 1)
		kinds := []wire.PacketKind{
			wire.PktEager, wire.PktRTS, wire.PktCTS, wire.PktData, wire.PktCtrl, wire.PktAggr,
		}
		for i, k := range kinds {
			payload := bytes.Repeat([]byte{byte(i + 1)}, 64+i)
			want := &wire.Packet{
				Kind: k, Src: 0, Dst: 1, Tag: -5 + i, Seq: uint64(i + 1),
				MsgID: uint64(1000 + i), Offset: 7 * i, Payload: payload,
			}
			if err := src.Send(want); err != nil {
				t.Fatalf("send %v: %v", k, err)
			}
			got := recvOne(t, dst)
			if got.Kind != want.Kind || got.Src != 0 || got.Dst != 1 ||
				got.Tag != want.Tag || got.Seq != want.Seq ||
				got.MsgID != want.MsgID || got.Offset != want.Offset ||
				!bytes.Equal(got.Payload, want.Payload) {
				t.Fatalf("kind %v arrived mutated:\nwant %+v\ngot  %+v", k, want, got)
			}
		}
	})

	t.Run("CompleteDelivery", func(t *testing.T) {
		// The portable ordering contract: nothing lost, nothing
		// duplicated, every sequence number accounted for. Total order
		// is deliberately NOT asserted — the simulator's fragmenting
		// wire may interleave, and receivers reorder by Seq.
		f := open(t, 2)
		defer f.Close()
		src, dst := mustEp(t, f, 0), mustEp(t, f, 1)
		const n = 300
		go func() {
			for i := 1; i <= n; i++ {
				size := 16
				if i%7 == 0 {
					size = 24 << 10 // bulk packets provoke interleaving
				}
				src.Send(&wire.Packet{
					Kind: wire.PktEager, Src: 0, Dst: 1, Seq: uint64(i),
					Payload: bytes.Repeat([]byte{byte(i)}, size),
				})
			}
		}()
		seen := make(map[uint64]bool, n)
		for len(seen) < n {
			p := recvOne(t, dst)
			if seen[p.Seq] {
				t.Fatalf("sequence %d delivered twice", p.Seq)
			}
			if p.Seq < 1 || p.Seq > n {
				t.Fatalf("unknown sequence %d", p.Seq)
			}
			if len(p.Payload) > 0 && p.Payload[0] != byte(p.Seq) {
				t.Fatalf("sequence %d payload corrupted", p.Seq)
			}
			seen[p.Seq] = true
		}
	})

	t.Run("ReversedOpenOrder", func(t *testing.T) {
		// Endpoints must come up usable in any order. Backends that
		// build per-endpoint resources lazily — shmfab creates its mmap'd
		// ring files at attach time, the analog of tcpfab's simultaneous
		// connect — must let whichever side arrives first create the
		// shared state and the latecomer adopt it, in both directions.
		f := open(t, 2)
		defer f.Close()
		later := mustEp(t, f, 1) // the "second" rank attaches first
		first := mustEp(t, f, 0)
		if err := first.Send(&wire.Packet{Kind: wire.PktCtrl, Src: 0, Dst: 1, Tag: 1, Payload: []byte("fwd")}); err != nil {
			t.Fatalf("send toward the earlier-opened endpoint: %v", err)
		}
		if p := recvOne(t, later); p.Tag != 1 || string(p.Payload) != "fwd" {
			t.Fatalf("earlier-opened endpoint received %+v", p)
		}
		if err := later.Send(&wire.Packet{Kind: wire.PktCtrl, Src: 1, Dst: 0, Tag: 2, Payload: []byte("rev")}); err != nil {
			t.Fatalf("send toward the later-opened endpoint: %v", err)
		}
		if p := recvOne(t, first); p.Tag != 2 || string(p.Payload) != "rev" {
			t.Fatalf("later-opened endpoint received %+v", p)
		}
	})

	t.Run("SelfLoopback", func(t *testing.T) {
		f := open(t, 2)
		defer f.Close()
		ep := mustEp(t, f, 0)
		ep.Send(&wire.Packet{Kind: wire.PktCtrl, Src: 0, Dst: 0, Tag: 9, Payload: []byte("self")})
		p := recvOne(t, ep)
		if p.Tag != 9 || string(p.Payload) != "self" {
			t.Fatalf("loopback mutated: %+v", p)
		}
	})

	t.Run("ReleaseRecycles", func(t *testing.T) {
		// The inbound-buffer ownership rule (docs/FABRIC.md): packets a
		// backend delivers may be handed back through
		// fabric.ReleasePacket once the consumer has copied what it
		// needs, and the recycled buffers must never leak one packet's
		// bytes into another. A backend that aliases delivered payloads
		// with its own internal state, or double-delivers a released
		// struct, corrupts the patterned payloads here.
		f := open(t, 2)
		defer f.Close()
		src, dst := mustEp(t, f, 0), mustEp(t, f, 1)
		sizes := []int{0, 1, 64, 512, 4 << 10, 60 << 10}
		for round := 0; round < 40; round++ {
			size := sizes[round%len(sizes)]
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i*3 + round)
			}
			if err := src.Send(&wire.Packet{
				Kind: wire.PktEager, Src: 0, Dst: 1, Tag: round,
				Seq: uint64(round + 1), Payload: payload,
			}); err != nil {
				t.Fatalf("send round %d: %v", round, err)
			}
			got := recvOne(t, dst)
			if got.Tag != round || got.Seq != uint64(round+1) {
				t.Fatalf("round %d: header mutated: %+v", round, got)
			}
			if !bytes.Equal(got.Payload, payload) {
				t.Fatalf("round %d: payload corrupted (recycled buffer reused while aliased?)", round)
			}
			// Hand the buffers back; the next rounds must still arrive
			// intact even though they may reuse this round's memory.
			fabric.ReleasePacket(got)
		}
	})

	t.Run("PendingAndPoll", func(t *testing.T) {
		f := open(t, 2)
		defer f.Close()
		src, dst := mustEp(t, f, 0), mustEp(t, f, 1)
		if dst.Pending() {
			t.Fatal("fresh endpoint reports pending traffic")
		}
		if p := dst.Poll(); p != nil {
			t.Fatalf("fresh endpoint polled %+v", p)
		}
		src.Send(&wire.Packet{Kind: wire.PktEager, Src: 0, Dst: 1, Payload: []byte("x")})
		deadline := time.Now().Add(recvDeadline)
		for !dst.Pending() {
			if time.Now().After(deadline) {
				t.Fatal("Pending never became true after a send")
			}
			time.Sleep(50 * time.Microsecond)
		}
		if p := recvOne(t, dst); string(p.Payload) != "x" {
			t.Fatalf("poll returned %+v", p)
		}
	})

	t.Run("PollBatchDrains", func(t *testing.T) {
		// PollBatch must behave exactly like a loop of Poll: the same
		// packets, split across calls at whatever capacity the caller
		// offers (here 3, deliberately smaller than the traffic), with a
		// zero-capacity buffer a harmless no-op. Completeness is what
		// this case pins; ordering under concurrent senders is
		// RunBatchOrdering's.
		f := open(t, 2)
		defer f.Close()
		src, dst := mustEp(t, f, 0), mustEp(t, f, 1)
		const n = 7
		for i := 1; i <= n; i++ {
			if err := src.Send(&wire.Packet{
				Kind: wire.PktEager, Src: 0, Dst: 1, Tag: i,
				Seq: uint64(i), Payload: []byte{byte(i)},
			}); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		var got []*wire.Packet
		batch := make([]*wire.Packet, 3)
		deadline := time.Now().Add(recvDeadline)
		for len(got) < n {
			if k := dst.PollBatch(batch); k > 0 {
				got = append(got, batch[:k]...)
				continue
			}
			if time.Now().After(deadline) {
				t.Fatalf("PollBatch drained %d of %d frames within the suite deadline", len(got), n)
			}
			time.Sleep(50 * time.Microsecond)
		}
		seen := make(map[uint64]bool, n)
		for _, p := range got {
			if p.Seq < 1 || p.Seq > n || seen[p.Seq] {
				t.Fatalf("PollBatch run lost or duplicated frames: seq %d", p.Seq)
			}
			seen[p.Seq] = true
			fabric.ReleasePacket(p)
		}
		if k := dst.PollBatch(batch[:0]); k != 0 {
			t.Errorf("PollBatch into an empty buffer returned %d", k)
		}
	})

	t.Run("BlockingRecvTimeout", func(t *testing.T) {
		f := open(t, 2)
		defer f.Close()
		ep := mustEp(t, f, 1)
		start := time.Now()
		if p := ep.BlockingRecv(30 * time.Millisecond); p != nil {
			t.Fatalf("idle BlockingRecv returned %+v", p)
		}
		if d := time.Since(start); d < 20*time.Millisecond {
			t.Fatalf("BlockingRecv returned after %v, before its timeout", d)
		}
	})

	t.Run("BlockingRecvWakes", func(t *testing.T) {
		f := open(t, 2)
		defer f.Close()
		src, dst := mustEp(t, f, 0), mustEp(t, f, 1)
		got := make(chan *wire.Packet, 1)
		go func() { got <- dst.BlockingRecv(recvDeadline) }()
		time.Sleep(10 * time.Millisecond)
		src.Send(&wire.Packet{Kind: wire.PktEager, Src: 0, Dst: 1, Payload: []byte("wake")})
		select {
		case p := <-got:
			if p == nil || string(p.Payload) != "wake" {
				t.Fatalf("blocked receiver woke with %+v", p)
			}
		case <-time.After(recvDeadline):
			t.Fatal("blocked receiver never woke on a send")
		}
	})

	t.Run("NextSeqUnique", func(t *testing.T) {
		f := open(t, 2)
		defer f.Close()
		ep := mustEp(t, f, 0)
		seen := make(map[uint64]bool)
		for i := 0; i < 1000; i++ {
			s := ep.NextSeq()
			if seen[s] {
				t.Fatalf("NextSeq repeated %d", s)
			}
			seen[s] = true
		}
	})

	t.Run("CloseSemantics", func(t *testing.T) {
		f := open(t, 2)
		ep := mustEp(t, f, 1)
		woke := make(chan *wire.Packet, 1)
		go func() { woke <- ep.BlockingRecv(recvDeadline) }()
		time.Sleep(10 * time.Millisecond)
		if err := ep.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		select {
		case p := <-woke:
			if p != nil {
				t.Fatalf("receiver woke from Close with a packet: %+v", p)
			}
		case <-time.After(recvDeadline):
			t.Fatal("Close did not wake the blocked receiver")
		}
		if err := ep.Send(&wire.Packet{Kind: wire.PktEager, Src: 1, Dst: 0}); err == nil {
			t.Error("Send after Close did not error")
		}
		if err := ep.Close(); err != nil {
			t.Errorf("second Close errored: %v", err)
		}
		f.Close()
	})
}

// OpenWorld builds a fresh 2-node engine world over the backend under
// test. The suite closes it.
type OpenWorld func(t *testing.T) *mpi.World

// RunWorld runs the full-stack protocol suite against worlds from open.
func RunWorld(t *testing.T, open OpenWorld) {
	t.Run("EagerExchange", func(t *testing.T) {
		w := open(t)
		defer closeWorld(t, w)
		msg := patterned(1 << 10) // well under every rail's threshold
		w.RunAll(func(p *mpi.Proc) {
			if p.Rank() == 0 {
				p.Send(1, 7, msg)
				buf := make([]byte, len(msg))
				n, from := p.Recv(1, 8, buf)
				if n != len(msg) || from != 1 || !bytes.Equal(buf, msg) {
					t.Errorf("echo mutated: n=%d from=%d", n, from)
				}
			} else {
				buf := make([]byte, len(msg))
				p.Recv(0, 7, buf)
				p.Send(0, 8, buf)
			}
		})
	})

	t.Run("RendezvousExchange", func(t *testing.T) {
		w := open(t)
		defer closeWorld(t, w)
		msg := patterned(256 << 10) // above every rail's eager threshold
		w.RunAll(func(p *mpi.Proc) {
			if p.Rank() == 0 {
				r := p.Isend(1, 7, msg)
				if !r.Rendezvous() {
					t.Errorf("256 KiB send did not pick the rendezvous protocol")
				}
				p.WaitSend(r)
				buf := make([]byte, len(msg))
				p.Recv(1, 8, buf)
				if !bytes.Equal(buf, msg) {
					t.Errorf("rendezvous echo corrupted")
				}
			} else {
				buf := make([]byte, len(msg))
				p.Recv(0, 7, buf)
				p.Send(0, 8, buf)
			}
		})
	})

	t.Run("PostedOrderMatching", func(t *testing.T) {
		// Same (src, tag) messages of mixed protocols must match posted
		// receives in send order, even when the transport interleaves —
		// this is the engine's seq-reordering guarantee riding on the
		// fabric's weaker contract.
		w := open(t)
		defer closeWorld(t, w)
		sizes := []int{100, 200 << 10, 1000, 64 << 10, 50} // eager, rdv, eager, rdv, eager
		w.RunAll(func(p *mpi.Proc) {
			const tag = 3
			if p.Rank() == 0 {
				for i, n := range sizes {
					p.Send(1, tag, patternedAt(n, byte(i)))
				}
			} else {
				for i, n := range sizes {
					buf := make([]byte, n)
					got, _ := p.Recv(0, tag, buf)
					if got != n {
						t.Errorf("message %d: %d bytes, want %d", i, got, n)
						continue
					}
					if !bytes.Equal(buf, patternedAt(n, byte(i))) {
						t.Errorf("message %d (%d B) out of order or corrupted", i, n)
					}
				}
			}
		})
	})

	t.Run("RdvCorrelation", func(t *testing.T) {
		// Concurrent rendezvous in both directions: each RTS/CTS/Data
		// triple must stay correlated by message id, or payloads land in
		// the wrong buffers.
		w := open(t)
		defer closeWorld(t, w)
		const flows = 4
		size := 96 << 10
		w.RunAll(func(p *mpi.Proc) {
			peer := 1 - p.Rank()
			sends := make([]*core.SendReq, 0, flows)
			recvs := make([]*core.RecvReq, 0, flows)
			bufs := make([][]byte, flows)
			for i := 0; i < flows; i++ {
				sends = append(sends, p.Isend(peer, 100+i, patternedAt(size+i, byte(0x40+i))))
			}
			for i := 0; i < flows; i++ {
				bufs[i] = make([]byte, size+i)
				recvs = append(recvs, p.Irecv(peer, 100+i, bufs[i]))
			}
			for _, r := range sends {
				p.WaitSend(r)
			}
			for i, r := range recvs {
				p.WaitRecv(r)
				if !bytes.Equal(bufs[i], patternedAt(size+i, byte(0x40+i))) {
					t.Errorf("rank %d flow %d: payload crossed rendezvous streams", p.Rank(), i)
				}
			}
		})
	})

	t.Run("AnySource", func(t *testing.T) {
		w := open(t)
		defer closeWorld(t, w)
		const msgs = 5
		w.RunAll(func(p *mpi.Proc) {
			if p.Rank() == 0 {
				seen := 0
				for i := 0; i < msgs; i++ {
					buf := make([]byte, 8)
					n, from := p.Recv(core.AnySource, 11, buf)
					if from != 1 || n != 8 {
						t.Errorf("any-source recv: n=%d from=%d", n, from)
					}
					seen++
				}
				if seen != msgs {
					t.Errorf("matched %d any-source messages, want %d", seen, msgs)
				}
			} else {
				for i := 0; i < msgs; i++ {
					p.Send(0, 11, []byte(fmt.Sprintf("msg%05d", i))) // exactly 8 bytes
				}
			}
		})
	})

	t.Run("Shutdown", func(t *testing.T) {
		w := open(t)
		w.RunAll(func(p *mpi.Proc) {
			p.Barrier()
		})
		closeWorld(t, w)
	})
}

// RunBatchOrdering runs the batched-receive ordering case against the
// backend: two concurrent senders flood one receiver with 64-byte
// frames — the storm regime batching exists for — while the receiver
// drains exclusively through PollBatch, and every frame must arrive
// exactly once across batch boundaries. strictFIFO additionally asserts
// each sender's stream arrives in exact send order; pass it for
// backends whose Poll delivers per-sender FIFO (tcpfab's one stream per
// peer, shmfab's SPSC rings), where the PollBatch contract obliges the
// batched path to preserve it. The simulator runs with strictFIFO
// false: its fragmenting wire legally reorders even same-size small
// packets (a frame sent the instant the link goes idle skips the
// fragment slot its predecessor paid), which is exactly the portable
// contract's "receivers reorder by sequence number" — exactly-once is
// still pinned.
func RunBatchOrdering(t *testing.T, open OpenFabric, strictFIFO bool) {
	t.Run("BatchOrdering", func(t *testing.T) {
		f := open(t, 3)
		defer f.Close()
		receiver := mustEp(t, f, 1)
		const perSender = 400
		senders := []int{0, 2}
		var wg sync.WaitGroup
		for _, rank := range senders {
			src := mustEp(t, f, rank)
			wg.Add(1)
			go func(src fabric.Endpoint, rank int) {
				defer wg.Done()
				for i := 1; i <= perSender; i++ {
					if err := src.Send(&wire.Packet{
						Kind: wire.PktEager, Src: rank, Dst: 1, Tag: rank,
						Seq:     uint64(i),
						Payload: bytes.Repeat([]byte{byte(rank + 1)}, 64),
					}); err != nil {
						t.Errorf("rank %d send %d: %v", rank, i, err)
						return
					}
				}
			}(src, rank)
		}
		defer wg.Wait()
		lastSeq := make(map[int]uint64, len(senders))
		seen := map[int]map[uint64]bool{0: make(map[uint64]bool, perSender), 2: make(map[uint64]bool, perSender)}
		total := 0
		batch := make([]*wire.Packet, 32)
		deadline := time.Now().Add(recvDeadline)
		for total < perSender*len(senders) {
			n := receiver.PollBatch(batch)
			if n == 0 {
				if time.Now().After(deadline) {
					t.Fatalf("received %d of %d frames within the suite deadline", total, perSender*len(senders))
				}
				time.Sleep(20 * time.Microsecond)
				continue
			}
			for _, p := range batch[:n] {
				if p.Src != 0 && p.Src != 2 {
					t.Fatalf("frame from unknown sender %d", p.Src)
				}
				if p.Seq < 1 || p.Seq > perSender || seen[p.Src][p.Seq] {
					t.Fatalf("sender %d: seq %d delivered twice (or never sent)", p.Src, p.Seq)
				}
				seen[p.Src][p.Seq] = true
				if strictFIFO && p.Seq != lastSeq[p.Src]+1 {
					t.Fatalf("sender %d: seq %d after %d — batched drain broke per-sender FIFO",
						p.Src, p.Seq, lastSeq[p.Src])
				}
				if len(p.Payload) != 64 || p.Payload[0] != byte(p.Src+1) {
					t.Fatalf("sender %d seq %d: payload corrupted", p.Src, p.Seq)
				}
				lastSeq[p.Src] = p.Seq
				total++
				fabric.ReleasePacket(p)
			}
		}
		for _, rank := range senders {
			if len(seen[rank]) != perSender {
				t.Errorf("sender %d: %d frames delivered, want %d", rank, len(seen[rank]), perSender)
			}
		}
	})
}

// failoverParams builds the rail parameters the failover and telemetry
// cases bond. The MTU stays within every backend's payload ceiling —
// udpfab frames must fit one UDP datagram, which caps payloads just
// short of 64 KiB.
func failoverParams(name string) nic.Params {
	return nic.Params{
		Name:         name,
		Link:         wire.MYRI10G(),
		EagerMax:     32 << 10,
		MTU:          32 << 10,
		StripeWeight: 1,
	}
}

// runFailover drives one rail-failure scenario: a two-rank world bonded
// over two rails of the backend under test, the secondary wrapped in a
// Chaos with the given drop rate. The multirail strategy stripes the
// rendezvous payload across both rails; the engine must observe the
// chaotic rail's loss counter move, re-stripe the lost spans onto the
// surviving rail, and complete the transfer intact — with the loss left
// visible in LostFrames.
func runFailover(t *testing.T, open OpenFabric, drop float64, seed int64, msgBytes int) {
	good := open(t, 2)
	lossy := NewChaos(open(t, 2), ChaosConfig{Seed: seed, Drop: drop})
	w := mpi.NewWorld(mpi.Config{
		Nodes:          2,
		Machine:        topo.Machine{Sockets: 1, CoresPerSocket: 2},
		Mode:           core.Multithreaded,
		OffloadEager:   true,
		EnableBlocking: true,
		Strategy:       "multirail",
		MultirailMin:   64 << 10,
		MX:             failoverParams("railA"),
		ExtraRails:     []nic.Params{failoverParams("railB")},
		Fabrics:        map[string]fabric.Fabric{"railA": good, "railB": lossy},
	})
	defer closeWorld(t, w)
	msg := patterned(msgBytes)
	w.RunAll(func(p *mpi.Proc) {
		if p.Rank() == 0 {
			r := p.Isend(1, 5, msg)
			if !r.Rendezvous() {
				t.Errorf("%d KiB send did not pick the rendezvous protocol", msgBytes>>10)
			}
			p.WaitSend(r)
			var ack [1]byte
			p.Recv(1, 6, ack[:])
		} else {
			buf := make([]byte, len(msg))
			if n, _ := p.Recv(0, 5, buf); n != len(msg) || !bytes.Equal(buf, msg) {
				t.Errorf("rendezvous over the surviving rail corrupted (n=%d)", n)
			}
			p.Send(0, 6, []byte{1})
		}
	})
	ep0, err := lossy.Endpoint(0)
	if err != nil {
		t.Fatalf("lossy endpoint: %v", err)
	}
	if ep0.(fabric.LossCounter).LostFrames() == 0 {
		t.Error("chaotic rail counted no lost frames: striping never dropped a chunk on it")
	}
}

// RunRailFailover runs the rail-failure cases against the backend. The
// total-loss case is the original harness: the secondary rail drops
// every frame it accepts (Chaos with Drop=1, the old Lossy), so the
// engine must re-stripe everything onto the survivor. The partial-loss
// case is harsher in a different way: at Drop=0.5 roughly half the
// secondary's chunks do land, so the receiver ends up holding spans
// from the chaotic rail interleaved with the survivor's re-striped
// copies of the lost ones — completion proves the engine's reassembly
// tolerates partially-delivered spans rather than merely switching
// rails wholesale.
func RunRailFailover(t *testing.T, open OpenFabric) {
	t.Run("RailFailover", func(t *testing.T) {
		runFailover(t, open, 1, 0, 256<<10)
	})
	t.Run("RailFailoverPartialLoss", func(t *testing.T) {
		// The fixed seed keeps the drop pattern replayable; with eight
		// 32 KiB chunks headed for the chaotic rail, this seed's draw
		// sequence drops some and passes others.
		runFailover(t, open, 0.5, 1, 512<<10)
	})
}

// RunTelemetrySnapshot runs the observability case against the backend:
// the RailFailover scenario (bonded rails, the secondary wrapped in a
// drop-everything Chaos) with a telemetry registry attached to the world,
// asserting the
// rail failure is visible in a registry snapshot — the lossy rail's
// "node0.rail.railB.lost_frames" series must be nonzero the moment the
// transfer completes. The lost_frames metric is registered as a live
// read of the transport's loss counter, not a copy updated on some
// export cadence, so the snapshot cannot lag the failure by more than
// the progress tick that detected it. The case also pins the naming
// scheme end to end: engine, rail and per-peer series all present under
// their documented names for a real bonded world.
func RunTelemetrySnapshot(t *testing.T, open OpenFabric) {
	t.Run("TelemetrySnapshot", func(t *testing.T) {
		good := open(t, 2)
		lossy := NewChaos(open(t, 2), ChaosConfig{Drop: 1})
		reg := telemetry.NewRegistry()
		w := mpi.NewWorld(mpi.Config{
			Nodes:          2,
			Machine:        topo.Machine{Sockets: 1, CoresPerSocket: 2},
			Mode:           core.Multithreaded,
			OffloadEager:   true,
			EnableBlocking: true,
			Strategy:       "multirail",
			MultirailMin:   64 << 10,
			MX:             failoverParams("railA"),
			ExtraRails:     []nic.Params{failoverParams("railB")},
			Fabrics:        map[string]fabric.Fabric{"railA": good, "railB": lossy},
			Metrics:        reg,
		})
		defer closeWorld(t, w)
		msg := patterned(256 << 10)
		w.RunAll(func(p *mpi.Proc) {
			if p.Rank() == 0 {
				p.Send(1, 5, msg)
				var ack [1]byte
				p.Recv(1, 6, ack[:])
			} else {
				buf := make([]byte, len(msg))
				if n, _ := p.Recv(0, 5, buf); n != len(msg) || !bytes.Equal(buf, msg) {
					t.Errorf("rendezvous over the surviving rail corrupted (n=%d)", n)
				}
				p.Send(0, 6, []byte{1})
			}
		})
		snap := reg.Snapshot()
		if lost := snap.Value("node0.rail.railB.lost_frames"); lost == 0 {
			t.Error("rail failure invisible in snapshot: node0.rail.railB.lost_frames is 0")
		}
		if sent := snap.Value("node0.rail.railA.data_sent"); sent == 0 {
			t.Error("surviving rail shows no rendezvous data in snapshot")
		}
		if rdv := snap.Value("node0.engine.rdv_started"); rdv == 0 {
			t.Error("engine rendezvous counter missing from snapshot")
		}
		if got := snap.Value("node1.peer.0.recv_frames"); got == 0 {
			t.Error("per-peer receive counter missing from snapshot")
		}
		if hs := snap.Get("node0.engine.rdv_rts_to_cts_ns"); hs == nil || hs.Hist.Count == 0 {
			t.Error("rendezvous handshake-latency histogram recorded nothing")
		}
	})
}

// closeWorld guards against a Close that hangs on transport teardown.
func closeWorld(t *testing.T, w *mpi.World) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		w.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(recvDeadline):
		t.Fatal("World.Close did not return: shutdown wedged")
	}
}

// mustEp unwraps Endpoint for rank.
func mustEp(t *testing.T, f fabric.Fabric, rank int) fabric.Endpoint {
	t.Helper()
	ep, err := f.Endpoint(rank)
	if err != nil {
		t.Fatalf("Endpoint(%d): %v", rank, err)
	}
	return ep
}

// recvOne waits for one packet, polling and blocking alternately so both
// reception paths see traffic.
func recvOne(t *testing.T, ep fabric.Endpoint) *wire.Packet {
	t.Helper()
	deadline := time.Now().Add(recvDeadline)
	for {
		if p := ep.Poll(); p != nil {
			return p
		}
		if p := ep.BlockingRecv(5 * time.Millisecond); p != nil {
			return p
		}
		if time.Now().After(deadline) {
			t.Fatal("no packet arrived within the suite deadline")
		}
	}
}

// patterned returns n bytes of position-derived filler.
func patterned(n int) []byte { return patternedAt(n, 0) }

// patternedAt returns n bytes whose contents depend on both position and
// salt, so cross-delivered buffers never compare equal.
func patternedAt(n int, salt byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*3 + salt
	}
	return b
}
