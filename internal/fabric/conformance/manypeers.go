package conformance

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/wire"
)

// manyPeersFrames is the per-direction frame count each hub↔spoke pair
// exchanges in RunManyPeers: enough traffic that every stream carries
// real interleaved load, small enough that N=64+ stays fast under -race.
const manyPeersFrames = 24

// RunManyPeers is the C10K shape gate: one hub endpoint exchanges
// traffic with N spoke endpoints inside one process, asserting
// exactly-once delivery in both directions, per-sender FIFO when
// strictFIFO is set (stream transports), and — the point of the suite —
// that servicing N peers costs a bounded number of goroutines, not
// O(peers) of them. budget caps the runtime.NumGoroutine growth while
// all endpoints are open and connected; after Close the count must
// settle back to the baseline, so a backend that leaks pollers (or any
// per-connection goroutine) on Close fails here too.
func RunManyPeers(t *testing.T, open OpenFabric, peers int, strictFIFO bool, budget int) {
	t.Run("ManyPeers", func(t *testing.T) {
		runtime.GC()
		base := runtime.NumGoroutine()
		f := open(t, peers+1)
		defer f.Close()
		hub := mustEp(t, f, 0)

		errs := make(chan error, peers+1)
		var wg sync.WaitGroup
		for r := 1; r <= peers; r++ {
			ep := mustEp(t, f, r)
			wg.Add(1)
			go func(rank int, ep fabric.Endpoint) {
				defer wg.Done()
				errs <- runSpoke(ep, rank, strictFIFO)
			}(r, ep)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- runHub(hub, peers, strictFIFO)
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}

		// Steady state: every endpoint open, every stream established,
		// test goroutines joined. This is where a goroutine-per-
		// connection design shows ~2×peers growth and an event-driven
		// one stays flat.
		grew := settleGoroutines(base+budget, 5*time.Second) - base
		if grew > budget {
			t.Errorf("goroutine growth %d with %d peers connected exceeds budget %d (per-connection goroutines?)", grew, peers, budget)
		}

		if err := f.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// Close must release every servicing goroutine: pollers, accept
		// loops, redialers. A few unrelated runtime goroutines may spin
		// up during the test, hence the small slack.
		const closeSlack = 4
		left := settleGoroutines(base+closeSlack, 10*time.Second) - base
		if left > closeSlack {
			t.Errorf("goroutine count %d above baseline %d after Close: endpoint leaks servicing goroutines", left+base, base)
		}
	})
}

// runSpoke sends its frames to the hub, then verifies the hub's frames
// back: exactly once, ascending Seq when strict.
func runSpoke(ep fabric.Endpoint, rank int, strict bool) error {
	for i := 1; i <= manyPeersFrames; i++ {
		p := &wire.Packet{
			Kind: wire.PktEager, Src: rank, Dst: 0, Tag: rank,
			Seq: uint64(i), Payload: patternedAt(64+i, byte(rank)),
		}
		if err := ep.Send(p); err != nil {
			return fmt.Errorf("spoke %d send %d: %w", rank, i, err)
		}
	}
	seen := make(map[uint64]bool, manyPeersFrames)
	next := uint64(1)
	for len(seen) < manyPeersFrames {
		p, err := recvErr(ep)
		if err != nil {
			return fmt.Errorf("spoke %d after %d frames: %w", rank, len(seen), err)
		}
		if p.Seq < 1 || p.Seq > manyPeersFrames || seen[p.Seq] {
			return fmt.Errorf("spoke %d received seq %d twice or out of range", rank, p.Seq)
		}
		if strict && p.Seq != next {
			return fmt.Errorf("spoke %d received seq %d, want %d (FIFO violated)", rank, p.Seq, next)
		}
		seen[p.Seq] = true
		next++
		fabric.ReleasePacket(p)
	}
	return nil
}

// runHub sends each spoke its frames round-robin — so all streams carry
// interleaved traffic at once — and verifies every spoke's frames back.
func runHub(hub fabric.Endpoint, peers int, strict bool) error {
	for i := 1; i <= manyPeersFrames; i++ {
		for r := 1; r <= peers; r++ {
			p := &wire.Packet{
				Kind: wire.PktEager, Src: 0, Dst: r, Tag: r,
				Seq: uint64(i), Payload: patternedAt(64+i, byte(r)),
			}
			if err := hub.Send(p); err != nil {
				return fmt.Errorf("hub send %d to spoke %d: %w", i, r, err)
			}
		}
	}
	seen := make([]map[uint64]bool, peers+1)
	next := make([]uint64, peers+1)
	for r := 1; r <= peers; r++ {
		seen[r] = make(map[uint64]bool, manyPeersFrames)
		next[r] = 1
	}
	total := 0
	for total < peers*manyPeersFrames {
		p, err := recvErr(hub)
		if err != nil {
			return fmt.Errorf("hub after %d of %d frames: %w", total, peers*manyPeersFrames, err)
		}
		src := p.Src
		if src < 1 || src > peers {
			return fmt.Errorf("hub received frame from unknown src %d", src)
		}
		if p.Seq < 1 || p.Seq > manyPeersFrames || seen[src][p.Seq] {
			return fmt.Errorf("hub received seq %d from spoke %d twice or out of range", p.Seq, src)
		}
		if strict && p.Seq != next[src] {
			return fmt.Errorf("hub received seq %d from spoke %d, want %d (per-sender FIFO violated)", p.Seq, src, next[src])
		}
		seen[src][p.Seq] = true
		next[src]++
		total++
		fabric.ReleasePacket(p)
	}
	return nil
}

// recvErr is recvOne for worker goroutines: error return instead of
// t.Fatal, which must not be called off the test goroutine.
func recvErr(ep fabric.Endpoint) (*wire.Packet, error) {
	deadline := time.Now().Add(recvDeadline)
	for {
		if p := ep.Poll(); p != nil {
			return p, nil
		}
		if p := ep.BlockingRecv(5 * time.Millisecond); p != nil {
			return p, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("no packet arrived within the suite deadline")
		}
	}
}

// settleGoroutines polls runtime.NumGoroutine until it drops to target
// or the timeout passes, returning the last observation — transient
// goroutines (redialers, handshakes, runtime bookkeeping) get a grace
// window to exit before the caller judges the count.
func settleGoroutines(target int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= target || time.Now().After(deadline) {
			return n
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}
