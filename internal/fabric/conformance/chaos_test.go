package conformance

import (
	"strings"
	"testing"
	"time"

	"pioman/internal/fabric/simfab"
	"pioman/internal/wire"
)

// chaosTrace runs one fixed single-goroutine send schedule through a
// Chaos-wrapped simfab and returns the recorded decision trace.
func chaosTrace(t *testing.T, seed int64) []string {
	t.Helper()
	f := NewChaos(simfab.New(wire.NewFabric(2, wire.MYRI10G())), ChaosConfig{
		Seed:        seed,
		Drop:        0.3,
		Duplicate:   0.2,
		Corrupt:     0.1,
		Reorder:     0.2,
		RecordTrace: true,
	})
	defer f.Close()
	src := mustEp(t, f, 0)
	for i := 1; i <= 200; i++ {
		if err := src.Send(&wire.Packet{
			Kind: wire.PktEager, Src: 0, Dst: 1, Seq: uint64(i),
			Payload: []byte{byte(i), byte(i >> 8)},
		}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Let deferred (reordered) deliveries land before tearing down.
	time.Sleep(20 * time.Millisecond)
	return f.Trace(0)
}

// TestChaosSeededDeterminism is the replay-workflow regression: the same
// seed over the same send schedule must produce the identical
// delivery/drop/duplication/corruption trace, twice — and a different
// seed must not, or the seed is not actually driving the decisions.
func TestChaosSeededDeterminism(t *testing.T) {
	a := chaosTrace(t, 42)
	b := chaosTrace(t, 42)
	if len(a) != 200 {
		t.Fatalf("trace recorded %d decisions for 200 sends", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at send %d:\nrun1 %s\nrun2 %s", i, a[i], b[i])
		}
	}
	// The fault model actually fired: a trace of all-pass decisions
	// would make determinism vacuous.
	joined := strings.Join(a, "\n")
	for _, decision := range []string{"drop=true", "dup=true", "corrupt=true", "reorder=true"} {
		if !strings.Contains(joined, decision) {
			t.Errorf("seed 42 trace never decided %s across 200 sends", decision)
		}
	}
	c := chaosTrace(t, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical traces: the seed is not driving the fault model")
	}
}

// TestLossyIsTotalDropChaos pins the compatibility contract of the old
// harness: NewLossy accepts every frame, delivers none, counts all.
func TestLossyIsTotalDropChaos(t *testing.T) {
	f := NewLossy(simfab.New(wire.NewFabric(2, wire.MYRI10G())))
	defer f.Close()
	src, dst := mustEp(t, f, 0), mustEp(t, f, 1)
	const n = 50
	for i := 1; i <= n; i++ {
		if err := src.Send(&wire.Packet{
			Kind: wire.PktEager, Src: 0, Dst: 1, Seq: uint64(i), Payload: []byte{1},
		}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if p := dst.BlockingRecv(50 * time.Millisecond); p != nil {
		t.Fatalf("drop-everything fabric delivered %+v", p)
	}
	if lost := src.(interface{ LostFrames() uint64 }).LostFrames(); lost != n {
		t.Fatalf("LostFrames = %d, want %d", lost, n)
	}
}
