// Package wire simulates the cluster fabric: nodes connected by
// full-duplex links with configurable one-way latency and bandwidth
// (defaults model the paper's MYRI-10G testbed).
//
// The simulation separates the two resources the paper's trade-offs are
// about:
//
//   - CPU time (copies, PIO, request posting) is charged by busy-waiting on
//     the core that executes the operation — see internal/ptime.
//   - Wire time (propagation + serialization) is charged with timestamps:
//     a packet injected at time t arrives at max(t, linkFree) + latency +
//     size/bandwidth, and the destination only observes it once the wall
//     clock passes that timestamp.
//
// This keeps wire transfers truly asynchronous (they cost no CPU anywhere)
// while submission and reception costs land on whichever core performs
// them, which is exactly the degree of freedom PIOMan exploits.
package wire

import (
	"fmt"
	"sync"
	"time"

	"pioman/internal/sync2"
)

// PacketKind distinguishes protocol traffic on the wire.
type PacketKind uint8

// Packet kinds used by the engine's protocols.
const (
	PktEager PacketKind = iota // eager data (copied through registered buffers)
	PktRTS                     // rendezvous request-to-send handshake
	PktCTS                     // rendezvous clear-to-send acknowledgement
	PktData                    // rendezvous zero-copy payload
	PktCtrl                    // control (barrier, shutdown, tests)
	PktAggr                    // aggregated eager packs (optimizer strategy)
	PktDataAck                 // rendezvous data acknowledgement (self-healing replay)
	PktPing                    // rail health probe (probation liveness check)
	PktPong                    // rail health probe response
)

// String implements fmt.Stringer.
func (k PacketKind) String() string {
	switch k {
	case PktEager:
		return "eager"
	case PktRTS:
		return "rts"
	case PktCTS:
		return "cts"
	case PktData:
		return "data"
	case PktCtrl:
		return "ctrl"
	case PktAggr:
		return "aggr"
	case PktDataAck:
		return "dack"
	case PktPing:
		return "ping"
	case PktPong:
		return "pong"
	}
	return fmt.Sprintf("pkt(%d)", uint8(k))
}

// Packet is one unit of traffic. Payload is owned by the receiver once
// delivered; senders must not reuse the slice after Send.
type Packet struct {
	Kind    PacketKind
	Src     int // source node id
	Dst     int // destination node id
	Tag     int // communication tag (matching)
	Seq     uint64
	MsgID   uint64 // correlates RTS/CTS/Data of one rendezvous
	Offset  int    // byte offset of a rendezvous data chunk (multirail)
	Payload []byte
	// WireLen is the size charged to the link; for RTS/CTS it is a small
	// header even though Payload may be nil.
	WireLen int
	// Pooled marks Payload as borrowed from the fabric buffer pool
	// (internal/fabric/bufpool). It is local bookkeeping, never encoded
	// on the wire: a transport that decodes an inbound frame into a
	// pooled buffer sets it, and the consumer that is done with the
	// packet hands buffer and struct back through fabric.ReleasePacket.
	// Packets left unreleased are simply reclaimed by the GC.
	Pooled bool
	// arriveAt is when the packet becomes visible at the destination.
	arriveAt time.Time
}

// ArriveAt exposes the modeled arrival time (for tests and tracing).
func (p *Packet) ArriveAt() time.Time { return p.arriveAt }

// LinkParams describes one direction of a point-to-point link.
type LinkParams struct {
	// Latency is the one-way propagation + NIC traversal delay.
	Latency time.Duration
	// BytesPerUS is serialization bandwidth (1250 B/µs = 1.25 GB/s).
	BytesPerUS float64
	// FragBytes is the wire fragmentation granularity. Packets no larger
	// than FragBytes interleave with an in-flight bulk transfer (they
	// wait at most one fragment slot instead of the whole transfer),
	// which is how Myrinet keeps a rendezvous handshake reactive while a
	// previous message's data is still on the wire. Packets larger than
	// FragBytes serialize FIFO behind the link's horizon. Zero selects
	// the 8 KiB default.
	FragBytes int
	// PacketGap is the fixed per-packet wire/NIC processing overhead
	// added to each packet's link occupancy: it bounds the small-message
	// packet rate of the rail independent of bandwidth. Zero means none.
	PacketGap time.Duration
}

// DefaultFragBytes is the fragmentation granularity when unset.
const DefaultFragBytes = 8 << 10

// MYRI10G returns the testbed link model: 1.5 µs one-way, 1.25 GB/s,
// 0.5 µs per-packet overhead (≈2M packets/s).
func MYRI10G() LinkParams {
	return LinkParams{
		Latency:    1500 * time.Nanosecond,
		BytesPerUS: 1250,
		FragBytes:  DefaultFragBytes,
		PacketGap:  500 * time.Nanosecond,
	}
}

// fragBytes returns the effective fragmentation granularity.
func (lp LinkParams) fragBytes() int {
	if lp.FragBytes <= 0 {
		return DefaultFragBytes
	}
	return lp.FragBytes
}

// FragSlot is the serialization time of one fragment — the worst-case
// queueing delay of an interleaved small packet.
func (lp LinkParams) FragSlot() time.Duration {
	return lp.SerializeCost(lp.fragBytes())
}

// SerializeCost returns the time n bytes occupy the link.
func (lp LinkParams) SerializeCost(n int) time.Duration {
	if n <= 0 || lp.BytesPerUS <= 0 {
		return 0
	}
	return time.Duration(float64(n) / lp.BytesPerUS * float64(time.Microsecond))
}

// link is one directed link with a serialization horizon.
type link struct {
	params LinkParams
	mu     sync2.SpinLock
	free   time.Time // next instant the link can begin serializing
}

// inbox is the arrival queue of one node: a time-ordered list protected by
// a spinlock plus a notification channel for blocking receivers. The
// head index (rather than re-slicing pkts[1:]) keeps the backing
// array's capacity across push/pop cycles, so steady traffic recycles
// one array instead of reallocating per packet.
type inbox struct {
	mu      sync2.SpinLock
	pkts    []*Packet // kept sorted by arriveAt (append is nearly sorted)
	head    int
	notify  chan struct{}
	dropped int
}

func newInbox() *inbox {
	return &inbox{notify: make(chan struct{}, 1)}
}

func (ib *inbox) push(p *Packet) {
	ib.mu.Lock()
	ib.pkts, ib.head = sync2.CompactQueue(ib.pkts, ib.head)
	// Insertion sort from the back: arrivals are almost always appended in
	// order because links serialize, so this is O(1) amortized.
	i := len(ib.pkts)
	ib.pkts = append(ib.pkts, p)
	for i > ib.head && ib.pkts[i-1].arriveAt.After(p.arriveAt) {
		ib.pkts[i] = ib.pkts[i-1]
		i--
	}
	ib.pkts[i] = p
	ib.mu.Unlock()
	select {
	case ib.notify <- struct{}{}:
	default:
	}
}

// pop returns the earliest packet whose arrival time has passed, or nil.
func (ib *inbox) pop(now time.Time) *Packet {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.head == len(ib.pkts) || ib.pkts[ib.head].arriveAt.After(now) {
		return nil
	}
	p := ib.pkts[ib.head]
	ib.pkts[ib.head] = nil // the receiver owns it now; drop the queue's alias
	ib.head++
	if ib.head == len(ib.pkts) {
		ib.pkts, ib.head = ib.pkts[:0], 0
	}
	return p
}

// popRun pops up to len(into) packets whose arrival time has passed, in
// arrival order, under one lock acquisition — the batched counterpart of
// pop, so a storm of small packets costs one spinlock round trip per run
// instead of per packet.
func (ib *inbox) popRun(now time.Time, into []*Packet) int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	n := 0
	for n < len(into) && ib.head < len(ib.pkts) && !ib.pkts[ib.head].arriveAt.After(now) {
		into[n] = ib.pkts[ib.head]
		ib.pkts[ib.head] = nil // the receiver owns it now; drop the queue's alias
		ib.head++
		n++
	}
	if ib.head == len(ib.pkts) {
		ib.pkts, ib.head = ib.pkts[:0], 0
	}
	return n
}

// earliest returns the arrival time of the next packet and whether one
// exists (regardless of whether it has arrived yet).
func (ib *inbox) earliest() (time.Time, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.head == len(ib.pkts) {
		return time.Time{}, false
	}
	return ib.pkts[ib.head].arriveAt, true
}

// Fabric connects n nodes with a full mesh of directed links.
type Fabric struct {
	n       int
	params  LinkParams
	links   []*link // index src*n+dst
	inboxes []*inbox
	mu      sync.Mutex
	seq     uint64
	closed  bool
}

// NewFabric builds a fabric of n nodes with uniform link parameters.
func NewFabric(n int, params LinkParams) *Fabric {
	if n <= 0 {
		panic("wire: fabric needs at least one node")
	}
	f := &Fabric{n: n, params: params}
	f.links = make([]*link, n*n)
	f.inboxes = make([]*inbox, n)
	for i := range f.links {
		f.links[i] = &link{params: params}
	}
	for i := range f.inboxes {
		f.inboxes[i] = newInbox()
	}
	return f
}

// Nodes returns the number of nodes.
func (f *Fabric) Nodes() int { return f.n }

// Params returns the uniform link parameters.
func (f *Fabric) Params() LinkParams { return f.params }

// NextSeq allocates a fabric-wide unique sequence number.
func (f *Fabric) NextSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	return f.seq
}

// Send injects p into the fabric. The packet becomes visible to the
// destination at max(now, linkFree) + latency + wireLen/bandwidth. Send
// itself returns immediately: serialization occupies the *link*, not the
// calling core. Sending to self is allowed (loopback with zero latency).
func (f *Fabric) Send(p *Packet) {
	if p.Src < 0 || p.Src >= f.n || p.Dst < 0 || p.Dst >= f.n {
		panic(fmt.Sprintf("wire: send %d->%d outside fabric of %d nodes", p.Src, p.Dst, f.n))
	}
	if p.WireLen <= 0 {
		p.WireLen = len(p.Payload)
	}
	now := time.Now()
	if p.Src == p.Dst {
		p.arriveAt = now
		f.inboxes[p.Dst].push(p)
		return
	}
	l := f.links[p.Src*f.n+p.Dst]
	ser := l.params.SerializeCost(p.WireLen)
	l.mu.Lock()
	busy := l.free.After(now)
	start := now
	if busy {
		start = l.free
	}
	l.free = start.Add(ser).Add(l.params.PacketGap)
	l.mu.Unlock()
	if p.WireLen <= l.params.fragBytes() {
		// Small packet: it interleaves at fragment granularity with
		// whatever bulk transfer occupies the link, waiting at most one
		// fragment slot. Wire-level ordering against bulk transfers is
		// therefore NOT preserved — receivers that need ordered delivery
		// must reorder by sequence number, as the engine does.
		delay := time.Duration(0)
		if busy {
			delay = l.params.FragSlot()
		}
		p.arriveAt = now.Add(delay).Add(ser).Add(l.params.Latency)
	} else {
		// Bulk transfer: its last byte lands after the full queue drains.
		p.arriveAt = start.Add(ser).Add(l.params.Latency)
	}
	f.inboxes[p.Dst].push(p)
}

// Poll returns the next packet that has arrived at node dst, or nil if none
// is visible yet. Polling is how PIOMan's active detection works; it costs
// only the caller's time.
func (f *Fabric) Poll(dst int) *Packet {
	return f.inboxes[dst].pop(time.Now())
}

// PollBatch drains up to len(into) arrived packets for node dst in one
// inbox visit, returning how many it wrote — identical to a loop of Poll
// but with one lock round trip per run.
func (f *Fabric) PollBatch(dst int, into []*Packet) int {
	return f.inboxes[dst].popRun(time.Now(), into)
}

// PendingAt reports whether any packet (arrived or in flight) is queued for
// node dst, and the arrival time of the earliest one.
func (f *Fabric) PendingAt(dst int) (time.Time, bool) {
	return f.inboxes[dst].earliest()
}

// LinkBacklog returns how far into the future the src→dst link's
// serialization horizon extends — zero when the link is idle. The engine's
// optimizer uses it to feed the NIC only when it is (nearly) idle, which
// is what lets waiting packs accumulate for the aggregation strategy.
func (f *Fabric) LinkBacklog(src, dst int) time.Duration {
	if src == dst {
		return 0
	}
	l := f.links[src*f.n+dst]
	l.mu.Lock()
	free := l.free
	l.mu.Unlock()
	if d := time.Until(free); d > 0 {
		return d
	}
	return 0
}

// BlockingRecv waits until a packet is available for dst and returns it.
// It models the interrupt-based blocking system call of the paper ([10]):
// the caller sleeps (no core burned) and wakes with timer/scheduler latency
// rather than polling precision. A nil return means the fabric was closed
// or the timeout expired.
func (f *Fabric) BlockingRecv(dst int, timeout time.Duration) *Packet {
	deadline := time.Now().Add(timeout)
	ib := f.inboxes[dst]
	for {
		if p := ib.pop(time.Now()); p != nil {
			return p
		}
		f.mu.Lock()
		closed := f.closed
		f.mu.Unlock()
		if closed {
			return nil
		}
		now := time.Now()
		if !now.Before(deadline) {
			return nil
		}
		// Sleep until the earliest in-flight arrival, a notification, or
		// the timeout, whichever comes first.
		wait := deadline.Sub(now)
		if at, ok := ib.earliest(); ok {
			if d := at.Sub(now); d < wait {
				wait = d
			}
		}
		if wait <= 0 {
			continue
		}
		t := sync2.GetTimer(wait)
		fired := false
		select {
		case <-ib.notify:
		case <-t.C:
			fired = true
		}
		sync2.PutTimer(t, fired)
	}
}

// Close marks the fabric closed and wakes blocking receivers.
func (f *Fabric) Close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	for _, ib := range f.inboxes {
		select {
		case ib.notify <- struct{}{}:
		default:
		}
	}
}
