package wire

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fastLink returns link params with negligible costs so tests that care
// about ordering, not timing, run instantly.
func fastLink() LinkParams {
	return LinkParams{Latency: 0, BytesPerUS: 1e12}
}

func TestSerializeCost(t *testing.T) {
	lp := MYRI10G()
	if got := lp.SerializeCost(1250); got != time.Microsecond {
		t.Fatalf("SerializeCost(1250) = %v, want 1µs", got)
	}
	if lp.SerializeCost(0) != 0 || lp.SerializeCost(-4) != 0 {
		t.Fatal("non-positive sizes must cost nothing")
	}
	if (LinkParams{}).SerializeCost(100) != 0 {
		t.Fatal("zero-bandwidth params must not divide by zero")
	}
}

func TestSendPollRoundtrip(t *testing.T) {
	f := NewFabric(2, fastLink())
	payload := []byte("hello fabric")
	f.Send(&Packet{Kind: PktEager, Src: 0, Dst: 1, Tag: 3, Payload: payload})
	deadline := time.Now().Add(time.Second)
	var p *Packet
	for p == nil && time.Now().Before(deadline) {
		p = f.Poll(1)
	}
	if p == nil {
		t.Fatal("packet never arrived")
	}
	if string(p.Payload) != "hello fabric" || p.Tag != 3 || p.Src != 0 {
		t.Fatalf("wrong packet: %+v", p)
	}
	if f.Poll(1) != nil {
		t.Fatal("second Poll returned a phantom packet")
	}
}

func TestLatencyIsHonored(t *testing.T) {
	lat := 500 * time.Microsecond
	f := NewFabric(2, LinkParams{Latency: lat, BytesPerUS: 1e12})
	start := time.Now()
	f.Send(&Packet{Src: 0, Dst: 1, Payload: []byte{1}})
	if p := f.Poll(1); p != nil {
		t.Fatal("packet visible before latency elapsed")
	}
	var p *Packet
	for p == nil {
		p = f.Poll(1)
		if time.Since(start) > time.Second {
			t.Fatal("packet never arrived")
		}
	}
	if el := time.Since(start); el < lat {
		t.Fatalf("packet observed after %v, want >= %v", el, lat)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1 MB at 1000 B/µs = 1000µs serialization.
	f := NewFabric(2, LinkParams{Latency: 0, BytesPerUS: 1000})
	start := time.Now()
	f.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 1_000_000)})
	var p *Packet
	for p == nil {
		p = f.Poll(1)
		if time.Since(start) > 5*time.Second {
			t.Fatal("packet never arrived")
		}
	}
	if el := time.Since(start); el < time.Millisecond {
		t.Fatalf("1MB arrived after %v, want >= 1ms of serialization", el)
	}
}

func TestLinkSerializationQueues(t *testing.T) {
	// Two 500KB packets back to back on a 1000B/µs link: the second must
	// arrive >= 1ms after the first send (it queues behind the first).
	f := NewFabric(2, LinkParams{Latency: 0, BytesPerUS: 1000})
	f.Send(&Packet{Src: 0, Dst: 1, Seq: 1, Payload: make([]byte, 500_000)})
	f.Send(&Packet{Src: 0, Dst: 1, Seq: 2, Payload: make([]byte, 500_000)})
	at1, ok := f.PendingAt(1)
	if !ok {
		t.Fatal("no pending packet")
	}
	// Drain both and check the second's arrival stamp.
	var p1, p2 *Packet
	deadline := time.Now().Add(5 * time.Second)
	for p2 == nil && time.Now().Before(deadline) {
		p := f.Poll(1)
		if p == nil {
			continue
		}
		if p1 == nil {
			p1 = p
		} else {
			p2 = p
		}
	}
	if p2 == nil {
		t.Fatal("packets never arrived")
	}
	if p1.Seq != 1 || p2.Seq != 2 {
		t.Fatalf("FIFO violated: got %d then %d", p1.Seq, p2.Seq)
	}
	// The second packet queues behind the first: its arrival is one full
	// serialization (500µs) after the first packet's arrival.
	if gap := p2.ArriveAt().Sub(at1); gap < 450*time.Microsecond {
		t.Fatalf("second packet arrival gap %v, want ~500µs (serialization)", gap)
	}
}

func TestPerLinkFIFOProperty(t *testing.T) {
	f := NewFabric(2, fastLink())
	const n = 200
	for i := 1; i <= n; i++ {
		f.Send(&Packet{Src: 0, Dst: 1, Seq: uint64(i), Payload: []byte{byte(i)}})
	}
	last := uint64(0)
	got := 0
	deadline := time.Now().Add(2 * time.Second)
	for got < n && time.Now().Before(deadline) {
		p := f.Poll(1)
		if p == nil {
			continue
		}
		if p.Seq <= last {
			t.Fatalf("per-link FIFO violated: %d after %d", p.Seq, last)
		}
		last = p.Seq
		got++
	}
	if got != n {
		t.Fatalf("received %d/%d packets", got, n)
	}
}

func TestSelfSendLoopback(t *testing.T) {
	f := NewFabric(1, MYRI10G())
	f.Send(&Packet{Src: 0, Dst: 0, Payload: []byte("self")})
	p := f.Poll(0)
	if p == nil || string(p.Payload) != "self" {
		t.Fatalf("loopback failed: %+v", p)
	}
}

func TestSendOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFabric(2, fastLink()).Send(&Packet{Src: 0, Dst: 5})
}

func TestNewFabricZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFabric(0, fastLink())
}

func TestBlockingRecv(t *testing.T) {
	f := NewFabric(2, LinkParams{Latency: 200 * time.Microsecond, BytesPerUS: 1e12})
	go func() {
		time.Sleep(time.Millisecond)
		f.Send(&Packet{Src: 0, Dst: 1, Payload: []byte("wake")})
	}()
	p := f.BlockingRecv(1, 2*time.Second)
	if p == nil || string(p.Payload) != "wake" {
		t.Fatalf("BlockingRecv = %+v", p)
	}
}

func TestBlockingRecvTimeout(t *testing.T) {
	f := NewFabric(2, fastLink())
	start := time.Now()
	if p := f.BlockingRecv(1, 20*time.Millisecond); p != nil {
		t.Fatalf("got phantom packet %+v", p)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("returned after %v, before timeout", el)
	}
}

func TestBlockingRecvClose(t *testing.T) {
	f := NewFabric(2, fastLink())
	done := make(chan *Packet, 1)
	go func() { done <- f.BlockingRecv(1, 10*time.Second) }()
	time.Sleep(5 * time.Millisecond)
	f.Close()
	select {
	case p := <-done:
		if p != nil {
			t.Fatalf("got packet %+v after close", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("BlockingRecv did not wake on Close")
	}
}

func TestBlockingRecvAlreadyArrived(t *testing.T) {
	f := NewFabric(2, fastLink())
	f.Send(&Packet{Src: 0, Dst: 1, Payload: []byte("x")})
	time.Sleep(time.Millisecond)
	start := time.Now()
	if p := f.BlockingRecv(1, time.Second); p == nil {
		t.Fatal("no packet")
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("BlockingRecv on ready packet took %v", el)
	}
}

func TestWireLenDefaultsToPayload(t *testing.T) {
	f := NewFabric(2, fastLink())
	p := &Packet{Src: 0, Dst: 1, Payload: make([]byte, 77)}
	f.Send(p)
	if p.WireLen != 77 {
		t.Fatalf("WireLen = %d, want 77", p.WireLen)
	}
}

func TestHeaderOnlyPacket(t *testing.T) {
	f := NewFabric(2, fastLink())
	f.Send(&Packet{Kind: PktRTS, Src: 0, Dst: 1, WireLen: 32})
	deadline := time.Now().Add(time.Second)
	var p *Packet
	for p == nil && time.Now().Before(deadline) {
		p = f.Poll(1)
	}
	if p == nil || p.Kind != PktRTS {
		t.Fatalf("RTS not delivered: %+v", p)
	}
}

func TestNextSeqUnique(t *testing.T) {
	f := NewFabric(2, fastLink())
	seen := make(map[uint64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := f.NextSeq()
				mu.Lock()
				if seen[s] {
					t.Errorf("duplicate seq %d", s)
				}
				seen[s] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentSendersNoLossNoDup(t *testing.T) {
	const nodes = 4
	const perPair = 100
	f := NewFabric(nodes, fastLink())
	var wg sync.WaitGroup
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			if s == d {
				continue
			}
			wg.Add(1)
			go func(s, d int) {
				defer wg.Done()
				for i := 0; i < perPair; i++ {
					f.Send(&Packet{Src: s, Dst: d, Seq: uint64(i + 1), Payload: []byte{byte(s), byte(i)}})
				}
			}(s, d)
		}
	}
	wg.Wait()
	for d := 0; d < nodes; d++ {
		want := (nodes - 1) * perPair
		got := map[int]int{} // src -> count
		lastSeq := map[int]uint64{}
		deadline := time.Now().Add(5 * time.Second)
		total := 0
		for total < want && time.Now().Before(deadline) {
			p := f.Poll(d)
			if p == nil {
				continue
			}
			got[p.Src]++
			if p.Seq <= lastSeq[p.Src] {
				t.Fatalf("dst %d: out-of-order from src %d: %d after %d", d, p.Src, p.Seq, lastSeq[p.Src])
			}
			lastSeq[p.Src] = p.Seq
			total++
		}
		if total != want {
			t.Fatalf("dst %d received %d/%d", d, total, want)
		}
		for s, c := range got {
			if c != perPair {
				t.Fatalf("dst %d got %d pkts from %d, want %d", d, c, s, perPair)
			}
		}
	}
}

// Property: arrival time never precedes injection + latency + serialization
// of that packet alone; bulk (above-fragment) arrivals are monotone per
// link (small packets may legitimately overtake bulk by design).
func TestArrivalBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lp := LinkParams{Latency: 10 * time.Microsecond, BytesPerUS: 100, FragBytes: 256}
	f := NewFabric(2, lp)
	var prevBulk time.Time
	for i := 0; i < 100; i++ {
		n := rng.Intn(4096) + 1
		before := time.Now()
		p := &Packet{Src: 0, Dst: 1, Payload: make([]byte, n)}
		f.Send(p)
		minArrive := before.Add(lp.Latency).Add(lp.SerializeCost(n))
		if p.ArriveAt().Before(minArrive.Add(-time.Microsecond)) {
			t.Fatalf("packet %d arrives at %v, before physical minimum %v", i, p.ArriveAt(), minArrive)
		}
		if n > lp.FragBytes {
			if p.ArriveAt().Before(prevBulk) {
				t.Fatalf("bulk packet %d arrival precedes previous bulk on same link", i)
			}
			prevBulk = p.ArriveAt()
		}
	}
}

func TestSmallPacketInterleavesPastBulk(t *testing.T) {
	// A 1MB bulk transfer occupies the link for 1s of serialization; a
	// 32-byte control packet sent right after must arrive within one
	// fragment slot + latency, not behind the bulk.
	lp := LinkParams{Latency: 0, BytesPerUS: 1, FragBytes: 1024} // 1 B/µs: 1MB = ~1s
	f := NewFabric(2, lp)
	bulk := &Packet{Kind: PktData, Src: 0, Dst: 1, Payload: make([]byte, 1<<20)}
	f.Send(bulk)
	ctl := &Packet{Kind: PktRTS, Src: 0, Dst: 1, WireLen: 32}
	before := time.Now()
	f.Send(ctl)
	maxArrive := before.Add(lp.FragSlot()).Add(lp.SerializeCost(32)).Add(lp.Latency).Add(time.Millisecond)
	if ctl.ArriveAt().After(maxArrive) {
		t.Fatalf("control packet queued %v behind bulk, want <= one fragment slot (%v)",
			ctl.ArriveAt().Sub(before), lp.FragSlot())
	}
	if !bulk.ArriveAt().After(ctl.ArriveAt()) {
		t.Fatal("bulk should arrive after the interleaved control packet")
	}
}

func TestFragSlotDefaults(t *testing.T) {
	lp := LinkParams{BytesPerUS: 8192} // 8K/µs -> default frag = 1µs slot
	if got := lp.FragSlot(); got != time.Microsecond {
		t.Fatalf("FragSlot = %v, want 1µs", got)
	}
	lp.FragBytes = 4096
	if got := lp.FragSlot(); got != 500*time.Nanosecond {
		t.Fatalf("FragSlot = %v, want 500ns", got)
	}
}

func TestIdleLinkSmallPacketNoFragDelay(t *testing.T) {
	lp := LinkParams{Latency: 0, BytesPerUS: 1000, FragBytes: 8192}
	f := NewFabric(2, lp)
	p := &Packet{Src: 0, Dst: 1, Payload: make([]byte, 100)}
	before := time.Now()
	f.Send(p)
	// Idle link: no fragment queueing, just serialization.
	if d := p.ArriveAt().Sub(before); d > lp.SerializeCost(100)+time.Millisecond {
		t.Fatalf("idle-link small packet delayed %v", d)
	}
}

func TestPendingAtEmpty(t *testing.T) {
	f := NewFabric(2, fastLink())
	if _, ok := f.PendingAt(0); ok {
		t.Fatal("empty inbox reports pending")
	}
}

func TestPacketKindString(t *testing.T) {
	for k, want := range map[PacketKind]string{
		PktEager: "eager", PktRTS: "rts", PktCTS: "cts", PktData: "data", PktCtrl: "ctrl",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if PacketKind(99).String() != "pkt(99)" {
		t.Errorf("unknown kind = %q", PacketKind(99).String())
	}
}
