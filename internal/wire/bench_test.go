package wire

import (
	"testing"
	"time"
)

func BenchmarkSendPollSmall(b *testing.B) {
	f := NewFabric(2, LinkParams{Latency: 0, BytesPerUS: 1e12})
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Send(&Packet{Src: 0, Dst: 1, Payload: payload})
		for f.Poll(1) == nil {
		}
	}
}

func BenchmarkSendPollBulk(b *testing.B) {
	f := NewFabric(2, LinkParams{Latency: 0, BytesPerUS: 1e12})
	payload := make([]byte, 64<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Send(&Packet{Kind: PktData, Src: 0, Dst: 1, Payload: payload})
		for f.Poll(1) == nil {
		}
	}
}

func BenchmarkPollEmpty(b *testing.B) {
	f := NewFabric(2, MYRI10G())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.Poll(1) != nil {
			b.Fatal("phantom packet")
		}
	}
}

func BenchmarkLinkBacklog(b *testing.B) {
	f := NewFabric(2, MYRI10G())
	for i := 0; i < b.N; i++ {
		_ = f.LinkBacklog(0, 1)
	}
}

func BenchmarkSerializeCost(b *testing.B) {
	lp := MYRI10G()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		sink += lp.SerializeCost(i & 0xFFFF)
	}
	_ = sink
}
