//go:build !race

package testenv

// RaceEnabled reports whether the binary was built with the race
// detector. Allocation-regression tests skip themselves under it: the
// detector instruments allocations and synchronization, so alloc counts
// stop meaning anything there.
const RaceEnabled = false
