package exp

import (
	"fmt"
	"sync"
	"time"

	"pioman/internal/core"
	"pioman/internal/mpi"
	"pioman/internal/ptime"
	"pioman/internal/stats"
)

// Table1Config parameterizes the convolution meta-application of §4.3
// (Fig. 7/8): a grid of threads distributed over the cluster nodes, each
// computing its frontier, sending it asynchronously to its neighbors,
// computing its interior, then waiting for its neighbors' frontiers.
type Table1Config struct {
	// Threads is the total thread count across the cluster (4 or 16 in
	// the paper). Must form a 2^k×2^k-ish grid; 4 → 2×2, 16 → 4×4.
	Threads int
	// Nodes is the cluster size (2 in the paper). The grid is split by
	// columns across nodes (Fig. 8).
	Nodes int
	// MsgSize is the frontier exchange size; the paper keeps it below
	// the rendezvous threshold so copy offloading is what's measured.
	MsgSize int
	// FrontierCompute and InteriorCompute are the two compute phases of
	// one iteration (Fig. 7's compute1/compute2).
	FrontierCompute, InteriorCompute time.Duration
	// Warmup and Iters bound the measured loop.
	Warmup, Iters int
}

// DefaultTable1 returns the configuration used by the Table 1
// reproduction. The interior compute scales with the per-thread domain so
// that the 16-thread run works on a 4× larger matrix, as in the paper.
func DefaultTable1(threads int) Table1Config {
	return Table1Config{
		Threads:         threads,
		Nodes:           2,
		MsgSize:         16 << 10,
		FrontierCompute: 40 * time.Microsecond,
		InteriorCompute: 220 * time.Microsecond,
		Warmup:          10,
		Iters:           60,
	}
}

// grid describes the thread layout of Fig. 8.
type grid struct {
	rows, cols int
}

// dims factors n threads into the squarest grid (4→2×2, 16→4×4, 8→2×4).
func dims(n int) grid {
	best := grid{1, n}
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			best = grid{r, n / r}
		}
	}
	return best
}

// place returns thread t's (row, col).
func (g grid) place(t int) (int, int) { return t / g.cols, t % g.cols }

// node maps a column to its owning node, splitting columns evenly.
func (g grid) node(col, nodes int) int {
	per := g.cols / nodes
	if per == 0 {
		per = 1
	}
	n := col / per
	if n >= nodes {
		n = nodes - 1
	}
	return n
}

// neighbors lists the 4-neighborhood thread ids of t.
func (g grid) neighbors(t int) []int {
	r, c := g.place(t)
	var out []int
	if r > 0 {
		out = append(out, (r-1)*g.cols+c)
	}
	if r < g.rows-1 {
		out = append(out, (r+1)*g.cols+c)
	}
	if c > 0 {
		out = append(out, r*g.cols+(c-1))
	}
	if c < g.cols-1 {
		out = append(out, r*g.cols+(c+1))
	}
	return out
}

// pairTag is the unique tag for the directed frontier transfer from thread
// a to thread b.
func pairTag(a, b int) int { return 10_000 + a*1_000 + b }

// Table1Row is one line of Table 1.
type Table1Row struct {
	Threads    int
	NoOffload  time.Duration
	Offload    time.Duration
	SpeedupPct float64
}

// RunTable1Row measures one thread-count configuration in both modes.
func RunTable1Row(cfg Table1Config) Table1Row {
	row := Table1Row{Threads: cfg.Threads}
	row.NoOffload = runConvolution(mpi.DefaultSequential(cfg.Nodes), cfg)
	row.Offload = runConvolution(mpi.DefaultMultithreaded(cfg.Nodes), cfg)
	if row.NoOffload > 0 {
		row.SpeedupPct = 100 * (1 - float64(row.Offload)/float64(row.NoOffload))
	}
	return row
}

// RunTable1 reproduces the full table (4 and 16 threads).
func RunTable1() []Table1Row {
	warm, meas := iters(10, 60)
	var rows []Table1Row
	for _, threads := range []int{4, 16} {
		cfg := DefaultTable1(threads)
		cfg.Warmup, cfg.Iters = warm, meas
		rows = append(rows, RunTable1Row(cfg))
	}
	return rows
}

// RunConvolution executes the meta-application on a fresh world built from
// wc and returns the mean per-iteration time across all threads.
func RunConvolution(wc mpi.Config, cfg Table1Config) time.Duration {
	return runConvolution(wc, cfg)
}

// runConvolution executes the meta-application on a fresh world and
// returns the mean per-iteration time across all threads.
func runConvolution(wc mpi.Config, cfg Table1Config) time.Duration {
	g := dims(cfg.Threads)
	w := mpi.NewWorld(wc)
	defer w.Close()

	var mu sync.Mutex
	perThread := make([]time.Duration, 0, cfg.Threads)

	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		tid := t
		_, col := g.place(tid)
		node := w.Node(g.node(col, cfg.Nodes))
		go func() {
			defer wg.Done()
			node.Run(func(p *mpi.Proc) {
				mean := convolutionThread(p, g, tid, cfg)
				mu.Lock()
				perThread = append(perThread, mean)
				mu.Unlock()
			})
		}()
	}
	wg.Wait()

	var sum time.Duration
	for _, d := range perThread {
		sum += d
	}
	return sum / time.Duration(len(perThread))
}

// convolutionThread is one thread's Fig. 7 loop; it returns the trimmed
// mean of its measured iteration times.
func convolutionThread(p *mpi.Proc, g grid, tid int, cfg Table1Config) time.Duration {
	nbrs := g.neighbors(tid)
	nodeOf := func(t int) int {
		_, c := g.place(t)
		return g.node(c, cfg.Nodes)
	}
	data := make([]byte, cfg.MsgSize)
	bufs := make(map[int][]byte, len(nbrs))
	for _, nb := range nbrs {
		bufs[nb] = make([]byte, cfg.MsgSize)
	}
	sample := stats.NewSample(cfg.Iters)
	for it := 0; it < cfg.Warmup+cfg.Iters; it++ {
		sw := ptime.NewStopwatch()
		// Post receives for the neighbors' frontiers.
		recvs := make([]*core.RecvReq, 0, len(nbrs))
		for _, nb := range nbrs {
			recvs = append(recvs, p.Irecv(nodeOf(nb), pairTag(nb, tid), bufs[nb]))
		}
		// compute1: the frontier.
		p.Compute(cfg.FrontierCompute)
		// Asynchronously send the frontier to every neighbor.
		sends := make([]*core.SendReq, 0, len(nbrs))
		for _, nb := range nbrs {
			sends = append(sends, p.Isend(nodeOf(nb), pairTag(tid, nb), data))
		}
		// compute2: the interior, overlapping the exchange.
		p.Compute(cfg.InteriorCompute)
		for _, s := range sends {
			p.WaitSend(s)
		}
		for _, r := range recvs {
			p.WaitRecv(r)
		}
		if it >= cfg.Warmup {
			sample.Add(sw.Elapsed())
		}
	}
	return sample.TrimmedMean(0.1)
}

// FormatTable1 renders Table 1 rows.
func FormatTable1(rows []Table1Row) string {
	out := fmt.Sprintf("Table 1: impact of the number of threads on communication offloading\n%10s %16s %14s %10s\n",
		"threads", "no-offload(µs)", "offload(µs)", "speedup")
	for _, r := range rows {
		out += fmt.Sprintf("%10d %16.0f %14.0f %9.1f%%\n",
			r.Threads, stats.US(r.NoOffload), stats.US(r.Offload), r.SpeedupPct)
	}
	return out
}
