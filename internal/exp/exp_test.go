package exp

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/ptime"
)

func init() {
	// Keep the harness's own tests fast; the full-resolution sweeps run
	// through bench_test.go and cmd/nmbench.
	Quick = true
}

func TestGridDims(t *testing.T) {
	cases := []struct {
		n, rows, cols int
	}{
		{4, 2, 2}, {16, 4, 4}, {8, 2, 4}, {6, 2, 3}, {1, 1, 1}, {7, 1, 7},
	}
	for _, c := range cases {
		g := dims(c.n)
		if g.rows != c.rows || g.cols != c.cols {
			t.Errorf("dims(%d) = %dx%d, want %dx%d", c.n, g.rows, g.cols, c.rows, c.cols)
		}
	}
}

func TestGridPlaceAndNeighbors(t *testing.T) {
	g := dims(16) // 4x4
	r, c := g.place(6)
	if r != 1 || c != 2 {
		t.Fatalf("place(6) = (%d,%d), want (1,2)", r, c)
	}
	// Corner 0 has 2 neighbors, edge 1 has 3, interior 5 has 4.
	if n := len(g.neighbors(0)); n != 2 {
		t.Errorf("corner neighbors = %d, want 2", n)
	}
	if n := len(g.neighbors(1)); n != 3 {
		t.Errorf("edge neighbors = %d, want 3", n)
	}
	if n := len(g.neighbors(5)); n != 4 {
		t.Errorf("interior neighbors = %d, want 4", n)
	}
	// Neighbor relation is symmetric.
	for tid := 0; tid < 16; tid++ {
		for _, nb := range g.neighbors(tid) {
			found := false
			for _, back := range g.neighbors(nb) {
				if back == tid {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbor relation asymmetric: %d->%d", tid, nb)
			}
		}
	}
}

func TestGridNodeSplit(t *testing.T) {
	g := dims(16) // 4x4, split over 2 nodes by column (Fig. 8)
	for _, tc := range []struct{ col, node int }{{0, 0}, {1, 0}, {2, 1}, {3, 1}} {
		if got := g.node(tc.col, 2); got != tc.node {
			t.Errorf("node(col=%d) = %d, want %d", tc.col, got, tc.node)
		}
	}
	// Degenerate: more nodes than columns must stay in range.
	if got := g.node(0, 64); got != 0 {
		t.Errorf("node(0, 64) = %d", got)
	}
	one := dims(1)
	if got := one.node(0, 2); got < 0 || got >= 2 {
		t.Errorf("1x1 grid node = %d out of range", got)
	}
}

func TestPairTagUnique(t *testing.T) {
	seen := map[int]bool{}
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if a == b {
				continue
			}
			tag := pairTag(a, b)
			if seen[tag] {
				t.Fatalf("pairTag(%d,%d) collides", a, b)
			}
			seen[tag] = true
		}
	}
}

func TestItersQuickFloor(t *testing.T) {
	w, m := iters(20, 200)
	if w < 2 || m < 5 {
		t.Fatalf("quick iters too small: %d/%d", w, m)
	}
	if w > 20 || m > 200 {
		t.Fatalf("quick iters not reduced: %d/%d", w, m)
	}
}

// fullRes runs f at full iteration counts: the shape assertions need the
// steady-state statistics, and a full sweep still takes well under a
// second.
func fullRes(f func()) {
	Quick = false
	defer func() { Quick = true }()
	f()
}

// offloadWins reports whether the PIOMan series beats the baseline summed
// over the sweep, and validates per-point sanity.
func offloadWins(t *testing.T, pts []OverlapPoint) bool {
	t.Helper()
	var seq, off time.Duration
	for _, p := range pts {
		if p.Reference <= 0 || p.Sequential <= 0 || p.Offload <= 0 {
			t.Fatalf("non-positive measurement at size %d: %+v", p.Size, p)
		}
		seq += p.Sequential
		off += p.Offload
	}
	return off < seq
}

// needsParallelHost arms the offload-beats-baseline shape assertions for
// hosts without real core parallelism. Physically, the comparison needs
// ≥4 host CPUs: offloading wins by moving submission work to an idle
// core, and with every simulated core timesharing one host CPU the
// "offloaded" copy still serializes with the application thread. On such
// hosts the sweep runs under virtual-time CPU charging instead
// (ptime.SetVirtual): costs are billed to the goroutine that pays them
// rather than burned, so a stopwatch still reads sum-of-costs on the
// Sequential engine and max-of-costs on the offloading one — the Fig. 5/6
// shape — deterministically on 1-core CI. These tests skipped here before
// virtual mode existed.
func needsParallelHost(t *testing.T) {
	t.Helper()
	if runtime.NumCPU() < 4 {
		ptime.SetVirtual(true)
		t.Cleanup(func() { ptime.SetVirtual(false) })
	}
}

func TestFig5ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	needsParallelHost(t)
	var pts []OverlapPoint
	fullRes(func() { pts = RunFig5() })
	if len(pts) != len(Fig5Sizes()) {
		t.Fatalf("got %d points", len(pts))
	}
	// One retry absorbs host-level scheduling noise: a genuine regression
	// fails twice in a row.
	if !offloadWins(t, pts) {
		fullRes(func() { pts = RunFig5() })
		if !offloadWins(t, pts) {
			t.Errorf("offloading repeatedly failed to beat the baseline: %+v", pts)
		}
	}
}

func TestFig6ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	needsParallelHost(t)
	var pts []OverlapPoint
	fullRes(func() { pts = RunFig6() })
	if !offloadWins(t, pts) {
		fullRes(func() { pts = RunFig6() })
		if !offloadWins(t, pts) {
			t.Errorf("rendezvous progression repeatedly failed to beat the baseline: %+v", pts)
		}
	}
}

func TestTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	cfg := DefaultTable1(4)
	cfg.Warmup, cfg.Iters = 5, 25
	row := RunTable1Row(cfg)
	if row.NoOffload <= 0 || row.Offload <= 0 {
		t.Fatalf("non-positive measurements: %+v", row)
	}
	// Offloading must not catastrophically regress the application.
	if row.Offload > row.NoOffload*2 {
		t.Errorf("offload (%v) more than 2x baseline (%v)", row.Offload, row.NoOffload)
	}
}

func TestPingpongQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	rows := RunPingpong(core.Multithreaded, []int{64, 4096, 64 << 10})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.HalfRTT <= 0 {
			t.Fatalf("size %d: non-positive latency", r.Size)
		}
	}
	// Bandwidth must increase with size in this range.
	if rows[2].BandwidthMBps <= rows[0].BandwidthMBps {
		t.Errorf("bandwidth not increasing: %v", rows)
	}
	// Latency for 64B must be in the right ballpark (µs, not ms).
	if rows[0].HalfRTT > time.Millisecond {
		t.Errorf("64B latency %v implausible", rows[0].HalfRTT)
	}
}

func TestAblationOffloadQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	rows := RunAblationOffload(16 << 10)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]time.Duration{}
	for _, r := range rows {
		byName[r.Name] = r.Value
	}
	// The offloaded Isend must return much faster than the inline one
	// (registration vs a 6.5µs copy + submission).
	on := byName["multithreaded offload=on"]
	off := byName["multithreaded offload=off"]
	if on >= off {
		t.Errorf("offloaded Isend (%v) not faster than inline (%v)", on, off)
	}
}

func TestFormatters(t *testing.T) {
	pts := []OverlapPoint{{Size: 1024, Reference: time.Microsecond}}
	if !strings.Contains(FormatOverlap(pts, "T"), "1024") {
		t.Error("FormatOverlap missing size")
	}
	rows := []Table1Row{{Threads: 4, NoOffload: time.Millisecond, Offload: time.Millisecond, SpeedupPct: 1}}
	if !strings.Contains(FormatTable1(rows), "4") {
		t.Error("FormatTable1 missing threads")
	}
	ab := []AblationRow{{Name: "x", Value: time.Microsecond}}
	if !strings.Contains(FormatAblation("T", ab), "x") {
		t.Error("FormatAblation missing name")
	}
	pp := []PingpongRow{{Size: 8, HalfRTT: time.Microsecond, BandwidthMBps: 8}}
	if !strings.Contains(FormatPingpong(pp, "T"), "8") {
		t.Error("FormatPingpong missing size")
	}
}
