package exp

import (
	"fmt"
	"time"

	"pioman/internal/core"
	"pioman/internal/mpi"
	"pioman/internal/nic"
	"pioman/internal/ptime"
	"pioman/internal/stats"
)

// PingpongRow reports one size of the classic latency/bandwidth sweep.
type PingpongRow struct {
	Size          int
	HalfRTT       time.Duration
	BandwidthMBps float64
}

// RunPingpong measures half round-trip latency and effective bandwidth for
// each size under the given engine mode, on the default testbed rail set
// (MX plus the intra-node shared-memory rail).
func RunPingpong(mode core.Mode, sizes []int) []PingpongRow {
	return RunPingpongRails(mode, sizes, true)
}

// RunPingpongRails is RunPingpong with the simulated rail set explicit:
// withSHM keeps the intra-node shared-memory rail alongside MX, false
// sweeps over MX alone (cmd/pingpong's -rails flag).
func RunPingpongRails(mode core.Mode, sizes []int, withSHM bool) []PingpongRow {
	warm, meas := iters(20, 200)
	var cfg mpi.Config
	if mode == core.Multithreaded {
		cfg = mpi.DefaultMultithreaded(2)
	} else {
		cfg = mpi.DefaultSequential(2)
	}
	if !withSHM {
		cfg.SHM = nic.Params{}
	}
	cfg.Metrics = Metrics
	w := mpi.NewWorld(cfg)
	defer w.Close()
	rows := make([]PingpongRow, 0, len(sizes))
	for _, size := range sizes {
		var half time.Duration
		w.RunAll(func(p *mpi.Proc) {
			data := make([]byte, size)
			buf := make([]byte, size)
			p.Barrier()
			sample := stats.NewSample(meas)
			for it := 0; it < warm+meas; it++ {
				sw := ptime.NewStopwatch()
				if p.Rank() == 0 {
					p.Send(1, 1, data)
					p.Recv(1, 1, buf)
				} else {
					p.Recv(0, 1, buf)
					p.Send(0, 1, data)
				}
				if it >= warm && p.Rank() == 0 {
					sample.Add(sw.Elapsed() / 2)
				}
			}
			if p.Rank() == 0 {
				half = sample.TrimmedMean(0.1)
			}
		})
		row := PingpongRow{Size: size, HalfRTT: half}
		if half > 0 {
			row.BandwidthMBps = float64(size) / half.Seconds() / 1e6
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatPingpong renders the sweep.
func FormatPingpong(rows []PingpongRow, title string) string {
	out := fmt.Sprintf("%s\n%10s %14s %16s\n", title, "size", "latency(µs)", "bandwidth(MB/s)")
	for _, r := range rows {
		out += fmt.Sprintf("%10d %14.2f %16.1f\n", r.Size, stats.US(r.HalfRTT), r.BandwidthMBps)
	}
	return out
}
