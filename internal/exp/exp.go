// Package exp is the experiment harness: it regenerates every figure and
// table of the paper's evaluation (§4) on the simulated testbed, plus the
// ablations called out in DESIGN.md. The same runners back the testing.B
// benchmarks in the repository root and the cmd/nmbench executable.
package exp

import (
	"fmt"
	"time"

	"pioman/internal/mpi"
	"pioman/internal/ptime"
	"pioman/internal/stats"
	"pioman/internal/telemetry"
	"pioman/internal/topo"
)

// Quick reduces iteration counts for smoke tests and -short runs.
var Quick = false

// Metrics, when non-nil, is passed into the worlds the harness creates
// so their engines, rails and event servers register in it
// (cmd/pingpong's -metrics endpoint reads it live). Metric names are
// keyed by node rank and a registry panics on duplicates, so meter one
// world at a time: set it around a single sweep and clear it after.
var Metrics *telemetry.Registry

// iters returns (warmup, measured) honoring Quick mode.
func iters(warmup, measured int) (int, int) {
	if Quick {
		w, m := warmup/2, measured/5
		if w < 10 {
			w = 10
		}
		if m < 20 {
			m = 20
		}
		return w, m
	}
	return warmup, measured
}

// OverlapPoint is one row of Fig. 5 / Fig. 6: the benchmark time for one
// message size under each engine configuration.
type OverlapPoint struct {
	Size       int
	Reference  time.Duration // no computation (pure communication)
	Sequential time.Duration // original engine: no offload / no progression
	Offload    time.Duration // PIOMan-enabled engine
}

// exchangeOnce runs one Fig. 4 iteration: post the receive, start the
// asynchronous send, compute, then wait for both. Both ranks execute it
// symmetrically, so the measured time is bounded below by
// max(communication, computation) and the baseline degrades toward
// sum(communication, computation).
func exchangeOnce(p *mpi.Proc, peer, tag int, data, buf []byte, comp time.Duration) time.Duration {
	r := p.Irecv(peer, tag, buf)
	sw := ptime.NewStopwatch()
	s := p.Isend(peer, tag, data)
	p.Compute(comp)
	p.WaitSend(s)
	p.WaitRecv(r)
	return sw.Elapsed()
}

// runExchange measures the steady-state Fig. 4 benchmark on world w for
// one message size, returning rank 0's trimmed mean.
func runExchange(w *mpi.World, size int, comp time.Duration, warmup, measured int) time.Duration {
	var result time.Duration
	w.RunAll(func(p *mpi.Proc) {
		peer := 1 - p.Rank()
		data := make([]byte, size)
		buf := make([]byte, size)
		p.Barrier()
		sample := stats.NewSample(measured)
		for it := 0; it < warmup+measured; it++ {
			el := exchangeOnce(p, peer, 1, data, buf, comp)
			if it >= warmup && p.Rank() == 0 {
				sample.Add(el)
			}
		}
		if p.Rank() == 0 {
			result = sample.TrimmedMean(0.1)
		}
	})
	return result
}

// RunExchangeN runs n Fig. 4 iterations on w (two ranks exchanging
// size-byte messages around comp of computation). It is the raw primitive
// the repository-root testing.B benchmarks drive with b.N.
func RunExchangeN(w *mpi.World, size int, comp time.Duration, n int) {
	w.RunAll(func(p *mpi.Proc) {
		peer := 1 - p.Rank()
		data := make([]byte, size)
		buf := make([]byte, size)
		p.Barrier()
		for it := 0; it < n; it++ {
			exchangeOnce(p, peer, 1, data, buf, comp)
		}
	})
}

// overlapSweep runs the three series of an overlap figure over sizes.
// The micro-benchmarks run one application thread per node, so a 4-core
// node preserves the physics (≥3 idle cores to offload to) while halving
// the busy-polling goroutines exposed to host scheduling noise.
func overlapSweep(sizes []int, comp time.Duration, warmup, measured int) []OverlapPoint {
	points := make([]OverlapPoint, len(sizes))
	for i, s := range sizes {
		points[i].Size = s
	}
	small := topo.Machine{Sockets: 1, CoresPerSocket: 4}
	seqCfg := mpi.DefaultSequential(2)
	seqCfg.Machine = small
	mtCfg := mpi.DefaultMultithreaded(2)
	mtCfg.Machine = small
	series := []struct {
		cfg  mpi.Config
		comp time.Duration
		set  func(*OverlapPoint, time.Duration)
	}{
		{seqCfg, 0, func(pt *OverlapPoint, d time.Duration) { pt.Reference = d }},
		{seqCfg, comp, func(pt *OverlapPoint, d time.Duration) { pt.Sequential = d }},
		{mtCfg, comp, func(pt *OverlapPoint, d time.Duration) { pt.Offload = d }},
	}
	for _, se := range series {
		w := mpi.NewWorld(se.cfg)
		for i, size := range sizes {
			se.set(&points[i], runExchange(w, size, se.comp, warmup, measured))
		}
		w.Close()
	}
	return points
}

// Fig5Sizes are the paper's small-message sizes (1K–32K).
func Fig5Sizes() []int { return []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10} }

// RunFig5 reproduces Fig. 5 (§4.1): small-message submission offloading
// with 20 µs of computation.
func RunFig5() []OverlapPoint {
	w, m := iters(20, 200)
	return overlapSweep(Fig5Sizes(), 20*time.Microsecond, w, m)
}

// Fig6Sizes are the paper's rendezvous sweep sizes (8K–512K).
func Fig6Sizes() []int {
	return []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}
}

// RunFig6 reproduces Fig. 6 (§4.2): rendezvous handshake progression with
// 100 µs of computation.
func RunFig6() []OverlapPoint {
	w, m := iters(10, 100)
	return overlapSweep(Fig6Sizes(), 100*time.Microsecond, w, m)
}

// FormatOverlap renders a figure's points as the table nmbench prints.
func FormatOverlap(points []OverlapPoint, title string) string {
	out := fmt.Sprintf("%s\n%10s %14s %18s %16s\n", title,
		"size", "reference(µs)", "no-offload(µs)", "offload(µs)")
	for _, pt := range points {
		out += fmt.Sprintf("%10d %14.1f %18.1f %16.1f\n",
			pt.Size, stats.US(pt.Reference), stats.US(pt.Sequential), stats.US(pt.Offload))
	}
	return out
}

// hog occupies one core with computation until stop closes; ablations use
// it to saturate a node's cores.
func hog(p *mpi.Proc, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
			p.Compute(50 * time.Microsecond)
		}
	}
}
