package exp

import (
	"fmt"
	"pioman/internal/core"
	"time"

	"pioman/internal/mpi"
	"pioman/internal/ptime"
	"pioman/internal/stats"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Name  string
	Value time.Duration
}

// RunAblationOffload isolates §2.2's claim that offloading takes the
// submission cost off the critical path: it measures the time Isend itself
// takes (registration vs inline submission) for one eager size.
func RunAblationOffload(size int) []AblationRow {
	warm, meas := iters(20, 200)
	configs := []struct {
		name string
		cfg  mpi.Config
	}{
		{"sequential (inline submit)", mpi.DefaultSequential(2)},
		{"multithreaded offload=off", func() mpi.Config {
			c := mpi.DefaultMultithreaded(2)
			c.OffloadEager = false
			return c
		}()},
		{"multithreaded offload=on", mpi.DefaultMultithreaded(2)},
	}
	var rows []AblationRow
	for _, cf := range configs {
		w := mpi.NewWorld(cf.cfg)
		var isendTime time.Duration
		w.RunAll(func(p *mpi.Proc) {
			peer := 1 - p.Rank()
			data := make([]byte, size)
			buf := make([]byte, size)
			p.Barrier()
			sample := stats.NewSample(meas)
			for it := 0; it < warm+meas; it++ {
				r := p.Irecv(peer, 1, buf)
				sw := ptime.NewStopwatch()
				s := p.Isend(peer, 1, data)
				el := sw.Elapsed()
				p.WaitSend(s)
				p.WaitRecv(r)
				if it >= warm && p.Rank() == 0 {
					sample.Add(el)
				}
			}
			if p.Rank() == 0 {
				isendTime = sample.TrimmedMean(0.1)
			}
		})
		w.Close()
		rows = append(rows, AblationRow{Name: cf.name, Value: isendTime})
	}
	return rows
}

// RunAblationStrategy compares optimizer strategies on a burst of small
// same-destination messages (the aggregation use case of [2]): total time
// for one thread to send-and-complete n messages of sz bytes while the
// peer sinks them.
func RunAblationStrategy(n, sz int) []AblationRow {
	warm, meas := iters(5, 30)
	var rows []AblationRow
	for _, strat := range []string{"fifo", "aggreg"} {
		cfg := mpi.DefaultMultithreaded(2)
		cfg.Strategy = strat
		w := mpi.NewWorld(cfg)
		var total time.Duration
		w.RunAll(func(p *mpi.Proc) {
			p.Barrier()
			if p.Rank() == 0 {
				data := make([]byte, sz)
				sample := stats.NewSample(meas)
				for it := 0; it < warm+meas; it++ {
					sw := ptime.NewStopwatch()
					// Post the whole burst before waiting: the waiting
					// list fills while the rail is busy, which is what
					// gives the aggregation strategy trains to form.
					reqs := make([]*core.SendReq, n)
					for m := range reqs {
						reqs[m] = p.Isend(1, 9, data)
					}
					for _, s := range reqs {
						p.WaitSend(s)
					}
					// One round-trip confirms full delivery.
					var ack [1]byte
					p.Recv(1, 10, ack[:])
					if it >= warm {
						sample.Add(sw.Elapsed())
					}
				}
				total = sample.TrimmedMean(0.1)
				return
			}
			buf := make([]byte, sz)
			for it := 0; it < warm+meas; it++ {
				for m := 0; m < n; m++ {
					p.Recv(0, 9, buf)
				}
				p.Send(0, 10, []byte{1})
			}
		})
		w.Close()
		rows = append(rows, AblationRow{Name: "strategy=" + strat, Value: total})
	}
	return rows
}

// RunAblationBlocking measures rendezvous progression with every core
// computing: with the blocking-call fallback the handshake progresses on
// the watcher thread; without it, progression waits for the Wait call.
func RunAblationBlocking(size int) []AblationRow {
	warm, meas := iters(5, 40)
	var rows []AblationRow
	for _, blocking := range []bool{false, true} {
		cfg := mpi.DefaultMultithreaded(2)
		cfg.EnableBlocking = blocking
		w := mpi.NewWorld(cfg)
		cores := w.Node(0).Sch.NumCores()
		// Saturate all but one core per node with hogs; the benchmark
		// thread occupies the last one, so polling has no idle core.
		stop := make(chan struct{})
		var hogs []func()
		for rank := 0; rank < 2; rank++ {
			for i := 0; i < cores-1; i++ {
				th := w.Node(rank).Spawn("hog", func(p *mpi.Proc) { hog(p, stop) })
				hogs = append(hogs, th.Join)
			}
		}
		var total time.Duration
		w.RunAll(func(p *mpi.Proc) {
			peer := 1 - p.Rank()
			data := make([]byte, size)
			buf := make([]byte, size)
			sample := stats.NewSample(meas)
			for it := 0; it < warm+meas; it++ {
				el := exchangeOnce(p, peer, 1, data, buf, 300*time.Microsecond)
				if it >= warm && p.Rank() == 0 {
					sample.Add(el)
				}
			}
			if p.Rank() == 0 {
				total = sample.TrimmedMean(0.1)
			}
		})
		close(stop)
		for _, j := range hogs {
			j()
		}
		w.Close()
		name := "blocking-fallback=off"
		if blocking {
			name = "blocking-fallback=on"
		}
		rows = append(rows, AblationRow{Name: name, Value: total})
	}
	return rows
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	out := title + "\n"
	for _, r := range rows {
		out += fmt.Sprintf("  %-34s %10.1fµs\n", r.Name, stats.US(r.Value))
	}
	return out
}

// RunAblationAdaptive evaluates the paper's future-work adaptive-offload
// strategy (§5): Isend defers submission only when an idle core exists.
// It measures the Fig. 4 exchange at one eager size in two regimes —
// plenty of idle cores, and every core computing — for the static and
// adaptive policies.
func RunAblationAdaptive(size int) []AblationRow {
	warm, meas := iters(10, 100)
	var rows []AblationRow
	for _, saturate := range []bool{false, true} {
		for _, adaptive := range []bool{false, true} {
			cfg := mpi.DefaultMultithreaded(2)
			cfg.AdaptiveOffload = adaptive
			w := mpi.NewWorld(cfg)
			cores := w.Node(0).Sch.NumCores()
			stop := make(chan struct{})
			var hogs []func()
			if saturate {
				for rank := 0; rank < 2; rank++ {
					for i := 0; i < cores-1; i++ {
						th := w.Node(rank).Spawn("hog", func(p *mpi.Proc) { hog(p, stop) })
						hogs = append(hogs, th.Join)
					}
				}
			}
			var total time.Duration
			w.RunAll(func(p *mpi.Proc) {
				peer := 1 - p.Rank()
				data := make([]byte, size)
				buf := make([]byte, size)
				sample := stats.NewSample(meas)
				for it := 0; it < warm+meas; it++ {
					el := exchangeOnce(p, peer, 1, data, buf, 50*time.Microsecond)
					if it >= warm && p.Rank() == 0 {
						sample.Add(el)
					}
				}
				if p.Rank() == 0 {
					total = sample.TrimmedMean(0.1)
				}
			})
			close(stop)
			for _, j := range hogs {
				j()
			}
			w.Close()
			name := "idle-cores"
			if saturate {
				name = "saturated "
			}
			if adaptive {
				name += " adaptive=on"
			} else {
				name += " adaptive=off"
			}
			rows = append(rows, AblationRow{Name: name, Value: total})
		}
	}
	return rows
}
