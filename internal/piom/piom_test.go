package piom

import (
	"sync/atomic"
	"testing"
	"time"

	"pioman/internal/sched"
	"pioman/internal/topo"
)

// fakeSource is a controllable Source.
type fakeSource struct {
	progressed atomic.Int64
	blocked    atomic.Int64
	work       atomic.Int64 // pending work units consumed by Progress
	blockCh    chan struct{}
}

func newFakeSource() *fakeSource {
	return &fakeSource{blockCh: make(chan struct{}, 64)}
}

func (f *fakeSource) Progress(core topo.CoreID) bool {
	f.progressed.Add(1)
	for {
		n := f.work.Load()
		if n <= 0 {
			return false
		}
		if f.work.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

func (f *fakeSource) BlockingWait(timeout time.Duration) bool {
	f.blocked.Add(1)
	select {
	case <-f.blockCh:
		return true
	case <-time.After(timeout):
		return false
	}
}

func newSched(t *testing.T, cores int) *sched.Scheduler {
	t.Helper()
	s := sched.New(sched.Config{Machine: topo.Machine{Sockets: 1, CoresPerSocket: cores}})
	t.Cleanup(s.Shutdown)
	return s
}

func TestRequestLifecycle(t *testing.T) {
	r := NewRequest()
	if r.Completed() {
		t.Fatal("fresh request completed")
	}
	var hooks int
	r.OnComplete(func() { hooks++ })
	r.Complete()
	r.Complete() // idempotent
	if !r.Completed() {
		t.Fatal("not completed after Complete")
	}
	if hooks != 1 {
		t.Fatalf("onComplete ran %d times, want 1", hooks)
	}
	r.Flag().Wait() // must not block
}

func TestIdleCoresPollSources(t *testing.T) {
	sch := newSched(t, 2)
	srv := NewServer(sch, Config{EnableIdleHook: true})
	defer srv.Stop()
	src := newFakeSource()
	srv.Register(src)
	deadline := time.Now().Add(time.Second)
	for src.progressed.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if src.progressed.Load() == 0 {
		t.Fatal("idle cores never polled the source")
	}
	if srv.Stats().Polls == 0 {
		t.Fatal("Stats.Polls = 0")
	}
}

func TestNoIdleHookWhenDisabled(t *testing.T) {
	sch := newSched(t, 2)
	srv := NewServer(sch, Config{EnableIdleHook: false})
	defer srv.Stop()
	src := newFakeSource()
	srv.Register(src)
	time.Sleep(20 * time.Millisecond)
	if n := src.progressed.Load(); n != 0 {
		t.Fatalf("source progressed %d times with idle hook disabled", n)
	}
}

func TestScheduleRunsTasklet(t *testing.T) {
	sch := newSched(t, 2)
	srv := NewServer(sch, Config{})
	defer srv.Stop()
	src := newFakeSource()
	srv.Register(src)
	srv.Schedule()
	deadline := time.Now().Add(time.Second)
	for src.progressed.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if src.progressed.Load() == 0 {
		t.Fatal("scheduled tasklet never polled")
	}
}

func TestWaitForCompletesViaPolling(t *testing.T) {
	sch := newSched(t, 1)
	srv := NewServer(sch, Config{})
	defer srv.Stop()
	req := NewRequest()
	src := newFakeSource()
	srv.Register(src)
	// Completion happens on the 5th progress pass.
	done := atomic.Int64{}
	srv.Register(sourceFunc(func(core topo.CoreID) bool {
		if done.Add(1) == 5 {
			req.Complete()
			return true
		}
		return false
	}))
	th := sch.Spawn("waiter", func(th *sched.Thread) {
		srv.WaitFor(req, th.Core(), 100*time.Millisecond)
	})
	th.Join()
	if !req.Completed() {
		t.Fatal("WaitFor returned with incomplete request")
	}
}

func TestWaitForFallsBackToFlag(t *testing.T) {
	sch := newSched(t, 2)
	srv := NewServer(sch, Config{})
	defer srv.Stop()
	req := NewRequest()
	go func() {
		time.Sleep(5 * time.Millisecond)
		req.Complete()
	}()
	start := time.Now()
	// Tiny spin budget: must fall back to blocking and still wake.
	th := sch.Spawn("waiter", func(th *sched.Thread) {
		srv.WaitFor(req, th.Core(), 10*time.Microsecond)
	})
	th.Join()
	if !req.Completed() {
		t.Fatal("incomplete after WaitFor")
	}
	if time.Since(start) > time.Second {
		t.Fatal("WaitFor took far too long")
	}
}

// sourceFunc adapts a function to Source with a no-op BlockingWait.
type sourceFunc func(core topo.CoreID) bool

func (f sourceFunc) Progress(core topo.CoreID) bool { return f(core) }
func (f sourceFunc) BlockingWait(d time.Duration) bool {
	time.Sleep(d)
	return false
}

func TestBlockingWatcherEngagesWhenNoCoreIdle(t *testing.T) {
	sch := newSched(t, 1)
	srv := NewServer(sch, Config{
		EnableIdleHook: true,
		EnableBlocking: true,
		BlockingCheck:  200 * time.Microsecond,
	})
	defer srv.Stop()
	src := newFakeSource()
	srv.Register(src)
	srv.Start()

	// Occupy the only core with computation so IdleCores drops to 0.
	stop := make(chan struct{})
	th := sch.Spawn("hog", func(th *sched.Thread) {
		for {
			select {
			case <-stop:
				return
			default:
				th.Compute(200 * time.Microsecond)
			}
		}
	})
	// Feed the blocking channel; the watcher should consume.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().BlockingWakeups == 0 && time.Now().Before(deadline) {
		select {
		case src.blockCh <- struct{}{}:
		default:
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	th.Join()
	if srv.Stats().BlockingWakeups == 0 {
		t.Fatal("blocking watcher never processed an event while cores were busy")
	}
}

func TestBlockingWatcherStandsByWhenIdle(t *testing.T) {
	sch := newSched(t, 4) // plenty of idle cores
	srv := NewServer(sch, Config{
		EnableIdleHook: true,
		EnableBlocking: true,
		BlockingCheck:  100 * time.Microsecond,
	})
	defer srv.Stop()
	src := newFakeSource()
	srv.Register(src)
	srv.Start()
	time.Sleep(20 * time.Millisecond)
	// With idle cores available, the watcher must not be the one
	// consuming events: BlockingWait calls should be zero (it only
	// checks idleness and sleeps).
	if n := src.blocked.Load(); n != 0 {
		t.Fatalf("watcher performed %d blocking waits despite idle cores", n)
	}
}

func TestStopIsIdempotentAndDetaches(t *testing.T) {
	sch := newSched(t, 2)
	srv := NewServer(sch, Config{EnableIdleHook: true, EnableBlocking: true})
	src := newFakeSource()
	srv.Register(src)
	srv.Start()
	srv.Stop()
	srv.Stop()
	n := src.progressed.Load()
	time.Sleep(10 * time.Millisecond)
	// A few in-flight polls may land right after Stop; it must settle.
	n2 := src.progressed.Load()
	time.Sleep(10 * time.Millisecond)
	if got := src.progressed.Load(); got != n2 && got > n+100 {
		t.Fatalf("source still being polled after Stop (%d -> %d)", n, got)
	}
}

func TestPollAggregatesWork(t *testing.T) {
	sch := newSched(t, 1)
	srv := NewServer(sch, Config{})
	defer srv.Stop()
	a, b := newFakeSource(), newFakeSource()
	srv.Register(a)
	srv.Register(b)
	b.work.Store(1)
	if !srv.Poll(0) {
		t.Fatal("Poll missed work in second source")
	}
	if srv.Poll(0) {
		t.Fatal("Poll reported phantom work")
	}
	st := srv.Stats()
	if st.Polls != 2 || st.Worked != 1 {
		t.Fatalf("stats %+v, want Polls=2 Worked=1", st)
	}
}
