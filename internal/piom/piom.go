// Package piom is the PIOMan analog: a generic event server that
// guarantees communication progress by executing library-supplied progress
// callbacks on whatever resources the node can spare.
//
// PIOMan itself is network-agnostic (§3.2): the communication library
// (internal/core, the NewMadeleine analog) registers Sources — callbacks
// that poll NICs and push pending submissions — and the server arranges for
// them to run on four triggers, mirroring §3.1:
//
//   - core idleness: the server installs itself as the scheduler's idle
//     hook, so every idle core busy-polls the sources;
//   - timer ticks: a tasklet is scheduled periodically even when all cores
//     are busy;
//   - explicit waits: threads waiting on a request poll inline ("the
//     message is sent inside the wait function", §3.2);
//   - blocking calls: when no core is idle, a dedicated watcher goroutine
//     performs a blocking receive (the specialized kernel thread of [10])
//     so that rendezvous handshakes still progress without stealing CPU
//     from computing threads.
package piom

import (
	"runtime"
	"sync/atomic"
	"time"

	"pioman/internal/sched"
	"pioman/internal/sync2"
	"pioman/internal/topo"
)

// Source is one progress engine registered with the server. Implementations
// must be safe for concurrent calls: the server invokes Progress from many
// cores and relies on the source's internal try-locking to keep each event
// processed under mutual exclusion (§2.1).
type Source interface {
	// Progress advances communication state (polls NICs, submits pending
	// requests) and reports whether any work was done. core identifies
	// the executing core for cost attribution, or -1 when called from a
	// non-core context (blocking watcher).
	Progress(core topo.CoreID) bool
	// BlockingWait parks until an event arrives (or the timeout expires),
	// processes it, and reports whether work was done. It must not spin.
	BlockingWait(timeout time.Duration) bool
}

// Request is one asynchronous communication request tracked by the event
// server. The engine embeds it into its send/receive state; completion is
// signaled exactly once by whichever core detects the event. A request
// may complete successfully (Complete) or with an error (CompleteErr) —
// the failure-bounding half of the cluster runtime's contract: a request
// whose peer died still completes, it just carries the reason.
type Request struct {
	done sync2.Flag
	// onComplete, if set, runs exactly once right before waiters wake.
	onComplete func()
	// err is the request's failure, written before done.Set (whose
	// release/acquire ordering publishes it) and read only after the
	// completion flag is observed set.
	err error
}

// NewRequest returns a fresh incomplete request.
func NewRequest() *Request { return &Request{} }

// OnComplete registers f to run when the request completes. Must be called
// before the request is visible to other goroutines.
func (r *Request) OnComplete(f func()) { r.onComplete = f }

// Complete marks the request done and wakes waiters. Idempotent.
func (r *Request) Complete() {
	if r.done.IsSet() {
		return
	}
	if r.onComplete != nil {
		f := r.onComplete
		r.onComplete = nil
		f()
	}
	r.done.Set()
}

// CompleteErr marks the request done with a failure and wakes waiters.
// Waiters observe completion exactly as for Complete; Err reports the
// failure afterwards. Idempotent — the first completion (of either kind)
// wins.
func (r *Request) CompleteErr(err error) {
	if r.done.IsSet() {
		return
	}
	r.err = err
	r.Complete()
}

// Err returns the failure the request completed with, or nil for a
// successful (or still incomplete) request. Valid once Completed reports
// true; the completion flag's ordering makes the read safe cross-core.
func (r *Request) Err() error {
	if !r.done.IsSet() {
		return nil
	}
	return r.err
}

// Completed reports whether the request has finished.
func (r *Request) Completed() bool { return r.done.IsSet() }

// Flag exposes the completion flag for thread blocking.
func (r *Request) Flag() *sync2.Flag { return &r.done }

// Config parameterizes a Server.
type Config struct {
	// TimerPeriod is the tick interval for the timer trigger. Zero keeps
	// the scheduler's; the timer is the last-resort trigger when every
	// core computes and blocking mode is off.
	TimerPeriod time.Duration
	// EnableIdleHook installs the server as the scheduler idle hook
	// (active polling on idle cores). On for the multithreaded engine.
	EnableIdleHook bool
	// EnableBlocking starts one watcher goroutine per source that blocks
	// on the NIC when no core is idle.
	EnableBlocking bool
	// BlockingCheck is how often the watcher re-evaluates idleness (and
	// the timeout of each blocking receive). Zero selects the host-tuned
	// default, AutoBlockingCheck.
	BlockingCheck time.Duration
}

// AutoBlockingCheck returns the watcher cadence tuned to the host shape
// and polling mode. With active polling on and ≥4 CPUs the watcher is a
// backstop, so the historical 100µs cadence holds. Without active
// polling (noIdlePolling — mpi.Config.NoIdlePolling, i.e. the idle hook
// disabled) or on smaller hosts the watcher IS the progress engine, and
// a 50µs cadence halves the worst-case reaction to an event that lands
// just after a timeout expired, without measurable idle cost (the
// watcher sleeps inside the blocking receive either way).
// Config.BlockingCheck (mpi.Config.WatcherCheck) overrides it.
func AutoBlockingCheck(noIdlePolling bool) time.Duration {
	if !noIdlePolling && runtime.NumCPU() >= 4 {
		return 100 * time.Microsecond
	}
	return 50 * time.Microsecond
}

// Stats counts server activity.
type Stats struct {
	Polls           uint64 // Progress passes executed
	Worked          uint64 // passes that did work
	BlockingWakeups uint64 // events processed by the blocking watcher
}

// Server coordinates progress for one node.
type Server struct {
	cfg   Config
	sch   *sched.Scheduler
	mu    sync2.SpinLock
	srcs  []Source
	tl    *sched.Tasklet
	stop  chan struct{}
	done  atomic.Bool
	polls atomic.Uint64
	work  atomic.Uint64
	bwake atomic.Uint64
}

// NewServer creates a server bound to one node's scheduler and installs its
// triggers according to cfg.
func NewServer(sch *sched.Scheduler, cfg Config) *Server {
	if cfg.BlockingCheck <= 0 {
		// With the idle hook off the watcher is the progress engine —
		// the NoIdlePolling configuration — so the cadence tightens.
		cfg.BlockingCheck = AutoBlockingCheck(!cfg.EnableIdleHook)
	}
	s := &Server{cfg: cfg, sch: sch, stop: make(chan struct{})}
	s.tl = sched.NewTasklet("piom.progress", func(core topo.CoreID) {
		s.Poll(core)
	})
	if cfg.EnableIdleHook {
		sch.SetIdleHook(func(core topo.CoreID) bool { return s.Poll(core) })
	}
	sch.SetTimerTasklet(s.tl)
	return s
}

// Register adds a source. Sources registered after watchers start are
// picked up on the next pass but do not get a dedicated blocking watcher;
// register all sources before calling Start.
func (s *Server) Register(src Source) {
	s.mu.Lock()
	s.srcs = append(s.srcs, src)
	s.mu.Unlock()
}

// Start launches the blocking watchers (if enabled).
func (s *Server) Start() {
	if !s.cfg.EnableBlocking {
		return
	}
	s.mu.Lock()
	srcs := append([]Source(nil), s.srcs...)
	s.mu.Unlock()
	for _, src := range srcs {
		go s.watch(src)
	}
}

// Stop halts watchers and detaches from the scheduler.
func (s *Server) Stop() {
	if s.done.Swap(true) {
		return
	}
	close(s.stop)
	s.sch.SetIdleHook(nil)
	s.sch.SetTimerTasklet(nil)
}

// Poll runs one progress pass over all sources on the calling core,
// returning whether any source did work. It is the body of the idle hook,
// of the timer tasklet, and of inline wait polling.
func (s *Server) Poll(core topo.CoreID) bool {
	s.mu.Lock()
	srcs := s.srcs
	s.mu.Unlock()
	s.polls.Add(1)
	worked := false
	for _, src := range srcs {
		if src.Progress(core) {
			worked = true
		}
	}
	if worked {
		s.work.Add(1)
	}
	return worked
}

// Schedule queues the progress tasklet, e.g. right after a request is
// registered ("the asynchronous send actually only registers the request in
// a work list and generates an event", §2.1).
func (s *Server) Schedule() { s.sch.Schedule(s.tl) }

// WaitFor makes the calling goroutine (which should hold a core) poll the
// server until req completes. The fast path spins through Poll — detecting
// both local completions and ones raced by other cores — and falls back to
// blocking on the completion flag after spinBudget, so a wait never burns a
// core indefinitely.
func (s *Server) WaitFor(req *Request, core topo.CoreID, spinBudget time.Duration) {
	deadline := time.Now().Add(spinBudget)
	for !req.Completed() {
		s.Poll(core)
		if req.Completed() {
			return
		}
		if time.Now().After(deadline) {
			req.Flag().SpinWait(time.Millisecond)
			return
		}
	}
}

// watch is the blocking watcher loop for one source: engaged only while no
// core is idle, exactly as §3.2 describes rendezvous management.
func (s *Server) watch(src Source) {
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if s.cfg.EnableIdleHook && s.sch.IdleCores() > 0 {
			// Active polling owns progress; stand by.
			time.Sleep(s.cfg.BlockingCheck)
			continue
		}
		if src.BlockingWait(s.cfg.BlockingCheck) {
			s.bwake.Add(1)
		}
	}
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Polls:           s.polls.Load(),
		Worked:          s.work.Load(),
		BlockingWakeups: s.bwake.Load(),
	}
}
