package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindPoll})
	r.Recordf(KindSubmit, 0, 1, 64, "x")
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder must be inert")
	}
	r.Reset()
}

func TestRecordAndDump(t *testing.T) {
	r := NewRecorder(16)
	r.Record(Event{Kind: KindRegister, Core: 0, Tag: 7, Size: 1024})
	r.Record(Event{Kind: KindSubmit, Core: 3, Tag: 7, Size: 1024, Note: "offloaded"})
	r.Record(Event{Kind: KindComplete, Core: -1, Tag: 7})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"register", "submit", "complete", "tag=7", "size=1024", "offloaded", "core=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpEmpty(t *testing.T) {
	var sb strings.Builder
	NewRecorder(4).Dump(&sb)
	if !strings.Contains(sb.String(), "no events") {
		t.Fatalf("empty dump = %q", sb.String())
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindPoll, Tag: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	evs := r.Events()
	tags := []int{evs[0].Tag, evs[1].Tag, evs[2].Tag, evs[3].Tag}
	for i, want := range []int{6, 7, 8, 9} {
		if tags[i] != want {
			t.Fatalf("wrapped tags = %v, want [6 7 8 9]", tags)
		}
	}
}

func TestEventsChronological(t *testing.T) {
	r := NewRecorder(8)
	now := time.Now()
	// Insert out of order explicitly.
	r.Record(Event{Kind: KindPoll, At: now.Add(2 * time.Microsecond)})
	r.Record(Event{Kind: KindPoll, At: now})
	r.Record(Event{Kind: KindPoll, At: now.Add(time.Microsecond)})
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At.Before(evs[i-1].At) {
			t.Fatal("Events not sorted chronologically")
		}
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(Event{Kind: KindPoll})
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d", r.Len())
	}
	r.Record(Event{Kind: KindSubmit})
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: KindPoll, Core: i})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("Len = %d, want 800", r.Len())
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	if len(r.ring) != 1024 {
		t.Fatalf("default capacity = %d, want 1024", len(r.ring))
	}
}

func TestKindString(t *testing.T) {
	if KindSubmit.String() != "submit" {
		t.Fatalf("KindSubmit = %q", KindSubmit.String())
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Fatalf("unknown kind = %q", Kind(200).String())
	}
}
