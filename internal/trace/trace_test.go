package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindPoll})
	r.Recordf(KindSubmit, 0, 1, 64, "x")
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder must be inert")
	}
	r.Reset()
}

func TestRecordAndDump(t *testing.T) {
	r := NewRecorder(16)
	r.Record(Event{Kind: KindRegister, Core: 0, Tag: 7, Size: 1024})
	r.Record(Event{Kind: KindSubmit, Core: 3, Tag: 7, Size: 1024, Note: "offloaded"})
	r.Record(Event{Kind: KindComplete, Core: -1, Tag: 7})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"register", "submit", "complete", "tag=7", "size=1024", "offloaded", "core=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpEmpty(t *testing.T) {
	var sb strings.Builder
	NewRecorder(4).Dump(&sb)
	if !strings.Contains(sb.String(), "no events") {
		t.Fatalf("empty dump = %q", sb.String())
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindPoll, Tag: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	evs := r.Events()
	tags := []int{evs[0].Tag, evs[1].Tag, evs[2].Tag, evs[3].Tag}
	for i, want := range []int{6, 7, 8, 9} {
		if tags[i] != want {
			t.Fatalf("wrapped tags = %v, want [6 7 8 9]", tags)
		}
	}
}

func TestEventsChronological(t *testing.T) {
	r := NewRecorder(8)
	now := time.Now()
	// Insert out of order explicitly.
	r.Record(Event{Kind: KindPoll, At: now.Add(2 * time.Microsecond)})
	r.Record(Event{Kind: KindPoll, At: now})
	r.Record(Event{Kind: KindPoll, At: now.Add(time.Microsecond)})
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At.Before(evs[i-1].At) {
			t.Fatal("Events not sorted chronologically")
		}
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(Event{Kind: KindPoll})
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d", r.Len())
	}
	r.Record(Event{Kind: KindSubmit})
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: KindPoll, Core: i})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("Len = %d, want 800", r.Len())
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	if len(r.ring) != 1024 {
		t.Fatalf("default capacity = %d, want 1024", len(r.ring))
	}
}

func TestKindString(t *testing.T) {
	if KindSubmit.String() != "submit" {
		t.Fatalf("KindSubmit = %q", KindSubmit.String())
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Fatalf("unknown kind = %q", Kind(200).String())
	}
}

// TestKindNamesExhaustive walks every declared Kind against kindNames:
// adding a Kind without a name entry fails here instead of printing
// "kind(16)" in timelines and Perfetto tracks. It also catches stale
// map entries beyond the declared range.
func TestKindNamesExhaustive(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if _, ok := kindNames[k]; !ok {
			t.Errorf("Kind %d has no kindNames entry; its String() would be %q", uint8(k), k.String())
		}
	}
	if len(kindNames) != int(kindCount) {
		t.Errorf("kindNames has %d entries, %d kinds declared: a stale or duplicate entry exists", len(kindNames), kindCount)
	}
}

// TestChromeTraceExport renders a recorded two-node exchange and
// validates the output against the trace-event schema gate — the same
// check CI runs on nmtrace -perfetto output, so passing here is what
// "loads in Perfetto" means for this repo.
func TestChromeTraceExport(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	r0 := NewRecorder(16)
	r0.Record(Event{At: base, Kind: KindRegister, Core: -1, Tag: 7, Size: 64, Note: "isend"})
	r0.Record(Event{At: base.Add(2 * time.Microsecond), Kind: KindSubmit, Core: 1, Tag: 7, Size: 64})
	r1 := NewRecorder(16)
	r1.Record(Event{At: base.Add(5 * time.Microsecond), Kind: KindWireRecv, Core: 0, Tag: 7, Size: 64})
	r1.Record(Event{At: base.Add(6 * time.Microsecond), Kind: KindComplete, Core: 0, Tag: 7, Size: 64, Note: "recv"})

	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, []ChromeStream{
		{PID: 0, Name: "node0", Events: r0.Events()},
		{PID: 1, Name: "node1", Events: r1.Events()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exported trace fails schema gate: %v\n%s", err, buf.String())
	}

	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	// 4 instant events + 2 process_name + 3 distinct (pid,tid) thread names.
	var instants, meta int
	sawSubmit := false
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "i":
			instants++
			if e.Name == "submit" {
				sawSubmit = true
				if e.Ts != 2.0 {
					t.Errorf("submit ts = %v µs, want 2 (relative to first event)", e.Ts)
				}
				if e.PID != 0 {
					t.Errorf("submit pid = %d, want 0", e.PID)
				}
			}
		case "M":
			meta++
		}
	}
	if instants != 4 {
		t.Errorf("instant events = %d, want 4", instants)
	}
	if !sawSubmit {
		t.Error("no submit event in trace")
	}
	if meta < 2 {
		t.Errorf("metadata events = %d, want at least process names", meta)
	}
}

// TestChromeTraceRailHealthEvents pins that rail lifecycle transitions
// — probation demotion and probe-driven readmission — render as their
// own named instant events in the Perfetto export and clear the schema
// gate, instead of hiding under a generic data event as they once did.
func TestChromeTraceRailHealthEvents(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	r := NewRecorder(8)
	r.Record(Event{At: base, Kind: KindRailProbation, Core: -1, Tag: -1, Note: "rail tcp -> probation"})
	r.Record(Event{At: base.Add(80 * time.Millisecond), Kind: KindRailReadmit, Core: -1, Tag: -1, Note: "rail tcp readmitted"})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []ChromeStream{{PID: 0, Name: "node0", Events: r.Events()}}); err != nil {
		t.Fatal(err)
	}
	if err := CheckChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("rail health trace fails schema gate: %v\n%s", err, buf.String())
	}
	for _, want := range []string{`"rail-probation"`, `"rail-readmit"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("export missing %s event:\n%s", want, buf.String())
		}
	}
}

// TestCheckChromeTraceRejectsGarbage pins the gate's failure modes: CI
// depends on this check failing loudly rather than uploading a broken
// artifact that Perfetto refuses.
func TestCheckChromeTraceRejectsGarbage(t *testing.T) {
	for name, in := range map[string]string{
		"not json":       "]]]",
		"empty events":   `{"traceEvents":[]}`,
		"nameless event": `{"traceEvents":[{"ph":"i","ts":1,"pid":0,"tid":0}]}`,
		"bad phase":      `{"traceEvents":[{"name":"poll","ph":"Z","ts":1,"pid":0,"tid":0}]}`,
		"negative ts":    `{"traceEvents":[{"name":"poll","ph":"i","ts":-5,"pid":0,"tid":0}]}`,
		"metadata only":  `{"traceEvents":[{"name":"process_name","ph":"M","pid":0,"tid":0}]}`,
		"unknown kind":   `{"traceEvents":[{"name":"kind(99)","ph":"i","ts":1,"pid":0,"tid":0}]}`,
	} {
		if err := CheckChromeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: CheckChromeTrace accepted invalid input", name)
		}
	}
}
