// Package trace is a low-overhead flight recorder for engine events. Each
// node owns a Recorder; engine components append fixed-size event records
// (timestamp, core, kind, request tag, size) under a spinlock into a ring
// buffer. The nmtrace command replays a recorded exchange as the annotated
// timeline of the paper's Fig. 1 (sequential vs event-driven submission).
package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"pioman/internal/sync2"
)

// Kind enumerates traced engine events.
type Kind uint8

// Event kinds, following the lifecycle of Fig. 1: a request is registered
// by the application, submitted to the network (inline or by a tasklet on
// an idle core), travels the wire, and completes.
const (
	KindNone          Kind = iota
	KindRegister           // (a) request registration
	KindEventCreate        // (b) event creation (multithreaded mode)
	KindSubmit             // (b') network submission (copy + PIO/DMA)
	KindWireSend           // packet handed to the fabric
	KindWireRecv           // packet observed by the receive side
	KindRTS                // rendezvous request on the wire
	KindCTS                // rendezvous acknowledgement
	KindData               // rendezvous payload transfer
	KindMatch              // receive matched a posted request
	KindUnexpected         // eager data buffered as unexpected
	KindComplete           // (c) request completion detected
	KindWakeup             // waiting thread rescheduled
	KindPoll               // one polling pass of the event server
	KindOffload            // submission executed by an idle core
	KindBlockingCall       // fallback blocking syscall engaged
	KindRailProbation      // rail demoted: span submission failed
	KindRailReadmit        // probation rail's health probe answered

	// kindCount sentinel: keep this last. The String exhaustiveness test
	// walks [0, kindCount) against kindNames, so adding a Kind above
	// without a name entry fails tests instead of printing "kind(16)".
	kindCount
)

var kindNames = map[Kind]string{
	KindNone:          "none",
	KindRegister:      "register",
	KindEventCreate:   "event-create",
	KindSubmit:        "submit",
	KindWireSend:      "wire-send",
	KindWireRecv:      "wire-recv",
	KindRTS:           "rts",
	KindCTS:           "cts",
	KindData:          "data",
	KindMatch:         "match",
	KindUnexpected:    "unexpected",
	KindComplete:      "complete",
	KindWakeup:        "wakeup",
	KindPoll:          "poll",
	KindOffload:       "offload",
	KindBlockingCall:  "blocking-call",
	KindRailProbation: "rail-probation",
	KindRailReadmit:   "rail-readmit",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	At   time.Time
	Kind Kind
	Core int // core on which the event executed; -1 when unknown
	Tag  int // communication tag, -1 when not applicable
	Size int // payload size in bytes, 0 when not applicable
	Note string
}

// Recorder is a fixed-capacity ring of events. The zero Recorder is
// disabled: Record is a no-op, keeping the hot path free of branches on
// anything but one nil check.
type Recorder struct {
	mu   sync2.SpinLock
	ring []Event
	next int
	full bool
}

// NewRecorder returns a recorder holding up to capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{ring: make([]Event, capacity)}
}

// Record appends one event. Safe for concurrent use; nil receivers are
// no-ops so components can hold an optional recorder.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if e.At.IsZero() {
		e.At = time.Now()
	}
	r.mu.Lock()
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Recordf is a convenience wrapper building the note with Sprintf.
func (r *Recorder) Recordf(k Kind, core, tag, size int, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: k, Core: core, Tag: tag, Size: size, Note: fmt.Sprintf(format, args...)})
}

// Events returns a copy of the recorded events in chronological order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []Event
	if r.full {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring[:r.next]...)
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// Len returns the number of events currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.ring)
	}
	return r.next
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.next = 0
	r.full = false
	r.mu.Unlock()
}

// Dump writes a human-readable timeline to w, with timestamps relative to
// the first event.
func (r *Recorder) Dump(w io.Writer) {
	evs := r.Events()
	if len(evs) == 0 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	t0 := evs[0].At
	for _, e := range evs {
		rel := e.At.Sub(t0)
		core := "?"
		if e.Core >= 0 {
			core = fmt.Sprintf("%d", e.Core)
		}
		fmt.Fprintf(w, "%10.2fµs core=%-2s %-13s", float64(rel)/float64(time.Microsecond), core, e.Kind)
		if e.Tag >= 0 {
			fmt.Fprintf(w, " tag=%d", e.Tag)
		}
		if e.Size > 0 {
			fmt.Fprintf(w, " size=%d", e.Size)
		}
		if e.Note != "" {
			fmt.Fprintf(w, " %s", e.Note)
		}
		fmt.Fprintln(w)
	}
}
