package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// ChromeStream pairs one recorder's events with the process identity
// they render under in a Chrome trace: one stream per node, so a
// two-rank exchange shows as two process tracks in the Perfetto UI with
// each node's cores as threads beneath it.
type ChromeStream struct {
	// PID is the trace-event process id — by convention the node rank.
	PID int
	// Name labels the process track (e.g. "node0 multithreaded").
	Name string
	// Events are the recorder's events (Recorder.Events order).
	Events []Event
}

// chromeEvent is one entry of the Chrome trace-event format's
// traceEvents array — the JSON schema chrome://tracing and Perfetto
// load. Instant events use ph "i"; metadata events (process and thread
// names) use ph "M".
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope: "t" (thread)
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTID maps an event's core to a trace thread id. Core n renders as
// thread n+1 so core-less events (Core == -1, recorded off the simulated
// cores) keep a valid non-negative tid of 0.
func chromeTID(core int) int {
	if core < 0 {
		return 0
	}
	return core + 1
}

// WriteChromeTrace renders the streams as Chrome trace-event JSON —
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing — writing
// one instant event per recorded engine event, grouped into one process
// track per stream and one thread track per core. Timestamps are
// microseconds relative to the earliest event across all streams, so
// both nodes of an exchange share one timeline, which is exactly the
// cross-node submission/wire/completion alignment of the paper's Fig. 1
// made scrollable.
func WriteChromeTrace(w io.Writer, streams []ChromeStream) error {
	var t0 time.Time
	for _, s := range streams {
		for _, e := range s.Events {
			if t0.IsZero() || e.At.Before(t0) {
				t0 = e.At
			}
		}
	}
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	for _, s := range streams {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: s.PID, TID: 0,
			Args: map[string]any{"name": s.Name},
		})
		named := map[int]bool{}
		for _, e := range s.Events {
			tid := chromeTID(e.Core)
			if !named[tid] {
				named[tid] = true
				label := "no core"
				if e.Core >= 0 {
					label = "core " + strconv.Itoa(e.Core)
				}
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", PID: s.PID, TID: tid,
					Args: map[string]any{"name": label},
				})
			}
			args := map[string]any{}
			if e.Tag >= 0 {
				args["tag"] = e.Tag
			}
			if e.Size > 0 {
				args["size"] = e.Size
			}
			if e.Note != "" {
				args["note"] = e.Note
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Kind.String(),
				Ph:   "i",
				Ts:   float64(e.At.Sub(t0)) / float64(time.Microsecond),
				PID:  s.PID,
				TID:  tid,
				S:    "t",
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// knownEventNames is the set of names an instant event may legitimately
// carry: the declared trace kinds. The schema gate checks against it so
// a Kind that misses its kindNames entry (rendered "kind(N)") — or an
// exporter regression renaming events — fails CI instead of shipping
// tracks the timeline tooling doesn't recognize.
var knownEventNames = func() map[string]bool {
	m := make(map[string]bool, len(kindNames))
	for _, n := range kindNames {
		m[n] = true
	}
	return m
}()

// CheckChromeTrace validates that r holds Chrome trace-event JSON of the
// shape Perfetto loads: a traceEvents array whose entries all carry a
// name, a known phase, non-negative pid/tid, and (for instant events) a
// declared kind name and a non-negative timestamp. It is the schema gate
// the exporter's tests and the CI smoke check (tools/obscheck) share, so
// "loads in Perfetto" is asserted by one implementation everywhere.
func CheckChromeTrace(r io.Reader) error {
	var t chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return fmt.Errorf("chrome trace: not valid JSON: %w", err)
	}
	if len(t.TraceEvents) == 0 {
		return fmt.Errorf("chrome trace: empty traceEvents array")
	}
	instants := 0
	for i, e := range t.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("chrome trace: event %d has no name", i)
		}
		switch e.Ph {
		case "i", "I": // instant (Perfetto accepts both spellings)
			instants++
			if !knownEventNames[e.Name] {
				return fmt.Errorf("chrome trace: event %d has undeclared kind name %q", i, e.Name)
			}
			if e.Ts < 0 {
				return fmt.Errorf("chrome trace: event %d (%s) has negative ts %v", i, e.Name, e.Ts)
			}
		case "M": // metadata
		default:
			return fmt.Errorf("chrome trace: event %d (%s) has unsupported phase %q", i, e.Name, e.Ph)
		}
		if e.PID < 0 || e.TID < 0 {
			return fmt.Errorf("chrome trace: event %d (%s) has negative pid/tid", i, e.Name)
		}
	}
	if instants == 0 {
		return fmt.Errorf("chrome trace: no instant events, only metadata")
	}
	return nil
}
