// Package mpi assembles simulated cluster nodes into a message-passing
// world with an MPI-flavored API (Isend/Irecv/Wait, Barrier, Bcast,
// Gather), mirroring how the paper's benchmarks drive NewMadeleine
// (nm_isend / nm_swait, one MPI process per node with threads inside,
// §4.3). Each node owns a Marcel scheduler, a PIOMan event server and a
// NewMadeleine engine; nodes share an MX-like inter-node fabric and an
// intra-node shared-memory rail.
package mpi

import (
	"fmt"
	"time"

	"pioman/internal/core"
	"pioman/internal/fabric"
	"pioman/internal/fabric/simfab"
	"pioman/internal/nic"
	"pioman/internal/piom"
	"pioman/internal/sched"
	"pioman/internal/telemetry"
	"pioman/internal/topo"
	"pioman/internal/trace"
	"pioman/internal/wire"
)

// Config describes a simulated cluster.
type Config struct {
	// Nodes is the number of cluster nodes (default 2, the testbed).
	Nodes int
	// Machine is each node's core topology (default dual quad-core Xeon).
	Machine topo.Machine
	// Mode selects the engine mode for every node.
	Mode core.Mode
	// OffloadEager mirrors core.Config.OffloadEager (default true in
	// Multithreaded mode; set by Default*).
	OffloadEager bool
	// AdaptiveOffload mirrors core.Config.AdaptiveOffload: submit inline
	// when no core is idle (the paper's future-work strategy).
	AdaptiveOffload bool
	// Strategy is the optimizer strategy name.
	Strategy string
	// MultirailMin is the smallest rendezvous payload the multirail
	// strategy stripes across bonded rails (core.Config.MultirailMin;
	// zero selects the engine default, 128 KiB).
	MultirailMin int
	// AutoStripeWeights mirrors core.Config.AutoStripeWeights: each
	// engine's maintenance tick continuously re-tunes the live stripe
	// weights from measured per-rail goodput (EWMA over Stats deltas),
	// so a degraded rail sheds stripe share mid-run. Leave it off for
	// benchmarks that calibrate weights themselves (ForceDataRail
	// sweeps).
	AutoStripeWeights bool
	// MX configures the inter-node rail (zero value: nic.MXParams).
	MX nic.Params
	// SHM configures the intra-node rail; nil Name disables it.
	SHM nic.Params
	// ExtraRails adds more inter-node rails (multirail setups).
	ExtraRails []nic.Params
	// Fabrics overrides the packet transport per rail name: a rail with
	// an entry runs over that fabric (e.g. tcpfab.NewLocal for real
	// sockets), one without runs over an in-process wire simulator built
	// from its link model. The world closes supplied fabrics on Close.
	Fabrics map[string]fabric.Fabric
	// EnableBlocking starts the blocking-call fallback watchers.
	EnableBlocking bool
	// NoIdlePolling keeps idle cores out of the active-polling loop, so
	// progress rides on explicit waits, timer tasklets and the blocking
	// watchers alone. The right mode for real transports on hosts
	// without cores to burn: busy-polling against a socket only starves
	// the kernel of the CPU it needs to deliver the packet.
	NoIdlePolling bool
	// WaitSpin bounds how long a Wait polls inline before genuinely
	// blocking on the completion flag. Zero auto-tunes from the host
	// shape via core.AutoWaitSpin: a tight spin on machines with ≥4
	// CPUs, an early yield on small hosts and whenever NoIdlePolling is
	// set (spinning there only starves whoever must make the progress).
	WaitSpin time.Duration
	// WatcherCheck is the blocking watcher's cadence — the timeout of
	// each blocking receive and how often the watcher re-evaluates
	// idleness. Zero auto-tunes via piom.AutoBlockingCheck.
	WatcherCheck time.Duration
	// TimerPeriod drives the scheduler timer trigger (0 disables).
	TimerPeriod time.Duration
	// PeerDeadline mirrors core.Config.PeerDeadline: how long the engine
	// keeps replaying toward a silent peer before declaring the rank dead
	// and completing every pending request to it with core.ErrPeerDead
	// (docs/CLUSTER.md). Zero disables engine-local death detection;
	// cluster-launched worlds (JoinCluster) still get registry-driven
	// verdicts through MarkPeerDead.
	PeerDeadline time.Duration
	// TraceCapacity, if positive, attaches an event recorder per node.
	TraceCapacity int
	// Metrics, if non-nil, registers every local node's engine, rails,
	// and event server with the registry (plus the process-wide buffer
	// pool, once per registry), under the "node<rank>.*" /
	// "process.bufpool.*" names docs/OBSERVABILITY.md catalogs. The
	// registry is typically served over HTTP with telemetry.Serve
	// (pingpong -metrics) and watched with cmd/nmtop.
	Metrics *telemetry.Registry
}

// DefaultMultithreaded returns the PIOMan-enabled configuration of the
// paper's testbed: n dual quad-core nodes, MX + shared memory rails.
func DefaultMultithreaded(n int) Config {
	return Config{
		Nodes:          n,
		Mode:           core.Multithreaded,
		OffloadEager:   true,
		MX:             nic.MXParams(),
		SHM:            nic.SHMParams(),
		EnableBlocking: true,
	}
}

// DefaultSequential returns the original-NewMadeleine baseline on the same
// hardware.
func DefaultSequential(n int) Config {
	return Config{
		Nodes: n,
		Mode:  core.Sequential,
		MX:    nic.MXParams(),
		SHM:   nic.SHMParams(),
	}
}

// World is a running cluster: every rank in-process over simulated or
// real fabrics (NewWorld), or one local rank of a multi-process cluster
// whose peers live in other OS processes (NewDistributed).
type World struct {
	cfg   Config
	size  int
	nodes []*Node // indexed by rank; remote ranks are nil
	fabs  []fabric.Fabric
}

// railSet resolves the configured rail parameter list.
func railSet(cfg *Config) []nic.Params {
	if cfg.MX.Name == "" {
		cfg.MX = nic.MXParams()
	}
	railParams := []nic.Params{cfg.MX}
	if cfg.SHM.Name != "" {
		railParams = append(railParams, cfg.SHM)
	}
	return append(railParams, cfg.ExtraRails...)
}

// NewWorld builds and starts a cluster with every rank in this process.
func NewWorld(cfg Config) *World {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	railParams := railSet(&cfg)
	fabrics := make(map[string]fabric.Fabric, len(railParams))
	for _, rp := range railParams {
		if _, dup := fabrics[rp.Name]; dup {
			panic(fmt.Sprintf("mpi: duplicate rail name %q", rp.Name))
		}
		if f := cfg.Fabrics[rp.Name]; f != nil {
			if f.Nodes() < cfg.Nodes {
				panic(fmt.Sprintf("mpi: fabric for rail %q spans %d nodes, world needs %d", rp.Name, f.Nodes(), cfg.Nodes))
			}
			fabrics[rp.Name] = f
		} else {
			fabrics[rp.Name] = simfab.New(wire.NewFabric(cfg.Nodes, rp.Link))
		}
	}

	// A Fabrics key matching no rail would silently fall back to the
	// simulator — every "real transport" measurement would quietly run
	// simulated, and the supplied fabric's listeners would leak.
	for name := range cfg.Fabrics {
		if _, ok := fabrics[name]; !ok {
			panic(fmt.Sprintf("mpi: Fabrics entry %q matches no configured rail", name))
		}
	}

	w := &World{cfg: cfg, size: cfg.Nodes, nodes: make([]*Node, cfg.Nodes)}
	for _, rp := range railParams {
		w.fabs = append(w.fabs, fabrics[rp.Name])
	}
	for rank := 0; rank < cfg.Nodes; rank++ {
		rails := make([]*nic.Driver, 0, len(railParams))
		for _, rp := range railParams {
			ep, err := fabrics[rp.Name].Endpoint(rank)
			if err != nil {
				panic(fmt.Sprintf("mpi: rail %q endpoint %d: %v", rp.Name, rank, err))
			}
			rails = append(rails, nic.New(rp, ep))
		}
		w.nodes[rank] = w.startNode(rank, rails)
	}
	return w
}

// NewDistributed builds the local rank of a cluster whose other ranks run
// in separate OS processes: a single rail over ep (a real transport such
// as fabric/tcpfab). The world's size is ep.Nodes(); Node(r) for a remote
// rank returns nil, and collectives work purely through the transport.
func NewDistributed(cfg Config, rail nic.Params, ep fabric.Endpoint) *World {
	if rail.Name == "" {
		rail = nic.RealParams()
	}
	return NewDistributedBonded(cfg, []Rail{{Params: rail, Ep: ep}})
}

// Rail couples rail parameters with a live endpoint: one physical rail of
// a world bonded over real transports (NewDistributedBonded).
type Rail struct {
	// Params describes the rail driver (thresholds, MTU, stripe weight).
	Params nic.Params
	// Ep is the transport endpoint the rail submits to.
	Ep fabric.Endpoint
}

// NewDistributedBonded builds the local rank of a multi-process cluster
// bonded over several heterogeneous real fabrics at once — the paper's
// MX + shared-memory configuration with, e.g., rails[0] over tcpfab and
// rails[1] over shmfab. rails[0] is the default rail (eager traffic and
// the rendezvous handshake); with Config.Strategy "multirail" the engine
// stripes large rendezvous payloads across every rail with a positive
// stripe weight. All endpoints must agree on rank and cluster size, rail
// names must be unique, and each rail's MTU must fit its fabric's frame
// ceiling — all validated here, at construction, instead of surfacing as
// mid-transfer losses. The engine owns the endpoints' lifecycle from here
// on: World.Close closes them in reverse rail order (secondary rails
// first, the default rail — which carries the shutdown handshakes — last).
func NewDistributedBonded(cfg Config, rails []Rail) *World {
	if len(rails) == 0 {
		panic("mpi: bonded world needs at least one rail")
	}
	self, nodes := rails[0].Ep.Self(), rails[0].Ep.Nodes()
	seen := make(map[string]bool, len(rails))
	for _, r := range rails {
		if r.Params.Name == "" {
			panic("mpi: bonded rail needs a name")
		}
		if seen[r.Params.Name] {
			panic(fmt.Sprintf("mpi: duplicate rail name %q", r.Params.Name))
		}
		seen[r.Params.Name] = true
		if r.Ep == nil {
			panic(fmt.Sprintf("mpi: rail %q has no endpoint", r.Params.Name))
		}
		if r.Ep.Self() != self || r.Ep.Nodes() != nodes {
			panic(fmt.Sprintf("mpi: rail %q endpoint is rank %d of %d, rail %q is rank %d of %d",
				r.Params.Name, r.Ep.Self(), r.Ep.Nodes(), rails[0].Params.Name, self, nodes))
		}
	}
	cfg.Nodes = nodes
	cfg.MX = rails[0].Params
	cfg.SHM = nic.Params{}
	cfg.ExtraRails = nil
	w := &World{cfg: cfg, size: nodes, nodes: make([]*Node, nodes)}
	drivers := make([]*nic.Driver, 0, len(rails))
	for _, r := range rails {
		drivers = append(drivers, nic.New(r.Params, r.Ep))
	}
	w.nodes[self] = w.startNode(self, drivers)
	return w
}

// startNode assembles and starts one node: Marcel scheduler, PIOMan event
// server (Multithreaded mode), NewMadeleine engine over rails.
func (w *World) startNode(rank int, rails []*nic.Driver) *Node {
	cfg := &w.cfg
	if cfg.Machine.NumCores() == 0 {
		cfg.Machine = topo.DualQuadXeon()
	}
	sch := sched.New(sched.Config{
		Machine:     cfg.Machine,
		TimerPeriod: cfg.TimerPeriod,
	})
	var srv *piom.Server
	if cfg.Mode == core.Multithreaded {
		srv = piom.NewServer(sch, piom.Config{
			EnableIdleHook: !cfg.NoIdlePolling,
			EnableBlocking: cfg.EnableBlocking,
			BlockingCheck:  cfg.WatcherCheck,
		})
	}
	waitSpin := cfg.WaitSpin
	if waitSpin <= 0 {
		waitSpin = core.AutoWaitSpin(cfg.NoIdlePolling)
	}
	var rec *trace.Recorder
	if cfg.TraceCapacity > 0 {
		rec = trace.NewRecorder(cfg.TraceCapacity)
	}
	eng := core.New(rank, sch, srv, rails, core.Config{
		Mode:              cfg.Mode,
		OffloadEager:      cfg.OffloadEager,
		AdaptiveOffload:   cfg.AdaptiveOffload,
		Strategy:          cfg.Strategy,
		MultirailMin:      cfg.MultirailMin,
		AutoStripeWeights: cfg.AutoStripeWeights,
		WaitSpin:          waitSpin,
		PeerDeadline:      cfg.PeerDeadline,
		Trace:             rec,
		Metrics:           cfg.Metrics,
		MetricsPeers:      cfg.Nodes,
	})
	if cfg.Metrics != nil {
		registerNodeMetrics(cfg.Metrics, rank, srv)
	}
	n := &Node{world: w, rank: rank, Sch: sch, Srv: srv, Eng: eng, Trace: rec}
	if srv != nil {
		srv.Start()
	}
	return n
}

// Size returns the number of nodes in the cluster (including, for a
// distributed world, ranks hosted by other processes).
func (w *World) Size() int { return w.size }

// Node returns the node with the given rank, or nil when that rank lives
// in another process (distributed worlds).
func (w *World) Node(rank int) *Node { return w.nodes[rank] }

// Mode reports the engine mode of the world.
func (w *World) Mode() core.Mode { return w.cfg.Mode }

// RunAll spawns fn as one thread on every local node and joins them all.
// The rank is available via Proc.Rank.
func (w *World) RunAll(fn func(*Proc)) {
	ths := make([]*sched.Thread, 0, len(w.nodes))
	for _, n := range w.nodes {
		if n == nil {
			continue
		}
		node := n
		ths = append(ths, node.Sch.Spawn(fmt.Sprintf("rank%d", node.rank), func(th *sched.Thread) {
			fn(&Proc{Node: node, Th: th})
		}))
	}
	for _, th := range ths {
		th.Join()
	}
}

// Close shuts the cluster down: event servers stop, rail transports close
// (waking anything blocked on a socket), schedulers wind down. All
// spawned threads must have completed.
func (w *World) Close() {
	for _, n := range w.nodes {
		if n == nil {
			continue
		}
		if n.Srv != nil {
			n.Srv.Stop()
		}
		n.Eng.Close()
		n.Sch.Shutdown()
	}
	// Close the fabrics themselves: Engine.Close only reached the
	// endpoints this world's ranks own, and a supplied fabric may span
	// more ranks (whose listeners would otherwise leak).
	for _, f := range w.fabs {
		f.Close()
	}
}
