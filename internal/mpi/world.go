// Package mpi assembles simulated cluster nodes into a message-passing
// world with an MPI-flavored API (Isend/Irecv/Wait, Barrier, Bcast,
// Gather), mirroring how the paper's benchmarks drive NewMadeleine
// (nm_isend / nm_swait, one MPI process per node with threads inside,
// §4.3). Each node owns a Marcel scheduler, a PIOMan event server and a
// NewMadeleine engine; nodes share an MX-like inter-node fabric and an
// intra-node shared-memory rail.
package mpi

import (
	"fmt"
	"time"

	"pioman/internal/core"
	"pioman/internal/nic"
	"pioman/internal/piom"
	"pioman/internal/sched"
	"pioman/internal/topo"
	"pioman/internal/trace"
	"pioman/internal/wire"
)

// Config describes a simulated cluster.
type Config struct {
	// Nodes is the number of cluster nodes (default 2, the testbed).
	Nodes int
	// Machine is each node's core topology (default dual quad-core Xeon).
	Machine topo.Machine
	// Mode selects the engine mode for every node.
	Mode core.Mode
	// OffloadEager mirrors core.Config.OffloadEager (default true in
	// Multithreaded mode; set by Default*).
	OffloadEager bool
	// AdaptiveOffload mirrors core.Config.AdaptiveOffload: submit inline
	// when no core is idle (the paper's future-work strategy).
	AdaptiveOffload bool
	// Strategy is the optimizer strategy name.
	Strategy string
	// MX configures the inter-node rail (zero value: nic.MXParams).
	MX nic.Params
	// SHM configures the intra-node rail; nil Name disables it.
	SHM nic.Params
	// ExtraRails adds more inter-node rails (multirail setups).
	ExtraRails []nic.Params
	// EnableBlocking starts the blocking-call fallback watchers.
	EnableBlocking bool
	// TimerPeriod drives the scheduler timer trigger (0 disables).
	TimerPeriod time.Duration
	// TraceCapacity, if positive, attaches an event recorder per node.
	TraceCapacity int
}

// DefaultMultithreaded returns the PIOMan-enabled configuration of the
// paper's testbed: n dual quad-core nodes, MX + shared memory rails.
func DefaultMultithreaded(n int) Config {
	return Config{
		Nodes:          n,
		Mode:           core.Multithreaded,
		OffloadEager:   true,
		MX:             nic.MXParams(),
		SHM:            nic.SHMParams(),
		EnableBlocking: true,
	}
}

// DefaultSequential returns the original-NewMadeleine baseline on the same
// hardware.
func DefaultSequential(n int) Config {
	return Config{
		Nodes: n,
		Mode:  core.Sequential,
		MX:    nic.MXParams(),
		SHM:   nic.SHMParams(),
	}
}

// World is a running simulated cluster.
type World struct {
	cfg   Config
	nodes []*Node
}

// NewWorld builds and starts a cluster.
func NewWorld(cfg Config) *World {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Machine.NumCores() == 0 {
		cfg.Machine = topo.DualQuadXeon()
	}
	if cfg.MX.Name == "" {
		cfg.MX = nic.MXParams()
	}
	w := &World{cfg: cfg}

	railParams := []nic.Params{cfg.MX}
	if cfg.SHM.Name != "" {
		railParams = append(railParams, cfg.SHM)
	}
	railParams = append(railParams, cfg.ExtraRails...)
	fabrics := make(map[string]*wire.Fabric, len(railParams))
	for _, rp := range railParams {
		if _, dup := fabrics[rp.Name]; dup {
			panic(fmt.Sprintf("mpi: duplicate rail name %q", rp.Name))
		}
		fabrics[rp.Name] = wire.NewFabric(cfg.Nodes, rp.Link)
	}

	for rank := 0; rank < cfg.Nodes; rank++ {
		sch := sched.New(sched.Config{
			Machine:     cfg.Machine,
			TimerPeriod: cfg.TimerPeriod,
		})
		var srv *piom.Server
		if cfg.Mode == core.Multithreaded {
			srv = piom.NewServer(sch, piom.Config{
				EnableIdleHook: true,
				EnableBlocking: cfg.EnableBlocking,
			})
		}
		var rec *trace.Recorder
		if cfg.TraceCapacity > 0 {
			rec = trace.NewRecorder(cfg.TraceCapacity)
		}
		rails := make([]*nic.Driver, 0, len(railParams))
		for _, rp := range railParams {
			rails = append(rails, nic.New(rp, fabrics[rp.Name], rank))
		}
		eng := core.New(rank, sch, srv, rails, core.Config{
			Mode:            cfg.Mode,
			OffloadEager:    cfg.OffloadEager,
			AdaptiveOffload: cfg.AdaptiveOffload,
			Strategy:        cfg.Strategy,
			Trace:           rec,
		})
		n := &Node{world: w, rank: rank, Sch: sch, Srv: srv, Eng: eng, Trace: rec}
		if srv != nil {
			srv.Start()
		}
		w.nodes = append(w.nodes, n)
	}
	return w
}

// Size returns the number of nodes.
func (w *World) Size() int { return len(w.nodes) }

// Node returns the node with the given rank.
func (w *World) Node(rank int) *Node { return w.nodes[rank] }

// Mode reports the engine mode of the world.
func (w *World) Mode() core.Mode { return w.cfg.Mode }

// RunAll spawns fn as one thread on every node and joins them all. The
// rank is available via Proc.Rank.
func (w *World) RunAll(fn func(*Proc)) {
	ths := make([]*sched.Thread, len(w.nodes))
	for i, n := range w.nodes {
		node := n
		ths[i] = node.Sch.Spawn(fmt.Sprintf("rank%d", node.rank), func(th *sched.Thread) {
			fn(&Proc{Node: node, Th: th})
		})
	}
	for _, th := range ths {
		th.Join()
	}
}

// Close shuts the cluster down. All spawned threads must have completed.
func (w *World) Close() {
	for _, n := range w.nodes {
		if n.Srv != nil {
			n.Srv.Stop()
		}
		n.Sch.Shutdown()
	}
}
