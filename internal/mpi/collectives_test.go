package mpi

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"pioman/internal/core"
)

func TestSendrecvRing(t *testing.T) {
	const n = 4
	w := fastWorld(t, n, core.Multithreaded)
	var mu sync.Mutex
	got := map[int]byte{}
	w.RunAll(func(p *Proc) {
		right := (p.Rank() + 1) % n
		left := (p.Rank() + n - 1) % n
		out := []byte{byte(p.Rank())}
		in := make([]byte, 1)
		cnt, from := p.Sendrecv(right, 55, out, left, in)
		if cnt != 1 || from != left {
			t.Errorf("rank %d: cnt=%d from=%d", p.Rank(), cnt, from)
		}
		mu.Lock()
		got[p.Rank()] = in[0]
		mu.Unlock()
	})
	for r := 0; r < n; r++ {
		want := byte((r + n - 1) % n)
		if got[r] != want {
			t.Errorf("rank %d received %d, want %d", r, got[r], want)
		}
	}
}

func TestScatter(t *testing.T) {
	const n = 4
	w := fastWorld(t, n, core.Multithreaded)
	w.RunAll(func(p *Proc) {
		var parts [][]byte
		if p.Rank() == 1 {
			parts = make([][]byte, n)
			for i := range parts {
				parts[i] = []byte{byte(100 + i)}
			}
		}
		buf := make([]byte, 1)
		p.Scatter(1, parts, buf)
		if buf[0] != byte(100+p.Rank()) {
			t.Errorf("rank %d got %d", p.Rank(), buf[0])
		}
	})
}

func TestScatterWrongPartsPanics(t *testing.T) {
	w := fastWorld(t, 2, core.Multithreaded)
	caught := make(chan bool, 1)
	w.Node(0).Run(func(p *Proc) {
		defer func() { caught <- recover() != nil }()
		p.Scatter(0, make([][]byte, 1), make([]byte, 1))
	})
	if !<-caught {
		t.Fatal("expected panic")
	}
	// Unblock the world: nothing was sent, nothing pending.
}

func TestAllgather(t *testing.T) {
	const n = 3
	w := fastWorld(t, n, core.Multithreaded)
	var mu sync.Mutex
	results := map[int][][]byte{}
	w.RunAll(func(p *Proc) {
		parts := make([][]byte, n)
		for i := range parts {
			parts[i] = make([]byte, 2)
		}
		contrib := []byte{byte(p.Rank()), byte(p.Rank() * 2)}
		p.Allgather(contrib, parts)
		mu.Lock()
		results[p.Rank()] = parts
		mu.Unlock()
	})
	for r := 0; r < n; r++ {
		for i := 0; i < n; i++ {
			want := []byte{byte(i), byte(i * 2)}
			if !bytes.Equal(results[r][i], want) {
				t.Errorf("rank %d parts[%d] = %v, want %v", r, i, results[r][i], want)
			}
		}
	}
}

func TestAllgatherWrongPartsPanics(t *testing.T) {
	w := fastWorld(t, 2, core.Multithreaded)
	caught := make(chan bool, 1)
	w.Node(0).Run(func(p *Proc) {
		defer func() { caught <- recover() != nil }()
		p.Allgather([]byte{1}, make([][]byte, 5))
	})
	if !<-caught {
		t.Fatal("expected panic")
	}
}

func TestProcProbe(t *testing.T) {
	w := fastWorld(t, 2, core.Multithreaded)
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		w.Node(0).Run(func(p *Proc) {
			p.Send(1, 21, []byte("probe me"))
		})
	}()
	var info core.ProbeInfo
	w.Node(1).Run(func(p *Proc) {
		info = p.Probe(0, 21)
		if info.Len != 8 {
			t.Errorf("probe len = %d", info.Len)
		}
		buf := make([]byte, 8)
		p.Recv(0, 21, buf)
	})
	<-senderDone
}

func TestProcIprobeMiss(t *testing.T) {
	w := fastWorld(t, 2, core.Multithreaded)
	w.Node(0).Run(func(p *Proc) {
		if _, ok := p.Iprobe(1, 3); ok {
			t.Error("Iprobe matched on an empty pool")
		}
	})
}

func TestProcWaitAnyRecv(t *testing.T) {
	w := fastWorld(t, 2, core.Multithreaded)
	done := make(chan int, 1)
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		w.Node(1).Run(func(p *Proc) {
			a := p.Irecv(0, 1, make([]byte, 4))
			b := p.Irecv(0, 2, make([]byte, 4))
			idx := p.WaitAnyRecv(a, b)
			done <- idx
			// Drain the other request.
			if idx == 0 {
				p.WaitRecv(b)
			} else {
				p.WaitRecv(a)
			}
		})
	}()
	time.Sleep(2 * time.Millisecond)
	// Satisfy only the tag-2 request first so the outcome is
	// deterministic; the tag-1 message follows to unblock the drain.
	w.Node(0).Run(func(p *Proc) {
		p.Send(1, 2, []byte("b"))
	})
	var idx int
	select {
	case idx = <-done:
		if idx != 1 {
			t.Fatalf("WaitAnyRecv = %d, want 1", idx)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitAnyRecv never returned")
	}
	w.Node(0).Run(func(p *Proc) {
		p.Send(1, 1, []byte("a"))
	})
	select {
	case <-finished:
	case <-time.After(2 * time.Second):
		t.Fatal("drain never finished")
	}
}
