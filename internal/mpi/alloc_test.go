package mpi_test

import (
	"runtime"
	"testing"

	"pioman/internal/core"
	"pioman/internal/fabric"
	"pioman/internal/fabric/shmfab"
	"pioman/internal/mpi"
	"pioman/internal/nic"
	"pioman/internal/telemetry"
	"pioman/internal/testenv"
)

// engineRoundTripAllocs measures the steady-state malloc count of a
// 4 KiB eager round trip through the full engine (Isend/Irecv, strategy
// queue, nic driver, shared-memory rings, matching, delivery) with or
// without a telemetry registry attached. It runs the Sequential engine —
// progress is driven inline by the two communicating threads, so there
// are no background pollers allocating on their own schedule — and
// measures the process-wide malloc count around a long measured window,
// which charges BOTH ranks' halves of every exchange to the budget.
// Since the engine's progress passes drain arrivals through the batched
// receive path (PollBatch into the engine's construction-sized batch
// buffer), this also pins that the batched path stays on budget.
func engineRoundTripAllocs(t *testing.T, reg *telemetry.Registry) float64 {
	t.Helper()
	shm, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := mpi.Config{
		Nodes: 2,
		Mode:  core.Sequential,
		MX:    nic.ShmParams(),
		Fabrics: map[string]fabric.Fabric{
			"shm": shm,
		},
		Metrics: reg,
	}
	w := mpi.NewWorld(cfg)
	defer w.Close()

	const (
		warm  = 100
		meas  = 500
		size  = 4 << 10
		tagRT = 5
	)
	var perOp float64
	w.RunAll(func(p *mpi.Proc) {
		msg := make([]byte, size)
		for i := range msg {
			msg[i] = byte(i*5 + 1)
		}
		buf := make([]byte, size)
		p.Barrier()
		var m0, m1 runtime.MemStats
		for it := 0; it < warm+meas; it++ {
			if it == warm && p.Rank() == 0 {
				runtime.ReadMemStats(&m0)
			}
			if p.Rank() == 0 {
				p.Send(1, tagRT, msg)
				p.Recv(1, tagRT, buf)
			} else {
				p.Recv(0, tagRT, buf)
				p.Send(0, tagRT, msg)
			}
		}
		if p.Rank() == 0 {
			runtime.ReadMemStats(&m1)
			perOp = float64(m1.Mallocs-m0.Mallocs) / meas
		}
		p.Barrier()
	})
	return perOp
}

// budget is allocs per round trip — two sends plus two receives across
// both ranks. The raw fabric path is allocation-free (internal/fabric's
// alloc tests pin that at ≤2); the engine adds scheduler yields and
// bookkeeping that allocate rarely, so the end-to-end ceiling stays low
// but not zero. The telemetry-on test asserts the SAME budget: metric
// recording must be allocation-free by construction.
const engineAllocBudget = 2.0

// TestEngineEagerRoundTripAllocs asserts the end-to-end budget of the
// zero-allocation hot path at the top of the stack, unmetered.
func TestEngineEagerRoundTripAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	perOp := engineRoundTripAllocs(t, nil)
	t.Logf("engine 4KiB eager round trip: %.2f allocs/op (budget %.1f)", perOp, engineAllocBudget)
	if perOp > engineAllocBudget {
		t.Errorf("engine 4KiB eager round trip allocates %.2f/op, budget %.1f", perOp, engineAllocBudget)
	}
}

// TestEngineEagerRoundTripAllocsMetered repeats the measurement with a
// full telemetry registry attached (engine + rails + per-peer counters +
// occupancy histograms live) and holds the hot path to the same
// allocation budget: turning observability on must not cost the
// zero-allocation property the engine's hot path is built around. It
// also sanity-checks that the registry actually saw the traffic, so the
// assertion cannot pass vacuously with metrics silently detached.
func TestEngineEagerRoundTripAllocsMetered(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	reg := telemetry.NewRegistry()
	perOp := engineRoundTripAllocs(t, reg)
	t.Logf("metered engine 4KiB eager round trip: %.2f allocs/op (budget %.1f)", perOp, engineAllocBudget)
	if perOp > engineAllocBudget {
		t.Errorf("metered engine round trip allocates %.2f/op, budget %.1f", perOp, engineAllocBudget)
	}
	snap := reg.Snapshot()
	if sent := snap.Value("node0.engine.sends_posted"); sent < 500 {
		t.Errorf("registry saw only %d sends from node0, metering appears detached", sent)
	}
	if got := snap.Value("node0.peer.1.sent_msgs"); got == 0 {
		t.Error("per-peer counter node0.peer.1.sent_msgs recorded nothing")
	}
	if occ := snap.Get("node0.rail.shm.batch_occupancy"); occ == nil || occ.Hist.Count == 0 {
		t.Error("rail occupancy histogram recorded nothing")
	}
}
