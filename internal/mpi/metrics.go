package mpi

import (
	"fmt"

	"pioman/internal/fabric/bufpool"
	"pioman/internal/piom"
	"pioman/internal/telemetry"
)

// registerNodeMetrics registers the per-node sources the engine itself
// does not own — the PIOMan event server's counters — under
// "node<rank>.piom.*", plus the process-global buffer pool counters
// (once per registry: in-process worlds run several nodes over one pool,
// and the second registration would otherwise be a duplicate-name
// panic). The engine and rail registrations happen inside core.New.
func registerNodeMetrics(reg *telemetry.Registry, rank int, srv *piom.Server) {
	if !reg.Registered("process.bufpool.hits") {
		bufpool.RegisterMetrics(reg)
	}
	if srv == nil {
		return
	}
	p := fmt.Sprintf("node%d.piom", rank)
	reg.RegisterCounter(p+".polls", "event-server progress passes", func() uint64 { return srv.Stats().Polls })
	reg.RegisterCounter(p+".worked", "progress passes that did work", func() uint64 { return srv.Stats().Worked })
	reg.RegisterCounter(p+".blocking_wakeups", "events processed by the blocking watcher", func() uint64 { return srv.Stats().BlockingWakeups })
}
