package mpi

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"

	"pioman/internal/core"
	"pioman/internal/nic"
	"pioman/internal/topo"
	"pioman/internal/wire"
)

// fastWorld builds a small world with negligible modeled costs.
func fastWorld(t *testing.T, n int, mode core.Mode) *World {
	t.Helper()
	mx := nic.MXParams()
	mx.Link = wire.LinkParams{Latency: 0, BytesPerUS: 1e12}
	mx.Cost.CopyBytesPerUS = 1e12
	mx.Cost.PIOBytesPerUS = 1e12
	mx.Cost.SubmitOverhead = 0
	mx.Cost.DMASetup = 0
	shm := nic.SHMParams()
	shm.Link = wire.LinkParams{Latency: 0, BytesPerUS: 1e12}
	shm.Cost = mx.Cost
	shm.RecvCopies = false
	cfg := Config{
		Nodes:        n,
		Machine:      topo.Machine{Sockets: 1, CoresPerSocket: 4},
		Mode:         mode,
		OffloadEager: mode == core.Multithreaded,
		MX:           mx,
		SHM:          shm,
	}
	w := NewWorld(cfg)
	t.Cleanup(w.Close)
	return w
}

func TestWorldDefaults(t *testing.T) {
	w := NewWorld(Config{})
	defer w.Close()
	if w.Size() != 2 {
		t.Fatalf("Size = %d, want 2", w.Size())
	}
	if w.Node(0).Sch.NumCores() != 8 {
		t.Fatalf("cores = %d, want 8", w.Node(0).Sch.NumCores())
	}
}

func TestDefaultPresets(t *testing.T) {
	mt := DefaultMultithreaded(3)
	if mt.Mode != core.Multithreaded || !mt.OffloadEager || mt.Nodes != 3 {
		t.Fatalf("bad MT preset %+v", mt)
	}
	seq := DefaultSequential(2)
	if seq.Mode != core.Sequential {
		t.Fatalf("bad seq preset %+v", seq)
	}
}

func TestDuplicateRailPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := Config{Nodes: 2, MX: nic.MXParams(), ExtraRails: []nic.Params{nic.MXParams()}}
	NewWorld(cfg)
}

func TestSendRecvAcrossNodes(t *testing.T) {
	for _, mode := range []core.Mode{core.Sequential, core.Multithreaded} {
		t.Run(mode.String(), func(t *testing.T) {
			w := fastWorld(t, 2, mode)
			w.RunAll(func(p *Proc) {
				if p.Rank() == 0 {
					p.Send(1, 1, []byte("ping"))
					buf := make([]byte, 8)
					n, from := p.Recv(1, 2, buf)
					if string(buf[:n]) != "pong" || from != 1 {
						t.Errorf("rank0 got %q from %d", buf[:n], from)
					}
				} else {
					buf := make([]byte, 8)
					n, _ := p.Recv(0, 1, buf)
					if string(buf[:n]) != "ping" {
						t.Errorf("rank1 got %q", buf[:n])
					}
					p.Send(0, 2, []byte("pong"))
				}
			})
		})
	}
}

func TestBarrier(t *testing.T) {
	w := fastWorld(t, 4, core.Multithreaded)
	var mu sync.Mutex
	phase := make(map[int]int)
	for round := 0; round < 3; round++ {
		w.RunAll(func(p *Proc) {
			mu.Lock()
			phase[p.Rank()]++
			mine := phase[p.Rank()]
			mu.Unlock()
			p.Barrier()
			// After the barrier, every rank must have entered this round.
			mu.Lock()
			for r := 0; r < p.Size(); r++ {
				if phase[r] < mine {
					t.Errorf("rank %d passed barrier before rank %d entered round %d", p.Rank(), r, mine)
				}
			}
			mu.Unlock()
		})
	}
}

func TestBarrierSingleNode(t *testing.T) {
	w := fastWorld(t, 1, core.Multithreaded)
	w.RunAll(func(p *Proc) { p.Barrier() }) // must not deadlock
}

func TestBcast(t *testing.T) {
	w := fastWorld(t, 3, core.Multithreaded)
	data := []byte("broadcast payload")
	w.RunAll(func(p *Proc) {
		buf := make([]byte, len(data))
		if p.Rank() == 1 {
			copy(buf, data)
		}
		p.Bcast(1, buf)
		if !bytes.Equal(buf, data) {
			t.Errorf("rank %d got %q", p.Rank(), buf)
		}
	})
}

func TestGather(t *testing.T) {
	w := fastWorld(t, 4, core.Multithreaded)
	w.RunAll(func(p *Proc) {
		contrib := []byte{byte(p.Rank() * 10)}
		var parts [][]byte
		if p.Rank() == 0 {
			parts = make([][]byte, p.Size())
			for i := range parts {
				parts[i] = make([]byte, 1)
			}
		}
		p.Gather(0, contrib, parts)
		if p.Rank() == 0 {
			for i, part := range parts {
				if part[0] != byte(i*10) {
					t.Errorf("parts[%d] = %d, want %d", i, part[0], i*10)
				}
			}
		}
	})
}

func TestGatherWrongPartsPanics(t *testing.T) {
	w := fastWorld(t, 2, core.Multithreaded)
	done := make(chan bool, 1)
	w.Node(1).Run(func(p *Proc) { p.Send(0, collTag(tagGather, 1), []byte{1}) })
	w.Node(0).Run(func(p *Proc) {
		defer func() { done <- recover() != nil }()
		p.Gather(0, []byte{0}, make([][]byte, 1)) // wrong size
	})
	if !<-done {
		t.Fatal("expected panic from mis-sized parts")
	}
}

func TestAllReduceSum(t *testing.T) {
	w := fastWorld(t, 4, core.Multithreaded)
	want := 0.0
	for r := 0; r < 4; r++ {
		want += float64(r) + 0.5
	}
	var mu sync.Mutex
	got := map[int]float64{}
	w.RunAll(func(p *Proc) {
		s := p.AllReduceSum(float64(p.Rank()) + 0.5)
		mu.Lock()
		got[p.Rank()] = s
		mu.Unlock()
	})
	for r, s := range got {
		if math.Abs(s-want) > 1e-9 {
			t.Errorf("rank %d sum = %v, want %v", r, s, want)
		}
	}
}

func TestAllReduceSumI64(t *testing.T) {
	w := fastWorld(t, 4, core.Multithreaded)
	var want int64
	for r := 0; r < 4; r++ {
		want += int64(r)*1_000_000_007 + 1
	}
	var mu sync.Mutex
	got := map[int]int64{}
	w.RunAll(func(p *Proc) {
		s := p.AllReduceSumI64(int64(p.Rank())*1_000_000_007 + 1)
		mu.Lock()
		got[p.Rank()] = s
		mu.Unlock()
	})
	for r, s := range got {
		if s != want {
			t.Errorf("rank %d sum = %d, want %d", r, s, want)
		}
	}
}

func TestIntraNodeThreads(t *testing.T) {
	// Two threads on the same node exchange through the shm rail.
	w := fastWorld(t, 2, core.Multithreaded)
	n := w.Node(0)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		n.Run(func(p *Proc) {
			p.Send(0, 77, []byte("intra"))
		})
	}()
	var got []byte
	go func() {
		defer wg.Done()
		n.Run(func(p *Proc) {
			buf := make([]byte, 8)
			cnt, _ := p.Recv(0, 77, buf)
			got = buf[:cnt]
		})
	}()
	wg.Wait()
	if string(got) != "intra" {
		t.Fatalf("intra-node exchange got %q", got)
	}
}

func TestLargeTransferAcrossWorld(t *testing.T) {
	w := fastWorld(t, 2, core.Multithreaded)
	const size = 256 << 10
	src := make([]byte, size)
	for i := range src {
		src[i] = byte(i * 13)
	}
	w.RunAll(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 5, src)
		} else {
			buf := make([]byte, size)
			cnt, _ := p.Recv(0, 5, buf)
			if cnt != size || !bytes.Equal(buf, src) {
				t.Error("large transfer corrupted")
			}
		}
	})
}

func TestManyThreadsPerNodeExchange(t *testing.T) {
	// The Table-1 communication scheme in miniature: each node runs 4
	// threads exchanging with neighbors intra- and inter-node.
	w := fastWorld(t, 2, core.Multithreaded)
	const perNode = 4
	var wg sync.WaitGroup
	for node := 0; node < 2; node++ {
		for th := 0; th < perNode; th++ {
			wg.Add(1)
			go func(node, th int) {
				defer wg.Done()
				w.Node(node).Run(func(p *Proc) {
					peerNode := 1 - node
					tag := 100 + th
					s := p.Isend(peerNode, tag, []byte{byte(node), byte(th)})
					buf := make([]byte, 2)
					r := p.Irecv(peerNode, tag, buf)
					p.WaitSend(s)
					p.WaitRecv(r)
					if buf[0] != byte(peerNode) || buf[1] != byte(th) {
						t.Errorf("node %d thread %d got %v", node, th, buf)
					}
				})
			}(node, th)
		}
	}
	wg.Wait()
}

func TestRunAllRanks(t *testing.T) {
	w := fastWorld(t, 3, core.Multithreaded)
	var mu sync.Mutex
	seen := map[int]bool{}
	w.RunAll(func(p *Proc) {
		mu.Lock()
		seen[p.Rank()] = true
		mu.Unlock()
		if p.Size() != 3 {
			t.Errorf("Size = %d", p.Size())
		}
	})
	if len(seen) != 3 {
		t.Fatalf("ranks seen: %v", seen)
	}
}

func TestComputeOnProc(t *testing.T) {
	w := fastWorld(t, 1, core.Multithreaded)
	w.RunAll(func(p *Proc) {
		start := time.Now()
		p.Compute(200 * time.Microsecond)
		if el := time.Since(start); el < 200*time.Microsecond {
			t.Errorf("Compute returned after %v", el)
		}
	})
}
