package mpi

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"pioman/internal/cluster"
	"pioman/internal/fabric/tcpfab"
	"pioman/internal/nic"
)

// Environment contract between cmd/nmrun and cluster-launched binaries.
// nmrun exports these to every child; JoinCluster reads them. A binary
// can also be launched by hand against a standalone registry by setting
// them in the shell.
const (
	// EnvRank is this process's rank.
	EnvRank = "PIOMAN_RANK"
	// EnvNranks is the world size.
	EnvNranks = "PIOMAN_NRANKS"
	// EnvRegistry is the registry's TCP address.
	EnvRegistry = "PIOMAN_REGISTRY"
	// EnvHostRegistry, when "1", makes this rank embed the registry
	// (listening on EnvRegistry) before joining it — nmrun's default
	// mode, where rank 0 hosts the control plane.
	EnvHostRegistry = "PIOMAN_HOST_REGISTRY"
	// EnvRegistryRank names the rank whose process hosts the registry
	// (default 0); "-1" declares the registry standalone, so losing it
	// kills nobody.
	EnvRegistryRank = "PIOMAN_REGISTRY_RANK"
	// EnvHeartbeatMS overrides the heartbeat interval in milliseconds.
	EnvHeartbeatMS = "PIOMAN_HEARTBEAT_MS"
	// EnvPeerDeadlineMS overrides Config.PeerDeadline in milliseconds —
	// how nmrun arms engine-side death detection without the binary's
	// cooperation.
	EnvPeerDeadlineMS = "PIOMAN_PEER_DEADLINE_MS"
)

// ClusterWorld is one rank of a multi-process world launched through the
// cluster registry (typically by cmd/nmrun): a distributed World over a
// tcpfab endpoint, plus the registry client whose death verdicts feed
// the engine, plus — on the hosting rank — the embedded registry itself.
type ClusterWorld struct {
	*World
	// Rank is this process's rank.
	Rank int
	// Client is the live registry session (heartbeating once Start ran).
	Client *cluster.Client
	// Registry is non-nil only on the rank that embeds the control
	// plane (EnvHostRegistry).
	Registry *cluster.Registry

	node      *Node
	deadRanks atomic.Uint64 // current count of ranks the client saw die
	deaths    atomic.Uint64 // cumulative death verdicts applied
}

// InCluster reports whether the process was launched with the nmrun
// environment contract (EnvRank present), i.e. whether JoinCluster can
// work.
func InCluster() bool {
	_, ok := os.LookupEnv(EnvRank)
	return ok
}

// envInt parses an integer environment variable, returning def when the
// variable is unset and an error when it is set but malformed.
func envInt(name string, def int) (int, error) {
	s, ok := os.LookupEnv(name)
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("mpi: %s=%q is not an integer", name, s)
	}
	return v, nil
}

// JoinCluster assembles this process's rank of a multi-process cluster
// from the nmrun environment contract: embed the registry when this rank
// hosts it, open a tcpfab endpoint on an ephemeral port, register with
// the registry, learn every peer's address from the formed world, and
// start heartbeating. Registry death verdicts flow straight into the
// engine — a rank the registry declares dead gets MarkPeerDead, so every
// pending request toward it completes with core.ErrPeerDead; a respawned
// rank gets MarkPeerAlive. The cfg is the usual world Config; Nodes and
// Fabrics are taken over by the environment.
func JoinCluster(cfg Config) (*ClusterWorld, error) {
	rank, err := envInt(EnvRank, -1)
	if err != nil {
		return nil, err
	}
	nranks, err2 := envInt(EnvNranks, 0)
	if err2 != nil {
		return nil, err2
	}
	registryAddr := os.Getenv(EnvRegistry)
	if rank < 0 || nranks <= 0 || registryAddr == "" {
		return nil, fmt.Errorf("mpi: cluster environment incomplete (%s=%d %s=%d %s=%q); launch through cmd/nmrun or export the contract by hand",
			EnvRank, rank, EnvNranks, nranks, EnvRegistry, registryAddr)
	}
	hostRank, err3 := envInt(EnvRegistryRank, 0)
	if err3 != nil {
		return nil, err3
	}
	hbMS, err4 := envInt(EnvHeartbeatMS, 0)
	if err4 != nil {
		return nil, err4
	}
	heartbeat := cluster.DefaultHeartbeatInterval
	if hbMS > 0 {
		heartbeat = time.Duration(hbMS) * time.Millisecond
	}
	if dlMS, err := envInt(EnvPeerDeadlineMS, 0); err != nil {
		return nil, err
	} else if dlMS > 0 {
		cfg.PeerDeadline = time.Duration(dlMS) * time.Millisecond
	}

	cw := &ClusterWorld{Rank: rank}
	if os.Getenv(EnvHostRegistry) == "1" {
		reg, err := cluster.NewRegistry(cluster.Config{
			Nranks:            nranks,
			Listen:            registryAddr,
			HeartbeatInterval: heartbeat,
		})
		if err != nil {
			return nil, err
		}
		cw.Registry = reg
	}

	ep, err := tcpfab.New(tcpfab.Config{Self: rank, Nodes: nranks, Listen: "127.0.0.1:0"})
	if err != nil {
		cw.closePartial()
		return nil, fmt.Errorf("mpi: rank %d tcpfab endpoint: %w", rank, err)
	}
	client, peers, _, err := cluster.Join(registryAddr, rank, nranks, "tcp", ep.Addr().String(), 0)
	if err != nil {
		ep.Close()
		cw.closePartial()
		return nil, err
	}
	cw.Client = client
	for _, p := range peers {
		if p.Rank != rank {
			ep.SetPeerAddr(p.Rank, p.Addr)
		}
	}

	cw.World = NewDistributed(cfg, nic.RealParams(), ep)
	cw.node = cw.World.Node(rank)
	eng := cw.node.Eng
	client.SetHostRank(hostRank)
	client.Start(heartbeat, func(dead int) {
		eng.MarkPeerDead(dead)
		cw.deadRanks.Add(1)
		cw.deaths.Add(1)
	}, func(alive int) {
		eng.MarkPeerAlive(alive)
		cw.deadRanks.Add(^uint64(0))
	})

	if cfg.Metrics != nil {
		p := fmt.Sprintf("node%d.cluster", rank)
		cfg.Metrics.RegisterGauge(p+".epoch", "membership epoch last observed from the registry", client.Epoch)
		cfg.Metrics.RegisterGauge(p+".alive", "peer ranks currently believed alive", func() uint64 {
			return uint64(nranks) - 1 - cw.deadRanks.Load()
		})
		cfg.Metrics.RegisterCounter(p+".deaths", "registry death verdicts applied to the engine", cw.deaths.Load)
	}
	return cw, nil
}

// Self returns this process's node.
func (cw *ClusterWorld) Self() *Node { return cw.node }

// closePartial tears down whatever JoinCluster built before failing.
func (cw *ClusterWorld) closePartial() {
	if cw.Registry != nil {
		cw.Registry.Close()
	}
}

// Close leaves the cluster gracefully (so survivors learn immediately
// instead of after the liveness deadline), closes the world, then — on
// the hosting rank — stops the registry last, giving survivors' final
// leaves somewhere to land.
func (cw *ClusterWorld) Close() {
	if cw.Client != nil {
		cw.Client.Close()
	}
	if cw.World != nil {
		cw.World.Close()
	}
	if cw.Registry != nil {
		cw.Registry.Close()
	}
}
