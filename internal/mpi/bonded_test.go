package mpi

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"pioman/internal/core"
	"pioman/internal/fabric"
	"pioman/internal/fabric/shmfab"
	"pioman/internal/fabric/tcpfab"
	"pioman/internal/nic"
	"pioman/internal/topo"
)

// bondedConfig is the engine configuration both ranks of the bonded
// tests run: multirail striping from 128 KiB up, real-transport polling
// discipline, two cores.
func bondedConfig() Config {
	return Config{
		Mode:           core.Multithreaded,
		OffloadEager:   true,
		EnableBlocking: true,
		NoIdlePolling:  true,
		Strategy:       "multirail",
		MultirailMin:   128 << 10,
		Machine:        topo.Machine{Sockets: 1, CoresPerSocket: 2},
	}
}

// TestBondedHeterogeneousRails is the in-process shape of the paper's
// MX+SHM configuration: one world per rank, each bonding a tcpfab rail
// (the default, carrying eager traffic and the rendezvous handshake)
// with a shmfab rail, and a large rendezvous striped across both real
// transports.
func TestBondedHeterogeneousRails(t *testing.T) {
	tl, err := tcpfab.NewLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mkWorld := func(rank int) *World {
		tep, err := tl.Endpoint(rank)
		if err != nil {
			t.Fatal(err)
		}
		sep, err := sl.Endpoint(rank)
		if err != nil {
			t.Fatal(err)
		}
		tcpRail := nic.RealParams()
		tcpRail.Name = "tcp"
		return NewDistributedBonded(bondedConfig(), []Rail{
			{Params: tcpRail, Ep: tep},
			{Params: nic.ShmParams(), Ep: sep},
		})
	}
	w0, w1 := mkWorld(0), mkWorld(1)
	defer func() {
		w1.Close()
		w0.Close()
	}()
	if w0.Size() != 2 || w1.Size() != 2 {
		t.Fatalf("bonded worlds report sizes %d/%d, want 2", w0.Size(), w1.Size())
	}

	const size = 512 << 10
	msg := make([]byte, size)
	for i := range msg {
		msg[i] = byte(i*5 + 1)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		w0.Node(0).Run(func(p *Proc) {
			p.Send(1, 7, msg)
			var ack [1]byte
			p.Recv(1, 8, ack[:])
		})
	}()
	go func() {
		defer wg.Done()
		w1.Node(1).Run(func(p *Proc) {
			buf := make([]byte, size)
			if n, _ := p.Recv(0, 7, buf); n != size || !bytes.Equal(buf, msg) {
				t.Errorf("bonded rendezvous corrupted (n=%d)", n)
			}
			p.Send(0, 8, []byte{1})
		})
	}()
	wg.Wait()

	// The payload must genuinely have been striped: both real rails of
	// the sender carried DATA chunks.
	for i, rail := range w0.Node(0).Eng.Rails() {
		if rail.Stats().DataSent == 0 {
			t.Errorf("bonded rail %d (%s) carried no rendezvous chunks", i, rail.Name())
		}
	}
}

// TestBondedValidation pins the construction-time checks: mismatched
// endpoint identities and MTUs above the fabric frame ceiling must fail
// at NewDistributedBonded, not mid-transfer.
func TestBondedValidation(t *testing.T) {
	mustPanic := func(name, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
				t.Errorf("%s: panic %v does not mention %q", name, r, want)
			}
		}()
		fn()
	}

	tl, err := tcpfab.NewLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	ep0, _ := tl.Endpoint(0)
	ep1, _ := tl.Endpoint(1)

	mustPanic("no rails", "at least one rail", func() {
		NewDistributedBonded(bondedConfig(), nil)
	})
	mustPanic("unnamed rail", "needs a name", func() {
		NewDistributedBonded(bondedConfig(), []Rail{{Params: nic.Params{}, Ep: ep0}})
	})
	mustPanic("duplicate names", "duplicate rail name", func() {
		a := nic.RealParams()
		NewDistributedBonded(bondedConfig(), []Rail{{Params: a, Ep: ep0}, {Params: a, Ep: ep0}})
	})
	mustPanic("rank mismatch", "rank", func() {
		a := nic.RealParams()
		b := nic.ShmParams()
		NewDistributedBonded(bondedConfig(), []Rail{{Params: a, Ep: ep0}, {Params: b, Ep: ep1}})
	})
	mustPanic("MTU above frame ceiling", "payload limit", func() {
		a := nic.RealParams()
		a.MTU = fabric.MaxPayloadBytes + 1
		NewDistributedBonded(bondedConfig(), []Rail{{Params: a, Ep: ep0}})
	})
}

// TestWorldRejectsMTUAboveFabricLimit covers the same check on the
// NewWorld path, where a Fabrics override supplies the real transport: a
// rail whose MTU cannot fit one frame used to pass construction and fail
// only when a rendezvous chunk was refused mid-transfer.
func TestWorldRejectsMTUAboveFabricLimit(t *testing.T) {
	l, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rail := nic.ShmParams()
	rail.MTU = fabric.MaxPayloadBytes + 1
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("oversized rail MTU did not panic at world construction")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "payload limit") {
			t.Fatalf("panic %v does not mention the payload limit", r)
		}
	}()
	NewWorld(Config{
		Nodes:   2,
		Machine: topo.Machine{Sockets: 1, CoresPerSocket: 2},
		Mode:    core.Multithreaded,
		MX:      rail,
		Fabrics: map[string]fabric.Fabric{rail.Name: l},
	})
}
