package mpi

import (
	"fmt"
	"sync/atomic"
	"time"

	"pioman/internal/core"
	"pioman/internal/piom"
	"pioman/internal/sched"
	"pioman/internal/trace"
)

// Node is one cluster node: an MPI-process analog hosting many threads.
type Node struct {
	world *World
	rank  int
	Sch   *sched.Scheduler
	Srv   *piom.Server
	Eng   *core.Engine
	Trace *trace.Recorder

	barrierGen atomic.Uint64
}

// Rank returns the node's rank.
func (n *Node) Rank() int { return n.rank }

// World returns the owning world.
func (n *Node) World() *World { return n.world }

// Spawn starts an application thread on this node's cores.
func (n *Node) Spawn(name string, fn func(*Proc)) *sched.Thread {
	return n.Sch.Spawn(name, func(th *sched.Thread) {
		fn(&Proc{Node: n, Th: th})
	})
}

// Run spawns fn and waits for it to finish.
func (n *Node) Run(fn func(*Proc)) {
	n.Spawn("run", fn).Join()
}

// Proc is the handle a node thread uses to communicate and compute: it
// couples the node's engine with the thread's core scheduling, mirroring
// the paper's benchmark programs (Fig. 4 / Fig. 7).
type Proc struct {
	Node *Node
	Th   *sched.Thread
}

// Rank returns the owning node's rank.
func (p *Proc) Rank() int { return p.Node.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.Node.world.Size() }

// Compute spins for d on the thread's core (the compute() phase).
func (p *Proc) Compute(d time.Duration) { p.Th.Compute(d) }

// Isend posts an asynchronous send (nm_isend).
func (p *Proc) Isend(dst, tag int, data []byte) *core.SendReq {
	return p.Node.Eng.Isend(dst, tag, data)
}

// Irecv posts an asynchronous receive.
func (p *Proc) Irecv(src, tag int, buf []byte) *core.RecvReq {
	return p.Node.Eng.Irecv(src, tag, buf)
}

// WaitSend waits for a send to complete (nm_swait).
func (p *Proc) WaitSend(r *core.SendReq) { p.Node.Eng.WaitSend(r, p.Th) }

// WaitRecv waits for a receive to complete.
func (p *Proc) WaitRecv(r *core.RecvReq) { p.Node.Eng.WaitRecv(r, p.Th) }

// Wait waits on any request.
func (p *Proc) Wait(r *piom.Request) { p.Node.Eng.Wait(r, p.Th) }

// Send is a blocking send. It owns the request's full lifecycle, so the
// request recycles through the engine's freelist — a blocking exchange
// allocates no request state in steady state.
func (p *Proc) Send(dst, tag int, data []byte) {
	r := p.Isend(dst, tag, data)
	p.WaitSend(r)
	r.Release()
}

// Recv is a blocking receive; it returns the byte count and sender. Like
// Send it recycles its request through the engine's freelist.
func (p *Proc) Recv(src, tag int, buf []byte) (int, int) {
	r := p.Irecv(src, tag, buf)
	p.WaitRecv(r)
	n, from := r.Len(), r.From()
	r.Release()
	return n, from
}

// SendErr is Send with the failure surfaced: it returns core.ErrPeerDead
// when the destination rank was declared dead (the post was refused fast,
// or the rank died while the send was pending), nil otherwise. The
// request still recycles either way.
func (p *Proc) SendErr(dst, tag int, data []byte) error {
	r := p.Isend(dst, tag, data)
	p.WaitSend(r)
	err := r.Err()
	r.Release()
	return err
}

// RecvErr is Recv with the failure surfaced: byte count and sender are
// valid only when the error is nil; core.ErrPeerDead reports that the
// named source rank died before (or while) the message was owed.
func (p *Proc) RecvErr(src, tag int, buf []byte) (int, int, error) {
	r := p.Irecv(src, tag, buf)
	p.WaitRecv(r)
	n, from, err := r.Len(), r.From(), r.Err()
	r.Release()
	return n, from, err
}

// Collective tags live in a reserved negative range so they never collide
// with application traffic.
const (
	tagBarrier = -1000 - iota
	tagBcast
	tagGather
	tagReduce
)

// collTag derives a per-generation collective tag.
func collTag(base int, gen uint64) int {
	return base - 16*int(gen%1_000_000)
}

// Barrier synchronizes all nodes: non-roots signal rank 0 and wait for the
// release; rank 0 gathers then broadcasts. Built entirely on the engine's
// eager path, so it also exercises unexpected-message handling under
// contention.
//
// Rank 0 gathers with one receive per rank rather than a count of
// AnySource matches: a per-rank receive naming a dead peer completes with
// core.ErrPeerDead (and one posted toward a rank that dies mid-wait is
// failed by the death sweep), so the barrier closes over the survivor set
// instead of waiting forever for a contribution that cannot come. Sends
// toward dead ranks fail fast; their requests complete like any other.
func (p *Proc) Barrier() {
	gen := p.Node.barrierGen.Add(1)
	tag := collTag(tagBarrier, gen)
	size := p.Size()
	if size == 1 {
		return
	}
	if p.Rank() == 0 {
		bufs := make([][1]byte, size)
		reqs := make([]*core.RecvReq, 0, size-1)
		for i := 1; i < size; i++ {
			reqs = append(reqs, p.Irecv(i, tag, bufs[i][:]))
		}
		for _, r := range reqs {
			p.WaitRecv(r)
			r.Release()
		}
		for i := 1; i < size; i++ {
			p.Send(i, tag, []byte{1})
		}
		return
	}
	p.Send(0, tag, []byte{0})
	var b [1]byte
	p.Recv(0, tag, b[:])
}

// Bcast broadcasts buf from root to every node; all nodes must call it
// with same-sized buffers.
func (p *Proc) Bcast(root int, buf []byte) {
	gen := p.Node.barrierGen.Add(1)
	tag := collTag(tagBcast, gen)
	if p.Rank() == root {
		reqs := make([]*core.SendReq, 0, p.Size()-1)
		for i := 0; i < p.Size(); i++ {
			if i == root {
				continue
			}
			reqs = append(reqs, p.Isend(i, tag, buf))
		}
		for _, r := range reqs {
			p.WaitSend(r)
			r.Release()
		}
		return
	}
	p.Recv(root, tag, buf)
}

// Gather collects each node's contribution into parts on root (parts is
// only written on root and must have world-size entries, each large enough
// for the corresponding contribution).
func (p *Proc) Gather(root int, contrib []byte, parts [][]byte) {
	gen := p.Node.barrierGen.Add(1)
	tag := collTag(tagGather, gen)
	if p.Rank() != root {
		p.Send(root, tag, contrib)
		return
	}
	if len(parts) != p.Size() {
		panic(fmt.Sprintf("mpi: Gather parts has %d entries for %d nodes", len(parts), p.Size()))
	}
	copy(parts[root], contrib)
	reqs := make([]*core.RecvReq, 0, p.Size()-1)
	for i := 0; i < p.Size(); i++ {
		if i == root {
			continue
		}
		reqs = append(reqs, p.Irecv(i, tag, parts[i]))
	}
	for _, r := range reqs {
		p.WaitRecv(r)
		r.Release()
	}
}

// allReduce8 is the shared exchange of the scalar reduce family: every
// node contributes one 8-byte value, rank 0 folds them with add, and the
// result is broadcast back (gather-to-0 then broadcast).
func (p *Proc) allReduce8(mine []byte, add func(acc, v []byte) []byte) []byte {
	gen := p.Node.barrierGen.Add(1)
	tag := collTag(tagReduce, gen)
	size := p.Size()
	if size == 1 {
		return mine
	}
	if p.Rank() == 0 {
		// Per-rank receives, like Barrier: a dead rank's contribution
		// error-completes and is left out of the fold, so the reduction
		// closes over the survivor set.
		bufs := make([][8]byte, size)
		reqs := make([]*core.RecvReq, 0, size-1)
		for i := 1; i < size; i++ {
			reqs = append(reqs, p.Irecv(i, tag, bufs[i][:]))
		}
		acc := mine
		for i, r := range reqs {
			p.WaitRecv(r)
			if r.Err() == nil {
				acc = add(acc, bufs[i+1][:])
			}
			r.Release()
		}
		for i := 1; i < size; i++ {
			p.Send(i, tag, acc)
		}
		return acc
	}
	p.Send(0, tag, mine)
	b := make([]byte, 8)
	p.Recv(0, tag, b)
	return b
}

// AllReduceSum sums one float64 across all nodes and returns the total on
// every node.
func (p *Proc) AllReduceSum(x float64) float64 {
	return bytesToF64(p.allReduce8(f64ToBytes(x), func(acc, v []byte) []byte {
		return f64ToBytes(bytesToF64(acc) + bytesToF64(v))
	}))
}

// AllReduceSumI64 sums one int64 across all nodes and returns the total
// on every node — the exact-count companion of AllReduceSum (bytes moved,
// packets seen, iterations completed).
func (p *Proc) AllReduceSumI64(x int64) int64 {
	return bytesToI64(p.allReduce8(i64ToBytes(x), func(acc, v []byte) []byte {
		return i64ToBytes(bytesToI64(acc) + bytesToI64(v))
	}))
}
