package mpi

import (
	"encoding/binary"
	"math"
)

// f64ToBytes encodes a float64 for the reduce collectives.
func f64ToBytes(x float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
	return b[:]
}

// bytesToF64 decodes a float64 from a reduce payload.
func bytesToF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
