package mpi

// This file is the MPI layer's datatype codec: the encodings of the
// values collectives carry inside packet payloads (float64 for the reduce
// family today; vector datatypes are an open item).
//
// The packet-level wire codec — the length-prefixed binary framing of
// wire.Packet that real transports put on sockets — lives one layer down
// in internal/fabric (codec.go): the transport cannot import this package
// (mpi sits at the top of the stack), and framing is a property of the
// fabric, not of MPI datatypes.

import (
	"encoding/binary"
	"math"
)

// f64ToBytes encodes a float64 for the reduce collectives.
func f64ToBytes(x float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
	return b[:]
}

// bytesToF64 decodes a float64 from a reduce payload.
func bytesToF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// i64ToBytes encodes a signed count (message lengths, element counts) for
// control payloads.
func i64ToBytes(x int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(x))
	return b[:]
}

// bytesToI64 decodes a signed count from a control payload.
func bytesToI64(b []byte) int64 {
	return int64(binary.LittleEndian.Uint64(b))
}
