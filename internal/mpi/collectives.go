package mpi

import (
	"fmt"

	"pioman/internal/core"
	"pioman/internal/piom"
)

// Additional collective tags (continuing the reserved negative range of
// node.go).
const (
	tagScatter = -2000 - iota
	tagAllgather
)

// Probe blocks until a message matching (src, tag) is pending and returns
// its description without receiving it. src may be core.AnySource, tag
// core.AnyTag.
func (p *Proc) Probe(src, tag int) core.ProbeInfo {
	return p.Node.Eng.Probe(src, tag, p.Th)
}

// Iprobe is the non-blocking variant of Probe.
func (p *Proc) Iprobe(src, tag int) (core.ProbeInfo, bool) {
	return p.Node.Eng.Iprobe(src, tag)
}

// WaitAny blocks until one of the given requests completes, returning its
// index.
func (p *Proc) WaitAny(reqs ...*piom.Request) int {
	return p.Node.Eng.WaitAny(p.Th, reqs...)
}

// WaitAnyRecv waits for one of several receive requests and returns the
// index of a completed one.
func (p *Proc) WaitAnyRecv(reqs ...*core.RecvReq) int {
	raw := make([]*piom.Request, len(reqs))
	for i, r := range reqs {
		raw[i] = r.Req()
	}
	return p.WaitAny(raw...)
}

// Sendrecv performs a simultaneous send to dst and receive from src under
// the same tag (like MPI_Sendrecv), avoiding the deadlock of two blocking
// calls.
func (p *Proc) Sendrecv(dst, tag int, sendData []byte, src int, recvBuf []byte) (int, int) {
	s := p.Isend(dst, tag, sendData)
	r := p.Irecv(src, tag, recvBuf)
	p.WaitSend(s)
	p.WaitRecv(r)
	return r.Len(), r.From()
}

// Scatter distributes parts from root: node i receives parts[i] into buf.
// parts is only read on root and must have world-size entries.
func (p *Proc) Scatter(root int, parts [][]byte, buf []byte) {
	gen := p.Node.barrierGen.Add(1)
	tag := collTag(tagScatter, gen)
	if p.Rank() == root {
		if len(parts) != p.Size() {
			panic(fmt.Sprintf("mpi: Scatter parts has %d entries for %d nodes", len(parts), p.Size()))
		}
		reqs := make([]*core.SendReq, 0, p.Size()-1)
		for i := 0; i < p.Size(); i++ {
			if i == root {
				copy(buf, parts[i])
				continue
			}
			reqs = append(reqs, p.Isend(i, tag, parts[i]))
		}
		for _, s := range reqs {
			p.WaitSend(s)
		}
		return
	}
	p.Recv(root, tag, buf)
}

// Allgather collects every node's contribution into parts on every node.
// parts must have world-size entries on all nodes.
func (p *Proc) Allgather(contrib []byte, parts [][]byte) {
	if len(parts) != p.Size() {
		panic(fmt.Sprintf("mpi: Allgather parts has %d entries for %d nodes", len(parts), p.Size()))
	}
	gen := p.Node.barrierGen.Add(1)
	tag := collTag(tagAllgather, gen)
	copy(parts[p.Rank()], contrib)
	sends := make([]*core.SendReq, 0, p.Size()-1)
	recvs := make([]*core.RecvReq, 0, p.Size()-1)
	for i := 0; i < p.Size(); i++ {
		if i == p.Rank() {
			continue
		}
		sends = append(sends, p.Isend(i, tag, contrib))
		recvs = append(recvs, p.Irecv(i, tag, parts[i]))
	}
	for _, s := range sends {
		p.WaitSend(s)
	}
	for _, r := range recvs {
		p.WaitRecv(r)
	}
}
