package nic

import (
	"testing"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/fabric/shmfab"
	"pioman/internal/wire"
)

// TestPollBatchOccupancyShm pins the acceptance criterion of the batched
// receive path on the real shared-memory transport: under message-storm
// traffic (many back-to-back 64-byte frames queued before the receiver
// drains), the batch-occupancy ratio PolledFrames/PollBatches must
// exceed 1 — each paid-for endpoint visit amortizes more than one frame,
// i.e. batching demonstrably engages rather than degenerating into
// per-frame Poll with extra bookkeeping.
func TestPollBatchOccupancyShm(t *testing.T) {
	f, err := shmfab.NewLocal(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ep0, err := f.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := f.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	d := New(ShmParams(), ep1)

	const msgs = 200
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i*3 + 1)
	}
	for i := 1; i <= msgs; i++ {
		p := fabric.GetPacket()
		p.Kind, p.Src, p.Dst, p.Seq, p.Payload = wire.PktEager, 0, 1, uint64(i), payload
		if err := ep0.Send(p); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		fabric.ReleasePacket(p) // shmfab captures sends
	}

	batch := make([]*wire.Packet, 64)
	got := 0
	deadline := time.Now().Add(30 * time.Second)
	for got < msgs {
		n := d.PollBatch(batch)
		for _, p := range batch[:n] {
			fabric.ReleasePacket(p)
		}
		got += n
		if n == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("drained %d of %d frames before the deadline", got, msgs)
			}
			time.Sleep(20 * time.Microsecond)
		}
	}

	st := d.Stats()
	if st.PolledFrames != msgs {
		t.Errorf("PolledFrames = %d, want %d", st.PolledFrames, msgs)
	}
	if st.Recvs != msgs {
		t.Errorf("Recvs = %d, want %d", st.Recvs, msgs)
	}
	if st.PollBatches == 0 {
		t.Fatal("PollBatches stayed zero across a drained message storm")
	}
	occupancy := float64(st.PolledFrames) / float64(st.PollBatches)
	t.Logf("shm 64B storm: %d frames in %d batches, occupancy %.1f frames/visit",
		st.PolledFrames, st.PollBatches, occupancy)
	if occupancy <= 1 {
		t.Errorf("batch occupancy %.2f ≤ 1: batching never amortized a visit (frames=%d batches=%d)",
			occupancy, st.PolledFrames, st.PollBatches)
	}
}

// TestPollBatchEmptyNotCounted pins the occupancy counters' definition:
// idle drains (no frame visible) must not tick PollBatches, or idle
// polling would flatten the occupancy signal toward zero.
func TestPollBatchEmptyNotCounted(t *testing.T) {
	d, _ := pair(t, fastParams())
	batch := make([]*wire.Packet, 8)
	for i := 0; i < 50; i++ {
		if n := d.PollBatch(batch); n != 0 {
			t.Fatalf("idle PollBatch returned %d frames", n)
		}
	}
	st := d.Stats()
	if st.PollBatches != 0 || st.PolledFrames != 0 {
		t.Errorf("idle drains counted: PollBatches=%d PolledFrames=%d, want 0/0",
			st.PollBatches, st.PolledFrames)
	}
	if st.Polls != 50 {
		t.Errorf("Polls = %d, want 50 (batched drains still count as poll visits)", st.Polls)
	}
}
