// Package nic implements the rail drivers the engine submits requests to.
// A driver pairs a packet transport (a fabric.Endpoint) with a host cost
// model (internal/ptime): submission burns CPU on whichever goroutine
// calls it — that is the property PIOMan's offloading exploits — while
// propagation is the transport's business: modeled wire time on the
// simulator (fabric/simfab) or real sockets (fabric/tcpfab).
//
// Three presets model the rails the paper's NewMadeleine supports:
//
//   - MX: Myrinet MYRI-10G under the MX driver. PIO for very small
//     packets (≤128 B), copy-to-registered-buffer + DMA for eager messages,
//     and a mandatory rendezvous above 32 KiB ("Myrinet's MX driver uses a
//     rendezvous protocol for messages larger than 32 kB", §2.3).
//   - SHM: the intra-node shared-memory channel of §4.3, low latency and
//     high bandwidth but a copy on both sides.
//   - TCP: a lossless in-order TCP/Ethernet-class rail with much higher
//     latency, used by the multirail strategy tests.
//
// A fourth preset, RealParams, carries no simulated costs at all: it is
// the driver for rails whose endpoint is a real transport, where sockets
// and syscalls cost genuine time.
package nic

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/fabric/simfab"
	"pioman/internal/ptime"
	"pioman/internal/telemetry"
	"pioman/internal/wire"
)

// HeaderBytes is the wire size of a protocol header (tag, seq, msgid,
// lengths); RTS and CTS packets are header-only.
const HeaderBytes = 32

// Header identifies one protocol packet.
type Header struct {
	Src, Dst int
	Tag      int
	Seq      uint64
	MsgID    uint64
}

// Params fully describes a simulated rail driver.
type Params struct {
	Name string
	// Link is the wire model for this rail.
	Link wire.LinkParams
	// Cost is the host-side CPU cost model.
	Cost ptime.CostModel
	// PIOMax is the largest payload sent through PIO (0 disables PIO).
	PIOMax int
	// EagerMax is the largest payload sent eagerly; larger messages must
	// use the rendezvous protocol.
	EagerMax int
	// MTU bounds a single packet's payload (aggregation limit).
	MTU int
	// RecvCopies reports whether reception of eager data costs a copy on
	// the receiving core (true for SHM's double copy; for MX the NIC
	// DMAs into host memory, and the match-time copy is charged by the
	// engine only when the message was unexpected).
	RecvCopies bool
	// StripeWeight is the rail's relative bandwidth share, in bytes/µs,
	// used by the multirail strategy when splitting one rendezvous
	// payload across bonded rails: a rail declaring twice the weight
	// carries twice the bytes. Zero keeps the rail out of striping —
	// the right value for rails that only serve a subset of peers, such
	// as the simulated intra-node SHM channel. Presets seed it from the
	// link model (simulated rails) or from the committed BENCH_pingpong
	// loopback baselines (real transports); runtime measurements can
	// override it per driver via Driver.SetStripeWeight.
	StripeWeight float64
}

// MXParams models the paper's testbed NIC.
func MXParams() Params {
	return Params{
		Name:         "mx",
		Link:         wire.MYRI10G(),
		Cost:         ptime.DefaultCostModel(),
		PIOMax:       128,
		EagerMax:     32 << 10,
		MTU:          32 << 10,
		StripeWeight: 1250, // the MYRI-10G link's serialization bandwidth
	}
}

// SHMParams models the intra-node shared-memory channel. It declares no
// stripe weight: the simulated SHM rail only reaches threads of the same
// node, so the multirail strategy must never place cross-node rendezvous
// chunks on it (contrast ShmParams, the real transport preset, whose
// rings genuinely span processes).
func SHMParams() Params {
	return Params{
		Name: "shm",
		Link: wire.LinkParams{Latency: 300 * time.Nanosecond, BytesPerUS: 5000},
		Cost: ptime.CostModel{
			CopyBytesPerUS: 2500,
			PIOBytesPerUS:  2500, // a store is a store within a node
			SubmitOverhead: 150 * time.Nanosecond,
			DMASetup:       300 * time.Nanosecond,
		},
		PIOMax:     512,
		EagerMax:   16 << 10,
		MTU:        16 << 10,
		RecvCopies: true,
	}
}

// RealParams describes a rail whose endpoint is a real transport
// (fabric/tcpfab): no modeled CPU costs and no PIO path — the socket stack
// charges genuine time instead. The 32 KiB rendezvous threshold matches
// the MX preset so protocol selection behaves identically on both. The
// stripe weight is seeded from the committed BENCH_pingpong.json loopback
// TCP baseline (64 KiB echo p50 ≈ 26.6 µs → ≈ 4900 B/µs of round-trip
// bandwidth); bonded launchers re-measure and override it per host.
func RealParams() Params {
	return Params{
		Name:         "real",
		EagerMax:     32 << 10,
		MTU:          1 << 20,
		StripeWeight: 4900,
	}
}

// ShmParams describes a rail whose endpoint is a real shared-memory
// transport (fabric/shmfab): ranks on the same host exchanging packets
// through mmap'd ring files. Unlike SHMParams — the *simulated* intra-node
// channel, which charges modeled copy costs against virtual links — this
// preset carries no simulated costs at all: the genuine ring copies and
// cache traffic cost real time, exactly as RealParams does for sockets.
// The rail keeps the name "shm" so mpi.Config.Fabrics can swap the real
// transport in for the simulated SHM rail under the same key, and the
// 32 KiB rendezvous threshold matches RealParams so protocol selection
// behaves identically across the real transports. Unlike the simulated
// SHM preset this rail carries a stripe weight: shmfab reaches every rank
// sharing the ring directory, so a bonded world may stripe rendezvous
// payloads across it. Seeded from the committed BENCH_pingpong.json
// shared-memory baseline (64 KiB echo p50 ≈ 18.8 µs → ≈ 7000 B/µs).
func ShmParams() Params {
	return Params{
		Name:         "shm",
		EagerMax:     32 << 10,
		MTU:          1 << 20,
		StripeWeight: 7000,
	}
}

// UdpParams describes a rail whose endpoint is the real UDP-datagram
// transport (fabric/udpfab): no simulated costs, like every real-
// transport preset. The MTU must fit udpfab's single-datagram frame
// ceiling (~64 KiB minus the reliability and codec headers), so
// rendezvous payloads chunk at 32 KiB; the 32 KiB eager threshold
// matches RealParams so protocol selection behaves identically across
// the real transports. The stripe weight is seeded below the TCP rail's
// baseline: the reliability sublayer's acking and retransmit window
// cost bandwidth a kernel TCP stack gets for free.
func UdpParams() Params {
	return Params{
		Name:         "udp",
		EagerMax:     32 << 10,
		MTU:          32 << 10,
		StripeWeight: 2500,
	}
}

// TCPParams models a TCP/10GbE rail.
func TCPParams() Params {
	return Params{
		Name: "tcp",
		Link: wire.LinkParams{Latency: 15 * time.Microsecond, BytesPerUS: 1100},
		Cost: ptime.CostModel{
			CopyBytesPerUS: 2500,
			PIOBytesPerUS:  0, // no PIO path through a socket
			SubmitOverhead: 2 * time.Microsecond,
			DMASetup:       2 * time.Microsecond,
		},
		PIOMax:       0,
		EagerMax:     64 << 10,
		MTU:          64 << 10,
		StripeWeight: 1100, // the modeled 10GbE serialization bandwidth
	}
}

// Stats counts driver activity.
type Stats struct {
	EagerSent  uint64
	EagerBytes uint64
	PIOSent    uint64
	RTSSent    uint64
	CTSSent    uint64
	DataSent   uint64
	DataBytes  uint64
	Polls      uint64
	Recvs      uint64
	// PollBatches counts non-empty batched drains (PollBatch calls that
	// returned at least one frame); PolledFrames counts the frames those
	// drains returned. Their ratio is the receive path's batch occupancy:
	// how many frames each paid-for inbox visit amortized. A ratio above
	// 1 means batching engages; at exactly 1 the batched path is
	// behaving like per-frame Poll. Empty drains are deliberately not
	// counted — idle polling would otherwise flatten the occupancy
	// signal to near zero.
	PollBatches  uint64
	PolledFrames uint64
	// SendErrs counts submissions the transport rejected synchronously
	// (endpoint closed, peer unreachable, payload too large) — always
	// zero on the simulator. A real transport can also lose packets it
	// accepted, when their stream later fails; that loss surfaces on the
	// endpoint itself (tcpfab's LostFrames), not here, so SendErrs == 0
	// alone does not prove nothing was dropped.
	SendErrs uint64
}

// Driver is one endpoint of a rail: the node ep.Self() on ep's fabric.
type Driver struct {
	p    Params
	ep   fabric.Endpoint
	self int
	// captures records the endpoint's fabric.SendCapturer capability:
	// when true, Send consumes packets fully, so the driver recycles
	// outbound packet structs through the fabric packet pool instead of
	// leaving one heap allocation per submission to the GC.
	captures bool
	// maxFrame is the endpoint's hard single-frame payload ceiling
	// (fabric.PayloadLimiter), 0 when the transport declares none. The
	// engine consults it before posting a rendezvous payload as one
	// frame: a transport like udpfab, whose frames are single datagrams,
	// would refuse the submission outright.
	maxFrame int
	// stripeWeight is the live striping weight (float64 bits): it starts
	// at Params.StripeWeight and may be retuned at runtime from measured
	// bandwidth, so it lives outside the immutable Params copy.
	stripeWeight atomic.Uint64

	// Activity counters. telemetry.Counter is the same single atomic
	// word the old atomic.Uint64 fields were — every increment below is
	// one uncontended atomic add — but the counters can now join a
	// telemetry.Registry (RegisterMetrics) without a parallel set of
	// names or a snapshot adapter.
	eagerSent  telemetry.Counter
	eagerBytes telemetry.Counter
	pioSent    telemetry.Counter
	rtsSent    telemetry.Counter
	ctsSent    telemetry.Counter
	dataSent   telemetry.Counter
	dataBytes  telemetry.Counter
	polls      telemetry.Counter
	recvs      telemetry.Counter
	batches    telemetry.Counter
	batchedPks telemetry.Counter
	sendErrs   telemetry.Counter

	// occupancy, when attached by RegisterMetrics, records the frame
	// count of every non-empty PollBatch drain — the live distribution
	// behind the PollBatches/PolledFrames ratio. Nil (one predictable
	// branch in PollBatch) until a registry asks for it, so unmetered
	// runs pay nothing extra.
	occupancy *telemetry.Histogram
}

// New returns a driver submitting to ep with rail parameters p. A rail
// whose MTU (after defaulting) exceeds the endpoint's hard frame ceiling
// (fabric.PayloadLimiter) is rejected here, at construction: undetected,
// the mismatch would only surface when a rendezvous chunk sized to the
// MTU is refused mid-transfer — a silent loss seen only as a SendErrs
// tick.
func New(p Params, ep fabric.Endpoint) *Driver {
	if ep == nil {
		panic("nic: nil endpoint")
	}
	if p.MTU <= 0 {
		p.MTU = 64 << 10
	}
	maxFrame := 0
	if lim, ok := ep.(fabric.PayloadLimiter); ok {
		maxFrame = lim.MaxPayload()
		if p.MTU > maxFrame {
			panic(fmt.Sprintf("nic: rail %q MTU %d exceeds its fabric's payload limit %d",
				p.Name, p.MTU, maxFrame))
		}
	}
	d := &Driver{p: p, ep: ep, self: ep.Self(), maxFrame: maxFrame}
	d.stripeWeight.Store(math.Float64bits(p.StripeWeight))
	if c, ok := ep.(fabric.SendCapturer); ok && c.SendCaptures() {
		d.captures = true
	}
	return d
}

// NewSim returns node self's driver on the wire simulator fab — the
// pre-fabric constructor, kept for the simulation tests and benches.
func NewSim(p Params, fab *wire.Fabric, self int) *Driver {
	if fab == nil {
		panic("nic: nil fabric")
	}
	return New(p, simfab.NewEndpoint(fab, self))
}

// send submits p to the transport, counting rejections. Send failures are
// absorbed here: the engine's protocols treat a dead transport like a
// silent wire (requests stay pending until shutdown), and SendErrs —
// together with the transport's own asynchronous-loss counter, for
// packets that fail after submission — makes the loss observable.
//
// Every submission path draws p from the fabric packet pool (outPacket).
// A capturing endpoint consumes it before Send returns, so the struct is
// recycled here; over the simulator the packet itself rides the modeled
// wire, and the receiving engine releases it after processing — either
// way the structs circulate instead of churning the GC.
func (d *Driver) send(p *wire.Packet) {
	if err := d.ep.Send(p); err != nil {
		d.sendErrs.Add(1)
	}
	if d.captures {
		fabric.ReleasePacket(p)
	}
}

// outPacket returns a zeroed packet struct for one submission, drawn
// from the fabric packet pool. Ownership passes to send.
func (d *Driver) outPacket() *wire.Packet { return fabric.GetPacket() }

// Name returns the rail name.
func (d *Driver) Name() string { return d.p.Name }

// Self returns this endpoint's node id.
func (d *Driver) Self() int { return d.self }

// Params returns the rail parameters.
func (d *Driver) Params() Params { return d.p }

// EagerMax returns the rendezvous threshold.
func (d *Driver) EagerMax() int { return d.p.EagerMax }

// StripeWeight returns the rail's live striping weight — the relative
// bandwidth share the multirail strategy gives this rail. Zero keeps the
// rail out of striping.
func (d *Driver) StripeWeight() float64 {
	return math.Float64frombits(d.stripeWeight.Load())
}

// SetStripeWeight retunes the striping weight at runtime, e.g. from a
// bandwidth actually measured on this host instead of the preset's
// declared baseline. Negative weights are clamped to zero.
func (d *Driver) SetStripeWeight(w float64) {
	if w < 0 {
		w = 0
	}
	d.stripeWeight.Store(math.Float64bits(w))
}

// LostFrames reports frames the transport accepted in Send and later
// lost (a failed stream, a bounded Close drain) — the asynchronous half
// of the rail's loss signal, SendErrs being the synchronous half. Rails
// whose endpoint keeps no loss accounting (the simulator never loses
// frames) report zero.
func (d *Driver) LostFrames() uint64 {
	if lc, ok := d.ep.(fabric.LossCounter); ok {
		return lc.LostFrames()
	}
	return 0
}

// MTU returns the per-packet payload bound.
func (d *Driver) MTU() int { return d.p.MTU }

// MaxFrame returns the transport's hard single-frame payload ceiling
// (fabric.PayloadLimiter), or 0 when the endpoint declares none. Unlike
// the MTU — a tuning parameter — exceeding this in one submission is
// refused by the transport outright.
func (d *Driver) MaxFrame() int { return d.maxFrame }

// SendEager transmits payload eagerly. The caller's core pays the
// submission cost: descriptor setup plus either a PIO transfer (very small
// payloads) or a copy into the registered send buffer. This is the
// "several dozens of microseconds" cost of §2.2 that offloading hides.
func (d *Driver) SendEager(h Header, payload []byte) {
	n := len(payload)
	if n > d.p.EagerMax {
		panic(fmt.Sprintf("nic %s: eager send of %d bytes above threshold %d", d.p.Name, n, d.p.EagerMax))
	}
	ptime.SpinFor(d.p.Cost.SubmitOverhead)
	if d.p.PIOMax > 0 && n <= d.p.PIOMax {
		d.p.Cost.ChargePIO(n)
		d.pioSent.Add(1)
	} else {
		d.p.Cost.ChargeCopy(n)
		ptime.SpinFor(d.p.Cost.DMASetup)
	}
	d.eagerSent.Add(1)
	d.eagerBytes.Add(uint64(n))
	p := d.outPacket()
	p.Kind, p.Src, p.Dst, p.Tag = wire.PktEager, h.Src, h.Dst, h.Tag
	p.Seq, p.MsgID, p.Payload = h.Seq, h.MsgID, payload
	p.WireLen = n + HeaderBytes
	d.send(p)
}

// SendRTS posts a rendezvous request-to-send: header-only, cheap. The
// payload carries the message length plus the sender engine's session id
// (see EncodeRTS), so a receiver can tell a restarted sender's fresh
// rendezvous stream from a stale incarnation's.
func (d *Driver) SendRTS(h Header, msgLen int, session uint64) {
	ptime.SpinFor(d.p.Cost.SubmitOverhead)
	d.rtsSent.Add(1)
	p := d.outPacket()
	p.Kind, p.Src, p.Dst, p.Tag = wire.PktRTS, h.Src, h.Dst, h.Tag
	p.Seq, p.MsgID = h.Seq, h.MsgID
	p.Payload, p.WireLen = EncodeRTS(msgLen, session), HeaderBytes
	d.send(p)
}

// SendRTSReplay re-posts a rendezvous request-to-send for the engine's
// acked-replay timer. It is the same wire packet as SendRTS except
// Offset is set to 1, the replay marker: the receiver handles it outside
// the per-sender sequence ordering (the original RTS may already have
// been processed), answering idempotently with a fresh CTS or DATA-ack.
func (d *Driver) SendRTSReplay(h Header, msgLen int, session uint64) {
	ptime.SpinFor(d.p.Cost.SubmitOverhead)
	d.rtsSent.Add(1)
	p := d.outPacket()
	p.Kind, p.Src, p.Dst, p.Tag = wire.PktRTS, h.Src, h.Dst, h.Tag
	p.Seq, p.MsgID, p.Offset = h.Seq, h.MsgID, 1
	p.Payload, p.WireLen = EncodeRTS(msgLen, session), HeaderBytes
	d.send(p)
}

// SendDataAck posts a rendezvous data acknowledgement: header-only,
// correlated by MsgID. The receiving engine sends it once a rendezvous
// payload is fully reassembled; the sending engine retains the transfer's
// replay state until it arrives (see docs/FABRIC.md, "Self-healing").
func (d *Driver) SendDataAck(h Header) {
	ptime.SpinFor(d.p.Cost.SubmitOverhead)
	p := d.outPacket()
	p.Kind, p.Src, p.Dst, p.Tag = wire.PktDataAck, h.Src, h.Dst, h.Tag
	p.Seq, p.MsgID, p.WireLen = h.Seq, h.MsgID, HeaderBytes
	d.send(p)
}

// SendPing posts a rail health probe: header-only, answered by the peer
// engine with SendPong on the same rail. The engine's rail-lifecycle
// maintenance probes probation rails with it and re-admits a rail whose
// probe round-trips with quiet loss counters.
func (d *Driver) SendPing(h Header) {
	ptime.SpinFor(d.p.Cost.SubmitOverhead)
	p := d.outPacket()
	p.Kind, p.Src, p.Dst, p.Tag = wire.PktPing, h.Src, h.Dst, h.Tag
	p.Seq, p.MsgID, p.WireLen = h.Seq, h.MsgID, HeaderBytes
	d.send(p)
}

// SendPong answers a rail health probe, echoing the probe's Seq so the
// prober can correlate the response with its outstanding ping.
func (d *Driver) SendPong(h Header) {
	ptime.SpinFor(d.p.Cost.SubmitOverhead)
	p := d.outPacket()
	p.Kind, p.Src, p.Dst, p.Tag = wire.PktPong, h.Src, h.Dst, h.Tag
	p.Seq, p.MsgID, p.WireLen = h.Seq, h.MsgID, HeaderBytes
	d.send(p)
}

// SendCTS answers a rendezvous handshake: header-only, cheap.
func (d *Driver) SendCTS(h Header) {
	ptime.SpinFor(d.p.Cost.SubmitOverhead)
	d.ctsSent.Add(1)
	p := d.outPacket()
	p.Kind, p.Src, p.Dst, p.Tag = wire.PktCTS, h.Src, h.Dst, h.Tag
	p.Seq, p.MsgID, p.WireLen = h.Seq, h.MsgID, HeaderBytes
	d.send(p)
}

// SendData transmits a rendezvous payload zero-copy: the NIC DMAs straight
// from the application buffer, so the CPU pays only the DMA programming
// cost regardless of size. offset tags the chunk's position within the
// message so the multirail strategy can split one message across rails.
func (d *Driver) SendData(h Header, offset int, payload []byte) {
	ptime.SpinFor(d.p.Cost.SubmitOverhead)
	ptime.SpinFor(d.p.Cost.DMASetup)
	d.dataSent.Add(1)
	d.dataBytes.Add(uint64(len(payload)))
	p := d.outPacket()
	p.Kind, p.Src, p.Dst, p.Tag = wire.PktData, h.Src, h.Dst, h.Tag
	p.Seq, p.MsgID, p.Offset, p.Payload = h.Seq, h.MsgID, offset, payload
	p.WireLen = len(payload) + HeaderBytes
	d.send(p)
}

// SendAggr transmits an aggregated train of eager packs as one wire packet
// (the optimizer's data-aggregation strategy). The payload is the encoded
// train; the caller's core pays the same copy cost the individual packs
// would have (they are copied into one registered buffer).
func (d *Driver) SendAggr(h Header, payload []byte) {
	ptime.SpinFor(d.p.Cost.SubmitOverhead)
	d.p.Cost.ChargeCopy(len(payload))
	ptime.SpinFor(d.p.Cost.DMASetup)
	d.eagerSent.Add(1)
	d.eagerBytes.Add(uint64(len(payload)))
	p := d.outPacket()
	p.Kind, p.Src, p.Dst, p.Tag = wire.PktAggr, h.Src, h.Dst, h.Tag
	p.Seq, p.MsgID, p.Payload = h.Seq, h.MsgID, payload
	p.WireLen = len(payload) + HeaderBytes
	d.send(p)
}

// SendCtrl transmits an engine control packet (barriers, tests).
func (d *Driver) SendCtrl(h Header, payload []byte) {
	ptime.SpinFor(d.p.Cost.SubmitOverhead)
	p := d.outPacket()
	p.Kind, p.Src, p.Dst, p.Tag = wire.PktCtrl, h.Src, h.Dst, h.Tag
	p.Seq, p.MsgID, p.Payload = h.Seq, h.MsgID, payload
	p.WireLen = len(payload) + HeaderBytes
	d.send(p)
}

// Poll returns one arrived packet or nil. If the rail's reception path
// costs a copy (SHM), the caller's core pays it here.
func (d *Driver) Poll() *wire.Packet {
	d.polls.Add(1)
	p := d.ep.Poll()
	if p != nil {
		d.recvs.Add(1)
		if d.p.RecvCopies && len(p.Payload) > 0 {
			d.p.Cost.ChargeCopy(len(p.Payload))
		}
	}
	return p
}

// PollBatch drains up to len(into) arrived packets in one endpoint
// visit, returning how many it wrote — the amortized receive path the
// engine's progress loop drives. Reception costs (the SHM copy charge)
// are paid per frame exactly as Poll charges them; the batch-occupancy
// counters (Stats.PollBatches, Stats.PolledFrames) record how much each
// visit amortized.
func (d *Driver) PollBatch(into []*wire.Packet) int {
	d.polls.Add(1)
	n := d.ep.PollBatch(into)
	if n > 0 {
		d.batches.Add(1)
		d.batchedPks.Add(uint64(n))
		d.occupancy.Observe(uint64(n))
		d.recvs.Add(uint64(n))
		if d.p.RecvCopies {
			for _, p := range into[:n] {
				if len(p.Payload) > 0 {
					d.p.Cost.ChargeCopy(len(p.Payload))
				}
			}
		}
	}
	return n
}

// BlockingPoll waits up to timeout for a packet, sleeping rather than
// spinning. It models the interrupt-based blocking call used when no core
// is idle (§3.2 "Rendezvous management").
func (d *Driver) BlockingPoll(timeout time.Duration) *wire.Packet {
	p := d.ep.BlockingRecv(timeout)
	if p != nil {
		d.recvs.Add(1)
		if d.p.RecvCopies && len(p.Payload) > 0 {
			d.p.Cost.ChargeCopy(len(p.Payload))
		}
	}
	return p
}

// HasPending reports whether any packet is known to be queued for this
// endpoint. On the simulator that includes packets still in flight; a
// real transport only counts packets already read off its sockets (see
// fabric.Endpoint.Pending), so false is a polling hint, not proof the
// wire is drained.
func (d *Driver) HasPending() bool {
	return d.ep.Pending()
}

// CanSubmit reports whether the rail toward dst can accept another eager
// submission: NewMadeleine's scheduler feeds a NIC "when it becomes idle",
// so submission is gated on the link's backlog staying within roughly one
// fragment of serialization. While the gate is closed, packs accumulate in
// the waiting list — which is exactly when the aggregation strategy forms
// trains.
func (d *Driver) CanSubmit(dst int) bool {
	return d.ep.Backlog(dst) <= d.p.Link.FragSlot()+d.p.Link.PacketGap
}

// NextSeq allocates a sequence number unique on this endpoint's streams.
func (d *Driver) NextSeq() uint64 { return d.ep.NextSeq() }

// Endpoint returns the transport the driver submits to.
func (d *Driver) Endpoint() fabric.Endpoint { return d.ep }

// Close shuts the rail's transport down. Sends after Close are counted in
// Stats.SendErrs and dropped.
func (d *Driver) Close() error { return d.ep.Close() }

// ChargeMatchCopy charges the cost of copying an unexpected message from
// the library's unexpected-message pool into the application buffer. The
// paper's receive path performs this copy only when the message was
// unexpected (§2.2).
func (d *Driver) ChargeMatchCopy(n int) { d.p.Cost.ChargeCopy(n) }

// RegisterMetrics registers the driver's counters with reg under
// dot-separated names below prefix (typically "node<rank>.rail.<name>"),
// and attaches a batch-occupancy histogram recording the frame count of
// each non-empty PollBatch drain. lost_frames is registered as a live
// read of the transport's asynchronous loss counter, so a snapshot taken
// within one progress tick of a stream failure already shows the loss.
// Call once per registry; the driver's hot paths are unchanged except
// for the occupancy observation (one bits.Len plus two atomic adds).
func (d *Driver) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.RegisterCounter(prefix+".eager_sent", "eager messages submitted", d.eagerSent.Load)
	reg.RegisterCounter(prefix+".eager_bytes", "eager payload bytes submitted", d.eagerBytes.Load)
	reg.RegisterCounter(prefix+".pio_sent", "eager messages sent through PIO", d.pioSent.Load)
	reg.RegisterCounter(prefix+".rts_sent", "rendezvous RTS packets sent", d.rtsSent.Load)
	reg.RegisterCounter(prefix+".cts_sent", "rendezvous CTS packets sent", d.ctsSent.Load)
	reg.RegisterCounter(prefix+".data_sent", "rendezvous DATA packets sent", d.dataSent.Load)
	reg.RegisterCounter(prefix+".data_bytes", "rendezvous payload bytes sent", d.dataBytes.Load)
	reg.RegisterCounter(prefix+".polls", "endpoint poll visits", d.polls.Load)
	reg.RegisterCounter(prefix+".recvs", "packets received", d.recvs.Load)
	reg.RegisterCounter(prefix+".poll_batches", "non-empty batched drains", d.batches.Load)
	reg.RegisterCounter(prefix+".polled_frames", "frames returned by batched drains", d.batchedPks.Load)
	reg.RegisterCounter(prefix+".send_errs", "sends rejected synchronously by the transport", d.sendErrs.Load)
	reg.RegisterCounter(prefix+".lost_frames", "frames accepted by the transport and later lost", d.LostFrames)
	reg.RegisterGauge(prefix+".stripe_weight", "live multirail striping weight (bytes/us)", func() uint64 {
		return uint64(d.StripeWeight())
	})
	d.occupancy = reg.Histogram(prefix+".batch_occupancy", "frames per non-empty PollBatch drain")
	// Transports with internal health counters (fabric.MetricSource —
	// udpfab's retransmit/ack/reject series) join under the same prefix.
	if ms, ok := d.ep.(fabric.MetricSource); ok {
		ms.RegisterMetrics(reg, prefix)
	}
}

// Stats returns a snapshot of activity counters.
func (d *Driver) Stats() Stats {
	return Stats{
		EagerSent:    d.eagerSent.Load(),
		EagerBytes:   d.eagerBytes.Load(),
		PIOSent:      d.pioSent.Load(),
		RTSSent:      d.rtsSent.Load(),
		CTSSent:      d.ctsSent.Load(),
		DataSent:     d.dataSent.Load(),
		DataBytes:    d.dataBytes.Load(),
		Polls:        d.polls.Load(),
		Recvs:        d.recvs.Load(),
		PollBatches:  d.batches.Load(),
		PolledFrames: d.batchedPks.Load(),
		SendErrs:     d.sendErrs.Load(),
	}
}

// EncodeRTS builds an RTS payload: the message length in the first 8
// bytes (little-endian, what DecodeLen reads) and the sender engine's
// session id in the next 8. Pre-session decoders that only read the
// length remain compatible.
func EncodeRTS(msgLen int, session uint64) []byte {
	b := make([]byte, 16)
	for i := 0; i < 8; i++ {
		b[i] = byte(msgLen >> (8 * i))
		b[8+i] = byte(session >> (8 * i))
	}
	return b
}

// DecodeLen recovers a message length from an RTS payload.
func DecodeLen(b []byte) int {
	if len(b) < 8 {
		return 0
	}
	n := 0
	for i := 0; i < 8; i++ {
		n |= int(b[i]) << (8 * i)
	}
	return n
}

// DecodeRTSSession recovers the sender's session id from an RTS payload,
// or 0 for payloads predating the session field.
func DecodeRTSSession(b []byte) uint64 {
	if len(b) < 16 {
		return 0
	}
	var s uint64
	for i := 0; i < 8; i++ {
		s |= uint64(b[8+i]) << (8 * i)
	}
	return s
}
