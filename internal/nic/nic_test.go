package nic

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"pioman/internal/fabric"
	"pioman/internal/telemetry"
	"pioman/internal/wire"
)

// fastParams returns a rail with negligible costs for logic-only tests.
func fastParams() Params {
	return Params{
		Name:     "fast",
		Link:     wire.LinkParams{Latency: 0, BytesPerUS: 1e12},
		PIOMax:   128,
		EagerMax: 32 << 10,
		MTU:      32 << 10,
	}
}

func pair(t *testing.T, p Params) (*Driver, *Driver) {
	t.Helper()
	fab := wire.NewFabric(2, p.Link)
	return NewSim(p, fab, 0), NewSim(p, fab, 1)
}

func pollUntil(t *testing.T, d *Driver, timeout time.Duration) *wire.Packet {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p := d.Poll(); p != nil {
			return p
		}
	}
	t.Fatal("no packet within timeout")
	return nil
}

func TestEagerRoundtrip(t *testing.T) {
	a, b := pair(t, fastParams())
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	a.SendEager(Header{Src: 0, Dst: 1, Tag: 5, Seq: 1}, payload)
	p := pollUntil(t, b, time.Second)
	if p.Kind != wire.PktEager || p.Tag != 5 || len(p.Payload) != 1024 {
		t.Fatalf("bad packet %+v", p)
	}
	for i, v := range p.Payload {
		if v != byte(i) {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
	st := a.Stats()
	if st.EagerSent != 1 || st.EagerBytes != 1024 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEagerAboveThresholdPanics(t *testing.T) {
	a, _ := pair(t, fastParams())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.SendEager(Header{Src: 0, Dst: 1}, make([]byte, 33<<10))
}

func TestPIOCountsSmallMessages(t *testing.T) {
	a, b := pair(t, fastParams())
	a.SendEager(Header{Src: 0, Dst: 1, Tag: 1}, make([]byte, 64))   // PIO
	a.SendEager(Header{Src: 0, Dst: 1, Tag: 2}, make([]byte, 4096)) // copy+DMA
	pollUntil(t, b, time.Second)
	pollUntil(t, b, time.Second)
	st := a.Stats()
	if st.PIOSent != 1 {
		t.Fatalf("PIOSent = %d, want 1", st.PIOSent)
	}
	if st.EagerSent != 2 {
		t.Fatalf("EagerSent = %d, want 2", st.EagerSent)
	}
}

func TestRendezvousPacketFlow(t *testing.T) {
	a, b := pair(t, fastParams())
	h := Header{Src: 0, Dst: 1, Tag: 9, MsgID: 77}
	a.SendRTS(h, 128<<10, 42)
	rts := pollUntil(t, b, time.Second)
	if rts.Kind != wire.PktRTS || rts.MsgID != 77 {
		t.Fatalf("bad RTS %+v", rts)
	}
	if got := DecodeLen(rts.Payload); got != 128<<10 {
		t.Fatalf("DecodeLen = %d, want %d", got, 128<<10)
	}
	if got := DecodeRTSSession(rts.Payload); got != 42 {
		t.Fatalf("DecodeRTSSession = %d, want 42", got)
	}
	b.SendCTS(Header{Src: 1, Dst: 0, Tag: 9, MsgID: 77})
	cts := pollUntil(t, a, time.Second)
	if cts.Kind != wire.PktCTS || cts.MsgID != 77 {
		t.Fatalf("bad CTS %+v", cts)
	}
	data := make([]byte, 128<<10)
	a.SendData(h, 0, data)
	d := pollUntil(t, b, time.Second)
	if d.Kind != wire.PktData || len(d.Payload) != 128<<10 {
		t.Fatalf("bad DATA %+v kind=%v len=%d", d, d.Kind, len(d.Payload))
	}
	st := a.Stats()
	if st.RTSSent != 1 || st.DataSent != 1 || st.DataBytes != uint64(128<<10) {
		t.Fatalf("sender stats %+v", st)
	}
	if b.Stats().CTSSent != 1 {
		t.Fatalf("receiver stats %+v", b.Stats())
	}
}

func TestSubmitChargesCPU(t *testing.T) {
	p := fastParams()
	p.Cost.CopyBytesPerUS = 100 // 10 µs per KB
	p.Cost.SubmitOverhead = 0
	a, _ := pair(t, p)
	start := time.Now()
	a.SendEager(Header{Src: 0, Dst: 1}, make([]byte, 10_000)) // 100µs of copy
	if el := time.Since(start); el < 100*time.Microsecond {
		t.Fatalf("SendEager returned after %v, want >= 100µs of copy cost", el)
	}
}

func TestSendDataIsZeroCopy(t *testing.T) {
	p := fastParams()
	p.Cost.CopyBytesPerUS = 1 // copies would be catastrophically slow
	p.Cost.DMASetup = time.Microsecond
	a, _ := pair(t, p)
	start := time.Now()
	a.SendData(Header{Src: 0, Dst: 1}, 0, make([]byte, 1<<20))
	if el := time.Since(start); el > 10*time.Millisecond {
		t.Fatalf("SendData took %v: it must not pay a copy cost", el)
	}
}

func TestRecvCopiesCharged(t *testing.T) {
	p := fastParams()
	p.RecvCopies = true
	p.Cost.CopyBytesPerUS = 100 // 10 µs per KB
	a, b := pair(t, p)
	a.SendEager(Header{Src: 0, Dst: 1}, make([]byte, 20_000))
	deadline := time.Now().Add(time.Second)
	for {
		start := time.Now()
		pk := b.Poll()
		if pk != nil {
			if el := time.Since(start); el < 200*time.Microsecond {
				t.Fatalf("receiving Poll took %v, want >= 200µs copy", el)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no packet")
		}
	}
}

func TestBlockingPoll(t *testing.T) {
	a, b := pair(t, fastParams())
	go func() {
		time.Sleep(2 * time.Millisecond)
		a.SendEager(Header{Src: 0, Dst: 1, Tag: 3}, []byte("zz"))
	}()
	p := b.BlockingPoll(2 * time.Second)
	if p == nil || p.Tag != 3 {
		t.Fatalf("BlockingPoll = %+v", p)
	}
	if p := b.BlockingPoll(10 * time.Millisecond); p != nil {
		t.Fatalf("phantom packet %+v", p)
	}
}

func TestHasPending(t *testing.T) {
	a, b := pair(t, fastParams())
	if b.HasPending() {
		t.Fatal("fresh driver has pending")
	}
	a.SendEager(Header{Src: 0, Dst: 1}, []byte("x"))
	if !b.HasPending() {
		t.Fatal("pending not visible")
	}
	pollUntil(t, b, time.Second)
	if b.HasPending() {
		t.Fatal("pending after drain")
	}
}

func TestCtrlPackets(t *testing.T) {
	a, b := pair(t, fastParams())
	a.SendCtrl(Header{Src: 0, Dst: 1, Tag: -1}, []byte{42})
	p := pollUntil(t, b, time.Second)
	if p.Kind != wire.PktCtrl || p.Payload[0] != 42 {
		t.Fatalf("bad ctrl %+v", p)
	}
}

func TestPresetsSane(t *testing.T) {
	mx, shm, tcp := MXParams(), SHMParams(), TCPParams()
	if mx.EagerMax != 32<<10 {
		t.Errorf("MX EagerMax = %d, want 32K (paper §2.3)", mx.EagerMax)
	}
	if mx.PIOMax != 128 {
		t.Errorf("MX PIOMax = %d, want 128 (paper §2.2)", mx.PIOMax)
	}
	if shm.Link.Latency >= mx.Link.Latency {
		t.Error("SHM latency should be below MX")
	}
	if !shm.RecvCopies {
		t.Error("SHM must copy on receive")
	}
	if tcp.Link.Latency <= mx.Link.Latency {
		t.Error("TCP latency should exceed MX")
	}
	if tcp.PIOMax != 0 {
		t.Error("TCP has no PIO path")
	}
}

func TestNewValidation(t *testing.T) {
	fab := wire.NewFabric(2, wire.MYRI10G())
	for _, bad := range []int{-1, 2, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(self=%d) did not panic", bad)
				}
			}()
			NewSim(MXParams(), fab, bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(nil fabric) did not panic")
			}
		}()
		New(MXParams(), nil)
	}()
}

func TestDefaultMTU(t *testing.T) {
	fab := wire.NewFabric(1, wire.MYRI10G())
	p := Params{Name: "x", Link: wire.MYRI10G()}
	d := NewSim(p, fab, 0)
	if d.MTU() <= 0 {
		t.Fatalf("MTU = %d, want positive default", d.MTU())
	}
}

func TestLenCodecProperty(t *testing.T) {
	f := func(n uint32, s uint64) bool {
		b := EncodeRTS(int(n), s)
		return DecodeLen(b) == int(n) && DecodeRTSSession(b) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if DecodeLen(nil) != 0 || DecodeLen([]byte{1, 2}) != 0 {
		t.Error("short buffers must decode to 0")
	}
	if DecodeRTSSession(make([]byte, 8)) != 0 {
		t.Error("sessionless payloads must decode to session 0")
	}
}

// TestStripeWeights pins the preset weights the multirail strategy keys
// off: inter-node rails (simulated and real) declare bandwidth shares,
// the simulated intra-node SHM channel declares none (it must stay out
// of cross-node striping), and a driver's live weight can be retuned at
// runtime from measured bandwidth.
func TestStripeWeights(t *testing.T) {
	for name, p := range map[string]Params{
		"mx": MXParams(), "tcp": TCPParams(), "real": RealParams(), "shm-real": ShmParams(),
	} {
		if p.StripeWeight <= 0 {
			t.Errorf("%s preset declares stripe weight %v, want positive", name, p.StripeWeight)
		}
	}
	if w := SHMParams().StripeWeight; w != 0 {
		t.Errorf("simulated SHM preset declares stripe weight %v, want 0 (intra-node only)", w)
	}
	fab := wire.NewFabric(1, wire.MYRI10G())
	d := NewSim(MXParams(), fab, 0)
	if d.StripeWeight() != MXParams().StripeWeight {
		t.Fatalf("driver weight %v, want the preset's %v", d.StripeWeight(), MXParams().StripeWeight)
	}
	d.SetStripeWeight(123.5)
	if d.StripeWeight() != 123.5 {
		t.Fatalf("retuned weight %v, want 123.5", d.StripeWeight())
	}
	d.SetStripeWeight(-1)
	if d.StripeWeight() != 0 {
		t.Fatalf("negative weight stored as %v, want clamped to 0", d.StripeWeight())
	}
}

// TestLostFramesWithoutCounter: rails whose endpoint keeps no loss
// accounting (the simulator never loses frames) report zero rather than
// failing the capability probe.
func TestLostFramesWithoutCounter(t *testing.T) {
	fab := wire.NewFabric(1, wire.MYRI10G())
	if got := NewSim(MXParams(), fab, 0).LostFrames(); got != 0 {
		t.Fatalf("simulated rail reports %d lost frames", got)
	}
}

// TestConcurrentStatsSnapshot drives sends, polls, and batched drains
// from multiple goroutines while a reader loops Stats() and a metrics
// snapshot; under -race this proves every driver counter is read and
// written atomically (the satellite this PR's registry conversion must
// preserve).
func TestConcurrentStatsSnapshot(t *testing.T) {
	p := fastParams()
	fab := wire.NewFabric(2, p.Link)
	a, b := NewSim(p, fab, 0), NewSim(p, fab, 1)
	reg := telemetry.NewRegistry()
	a.RegisterMetrics(reg, "node0.rail.fast")
	b.RegisterMetrics(reg, "node1.rail.fast")

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		seq := uint64(0)
		for {
			select {
			case <-done:
				return
			default:
				seq++
				a.SendEager(Header{Src: 0, Dst: 1, Tag: 7, Seq: seq, MsgID: seq}, []byte("x"))
			}
		}
	}()
	go func() {
		defer wg.Done()
		batch := make([]*wire.Packet, 8)
		for {
			select {
			case <-done:
				return
			default:
				if n := b.PollBatch(batch); n > 0 {
					for _, pk := range batch[:n] {
						fabric.ReleasePacket(pk)
					}
				}
			}
		}
	}()

	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		sa, sb := a.Stats(), b.Stats()
		if sb.Recvs > sa.EagerSent {
			t.Errorf("receiver saw %d packets, sender sent %d", sb.Recvs, sa.EagerSent)
			break
		}
		snap := reg.Snapshot()
		if snap.Value("node0.rail.fast.eager_sent") > sa.EagerSent+1_000_000 {
			t.Error("registry wildly disagrees with Stats()")
			break
		}
	}
	close(done)
	wg.Wait()

	s := a.Stats()
	if s.EagerSent == 0 {
		t.Fatal("no traffic recorded")
	}
	snap := reg.Snapshot()
	if got := snap.Value("node0.rail.fast.eager_sent"); got != s.EagerSent {
		t.Fatalf("registry eager_sent = %d, Stats = %d (quiesced, must agree)", got, s.EagerSent)
	}
	if occ := snap.Get("node1.rail.fast.batch_occupancy"); occ == nil || occ.Hist.Count == 0 {
		t.Fatal("batch occupancy histogram recorded nothing")
	}
	if occ := snap.Get("node1.rail.fast.batch_occupancy").Hist; occ.Count != b.Stats().PollBatches {
		t.Fatalf("occupancy count %d != PollBatches %d", occ.Count, b.Stats().PollBatches)
	}
}
