package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
)

// BucketCount is one occupied log2 bucket of a captured histogram: Bit is
// the bits.Len64 bucket index (0 means the value 0, i>0 covers
// [2^(i-1), 2^i)), Count is how many observations landed there. Only
// occupied buckets are captured, keeping snapshots small.
type BucketCount struct {
	Bit   int    `json:"bit"`
	Count uint64 `json:"count"`
}

// HistogramValue is a captured histogram: occupied buckets in ascending
// bit order plus the observation count and value sum.
type HistogramValue struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts, returning the upper bound of the bucket the q-th observation
// falls in. Log2 buckets bound the estimate within 2x of the true value,
// which is the resolution nmtop's p50/p99 columns need. Returns 0 for an
// empty histogram.
func (h *HistogramValue) Quantile(q float64) uint64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for _, b := range h.Buckets {
		seen += b.Count
		if seen >= rank {
			return bucketUpper(b.Bit)
		}
	}
	return bucketUpper(h.Buckets[len(h.Buckets)-1].Bit)
}

// Mean returns the arithmetic mean of the observations, 0 if empty.
func (h *HistogramValue) Mean() float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// bucketUpper returns the inclusive upper bound of log2 bucket bit.
func bucketUpper(bit int) uint64 {
	if bit <= 0 {
		return 0
	}
	return 1<<uint(bit) - 1
}

// MetricValue is one captured metric: a name, its kind, and either a
// scalar value (counters, gauges) or a histogram capture.
type MetricValue struct {
	Name  string          `json:"name"`
	Help  string          `json:"help,omitempty"`
	Kind  Kind            `json:"kind"`
	Value uint64          `json:"value,omitempty"`
	Hist  *HistogramValue `json:"hist,omitempty"`
}

// Snapshot is a point-in-time capture of a registry, sorted by metric
// name. It is the unit the HTTP endpoint serves, nmtop diffs, and tests
// assert on.
type Snapshot struct {
	TakenUnixNano int64         `json:"taken_unix_nano"`
	Metrics       []MetricValue `json:"metrics"`
}

// Get returns the metric with the given name, or nil if absent.
func (s *Snapshot) Get(name string) *MetricValue {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return &s.Metrics[i]
		}
	}
	return nil
}

// Value returns the scalar value of the named counter or gauge, 0 if the
// metric is absent — the convenient form for test assertions.
func (s *Snapshot) Value(name string) uint64 {
	if m := s.Get(name); m != nil {
		return m.Value
	}
	return 0
}

// WriteJSON writes the snapshot as a single JSON object (the
// /metrics.json wire format nmtop consumes).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// promName converts a hierarchical dotted metric name to the
// underscore-only identifier Prometheus requires ("node0.rail.shm.sent"
// becomes "pioman_node0_rail_shm_sent"). Dots and dashes map to
// underscores; the pioman_ prefix namespaces the whole registry.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 8)
	b.WriteString("pioman_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (v0.0.4): HELP/TYPE headers per metric, histograms as
// cumulative le-labelled buckets plus _sum and _count series.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, m := range s.Metrics {
		pn := promName(m.Name)
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", pn, m.Help); err != nil {
				return err
			}
		}
		switch m.Kind {
		case KindHistogram:
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
				return err
			}
			var cum uint64
			for _, b := range m.Hist.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, bucketUpper(b.Bit), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				pn, m.Hist.Count, pn, m.Hist.Sum, pn, m.Hist.Count); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, m.Value); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// Delta returns cur minus prev as per-metric differences keyed by name:
// counter values subtract (clamped at 0 if a process restarted),
// histogram counts subtract per bucket, gauges pass through cur's value.
// nmtop calls this once per poll interval to turn cumulative counters
// into rates.
func Delta(prev, cur *Snapshot) map[string]MetricValue {
	out := make(map[string]MetricValue, len(cur.Metrics))
	for _, m := range cur.Metrics {
		d := m
		if p := prev.Get(m.Name); p != nil {
			switch m.Kind {
			case KindCounter:
				if m.Value >= p.Value {
					d.Value = m.Value - p.Value
				} else {
					d.Value = 0
				}
			case KindHistogram:
				d.Hist = histDelta(p.Hist, m.Hist)
			}
		}
		out[m.Name] = d
	}
	return out
}

// histDelta subtracts prev's bucket counts from cur's.
func histDelta(prev, cur *HistogramValue) *HistogramValue {
	if cur == nil {
		return nil
	}
	if prev == nil {
		return cur
	}
	prevByBit := make(map[int]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevByBit[b.Bit] = b.Count
	}
	d := &HistogramValue{}
	if cur.Sum >= prev.Sum {
		d.Sum = cur.Sum - prev.Sum
	}
	for _, b := range cur.Buckets {
		n := b.Count - prevByBit[b.Bit]
		if n > b.Count { // underflow: restarted source
			n = b.Count
		}
		if n > 0 {
			d.Buckets = append(d.Buckets, BucketCount{Bit: b.Bit, Count: n})
			d.Count += n
		}
	}
	return d
}

// Handler returns an http.Handler serving the registry at two paths:
// /metrics (Prometheus text format) and /metrics.json (JSON snapshot,
// the format cmd/nmtop polls). Each request takes a fresh snapshot.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w)
	})
	return mux
}

// Serve starts an HTTP server for the registry on addr (e.g. ":9090"),
// returning the listener's actual address (useful with ":0") and a stop
// function. The server runs on a background goroutine; errors after a
// successful Listen are dropped, as a metrics endpoint must never take
// down the workload it observes.
func Serve(r *Registry, addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
