package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count", "test counter")
	g := r.Gauge("a.gauge", "test gauge")
	c.Inc()
	c.Add(4)
	g.Set(7)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	s := r.Snapshot()
	if got := s.Value("a.count"); got != 5 {
		t.Fatalf("snapshot counter = %d, want 5", got)
	}
	if got := s.Value("a.gauge"); got != 7 {
		t.Fatalf("snapshot gauge = %d, want 7", got)
	}
}

func TestShardedCounterConcurrent(t *testing.T) {
	var c ShardedCounter
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*per {
		t.Fatalf("sharded counter = %d, want %d", got, goroutines*per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0) // bucket 0
	h.Observe(1) // bucket 1
	h.Observe(2) // bucket 2
	h.Observe(3) // bucket 2
	h.Observe(1 << 40)
	h.Observe(1<<63 + 5) // clamps into the last bucket
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	r := NewRegistry()
	hr := r.Histogram("h", "test")
	for i := 0; i < 100; i++ {
		hr.Observe(100) // bucket 7, upper bound 127
	}
	hr.Observe(100000) // bucket 17
	s := r.Snapshot()
	hv := s.Get("h").Hist
	if hv.Count != 101 {
		t.Fatalf("snapshot count = %d, want 101", hv.Count)
	}
	if p50 := hv.Quantile(0.50); p50 != 127 {
		t.Fatalf("p50 = %d, want 127", p50)
	}
	if p99 := hv.Quantile(0.99); p99 != 127 {
		t.Fatalf("p99 = %d, want 127", p99)
	}
	if max := hv.Quantile(1.0); max != (1<<17)-1 {
		t.Fatalf("p100 = %d, want %d", max, (1<<17)-1)
	}
}

func TestObserveDurationDropsNegative(t *testing.T) {
	var h Histogram
	h.ObserveDuration(-time.Second)
	if h.Count() != 0 {
		t.Fatal("negative duration was recorded")
	}
	h.ObserveDuration(time.Microsecond)
	if h.Count() != 1 {
		t.Fatal("positive duration was not recorded")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "")
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	g := r.Gauge("y", "")
	g.Set(1)
	h := r.Histogram("z", "")
	h.Observe(1)
	s := r.Snapshot()
	if len(s.Metrics) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestConcurrentSnapshot hammers every metric type from writer goroutines
// while a reader loops Snapshot; under -race this proves the record and
// read paths share no unsynchronized state.
func TestConcurrentSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "")
	var sc ShardedCounter
	r.RegisterCounter("sc", "", sc.Load)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					c.Inc()
					g.Set(42)
					h.Observe(1000)
					sc.Inc()
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		s := r.Snapshot()
		hv := s.Get("h").Hist
		var sum uint64
		for _, b := range hv.Buckets {
			sum += b.Count
		}
		if sum != hv.Count {
			t.Fatalf("histogram bucket sum %d != count %d", sum, hv.Count)
		}
	}
	close(done)
	wg.Wait()
}

func TestRecordPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "")
	var sc ShardedCounter
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(12345)
		sc.Inc()
	}); n != 0 {
		t.Fatalf("record path allocates %.1f/op, want 0", n)
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("node0.rail.shm.eager_sent", "eager frames sent").Add(3)
	r.Gauge("node0.engine.pending", "pending requests").Set(2)
	h := r.Histogram("node0.engine.dwell_ns", "progress dwell")
	h.Observe(100)
	h.Observe(200)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE pioman_node0_rail_shm_eager_sent counter",
		"pioman_node0_rail_shm_eager_sent 3",
		"# TYPE pioman_node0_engine_pending gauge",
		"pioman_node0_engine_pending 2",
		"# TYPE pioman_node0_engine_dwell_ns histogram",
		"pioman_node0_engine_dwell_ns_count 2",
		"pioman_node0_engine_dwell_ns_sum 300",
		`pioman_node0_engine_dwell_ns_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}
	if err := checkPromText(strings.NewReader(text)); err != nil {
		t.Fatalf("prometheus text does not parse: %v", err)
	}
}

// checkPromText is a minimal exposition-format parser: every
// non-comment line must be "name[{labels}] value" with a numeric value,
// and histogram buckets must be cumulative.
func checkPromText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return fmt.Errorf("no value separator in %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			return fmt.Errorf("bad value in %q: %v", line, err)
		}
	}
	return sc.Err()
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "help a").Add(9)
	r.Histogram("b", "").Observe(5)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Value("a") != 9 {
		t.Fatalf("round-tripped a = %d, want 9", s.Value("a"))
	}
	if hv := s.Get("b").Hist; hv == nil || hv.Count != 1 {
		t.Fatalf("round-tripped histogram = %+v", s.Get("b").Hist)
	}
}

func TestDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "")
	c.Add(10)
	h.Observe(100)
	prev := r.Snapshot()
	c.Add(5)
	h.Observe(100)
	h.Observe(200)
	cur := r.Snapshot()
	d := Delta(prev, cur)
	if d["c"].Value != 5 {
		t.Fatalf("counter delta = %d, want 5", d["c"].Value)
	}
	if d["h"].Hist.Count != 2 {
		t.Fatalf("histogram delta count = %d, want 2", d["h"].Hist.Count)
	}
}

func TestHandlerServesBothFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", "").Add(1)
	addr, stop, err := Serve(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "pioman_hits 1") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}
	resp, err = http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	err = json.NewDecoder(resp.Body).Decode(&s)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if s.Value("hits") != 1 {
		t.Fatalf("/metrics.json hits = %d, want 1", s.Value("hits"))
	}
}

func TestKindString(t *testing.T) {
	if KindCounter.String() != "counter" || KindGauge.String() != "gauge" || KindHistogram.String() != "histogram" {
		t.Fatal("kind names wrong")
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("unknown kind = %q", got)
	}
}
