// Package telemetry is the repo's unified metrics layer: a
// zero-allocation registry of counters, gauges and log2-bucketed
// histograms that every subsystem (the engine, the nic drivers, the
// fabric buffer pool) records into on its hot paths and that the
// exporters (the Prometheus/JSON HTTP endpoint, cmd/nmtop) read out of.
//
// The paper's whole argument is about *when* progress happens — overlap,
// submission latency, wakeups — and before this package that was only
// visible post-hoc through scattered Stats structs and bench JSON. The
// registry gives every counter a stable hierarchical name (dot-separated,
// keyed by node, rail and peer rank: "node0.rail.shm.eager_sent",
// "node0.peer.1.sent_msgs") so live tooling can watch a run instead of
// dissecting it afterwards.
//
// Design rules, in order:
//
//   - Recording must cost nanoseconds and zero allocations: counters and
//     gauges are single atomic adds, histogram observation is one
//     bits.Len plus one atomic add, and the write-hot global counters
//     (the buffer pool's) shard across cache lines so concurrent
//     recorders do not serialize on one word.
//   - Registration may allocate freely: it happens once, at construction.
//   - Reading is always a consistent-enough snapshot of live atomics:
//     Snapshot walks the registry without stopping writers, exactly like
//     reading nic.Stats always has been.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Counter is a monotonically increasing counter: one atomic word, so Add
// is a single uncontended atomic instruction. The zero Counter is ready
// to use, which lets owners embed counters as plain struct fields (the
// nic driver's Stats backing) and register them later.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value. Like Counter it is one atomic
// word and the zero value is ready to use.
type Gauge struct{ v atomic.Uint64 }

// Set stores the gauge's current value.
func (g *Gauge) Set(n uint64) { g.v.Store(n) }

// Add adjusts the gauge by n (use with care: gauges are snapshots, not
// tallies — prefer Set from an authoritative source).
func (g *Gauge) Add(n uint64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() uint64 { return g.v.Load() }

// shardCount is the number of cache-line-padded shards a ShardedCounter
// spreads its adds over. Must be a power of two.
const shardCount = 16

// paddedUint64 is an atomic counter padded to its own cache line, so
// adjacent shards never false-share.
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// ShardedCounter is a Counter for write-hot shared paths: adds spread
// over cache-line-padded shards so goroutines hammering the same logical
// counter (the buffer pool's hit tally under a message storm) do not
// serialize on one cache line. Load sums the shards, so reads are a few
// nanoseconds slower — the right trade for a counter written millions of
// times a second and read once per scrape. The zero value is ready to use.
type ShardedCounter struct{ shards [shardCount]paddedUint64 }

// Add increments the counter by n. The shard is picked from the address
// of a stack variable: goroutine stacks are disjoint, so concurrent
// goroutines land on different shards with no runtime support needed,
// and the pick costs a shift and a mask.
func (c *ShardedCounter) Add(n uint64) {
	var probe byte
	i := (uintptr(unsafe.Pointer(&probe)) >> 10) & (shardCount - 1)
	c.shards[i].v.Add(n)
}

// Inc increments the counter by one.
func (c *ShardedCounter) Inc() { c.Add(1) }

// Load returns the current total across shards. Concurrent adds may or
// may not be included — the usual torn-snapshot semantics every Stats
// reader in this repo already lives with.
func (c *ShardedCounter) Load() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// histBuckets is the number of log2 buckets a Histogram holds: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 is
// exactly 0, bucket i covers [2^(i-1), 2^i). 48 buckets span 1ns..~1.6
// days when observing nanoseconds, and 0..2^47 for dimensionless values
// like batch occupancy — everything this repo measures.
const histBuckets = 48

// Histogram is a log2-bucketed histogram of non-negative integer
// observations (durations in nanoseconds, batch occupancies, byte
// counts). Observe is one bits.Len64 plus two atomic adds — no locks, no
// allocation, no floating point — which is what lets the engine observe
// progress-loop dwell and rendezvous handshake latency on live paths.
// Quantiles are estimated at read time from the bucket counts
// (HistogramValue.Quantile); log2 buckets bound the relative error at 2x,
// plenty for the p50-vs-p99 shape questions nmtop answers.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one observation. Nil receivers are no-ops, matching
// the repo's nil-Recorder idiom: instrumented components hold an
// optional histogram and pay one predictable branch when it is absent.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := bits.Len64(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[i].Add(1)
}

// ObserveDuration records a duration in nanoseconds; negative durations
// (clock steps) are dropped rather than recorded as huge unsigned values.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		return
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations so far; 0 on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Kind discriminates the metric types a registry holds.
type Kind uint8

// Metric kinds.
const (
	// KindCounter is a monotonically increasing tally.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value.
	KindGauge
	// KindHistogram is a log2-bucketed distribution.
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind Kind
	read func() uint64 // counter/gauge value source
	hist *Histogram
}

// Registry maps stable hierarchical metric names to live metric sources.
// Names are dot-separated paths — "node0.rail.shm.eager_sent" — whose
// segments tooling groups on (nmtop splits on node/rail/peer). A name
// may be registered once; a duplicate registration panics, because two
// writers behind one name is a construction-time wiring bug, not a
// runtime condition. Registration takes a lock and allocates; recording
// through the returned handles never does.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register adds one entry, enforcing name uniqueness.
func (r *Registry) register(e *entry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[e.name] {
		panic(fmt.Sprintf("telemetry: duplicate metric name %q", e.name))
	}
	r.names[e.name] = true
	r.entries = append(r.entries, e)
}

// Registered reports whether name is already registered — the guard
// process-global registrations (the buffer pool's) use to stay
// idempotent when several in-process nodes share one registry. False on
// a nil registry.
func (r *Registry) Registered(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.names[name]
}

// Counter creates, registers and returns a counter under name. A nil
// registry returns a live but unregistered counter, so callers can
// instrument unconditionally and let wiring decide whether anything
// reads it.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, c.Load)
	return c
}

// RegisterCounter registers an existing counter-shaped value source —
// any func returning a monotone uint64, such as (*Counter).Load, a
// ShardedCounter's Load, or a nic driver's existing atomic field — under
// name. This is how subsystems that already keep atomic counts join the
// registry without changing their hot paths. No-op on a nil registry.
func (r *Registry) RegisterCounter(name, help string, read func() uint64) {
	r.register(&entry{name: name, help: help, kind: KindCounter, read: read})
}

// Gauge creates, registers and returns a gauge under name. A nil
// registry returns a live but unregistered gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, help, g.Load)
	return g
}

// RegisterGauge registers a gauge-shaped value source (sampled at
// snapshot time, so the source must be safe to call from any goroutine).
// No-op on a nil registry.
func (r *Registry) RegisterGauge(name, help string, read func() uint64) {
	r.register(&entry{name: name, help: help, kind: KindGauge, read: read})
}

// Histogram creates, registers and returns a histogram under name. A nil
// registry returns a live but unregistered histogram, so recording sites
// need no nil checks beyond their own gating.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	if r != nil {
		r.register(&entry{name: name, help: help, kind: KindHistogram, hist: h})
	}
	return h
}

// Snapshot reads every registered metric into a point-in-time value set,
// sorted by name. Writers are not stopped: each value is an atomic read
// (or a sum of shard reads), the same consistency every Stats() snapshot
// in this repo has always offered. Snapshot allocates; it is the read
// path, not the record path.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	s := &Snapshot{
		TakenUnixNano: time.Now().UnixNano(),
		Metrics:       make([]MetricValue, 0, len(entries)),
	}
	for _, e := range entries {
		mv := MetricValue{Name: e.name, Help: e.help, Kind: e.kind}
		switch e.kind {
		case KindHistogram:
			hv := &HistogramValue{}
			for i := range e.hist.buckets {
				if n := e.hist.buckets[i].Load(); n > 0 {
					hv.Buckets = append(hv.Buckets, BucketCount{Bit: i, Count: n})
				}
			}
			// Count is summed from the captured buckets rather than read
			// from the live count word, so Count always equals the bucket
			// total even when observations race the walk.
			for _, b := range hv.Buckets {
				hv.Count += b.Count
			}
			hv.Sum = e.hist.sum.Load()
			mv.Hist = hv
		default:
			mv.Value = e.read()
		}
		s.Metrics = append(s.Metrics, mv)
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
	return s
}
