package ptime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSpinForZeroAndNegative(t *testing.T) {
	start := time.Now()
	SpinFor(0)
	SpinFor(-time.Millisecond)
	if el := time.Since(start); el > 5*time.Millisecond {
		t.Fatalf("SpinFor(<=0) took %v, want ~0", el)
	}
}

func TestSpinForDuration(t *testing.T) {
	for _, d := range []time.Duration{20 * time.Microsecond, 200 * time.Microsecond, 2 * time.Millisecond} {
		start := time.Now()
		SpinFor(d)
		el := time.Since(start)
		if el < d {
			t.Errorf("SpinFor(%v) returned after %v, want >= %v", d, el, d)
		}
		// Allow generous slack for scheduling noise but catch gross errors.
		if el > d*10+time.Millisecond {
			t.Errorf("SpinFor(%v) took %v, way over budget", d, el)
		}
	}
}

func TestSpinUntilPast(t *testing.T) {
	start := time.Now()
	SpinUntil(start.Add(-time.Second))
	if el := time.Since(start); el > 5*time.Millisecond {
		t.Fatalf("SpinUntil(past) took %v, want ~0", el)
	}
}

func TestStopwatch(t *testing.T) {
	sw := NewStopwatch()
	SpinFor(100 * time.Microsecond)
	if e := sw.Elapsed(); e < 100*time.Microsecond {
		t.Fatalf("Elapsed = %v, want >= 100µs", e)
	}
	sw.Restart()
	if e := sw.Elapsed(); e > time.Millisecond {
		t.Fatalf("after Restart, Elapsed = %v, want ~0", e)
	}
}

func TestCopyCostLinear(t *testing.T) {
	c := DefaultCostModel()
	if got := c.CopyCost(2500); got != time.Microsecond {
		t.Errorf("CopyCost(2500) = %v, want 1µs", got)
	}
	if got := c.CopyCost(0); got != 0 {
		t.Errorf("CopyCost(0) = %v, want 0", got)
	}
	if got := c.CopyCost(-5); got != 0 {
		t.Errorf("CopyCost(-5) = %v, want 0", got)
	}
}

func TestPIOSlowerThanCopy(t *testing.T) {
	c := DefaultCostModel()
	for _, n := range []int{64, 128, 1024} {
		if c.PIOCost(n) <= c.CopyCost(n) {
			t.Errorf("PIOCost(%d)=%v should exceed CopyCost(%d)=%v", n, c.PIOCost(n), n, c.CopyCost(n))
		}
	}
}

func TestZeroRateCostModel(t *testing.T) {
	var c CostModel
	if c.CopyCost(1024) != 0 || c.PIOCost(1024) != 0 {
		t.Fatal("zero-rate cost model must report zero cost, not divide by zero")
	}
}

// Property: cost is monotone non-decreasing in size.
func TestCostMonotonicProperty(t *testing.T) {
	c := DefaultCostModel()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return c.CopyCost(x) <= c.CopyCost(y) && c.PIOCost(x) <= c.PIOCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cost of concatenation is (approximately) additive; allow 1ns
// rounding slack per term.
func TestCostAdditiveProperty(t *testing.T) {
	c := DefaultCostModel()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		sum := c.CopyCost(x) + c.CopyCost(y)
		whole := c.CopyCost(x + y)
		diff := sum - whole
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2*time.Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChargeCopyBurnsTime(t *testing.T) {
	c := DefaultCostModel()
	start := time.Now()
	c.ChargeCopy(250000) // 100µs at 2.5GB/s
	if el := time.Since(start); el < 100*time.Microsecond {
		t.Fatalf("ChargeCopy(250000) took %v, want >= 100µs", el)
	}
}

func TestVirtualChargesInsteadOfSpinning(t *testing.T) {
	SetVirtual(true)
	defer SetVirtual(false)
	start := time.Now()
	base := Charged()
	SpinFor(50 * time.Millisecond)
	SpinUntil(time.Now().Add(30 * time.Millisecond))
	if el := time.Since(start); el > 10*time.Millisecond {
		t.Fatalf("virtual SpinFor burned %v of wall time, want ~0", el)
	}
	got := Charged() - base
	if got < 79*time.Millisecond || got > 81*time.Millisecond {
		t.Fatalf("Charged = %v, want ~80ms", got)
	}
}

func TestVirtualUncountedSuppressesCharges(t *testing.T) {
	SetVirtual(true)
	defer SetVirtual(false)
	base := Charged()
	Uncounted(func() {
		SpinFor(time.Second)
		Uncounted(func() { SpinFor(time.Second) }) // nesting holds
		SpinFor(time.Second)
	})
	if d := Charged() - base; d != 0 {
		t.Fatalf("Charged %v inside Uncounted, want 0", d)
	}
	SpinFor(time.Millisecond)
	if d := Charged() - base; d != time.Millisecond {
		t.Fatalf("Charged = %v after Uncounted returned, want 1ms", d)
	}
}

func TestVirtualStopwatchCountsOwnGoroutineOnly(t *testing.T) {
	SetVirtual(true)
	defer SetVirtual(false)
	sw := NewStopwatch()
	done := make(chan struct{})
	go func() {
		// Another goroutine's charge models an idle core doing the work
		// in parallel: it must not appear in this stopwatch.
		SpinFor(time.Second)
		close(done)
	}()
	<-done
	SpinFor(2 * time.Millisecond)
	el := sw.Elapsed()
	if el < 2*time.Millisecond {
		t.Fatalf("Elapsed = %v, want >= the 2ms charged here", el)
	}
	if el > 500*time.Millisecond {
		t.Fatalf("Elapsed = %v includes another goroutine's 1s charge", el)
	}
}

func TestSetVirtualOffRestoresSpinning(t *testing.T) {
	SetVirtual(true)
	SpinFor(time.Hour) // booked, not burned
	SetVirtual(false)
	if Charged() != 0 {
		t.Fatal("Charged nonzero after SetVirtual(false)")
	}
	start := time.Now()
	SpinFor(200 * time.Microsecond)
	if el := time.Since(start); el < 200*time.Microsecond {
		t.Fatalf("real SpinFor returned after %v, want >= 200µs", el)
	}
}
