package ptime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSpinForZeroAndNegative(t *testing.T) {
	start := time.Now()
	SpinFor(0)
	SpinFor(-time.Millisecond)
	if el := time.Since(start); el > 5*time.Millisecond {
		t.Fatalf("SpinFor(<=0) took %v, want ~0", el)
	}
}

func TestSpinForDuration(t *testing.T) {
	for _, d := range []time.Duration{20 * time.Microsecond, 200 * time.Microsecond, 2 * time.Millisecond} {
		start := time.Now()
		SpinFor(d)
		el := time.Since(start)
		if el < d {
			t.Errorf("SpinFor(%v) returned after %v, want >= %v", d, el, d)
		}
		// Allow generous slack for scheduling noise but catch gross errors.
		if el > d*10+time.Millisecond {
			t.Errorf("SpinFor(%v) took %v, way over budget", d, el)
		}
	}
}

func TestSpinUntilPast(t *testing.T) {
	start := time.Now()
	SpinUntil(start.Add(-time.Second))
	if el := time.Since(start); el > 5*time.Millisecond {
		t.Fatalf("SpinUntil(past) took %v, want ~0", el)
	}
}

func TestStopwatch(t *testing.T) {
	sw := NewStopwatch()
	SpinFor(100 * time.Microsecond)
	if e := sw.Elapsed(); e < 100*time.Microsecond {
		t.Fatalf("Elapsed = %v, want >= 100µs", e)
	}
	sw.Restart()
	if e := sw.Elapsed(); e > time.Millisecond {
		t.Fatalf("after Restart, Elapsed = %v, want ~0", e)
	}
}

func TestCopyCostLinear(t *testing.T) {
	c := DefaultCostModel()
	if got := c.CopyCost(2500); got != time.Microsecond {
		t.Errorf("CopyCost(2500) = %v, want 1µs", got)
	}
	if got := c.CopyCost(0); got != 0 {
		t.Errorf("CopyCost(0) = %v, want 0", got)
	}
	if got := c.CopyCost(-5); got != 0 {
		t.Errorf("CopyCost(-5) = %v, want 0", got)
	}
}

func TestPIOSlowerThanCopy(t *testing.T) {
	c := DefaultCostModel()
	for _, n := range []int{64, 128, 1024} {
		if c.PIOCost(n) <= c.CopyCost(n) {
			t.Errorf("PIOCost(%d)=%v should exceed CopyCost(%d)=%v", n, c.PIOCost(n), n, c.CopyCost(n))
		}
	}
}

func TestZeroRateCostModel(t *testing.T) {
	var c CostModel
	if c.CopyCost(1024) != 0 || c.PIOCost(1024) != 0 {
		t.Fatal("zero-rate cost model must report zero cost, not divide by zero")
	}
}

// Property: cost is monotone non-decreasing in size.
func TestCostMonotonicProperty(t *testing.T) {
	c := DefaultCostModel()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return c.CopyCost(x) <= c.CopyCost(y) && c.PIOCost(x) <= c.PIOCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cost of concatenation is (approximately) additive; allow 1ns
// rounding slack per term.
func TestCostAdditiveProperty(t *testing.T) {
	c := DefaultCostModel()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		sum := c.CopyCost(x) + c.CopyCost(y)
		whole := c.CopyCost(x + y)
		diff := sum - whole
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2*time.Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChargeCopyBurnsTime(t *testing.T) {
	c := DefaultCostModel()
	start := time.Now()
	c.ChargeCopy(250000) // 100µs at 2.5GB/s
	if el := time.Since(start); el < 100*time.Microsecond {
		t.Fatalf("ChargeCopy(250000) took %v, want >= 100µs", el)
	}
}
