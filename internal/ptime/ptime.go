// Package ptime provides microsecond-precision busy-wait timing used to
// model CPU-bound costs (application computation, memory copies, PIO
// transfers) on real cores.
//
// The paper's central claim is that CPU-hungry communication operations can
// be moved to idle cores so that they physically overlap with application
// computation. To reproduce that mechanically, every CPU cost in this
// repository is an actual busy-wait executed by the goroutine that "pays"
// the cost: if the spin runs on an idle core's worker, the application
// thread keeps computing in parallel; if it runs inline, it delays the
// caller. Wall-clock measurements then exhibit the same max-vs-sum behaviour
// the paper reports.
package ptime

import (
	"sync/atomic"
	"time"
)

// spinBatch is the number of inner iterations executed between clock reads.
// Reading the clock on every iteration would dominate the loop on fast
// machines; batching keeps precision well under a microsecond while keeping
// the loop CPU-bound.
const spinBatch = 64

// sink defeats dead-code elimination of the spin loop.
var sink atomic.Uint64

// SpinFor busy-waits for approximately d, burning the executing core.
// It never yields to the Go scheduler: the point is to occupy a core the
// way a memcpy or PIO transfer would. In virtual mode (SetVirtual) the
// duration is billed to the calling goroutine's meter instead of burned.
func SpinFor(d time.Duration) {
	if d <= 0 {
		return
	}
	if virtualOn.Load() {
		charge(d)
		return
	}
	SpinUntil(time.Now().Add(d))
}

// SpinUntil busy-waits until the wall clock reaches deadline; in virtual
// mode the remaining duration is billed instead of burned.
func SpinUntil(deadline time.Time) {
	if virtualOn.Load() {
		charge(time.Until(deadline))
		return
	}
	var acc uint64
	for time.Now().Before(deadline) {
		for i := 0; i < spinBatch; i++ {
			acc += uint64(i)
		}
	}
	sink.Add(acc)
}

// Compute is an alias for SpinFor with intent: it models application
// computation (the compute() phase of the paper's Fig. 4 benchmark).
func Compute(d time.Duration) { SpinFor(d) }

// A Stopwatch measures elapsed wall time with the monotonic clock. In
// virtual mode it additionally counts the virtual CPU time billed to its
// own goroutine, so a measurement spanning charged costs reads the same
// whether they were burned or booked; create and read it on the same
// goroutine.
type Stopwatch struct {
	start   time.Time
	vstart  time.Duration
	virtual bool
}

// NewStopwatch returns a started stopwatch.
func NewStopwatch() Stopwatch {
	sw := Stopwatch{start: time.Now()}
	if virtualOn.Load() {
		sw.virtual = true
		sw.vstart = Charged()
	}
	return sw
}

// Elapsed reports the time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration {
	el := time.Since(s.start)
	if s.virtual {
		el += Charged() - s.vstart
	}
	return el
}

// Restart resets the stopwatch to now.
func (s *Stopwatch) Restart() { *s = NewStopwatch() }
