package ptime

import "time"

// CostModel converts data sizes into CPU time for the host-side operations
// the paper discusses: memory copies into registered buffers, PIO
// programmed-I/O transfers, and fixed per-operation overheads. All values
// default to the MYRI-10G-era constants listed in DESIGN.md §3.1 but are
// configurable so that ablation benchmarks can explore other regimes.
type CostModel struct {
	// CopyBytesPerUS is the host memcpy throughput in bytes per
	// microsecond (2.5 GB/s ≈ 2500 B/µs).
	CopyBytesPerUS float64
	// PIOBytesPerUS is the programmed-I/O throughput. PIO writes each
	// word through the CPU, considerably slower than a cached memcpy.
	PIOBytesPerUS float64
	// SubmitOverhead is the fixed cost of preparing and posting one
	// network request (descriptor setup, doorbell).
	SubmitOverhead time.Duration
	// DMASetup is the fixed cost of programming a zero-copy DMA
	// transfer (memory registration is assumed cached, as under MX).
	DMASetup time.Duration
}

// DefaultCostModel mirrors the paper's testbed: host copies at 2.5 GB/s,
// PIO at 0.5 GB/s, ~0.4 µs request posting, ~1 µs DMA programming.
func DefaultCostModel() CostModel {
	return CostModel{
		CopyBytesPerUS: 2500,
		PIOBytesPerUS:  500,
		SubmitOverhead: 400 * time.Nanosecond,
		DMASetup:       1 * time.Microsecond,
	}
}

// CopyCost returns the CPU time to copy n bytes at memcpy speed.
func (c CostModel) CopyCost(n int) time.Duration {
	if n <= 0 || c.CopyBytesPerUS <= 0 {
		return 0
	}
	return time.Duration(float64(n) / c.CopyBytesPerUS * float64(time.Microsecond))
}

// PIOCost returns the CPU time to push n bytes through programmed I/O.
func (c CostModel) PIOCost(n int) time.Duration {
	if n <= 0 || c.PIOBytesPerUS <= 0 {
		return 0
	}
	return time.Duration(float64(n) / c.PIOBytesPerUS * float64(time.Microsecond))
}

// ChargeCopy burns CPU for a copy of n bytes on the calling goroutine.
func (c CostModel) ChargeCopy(n int) { SpinFor(c.CopyCost(n)) }

// ChargePIO burns CPU for a PIO transfer of n bytes.
func (c CostModel) ChargePIO(n int) { SpinFor(c.PIOCost(n)) }
