package ptime

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Virtual-time CPU charging.
//
// Busy-wait charging reproduces the paper's overlap physics only when the
// host has real cores to overlap on: with every simulated core timesharing
// one host CPU, an "offloaded" spin still serializes with the application
// thread and the max-vs-sum shape collapses into noise. Virtual mode keeps
// the attribution while dropping the burn: SpinFor records the duration on
// the calling goroutine's meter instead of spinning, and a Stopwatch reads
// elapsed time as wall clock plus whatever its own goroutine was charged.
// Work performed by another goroutine (an idle core's worker) lands on that
// goroutine's meter and never inflates the measuring thread's elapsed —
// which is exactly the overlap the busy-wait version exhibits physically.
// The Fig. 5/6 shape tests enable it on hosts below 4 CPUs, where they
// previously had to skip.

// virtualOn gates every charge site; a single atomic load keeps the
// real-time path (production and well-provisioned hosts) at zero cost.
var virtualOn atomic.Bool

// vaccount is one goroutine's virtual CPU meter. charged accumulates the
// nanoseconds billed to the goroutine; depth is the Uncounted nesting
// level, touched only by the owning goroutine.
type vaccount struct {
	charged atomic.Int64
	depth   int
}

// vaccounts maps goroutine id → *vaccount while virtual mode is on.
var vaccounts sync.Map

// SetVirtual switches CPU charging between busy-waiting (false, the
// default) and virtual accounting (true). Turning it off discards every
// goroutine's meter, so tests leave no state behind.
func SetVirtual(on bool) {
	virtualOn.Store(on)
	if !on {
		vaccounts.Range(func(k, _ any) bool {
			vaccounts.Delete(k)
			return true
		})
	}
}

// VirtualEnabled reports whether CPU costs are being charged in virtual
// time.
func VirtualEnabled() bool { return virtualOn.Load() }

// gid extracts the calling goroutine's id from its stack header — the
// only portable handle Go offers. Microsecond-scale and only paid while
// virtual mode is on, which is a test-only regime.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// acct returns the calling goroutine's meter, creating it on first use.
func acct() *vaccount {
	id := gid()
	if a, ok := vaccounts.Load(id); ok {
		return a.(*vaccount)
	}
	a, _ := vaccounts.LoadOrStore(id, &vaccount{})
	return a.(*vaccount)
}

// charge bills d to the calling goroutine unless it is inside Uncounted.
func charge(d time.Duration) {
	if d <= 0 {
		return
	}
	a := acct()
	if a.depth > 0 {
		return
	}
	a.charged.Add(int64(d))
}

// Uncounted runs fn with the calling goroutine's virtual charging
// suspended. Waiting threads use it around progress polls: work a waiter
// happens to pick up models work an idle core would have done in
// parallel, so billing it to the waiter would undo the overlap virtual
// mode exists to model. A no-op wrapper outside virtual mode.
func Uncounted(fn func()) {
	if !virtualOn.Load() {
		fn()
		return
	}
	a := acct()
	a.depth++
	defer func() { a.depth-- }()
	fn()
}

// Charged reports the virtual CPU time billed to the calling goroutine so
// far; zero outside virtual mode.
func Charged() time.Duration {
	if !virtualOn.Load() {
		return 0
	}
	return time.Duration(acct().charged.Load())
}
