// Command nmrun launches an N-rank cluster as separate OS processes —
// the mpirun analog for this codebase. It embeds the cluster registry
// in rank 0's environment by default, exports the environment contract
// (mpi.EnvRank and friends) to every child, streams each rank's output
// with a rank prefix, and reaps them all:
//
//	nmrun -n 4 -- ./pingpong -nrank -quick
//
// Ranks find each other through the registry: each opens its fabric
// endpoint on an ephemeral port, registers (rank, fabric, addr), blocks
// until all N arrived, and then heartbeats (internal/cluster,
// docs/CLUSTER.md). A rank that crashes stops heartbeating; the
// registry declares it dead, and every survivor's engine completes
// pending requests toward it with core.ErrPeerDead instead of hanging.
//
// Fault-tolerance switches:
//
//	nmrun -n 4 -kill-rank 2 -kill-after 2s -- ./pingpong -nrank
//
// kills rank 2 with SIGKILL mid-run — the CI smoke test for the
// bounded-failure semantics: survivors must still exit 0. With
// -respawn, a crashed rank is relaunched (the registry revives it and
// survivors get MarkPeerAlive), up to 3 times per rank before nmrun
// gives up — mirroring the registry's own flap ban.
//
// A registry can also run standalone, for worlds whose ranks are
// launched by something else (or on other hosts):
//
//	nmrun -registry-only -listen 127.0.0.1:7070 -n 4     # control plane
//	PIOMAN_RANK=0 PIOMAN_NRANKS=4 \
//	  PIOMAN_REGISTRY=127.0.0.1:7070 \
//	  PIOMAN_REGISTRY_RANK=-1 ./pingpong -nrank           # each rank, by hand
//
// Exit status: 0 when every rank that was not deliberately killed exits
// 0; the first failing rank's exit code otherwise.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"pioman/internal/cluster"
	"pioman/internal/mpi"
)

// maxRespawns bounds -respawn relaunches per rank; the registry's flap
// ban would refuse the rejoin soon after anyway.
const maxRespawns = 3

func main() {
	n := flag.Int("n", 0, "world size: number of ranks to launch")
	registry := flag.String("registry", "", "use a standalone registry at this address instead of embedding one in rank 0 (losing it then kills nobody)")
	registryOnly := flag.Bool("registry-only", false, "run only the registry (with -listen and -n), no ranks; Ctrl-C stops it")
	listen := flag.String("listen", "127.0.0.1:0", "with -registry-only: the address the registry serves on")
	heartbeat := flag.Duration("heartbeat", cluster.DefaultHeartbeatInterval, "heartbeat interval exported to every rank")
	peerDeadline := flag.Duration("peer-deadline", 0, "arm engine-side death detection in every rank: pending requests toward a rank silent this long complete with core.ErrPeerDead (0 leaves detection to the registry alone)")
	respawn := flag.Bool("respawn", false, "relaunch a rank that exits nonzero (up to 3 times per rank); the registry revives it on rejoin")
	killRank := flag.Int("kill-rank", -1, "fault injection: SIGKILL this rank after -kill-after (its exit does not fail the run)")
	killAfter := flag.Duration("kill-after", 2*time.Second, "how long after launch -kill-rank strikes")
	flag.Parse()

	if *registryOnly {
		os.Exit(runRegistryOnly(*listen, *n, *heartbeat))
	}
	if *n <= 0 {
		fail("need a positive world size: nmrun -n <ranks> -- <command> [args]")
	}
	args := flag.Args()
	if len(args) == 0 {
		fail("need a command to launch: nmrun -n <ranks> -- <command> [args]")
	}
	if *killRank >= *n {
		fail(fmt.Sprintf("-kill-rank %d is outside the world [0,%d)", *killRank, *n))
	}
	if *respawn && *killRank >= 0 {
		fail("-respawn would immediately relaunch the rank -kill-rank just killed; pick one")
	}

	// Resolve the control plane: an external registry as given, or a
	// pre-picked loopback port that rank 0 will bind its embedded
	// registry to (children inherit the address through the environment
	// before any of them has started).
	registryAddr, hostRank := *registry, -1
	if registryAddr == "" {
		addr, err := freePort()
		if err != nil {
			fail(fmt.Sprintf("picking a registry port: %v", err))
		}
		registryAddr, hostRank = addr, 0
	}

	r := &runner{
		n:            *n,
		args:         args,
		registry:     registryAddr,
		hostRank:     hostRank,
		heartbeat:    *heartbeat,
		peerDeadline: *peerDeadline,
		respawn:      *respawn,
		killRank:     *killRank,
		killAfter:    *killAfter,
		procs:        make([]*exec.Cmd, *n),
		respawns:     make([]int, *n),
	}
	os.Exit(r.run())
}

// fail prints a usage error and exits with the flag-error convention.
func fail(msg string) {
	fmt.Fprintf(os.Stderr, "nmrun: %s\n", msg)
	os.Exit(2)
}

// freePort reserves and releases a loopback TCP port. The tiny window
// between release and rank 0 binding it is acceptable on loopback: the
// alternative (nmrun hosting the registry itself) would make nmrun's
// own death a world-killing event, which -respawn exists to avoid.
func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// runRegistryOnly serves a standalone registry until interrupted.
func runRegistryOnly(listen string, n int, heartbeat time.Duration) int {
	if n <= 0 {
		fail("-registry-only needs -n, the world size the registry forms")
	}
	reg, err := cluster.NewRegistry(cluster.Config{
		Nranks:            n,
		Listen:            listen,
		HeartbeatInterval: heartbeat,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nmrun: %v\n", err)
		return 1
	}
	fmt.Printf("nmrun: registry for %d ranks on %s\n", n, reg.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	reg.Close()
	return 0
}

// runner owns one launch: N children, their output pumps, the optional
// kill timer, and the respawn policy.
type runner struct {
	n            int
	args         []string
	registry     string
	hostRank     int
	heartbeat    time.Duration
	peerDeadline time.Duration
	respawn      bool
	killRank     int
	killAfter    time.Duration

	mu       sync.Mutex
	procs    []*exec.Cmd
	respawns []int
	killed   bool // the -kill-rank strike happened

	wg   sync.WaitGroup
	code chan rankExit
}

// rankExit is one rank's terminal status.
type rankExit struct {
	rank int
	code int
}

func (r *runner) run() int {
	r.code = make(chan rankExit, r.n*(maxRespawns+1))
	for rank := 0; rank < r.n; rank++ {
		if err := r.spawn(rank); err != nil {
			fmt.Fprintf(os.Stderr, "nmrun: rank %d: %v\n", rank, err)
			r.killAll()
			return 1
		}
	}
	fmt.Printf("nmrun: launched %d ranks (registry %s)\n", r.n, r.registry)

	if r.killRank >= 0 {
		time.AfterFunc(r.killAfter, func() {
			r.mu.Lock()
			p := r.procs[r.killRank]
			r.killed = true
			r.mu.Unlock()
			if p != nil && p.Process != nil {
				fmt.Printf("nmrun: killing rank %d (fault injection)\n", r.killRank)
				p.Process.Kill()
			}
		})
	}

	// Forward Ctrl-C to the children so an interrupted run tears the
	// whole world down rather than orphaning ranks.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "nmrun: interrupted, stopping all ranks")
		r.killAll()
	}()

	// Reap: every rank must reach a terminal exit. A deliberately killed
	// rank never fails the run; a crashed rank is respawned when asked
	// (and possible), otherwise its code becomes the run's.
	remaining := r.n
	final := 0
	for remaining > 0 {
		ex := <-r.code
		deliberate := ex.rank == r.killRank && r.wasKilled()
		switch {
		case ex.code == 0 || deliberate:
			remaining--
		case r.respawn && r.respawns[ex.rank] < maxRespawns:
			r.respawns[ex.rank]++
			fmt.Printf("nmrun: rank %d exited %d; respawning (%d/%d)\n", ex.rank, ex.code, r.respawns[ex.rank], maxRespawns)
			if err := r.spawn(ex.rank); err != nil {
				fmt.Fprintf(os.Stderr, "nmrun: rank %d respawn: %v\n", ex.rank, err)
				remaining--
				if final == 0 {
					final = ex.code
				}
			}
		default:
			fmt.Fprintf(os.Stderr, "nmrun: rank %d exited %d\n", ex.rank, ex.code)
			remaining--
			if final == 0 {
				final = ex.code
			}
		}
	}
	r.wg.Wait() // drain the output pumps
	if final == 0 {
		fmt.Println("nmrun: all ranks done")
	}
	return final
}

// wasKilled reports whether the fault-injection strike already fired.
func (r *runner) wasKilled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.killed
}

// spawn launches one rank with the environment contract and wires its
// output through the prefix pumps.
func (r *runner) spawn(rank int) error {
	cmd := exec.Command(r.args[0], r.args[1:]...)
	cmd.Env = append(os.Environ(),
		fmt.Sprintf("%s=%d", mpi.EnvRank, rank),
		fmt.Sprintf("%s=%d", mpi.EnvNranks, r.n),
		fmt.Sprintf("%s=%s", mpi.EnvRegistry, r.registry),
		fmt.Sprintf("%s=%d", mpi.EnvRegistryRank, r.hostRank),
		fmt.Sprintf("%s=%d", mpi.EnvHeartbeatMS, r.heartbeat.Milliseconds()),
	)
	if rank == r.hostRank {
		cmd.Env = append(cmd.Env, mpi.EnvHostRegistry+"=1")
	}
	if r.peerDeadline > 0 {
		cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%d", mpi.EnvPeerDeadlineMS, r.peerDeadline.Milliseconds()))
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	r.mu.Lock()
	r.procs[rank] = cmd
	r.mu.Unlock()
	r.wg.Add(2)
	go r.pump(rank, stdout, os.Stdout)
	go r.pump(rank, stderr, os.Stderr)
	go func() {
		err := cmd.Wait()
		code := 0
		if err != nil {
			code = 1
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
				if code < 0 {
					code = 128 // killed by signal
				}
			}
		}
		r.code <- rankExit{rank: rank, code: code}
	}()
	return nil
}

// pump copies one child stream line-by-line under a "[rank N]" prefix.
func (r *runner) pump(rank int, src interface{ Read([]byte) (int, error) }, dst *os.File) {
	defer r.wg.Done()
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		fmt.Fprintf(dst, "[rank %d] %s\n", rank, sc.Text())
	}
}

// killAll SIGKILLs every live child.
func (r *runner) killAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.procs {
		if p != nil && p.Process != nil {
			p.Process.Kill()
		}
	}
}
