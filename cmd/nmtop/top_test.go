package main

import (
	"strings"
	"testing"
	"time"

	"pioman/internal/telemetry"
)

// cannedSnapshots builds a before/after pair the way a live endpoint
// would produce them: one registry, counters advanced between captures.
func cannedSnapshots() (*telemetry.Snapshot, *telemetry.Snapshot) {
	reg := telemetry.NewRegistry()
	sent := reg.Counter("node0.rail.shm.eager_sent", "")
	recv := reg.Counter("node0.rail.shm.recvs", "")
	lost := reg.Counter("node0.rail.shm.lost_frames", "")
	reg.Counter("node0.rail.shm.send_errs", "")
	occ := reg.Histogram("node0.rail.shm.batch_occupancy", "")
	reg.RegisterGauge("node0.rail.shm.stripe_weight", "", func() uint64 { return 12 })
	reg.RegisterGauge("node0.rail.shm.health_state", "", func() uint64 { return 0 })
	// A second rail sitting in probation, to pin the lifecycle column.
	reg.Counter("node0.rail.wan.eager_sent", "")
	reg.RegisterGauge("node0.rail.wan.health_state", "", func() uint64 { return 1 })
	sends := reg.Counter("node0.engine.sends_posted", "")
	dwell := reg.Histogram("node0.engine.progress_dwell_ns", "")
	pSent := reg.Counter("node0.peer.1.sent_msgs", "")
	pRecv := reg.Counter("node0.peer.1.recv_frames", "")
	hits := reg.Counter("process.bufpool.hits", "")
	misses := reg.Counter("process.bufpool.misses", "")
	// Cluster membership view: a 4-rank world one epoch in, with one
	// death verdict landing during the interval.
	reg.RegisterGauge("node0.cluster.epoch", "", func() uint64 { return 5 })
	reg.RegisterGauge("node0.cluster.alive", "", func() uint64 { return 2 })
	deaths := reg.Counter("node0.cluster.deaths", "")

	sent.Add(100)
	prev := reg.Snapshot()
	// One interval of traffic: 2000 messages, batches of 8, 3 lost frames.
	sent.Add(2000)
	recv.Add(2000)
	lost.Add(3)
	for i := 0; i < 250; i++ {
		occ.Observe(8)
	}
	sends.Add(2000)
	dwell.Observe(5000) // 5µs progress pass
	pSent.Add(2000)
	pRecv.Add(1999)
	hits.Add(90)
	misses.Add(10)
	deaths.Add(1)
	return prev, reg.Snapshot()
}

func TestRenderTop(t *testing.T) {
	prev, cur := cannedSnapshots()
	out := renderTop(telemetry.Delta(prev, cur), 2*time.Second)

	for _, want := range []string{
		"RAIL",
		"node0.shm",
		"1000", // 2000 msgs / 2s on both the rail and engine rows
		"PEER",
		"node0 -> 1",
		"ENGINE",
		"node0",
		"bufpool: 50 gets/s, 90.0% pooled",
		"weight",
		"state",
		"12", // shm's live stripe weight
		"up",
		"node0.wan",
		"PROB", // the probation rail's lifecycle state
		"CLUSTER",
		"epoch",
		"deaths/int",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// The interval saw 3 lost frames and batches of 8: occupancy p50
	// lands in the [8,15] log2 bucket, reported as its upper bound.
	if !strings.Contains(out, "15") {
		t.Errorf("occupancy p50 missing (want bucket upper 15):\n%s", out)
	}
	if !strings.Contains(out, " 3") {
		t.Errorf("lost-frame count missing:\n%s", out)
	}
	// The baseline 100 sends predate the interval and must not leak into
	// the rate (which would read 1050/s).
	if strings.Contains(out, "1050") {
		t.Errorf("rate includes pre-interval counts:\n%s", out)
	}
}

// TestRenderTopQuietInterval pins the idle rendering: zero rates and "-"
// for histograms that saw nothing, rather than NaNs or stale quantiles.
func TestRenderTopQuietInterval(t *testing.T) {
	_, cur := cannedSnapshots()
	out := renderTop(telemetry.Delta(cur, cur), time.Second)
	if !strings.Contains(out, "-") {
		t.Errorf("idle histograms should render as '-':\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("idle interval rendered NaN:\n%s", out)
	}
}

// TestFetchSnapshot exercises the actual poll path against a live
// telemetry endpoint — the same Serve the workloads use.
func TestFetchSnapshot(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("node0.engine.sends_posted", "").Add(7)
	addr, stop, err := telemetry.Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	s, err := fetchSnapshot("http://" + addr + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	if s.Value("node0.engine.sends_posted") != 7 {
		t.Fatalf("fetched snapshot value = %d, want 7", s.Value("node0.engine.sends_posted"))
	}
	if _, err := fetchSnapshot("http://" + addr + "/nope"); err == nil {
		t.Fatal("fetchSnapshot accepted a 404")
	}
}
