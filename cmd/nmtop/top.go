package main

// The table renderer: turns one interval's metric deltas (telemetry.Delta
// over two /metrics.json snapshots) into the rail/peer/engine/cluster
// tables the terminal shows. Pure — it only reads the delta map — so the
// test feeds it canned snapshots and asserts on the rendered text.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pioman/internal/telemetry"
)

// railRow accumulates one node-rail's interval deltas, plus the two
// lifecycle gauges (carried at their live value, not as deltas): the
// engine's health state and the rail's current striping weight.
type railRow struct {
	sent, recv, lost, errs uint64
	weight                 uint64
	health                 uint64 // 0 active, 1 probation
	occ                    *telemetry.HistogramValue
}

// engineRow accumulates one node-engine's interval deltas.
type engineRow struct {
	sends, recvs, rdv     uint64
	dwell, park, rtsToCts *telemetry.HistogramValue
}

// peerRow is one directed node→peer edge's interval deltas.
type peerRow struct {
	sent, recv uint64
}

// clusterRow is one node's cluster-membership view: epoch and alive are
// live gauge values, deaths the interval's new death verdicts.
type clusterRow struct {
	epoch, alive, deaths uint64
}

// renderTop renders the rail, peer, engine and cluster tables for one
// interval's deltas. Counter deltas divide by elapsed into rates;
// histogram deltas report the interval's p50/p99.
func renderTop(delta map[string]telemetry.MetricValue, elapsed time.Duration) string {
	rails := map[string]*railRow{}
	engines := map[string]*engineRow{}
	peers := map[string]*peerRow{}
	clusters := map[string]*clusterRow{}
	var bufHits, bufMisses uint64
	for name, m := range delta {
		parts := strings.Split(name, ".")
		switch {
		case len(parts) == 4 && strings.HasPrefix(parts[0], "node") && parts[1] == "rail":
			key := parts[0] + "." + parts[2]
			r := rails[key]
			if r == nil {
				r = &railRow{}
				rails[key] = r
			}
			switch parts[3] {
			case "eager_sent", "data_sent":
				r.sent += m.Value
			case "recvs":
				r.recv += m.Value
			case "lost_frames":
				r.lost += m.Value
			case "send_errs":
				r.errs += m.Value
			case "stripe_weight":
				r.weight = m.Value
			case "health_state":
				r.health = m.Value
			case "batch_occupancy":
				r.occ = m.Hist
			}
		case len(parts) == 3 && strings.HasPrefix(parts[0], "node") && parts[1] == "engine":
			e := engines[parts[0]]
			if e == nil {
				e = &engineRow{}
				engines[parts[0]] = e
			}
			switch parts[2] {
			case "sends_posted":
				e.sends = m.Value
			case "recvs_posted":
				e.recvs = m.Value
			case "rdv_started":
				e.rdv = m.Value
			case "progress_dwell_ns":
				e.dwell = m.Hist
			case "park_ns":
				e.park = m.Hist
			case "rdv_rts_to_cts_ns":
				e.rtsToCts = m.Hist
			}
		case len(parts) == 3 && strings.HasPrefix(parts[0], "node") && parts[1] == "cluster":
			c := clusters[parts[0]]
			if c == nil {
				c = &clusterRow{}
				clusters[parts[0]] = c
			}
			switch parts[2] {
			case "epoch":
				c.epoch = m.Value
			case "alive":
				c.alive = m.Value
			case "deaths":
				c.deaths = m.Value
			}
		case len(parts) == 4 && strings.HasPrefix(parts[0], "node") && parts[1] == "peer":
			key := parts[0] + " -> " + parts[2]
			p := peers[key]
			if p == nil {
				p = &peerRow{}
				peers[key] = p
			}
			switch parts[3] {
			case "sent_msgs":
				p.sent = m.Value
			case "recv_frames":
				p.recv = m.Value
			}
		case name == "process.bufpool.hits":
			bufHits = m.Value
		case name == "process.bufpool.misses":
			bufMisses = m.Value
		}
	}

	sec := elapsed.Seconds()
	rate := func(v uint64) float64 { return float64(v) / sec }
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %8s %8s %6s %6s %7s %6s\n",
		"RAIL", "sent/s", "recv/s", "occ p50", "occ p99", "lost", "errs", "weight", "state")
	for _, key := range sortedKeys(rails) {
		r := rails[key]
		state := "up"
		if r.health != 0 {
			state = "PROB"
		}
		fmt.Fprintf(&b, "%-16s %10.0f %10.0f %8d %8d %6d %6d %7d %6s\n",
			key, rate(r.sent), rate(r.recv), r.occ.Quantile(0.5), r.occ.Quantile(0.99), r.lost, r.errs, r.weight, state)
	}
	if len(peers) > 0 {
		fmt.Fprintf(&b, "\n%-16s %12s %14s\n", "PEER", "sent msg/s", "recv frames/s")
		for _, key := range sortedKeys(peers) {
			p := peers[key]
			fmt.Fprintf(&b, "%-16s %12.0f %14.0f\n", key, rate(p.sent), rate(p.recv))
		}
	}
	if len(engines) > 0 {
		fmt.Fprintf(&b, "\n%-8s %9s %9s %7s %11s %11s %11s %13s\n",
			"ENGINE", "sends/s", "recvs/s", "rdv/s", "dwell p50", "dwell p99", "park p50", "rts->cts p50")
		for _, key := range sortedKeys(engines) {
			e := engines[key]
			fmt.Fprintf(&b, "%-8s %9.0f %9.0f %7.0f %11s %11s %11s %13s\n",
				key, rate(e.sends), rate(e.recvs), rate(e.rdv),
				fmtNs(e.dwell.Quantile(0.5)), fmtNs(e.dwell.Quantile(0.99)),
				fmtNs(e.park.Quantile(0.5)), fmtNs(e.rtsToCts.Quantile(0.5)))
		}
	}
	if len(clusters) > 0 {
		fmt.Fprintf(&b, "\n%-8s %7s %7s %10s\n", "CLUSTER", "epoch", "alive", "deaths/int")
		for _, key := range sortedKeys(clusters) {
			c := clusters[key]
			fmt.Fprintf(&b, "%-8s %7d %7d %10d\n", key, c.epoch, c.alive, c.deaths)
		}
	}
	if bufHits+bufMisses > 0 {
		fmt.Fprintf(&b, "\nbufpool: %.0f gets/s, %.1f%% pooled\n",
			rate(bufHits+bufMisses), 100*float64(bufHits)/float64(bufHits+bufMisses))
	}
	return b.String()
}

// fmtNs renders a nanosecond quantile as a duration, "-" when the
// histogram saw nothing this interval.
func fmtNs(ns uint64) string {
	if ns == 0 {
		return "-"
	}
	return time.Duration(ns).Round(100 * time.Nanosecond).String()
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
