// Command nmtop is a live top-style view of a running pioman process:
// it polls the /metrics.json endpoint a workload exposes with -metrics
// (see cmd/pingpong) and renders per-rail, per-peer and per-engine
// tables — message rates, batch occupancy, progress and rendezvous
// latency percentiles, frame loss — refreshed every interval.
//
// Usage:
//
//	nmtop -addr 127.0.0.1:9377 [-interval 2s] [-n 0] [-clear]
//
// The first poll is the rate baseline; every refresh after it prints
// one table diffed against the previous snapshot (telemetry.Delta), so
// counters appear as rates and histograms as the interval's p50/p99.
// -n bounds the number of refreshes (0 runs until interrupted); -clear
// redraws in place with ANSI clear-screen, for a genuine top feel.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"pioman/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9377", "host:port (or full URL) of the workload's -metrics endpoint")
	interval := flag.Duration("interval", 2*time.Second, "poll and refresh period")
	count := flag.Int("n", 0, "number of refreshes to print, 0 to run until interrupted")
	clear := flag.Bool("clear", false, "redraw in place (ANSI clear-screen) instead of appending tables")
	flag.Parse()

	url := *addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/metrics.json"

	prev, err := fetchSnapshot(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nmtop: %v\n", err)
		os.Exit(1)
	}
	for i := 0; *count == 0 || i < *count; i++ {
		time.Sleep(*interval)
		cur, err := fetchSnapshot(url)
		if err != nil {
			// The workload exiting mid-watch is the normal way a session
			// ends; say so and stop rather than spinning on a dead port.
			fmt.Fprintf(os.Stderr, "nmtop: endpoint gone: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Duration(cur.TakenUnixNano - prev.TakenUnixNano)
		if elapsed <= 0 {
			elapsed = *interval
		}
		if *clear {
			fmt.Print("\x1b[H\x1b[2J")
		}
		fmt.Printf("nmtop @ %s  interval %v  sample %d\n\n", url, *interval, i+1)
		fmt.Print(renderTop(telemetry.Delta(prev, cur), elapsed))
		prev = cur
	}
}

// fetchSnapshot GETs and decodes one /metrics.json snapshot.
func fetchSnapshot(url string) (*telemetry.Snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var s telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, fmt.Errorf("%s: decode: %w", url, err)
	}
	return &s, nil
}
