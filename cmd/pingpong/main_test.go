package main

import (
	"bufio"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pioman/internal/testenv"
)

// TestTwoProcessPingpong runs the acceptance exchange of the fabric
// layer: two separate OS processes (re-execs of this test binary, each
// running one rank via the helpers below) complete the full eager and
// rendezvous sweep over fabric/tcpfab on loopback.
func TestTwoProcessPingpong(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "" {
		t.Skip("helper invocation")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	rank0 := exec.Command(exe, "-test.run", "TestHelperRank0", "-test.v")
	rank0.Env = append(os.Environ(), "PINGPONG_HELPER=rank0")
	out0, err := rank0.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	rank0.Stderr = os.Stderr
	if err := rank0.Start(); err != nil {
		t.Fatal(err)
	}
	defer rank0.Process.Kill()

	// Scrape the ephemeral port from rank 0's banner, then keep the
	// pipe drained so the child never stalls on a full stdout buffer.
	sc := bufio.NewScanner(out0)
	addr := ""
	lines0 := make(chan string, 64)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if addr == "" {
		t.Fatal("rank 0 never announced its listen address")
	}
	go func() {
		defer close(lines0)
		for sc.Scan() {
			lines0 <- sc.Text()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rank1 := exec.CommandContext(ctx, exe, "-test.run", "TestHelperRank1", "-test.v")
	rank1.Env = append(os.Environ(), "PINGPONG_HELPER=rank1", "PINGPONG_CONNECT="+addr)
	out1, err := rank1.CombinedOutput()
	if err != nil {
		t.Fatalf("rank 1 process failed (ctx: %v): %v\n%s", ctx.Err(), err, out1)
	}
	if !strings.Contains(string(out1), "rank 1 ok") {
		t.Fatalf("rank 1 did not report success:\n%s", out1)
	}

	waitErr := make(chan error, 1)
	go func() { waitErr <- rank0.Wait() }()
	var log0 []string
	for line := range lines0 {
		log0 = append(log0, line)
	}
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("rank 0 process failed: %v\n%s", err, strings.Join(log0, "\n"))
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("rank 0 did not exit\n%s", strings.Join(log0, "\n"))
	}

	all := strings.Join(log0, "\n")
	if !strings.Contains(all, "rank 0 ok") {
		t.Fatalf("rank 0 did not report success:\n%s", all)
	}
	// The sweep must have crossed both protocols.
	if !strings.Contains(all, "eager") || !strings.Contains(all, "rendezvous") {
		t.Fatalf("sweep missing a protocol:\n%s", all)
	}
}

// TestHelperRank0 is the re-exec body of the listening rank; it only runs
// inside TestTwoProcessPingpong's child process.
func TestHelperRank0(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "rank0" {
		t.Skip("helper entry point")
	}
	if code := runReal("127.0.0.1:0", "", "", "", 0, true, nil); code != 0 {
		t.Fatalf("rank 0 exited %d", code)
	}
}

// TestHelperRank1 is the re-exec body of the connecting rank.
func TestHelperRank1(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "rank1" {
		t.Skip("helper entry point")
	}
	if code := runReal("", os.Getenv("PINGPONG_CONNECT"), "", "", 0, true, nil); code != 0 {
		t.Fatalf("rank 1 exited %d", code)
	}
}

// TestTwoProcessPingpongUDP is the UDP-datagram acceptance exchange: two
// separate OS processes complete the full eager and rendezvous sweep
// over fabric/udpfab on loopback — real datagrams, reliability sublayer
// and all, with rendezvous payloads chunked to the single-datagram frame
// ceiling.
func TestTwoProcessPingpongUDP(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "" {
		t.Skip("helper invocation")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	rank0 := exec.Command(exe, "-test.run", "TestHelperUDPRank0", "-test.v")
	rank0.Env = append(os.Environ(), "PINGPONG_HELPER=udprank0")
	out0, err := rank0.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	rank0.Stderr = os.Stderr
	if err := rank0.Start(); err != nil {
		t.Fatal(err)
	}
	defer rank0.Process.Kill()

	// Scrape the ephemeral port from rank 0's banner, then keep the
	// pipe drained so the child never stalls on a full stdout buffer.
	sc := bufio.NewScanner(out0)
	addr := ""
	lines0 := make(chan string, 64)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if addr == "" {
		t.Fatal("rank 0 never announced its listen address")
	}
	go func() {
		defer close(lines0)
		for sc.Scan() {
			lines0 <- sc.Text()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rank1 := exec.CommandContext(ctx, exe, "-test.run", "TestHelperUDPRank1", "-test.v")
	rank1.Env = append(os.Environ(), "PINGPONG_HELPER=udprank1", "PINGPONG_UDP="+addr)
	out1, err := rank1.CombinedOutput()
	if err != nil {
		t.Fatalf("rank 1 process failed (ctx: %v): %v\n%s", ctx.Err(), err, out1)
	}
	if !strings.Contains(string(out1), "rank 1 ok") {
		t.Fatalf("rank 1 did not report success:\n%s", out1)
	}

	waitErr := make(chan error, 1)
	go func() { waitErr <- rank0.Wait() }()
	var log0 []string
	for line := range lines0 {
		log0 = append(log0, line)
	}
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("rank 0 process failed: %v\n%s", err, strings.Join(log0, "\n"))
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("rank 0 did not exit\n%s", strings.Join(log0, "\n"))
	}

	all := strings.Join(log0, "\n")
	if !strings.Contains(all, "rank 0 ok") {
		t.Fatalf("rank 0 did not report success:\n%s", all)
	}
	// The sweep must have crossed both protocols.
	if !strings.Contains(all, "eager") || !strings.Contains(all, "rendezvous") {
		t.Fatalf("sweep missing a protocol:\n%s", all)
	}
}

// TestHelperUDPRank0 is the re-exec body of the binding UDP rank; it
// only runs inside TestTwoProcessPingpongUDP's child process.
func TestHelperUDPRank0(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "udprank0" {
		t.Skip("helper entry point")
	}
	if code := runReal("", "", "", "127.0.0.1:0", 0, true, nil); code != 0 {
		t.Fatalf("rank 0 exited %d", code)
	}
}

// TestHelperUDPRank1 is the re-exec body of the echoing UDP rank.
func TestHelperUDPRank1(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "udprank1" {
		t.Skip("helper entry point")
	}
	if code := runReal("", "", "", os.Getenv("PINGPONG_UDP"), 1, true, nil); code != 0 {
		t.Fatalf("rank 1 exited %d", code)
	}
}

// TestTwoProcessPingpongShm is the shared-memory acceptance exchange: two
// separate OS processes complete the full eager and rendezvous sweep over
// fabric/shmfab ring files in a shared fresh directory. Unlike the TCP
// variant there is no address to scrape — both ranks start concurrently
// and whichever arrives first creates the rings.
func TestTwoProcessPingpongShm(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "" {
		t.Skip("helper invocation")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	spawn := func(rank string) *exec.Cmd {
		cmd := exec.CommandContext(ctx, exe, "-test.run", "TestHelperShmRank"+rank, "-test.v")
		cmd.Env = append(os.Environ(), "PINGPONG_HELPER=shmrank"+rank, "PINGPONG_SHM="+dir)
		return cmd
	}
	rank1 := spawn("1")
	out1 := &strings.Builder{}
	rank1.Stdout, rank1.Stderr = out1, out1
	if err := rank1.Start(); err != nil {
		t.Fatal(err)
	}
	defer rank1.Process.Kill()

	rank0 := spawn("0")
	out0, err := rank0.CombinedOutput()
	if err != nil {
		t.Fatalf("rank 0 process failed (ctx: %v): %v\n%s", ctx.Err(), err, out0)
	}
	if err := rank1.Wait(); err != nil {
		t.Fatalf("rank 1 process failed: %v\n%s", err, out1.String())
	}
	if !strings.Contains(string(out0), "rank 0 ok") {
		t.Fatalf("rank 0 did not report success:\n%s", out0)
	}
	if !strings.Contains(out1.String(), "rank 1 ok") {
		t.Fatalf("rank 1 did not report success:\n%s", out1.String())
	}
	// The sweep must have crossed both protocols.
	if all := string(out0); !strings.Contains(all, "eager") || !strings.Contains(all, "rendezvous") {
		t.Fatalf("sweep missing a protocol:\n%s", all)
	}
}

// TestTwoProcessPingpongBonded is the multirail acceptance exchange: two
// OS processes bond the TCP and shared-memory transports into one world,
// sweep each rail solo to calibrate the striping weights, then stripe
// rendezvous payloads across both — and, on hosts with enough CPUs to
// drive two rails at once, the bonded bandwidth must beat the best
// single rail (on 1–2 CPU boxes the binary reports the comparison but
// does not assert: time-sliced rails cannot be parallel). A perf
// comparison on a shared host is allowed one retry (the runner
// distinguishes the assertion, exit 3, from correctness failures); it
// runs off the race jobs and outside -short, where timing means nothing.
func TestTwoProcessPingpongBonded(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "" {
		t.Skip("helper invocation")
	}
	if testenv.RaceEnabled {
		t.Skip("bandwidth comparison is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("two-process bandwidth sweep skipped in -short runs")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	runPair := func(attempt int) (assertFailed bool) {
		dir := filepath.Join(t.TempDir(), "rings")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		jsonPath := filepath.Join(t.TempDir(), "bench.json")

		ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
		defer cancel()
		rank0 := exec.CommandContext(ctx, exe, "-test.run", "TestHelperBondedRank0", "-test.v")
		rank0.Env = append(os.Environ(), "PINGPONG_HELPER=bonded0", "PINGPONG_SHM="+dir, "PINGPONG_JSON="+jsonPath)
		out0, err := rank0.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		rank0.Stderr = os.Stderr
		if err := rank0.Start(); err != nil {
			t.Fatal(err)
		}
		defer rank0.Process.Kill()

		sc := bufio.NewScanner(out0)
		addr := ""
		var log0 []string
		for sc.Scan() {
			line := sc.Text()
			log0 = append(log0, line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr = strings.TrimSpace(line[i+len("listening on "):])
				if j := strings.Index(addr, " "); j >= 0 {
					addr = addr[:j]
				}
				break
			}
		}
		if addr == "" {
			t.Fatalf("rank 0 never announced its listen address:\n%s", strings.Join(log0, "\n"))
		}
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for sc.Scan() {
				log0 = append(log0, sc.Text())
			}
		}()

		rank1 := exec.CommandContext(ctx, exe, "-test.run", "TestHelperBondedRank1", "-test.v")
		rank1.Env = append(os.Environ(), "PINGPONG_HELPER=bonded1", "PINGPONG_SHM="+dir, "PINGPONG_CONNECT="+addr)
		out1, err := rank1.CombinedOutput()
		if err != nil {
			t.Fatalf("rank 1 process failed (ctx: %v): %v\n%s", ctx.Err(), err, out1)
		}
		// Drain stdout fully before Wait: Wait closes the pipe and would
		// discard buffered lines — including the verdict markers below.
		<-drained
		err = rank0.Wait()
		all := strings.Join(log0, "\n")
		if err != nil {
			if strings.Contains(all, "bonded-rail assertion failed") ||
				strings.Contains(all, "DOES NOT BEAT") {
				t.Logf("attempt %d: bonded bandwidth did not beat the best single rail:\n%s", attempt, all)
				return true
			}
			t.Fatalf("rank 0 process failed: %v\n%s", err, all)
		}
		if !strings.Contains(all, "rank 0 ok") {
			t.Fatalf("rank 0 did not report success:\n%s", all)
		}
		// The sweep must have crossed both protocols and striped for real.
		wants := []string{"eager", "rendezvous", "multirail"}
		if !strings.Contains(all, "comparison is informational") {
			// Enough CPUs to drive both rails at once: the win is asserted.
			wants = append(wants, " beats ")
		}
		for _, want := range wants {
			if !strings.Contains(all, want) {
				t.Fatalf("bonded sweep output missing %q:\n%s", want, all)
			}
		}
		rows, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatalf("bonded run left no BENCH rows: %v", err)
		}
		for _, backend := range []string{"\"multirail\"", "\"tcp\"", "\"shm\""} {
			if !strings.Contains(string(rows), backend) {
				t.Fatalf("BENCH rows missing backend %s:\n%s", backend, rows)
			}
		}
		return false
	}

	if runPair(1) {
		// One retry: a shared CI host can lose a single bandwidth race.
		if runPair(2) {
			t.Fatal("bonded bandwidth did not beat the best single rail in two attempts")
		}
	}
}

// TestHelperBondedRank0 is the re-exec body of the bonded listening rank;
// it only runs inside TestTwoProcessPingpongBonded's child process.
func TestHelperBondedRank0(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "bonded0" {
		t.Skip("helper entry point")
	}
	code := runBonded("127.0.0.1:0", "", os.Getenv("PINGPONG_SHM"), true, os.Getenv("PINGPONG_JSON"), nil)
	if code != 0 {
		t.Fatalf("rank 0 exited %d", code)
	}
}

// TestHelperBondedRank1 is the re-exec body of the bonded dialing rank.
func TestHelperBondedRank1(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "bonded1" {
		t.Skip("helper entry point")
	}
	if code := runBonded("", os.Getenv("PINGPONG_CONNECT"), os.Getenv("PINGPONG_SHM"), true, "", nil); code != 0 {
		t.Fatalf("rank 1 exited %d", code)
	}
}

// TestHelperShmRank0 is the re-exec body of the sweeping shared-memory
// rank; it only runs inside TestTwoProcessPingpongShm's child process.
func TestHelperShmRank0(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "shmrank0" {
		t.Skip("helper entry point")
	}
	if code := runReal("", "", os.Getenv("PINGPONG_SHM"), "", 0, true, nil); code != 0 {
		t.Fatalf("rank 0 exited %d", code)
	}
}

// TestHelperShmRank1 is the re-exec body of the echoing shared-memory rank.
func TestHelperShmRank1(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "shmrank1" {
		t.Skip("helper entry point")
	}
	if code := runReal("", "", os.Getenv("PINGPONG_SHM"), "", 1, true, nil); code != 0 {
		t.Fatalf("rank 1 exited %d", code)
	}
}
