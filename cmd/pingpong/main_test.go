package main

import (
	"bufio"
	"context"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestTwoProcessPingpong runs the acceptance exchange of the fabric
// layer: two separate OS processes (re-execs of this test binary, each
// running one rank via the helpers below) complete the full eager and
// rendezvous sweep over fabric/tcpfab on loopback.
func TestTwoProcessPingpong(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "" {
		t.Skip("helper invocation")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	rank0 := exec.Command(exe, "-test.run", "TestHelperRank0", "-test.v")
	rank0.Env = append(os.Environ(), "PINGPONG_HELPER=rank0")
	out0, err := rank0.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	rank0.Stderr = os.Stderr
	if err := rank0.Start(); err != nil {
		t.Fatal(err)
	}
	defer rank0.Process.Kill()

	// Scrape the ephemeral port from rank 0's banner, then keep the
	// pipe drained so the child never stalls on a full stdout buffer.
	sc := bufio.NewScanner(out0)
	addr := ""
	lines0 := make(chan string, 64)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if addr == "" {
		t.Fatal("rank 0 never announced its listen address")
	}
	go func() {
		defer close(lines0)
		for sc.Scan() {
			lines0 <- sc.Text()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rank1 := exec.CommandContext(ctx, exe, "-test.run", "TestHelperRank1", "-test.v")
	rank1.Env = append(os.Environ(), "PINGPONG_HELPER=rank1", "PINGPONG_CONNECT="+addr)
	out1, err := rank1.CombinedOutput()
	if err != nil {
		t.Fatalf("rank 1 process failed (ctx: %v): %v\n%s", ctx.Err(), err, out1)
	}
	if !strings.Contains(string(out1), "rank 1 ok") {
		t.Fatalf("rank 1 did not report success:\n%s", out1)
	}

	waitErr := make(chan error, 1)
	go func() { waitErr <- rank0.Wait() }()
	var log0 []string
	for line := range lines0 {
		log0 = append(log0, line)
	}
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("rank 0 process failed: %v\n%s", err, strings.Join(log0, "\n"))
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("rank 0 did not exit\n%s", strings.Join(log0, "\n"))
	}

	all := strings.Join(log0, "\n")
	if !strings.Contains(all, "rank 0 ok") {
		t.Fatalf("rank 0 did not report success:\n%s", all)
	}
	// The sweep must have crossed both protocols.
	if !strings.Contains(all, "eager") || !strings.Contains(all, "rendezvous") {
		t.Fatalf("sweep missing a protocol:\n%s", all)
	}
}

// TestHelperRank0 is the re-exec body of the listening rank; it only runs
// inside TestTwoProcessPingpong's child process.
func TestHelperRank0(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "rank0" {
		t.Skip("helper entry point")
	}
	if code := runReal("127.0.0.1:0", "", "", 0, true); code != 0 {
		t.Fatalf("rank 0 exited %d", code)
	}
}

// TestHelperRank1 is the re-exec body of the connecting rank.
func TestHelperRank1(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "rank1" {
		t.Skip("helper entry point")
	}
	if code := runReal("", os.Getenv("PINGPONG_CONNECT"), "", 0, true); code != 0 {
		t.Fatalf("rank 1 exited %d", code)
	}
}

// TestTwoProcessPingpongShm is the shared-memory acceptance exchange: two
// separate OS processes complete the full eager and rendezvous sweep over
// fabric/shmfab ring files in a shared fresh directory. Unlike the TCP
// variant there is no address to scrape — both ranks start concurrently
// and whichever arrives first creates the rings.
func TestTwoProcessPingpongShm(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "" {
		t.Skip("helper invocation")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	spawn := func(rank string) *exec.Cmd {
		cmd := exec.CommandContext(ctx, exe, "-test.run", "TestHelperShmRank"+rank, "-test.v")
		cmd.Env = append(os.Environ(), "PINGPONG_HELPER=shmrank"+rank, "PINGPONG_SHM="+dir)
		return cmd
	}
	rank1 := spawn("1")
	out1 := &strings.Builder{}
	rank1.Stdout, rank1.Stderr = out1, out1
	if err := rank1.Start(); err != nil {
		t.Fatal(err)
	}
	defer rank1.Process.Kill()

	rank0 := spawn("0")
	out0, err := rank0.CombinedOutput()
	if err != nil {
		t.Fatalf("rank 0 process failed (ctx: %v): %v\n%s", ctx.Err(), err, out0)
	}
	if err := rank1.Wait(); err != nil {
		t.Fatalf("rank 1 process failed: %v\n%s", err, out1.String())
	}
	if !strings.Contains(string(out0), "rank 0 ok") {
		t.Fatalf("rank 0 did not report success:\n%s", out0)
	}
	if !strings.Contains(out1.String(), "rank 1 ok") {
		t.Fatalf("rank 1 did not report success:\n%s", out1.String())
	}
	// The sweep must have crossed both protocols.
	if all := string(out0); !strings.Contains(all, "eager") || !strings.Contains(all, "rendezvous") {
		t.Fatalf("sweep missing a protocol:\n%s", all)
	}
}

// TestHelperShmRank0 is the re-exec body of the sweeping shared-memory
// rank; it only runs inside TestTwoProcessPingpongShm's child process.
func TestHelperShmRank0(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "shmrank0" {
		t.Skip("helper entry point")
	}
	if code := runReal("", "", os.Getenv("PINGPONG_SHM"), 0, true); code != 0 {
		t.Fatalf("rank 0 exited %d", code)
	}
}

// TestHelperShmRank1 is the re-exec body of the echoing shared-memory rank.
func TestHelperShmRank1(t *testing.T) {
	if os.Getenv("PINGPONG_HELPER") != "shmrank1" {
		t.Skip("helper entry point")
	}
	if code := runReal("", "", os.Getenv("PINGPONG_SHM"), 1, true); code != 0 {
		t.Fatalf("rank 1 exited %d", code)
	}
}
