package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchJSON runs the -json mode end to end in quick form and
// validates the BENCH_pingpong.json rows: all three backends, all
// sizes, sane percentiles. This is the bench-trajectory artifact CI
// uploads, so its shape is pinned here.
func TestBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs hundreds of timed round trips per backend")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if code := runBenchJSON(path, true); code != 0 {
		t.Fatalf("runBenchJSON exit code %d", code)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []benchRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("rows are not valid JSON: %v", err)
	}
	want := map[string]int{"sim": 0, "tcp": 0, "shm": 0}
	for _, r := range rows {
		if _, ok := want[r.Backend]; !ok {
			t.Errorf("unknown backend %q", r.Backend)
			continue
		}
		want[r.Backend]++
		if r.Bench != "pingpong_rtt" || r.Iters <= 0 {
			t.Errorf("malformed row: %+v", r)
		}
		if r.RTTP50Ns <= 0 || r.RTTP99Ns < r.RTTP50Ns {
			t.Errorf("backend %s size %d: implausible percentiles p50=%d p99=%d",
				r.Backend, r.SizeBytes, r.RTTP50Ns, r.RTTP99Ns)
		}
		if r.AllocsPerOp < 0 {
			t.Errorf("backend %s size %d: negative allocs/op", r.Backend, r.SizeBytes)
		}
	}
	for be, n := range want {
		if n != len(benchJSONSizes) {
			t.Errorf("backend %s has %d rows, want %d", be, n, len(benchJSONSizes))
		}
	}
}
