package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchJSON runs the -json mode end to end in quick form and
// validates the BENCH_pingpong.json rows: all four backends, all
// sizes, the WAN-conditioned UDP rows, sane percentiles. This is the
// bench-trajectory artifact CI uploads, so its shape is pinned here.
func TestBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs hundreds of timed round trips per backend")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if code := runBenchJSON(path, true); code != 0 {
		t.Fatalf("runBenchJSON exit code %d", code)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []benchRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("rows are not valid JSON: %v", err)
	}
	rtt := map[string]int{"sim": 0, "tcp": 0, "shm": 0, "udp": 0}
	rate := map[string]int{"sim": 0, "tcp": 0, "shm": 0, "udp": 0}
	ctrl, telem := 0, 0
	wan := map[float64]bool{}
	storm := map[int]bool{}
	var shmRate, telemRate float64
	for _, r := range rows {
		if _, ok := rtt[r.Backend]; !ok {
			t.Errorf("unknown backend %q", r.Backend)
			continue
		}
		if r.Iters <= 0 || r.AllocsPerOp < 0 {
			t.Errorf("malformed row: %+v", r)
		}
		switch r.Bench {
		case "pingpong_rtt":
			rtt[r.Backend]++
			if r.RTTP50Ns <= 0 || r.RTTP99Ns < r.RTTP50Ns {
				t.Errorf("backend %s size %d: implausible percentiles p50=%d p99=%d",
					r.Backend, r.SizeBytes, r.RTTP50Ns, r.RTTP99Ns)
			}
			if r.LossPct != 0 || r.DelayNs != 0 {
				t.Errorf("clean-wire RTT row carries WAN conditions: %+v", r)
			}
		case "pingpong_rtt_wan":
			if r.Backend != "udp" {
				t.Errorf("WAN row on backend %q, want udp", r.Backend)
			}
			if wan[r.LossPct] {
				t.Errorf("duplicate WAN row at %.0f%% loss", r.LossPct)
			}
			wan[r.LossPct] = true
			if r.RTTP50Ns <= 0 || r.RTTP99Ns < r.RTTP50Ns {
				t.Errorf("WAN %.0f%% loss: implausible percentiles p50=%d p99=%d",
					r.LossPct, r.RTTP50Ns, r.RTTP99Ns)
			}
			if r.DelayNs != benchWANDelay.Nanoseconds() {
				t.Errorf("WAN row delay %d ns, want %d", r.DelayNs, benchWANDelay.Nanoseconds())
			}
			// The injected latency is a hard floor: one round trip
			// cannot beat two one-way delays.
			if r.RTTP50Ns < 2*benchWANDelay.Nanoseconds() {
				t.Errorf("WAN %.0f%% loss: p50 %d ns beats the injected 2×%v floor",
					r.LossPct, r.RTTP50Ns, benchWANDelay)
			}
		case "pingpong_msgrate", "pingpong_msgrate_ctrl", "pingpong_msgrate_telem":
			if r.Bench == "pingpong_msgrate_ctrl" {
				ctrl++
				if r.Backend != "shm" {
					t.Errorf("control row on backend %q, want shm", r.Backend)
				}
				if r.BatchOccupancy != 0 {
					t.Errorf("per-frame control row carries batch occupancy %.1f", r.BatchOccupancy)
				}
			} else if r.Bench == "pingpong_msgrate_telem" {
				telem++
				telemRate = r.MsgsPerSec
				if r.Backend != "shm" {
					t.Errorf("telemetry row on backend %q, want shm", r.Backend)
				}
				if r.BatchOccupancy < 1 {
					t.Errorf("telemetry row occupancy %.2f — batching never engaged", r.BatchOccupancy)
				}
			} else {
				if r.Backend == "shm" {
					shmRate = r.MsgsPerSec
				}
				rate[r.Backend]++
				// The real transports publish whole bursts before the
				// drain sees them, so occupancy must clear 1 — batching
				// demonstrably engages. The simulator paces arrivals by
				// its wire model, so its occupancy rides the host's
				// timing; ≥1 holds by construction and is all we pin.
				if occ := r.BatchOccupancy; occ < 1 || (r.Backend != "sim" && occ <= 1) {
					t.Errorf("backend %s: batch occupancy %.2f — batching never engaged under the storm",
						r.Backend, occ)
				}
			}
			if r.SizeBytes != benchMsgRateSize || r.MsgsPerSec <= 0 {
				t.Errorf("malformed message-rate row: %+v", r)
			}
		case "pingpong_storm":
			if r.Backend != "tcp" {
				t.Errorf("storm row on backend %q, want tcp", r.Backend)
			}
			if storm[r.Peers] {
				t.Errorf("duplicate storm row at %d peers", r.Peers)
			}
			storm[r.Peers] = true
			if r.Peers <= 0 || r.MsgsPerSec <= 0 {
				t.Errorf("malformed storm row: %+v", r)
			}
			// The row the refactor is judged by: servicing goroutines
			// must scale with the in-process endpoint count (accept
			// loops and pool-bounded pollers), not at the old design's
			// ~2 per stream, and the hub must multiplex every spoke
			// through its bounded poller pool.
			if r.Goroutines >= 2*r.Peers {
				t.Errorf("storm at %d peers costs %d goroutines — per-stream servicing is back",
					r.Peers, r.Goroutines)
			}
			if r.HubPollers < 1 || r.HubPollers > maxStormPollers {
				t.Errorf("storm hub runs %d pollers, want 1..%d", r.HubPollers, maxStormPollers)
			}
			// Each spoke holds at least one real socket at each end.
			if r.OpenFDs < r.Peers {
				t.Errorf("storm at %d peers reports %d open fds — accounting broken",
					r.Peers, r.OpenFDs)
			}
		default:
			t.Errorf("unknown bench %q", r.Bench)
		}
	}
	for be, n := range rtt {
		want := len(benchJSONSizes)
		if be == "udp" {
			want = len(benchUDPSizes)
		}
		if n != want {
			t.Errorf("backend %s has %d RTT rows, want %d", be, n, want)
		}
	}
	for _, lossPct := range benchWANLossPcts {
		if !wan[lossPct] {
			t.Errorf("missing WAN row at %.0f%% loss", lossPct)
		}
	}
	if len(wan) != len(benchWANLossPcts) {
		t.Errorf("%d WAN rows, want %d", len(wan), len(benchWANLossPcts))
	}
	for _, peers := range []int{64, 256} {
		if !storm[peers] {
			t.Errorf("missing storm row at %d peers", peers)
		}
	}
	for be, n := range rate {
		if n != 1 {
			t.Errorf("backend %s has %d message-rate rows, want 1", be, n)
		}
	}
	if ctrl != 1 {
		t.Errorf("%d per-frame control rows, want 1", ctrl)
	}
	if telem != 1 {
		t.Errorf("%d telemetry-on control rows, want 1", telem)
	}
	// The telemetry-on storm must stay in the same ballpark as the
	// unmetered one. The committed acceptance bound is 3% on a quiet
	// host; a loaded CI runner's quick segments are noisier, so this
	// test only rejects wholesale collapse (>25%) — the real comparison
	// is the two rows in BENCH_pingpong.json.
	if shmRate > 0 && telemRate < shmRate*0.75 {
		t.Errorf("telemetry-on shm rate %.0f msgs/s is more than 25%% below unmetered %.0f",
			telemRate, shmRate)
	}
}
