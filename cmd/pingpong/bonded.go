package main

// Bonded mode: -listen/-connect combined with -shm runs one world over
// BOTH real transports at once — a tcpfab rail (the default rail,
// carrying eager traffic and the rendezvous handshake) bonded with a
// shmfab rail — which is the reproduction's analog of the paper's
// multirail MX + shared-memory configuration, §4.3, on real fabrics.
//
// The run sweeps the rendezvous sizes three times: data forced over the
// TCP rail alone, then over the shm rail alone, then striped across both
// by the multirail strategy. The two single-rail phases double as
// calibration: each rail's measured bandwidth reseeds the engine's
// striping weights (Driver.SetStripeWeight) before the multirail phase,
// so the split matches this host's actual rails rather than the
// committed BENCH baselines. Rank 0 finally asserts that bonded
// bandwidth beats the best single rail at the rendezvous sizes — the
// whole point of driving two rails — and exits exitBondedAssert if not.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"pioman/internal/core"
	"pioman/internal/fabric/shmfab"
	"pioman/internal/fabric/tcpfab"
	"pioman/internal/mpi"
	"pioman/internal/nic"
	"pioman/internal/telemetry"
	"pioman/internal/topo"
)

// exitBondedAssert is the distinct exit code for "the sweep completed
// but bonded bandwidth did not beat the best single rail" — separable
// from setup and corruption failures (exit 1) by harnesses that want to
// retry a noisy perf comparison.
const exitBondedAssert = 3

// tagPhase carries phase-control markers from rank 0 to the echoing
// rank: which rail (if any) rendezvous data is forced onto, and the
// measured striping weights.
const tagPhase = 5

// bondedStripeMin is the multirail threshold of the bonded world; the
// 256 KiB+ sweep sizes stripe, everything below rides one rail.
const bondedStripeMin = 128 << 10

// bondedSizes are the rendezvous sizes the single-rail and multirail
// phases are compared at: the sweep's large-message regime (the biggest
// size the single-transport sweeps run, well above bondedStripeMin).
var bondedSizes = []int{256 << 10}

// bondedRounds repeats the phase cycle and keeps each cell's best p50:
// single-shot medians on a shared host are too noisy to compare rails by.
const bondedRounds = 2

// runBonded executes one rank of the two-process bonded-rail sweep and
// returns the process exit code. listen/connect pick the TCP role (and
// the rank: -listen is 0), shmDir the shared ring directory; on rank 0 a
// non-empty jsonPath receives the bonded BENCH rows. metrics, when
// non-nil, receives the world's engine/rail registrations (-metrics).
func runBonded(listen, connect, shmDir string, quick bool, jsonPath string, metrics *telemetry.Registry) int {
	iters := 40
	if quick {
		iters = 10
	}
	// See runReal: keep enough Ps that woken goroutines schedule
	// immediately even on small hosts.
	if runtime.GOMAXPROCS(0) < 6 {
		runtime.GOMAXPROCS(6)
	}

	rank := 0
	var (
		tep *tcpfab.Endpoint
		err error
	)
	if listen != "" {
		tep, err = tcpfab.New(tcpfab.Config{Self: 0, Nodes: 2, Listen: listen})
		if err == nil {
			fmt.Printf("pingpong: rank 0 listening on %s (bonded with shm rings in %s)\n", tep.Addr(), shmDir)
		}
	} else {
		rank = 1
		tep, err = tcpfab.New(tcpfab.Config{Self: 1, Nodes: 2, Peers: map[int]string{0: connect}})
		if err == nil {
			err = tep.Dial(0)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingpong: %v\n", err)
		return 1
	}
	sep, err := shmfab.New(shmfab.Config{
		Self: rank, Nodes: 2, Dir: shmDir,
		NoBusyPoll: true, // matches NoIdlePolling below
	})
	if err != nil {
		tep.Close()
		fmt.Fprintf(os.Stderr, "pingpong: %v\n", err)
		return 1
	}

	tcpRail := nic.RealParams()
	tcpRail.Name = "tcp"
	w := mpi.NewDistributedBonded(mpi.Config{
		Mode:           core.Multithreaded,
		OffloadEager:   true,
		EnableBlocking: true,
		NoIdlePolling:  true,
		Strategy:       "multirail",
		MultirailMin:   bondedStripeMin,
		// The rendezvous sizes complete within a couple hundred µs; a
		// wait that spins through the whole exchange measures the rails,
		// not the blocking watcher's wakeup cadence.
		WaitSpin:     2 * time.Millisecond,
		WatcherCheck: 500 * time.Microsecond,
		Machine:      topo.Machine{Sockets: 1, CoresPerSocket: 2},
		Metrics:      metrics,
	}, []mpi.Rail{
		{Params: tcpRail, Ep: tep},
		{Params: nic.ShmParams(), Ep: sep},
	})
	defer w.Close()

	if rank == 1 {
		w.Node(1).Run(func(p *mpi.Proc) {
			p.Send(0, tagHello, []byte("hello"))
			echoUntilBye(p, bondedSizes[len(bondedSizes)-1], func(tag int, payload []byte) bool {
				if tag != tagPhase {
					return false
				}
				filter, wTCP, wSHM := parsePhaseMarker(string(payload))
				applyPhase(p.Node.Eng, filter, wTCP, wSHM)
				return true
			})
		})
		fmt.Println("pingpong: rank 1 ok")
		return 0
	}
	return runBondedSweep(w, iters, jsonPath)
}

// phaseCell is one measured (phase, size) cell: round-trip percentiles
// plus the process-wide allocations per exchange during the timed loop.
type phaseCell struct {
	p50, p99 time.Duration
	allocs   float64
}

// phaseRTT holds one phase's best-of-rounds cell per size.
type phaseRTT map[int]phaseCell

// runBondedSweep drives rank 0: the eager warm-up sizes, then the
// calibrate/stripe/compare cycle over the rendezvous sizes.
func runBondedSweep(w *mpi.World, iters int, jsonPath string) int {
	results := map[string]phaseRTT{"tcp": {}, "shm": {}, "multirail": {}}
	code := 0
	w.Node(0).Run(func(p *mpi.Proc) {
		var b [8]byte
		p.Recv(1, tagHello, b[:5])
		defer p.Send(1, tagBye, []byte("bye"))

		// The small-message sweep first: it exercises the full eager
		// protocol (and the unstriped rendezvous sizes) over the bonded
		// world's default rail and warms every path up before anything
		// is measured.
		for _, size := range realSizes {
			if size >= bondedSizes[0] {
				break
			}
			proto := "eager"
			if size > nic.RealParams().EagerMax {
				proto = "rendezvous"
			}
			measured, err := bondedTimeSize(p, size, iters)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pingpong:", err)
				code = 1
				return
			}
			fmt.Printf("pingpong: %-10s %8d B  rtt p50 %10v  %8.1f MB/s\n",
				proto, size, measured.p50, bondedBW(size, measured.p50))
		}

		for round := 0; round < bondedRounds; round++ {
			for _, phase := range []string{"tcp", "shm", "multirail"} {
				filter := phase
				if phase == "multirail" {
					filter = ""
				}
				bondedSetPhase(p, filter, 0, 0)
				for _, size := range bondedSizes {
					measured, err := bondedTimeSize(p, size, iters)
					if err != nil {
						fmt.Fprintln(os.Stderr, "pingpong:", err)
						code = 1
						return
					}
					cell, seen := results[phase][size]
					if !seen || measured.p50 < cell.p50 {
						cell = measured
					}
					results[phase][size] = cell
					fmt.Printf("pingpong: %-10s %8d B  rtt p50 %10v  %8.1f MB/s\n",
						phaseLabel(phase), size, measured.p50, bondedBW(size, measured.p50))
				}
				if phase == "shm" {
					// Calibration done for this round: reseed the striping
					// weights from the bandwidths just measured, on both
					// ranks, before the multirail phase.
					top := bondedSizes[len(bondedSizes)-1]
					wTCP := bondedBW(top, results["tcp"][top].p50)
					wSHM := bondedBW(top, results["shm"][top].p50)
					bondedSetPhase(p, "", wTCP, wSHM)
					fmt.Printf("pingpong: measured rail weights  tcp %.0f MB/s  shm %.0f MB/s\n", wTCP, wSHM)
				}
			}
		}
	})
	if code != 0 {
		return code
	}

	// The acceptance comparison: striping across both rails must beat the
	// best single rail outright at the rendezvous sizes. The hard
	// assertion only arms on hosts with cores to drive two rails at once
	// (the paper's testbed is 8-core): on a 1–2 CPU box the transports
	// time-slice one processor, the "parallel" in multirail is void, and
	// the comparison is noise — reported, but not enforced.
	assert := runtime.NumCPU() >= 4
	if !assert {
		fmt.Printf("pingpong: only %d CPUs: rails cannot progress in parallel, comparison is informational\n", runtime.NumCPU())
	}
	for _, size := range bondedSizes {
		multi := bondedBW(size, results["multirail"][size].p50)
		tcp := bondedBW(size, results["tcp"][size].p50)
		shm := bondedBW(size, results["shm"][size].p50)
		best := max(tcp, shm)
		verdict := "beats"
		if multi <= best {
			verdict = "does not beat"
			if assert {
				verdict = "DOES NOT BEAT"
				code = exitBondedAssert
			}
		}
		fmt.Printf("pingpong: bonded %8d B: multirail %.1f MB/s %s best single rail %.1f MB/s (tcp %.1f, shm %.1f)\n",
			size, multi, verdict, best, tcp, shm)
	}
	if jsonPath != "" {
		// Each row's percentiles come from the best single round of
		// `iters` samples (best-of-rounds keeps one round's cell, it
		// never pools), so that is the honest sample count.
		if err := writeBondedRows(jsonPath, results, iters); err != nil {
			fmt.Fprintf(os.Stderr, "pingpong: %v\n", err)
			return 1
		}
		fmt.Printf("pingpong: merged bonded rows into %s\n", jsonPath)
	}
	if code == exitBondedAssert {
		fmt.Fprintln(os.Stderr, "pingpong: bonded-rail assertion failed (exit 3)")
		return code
	}
	fmt.Println("pingpong: rank 0 ok")
	return 0
}

// phaseLabel names a phase in the sweep output.
func phaseLabel(phase string) string {
	if phase == "multirail" {
		return "multirail"
	}
	return phase + "-only"
}

// bondedBW converts an echo round trip into MB/s of payload bandwidth
// (the payload crosses the wire twice per RTT).
func bondedBW(size int, rtt time.Duration) float64 {
	if rtt <= 0 {
		return 0
	}
	return 2 * float64(size) / rtt.Seconds() / 1e6
}

// bondedTimeSize runs warm-up plus iters timed echoes of one size and
// returns the measured cell: p50/p99 round trip and process-wide
// allocations per exchange across the timed loop (noisy — background
// goroutines allocate too — but honest, matching what benchOneRTT
// reports for the raw-endpoint rows).
func bondedTimeSize(p *mpi.Proc, size, iters int) (phaseCell, error) {
	msg := patterned(size)
	buf := make([]byte, size)
	samples := make([]time.Duration, iters)
	var m0, m1 runtime.MemStats
	for i := -2; i < iters; i++ { // two warm-up exchanges
		if i == 0 {
			runtime.ReadMemStats(&m0)
		}
		t0 := time.Now()
		p.Send(1, tagPing, msg)
		n, _ := p.Recv(1, tagPong, buf)
		if n != size || !bytes.Equal(buf, msg) {
			return phaseCell{}, fmt.Errorf("echo of %d bytes corrupted", size)
		}
		if i >= 0 {
			samples[i] = time.Since(t0)
		}
	}
	runtime.ReadMemStats(&m1)
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return phaseCell{
		p50:    samples[iters/2],
		p99:    samples[iters*99/100],
		allocs: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
	}, nil
}

// bondedSetPhase applies a phase switch on both ranks: rendezvous data
// forced onto the named rail ("" restores multirail striping) and, when
// positive, remeasured striping weights. The local engine switches
// immediately; the peer switches when the marker reaches the front of
// its echo loop, which is ordered before every later ping.
func bondedSetPhase(p *mpi.Proc, filter string, wTCP, wSHM float64) {
	applyPhase(p.Node.Eng, filter, wTCP, wSHM)
	marker := fmt.Sprintf("filter=%s;wtcp=%g;wshm=%g", filter, wTCP, wSHM)
	p.Send(1, tagPhase, []byte(marker))
}

// applyPhase applies a phase marker to an engine.
func applyPhase(eng *core.Engine, filter string, wTCP, wSHM float64) {
	eng.ForceDataRail(filter)
	if wTCP > 0 || wSHM > 0 {
		for _, rail := range eng.Rails() {
			switch rail.Name() {
			case "tcp":
				rail.SetStripeWeight(wTCP)
			case "shm":
				rail.SetStripeWeight(wSHM)
			}
		}
	}
}

// parsePhaseMarker decodes a tagPhase payload.
func parsePhaseMarker(s string) (filter string, wTCP, wSHM float64) {
	for _, kv := range strings.Split(s, ";") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch key {
		case "filter":
			filter = val
		case "wtcp":
			wTCP, _ = strconv.ParseFloat(val, 64)
		case "wshm":
			wSHM, _ = strconv.ParseFloat(val, 64)
		}
	}
	return filter, wTCP, wSHM
}

// writeBondedRows merges the bonded phases' rows into the BENCH file:
// any existing row with the same (bench, backend, size) is replaced, so
// reruns stay idempotent and the raw-endpoint rows are left untouched.
func writeBondedRows(path string, results map[string]phaseRTT, iters int) error {
	var rows []benchRow
	if old, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(old, &rows); err != nil {
			return fmt.Errorf("parse existing %s: %w", path, err)
		}
	}
	replaced := func(r benchRow) bool {
		_, isPhase := results[r.Backend]
		if !isPhase || r.Bench != "pingpong_rtt" {
			return false
		}
		for _, size := range bondedSizes {
			if r.SizeBytes == size {
				return true
			}
		}
		return false
	}
	kept := rows[:0]
	for _, r := range rows {
		if !replaced(r) {
			kept = append(kept, r)
		}
	}
	rows = kept
	for _, backend := range []string{"tcp", "shm", "multirail"} {
		for _, size := range bondedSizes {
			cell := results[backend][size]
			rows = append(rows, benchRow{
				Bench:       "pingpong_rtt",
				Backend:     backend,
				SizeBytes:   size,
				Iters:       iters,
				RTTP50Ns:    cell.p50.Nanoseconds(),
				RTTP99Ns:    cell.p99.Nanoseconds(),
				AllocsPerOp: cell.allocs,
			})
		}
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
