// Command pingpong runs the classic latency/bandwidth sweep.
//
// By default it sweeps the simulated MX fabric, for both the sequential
// baseline and the PIOMan-enabled engine:
//
//	pingpong [-quick] [-max 1048576]
//
// With -listen or -connect it instead runs the full engine stack between
// two real OS processes over TCP (fabric/tcpfab), exercising the eager
// protocol below 32 KiB and the RTS/CTS rendezvous protocol above it on
// genuine sockets:
//
//	pingpong -listen 127.0.0.1:9777           # rank 0
//	pingpong -connect 127.0.0.1:9777          # rank 1, other process
//
// Rank 0 accepts with -listen (port 0 picks an ephemeral port, printed on
// startup); rank 1 dials it. The connecting rank speaks first so the
// listening rank learns its return path from the accepted connection.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pioman/internal/core"
	"pioman/internal/exp"
	"pioman/internal/fabric/tcpfab"
	"pioman/internal/mpi"
	"pioman/internal/nic"
	"pioman/internal/topo"
)

func main() {
	quick := flag.Bool("quick", false, "reduced iteration counts")
	max := flag.Int("max", 1<<20, "largest message size")
	listen := flag.String("listen", "", "run as rank 0 over real TCP, accepting on this address")
	connect := flag.String("connect", "", "run as rank 1 over real TCP, dialing rank 0 at this address")
	flag.Parse()
	exp.Quick = *quick

	if *listen != "" || *connect != "" {
		os.Exit(runReal(*listen, *connect, *quick))
	}

	var sizes []int
	for s := 8; s <= *max; s *= 2 {
		sizes = append(sizes, s)
	}
	fmt.Println(exp.FormatPingpong(exp.RunPingpong(core.Sequential, sizes),
		"Pingpong, sequential baseline (original NewMadeleine)"))
	fmt.Println(exp.FormatPingpong(exp.RunPingpong(core.Multithreaded, sizes),
		"Pingpong, multithreaded engine (NewMadeleine + PIOMan)"))
}

// Real-mode protocol tags.
const (
	tagHello = 1 // rank 1 -> rank 0: opens the return path
	tagPing  = 2
	tagPong  = 3
	tagBye   = 4
)

// realSizes spans both protocols around the 32 KiB rendezvous threshold.
var realSizes = []int{64, 1 << 10, 4 << 10, 32 << 10, 64 << 10, 256 << 10}

// runReal executes one rank of the two-process pingpong and returns the
// process exit code.
func runReal(listen, connect string, quick bool) int {
	if listen != "" && connect != "" {
		fmt.Fprintln(os.Stderr, "pingpong: -listen and -connect are mutually exclusive")
		return 2
	}
	iters := 50
	if quick {
		iters = 5
	}
	// The engine dedicates goroutines to busy-polling (that is the
	// paper's design); with GOMAXPROCS at or below the spinner count a
	// woken socket reader waits out the runtime's ~10ms preemption tick
	// before it can deliver. Keep enough Ps that woken goroutines
	// schedule immediately even on small hosts.
	if runtime.GOMAXPROCS(0) < 6 {
		runtime.GOMAXPROCS(6)
	}

	var (
		ep  *tcpfab.Endpoint
		err error
	)
	rank := 0
	if listen != "" {
		ep, err = tcpfab.New(tcpfab.Config{Self: 0, Nodes: 2, Listen: listen})
		if err == nil {
			fmt.Printf("pingpong: rank 0 listening on %s\n", ep.Addr())
		}
	} else {
		rank = 1
		ep, err = tcpfab.New(tcpfab.Config{Self: 1, Nodes: 2, Peers: map[int]string{0: connect}})
		if err == nil {
			// Fail fast on a bad address: without this the dial error
			// only surfaces as a silently dropped packet deep in the
			// engine, and the process hangs waiting for a reply.
			err = ep.Dial(0)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pingpong: %v\n", err)
		return 1
	}

	w := mpi.NewDistributed(mpi.Config{
		Mode:           core.Multithreaded,
		OffloadEager:   true,
		EnableBlocking: true,
		// Real sockets progress through the §3.2 blocking fallback:
		// active polling would only steal CPU from the kernel's own
		// packet delivery on small hosts.
		NoIdlePolling: true,
		Machine:       topo.Machine{Sockets: 1, CoresPerSocket: 2},
	}, nic.RealParams(), ep)
	defer w.Close()

	failed := false
	w.Node(rank).Run(func(p *mpi.Proc) {
		if rank == 1 {
			// Speaking first gives rank 0 its return path.
			p.Send(0, tagHello, []byte("hello"))
			echoUntilBye(p)
			return
		}
		var b [8]byte
		p.Recv(1, tagHello, b[:5])
		// Rank 1 only exits on the bye marker; send it on every exit
		// path, including failures, so a corrupted run doesn't strand
		// the peer in its echo loop.
		defer p.Send(1, tagBye, []byte("bye"))
		for _, size := range realSizes {
			proto := "eager"
			if size > 32<<10 {
				proto = "rendezvous"
			}
			msg := patterned(size)
			buf := make([]byte, size)
			// Warmup exchange, then the timed loop.
			p.Send(1, tagPing, msg)
			p.Recv(1, tagPong, buf)
			start := time.Now()
			for i := 0; i < iters; i++ {
				p.Send(1, tagPing, msg)
				n, _ := p.Recv(1, tagPong, buf)
				if n != size || !bytes.Equal(buf, msg) {
					fmt.Fprintf(os.Stderr, "pingpong: echo of %d bytes corrupted\n", size)
					failed = true
					return
				}
			}
			rtt := time.Since(start) / time.Duration(iters)
			fmt.Printf("pingpong: %-10s %8d B  rtt %10v  %8.1f MB/s\n",
				proto, size, rtt, 2*float64(size)/rtt.Seconds()/1e6)
		}
	})
	if failed {
		return 1
	}
	fmt.Printf("pingpong: rank %d ok\n", rank)
	return 0
}

// echoUntilBye bounces pings back until the bye marker arrives.
func echoUntilBye(p *mpi.Proc) {
	buf := make([]byte, realSizes[len(realSizes)-1])
	for {
		r := p.Irecv(0, core.AnyTag, buf)
		p.WaitRecv(r)
		if r.MatchedTag() == tagBye {
			return
		}
		p.Send(0, tagPong, buf[:r.Len()])
	}
}

// patterned fills a buffer with position-derived bytes so corruption and
// cross-size mixups are detectable.
func patterned(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + 13)
	}
	return b
}
